# Empty compiler generated dependencies file for eddy_routing.
# This may be replaced when dependencies are built.
