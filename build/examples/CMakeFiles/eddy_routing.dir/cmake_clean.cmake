file(REMOVE_RECURSE
  "CMakeFiles/eddy_routing.dir/eddy_routing.cpp.o"
  "CMakeFiles/eddy_routing.dir/eddy_routing.cpp.o.d"
  "eddy_routing"
  "eddy_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eddy_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
