# Empty dependencies file for adaptive_optimizer.
# This may be replaced when dependencies are built.
