file(REMOVE_RECURSE
  "CMakeFiles/adaptive_optimizer.dir/adaptive_optimizer.cpp.o"
  "CMakeFiles/adaptive_optimizer.dir/adaptive_optimizer.cpp.o.d"
  "adaptive_optimizer"
  "adaptive_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
