# Empty compiler generated dependencies file for jisc_shell.
# This may be replaced when dependencies are built.
