file(REMOVE_RECURSE
  "CMakeFiles/jisc_shell.dir/jisc_shell.cpp.o"
  "CMakeFiles/jisc_shell.dir/jisc_shell.cpp.o.d"
  "jisc_shell"
  "jisc_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jisc_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
