# Empty dependencies file for jisc_migration.
# This may be replaced when dependencies are built.
