file(REMOVE_RECURSE
  "CMakeFiles/jisc_migration.dir/hybrid_track.cc.o"
  "CMakeFiles/jisc_migration.dir/hybrid_track.cc.o.d"
  "CMakeFiles/jisc_migration.dir/moving_state.cc.o"
  "CMakeFiles/jisc_migration.dir/moving_state.cc.o.d"
  "CMakeFiles/jisc_migration.dir/parallel_track.cc.o"
  "CMakeFiles/jisc_migration.dir/parallel_track.cc.o.d"
  "CMakeFiles/jisc_migration.dir/state_materializer.cc.o"
  "CMakeFiles/jisc_migration.dir/state_materializer.cc.o.d"
  "libjisc_migration.a"
  "libjisc_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jisc_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
