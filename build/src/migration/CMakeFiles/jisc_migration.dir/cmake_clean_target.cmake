file(REMOVE_RECURSE
  "libjisc_migration.a"
)
