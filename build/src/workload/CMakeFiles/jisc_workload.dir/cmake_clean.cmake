file(REMOVE_RECURSE
  "CMakeFiles/jisc_workload.dir/adaptive.cc.o"
  "CMakeFiles/jisc_workload.dir/adaptive.cc.o.d"
  "CMakeFiles/jisc_workload.dir/factory.cc.o"
  "CMakeFiles/jisc_workload.dir/factory.cc.o.d"
  "CMakeFiles/jisc_workload.dir/runner.cc.o"
  "CMakeFiles/jisc_workload.dir/runner.cc.o.d"
  "libjisc_workload.a"
  "libjisc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jisc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
