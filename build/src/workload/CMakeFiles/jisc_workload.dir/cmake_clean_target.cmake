file(REMOVE_RECURSE
  "libjisc_workload.a"
)
