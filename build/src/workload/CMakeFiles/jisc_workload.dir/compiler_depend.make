# Empty compiler generated dependencies file for jisc_workload.
# This may be replaced when dependencies are built.
