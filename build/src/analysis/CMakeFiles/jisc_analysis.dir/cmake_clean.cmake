file(REMOVE_RECURSE
  "CMakeFiles/jisc_analysis.dir/complete_states_model.cc.o"
  "CMakeFiles/jisc_analysis.dir/complete_states_model.cc.o.d"
  "libjisc_analysis.a"
  "libjisc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jisc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
