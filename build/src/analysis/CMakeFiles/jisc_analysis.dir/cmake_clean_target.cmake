file(REMOVE_RECURSE
  "libjisc_analysis.a"
)
