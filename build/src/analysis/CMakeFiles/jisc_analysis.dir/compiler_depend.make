# Empty compiler generated dependencies file for jisc_analysis.
# This may be replaced when dependencies are built.
