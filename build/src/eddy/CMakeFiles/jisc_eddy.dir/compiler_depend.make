# Empty compiler generated dependencies file for jisc_eddy.
# This may be replaced when dependencies are built.
