
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eddy/cacq.cc" "src/eddy/CMakeFiles/jisc_eddy.dir/cacq.cc.o" "gcc" "src/eddy/CMakeFiles/jisc_eddy.dir/cacq.cc.o.d"
  "/root/repo/src/eddy/mjoin.cc" "src/eddy/CMakeFiles/jisc_eddy.dir/mjoin.cc.o" "gcc" "src/eddy/CMakeFiles/jisc_eddy.dir/mjoin.cc.o.d"
  "/root/repo/src/eddy/stairs.cc" "src/eddy/CMakeFiles/jisc_eddy.dir/stairs.cc.o" "gcc" "src/eddy/CMakeFiles/jisc_eddy.dir/stairs.cc.o.d"
  "/root/repo/src/eddy/stem.cc" "src/eddy/CMakeFiles/jisc_eddy.dir/stem.cc.o" "gcc" "src/eddy/CMakeFiles/jisc_eddy.dir/stem.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/jisc_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/jisc_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/state/CMakeFiles/jisc_state.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/jisc_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/jisc_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/jisc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
