file(REMOVE_RECURSE
  "libjisc_eddy.a"
)
