file(REMOVE_RECURSE
  "CMakeFiles/jisc_eddy.dir/cacq.cc.o"
  "CMakeFiles/jisc_eddy.dir/cacq.cc.o.d"
  "CMakeFiles/jisc_eddy.dir/mjoin.cc.o"
  "CMakeFiles/jisc_eddy.dir/mjoin.cc.o.d"
  "CMakeFiles/jisc_eddy.dir/stairs.cc.o"
  "CMakeFiles/jisc_eddy.dir/stairs.cc.o.d"
  "CMakeFiles/jisc_eddy.dir/stem.cc.o"
  "CMakeFiles/jisc_eddy.dir/stem.cc.o.d"
  "libjisc_eddy.a"
  "libjisc_eddy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jisc_eddy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
