file(REMOVE_RECURSE
  "libjisc_common.a"
)
