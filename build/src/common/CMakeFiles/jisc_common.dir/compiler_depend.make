# Empty compiler generated dependencies file for jisc_common.
# This may be replaced when dependencies are built.
