file(REMOVE_RECURSE
  "CMakeFiles/jisc_common.dir/env.cc.o"
  "CMakeFiles/jisc_common.dir/env.cc.o.d"
  "CMakeFiles/jisc_common.dir/logging.cc.o"
  "CMakeFiles/jisc_common.dir/logging.cc.o.d"
  "CMakeFiles/jisc_common.dir/random.cc.o"
  "CMakeFiles/jisc_common.dir/random.cc.o.d"
  "CMakeFiles/jisc_common.dir/sketch.cc.o"
  "CMakeFiles/jisc_common.dir/sketch.cc.o.d"
  "CMakeFiles/jisc_common.dir/stats.cc.o"
  "CMakeFiles/jisc_common.dir/stats.cc.o.d"
  "CMakeFiles/jisc_common.dir/status.cc.o"
  "CMakeFiles/jisc_common.dir/status.cc.o.d"
  "libjisc_common.a"
  "libjisc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jisc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
