# Empty dependencies file for jisc_stream.
# This may be replaced when dependencies are built.
