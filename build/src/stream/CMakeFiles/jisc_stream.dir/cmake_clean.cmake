file(REMOVE_RECURSE
  "CMakeFiles/jisc_stream.dir/synthetic_source.cc.o"
  "CMakeFiles/jisc_stream.dir/synthetic_source.cc.o.d"
  "CMakeFiles/jisc_stream.dir/window.cc.o"
  "CMakeFiles/jisc_stream.dir/window.cc.o.d"
  "libjisc_stream.a"
  "libjisc_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jisc_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
