file(REMOVE_RECURSE
  "libjisc_stream.a"
)
