
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/checkpoint.cc" "src/core/CMakeFiles/jisc_core.dir/checkpoint.cc.o" "gcc" "src/core/CMakeFiles/jisc_core.dir/checkpoint.cc.o.d"
  "/root/repo/src/core/completion_tracker.cc" "src/core/CMakeFiles/jisc_core.dir/completion_tracker.cc.o" "gcc" "src/core/CMakeFiles/jisc_core.dir/completion_tracker.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/jisc_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/jisc_core.dir/engine.cc.o.d"
  "/root/repo/src/core/jisc_runtime.cc" "src/core/CMakeFiles/jisc_core.dir/jisc_runtime.cc.o" "gcc" "src/core/CMakeFiles/jisc_core.dir/jisc_runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/jisc_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/jisc_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/state/CMakeFiles/jisc_state.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/jisc_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/jisc_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/jisc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
