file(REMOVE_RECURSE
  "libjisc_core.a"
)
