# Empty dependencies file for jisc_core.
# This may be replaced when dependencies are built.
