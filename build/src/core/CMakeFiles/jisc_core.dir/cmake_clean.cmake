file(REMOVE_RECURSE
  "CMakeFiles/jisc_core.dir/checkpoint.cc.o"
  "CMakeFiles/jisc_core.dir/checkpoint.cc.o.d"
  "CMakeFiles/jisc_core.dir/completion_tracker.cc.o"
  "CMakeFiles/jisc_core.dir/completion_tracker.cc.o.d"
  "CMakeFiles/jisc_core.dir/engine.cc.o"
  "CMakeFiles/jisc_core.dir/engine.cc.o.d"
  "CMakeFiles/jisc_core.dir/jisc_runtime.cc.o"
  "CMakeFiles/jisc_core.dir/jisc_runtime.cc.o.d"
  "libjisc_core.a"
  "libjisc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jisc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
