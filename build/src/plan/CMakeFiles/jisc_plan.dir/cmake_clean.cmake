file(REMOVE_RECURSE
  "CMakeFiles/jisc_plan.dir/logical_plan.cc.o"
  "CMakeFiles/jisc_plan.dir/logical_plan.cc.o.d"
  "CMakeFiles/jisc_plan.dir/plan_diff.cc.o"
  "CMakeFiles/jisc_plan.dir/plan_diff.cc.o.d"
  "CMakeFiles/jisc_plan.dir/plan_text.cc.o"
  "CMakeFiles/jisc_plan.dir/plan_text.cc.o.d"
  "CMakeFiles/jisc_plan.dir/transitions.cc.o"
  "CMakeFiles/jisc_plan.dir/transitions.cc.o.d"
  "libjisc_plan.a"
  "libjisc_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jisc_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
