file(REMOVE_RECURSE
  "libjisc_plan.a"
)
