# Empty compiler generated dependencies file for jisc_plan.
# This may be replaced when dependencies are built.
