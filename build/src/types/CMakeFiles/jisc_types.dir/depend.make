# Empty dependencies file for jisc_types.
# This may be replaced when dependencies are built.
