file(REMOVE_RECURSE
  "CMakeFiles/jisc_types.dir/schema.cc.o"
  "CMakeFiles/jisc_types.dir/schema.cc.o.d"
  "CMakeFiles/jisc_types.dir/tuple.cc.o"
  "CMakeFiles/jisc_types.dir/tuple.cc.o.d"
  "libjisc_types.a"
  "libjisc_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jisc_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
