file(REMOVE_RECURSE
  "libjisc_types.a"
)
