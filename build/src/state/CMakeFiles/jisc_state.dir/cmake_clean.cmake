file(REMOVE_RECURSE
  "CMakeFiles/jisc_state.dir/operator_state.cc.o"
  "CMakeFiles/jisc_state.dir/operator_state.cc.o.d"
  "libjisc_state.a"
  "libjisc_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jisc_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
