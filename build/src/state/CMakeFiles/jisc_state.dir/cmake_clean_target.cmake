file(REMOVE_RECURSE
  "libjisc_state.a"
)
