# Empty compiler generated dependencies file for jisc_state.
# This may be replaced when dependencies are built.
