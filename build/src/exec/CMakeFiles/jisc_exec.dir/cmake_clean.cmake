file(REMOVE_RECURSE
  "CMakeFiles/jisc_exec.dir/explain.cc.o"
  "CMakeFiles/jisc_exec.dir/explain.cc.o.d"
  "CMakeFiles/jisc_exec.dir/metrics.cc.o"
  "CMakeFiles/jisc_exec.dir/metrics.cc.o.d"
  "CMakeFiles/jisc_exec.dir/nested_loops_join.cc.o"
  "CMakeFiles/jisc_exec.dir/nested_loops_join.cc.o.d"
  "CMakeFiles/jisc_exec.dir/operator.cc.o"
  "CMakeFiles/jisc_exec.dir/operator.cc.o.d"
  "CMakeFiles/jisc_exec.dir/pipeline_executor.cc.o"
  "CMakeFiles/jisc_exec.dir/pipeline_executor.cc.o.d"
  "CMakeFiles/jisc_exec.dir/semi_join.cc.o"
  "CMakeFiles/jisc_exec.dir/semi_join.cc.o.d"
  "CMakeFiles/jisc_exec.dir/set_difference.cc.o"
  "CMakeFiles/jisc_exec.dir/set_difference.cc.o.d"
  "CMakeFiles/jisc_exec.dir/sink.cc.o"
  "CMakeFiles/jisc_exec.dir/sink.cc.o.d"
  "CMakeFiles/jisc_exec.dir/stream_scan.cc.o"
  "CMakeFiles/jisc_exec.dir/stream_scan.cc.o.d"
  "CMakeFiles/jisc_exec.dir/symmetric_hash_join.cc.o"
  "CMakeFiles/jisc_exec.dir/symmetric_hash_join.cc.o.d"
  "CMakeFiles/jisc_exec.dir/validate.cc.o"
  "CMakeFiles/jisc_exec.dir/validate.cc.o.d"
  "libjisc_exec.a"
  "libjisc_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jisc_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
