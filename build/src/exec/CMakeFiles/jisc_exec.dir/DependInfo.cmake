
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/explain.cc" "src/exec/CMakeFiles/jisc_exec.dir/explain.cc.o" "gcc" "src/exec/CMakeFiles/jisc_exec.dir/explain.cc.o.d"
  "/root/repo/src/exec/metrics.cc" "src/exec/CMakeFiles/jisc_exec.dir/metrics.cc.o" "gcc" "src/exec/CMakeFiles/jisc_exec.dir/metrics.cc.o.d"
  "/root/repo/src/exec/nested_loops_join.cc" "src/exec/CMakeFiles/jisc_exec.dir/nested_loops_join.cc.o" "gcc" "src/exec/CMakeFiles/jisc_exec.dir/nested_loops_join.cc.o.d"
  "/root/repo/src/exec/operator.cc" "src/exec/CMakeFiles/jisc_exec.dir/operator.cc.o" "gcc" "src/exec/CMakeFiles/jisc_exec.dir/operator.cc.o.d"
  "/root/repo/src/exec/pipeline_executor.cc" "src/exec/CMakeFiles/jisc_exec.dir/pipeline_executor.cc.o" "gcc" "src/exec/CMakeFiles/jisc_exec.dir/pipeline_executor.cc.o.d"
  "/root/repo/src/exec/semi_join.cc" "src/exec/CMakeFiles/jisc_exec.dir/semi_join.cc.o" "gcc" "src/exec/CMakeFiles/jisc_exec.dir/semi_join.cc.o.d"
  "/root/repo/src/exec/set_difference.cc" "src/exec/CMakeFiles/jisc_exec.dir/set_difference.cc.o" "gcc" "src/exec/CMakeFiles/jisc_exec.dir/set_difference.cc.o.d"
  "/root/repo/src/exec/sink.cc" "src/exec/CMakeFiles/jisc_exec.dir/sink.cc.o" "gcc" "src/exec/CMakeFiles/jisc_exec.dir/sink.cc.o.d"
  "/root/repo/src/exec/stream_scan.cc" "src/exec/CMakeFiles/jisc_exec.dir/stream_scan.cc.o" "gcc" "src/exec/CMakeFiles/jisc_exec.dir/stream_scan.cc.o.d"
  "/root/repo/src/exec/symmetric_hash_join.cc" "src/exec/CMakeFiles/jisc_exec.dir/symmetric_hash_join.cc.o" "gcc" "src/exec/CMakeFiles/jisc_exec.dir/symmetric_hash_join.cc.o.d"
  "/root/repo/src/exec/validate.cc" "src/exec/CMakeFiles/jisc_exec.dir/validate.cc.o" "gcc" "src/exec/CMakeFiles/jisc_exec.dir/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/plan/CMakeFiles/jisc_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/state/CMakeFiles/jisc_state.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/jisc_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/jisc_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/jisc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
