file(REMOVE_RECURSE
  "libjisc_exec.a"
)
