# Empty compiler generated dependencies file for jisc_exec.
# This may be replaced when dependencies are built.
