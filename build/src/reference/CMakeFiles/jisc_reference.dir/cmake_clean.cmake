file(REMOVE_RECURSE
  "CMakeFiles/jisc_reference.dir/naive_reference.cc.o"
  "CMakeFiles/jisc_reference.dir/naive_reference.cc.o.d"
  "libjisc_reference.a"
  "libjisc_reference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jisc_reference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
