# Empty compiler generated dependencies file for jisc_reference.
# This may be replaced when dependencies are built.
