file(REMOVE_RECURSE
  "libjisc_reference.a"
)
