file(REMOVE_RECURSE
  "CMakeFiles/ablation_completion_detection.dir/ablation_completion_detection.cc.o"
  "CMakeFiles/ablation_completion_detection.dir/ablation_completion_detection.cc.o.d"
  "ablation_completion_detection"
  "ablation_completion_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_completion_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
