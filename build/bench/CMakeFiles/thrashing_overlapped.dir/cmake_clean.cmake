file(REMOVE_RECURSE
  "CMakeFiles/thrashing_overlapped.dir/thrashing_overlapped.cc.o"
  "CMakeFiles/thrashing_overlapped.dir/thrashing_overlapped.cc.o.d"
  "thrashing_overlapped"
  "thrashing_overlapped.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thrashing_overlapped.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
