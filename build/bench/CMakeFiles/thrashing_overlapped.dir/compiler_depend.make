# Empty compiler generated dependencies file for thrashing_overlapped.
# This may be replaced when dependencies are built.
