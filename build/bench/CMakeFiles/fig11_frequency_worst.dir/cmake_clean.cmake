file(REMOVE_RECURSE
  "CMakeFiles/fig11_frequency_worst.dir/fig11_frequency_worst.cc.o"
  "CMakeFiles/fig11_frequency_worst.dir/fig11_frequency_worst.cc.o.d"
  "fig11_frequency_worst"
  "fig11_frequency_worst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_frequency_worst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
