# Empty dependencies file for stairs_migration.
# This may be replaced when dependencies are built.
