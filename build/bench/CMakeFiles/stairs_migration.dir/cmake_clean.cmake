file(REMOVE_RECURSE
  "CMakeFiles/stairs_migration.dir/stairs_migration.cc.o"
  "CMakeFiles/stairs_migration.dir/stairs_migration.cc.o.d"
  "stairs_migration"
  "stairs_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stairs_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
