# Empty dependencies file for ablation_fresh_attempted.
# This may be replaced when dependencies are built.
