file(REMOVE_RECURSE
  "CMakeFiles/ablation_fresh_attempted.dir/ablation_fresh_attempted.cc.o"
  "CMakeFiles/ablation_fresh_attempted.dir/ablation_fresh_attempted.cc.o.d"
  "ablation_fresh_attempted"
  "ablation_fresh_attempted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fresh_attempted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
