file(REMOVE_RECURSE
  "CMakeFiles/analysis_propositions.dir/analysis_propositions.cc.o"
  "CMakeFiles/analysis_propositions.dir/analysis_propositions.cc.o.d"
  "analysis_propositions"
  "analysis_propositions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_propositions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
