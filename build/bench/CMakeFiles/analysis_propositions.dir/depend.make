# Empty dependencies file for analysis_propositions.
# This may be replaced when dependencies are built.
