file(REMOVE_RECURSE
  "CMakeFiles/fig09_normal_operation.dir/fig09_normal_operation.cc.o"
  "CMakeFiles/fig09_normal_operation.dir/fig09_normal_operation.cc.o.d"
  "fig09_normal_operation"
  "fig09_normal_operation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_normal_operation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
