# Empty dependencies file for fig09_normal_operation.
# This may be replaced when dependencies are built.
