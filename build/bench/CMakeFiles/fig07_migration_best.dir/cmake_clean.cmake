file(REMOVE_RECURSE
  "CMakeFiles/fig07_migration_best.dir/fig07_migration_best.cc.o"
  "CMakeFiles/fig07_migration_best.dir/fig07_migration_best.cc.o.d"
  "fig07_migration_best"
  "fig07_migration_best.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_migration_best.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
