# Empty compiler generated dependencies file for fig07_migration_best.
# This may be replaced when dependencies are built.
