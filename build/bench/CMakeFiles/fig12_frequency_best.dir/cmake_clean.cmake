file(REMOVE_RECURSE
  "CMakeFiles/fig12_frequency_best.dir/fig12_frequency_best.cc.o"
  "CMakeFiles/fig12_frequency_best.dir/fig12_frequency_best.cc.o.d"
  "fig12_frequency_best"
  "fig12_frequency_best.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_frequency_best.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
