# Empty compiler generated dependencies file for fig12_frequency_best.
# This may be replaced when dependencies are built.
