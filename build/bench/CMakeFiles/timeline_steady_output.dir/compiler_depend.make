# Empty compiler generated dependencies file for timeline_steady_output.
# This may be replaced when dependencies are built.
