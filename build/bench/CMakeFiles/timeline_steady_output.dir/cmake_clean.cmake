file(REMOVE_RECURSE
  "CMakeFiles/timeline_steady_output.dir/timeline_steady_output.cc.o"
  "CMakeFiles/timeline_steady_output.dir/timeline_steady_output.cc.o.d"
  "timeline_steady_output"
  "timeline_steady_output.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeline_steady_output.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
