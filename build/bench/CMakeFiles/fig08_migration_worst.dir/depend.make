# Empty dependencies file for fig08_migration_worst.
# This may be replaced when dependencies are built.
