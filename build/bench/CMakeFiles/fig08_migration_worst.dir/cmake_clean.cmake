file(REMOVE_RECURSE
  "CMakeFiles/fig08_migration_worst.dir/fig08_migration_worst.cc.o"
  "CMakeFiles/fig08_migration_worst.dir/fig08_migration_worst.cc.o.d"
  "fig08_migration_worst"
  "fig08_migration_worst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_migration_worst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
