
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/exec_test.cc" "tests/CMakeFiles/exec_test.dir/exec_test.cc.o" "gcc" "tests/CMakeFiles/exec_test.dir/exec_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/jisc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/eddy/CMakeFiles/jisc_eddy.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/jisc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/migration/CMakeFiles/jisc_migration.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/jisc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/reference/CMakeFiles/jisc_reference.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/jisc_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/jisc_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/state/CMakeFiles/jisc_state.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/jisc_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/jisc_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/jisc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
