# Empty compiler generated dependencies file for random_tree_test.
# This may be replaced when dependencies are built.
