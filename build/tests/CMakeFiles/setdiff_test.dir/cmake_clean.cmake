file(REMOVE_RECURSE
  "CMakeFiles/setdiff_test.dir/setdiff_test.cc.o"
  "CMakeFiles/setdiff_test.dir/setdiff_test.cc.o.d"
  "setdiff_test"
  "setdiff_test.pdb"
  "setdiff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/setdiff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
