# Empty compiler generated dependencies file for setdiff_test.
# This may be replaced when dependencies are built.
