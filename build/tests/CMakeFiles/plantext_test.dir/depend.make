# Empty dependencies file for plantext_test.
# This may be replaced when dependencies are built.
