file(REMOVE_RECURSE
  "CMakeFiles/plantext_test.dir/plantext_test.cc.o"
  "CMakeFiles/plantext_test.dir/plantext_test.cc.o.d"
  "plantext_test"
  "plantext_test.pdb"
  "plantext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plantext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
