# Empty dependencies file for jisc_test.
# This may be replaced when dependencies are built.
