file(REMOVE_RECURSE
  "CMakeFiles/jisc_test.dir/jisc_test.cc.o"
  "CMakeFiles/jisc_test.dir/jisc_test.cc.o.d"
  "jisc_test"
  "jisc_test.pdb"
  "jisc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jisc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
