# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/types_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/state_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/equivalence_test[1]_include.cmake")
include("/root/repo/build/tests/jisc_test[1]_include.cmake")
include("/root/repo/build/tests/eddy_test[1]_include.cmake")
include("/root/repo/build/tests/setdiff_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/tracker_test[1]_include.cmake")
include("/root/repo/build/tests/sink_test[1]_include.cmake")
include("/root/repo/build/tests/adaptive_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/stream_test[1]_include.cmake")
include("/root/repo/build/tests/semijoin_test[1]_include.cmake")
include("/root/repo/build/tests/plantext_test[1]_include.cmake")
include("/root/repo/build/tests/random_tree_test[1]_include.cmake")
include("/root/repo/build/tests/time_window_test[1]_include.cmake")
include("/root/repo/build/tests/checkpoint_test[1]_include.cmake")
include("/root/repo/build/tests/validate_test[1]_include.cmake")
include("/root/repo/build/tests/sketch_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
