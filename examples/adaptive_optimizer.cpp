// End-to-end optimize-at-runtime: the AdaptiveController watches per-stream
// fan-out and migrates the plan (with JISC) when a better join order
// emerges. The workload starts with high-fanout streams at the *bottom* of
// the plan (the worst place for them); the controller discovers the
// ascending-fanout order, and after a mid-run distribution shift it adapts
// again — all without halting the query.
//
//   ./build/examples/adaptive_optimizer

#include <cstdio>

#include "core/engine.h"
#include "core/jisc_runtime.h"
#include "stream/synthetic_source.h"
#include "workload/adaptive.h"

using namespace jisc;

namespace {

std::string OrderString(const std::vector<StreamId>& order) {
  std::string s;
  for (StreamId x : order) {
    if (!s.empty()) s += ",";
    s += "S" + std::to_string(x);
  }
  return s;
}

}  // namespace

int main() {
  const int kStreams = 4;
  const uint64_t kWindow = 1000;
  // Deliberately bad initial order: stream 0 has the densest keys.
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1, 2, 3}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(kStreams, kWindow);

  CountingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  AdaptiveController::Options opts;
  opts.evaluate_period = 1000;
  AdaptiveController controller(&engine, opts);

  // Phase 1: stream 0 is dense (50 distinct keys -> ~20 matches/probe),
  // stream 3 sparse (2000 keys).
  SourceConfig cfg;
  cfg.num_streams = kStreams;
  cfg.key_domain = 2000;
  cfg.per_stream_key_domain = {50, 400, 1000, 2000};
  cfg.seed = 12;
  SyntheticSource src(cfg);

  std::printf("start:   plan %s\n", engine.plan().ToString().c_str());
  for (int i = 0; i < 30000; ++i) controller.Push(src.Next());
  std::printf("phase 1: plan %s  (fanouts:", engine.plan().ToString().c_str());
  for (StreamId s = 0; s < kStreams; ++s) {
    std::printf(" S%d=%.1f", s, controller.fanout(s));
  }
  std::printf(")  transitions=%llu\n",
              static_cast<unsigned long long>(controller.transitions()));

  // Phase 2: the distribution flips -- stream 3 becomes the dense one.
  src.SetPerStreamKeyDomains({2000, 1000, 400, 50});
  for (int i = 0; i < 40000; ++i) controller.Push(src.Next());
  std::printf("phase 2: plan %s  (fanouts:", engine.plan().ToString().c_str());
  for (StreamId s = 0; s < kStreams; ++s) {
    std::printf(" S%d=%.1f", s, controller.fanout(s));
  }
  std::printf(")  transitions=%llu\n",
              static_cast<unsigned long long>(controller.transitions()));
  std::printf("advised order now: %s\n",
              OrderString(controller.AdvisedOrder()).c_str());
  std::printf("results: %llu, completions performed on demand: %llu\n",
              static_cast<unsigned long long>(sink.outputs()),
              static_cast<unsigned long long>(engine.metrics().completions));
  return 0;
}
