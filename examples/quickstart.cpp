// Quickstart: build a 4-stream windowed join, run it, migrate the plan with
// JISC mid-stream, and show that the output never stalls and the states
// complete on demand.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "core/engine.h"
#include "core/jisc_runtime.h"
#include "plan/transitions.h"
#include "stream/synthetic_source.h"

using namespace jisc;

int main() {
  // Query: R |x| S |x| T |x| U on a shared key, 1000-tuple windows.
  const int kStreams = 4;
  const uint64_t kWindow = 1000;
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1, 2, 3}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(kStreams, kWindow);

  // A counting sink and an engine running the JISC migration strategy.
  CountingSink sink;
  auto runtime = std::make_unique<JiscRuntime>();
  JiscRuntime* jisc = runtime.get();
  Engine engine(plan, windows, &sink, std::move(runtime));

  // Synthetic input: uniform keys, round-robin across the four streams.
  SourceConfig cfg;
  cfg.num_streams = kStreams;
  cfg.key_domain = kWindow;
  cfg.key_pattern = KeyPattern::kSequential;
  SyntheticSource src(cfg);

  std::printf("initial plan: %s\n", engine.plan().ToString().c_str());
  for (int i = 0; i < 20000; ++i) engine.Push(src.Next());
  std::printf("after 20k tuples: %llu results\n",
              static_cast<unsigned long long>(sink.outputs()));

  // The optimizer (out of scope here, Section 2 of the paper) decided the
  // join order should be reversed. JISC migrates without halting: states
  // shared by both plans are carried over, the rest complete on demand.
  LogicalPlan new_plan =
      LogicalPlan::LeftDeep(WorstCaseOrder({0, 1, 2, 3}), OpKind::kHashJoin);
  Status s = engine.RequestTransition(new_plan);
  if (!s.ok()) {
    std::fprintf(stderr, "transition failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("migrated to:  %s\n", engine.plan().ToString().c_str());
  std::printf("incomplete states right after transition: %d\n",
              jisc->num_incomplete());

  uint64_t before = sink.outputs();
  for (int i = 0; i < 20000; ++i) engine.Push(src.Next());
  std::printf("after 20k more tuples: +%llu results, %llu completions, "
              "%d states still incomplete\n",
              static_cast<unsigned long long>(sink.outputs() - before),
              static_cast<unsigned long long>(engine.metrics().completions),
              jisc->num_incomplete());
  std::printf("metrics: %s\n", engine.metrics().ToString().c_str());
  return 0;
}
