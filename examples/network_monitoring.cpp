// Adaptive network monitoring: correlate five event streams (flows, DNS,
// auth, IDS alerts, netflow exports) on a shared flow id under sliding
// windows. Mid-run the traffic mix shifts (the key domain of the workload
// changes), the plan becomes suboptimal, and the monitor migrates — the
// kind of safety-critical deployment where the paper argues output must
// stay steady. The example contrasts JISC with the Moving State Strategy:
// same query, same input, same transition; Moving State stalls during
// migration, JISC keeps producing.
//
//   ./build/examples/network_monitoring

#include <cstdio>
#include <memory>
#include <vector>

#include "common/timer.h"
#include "core/engine.h"
#include "core/jisc_runtime.h"
#include "migration/moving_state.h"
#include "plan/transitions.h"
#include "stream/synthetic_source.h"

using namespace jisc;

namespace {

constexpr int kStreams = 5;  // flows, dns, auth, ids, netflow
constexpr uint64_t kWindow = 2000;
constexpr int kPhaseTuples = 30000;

struct Run {
  const char* label;
  double max_gap_ms = 0;       // longest silence between consecutive outputs
  double migration_ms = 0;     // time spent inside the transition call
  uint64_t outputs = 0;
};

Run Monitor(std::unique_ptr<MigrationStrategy> strategy, const char* label) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1, 2, 3, 4},
                                           OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(kStreams, kWindow);

  // Track the largest wall-clock gap between consecutive outputs: the
  // "steady output" property the paper is about.
  Run run;
  run.label = label;
  WallTimer since_output;
  CountingSink sink;
  sink.SetCallback([&](const Tuple&, Stamp) {
    run.max_gap_ms = std::max(run.max_gap_ms,
                              since_output.ElapsedSeconds() * 1e3);
    since_output.Restart();
  });
  Engine engine(plan, windows, &sink, std::move(strategy));

  SourceConfig cfg;
  cfg.num_streams = kStreams;
  cfg.key_domain = kWindow;
  cfg.key_pattern = KeyPattern::kSequential;
  cfg.seed = 2026;
  SyntheticSource src(cfg);

  // Phase 1: normal traffic.
  for (int i = 0; i < kPhaseTuples; ++i) engine.Push(src.Next());

  // Traffic shift: the IDS stream becomes the most selective input, so the
  // optimizer wants it at the bottom of the plan -> reorder.
  LogicalPlan new_plan = LogicalPlan::LeftDeep({3, 4, 0, 1, 2},
                                               OpKind::kHashJoin);
  WallTimer migration;
  Status s = engine.RequestTransition(new_plan);
  run.migration_ms = migration.ElapsedSeconds() * 1e3;
  if (!s.ok()) {
    std::fprintf(stderr, "%s: transition failed: %s\n", label,
                 s.ToString().c_str());
    return run;
  }

  // Phase 2: keep monitoring through the migration.
  for (int i = 0; i < kPhaseTuples; ++i) engine.Push(src.Next());
  run.outputs = sink.outputs();
  return run;
}

}  // namespace

int main() {
  std::printf("correlating %d event streams, window %llu, one plan "
              "reorder mid-run\n\n",
              kStreams, static_cast<unsigned long long>(kWindow));
  Run jisc = Monitor(MakeJiscStrategy(), "jisc");
  Run moving = Monitor(MakeMovingStateStrategy(), "moving-state");
  std::printf("%-14s %12s %18s %14s\n", "strategy", "outputs",
              "migration (ms)", "max gap (ms)");
  for (const Run& r : {jisc, moving}) {
    std::printf("%-14s %12llu %18.3f %14.3f\n", r.label,
                static_cast<unsigned long long>(r.outputs), r.migration_ms,
                r.max_gap_ms);
  }
  std::printf(
      "\nBoth strategies produce identical results; Moving State pays for\n"
      "the eager state recomputation inside the migration call, while JISC\n"
      "spreads the completion work over the tuples that actually need it.\n");
  return 0;
}
