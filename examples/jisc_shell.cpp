// Interactive shell around the engine: drive streams, migrate plans by
// typing them, inspect state completeness, checkpoint and restore.
//
//   ./build/examples/jisc_shell
//
// Commands:
//   push <stream> <key>     admit one tuple
//   gen <n>                 admit n synthetic tuples
//   plan <text>             migrate, e.g.  plan ((S2 HJ S1) HJ S0)
//   explain                 operator tree with state/completeness snapshot
//   dot                     graphviz rendering of the same
//   stats                   engine metrics
//   checkpoint <file>       write a checkpoint
//   restore <file>          load a checkpoint (replaces the session engine)
//   help / quit
//
// Example session (also exercised by `echo`-piping, see tests):
//   gen 5000
//   plan ((S3 HJ S2) HJ (S1 HJ S0))
//   explain
//   gen 5000
//   stats

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/checkpoint.h"
#include "core/engine.h"
#include "core/jisc_runtime.h"
#include "exec/explain.h"
#include "plan/plan_text.h"
#include "stream/synthetic_source.h"

using namespace jisc;

namespace {

constexpr int kStreams = 4;
constexpr uint64_t kWindow = 256;

std::unique_ptr<Engine> MakeEngine(const LogicalPlan& plan, Sink* sink) {
  return std::make_unique<Engine>(plan, WindowSpec::Uniform(kStreams, kWindow),
                                  sink, MakeJiscStrategy());
}

}  // namespace

int main() {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1, 2, 3}, OpKind::kHashJoin);
  CountingSink sink;
  std::unique_ptr<Engine> engine = MakeEngine(plan, &sink);

  SourceConfig cfg;
  cfg.num_streams = kStreams;
  cfg.key_domain = kWindow;
  cfg.key_pattern = KeyPattern::kSequential;
  SyntheticSource src(cfg);
  Seq manual_seq = 1'000'000'000;  // manual pushes use a disjoint seq range

  std::printf("jisc shell -- %d streams, window %llu, plan %s\n", kStreams,
              static_cast<unsigned long long>(kWindow),
              engine->plan().ToString().c_str());
  std::string line;
  while (std::printf("> "), std::fflush(stdout), std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      std::printf(
          "push <stream> <key> | gen <n> | plan <text> | explain | dot |\n"
          "stats | checkpoint <file> | restore <file> | quit\n");
    } else if (cmd == "push") {
      int stream = -1;
      long long key = 0;
      if (!(in >> stream >> key) || stream < 0 || stream >= kStreams) {
        std::printf("usage: push <stream 0..%d> <key>\n", kStreams - 1);
        continue;
      }
      BaseTuple t;
      t.stream = static_cast<StreamId>(stream);
      t.key = key;
      t.seq = manual_seq++;
      uint64_t before = sink.outputs();
      engine->Push(t);
      std::printf("ok: +%llu results\n",
                  static_cast<unsigned long long>(sink.outputs() - before));
    } else if (cmd == "gen") {
      long long n = 0;
      if (!(in >> n) || n <= 0) {
        std::printf("usage: gen <n>\n");
        continue;
      }
      uint64_t before = sink.outputs();
      for (long long i = 0; i < n; ++i) engine->Push(src.Next());
      std::printf("ok: %lld tuples, +%llu results\n", n,
                  static_cast<unsigned long long>(sink.outputs() - before));
    } else if (cmd == "plan") {
      std::string text;
      std::getline(in, text);
      auto parsed = ParsePlan(text);
      if (!parsed.ok()) {
        std::printf("parse error: %s\n", parsed.status().ToString().c_str());
        continue;
      }
      Status s = engine->RequestTransition(parsed.value());
      if (!s.ok()) {
        std::printf("transition rejected: %s\n", s.ToString().c_str());
      } else {
        std::printf("migrated (JISC, lazy) to %s\n",
                    engine->plan().ToString().c_str());
      }
    } else if (cmd == "explain") {
      std::fputs(ExplainExecutor(engine->executor()).c_str(), stdout);
    } else if (cmd == "dot") {
      std::fputs(ExecutorToDot(engine->executor()).c_str(), stdout);
    } else if (cmd == "stats") {
      std::printf("%s\nresults=%llu retractions=%llu transitions=%llu\n",
                  engine->metrics().ToString().c_str(),
                  static_cast<unsigned long long>(sink.outputs()),
                  static_cast<unsigned long long>(sink.retractions()),
                  static_cast<unsigned long long>(engine->transitions()));
    } else if (cmd == "checkpoint") {
      std::string file;
      if (!(in >> file)) {
        std::printf("usage: checkpoint <file>\n");
        continue;
      }
      auto bytes = CheckpointEngine(*engine);
      if (!bytes.ok()) {
        std::printf("checkpoint failed: %s\n",
                    bytes.status().ToString().c_str());
        continue;
      }
      std::ofstream out(file, std::ios::binary);
      out << bytes.value();
      std::printf("wrote %zu bytes to %s\n", bytes.value().size(),
                  file.c_str());
    } else if (cmd == "restore") {
      std::string file;
      if (!(in >> file)) {
        std::printf("usage: restore <file>\n");
        continue;
      }
      std::ifstream input(file, std::ios::binary);
      if (!input) {
        std::printf("cannot read %s\n", file.c_str());
        continue;
      }
      std::ostringstream buf;
      buf << input.rdbuf();
      auto restored = RestoreEngine(buf.str(), &sink, MakeJiscStrategy());
      if (!restored.ok()) {
        std::printf("restore failed: %s\n",
                    restored.status().ToString().c_str());
        continue;
      }
      engine = std::move(restored).value();
      std::printf("restored; plan %s\n", engine->plan().ToString().c_str());
    } else {
      std::printf("unknown command '%s' (try help)\n", cmd.c_str());
    }
  }
  return 0;
}
