// Eddy-based execution (Sections 3.1 and 4.6): the same continuous join
// run under CACQ (stateless SteMs; transitions are free but everything is
// recomputed per tuple), eager STAIRs (state modules migrated with
// Promote/Demote at transition time, blocking) and JISC-on-STAIRs (states
// migrated on demand). All three produce the same results; the run prints
// where each spends its effort.
//
//   ./build/examples/eddy_routing

#include <cstdio>
#include <memory>

#include "common/timer.h"
#include "eddy/cacq.h"
#include "eddy/stairs.h"
#include "plan/transitions.h"
#include "stream/synthetic_source.h"

using namespace jisc;

namespace {

constexpr int kStreams = 6;
constexpr uint64_t kWindow = 800;

struct Row {
  const char* label;
  uint64_t outputs;
  double transition_ms;
  double total_ms;
  uint64_t eddy_visits;
  uint64_t completion_inserts;
};

template <typename Proc>
Row Drive(Proc* proc, CountingSink* sink, const char* label) {
  SourceConfig cfg;
  cfg.num_streams = kStreams;
  cfg.key_domain = kWindow;
  cfg.key_pattern = KeyPattern::kSequential;
  cfg.seed = 11;
  SyntheticSource src(cfg);
  WallTimer total;
  for (int i = 0; i < 15000; ++i) proc->Push(src.Next());
  LogicalPlan next = LogicalPlan::LeftDeep(
      WorstCaseOrder({0, 1, 2, 3, 4, 5}), OpKind::kHashJoin);
  WallTimer migration;
  Status s = proc->RequestTransition(next);
  double transition_ms = migration.ElapsedSeconds() * 1e3;
  if (!s.ok()) std::fprintf(stderr, "%s: %s\n", label, s.ToString().c_str());
  for (int i = 0; i < 15000; ++i) proc->Push(src.Next());
  return Row{label,
             sink->outputs(),
             transition_ms,
             total.ElapsedSeconds() * 1e3,
             proc->metrics().eddy_visits,
             proc->metrics().completion_inserts};
}

}  // namespace

int main() {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1, 2, 3, 4, 5},
                                           OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(kStreams, kWindow);

  CountingSink s1, s2, s3;
  CacqExecutor cacq(plan, windows, &s1);
  StairsExecutor eager(plan, windows, &s2,
                       StairsExecutor::MigrationPolicy::kEager);
  StairsExecutor lazy(plan, windows, &s3,
                      StairsExecutor::MigrationPolicy::kLazyJisc);

  Row rows[] = {Drive(&cacq, &s1, "cacq"),
                Drive(&eager, &s2, "stairs-eager"),
                Drive(&lazy, &s3, "stairs-jisc")};

  std::printf("%-14s %10s %16s %12s %14s %14s\n", "executor", "outputs",
              "transition(ms)", "total(ms)", "eddy visits", "promoted");
  for (const Row& r : rows) {
    std::printf("%-14s %10llu %16.3f %12.1f %14llu %14llu\n", r.label,
                static_cast<unsigned long long>(r.outputs), r.transition_ms,
                r.total_ms, static_cast<unsigned long long>(r.eddy_visits),
                static_cast<unsigned long long>(r.completion_inserts));
  }
  std::printf(
      "\nAll executors emit the same result stream. CACQ migrates for free\n"
      "but re-derives intermediate results per tuple; eager STAIRs blocks\n"
      "inside the transition; JISC-on-STAIRs promotes entries on demand.\n");
  return 0;
}
