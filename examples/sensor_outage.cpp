// Windowed set difference with plan migration (Section 4.7): report sensor
// readings that are NOT explained by any maintenance window, calibration
// run, or known-fault record. The query is a set-difference chain
//   readings - maintenance - calibration - faults
// over sliding windows; inner streams suppress matching readings and
// re-admit them when the suppressor expires. Mid-run the chain is reordered
// (the faults feed becomes the best suppressor) and JISC migrates the
// difference states lazily, per Section 4.7's inner-clear rule.
//
//   ./build/examples/sensor_outage

#include <cstdio>

#include "core/engine.h"
#include "core/jisc_runtime.h"
#include "stream/synthetic_source.h"

using namespace jisc;

int main() {
  constexpr StreamId kReadings = 0, kMaintenance = 1, kCalibration = 2,
                     kFaults = 3;
  const uint64_t kWindow = 512;
  LogicalPlan plan = LogicalPlan::SetDifferenceChain(
      kReadings, {kMaintenance, kCalibration, kFaults});
  WindowSpec windows = WindowSpec::Uniform(4, kWindow);

  CollectingSink sink;
  auto runtime = std::make_unique<JiscRuntime>();
  JiscRuntime* jisc = runtime.get();
  Engine engine(plan, windows, &sink, std::move(runtime));

  SourceConfig cfg;
  cfg.num_streams = 4;
  cfg.key_domain = 256;  // sensor ids
  cfg.seed = 7;
  SyntheticSource src(cfg);

  std::printf("plan: %s\n", engine.plan().ToString().c_str());
  for (int i = 0; i < 20000; ++i) engine.Push(src.Next());
  std::printf("after 20k events: %zu alerts raised, %zu withdrawn, "
              "%llu live\n",
              sink.outputs().size(), sink.retractions().size(),
              static_cast<unsigned long long>(
                  engine.executor().root()->state().live_size()));

  // Reorder the suppressor chain; the states for the new inner order do not
  // exist yet and are completed on demand.
  LogicalPlan new_plan = LogicalPlan::SetDifferenceChain(
      kReadings, {kFaults, kMaintenance, kCalibration});
  Status s = engine.RequestTransition(new_plan);
  if (!s.ok()) {
    std::fprintf(stderr, "transition failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("migrated to: %s (%d incomplete states)\n",
              engine.plan().ToString().c_str(), jisc->num_incomplete());

  for (int i = 0; i < 20000; ++i) engine.Push(src.Next());
  std::printf("after 20k more: %zu alerts total, %llu live, "
              "%llu on-demand completions, %d states still incomplete\n",
              sink.outputs().size(),
              static_cast<unsigned long long>(
                  engine.executor().root()->state().live_size()),
              static_cast<unsigned long long>(engine.metrics().completions),
              jisc->num_incomplete());
  return 0;
}
