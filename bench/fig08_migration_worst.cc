// Figure 8: performance during the plan-migration stage, worst case for
// JISC (the transition -- a join-order reversal -- leaves every
// intermediate state of the new plan incomplete, Fig. 3b).
//
// Expected shape (paper): JISC still wins, but its speedup over Parallel
// Track shrinks versus Fig. 7 because of the state-completion overhead;
// CACQ and Parallel Track are unchanged between Figs. 7 and 8 (they do not
// distinguish complete from incomplete states).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace jisc {
namespace bench {
namespace {

void RunStage(benchmark::State& state, ProcessorKind kind) {
  RunMigrationStageBench(state, "fig08", ProcessorKindName(kind), kind,
                         /*best_case=*/false);
}

void BM_Jisc(benchmark::State& state) {
  RunStage(state, ProcessorKind::kJisc);
}
void BM_Cacq(benchmark::State& state) {
  RunStage(state, ProcessorKind::kCacq);
}
void BM_ParallelTrack(benchmark::State& state) {
  RunStage(state, ProcessorKind::kParallelTrack);
}
void BM_HybridTrack(benchmark::State& state) {
  RunStage(state, ProcessorKind::kHybridTrack);
}

}  // namespace
}  // namespace bench
}  // namespace jisc

#define JOINS DenseRange(4, 20, 4)
BENCHMARK(jisc::bench::BM_Jisc)->JOINS->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_Cacq)->JOINS->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_ParallelTrack)->JOINS->UseManualTime()
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_HybridTrack)->JOINS->UseManualTime()
    ->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
