// Figure 8: performance during the plan-migration stage, worst case for
// JISC (the transition -- a join-order reversal -- leaves every
// intermediate state of the new plan incomplete, Fig. 3b).
//
// Expected shape (paper): JISC still wins, but its speedup over Parallel
// Track shrinks versus Fig. 7 because of the state-completion overhead;
// CACQ and Parallel Track are unchanged between Figs. 7 and 8 (they do not
// distinguish complete from incomplete states).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace jisc {
namespace bench {
namespace {

void RunStage(benchmark::State& state, ProcessorKind kind) {
  int n_joins = static_cast<int>(state.range(0));
  for (auto _ : state) {
    StageResult r = MeasureMigrationStage(kind, n_joins, /*best_case=*/false);
    state.SetIterationTime(r.seconds);
    state.counters["work_units"] = static_cast<double>(r.work);
    state.counters["outputs"] = static_cast<double>(r.outputs);
    const StageResult& pt =
        CachedStage(ProcessorKind::kParallelTrack, n_joins, false);
    state.counters["speedup_vs_pt_time"] = pt.seconds / r.seconds;
    state.counters["speedup_vs_pt_work"] =
        static_cast<double>(pt.work) / static_cast<double>(r.work);
    // The headline comparison of Figs. 7 vs 8: how much completion work the
    // worst case adds relative to the best case.
    const StageResult& best = CachedStage(kind, n_joins, true);
    state.counters["work_vs_best_case"] =
        static_cast<double>(r.work) / static_cast<double>(best.work);
  }
}

void BM_Jisc(benchmark::State& state) {
  RunStage(state, ProcessorKind::kJisc);
}
void BM_Cacq(benchmark::State& state) {
  RunStage(state, ProcessorKind::kCacq);
}
void BM_ParallelTrack(benchmark::State& state) {
  RunStage(state, ProcessorKind::kParallelTrack);
}
void BM_HybridTrack(benchmark::State& state) {
  RunStage(state, ProcessorKind::kHybridTrack);
}

}  // namespace
}  // namespace bench
}  // namespace jisc

#define JOINS DenseRange(4, 20, 4)
BENCHMARK(jisc::bench::BM_Jisc)->JOINS->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_Cacq)->JOINS->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_ParallelTrack)->JOINS->UseManualTime()
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_HybridTrack)->JOINS->UseManualTime()
    ->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
