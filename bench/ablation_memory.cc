// Section 5 ("JISC does not add any memory overhead"): state-memory
// footprint around a worst-case transition. JISC keeps one plan's states
// (the completion bookkeeping is a counter per incomplete state); Parallel
// Track and the hybrid strategies hold multiple plans' states until the old
// plan is purged, roughly doubling the footprint for the whole migration
// stage. Counters mem_kb_bucket_<i> sample the footprint per quarter-window
// interval; the transition fires before bucket 4.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace jisc {
namespace bench {
namespace {

constexpr int kJoins = 8;
constexpr int kBuckets = 12;

void RunMemory(benchmark::State& state, ProcessorKind kind) {
  int streams = kJoins + 1;
  uint64_t window = ScaledWindow();
  auto order = Order(streams);
  LogicalPlan plan = LogicalPlan::LeftDeep(order, OpKind::kHashJoin);
  LogicalPlan next = LogicalPlan::LeftDeep(WorstCaseOrder(order),
                                           OpKind::kHashJoin);
  for (auto _ : state) {
    SourceConfig cfg;
    cfg.num_streams = streams;
    cfg.key_domain = DomainFor(window);
    cfg.key_pattern = KeyPattern::kBottomFanout;
    cfg.fanout_streams = {0, static_cast<StreamId>(cfg.num_streams - 1)};
    cfg.seed = 29;
    SyntheticSource src(cfg);
    BuiltProcessor built =
        MakeProcessor(kind, plan, WindowSpec::Uniform(streams, window));
    WarmUp(built.processor.get(), &src, streams, window);
    double baseline_kb =
        static_cast<double>(built.processor->StateMemory()) / 1024.0;
    state.counters["baseline_kb"] = baseline_kb;

    size_t per_bucket = static_cast<size_t>(streams) * window / 4;
    double peak_kb = baseline_kb;
    WallTimer timer;
    for (int bucket = 0; bucket < kBuckets; ++bucket) {
      if (bucket == 4) {
        Status s = built.processor->RequestTransition(next);
        JISC_CHECK(s.ok()) << s.ToString();
      }
      for (size_t i = 0; i < per_bucket; ++i) {
        built.processor->Push(src.Next());
      }
      double kb =
          static_cast<double>(built.processor->StateMemory()) / 1024.0;
      peak_kb = std::max(peak_kb, kb);
      state.counters["mem_kb_bucket_" + std::to_string(bucket)] = kb;
    }
    state.SetIterationTime(timer.ElapsedSeconds());
    state.counters["peak_kb"] = peak_kb;
    state.counters["peak_over_baseline"] = peak_kb / baseline_kb;
  }
}

void BM_Jisc(benchmark::State& state) {
  RunMemory(state, ProcessorKind::kJisc);
}
void BM_MovingState(benchmark::State& state) {
  RunMemory(state, ProcessorKind::kMovingState);
}
void BM_ParallelTrack(benchmark::State& state) {
  RunMemory(state, ProcessorKind::kParallelTrack);
}
void BM_HybridTrack(benchmark::State& state) {
  RunMemory(state, ProcessorKind::kHybridTrack);
}
void BM_Cacq(benchmark::State& state) {
  RunMemory(state, ProcessorKind::kCacq);
}

}  // namespace
}  // namespace bench
}  // namespace jisc

BENCHMARK(jisc::bench::BM_Jisc)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_MovingState)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_ParallelTrack)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_HybridTrack)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_Cacq)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
