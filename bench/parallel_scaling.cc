// Parallel partitioned execution: throughput of the hash-sharded engine at
// 1/2/4/8 shards on a symmetric-hash-join pipeline, steady state and with a
// mid-run JISC migration. shards=1 is the plain single-threaded Engine (the
// equivalence oracle), so its row is the scaling baseline.
//
// Note: on a single-core machine the shards time-slice one CPU, so the
// sharded rows show queue/thread overhead rather than speedup; run on a
// multi-core box to see scaling.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "exec/parallel_executor.h"

namespace jisc {
namespace bench {
namespace {

constexpr int kJoins = 3;

struct ScalingConfig {
  int shards = 1;
  bool migrate = false;
};

// Pushes `n` tuples and waits until every shard has fully processed them
// (shards=1 processes synchronously inside Push), so the measured time
// covers completed work, not just enqueues.
double TimedRun(StreamProcessor* proc, SyntheticSource* src, size_t n,
                const LogicalPlan* mid_run_plan) {
  auto* parallel = dynamic_cast<ParallelExecutor*>(proc);
  WallTimer timer;
  for (size_t i = 0; i < n; ++i) {
    if (mid_run_plan != nullptr && i == n / 2) {
      Status s = proc->RequestTransition(*mid_run_plan);
      JISC_CHECK(s.ok()) << s.ToString();
    }
    proc->Push(src->Next());
  }
  if (parallel != nullptr) parallel->Barrier();
  return timer.ElapsedSeconds();
}

void RunScaling(benchmark::State& state, ScalingConfig cfg) {
  int streams = kJoins + 1;
  uint64_t window = ScaledWindow();
  auto order = Order(streams);
  LogicalPlan plan = LogicalPlan::LeftDeep(order, OpKind::kHashJoin);
  LogicalPlan next =
      LogicalPlan::LeftDeep(WorstCaseOrder(order), OpKind::kHashJoin);
  for (auto _ : state) {
    SourceConfig src_cfg;
    src_cfg.num_streams = streams;
    src_cfg.key_domain = DomainFor(window);
    src_cfg.seed = 7;
    SyntheticSource src(src_cfg);
    BuiltProcessor built =
        MakeProcessor(ProcessorKind::kJisc, plan,
                      WindowSpec::Uniform(streams, window), ThetaSpec(),
                      cfg.shards);
    // Warm the windows outside the timed region.
    size_t warm = static_cast<size_t>(streams) * window;
    for (size_t i = 0; i < warm; ++i) built.processor->Push(src.Next());

    size_t n = static_cast<size_t>(streams) * window * 8;
    double seconds = TimedRun(built.processor.get(), &src, n,
                              cfg.migrate ? &next : nullptr);
    state.SetIterationTime(seconds);

    // Each row reports only its own measurements; compute speedup as
    // throughput_tps(shards=N) / throughput_tps(shards=1) across rows, so
    // the numbers stay correct under --benchmark_filter, repetitions, and
    // any registration order.
    // metrics() quiesces the shards and merges their counters.
    const Metrics& m = built.processor->metrics();
    std::vector<std::pair<std::string, double>> row = {
        {"shards", static_cast<double>(cfg.shards)},
        {"tuples", static_cast<double>(n)},
        {"throughput_tps", static_cast<double>(n) / seconds},
        {"outputs", static_cast<double>(built.sink->outputs())},
        {"work_units", static_cast<double>(m.WorkUnits())},
        {"completions", static_cast<double>(m.completions)}};
    for (const auto& [name, value] : row) state.counters[name] = value;
    EmitRowJson("parallel_scaling", cfg.migrate ? "migration" : "steady",
                cfg.shards, seconds, row);
  }
}

void BM_SteadyState(benchmark::State& state) {
  RunScaling(state, {static_cast<int>(state.range(0)), false});
}
void BM_WithJiscMigration(benchmark::State& state) {
  RunScaling(state, {static_cast<int>(state.range(0)), true});
}

}  // namespace
}  // namespace bench
}  // namespace jisc

BENCHMARK(jisc::bench::BM_SteadyState)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_WithJiscMigration)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
