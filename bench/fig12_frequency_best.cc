// Figure 12: total execution time versus the frequency of plan transitions,
// best case (each transition swaps only the two topmost joins, leaving one
// incomplete state just below the root). Same setup as Fig. 11 otherwise.
//
// Expected shape (paper): JISC's advantage over Parallel Track widens
// relative to Fig. 11 (almost no states to complete), while CACQ remains
// frequency-independent and slow.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace jisc {
namespace bench {
namespace {

constexpr int kJoins = 20;

void BM_Jisc(benchmark::State& state) {
  RunFrequencyBench(state, "fig12", ProcessorKind::kJisc,
                    /*best_case=*/true, kJoins);
}
void BM_Cacq(benchmark::State& state) {
  RunFrequencyBench(state, "fig12", ProcessorKind::kCacq,
                    /*best_case=*/true, kJoins);
}
void BM_ParallelTrack(benchmark::State& state) {
  RunFrequencyBench(state, "fig12", ProcessorKind::kParallelTrack,
                    /*best_case=*/true, kJoins);
}

}  // namespace
}  // namespace bench
}  // namespace jisc

#define FREQS DenseRange(2, 10, 2)
BENCHMARK(jisc::bench::BM_Jisc)->FREQS->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_Cacq)->FREQS->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_ParallelTrack)->FREQS->UseManualTime()
    ->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
