// Section 5 (Propositions 1-3): the expected number of complete states
// after a random pairwise join exchange, its variance, the asymptotic
// approximations, and the concentration C_n/n -> 1. Each row prints the
// closed forms next to a Monte-Carlo estimate; E_over_n climbing toward 1.0
// with n is the paper's "JISC is robust" result.

#include <benchmark/benchmark.h>

#include "analysis/complete_states_model.h"
#include "bench/bench_common.h"

namespace jisc {
namespace bench {
namespace {

void BM_CompleteStatesModel(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(2024 + static_cast<uint64_t>(n));
  for (auto _ : state) {
    MonteCarloResult mc = SimulateCompleteStates(n, 100000, /*epsilon=*/0.5,
                                                 &rng);
    benchmark::DoNotOptimize(mc);
    state.counters["E_exact"] = ExpectedCompleteStates(n);
    state.counters["E_asymptotic"] = ExpectedCompleteStatesAsymptotic(n);
    state.counters["E_montecarlo"] = mc.mean;
    state.counters["E_over_n"] = ExpectedCompleteStates(n) / n;
    state.counters["Var_exact"] = VarianceCompleteStates(n);
    state.counters["Var_asymptotic"] = VarianceCompleteStatesAsymptotic(n);
    state.counters["Var_montecarlo"] = mc.variance;
    state.counters["tail_Cn_below_half_n"] = mc.tail_fraction;
  }
}

// Cross-check of the model against the engine: sampled pairwise exchanges
// applied to real left-deep plans; the structural incomplete-state count
// must average to n - E[J - I].
void BM_ModelVsPlanDiff(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int streams = n + 1;
  Rng rng(7);
  for (auto _ : state) {
    double sum_complete = 0;
    const int kSamples = 20000;
    auto base = Order(streams);
    for (int s = 0; s < kSamples; ++s) {
      auto swapped = RandomTriangularSwap(base, &rng);
      sum_complete += n - CountIncompleteStates(base, swapped);
    }
    state.counters["engine_E_complete"] = sum_complete / kSamples;
    state.counters["model_E_complete"] = ExpectedCompleteStates(n);
  }
}

}  // namespace
}  // namespace bench
}  // namespace jisc

BENCHMARK(jisc::bench::BM_CompleteStatesModel)
    ->RangeMultiplier(4)->Range(4, 4096)->Iterations(1);
BENCHMARK(jisc::bench::BM_ModelVsPlanDiff)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Iterations(1);

BENCHMARK_MAIN();
