// Section 4.6 ablation: JISC applied to the eddy framework. STAIRs with
// eager Promote/Demote (equivalent to Moving State on eddies) versus lazy
// JISC-on-STAIRs. Series over the number of streams: the blocking
// transition cost (eager) versus the amortized on-demand completion (lazy),
// plus the migration-stage processing time of each.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "eddy/stairs.h"

namespace jisc {
namespace bench {
namespace {

void RunStairs(benchmark::State& state, StairsExecutor::MigrationPolicy p) {
  int streams = static_cast<int>(state.range(0));
  uint64_t window = ScaledWindow();
  auto order = Order(streams);
  LogicalPlan plan = LogicalPlan::LeftDeep(order, OpKind::kHashJoin);
  LogicalPlan next = LogicalPlan::LeftDeep(WorstCaseOrder(order),
                                           OpKind::kHashJoin);
  for (auto _ : state) {
    SourceConfig cfg;
    cfg.num_streams = streams;
    cfg.key_domain = DomainFor(window);
    cfg.key_pattern = KeyPattern::kBottomFanout;
    cfg.fanout_streams = {0, static_cast<StreamId>(cfg.num_streams - 1)};
    cfg.seed = 5;
    SyntheticSource src(cfg);
    CountingSink sink;
    StairsExecutor stairs(plan, WindowSpec::Uniform(streams, window), &sink,
                          p);
    for (size_t i = 0; i < static_cast<size_t>(streams) * window * 2; ++i) {
      stairs.Push(src.Next());
    }
    WallTimer transition_timer;
    Status s = stairs.RequestTransition(next);
    JISC_CHECK(s.ok()) << s.ToString();
    double transition_seconds = transition_timer.ElapsedSeconds();

    uint64_t work_before = stairs.metrics().WorkUnits();
    WallTimer stage_timer;
    size_t stage = static_cast<size_t>(streams) * window + 512;
    for (size_t i = 0; i < stage; ++i) stairs.Push(src.Next());
    double stage_seconds = stage_timer.ElapsedSeconds();

    state.SetIterationTime(transition_seconds + stage_seconds);
    state.counters["transition_ms"] = transition_seconds * 1e3;
    state.counters["stage_ms"] = stage_seconds * 1e3;
    state.counters["stage_work"] =
        static_cast<double>(stairs.metrics().WorkUnits() - work_before);
    state.counters["completions"] =
        static_cast<double>(stairs.metrics().completions);
    state.counters["incomplete_after_stage"] =
        static_cast<double>(stairs.num_incomplete());
  }
}

void BM_StairsEager(benchmark::State& state) {
  RunStairs(state, StairsExecutor::MigrationPolicy::kEager);
}
void BM_StairsJisc(benchmark::State& state) {
  RunStairs(state, StairsExecutor::MigrationPolicy::kLazyJisc);
}

}  // namespace
}  // namespace bench
}  // namespace jisc

BENCHMARK(jisc::bench::BM_StairsEager)->DenseRange(4, 12, 2)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_StairsJisc)->DenseRange(4, 12, 2)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
