// Supplementary figure: the paper's core pitch is *steady query output*
// during a plan transition. This bench records a per-interval output
// timeline around a forced worst-case transition for JISC, Moving State and
// Parallel Track: JISC's series stays flat, Moving State shows a silent gap
// at the transition (output resumes only after the eager recomputation),
// and Parallel Track shows depressed throughput for the whole migration
// stage. Counters output_bucket_<i> give results produced per interval;
// the transition fires at the start of bucket 4.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace jisc {
namespace bench {
namespace {

constexpr int kJoins = 8;
constexpr int kBuckets = 12;

void RunTimeline(benchmark::State& state, ProcessorKind kind) {
  int streams = kJoins + 1;
  uint64_t window = ScaledWindow();
  auto order = Order(streams);
  LogicalPlan plan = LogicalPlan::LeftDeep(order, OpKind::kHashJoin);
  LogicalPlan next = LogicalPlan::LeftDeep(WorstCaseOrder(order),
                                           OpKind::kHashJoin);
  for (auto _ : state) {
    SourceConfig cfg;
    cfg.num_streams = streams;
    cfg.key_domain = DomainFor(window);
    cfg.key_pattern = KeyPattern::kBottomFanout;
    cfg.fanout_streams = {0, static_cast<StreamId>(cfg.num_streams - 1)};
    cfg.seed = 3;
    SyntheticSource src(cfg);
    BuiltProcessor built =
        MakeProcessor(kind, plan, WindowSpec::Uniform(streams, window));
    WarmUp(built.processor.get(), &src, streams, window);

    // Each bucket processes the same tuple count; wall time per bucket
    // reflects the instantaneous throughput. The transition fires between
    // buckets 3 and 4 (inside bucket 4's wall time for Moving State, whose
    // migration is synchronous).
    size_t per_bucket = static_cast<size_t>(streams) * window / 4;
    double total = 0;
    for (int bucket = 0; bucket < kBuckets; ++bucket) {
      WallTimer timer;
      if (bucket == 4) {
        Status s = built.processor->RequestTransition(next);
        JISC_CHECK(s.ok()) << s.ToString();
      }
      uint64_t out_before = built.processor->metrics().outputs;
      for (size_t i = 0; i < per_bucket; ++i) {
        built.processor->Push(src.Next());
      }
      double secs = timer.ElapsedSeconds();
      total += secs;
      state.counters["ms_bucket_" + std::to_string(bucket)] = secs * 1e3;
      state.counters["tps_bucket_" + std::to_string(bucket)] =
          per_bucket / secs;
      (void)out_before;
    }
    state.SetIterationTime(total);
  }
}

void BM_Jisc(benchmark::State& state) {
  RunTimeline(state, ProcessorKind::kJisc);
}
void BM_MovingState(benchmark::State& state) {
  RunTimeline(state, ProcessorKind::kMovingState);
}
void BM_ParallelTrack(benchmark::State& state) {
  RunTimeline(state, ProcessorKind::kParallelTrack);
}

}  // namespace
}  // namespace bench
}  // namespace jisc

BENCHMARK(jisc::bench::BM_Jisc)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_MovingState)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_ParallelTrack)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
