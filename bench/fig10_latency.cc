// Figure 10: output latency caused by a plan transition, versus window
// size. (a) a QEP of (symmetric hash) equi-joins; (b) a QEP of
// nested-loops theta joins. JISC vs the Moving State Strategy.
//
// Expected shape (paper): JISC latency is negligible and flat; Moving State
// grows with the window — moderately for hash joins, dramatically
// (quadratically) for nested-loops joins, which is why it is unusable for
// frequent transitions on theta queries.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace jisc {
namespace bench {
namespace {

constexpr int kStreams = 5;  // 4 joins

void RunLatency(benchmark::State& state, ProcessorKind kind, OpKind join) {
  uint64_t window = static_cast<uint64_t>(state.range(0));
  auto order = Order(kStreams);
  LogicalPlan plan = LogicalPlan::LeftDeep(order, join);
  LogicalPlan next = LogicalPlan::LeftDeep(WorstCaseOrder(order), join);
  for (auto _ : state) {
    SourceConfig cfg;
    cfg.num_streams = kStreams;
    cfg.key_domain = DomainFor(window);
    cfg.key_pattern = KeyPattern::kBottomFanout;
    cfg.fanout_streams = {0, static_cast<StreamId>(cfg.num_streams - 1)};
    cfg.seed = 7;
    SyntheticSource src(cfg);
    BuiltProcessor built =
        MakeProcessor(kind, plan, WindowSpec::Uniform(kStreams, window));
    WarmUp(built.processor.get(), &src, kStreams, window);
    LatencyResult r = MeasureTransitionLatency(
        built.processor.get(), built.sink.get(), next, &src,
        /*max_tuples=*/window * kStreams);
    state.SetIterationTime(r.first_output_seconds);
    state.counters["migration_ms"] = r.migration_seconds * 1e3;
    state.counters["first_output_ms"] = r.first_output_seconds * 1e3;
    state.counters["tuples_until_output"] =
        static_cast<double>(r.tuples_until_output);
  }
}

void BM_HashJoins_Jisc(benchmark::State& state) {
  RunLatency(state, ProcessorKind::kJisc, OpKind::kHashJoin);
}
void BM_HashJoins_MovingState(benchmark::State& state) {
  RunLatency(state, ProcessorKind::kMovingState, OpKind::kHashJoin);
}
void BM_NestedLoops_Jisc(benchmark::State& state) {
  RunLatency(state, ProcessorKind::kJisc, OpKind::kNljJoin);
}
void BM_NestedLoops_MovingState(benchmark::State& state) {
  RunLatency(state, ProcessorKind::kMovingState, OpKind::kNljJoin);
}

// Window sweep: the paper's 10k..100k scaled down. Nested-loops windows
// stay smaller (the eager baseline is quadratic in them).
void HashWindows(benchmark::internal::Benchmark* b) {
  uint64_t w = ScaledWindow();
  for (uint64_t x : {w / 2, w, 2 * w, 5 * w, 10 * w}) {
    b->Arg(static_cast<int64_t>(x));
  }
}
void NljWindows(benchmark::internal::Benchmark* b) {
  uint64_t w = ScaledWindow();
  for (uint64_t x : {w / 4, w / 2, w, 2 * w, 4 * w}) {
    b->Arg(static_cast<int64_t>(x));
  }
}

}  // namespace
}  // namespace bench
}  // namespace jisc

BENCHMARK(jisc::bench::BM_HashJoins_Jisc)->Apply(jisc::bench::HashWindows)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_HashJoins_MovingState)
    ->Apply(jisc::bench::HashWindows)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_NestedLoops_Jisc)->Apply(jisc::bench::NljWindows)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_NestedLoops_MovingState)
    ->Apply(jisc::bench::NljWindows)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
