// Figure 10: output latency caused by a plan transition, versus window
// size. (a) a QEP of (symmetric hash) equi-joins; (b) a QEP of
// nested-loops theta joins. JISC vs the Moving State Strategy.
//
// Expected shape (paper): JISC latency is negligible and flat; Moving State
// grows with the window — moderately for hash joins, dramatically
// (quadratically) for nested-loops joins, which is why it is unusable for
// frequent transitions on theta queries.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace jisc {
namespace bench {
namespace {

constexpr int kStreams = 5;  // 4 joins

void RunLatency(benchmark::State& state, ProcessorKind kind, OpKind join) {
  uint64_t window = static_cast<uint64_t>(state.range(0));
  auto order = Order(kStreams);
  LogicalPlan plan = LogicalPlan::LeftDeep(order, join);
  LogicalPlan next = LogicalPlan::LeftDeep(WorstCaseOrder(order), join);
  for (auto _ : state) {
    SourceConfig cfg;
    cfg.num_streams = kStreams;
    cfg.key_domain = DomainFor(window);
    cfg.key_pattern = KeyPattern::kBottomFanout;
    cfg.fanout_streams = {0, static_cast<StreamId>(cfg.num_streams - 1)};
    cfg.seed = 7;
    SyntheticSource src(cfg);
    // Per-output delay histograms + migration-phase spans: this is the
    // bench the paper's Fig. 10 output-delay claims rest on, so it carries
    // the full observability bundle and exports the trace (JISC_OBS_DIR).
    Observability obs;
    BuiltProcessor built = MakeProcessor(
        kind, plan, WindowSpec::Uniform(kStreams, window), ThetaSpec(),
        /*parallelism=*/1, &obs);
    WarmUp(built.processor.get(), &src, kStreams, window);
    // The steady-state warm-up delays would drown the migration-stage tail.
    obs.output_delay_ns.Reset();
    LatencyResult r = MeasureTransitionLatency(
        built.processor.get(), built.sink.get(), next, &src,
        /*max_tuples=*/window * kStreams);
    state.SetIterationTime(r.first_output_seconds);
    std::vector<std::pair<std::string, double>> row = {
        {"migration_ms", r.migration_seconds * 1e3},
        {"first_output_ms", r.first_output_seconds * 1e3},
        {"tuples_until_output",
         static_cast<double>(r.tuples_until_output)},
        {"delay_p50_us",
         static_cast<double>(obs.output_delay_ns.P50()) / 1e3},
        {"delay_p90_us",
         static_cast<double>(obs.output_delay_ns.P90()) / 1e3},
        {"delay_p99_us",
         static_cast<double>(obs.output_delay_ns.P99()) / 1e3},
        {"delay_max_us",
         static_cast<double>(obs.output_delay_ns.max()) / 1e3}};
    for (const auto& [name, value] : row) state.counters[name] = value;
    std::string series = std::string(ProcessorKindName(kind)) + "_" +
                         (join == OpKind::kHashJoin ? "hash" : "nlj");
    EmitRowJson("fig10", series, static_cast<int64_t>(window),
                r.first_output_seconds, row);
    ExportObservability("fig10_" + series + "_w" + std::to_string(window),
                        obs, &built.processor->metrics());
  }
}

void BM_HashJoins_Jisc(benchmark::State& state) {
  RunLatency(state, ProcessorKind::kJisc, OpKind::kHashJoin);
}
void BM_HashJoins_MovingState(benchmark::State& state) {
  RunLatency(state, ProcessorKind::kMovingState, OpKind::kHashJoin);
}
void BM_NestedLoops_Jisc(benchmark::State& state) {
  RunLatency(state, ProcessorKind::kJisc, OpKind::kNljJoin);
}
void BM_NestedLoops_MovingState(benchmark::State& state) {
  RunLatency(state, ProcessorKind::kMovingState, OpKind::kNljJoin);
}

// Window sweep: the paper's 10k..100k scaled down. Nested-loops windows
// stay smaller (the eager baseline is quadratic in them).
void HashWindows(benchmark::internal::Benchmark* b) {
  uint64_t w = ScaledWindow();
  for (uint64_t x : {w / 2, w, 2 * w, 5 * w, 10 * w}) {
    b->Arg(static_cast<int64_t>(x));
  }
}
void NljWindows(benchmark::internal::Benchmark* b) {
  uint64_t w = ScaledWindow();
  for (uint64_t x : {w / 4, w / 2, w, 2 * w, 4 * w}) {
    b->Arg(static_cast<int64_t>(x));
  }
}

}  // namespace
}  // namespace bench
}  // namespace jisc

BENCHMARK(jisc::bench::BM_HashJoins_Jisc)->Apply(jisc::bench::HashWindows)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_HashJoins_MovingState)
    ->Apply(jisc::bench::HashWindows)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_NestedLoops_Jisc)->Apply(jisc::bench::NljWindows)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_NestedLoops_MovingState)
    ->Apply(jisc::bench::NljWindows)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
