// Figure 10: output latency caused by a plan transition, versus window
// size. (a) a QEP of (symmetric hash) equi-joins; (b) a QEP of
// nested-loops theta joins. JISC vs the Moving State Strategy.
//
// Expected shape (paper): JISC latency is negligible and flat; Moving State
// grows with the window — moderately for hash joins, dramatically
// (quadratically) for nested-loops joins, which is why it is unusable for
// frequent transitions on theta queries.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "core/engine.h"

namespace jisc {
namespace bench {
namespace {

constexpr int kStreams = 5;  // 4 joins

void RunLatency(benchmark::State& state, ProcessorKind kind, OpKind join) {
  uint64_t window = static_cast<uint64_t>(state.range(0));
  auto order = Order(kStreams);
  LogicalPlan plan = LogicalPlan::LeftDeep(order, join);
  LogicalPlan next = LogicalPlan::LeftDeep(WorstCaseOrder(order), join);
  for (auto _ : state) {
    SourceConfig cfg;
    cfg.num_streams = kStreams;
    cfg.key_domain = DomainFor(window);
    cfg.key_pattern = KeyPattern::kBottomFanout;
    cfg.fanout_streams = {0, static_cast<StreamId>(cfg.num_streams - 1)};
    cfg.seed = 7;
    SyntheticSource src(cfg);
    // Per-output delay histograms + migration-phase spans: this is the
    // bench the paper's Fig. 10 output-delay claims rest on, so it carries
    // the full observability bundle and exports the trace (JISC_OBS_DIR).
    Observability obs;
    BuiltProcessor built = MakeProcessor(
        kind, plan, WindowSpec::Uniform(kStreams, window), ThetaSpec(),
        /*parallelism=*/1, &obs);
    WarmUp(built.processor.get(), &src, kStreams, window);
    // The steady-state warm-up delays would drown the migration-stage tail.
    obs.output_delay_ns.Reset();
    LatencyResult r = MeasureTransitionLatency(
        built.processor.get(), built.sink.get(), next, &src,
        /*max_tuples=*/window * kStreams);
    state.SetIterationTime(r.first_output_seconds);
    std::vector<std::pair<std::string, double>> row = {
        {"migration_ms", r.migration_seconds * 1e3},
        {"first_output_ms", r.first_output_seconds * 1e3},
        {"tuples_until_output",
         static_cast<double>(r.tuples_until_output)},
        {"delay_p50_us",
         static_cast<double>(obs.output_delay_ns.P50()) / 1e3},
        {"delay_p90_us",
         static_cast<double>(obs.output_delay_ns.P90()) / 1e3},
        {"delay_p99_us",
         static_cast<double>(obs.output_delay_ns.P99()) / 1e3},
        {"delay_max_us",
         static_cast<double>(obs.output_delay_ns.max()) / 1e3}};
    for (const auto& [name, value] : row) state.counters[name] = value;
    std::string series = std::string(ProcessorKindName(kind)) + "_" +
                         (join == OpKind::kHashJoin ? "hash" : "nlj");
    EmitRowJson("fig10", series, static_cast<int64_t>(window),
                r.first_output_seconds, row);
    ExportObservability("fig10_" + series + "_w" + std::to_string(window),
                        obs, &built.processor->metrics());
  }
}

// --- fluid migration contrast (BENCH_fluid.json) ---
//
// Queue-adjusted output delay on the worst-case hash shape: arrivals are
// scheduled on a fixed-rate ingest clock (stride calibrated on the
// post-transition plan with 3x headroom), and each event's delay is
// measured against its SCHEDULED arrival, not its actual admission. Both
// series run the IDENTICAL completion machinery — the all-at-once series
// drains the entire carryover backlog in one unbounded batch at the first
// post-transition event (the classic halt), the fluid series paces the
// same batches under the delay budget — so the total work is equal by
// construction and the delta below is purely scheduling. An all-at-once
// halt delays every event queued behind it — the latency a caller
// actually observes — while fluid pacing keeps the drain inside the spare
// ingest capacity and the p99 stays near the steady-state line. This is
// the repo's Fig. 10 "fluid flat-line vs all-at-once spike" evidence; the
// oracle battery in tests/fluid_migration_test.cc proves the two modes
// compute identical results, and BM_HashJoins_MovingState above covers
// the native bulk-copy baseline's own migration stall.
void RunFluidContrast(benchmark::State& state, ProcessorKind kind,
                      bool fluid_mode) {
  uint64_t window = static_cast<uint64_t>(state.range(0));
  auto order = Order(kStreams);
  LogicalPlan plan = LogicalPlan::LeftDeep(order, OpKind::kHashJoin);
  LogicalPlan next =
      LogicalPlan::LeftDeep(WorstCaseOrder(order), OpKind::kHashJoin);
  for (auto _ : state) {
    SourceConfig cfg;
    cfg.num_streams = kStreams;
    cfg.key_domain = DomainFor(window);
    cfg.key_pattern = KeyPattern::kBottomFanout;
    cfg.fanout_streams = {0, static_cast<StreamId>(cfg.num_streams - 1)};
    cfg.seed = 7;
    // Fluid: one key every 8th event — per-key completion costs a few
    // microseconds on this shape, so amortized drain stays inside the
    // spare ingest capacity and the queue never accumulates (the
    // flat-line). All-at-once: the same scheduler with an effectively
    // unbounded batch, i.e. the whole backlog drains in the first
    // post-transition batch (the halt). The scenario pack uses denser
    // fluid batches; this bench picks the latency-optimal corner of the
    // same knob space.
    FluidOptions fluid;
    fluid.mode = FluidOptions::Mode::kFluid;
    if (fluid_mode) {
      fluid.batch_keys = 1;
      fluid.delay_budget_us = 50;
      fluid.batch_period = 8;
    } else {
      fluid.batch_keys = 1000000000;
      fluid.delay_budget_us = 1000000000;
      fluid.batch_period = 1;
    }
    // Calibrate the ingest stride on the POST-transition plan: the drain
    // runs on the worst-case order, so the clock must be sustainable there
    // (3x headroom) or sustained overload — not the transition — would
    // dominate the tail for every mode. The measured stage is 2x the
    // window sweep so the paced drain (batch_period * key_domain events)
    // finishes inside it.
    size_t measured = 2 * window * kStreams;
    SourceConfig calib_cfg = cfg;
    SyntheticSource calib_src(calib_cfg);
    BuiltProcessor calib = MakeProcessor(
        kind, next, WindowSpec::Uniform(kStreams, window), ThetaSpec(),
        /*parallelism=*/1, /*obs=*/nullptr, ParallelExecutor::Options(),
        IngressGuard::Options(), fluid);
    WarmUp(calib.processor.get(), &calib_src, kStreams, window);
    WallTimer calib_timer;
    for (size_t i = 0; i < measured; ++i) {
      calib.processor->Push(calib_src.Next());
    }
    uint64_t stride_ns = static_cast<uint64_t>(
        calib_timer.ElapsedNanos() * 3.0 / measured);
    if (stride_ns == 0) stride_ns = 1;

    // Measured stage, best of 3 trials by p99: a single OS preemption
    // poisons a queue-adjusted tail for thousands of events, so the
    // least-perturbed trial is the signal — the genuine all-at-once drain
    // is deterministic work and survives the min, scheduler noise does
    // not. The transition stall lands between t0 and the first scheduled
    // arrival, so every queued event inherits it.
    constexpr int kTrials = 3;
    Histogram best;
    double best_seconds = 0;
    uint64_t backlog_end = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      SyntheticSource trial_src(cfg);
      BuiltProcessor built = MakeProcessor(
          kind, plan, WindowSpec::Uniform(kStreams, window), ThetaSpec(),
          /*parallelism=*/1, /*obs=*/nullptr, ParallelExecutor::Options(),
          IngressGuard::Options(), fluid);
      WarmUp(built.processor.get(), &trial_src, kStreams, window);
      Histogram delay_ns;
      WallTimer ingest;
      benchmark::DoNotOptimize(
          built.processor->RequestTransition(next).ok());
      for (size_t i = 0; i < measured; ++i) {
        built.processor->Push(trial_src.Next());
        uint64_t scheduled = (i + 1) * stride_ns;
        uint64_t now = ingest.ElapsedNanos();
        delay_ns.Record(now > scheduled ? now - scheduled : 0);
      }
      double seconds = ingest.ElapsedSeconds();
      if (trial == 0 || delay_ns.P99() < best.P99()) {
        best = delay_ns;
        best_seconds = seconds;
        backlog_end = 0;
        if (auto* engine = dynamic_cast<Engine*>(built.processor.get())) {
          backlog_end = engine->strategy().FluidBacklog();
        }
      }
    }
    double seconds = best_seconds;
    state.SetIterationTime(seconds);
    std::vector<std::pair<std::string, double>> row = {
        {"stride_ns", static_cast<double>(stride_ns)},
        {"backlog_end", static_cast<double>(backlog_end)},
        {"qdelay_p50_us", static_cast<double>(best.P50()) / 1e3},
        {"qdelay_p90_us", static_cast<double>(best.P90()) / 1e3},
        {"qdelay_p99_us", static_cast<double>(best.P99()) / 1e3},
        {"qdelay_max_us", static_cast<double>(best.max()) / 1e3}};
    for (const auto& [name, value] : row) state.counters[name] = value;
    std::string series = std::string(ProcessorKindName(kind)) +
                         (fluid_mode ? "_fluid" : "_all_at_once");
    EmitRowJson("fluid", series, static_cast<int64_t>(window), seconds, row);
  }
}

void BM_FluidContrast_MovingStateAllAtOnce(benchmark::State& state) {
  RunFluidContrast(state, ProcessorKind::kMovingState, /*fluid_mode=*/false);
}
void BM_FluidContrast_MovingStateFluid(benchmark::State& state) {
  RunFluidContrast(state, ProcessorKind::kMovingState, /*fluid_mode=*/true);
}
void BM_FluidContrast_JiscFluid(benchmark::State& state) {
  RunFluidContrast(state, ProcessorKind::kJisc, /*fluid_mode=*/true);
}

void BM_HashJoins_Jisc(benchmark::State& state) {
  RunLatency(state, ProcessorKind::kJisc, OpKind::kHashJoin);
}
void BM_HashJoins_MovingState(benchmark::State& state) {
  RunLatency(state, ProcessorKind::kMovingState, OpKind::kHashJoin);
}
void BM_NestedLoops_Jisc(benchmark::State& state) {
  RunLatency(state, ProcessorKind::kJisc, OpKind::kNljJoin);
}
void BM_NestedLoops_MovingState(benchmark::State& state) {
  RunLatency(state, ProcessorKind::kMovingState, OpKind::kNljJoin);
}

// Window sweep: the paper's 10k..100k scaled down. Nested-loops windows
// stay smaller (the eager baseline is quadratic in them).
void HashWindows(benchmark::internal::Benchmark* b) {
  uint64_t w = ScaledWindow();
  for (uint64_t x : {w / 2, w, 2 * w, 5 * w, 10 * w}) {
    b->Arg(static_cast<int64_t>(x));
  }
}
void NljWindows(benchmark::internal::Benchmark* b) {
  uint64_t w = ScaledWindow();
  for (uint64_t x : {w / 4, w / 2, w, 2 * w, 4 * w}) {
    b->Arg(static_cast<int64_t>(x));
  }
}
// The fluid contrast keeps a tighter sweep: per-key completion cost grows
// with the window, and past ~4x the base window a fixed batch_period can
// no longer hide the drain inside the ingest headroom — the window-scaling
// story belongs to RunLatency above; this sweep isolates the pacing story.
void FluidWindows(benchmark::internal::Benchmark* b) {
  uint64_t w = ScaledWindow();
  for (uint64_t x : {w / 2, w, 2 * w}) {
    b->Arg(static_cast<int64_t>(x));
  }
}

}  // namespace
}  // namespace bench
}  // namespace jisc

BENCHMARK(jisc::bench::BM_HashJoins_Jisc)->Apply(jisc::bench::HashWindows)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_HashJoins_MovingState)
    ->Apply(jisc::bench::HashWindows)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_NestedLoops_Jisc)->Apply(jisc::bench::NljWindows)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_NestedLoops_MovingState)
    ->Apply(jisc::bench::NljWindows)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_FluidContrast_MovingStateAllAtOnce)
    ->Apply(jisc::bench::FluidWindows)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_FluidContrast_MovingStateFluid)
    ->Apply(jisc::bench::FluidWindows)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_FluidContrast_JiscFluid)
    ->Apply(jisc::bench::FluidWindows)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
