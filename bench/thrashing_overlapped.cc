// Section 5.1.2 (thrashing avoidance): in a highly dynamic environment the
// optimizer keeps switching plans faster than windows turn over, so
// transitions OVERLAP — earlier migrations never finish before the next one
// lands. The paper argues this is where eager strategies fall apart:
//   * Moving State recomputes whole states at every flip, mostly without
//     payoff (counters: eager_inserts);
//   * Parallel Track accumulates live plans (counter: max_live_plans) and
//     multiplies processing + dedup cost;
//   * JISC completes only the values that are actually probed between flips
//     (counter: completions) and never halts.
// range(0) = transitions per window turnover (higher = more dynamic).

#include <algorithm>

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "core/engine.h"
#include "core/jisc_runtime.h"
#include "migration/parallel_track.h"

namespace jisc {
namespace bench {
namespace {

constexpr int kJoins = 10;

struct ThrashResult {
  double seconds = 0;
  uint64_t work = 0;
  uint64_t completions = 0;
  uint64_t inserts = 0;
  size_t max_live_plans = 1;
};

ThrashResult RunThrash(ProcessorKind kind, int flips_per_turnover) {
  int streams = kJoins + 1;
  uint64_t window = ScaledWindow();
  size_t turnover = static_cast<size_t>(streams) * window;
  size_t period = std::max<size_t>(1, turnover / flips_per_turnover);
  size_t total = turnover * 4;

  SourceConfig cfg;
  cfg.num_streams = streams;
  cfg.key_domain = DomainFor(window);
  cfg.key_pattern = KeyPattern::kBottomFanout;
  cfg.fanout_streams = {0, static_cast<StreamId>(cfg.num_streams - 1)};
  cfg.seed = 41;
  SyntheticSource src(cfg);

  auto order = Order(streams);
  LogicalPlan plan = LogicalPlan::LeftDeep(order, OpKind::kHashJoin);
  BuiltProcessor built =
      MakeProcessor(kind, plan, WindowSpec::Uniform(streams, window));
  WarmUp(built.processor.get(), &src, streams, window);

  Rng rng(17);
  auto cur = order;
  ThrashResult r;
  auto* pt = dynamic_cast<ParallelTrackProcessor*>(built.processor.get());
  WallTimer timer;
  size_t pushed = 0;
  while (pushed < total) {
    size_t chunk = std::min(period, total - pushed);
    for (size_t i = 0; i < chunk; ++i) built.processor->Push(src.Next());
    pushed += chunk;
    if (pushed < total) {
      cur = RandomTriangularSwap(cur, &rng);
      Status s = built.processor->RequestTransition(
          LogicalPlan::LeftDeep(cur, OpKind::kHashJoin));
      JISC_CHECK(s.ok()) << s.ToString();
    }
    if (pt != nullptr) {
      r.max_live_plans = std::max(r.max_live_plans, pt->num_live_plans());
    }
  }
  r.seconds = timer.ElapsedSeconds();
  r.work = built.processor->metrics().WorkUnits();
  r.completions = built.processor->metrics().completions;
  r.inserts = built.processor->metrics().inserts;
  return r;
}

void RunBench(benchmark::State& state, ProcessorKind kind) {
  int flips = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ThrashResult r = RunThrash(kind, flips);
    state.SetIterationTime(r.seconds);
    state.counters["work_units"] = static_cast<double>(r.work);
    state.counters["completions"] = static_cast<double>(r.completions);
    state.counters["inserts"] = static_cast<double>(r.inserts);
    state.counters["max_live_plans"] = static_cast<double>(r.max_live_plans);
  }
}

void BM_Jisc(benchmark::State& state) {
  RunBench(state, ProcessorKind::kJisc);
}
void BM_MovingState(benchmark::State& state) {
  RunBench(state, ProcessorKind::kMovingState);
}
void BM_ParallelTrack(benchmark::State& state) {
  RunBench(state, ProcessorKind::kParallelTrack);
}

}  // namespace
}  // namespace bench
}  // namespace jisc

#define FLIPS Arg(1)->Arg(2)->Arg(4)->Arg(8)
BENCHMARK(jisc::bench::BM_Jisc)->FLIPS->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_MovingState)->FLIPS->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_ParallelTrack)->FLIPS->UseManualTime()
    ->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
