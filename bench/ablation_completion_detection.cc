// Section 4.3 ablation: completion detection via the paper's per-state
// counters versus the Parallel-Track-style fallback that only waits for a
// full window turnover. The counter variant should declare states complete
// far earlier, cutting residual per-probe completion checks during the
// post-migration phase.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "core/engine.h"
#include "core/jisc_runtime.h"

namespace jisc {
namespace bench {
namespace {

void RunDetection(benchmark::State& state, JiscOptions::DetectionMode mode) {
  int n_joins = static_cast<int>(state.range(0));
  int streams = n_joins + 1;
  uint64_t window = ScaledWindow();
  auto order = Order(streams);
  LogicalPlan plan = LogicalPlan::LeftDeep(order, OpKind::kHashJoin);
  LogicalPlan next = LogicalPlan::LeftDeep(WorstCaseOrder(order),
                                           OpKind::kHashJoin);
  for (auto _ : state) {
    SourceConfig cfg;
    cfg.num_streams = streams;
    cfg.key_domain = DomainFor(window);
    cfg.key_pattern = KeyPattern::kBottomFanout;
    cfg.fanout_streams = {0, static_cast<StreamId>(cfg.num_streams - 1)};
    cfg.seed = 17;
    SyntheticSource src(cfg);
    CountingSink sink;
    JiscOptions jopts;
    jopts.detection = mode;
    auto runtime = std::make_unique<JiscRuntime>(jopts);
    JiscRuntime* rt = runtime.get();
    Engine engine(plan, WindowSpec::Uniform(streams, window), &sink,
                  std::move(runtime));
    for (size_t i = 0; i < static_cast<size_t>(streams) * window * 2; ++i) {
      engine.Push(src.Next());
    }
    Status s = engine.RequestTransition(next);
    JISC_CHECK(s.ok()) << s.ToString();

    // Process half a window turnover, then see how many states each
    // detection mode has managed to declare complete.
    WallTimer timer;
    size_t stage = static_cast<size_t>(streams) * window / 2;
    for (size_t i = 0; i < stage; ++i) engine.Push(src.Next());
    double mid_seconds = timer.ElapsedSeconds();
    double incomplete_mid = rt->num_incomplete();
    for (size_t i = 0; i < stage * 3; ++i) engine.Push(src.Next());
    state.SetIterationTime(timer.ElapsedSeconds());
    state.counters["mid_stage_ms"] = mid_seconds * 1e3;
    state.counters["incomplete_at_half_turnover"] = incomplete_mid;
    state.counters["incomplete_at_end"] =
        static_cast<double>(rt->num_incomplete());
    state.counters["completions"] =
        static_cast<double>(engine.metrics().completions);
  }
}

void BM_CounterDetection(benchmark::State& state) {
  RunDetection(state, JiscOptions::DetectionMode::kCounter);
}
void BM_TurnoverOnlyDetection(benchmark::State& state) {
  RunDetection(state, JiscOptions::DetectionMode::kWindowTurnoverOnly);
}

}  // namespace
}  // namespace bench
}  // namespace jisc

BENCHMARK(jisc::bench::BM_CounterDetection)->Arg(4)->Arg(8)->Arg(12)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_TurnoverOnlyDetection)->Arg(4)->Arg(8)->Arg(12)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
