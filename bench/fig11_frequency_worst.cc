// Figure 11: total execution time versus the frequency of plan transitions,
// worst case (each transition reverses the join order, leaving every
// intermediate state incomplete). 20-join plan; range(0) is the number of
// transitions forced over the run (the paper forces one per 1..10 million
// tuples of a 20M-tuple run).
//
// Expected shape (paper): CACQ's cost is independent of the transition
// frequency but uniformly high; JISC beats Parallel Track at every
// frequency, and both improve as transitions become rarer.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace jisc {
namespace bench {
namespace {

constexpr int kJoins = 20;

void BM_Jisc(benchmark::State& state) {
  RunFrequencyBench(state, "fig11", ProcessorKind::kJisc,
                    /*best_case=*/false, kJoins);
}
void BM_Cacq(benchmark::State& state) {
  RunFrequencyBench(state, "fig11", ProcessorKind::kCacq,
                    /*best_case=*/false, kJoins);
}
void BM_ParallelTrack(benchmark::State& state) {
  RunFrequencyBench(state, "fig11", ProcessorKind::kParallelTrack,
                    /*best_case=*/false, kJoins);
}

}  // namespace
}  // namespace bench
}  // namespace jisc

#define FREQS DenseRange(2, 10, 2)
BENCHMARK(jisc::bench::BM_Jisc)->FREQS->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_Cacq)->FREQS->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_ParallelTrack)->FREQS->UseManualTime()
    ->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
