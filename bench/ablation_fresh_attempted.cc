// Section 4.4 ablation: when are missing entries computed? kOnProbe
// completes a value at a state the first time that state is probed for it;
// kOnFirstReceipt (the paper's fresh/attempted reading) completes the value
// at *every* incomplete state as soon as its first post-transition tuple is
// received. Under a Zipf-skewed key distribution the same hot values recur
// constantly, so both modes must do each value once — the counters show how
// much eager-per-value work kOnFirstReceipt fronts, and that neither mode
// recomputes values (completions stay bounded by distinct hot values).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "core/engine.h"
#include "core/jisc_runtime.h"

namespace jisc {
namespace bench {
namespace {

void RunMode(benchmark::State& state, JiscOptions::CompletionMode mode) {
  double zipf_s = static_cast<double>(state.range(0)) / 10.0;
  const int streams = 9;  // 8 joins
  uint64_t window = ScaledWindow();
  auto order = Order(streams);
  LogicalPlan plan = LogicalPlan::LeftDeep(order, OpKind::kHashJoin);
  LogicalPlan next = LogicalPlan::LeftDeep(WorstCaseOrder(order),
                                           OpKind::kHashJoin);
  for (auto _ : state) {
    SourceConfig cfg;
    cfg.num_streams = streams;
    cfg.key_domain = DomainFor(window);
    cfg.zipf_s = zipf_s;
    cfg.seed = 23;
    SyntheticSource src(cfg);
    CountingSink sink;
    JiscOptions jopts;
    jopts.completion_mode = mode;
    Engine engine(plan, WindowSpec::Uniform(streams, window), &sink,
                  MakeJiscStrategy(jopts));
    for (size_t i = 0; i < static_cast<size_t>(streams) * window * 2; ++i) {
      engine.Push(src.Next());
    }
    Status s = engine.RequestTransition(next);
    JISC_CHECK(s.ok()) << s.ToString();
    WallTimer timer;
    size_t stage = static_cast<size_t>(streams) * window;
    for (size_t i = 0; i < stage; ++i) engine.Push(src.Next());
    state.SetIterationTime(timer.ElapsedSeconds());
    state.counters["completions"] =
        static_cast<double>(engine.metrics().completions);
    state.counters["completion_inserts"] =
        static_cast<double>(engine.metrics().completion_inserts);
    state.counters["completion_dedup_hits"] =
        static_cast<double>(engine.metrics().completion_dedup_hits);
    state.counters["work_units"] =
        static_cast<double>(engine.metrics().WorkUnits());
  }
}

void BM_OnProbe(benchmark::State& state) {
  RunMode(state, JiscOptions::CompletionMode::kOnProbe);
}
void BM_OnFirstReceipt(benchmark::State& state) {
  RunMode(state, JiscOptions::CompletionMode::kOnFirstReceipt);
}

}  // namespace
}  // namespace bench
}  // namespace jisc

// range(0) = Zipf skew * 10: uniform (0) through heavily skewed (1.2).
BENCHMARK(jisc::bench::BM_OnProbe)->Arg(0)->Arg(8)->Arg(12)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_OnFirstReceipt)->Arg(0)->Arg(8)->Arg(12)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
