// Figure 9: overhead during normal operation (no transition in flight) on a
// 20-join plan. (a) JISC vs a pure symmetric-hash-join pipeline (what the
// Parallel Track strategy runs outside migration); (b) JISC vs CACQ.
//
// Expected shape (paper): JISC adds almost nothing over the plain pipeline;
// CACQ is roughly 2x slower because every tuple bounces through the eddy
// once per join.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace jisc {
namespace bench {
namespace {

constexpr int kJoins = 20;

void RunNormal(benchmark::State& state, ProcessorKind kind) {
  int streams = kJoins + 1;
  uint64_t window = ScaledWindow();
  LogicalPlan plan = LogicalPlan::LeftDeep(Order(streams), OpKind::kHashJoin);
  for (auto _ : state) {
    SourceConfig cfg;
    cfg.num_streams = streams;
    cfg.key_domain = DomainFor(window);
    cfg.key_pattern = KeyPattern::kBottomFanout;
    cfg.fanout_streams = {0, static_cast<StreamId>(cfg.num_streams - 1)};
    cfg.seed = 99;
    SyntheticSource src(cfg);
    BuiltProcessor built =
        MakeProcessor(kind, plan, WindowSpec::Uniform(streams, window));
    // Warm the windows, then measure steady state.
    for (size_t i = 0; i < static_cast<size_t>(streams) * window; ++i) {
      built.processor->Push(src.Next());
    }
    size_t n = static_cast<size_t>(streams) * window * 4;
    ConsumeStats stats = Consume(built.processor.get(), &src, n);
    state.SetIterationTime(stats.seconds);
    std::vector<std::pair<std::string, double>> row = {
        {"tuples", static_cast<double>(stats.tuples)},
        {"throughput_tps",
         static_cast<double>(stats.tuples) / stats.seconds},
        {"work_units", static_cast<double>(stats.work_units)},
        {"work_per_tuple", static_cast<double>(stats.work_units) /
                               static_cast<double>(stats.tuples)},
        {"eddy_visits",
         static_cast<double>(built.processor->metrics().eddy_visits)}};
    for (const auto& [name, value] : row) state.counters[name] = value;
    EmitRowJson("fig09", ProcessorKindName(kind), kJoins, stats.seconds,
                row);
  }
}

// Fig. 9a contenders.
void BM_Jisc(benchmark::State& state) {
  RunNormal(state, ProcessorKind::kJisc);
}
void BM_PureSymmetricHashJoin(benchmark::State& state) {
  RunNormal(state, ProcessorKind::kStaticPipeline);
}
// Fig. 9b contender.
void BM_Cacq(benchmark::State& state) {
  RunNormal(state, ProcessorKind::kCacq);
}
// Supplementary stateless baseline: CACQ without the eddy round trips.
void BM_MJoin(benchmark::State& state) {
  RunNormal(state, ProcessorKind::kMJoin);
}

}  // namespace
}  // namespace bench
}  // namespace jisc

BENCHMARK(jisc::bench::BM_PureSymmetricHashJoin)->UseManualTime()
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_Jisc)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_Cacq)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_MJoin)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
