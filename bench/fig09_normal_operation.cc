// Figure 9: overhead during normal operation (no transition in flight) on a
// 20-join plan. (a) JISC vs a pure symmetric-hash-join pipeline (what the
// Parallel Track strategy runs outside migration); (b) JISC vs CACQ.
//
// Expected shape (paper): JISC adds almost nothing over the plain pipeline;
// CACQ is roughly 2x slower because every tuple bounces through the eddy
// once per join.
//
// JISC_TELEMETRY_MS=<period>: attach the live-telemetry plane (gauges +
// background sampler at that period) to each contender's run — the CI
// observability-smoke job and the perf gate's telemetry-overhead probe both
// use this knob. With JISC_OBS_DIR also set, the sampled series lands next
// to the trace/metrics files as <name>.telemetry.jsonl / <name>.prom.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_common.h"
#include "obs/observability.h"
#include "obs/telemetry.h"

namespace jisc {
namespace bench {
namespace {

constexpr int kJoins = 20;

void RunNormal(benchmark::State& state, ProcessorKind kind) {
  int streams = kJoins + 1;
  uint64_t window = ScaledWindow();
  uint64_t telemetry_ms =
      static_cast<uint64_t>(GetEnvInt("JISC_TELEMETRY_MS", 0));
  LogicalPlan plan = LogicalPlan::LeftDeep(Order(streams), OpKind::kHashJoin);
  for (auto _ : state) {
    SourceConfig cfg;
    cfg.num_streams = streams;
    cfg.key_domain = DomainFor(window);
    cfg.key_pattern = KeyPattern::kBottomFanout;
    cfg.fanout_streams = {0, static_cast<StreamId>(cfg.num_streams - 1)};
    cfg.seed = 99;
    SyntheticSource src(cfg);
    std::unique_ptr<Observability> obs;
    std::unique_ptr<TelemetrySampler> sampler;
    if (telemetry_ms > 0) {
      Observability::Options oopts;
      oopts.telemetry = true;
      obs = std::make_unique<Observability>(oopts);
    }
    BuiltProcessor built =
        MakeProcessor(kind, plan, WindowSpec::Uniform(streams, window),
                      ThetaSpec(), /*parallelism=*/1, obs.get());
    if (obs != nullptr) {
      TelemetrySampler::Options topts;
      topts.period_ms = telemetry_ms;
      sampler = std::make_unique<TelemetrySampler>(obs.get(), topts);
    }
    // Warm the windows, then measure steady state.
    for (size_t i = 0; i < static_cast<size_t>(streams) * window; ++i) {
      built.processor->Push(src.Next());
    }
    size_t n = static_cast<size_t>(streams) * window * 4;
    ConsumeStats stats = Consume(built.processor.get(), &src, n);
    state.SetIterationTime(stats.seconds);
    std::vector<std::pair<std::string, double>> row = {
        {"tuples", static_cast<double>(stats.tuples)},
        {"throughput_tps",
         static_cast<double>(stats.tuples) / stats.seconds},
        {"work_units", static_cast<double>(stats.work_units)},
        {"work_per_tuple", static_cast<double>(stats.work_units) /
                               static_cast<double>(stats.tuples)},
        {"eddy_visits",
         static_cast<double>(built.processor->metrics().eddy_visits)}};
    if (sampler != nullptr) {
      sampler->Stop();
      row.emplace_back("telemetry_samples",
                       static_cast<double>(sampler->samples_taken()));
      ExportObservability(std::string("fig09_") + ProcessorKindName(kind),
                          *obs, &built.processor->metrics(), sampler.get());
    }
    for (const auto& [name, value] : row) state.counters[name] = value;
    EmitRowJson("fig09", ProcessorKindName(kind), kJoins, stats.seconds,
                row);
  }
}

// Fig. 9a contenders.
void BM_Jisc(benchmark::State& state) {
  RunNormal(state, ProcessorKind::kJisc);
}
void BM_PureSymmetricHashJoin(benchmark::State& state) {
  RunNormal(state, ProcessorKind::kStaticPipeline);
}
// Fig. 9b contender.
void BM_Cacq(benchmark::State& state) {
  RunNormal(state, ProcessorKind::kCacq);
}
// Supplementary stateless baseline: CACQ without the eddy round trips.
void BM_MJoin(benchmark::State& state) {
  RunNormal(state, ProcessorKind::kMJoin);
}

}  // namespace
}  // namespace bench
}  // namespace jisc

BENCHMARK(jisc::bench::BM_PureSymmetricHashJoin)->UseManualTime()
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_Jisc)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_Cacq)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_MJoin)->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
