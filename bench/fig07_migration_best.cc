// Figure 7: performance during the plan-migration stage, best case for JISC
// (the transition leaves a single incomplete state just below the root,
// Fig. 5). Series: running time per strategy over the number of joins, and
// each strategy's speedup over the Parallel Track baseline.
//
// Expected shape (paper): JISC fastest, up to an order of magnitude over
// Parallel Track at 20 joins; CACQ in between but degrading with joins.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace jisc {
namespace bench {
namespace {

void RunStage(benchmark::State& state, ProcessorKind kind) {
  RunMigrationStageBench(state, "fig07", ProcessorKindName(kind), kind,
                         /*best_case=*/true);
}

void BM_Jisc(benchmark::State& state) {
  RunStage(state, ProcessorKind::kJisc);
}
void BM_Cacq(benchmark::State& state) {
  RunStage(state, ProcessorKind::kCacq);
}
void BM_ParallelTrack(benchmark::State& state) {
  RunStage(state, ProcessorKind::kParallelTrack);
}
void BM_HybridTrack(benchmark::State& state) {
  RunStage(state, ProcessorKind::kHybridTrack);
}

}  // namespace
}  // namespace bench
}  // namespace jisc

#define JOINS DenseRange(4, 20, 4)
BENCHMARK(jisc::bench::BM_Jisc)->JOINS->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_Cacq)->JOINS->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_ParallelTrack)->JOINS->UseManualTime()
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_HybridTrack)->JOINS->UseManualTime()
    ->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
