// Figure 7: performance during the plan-migration stage, best case for JISC
// (the transition leaves a single incomplete state just below the root,
// Fig. 5). Series: running time per strategy over the number of joins, and
// each strategy's speedup over the Parallel Track baseline.
//
// Expected shape (paper): JISC fastest, up to an order of magnitude over
// Parallel Track at 20 joins; CACQ in between but degrading with joins.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace jisc {
namespace bench {
namespace {

void RunStage(benchmark::State& state, ProcessorKind kind, bool best_case) {
  int n_joins = static_cast<int>(state.range(0));
  for (auto _ : state) {
    StageResult r = MeasureMigrationStage(kind, n_joins, best_case);
    state.SetIterationTime(r.seconds);
    state.counters["work_units"] = static_cast<double>(r.work);
    state.counters["outputs"] = static_cast<double>(r.outputs);
    state.counters["stage_tuples"] = static_cast<double>(r.tuples);
    const StageResult& pt =
        CachedStage(ProcessorKind::kParallelTrack, n_joins, best_case);
    state.counters["speedup_vs_pt_time"] = pt.seconds / r.seconds;
    state.counters["speedup_vs_pt_work"] =
        static_cast<double>(pt.work) / static_cast<double>(r.work);
  }
}

void BM_Jisc(benchmark::State& state) {
  RunStage(state, ProcessorKind::kJisc, /*best_case=*/true);
}
void BM_Cacq(benchmark::State& state) {
  RunStage(state, ProcessorKind::kCacq, /*best_case=*/true);
}
void BM_ParallelTrack(benchmark::State& state) {
  RunStage(state, ProcessorKind::kParallelTrack, /*best_case=*/true);
}
void BM_HybridTrack(benchmark::State& state) {
  RunStage(state, ProcessorKind::kHybridTrack, /*best_case=*/true);
}

}  // namespace
}  // namespace bench
}  // namespace jisc

#define JOINS DenseRange(4, 20, 4)
BENCHMARK(jisc::bench::BM_Jisc)->JOINS->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_Cacq)->JOINS->UseManualTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_ParallelTrack)->JOINS->UseManualTime()
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(jisc::bench::BM_HybridTrack)->JOINS->UseManualTime()
    ->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
