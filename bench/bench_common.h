#ifndef JISC_BENCH_BENCH_COMMON_H_
#define JISC_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/env.h"
#include "common/logging.h"
#include "common/timer.h"
#include "obs/trace_export.h"
#include "plan/transitions.h"
#include "scenario/json.h"
#include "stream/synthetic_source.h"
#include "workload/factory.h"
#include "workload/runner.h"

namespace jisc {
namespace bench {

// Paper scale: windows of 10,000 tuples, 10M-tuple runs, up to 20 joins.
// JISC_BENCH_SCALE (default 0.02) scales the window; run lengths follow
// from it so every bench finishes quickly on one core yet reproduces the
// figures' shape. JISC_BENCH_SCALE=1 approaches paper scale.
inline uint64_t ScaledWindow() {
  double w = 10000.0 * BenchScale();
  return static_cast<uint64_t>(w < 50 ? 50 : w);
}

// Key domain giving ~1.0 expected matches per single-window probe
// (critical per-level join selectivity). This keeps every intermediate
// state near the window size in expectation -- the regime in which the
// paper's effects appear: CACQ pays ~n probes per tuple versus ~n/2 for a
// pipeline, and Parallel Track's duplicated processing and purge scans
// dominate the migration stage.
inline uint64_t DomainFor(uint64_t window) { return window; }

inline std::vector<StreamId> Order(int streams) {
  std::vector<StreamId> o;
  for (int i = 0; i < streams; ++i) o.push_back(static_cast<StreamId>(i));
  return o;
}

// Observability export hook shared by the benches. When JISC_OBS_DIR is
// set, writes <dir>/<name>.trace.json (Chrome trace_event format, loadable
// in chrome://tracing or ui.perfetto.dev) and <dir>/<name>.metrics.json
// (flat counters + histogram quantiles + trace-ring drop count). When
// `sampler` is non-null, also <dir>/<name>.telemetry.jsonl (the sampled
// time-series, tools/telemetry_plot.py input) and <dir>/<name>.prom
// (Prometheus text format for a textfile collector). Returns false when
// the hook is inactive; tools/trace_summary.py renders the trace/metrics
// files on a terminal. CHECK-fails on a write failure: a bench run asked
// to produce evidence must not silently drop it.
inline bool ExportObservability(const std::string& name,
                                const Observability& obs,
                                const Metrics* metrics = nullptr,
                                const TelemetrySampler* sampler = nullptr) {
  const char* dir = std::getenv("JISC_OBS_DIR");
  if (dir == nullptr || *dir == '\0') return false;
  std::string base = std::string(dir) + "/" + name;
  {
    std::string path = base + ".trace.json";
    std::ofstream f(path);
    JISC_CHECK(f.good()) << "cannot write " << path;
    WriteChromeTrace(f, obs.trace.Snapshot(), obs.trace.dropped(), name);
    JISC_CHECK(f.good()) << "short write to " << path;
  }
  std::vector<std::pair<std::string, uint64_t>> counters;
  if (metrics != nullptr) counters = metrics->NamedCounters();
  std::vector<std::pair<std::string, const Histogram*>> hists = {
      {"output_delay_ns", &obs.output_delay_ns},
      {"probe_ns", &obs.probe_ns},
      {"insert_ns", &obs.insert_ns},
      {"completion_ns", &obs.completion_ns}};
  {
    std::string path = base + ".metrics.json";
    std::ofstream f(path);
    JISC_CHECK(f.good()) << "cannot write " << path;
    WriteMetricsJson(f, counters, hists, obs.trace.dropped());
    JISC_CHECK(f.good()) << "short write to " << path;
  }
  if (sampler != nullptr) {
    std::vector<TelemetrySnapshot> series = sampler->Snapshots();
    {
      std::string path = base + ".telemetry.jsonl";
      std::ofstream f(path);
      JISC_CHECK(f.good()) << "cannot write " << path;
      WriteTelemetryJsonl(f, series, sampler->dropped_snapshots());
      JISC_CHECK(f.good()) << "short write to " << path;
    }
    std::vector<std::pair<std::string, HistogramSummary>> summaries;
    summaries.reserve(hists.size());
    for (const auto& [hname, h] : hists) {
      summaries.emplace_back(hname, SummarizeHistogram(*h));
    }
    std::string path = base + ".prom";
    std::ofstream f(path);
    JISC_CHECK(f.good()) << "cannot write " << path;
    WritePrometheusText(f, counters, summaries,
                        series.empty() ? nullptr : &series.back());
    JISC_CHECK(f.good()) << "short write to " << path;
  }
  return true;
}

// Machine-readable bench rows. When JISC_BENCH_JSON_DIR is set, every call
// appends one row for <series, arg> and rewrites
// <dir>/BENCH_<bench>.json as a JSON array — the seed of the per-figure
// result trajectory the CI artifacts collect. Returns false when the hook
// is inactive. The file is rewritten on each append (rows per bench run
// number in the dozens), so a crashed bench still leaves valid JSON.
inline bool EmitRowJson(
    const std::string& bench, const std::string& series, int64_t arg,
    double seconds,
    const std::vector<std::pair<std::string, double>>& counters) {
  const char* dir = std::getenv("JISC_BENCH_JSON_DIR");
  if (dir == nullptr || *dir == '\0') return false;
  static std::map<std::string, Json> rows_by_bench;
  Json& rows = rows_by_bench.emplace(bench, Json::Array()).first->second;
  Json row = Json::Object();
  row.Set("bench", bench);
  row.Set("series", series);
  row.Set("arg", arg);
  row.Set("seconds", seconds);
  Json c = Json::Object();
  for (const auto& [name, value] : counters) c.Set(name, value);
  row.Set("counters", std::move(c));
  rows.Append(std::move(row));
  std::ofstream f(std::string(dir) + "/BENCH_" + bench + ".json");
  if (!f) return false;
  f << rows.Pretty() << "\n";
  return true;
}

// One migration-stage measurement following the paper's Section 6.1
// methodology: warm the windows, force one transition, then process the
// tuples of the migration stage — the stage ends when the Parallel Track
// strategy would discard its old plan, i.e. after every stream's window has
// turned over. All strategies process the identical recorded tuples.
struct StageResult {
  double seconds = 0;
  uint64_t work = 0;
  uint64_t outputs = 0;
  size_t tuples = 0;
};

inline StageResult MeasureMigrationStage(ProcessorKind kind, int n_joins,
                                         bool best_case,
                                         uint64_t seed = 1234) {
  int streams = n_joins + 1;
  uint64_t window = ScaledWindow();
  SourceConfig cfg;
  cfg.num_streams = streams;
  cfg.key_domain = DomainFor(window);
  cfg.key_pattern = KeyPattern::kBottomFanout;
  cfg.fanout_streams = {0, static_cast<StreamId>(cfg.num_streams - 1)};
  cfg.seed = seed;
  SyntheticSource src(cfg);

  auto order = Order(streams);
  LogicalPlan plan = LogicalPlan::LeftDeep(order, OpKind::kHashJoin);
  LogicalPlan next = LogicalPlan::LeftDeep(
      best_case ? BestCaseOrder(order) : WorstCaseOrder(order),
      OpKind::kHashJoin);

  BuiltProcessor built = MakeProcessor(kind, plan, WindowSpec::Uniform(
                                                       streams, window));
  // Warm: fill every window twice over.
  size_t warm = static_cast<size_t>(streams) * window * 2;
  for (size_t i = 0; i < warm; ++i) built.processor->Push(src.Next());

  Status s = built.processor->RequestTransition(next);
  JISC_CHECK(s.ok()) << s.ToString();

  // Migration stage length: one full window turnover (plus purge slack).
  size_t stage = static_cast<size_t>(streams) * window + 1024;
  ConsumeStats stats = Consume(built.processor.get(), &src, stage);
  StageResult r;
  r.seconds = stats.seconds;
  r.work = stats.work_units;
  r.outputs = stats.outputs;
  r.tuples = stats.tuples;
  return r;
}

// Cached per-config results so speedup counters can reference the Parallel
// Track baseline without re-measuring.
inline const StageResult& CachedStage(ProcessorKind kind, int n_joins,
                                      bool best_case) {
  static std::map<std::tuple<int, int, bool>, StageResult> cache;
  auto key = std::make_tuple(static_cast<int>(kind), n_joins, best_case);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, MeasureMigrationStage(kind, n_joins, best_case))
             .first;
  }
  return it->second;
}

// Shared driver for Figs. 7/8 (migration-stage cost over join count):
// measures one stage, publishes the per-figure counters, and emits the
// machine-readable row. Worst-case runs additionally report
// work_vs_best_case — the headline Fig. 7 vs Fig. 8 comparison of how much
// completion work the order reversal adds.
template <typename State>
void RunMigrationStageBench(State& state, const std::string& bench,
                            const std::string& series, ProcessorKind kind,
                            bool best_case) {
  int n_joins = static_cast<int>(state.range(0));
  for (auto _ : state) {
    StageResult r = MeasureMigrationStage(kind, n_joins, best_case);
    state.SetIterationTime(r.seconds);
    const StageResult& pt =
        CachedStage(ProcessorKind::kParallelTrack, n_joins, best_case);
    std::vector<std::pair<std::string, double>> row = {
        {"work_units", static_cast<double>(r.work)},
        {"outputs", static_cast<double>(r.outputs)},
        {"stage_tuples", static_cast<double>(r.tuples)},
        {"speedup_vs_pt_time", pt.seconds / r.seconds},
        {"speedup_vs_pt_work",
         static_cast<double>(pt.work) / static_cast<double>(r.work)}};
    if (!best_case) {
      const StageResult& best = CachedStage(kind, n_joins, true);
      row.emplace_back("work_vs_best_case", static_cast<double>(r.work) /
                                                static_cast<double>(best.work));
    }
    for (const auto& [name, value] : row) state.counters[name] = value;
    EmitRowJson(bench, series, n_joins, r.seconds, row);
  }
}

// Shared driver for Figs. 11/12: total execution time under periodic
// forced transitions (flipping between the base plan and its best- or
// worst-case reorder). `transitions` = number of flips over the run.
template <typename State>
void RunFrequencyBench(State& state, const std::string& bench,
                       ProcessorKind kind, bool best_case, int n_joins) {
  int streams = n_joins + 1;
  uint64_t window = ScaledWindow();
  size_t total = static_cast<size_t>(streams) * window * 8;
  size_t transitions = static_cast<size_t>(state.range(0));
  size_t period = total / (transitions + 1);
  auto order = Order(streams);
  LogicalPlan plan_a = LogicalPlan::LeftDeep(order, OpKind::kHashJoin);
  LogicalPlan plan_b = LogicalPlan::LeftDeep(
      best_case ? BestCaseOrder(order) : WorstCaseOrder(order),
      OpKind::kHashJoin);
  for (auto _ : state) {
    SourceConfig cfg;
    cfg.num_streams = streams;
    cfg.key_domain = DomainFor(window);
    cfg.key_pattern = KeyPattern::kBottomFanout;
    cfg.fanout_streams = {0, static_cast<StreamId>(cfg.num_streams - 1)};
    cfg.seed = 31;
    SyntheticSource src(cfg);
    BuiltProcessor built =
        MakeProcessor(kind, plan_a, WindowSpec::Uniform(streams, window));
    WarmUp(built.processor.get(), &src, streams, window);
    WallTimer timer;
    bool on_b = false;
    size_t pushed = 0;
    size_t done_transitions = 0;
    while (pushed < total) {
      size_t chunk = std::min(period, total - pushed);
      for (size_t i = 0; i < chunk; ++i) built.processor->Push(src.Next());
      pushed += chunk;
      if (pushed < total && done_transitions < transitions) {
        on_b = !on_b;
        Status s = built.processor->RequestTransition(on_b ? plan_b : plan_a);
        JISC_CHECK(s.ok()) << s.ToString();
        ++done_transitions;
      }
    }
    double seconds = timer.ElapsedSeconds();
    state.SetIterationTime(seconds);
    std::vector<std::pair<std::string, double>> row = {
        {"tuples", static_cast<double>(total)},
        {"transitions", static_cast<double>(done_transitions)},
        {"throughput_tps", static_cast<double>(total) / seconds},
        {"work_units",
         static_cast<double>(built.processor->metrics().WorkUnits())},
        {"completions",
         static_cast<double>(built.processor->metrics().completions)}};
    for (const auto& [name, value] : row) state.counters[name] = value;
    EmitRowJson(bench, ProcessorKindName(kind),
                static_cast<int64_t>(transitions), seconds, row);
  }
}

}  // namespace bench
}  // namespace jisc

#endif  // JISC_BENCH_BENCH_COMMON_H_
