#!/usr/bin/env python3
"""Project lint for JISC's concurrency and hygiene contracts.

Enforces the invariants that clang -Wthread-safety and clang-tidy cannot
express (thread *identity*, project layering, header hygiene):

  coordinator-only   DEPRECATED: superseded by tools/jisc_verify, which
                     enforces the same contract transitively over the call
                     graph. The regex version is kept under --legacy (and
                     for its self-test); default runs print a note instead.
  naked-thread       std::thread may only be constructed/held by the
                     parallel execution engine; everything else must go
                     through it.
  unguarded-mutex    a class holding a Mutex must annotate at least one
                     field with JISC_GUARDED_BY / JISC_PT_GUARDED_BY (or
                     carry a waiver); raw std::mutex members are rejected
                     outright — the analysis cannot see through them.
  header-hygiene     public headers must stand alone: canonical include
                     guard (JISC_<PATH>_H_, no #pragma once) and a direct
                     #include for every std symbol they use.

Waivers: a finding on line N is suppressed when line N or N-1 contains
    // lint: allow(<check-id>): <reason>
The reason is mandatory — a bare allow() is itself a finding.

Exit status: 0 clean, 1 findings, 2 usage/internal error.

Used three ways: locally (`python3 tools/lint_contracts.py`), as ctest
cases (clean tree passes, the seeded misuse in tests/annotation_compile_test
fails), and by the CI static-analysis job (which also publishes
--list-checks into the job summary).
"""

import argparse
import json
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Shared analysis configuration (also read by tools/jisc_verify): the
# std::thread allowlist lives there so the two tools cannot drift.
_WAIVER_CONFIG = os.path.join(REPO_ROOT, "tools", "analysis_waivers.json")


def _load_shared_config():
    try:
        with open(_WAIVER_CONFIG, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError):
        return {}


# Files allowed to construct or hold std::thread (the parallel engine) —
# everything else must be driven through it.
NAKED_THREAD_ALLOWLIST = set(_load_shared_config().get(
    "naked_thread_allowlist",
    ["src/exec/parallel_executor.h", "src/exec/parallel_executor.cc"]))

# Symbol -> required direct include, for the standalone-header check. The
# map is deliberately high-precision: each pattern only matches an
# unambiguous use of the symbol.
STD_SYMBOLS = [
    (r"\bstd::string\b", "<string>"),
    (r"\bstd::vector<", "<vector>"),
    (r"\bstd::deque<", "<deque>"),
    (r"\bstd::map<", "<map>"),
    (r"\bstd::unordered_map<", "<unordered_map>"),
    (r"\bstd::unordered_set<", "<unordered_set>"),
    (r"\bstd::(?:unique_ptr|shared_ptr|make_unique|make_shared|weak_ptr)\b",
     "<memory>"),
    (r"\bstd::(?:move|forward|pair|make_pair|swap|exchange)\b", "<utility>"),
    (r"\bstd::function<", "<functional>"),
    (r"\bstd::atomic\b", "<atomic>"),
    (r"\bstd::optional<", "<optional>"),
    (r"\bstd::ostream\b", "<ostream>"),
    (r"\bstd::(?:ostringstream|istringstream|stringstream)\b", "<sstream>"),
    (r"\bstd::chrono\b", "<chrono>"),
    (r"\bstd::thread\b", "<thread>"),
    (r"\bstd::mutex\b", "<mutex>"),
    (r"\bstd::condition_variable\b", "<condition_variable>"),
    (r"\b(?:u?int(?:8|16|32|64)_t)\b", "<cstdint>"),
    (r"\bsize_t\b", "<cstddef>"),
]

CHECKS = [
    ("coordinator-only",
     "DEPRECATED here — superseded by tools/jisc_verify's transitive "
     "call-graph check; the regex version runs only under --legacy"),
    ("naked-thread",
     "std::thread only inside the parallel engine "
     "(src/exec/parallel_executor.*)"),
    ("unguarded-mutex",
     "a class with a Mutex member needs >= 1 JISC_GUARDED_BY / "
     "JISC_PT_GUARDED_BY field (waiver: lint: allow(unguarded-mutex)); "
     "raw std::mutex members are always rejected"),
    ("header-hygiene",
     "src headers: canonical JISC_<PATH>_H_ guard, no #pragma once, direct "
     "#include for every std symbol used"),
]


class Finding:
    def __init__(self, path, line, check, message):
        self.path = path
        self.line = line
        self.check = check
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


def strip_comments(text):
    """Blanks out comments and string literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append(re.sub(r"[^\n]", " ", text[i:j]))
            i = j
        elif c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(c + " " * (j - i - 2) + (c if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


WAIVER_RE = re.compile(r"lint:\s*allow\((?P<check>[\w-]+)\)(?P<reason>.*)")


def collect_waivers(raw_lines):
    """line number -> set of waived check ids (a waiver covers its own line
    and the next)."""
    waivers = {}
    bad = []
    for idx, line in enumerate(raw_lines, start=1):
        m = WAIVER_RE.search(line)
        if not m:
            continue
        reason = m.group("reason").lstrip(": ").strip()
        if not reason:
            bad.append(idx)
            continue
        for covered in (idx, idx + 1):
            waivers.setdefault(covered, set()).add(m.group("check"))
    return waivers, bad


def match_brace_block(text, open_pos):
    """Returns the position just past the brace matching text[open_pos]."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def find_worker_regions(code, raw):
    """Yields (start, end) character ranges of worker-thread code."""
    regions = []
    # Named worker entry points.
    for m in re.finditer(r"\bWorkerLoop\s*\([^)]*\)\s*(?:const\s*)?\{", code):
        open_pos = code.index("{", m.start())
        regions.append((open_pos, match_brace_block(code, open_pos)))
    # Marker comments: the next function body within a few lines (a trailing
    # ';' first means it annotated a declaration — skip those).
    for m in re.finditer(r"jisc-worker-entry", raw):
        tail = code[m.end():m.end() + 500]
        semi = tail.find(";")
        brace = tail.find("{")
        if brace == -1 or (semi != -1 and semi < brace):
            continue
        open_pos = m.end() + brace
        regions.append((open_pos, match_brace_block(code, open_pos)))
    # Lambdas handed to std::thread.
    for m in re.finditer(r"\bstd::thread\s*[({]\s*\[", code):
        brace = code.find("{", m.end())
        if brace == -1:
            continue
        regions.append((brace, match_brace_block(code, brace)))
    # The marker and the WorkerLoop name usually tag the same body; merge
    # overlapping regions so each call site is reported once.
    regions.sort()
    merged = []
    for start, end in regions:
        if merged and start < merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def collect_coordinator_only(files):
    """Method names carrying JISC_COORDINATOR_ONLY across the file set."""
    names = {}
    for path, text in files.items():
        code = strip_comments(text)
        for m in re.finditer(r"\bJISC_COORDINATOR_ONLY\b", code):
            window = code[m.end():m.end() + 300]
            call = re.search(r"([A-Za-z_]\w*)\s*\(", window)
            if call:
                names.setdefault(call.group(1), []).append(
                    (path, line_of(code, m.start())))
    return names


def check_coordinator_only(files):
    findings = []
    marked = collect_coordinator_only(files)
    if not marked:
        return findings
    for path, text in files.items():
        code = strip_comments(text)
        raw_lines = text.splitlines()
        waivers, _ = collect_waivers(raw_lines)
        for start, end in find_worker_regions(code, text):
            body = code[start:end]
            for name, sites in marked.items():
                for call in re.finditer(r"\b%s\s*\(" % re.escape(name), body):
                    # Only unqualified and this-> calls can be the marked
                    # method: a call through another receiver (shard
                    # processor, ack queue, ...) is that object's contract,
                    # not the executor's.
                    prefix = body[max(0, call.start() - 8):call.start()]
                    if re.search(r"(?:\.|->)$", prefix) and \
                            not prefix.endswith("this->"):
                        continue
                    line = line_of(code, start + call.start())
                    if "coordinator-only" in waivers.get(line, set()):
                        continue
                    decl = f"{sites[0][0]}:{sites[0][1]}"
                    findings.append(Finding(
                        path, line, "coordinator-only",
                        f"worker-thread code calls coordinator-only method "
                        f"'{name}' (declared at {decl})"))
    return findings


def check_naked_thread(files):
    findings = []
    for path, text in files.items():
        rel = os.path.relpath(path, REPO_ROOT)
        if not rel.startswith("src" + os.sep):
            continue
        if rel.replace(os.sep, "/") in NAKED_THREAD_ALLOWLIST:
            continue
        code = strip_comments(text)
        waivers, _ = collect_waivers(text.splitlines())
        for m in re.finditer(r"\bstd::thread\b", code):
            line = line_of(code, m.start())
            if "naked-thread" in waivers.get(line, set()):
                continue
            findings.append(Finding(
                path, line, "naked-thread",
                "std::thread outside the parallel engine — route work "
                "through ParallelExecutor (or waive with a reason)"))
    return findings


CLASS_RE = re.compile(r"\b(?:class|struct)\s+(?:JISC_\w+(?:\([^)]*\))?\s+)?"
                      r"([A-Za-z_]\w*)\s*(?:final\s*)?(?::[^{;]+)?\{")
MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(jisc::)?(Mutex|std::mutex)\s+[A-Za-z_]\w*\s*[;{=]",
    re.M)


def check_unguarded_mutex(files):
    findings = []
    for path, text in files.items():
        code = strip_comments(text)
        waivers, _ = collect_waivers(text.splitlines())
        for cm in CLASS_RE.finditer(code):
            open_pos = code.index("{", cm.start())
            body = code[open_pos:match_brace_block(code, open_pos)]
            body_start_line = line_of(code, open_pos)
            for mm in MUTEX_MEMBER_RE.finditer(body):
                line = body_start_line + body[:mm.start()].count("\n") + \
                    mm.group(0).count("\n")
                # Re-anchor to the member's own line.
                line = line_of(code, open_pos + mm.start() +
                               len(mm.group(0)) - len(mm.group(0).lstrip()))
                waived = "unguarded-mutex" in waivers.get(line, set()) or \
                    "unguarded-mutex" in waivers.get(line - 1, set())
                if mm.group(2) == "std::mutex":
                    if not waived:
                        findings.append(Finding(
                            path, line, "unguarded-mutex",
                            f"class {cm.group(1)}: raw std::mutex member — "
                            f"use jisc::Mutex so -Wthread-safety can track "
                            f"it"))
                    continue
                if re.search(r"\bJISC_(?:PT_)?GUARDED_BY\s*\(", body):
                    continue
                if waived:
                    continue
                findings.append(Finding(
                    path, line, "unguarded-mutex",
                    f"class {cm.group(1)} holds a Mutex but no field is "
                    f"JISC_GUARDED_BY it — annotate the protected state or "
                    f"waive with a reason"))
    return findings


def check_header_hygiene(files):
    findings = []
    for path, text in files.items():
        rel = os.path.relpath(path, REPO_ROOT).replace(os.sep, "/")
        if not (rel.startswith("src/") and rel.endswith(".h")):
            continue
        code = strip_comments(text)
        if re.search(r"^\s*#\s*pragma\s+once", code, re.M):
            findings.append(Finding(
                path, line_of(code, code.find("#pragma")), "header-hygiene",
                "#pragma once — use the canonical include guard"))
        want = "JISC_" + re.sub(r"[/.]", "_", rel[len("src/"):]).upper() + "_"
        guard = re.search(r"^\s*#\s*ifndef\s+(\S+)", code, re.M)
        if guard is None or guard.group(1) != want:
            have = guard.group(1) if guard else "none"
            findings.append(Finding(
                path, 1, "header-hygiene",
                f"include guard must be {want} (found {have})"))
        includes = set(re.findall(r'#\s*include\s+(<[^>]+>|"[^"]+")', text))
        missing = {}
        for pattern, header in STD_SYMBOLS:
            if header in includes:
                continue
            m = re.search(pattern, code)
            if m:
                missing.setdefault(header, line_of(code, m.start()))
        for header, line in sorted(missing.items()):
            findings.append(Finding(
                path, line, "header-hygiene",
                f"uses a symbol from {header} without including it directly "
                f"(headers must stand alone)"))
    return findings


def check_waiver_reasons(files):
    findings = []
    for path, text in files.items():
        _, bad = collect_waivers(text.splitlines())
        for line in bad:
            findings.append(Finding(
                path, line, "waiver",
                "lint: allow(...) without a reason — say why"))
    return findings


def gather_files(paths):
    exts = (".h", ".cc")
    files = {}
    for p in paths:
        if os.path.isdir(p):
            for dirpath, _, names in os.walk(p):
                for name in sorted(names):
                    if name.endswith(exts):
                        full = os.path.join(dirpath, name)
                        files[full] = open(full, encoding="utf-8").read()
        elif os.path.isfile(p):
            files[p] = open(p, encoding="utf-8").read()
        else:
            raise FileNotFoundError(p)
    return files


def run_checks(files, legacy=True):
    findings = []
    if legacy:
        findings += check_coordinator_only(files)
    findings += check_naked_thread(files)
    findings += check_unguarded_mutex(files)
    findings += check_header_hygiene(files)
    findings += check_waiver_reasons(files)
    return findings


# --- self test -------------------------------------------------------------

SELF_TEST_CASES = [
    ("coordinator-only", True, """
struct Exec {
  JISC_COORDINATOR_ONLY void Barrier();
  void WorkerLoop(int i) { Barrier(); }
};
"""),
    ("coordinator-only", False, """
struct Exec {
  JISC_COORDINATOR_ONLY void Barrier();
  void Drive() { Barrier(); }  // not a worker region: fine
  void WorkerLoop(int i) { (void)i; }
};
"""),
    ("naked-thread", True, """
#include <thread>
void Spawn() { std::thread t([] {}); t.join(); }
"""),
    ("unguarded-mutex", True, """
class Cache {
  Mutex mu_;
  int hits_ = 0;
};
"""),
    ("unguarded-mutex", True, """
class Cache {
  std::mutex mu_;
  int hits_ JISC_GUARDED_BY(mu_) = 0;
};
"""),
    ("unguarded-mutex", False, """
class Cache {
  Mutex mu_;
  int hits_ JISC_GUARDED_BY(mu_) = 0;
};
"""),
    ("header-hygiene", True, """
#ifndef JISC_FAKE_H_
#define JISC_FAKE_H_
inline size_t Zero() { return 0; }
#endif  // JISC_FAKE_H_
"""),
]


def self_test():
    failures = 0
    for idx, (check, expect_finding, snippet) in enumerate(SELF_TEST_CASES):
        # header-hygiene / naked-thread only fire under src/; fake the path.
        fake = os.path.join(REPO_ROOT, "src", f"selftest_{idx}.h")
        findings = run_checks({fake: snippet})
        hits = [f for f in findings if f.check == check]
        # Ignore incidental hygiene findings when testing other checks.
        if check != "header-hygiene":
            hits = [f for f in hits if f.check == check]
            findings = hits
        ok = bool(hits) == expect_finding
        status = "ok" if ok else "FAIL"
        print(f"[{status}] case {idx}: {check} "
              f"(expect {'finding' if expect_finding else 'clean'}, "
              f"got {len(hits)})")
        if not ok:
            failures += 1
    return failures


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: src/)")
    parser.add_argument("--list-checks", action="store_true",
                        help="print the rule inventory (markdown) and exit")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded detection cases and exit")
    parser.add_argument("--legacy", action="store_true",
                        help="also run checks superseded by tools/"
                             "jisc_verify (regex coordinator-only)")
    args = parser.parse_args(argv)

    if args.list_checks:
        print("| check | enforces |")
        print("|---|---|")
        for check, description in CHECKS:
            print(f"| `{check}` | {description} |")
        return 0

    if args.self_test:
        return 1 if self_test() else 0

    paths = args.paths or [os.path.join(REPO_ROOT, "src")]
    try:
        files = gather_files(paths)
    except FileNotFoundError as e:
        print(f"lint_contracts: no such path: {e}", file=sys.stderr)
        return 2
    if not args.legacy:
        print("note: coordinator-only is enforced transitively by "
              "tools/jisc_verify (AST/call-graph); the regex version "
              "here runs only under --legacy", file=sys.stderr)
    findings = run_checks(files, legacy=args.legacy)
    for f in sorted(findings, key=lambda f: (f.path, f.line)):
        print(f)
    if findings:
        print(f"\nlint_contracts: {len(findings)} finding(s) over "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"lint_contracts: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
