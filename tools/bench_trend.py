#!/usr/bin/env python3
"""Fold nightly BENCH_*.json row files into a trend table.

Each positional argument is one bench run: either a directory holding the
`BENCH_<bench>.json` arrays the figure benches emit under
JISC_BENCH_JSON_DIR (the nightly `bench-rows` artifact), or a single such
file. Pass runs oldest-first; each becomes one column, labeled by its
directory (or file) basename, so downloading N nightly artifacts side by
side and pointing this tool at them yields the per-figure result
trajectory:

  python3 tools/bench_trend.py nightly-0801 nightly-0802 nightly-0807

Rows are grouped by (bench, series, arg). The tracked metric defaults to
`seconds` (lower is better); `--metric <counter>` switches to any row
counter, e.g. `--metric throughput_tps` (higher is better — the delta
column flips sign conventions accordingly, judged by metric name). The
final columns show a sparkline of the trend and the last-vs-first delta;
`--fail-above PCT` exits 3 when any row's `seconds` regressed more than
PCT percent, so the table can double as a soft nightly gate.

Output is a Markdown table (paste-ready for GITHUB_STEP_SUMMARY). Stdlib
only; exit 0 on success, 2 on bad usage or unreadable input, 3 when
--fail-above trips.
"""

import argparse
import json
import os
import sys

SPARK = "▁▂▃▄▅▆▇█"

# Metrics where larger values are improvements; everything else (seconds,
# work_per_tuple, latency) treats growth as a regression.
HIGHER_IS_BETTER = ("throughput", "tps", "tuples", "outputs", "samples")


def sparkline(values):
    lo, hi = min(values), max(values)
    if hi <= lo:
        return SPARK[0] * len(values)
    return "".join(
        SPARK[int((v - lo) * (len(SPARK) - 1) / (hi - lo) + 0.5)]
        for v in values)


def load_run(path):
    """Return {(bench, series, arg): row} for one run dir or file."""
    files = []
    if os.path.isdir(path):
        files = sorted(
            os.path.join(path, f) for f in os.listdir(path)
            if f.startswith("BENCH_") and f.endswith(".json"))
        if not files:
            raise ValueError("no BENCH_*.json files in directory")
    else:
        files = [path]
    rows = {}
    for file_path in files:
        with open(file_path, encoding="utf-8") as f:
            doc = json.load(f)
        if not isinstance(doc, list):
            raise ValueError(f"{file_path}: expected a JSON array of rows")
        for row in doc:
            key = (row.get("bench", "?"), row.get("series", "?"),
                   row.get("arg", 0))
            rows[key] = row  # Last row wins if a bench re-emits a key.
    return rows


def metric_of(row, metric):
    if metric == "seconds":
        return row.get("seconds")
    return row.get("counters", {}).get(metric)


def format_value(value, metric):
    if value is None:
        return "—"
    if metric == "seconds":
        return f"{value:.3f}s"
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e3:
        return f"{value / 1e3:.1f}k"
    return f"{value:.2f}" if value != int(value) else f"{int(value)}"


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("runs", nargs="+",
                        help="bench-row dirs or files, oldest first")
    parser.add_argument("--metric", default="seconds",
                        help="'seconds' or a row counter name "
                             "(default: seconds)")
    parser.add_argument("--fail-above", type=float, default=None,
                        metavar="PCT",
                        help="exit 3 if any row's seconds regressed more "
                             "than PCT%% last-vs-first")
    args = parser.parse_args(argv[1:])

    runs = []
    for path in args.runs:
        try:
            runs.append((os.path.basename(os.path.normpath(path)),
                         load_run(path)))
        except (OSError, ValueError) as err:
            print(f"error: {path}: {err}", file=sys.stderr)
            return 2

    keys = sorted({k for _, rows in runs for k in rows})
    if not keys:
        print("error: no bench rows found", file=sys.stderr)
        return 2

    higher_better = any(tag in args.metric for tag in HIGHER_IS_BETTER)
    labels = [label for label, _ in runs]
    header = (["bench", "series", "arg"] + labels
              + ["trend", "Δ last vs first"])
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    regressed = []
    for key in keys:
        bench, series, arg = key
        values = [metric_of(rows.get(key, {}), args.metric)
                  for _, rows in runs]
        present = [v for v in values if v is not None]
        cells = [format_value(v, args.metric) for v in values]
        trend = sparkline(present) if len(present) >= 2 else "—"
        delta = "—"
        if len(present) >= 2 and present[0] > 0:
            pct = (present[-1] - present[0]) / present[0] * 100.0
            worse = pct < 0 if higher_better else pct > 0
            delta = f"{pct:+.1f}%" + (" ⚠" if worse and abs(pct) > 2 else "")
            if args.fail_above is not None and args.metric == "seconds" \
                    and pct > args.fail_above:
                regressed.append((key, pct))
        lines.append("| " + " | ".join(
            [bench, series, str(arg)] + cells + [trend, delta]) + " |")

    print(f"### Bench trend — {args.metric} across {len(runs)} run(s)")
    print()
    print("\n".join(lines))
    if regressed:
        print()
        for (bench, series, arg), pct in regressed:
            print(f"REGRESSION: {bench}/{series}/arg={arg} seconds "
                  f"{pct:+.1f}% > {args.fail_above:.1f}% allowed")
        return 3
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
