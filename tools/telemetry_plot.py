#!/usr/bin/env python3
"""Terminal sparkline plots for JISC telemetry time series.

Takes `<name>.telemetry.jsonl` files (as written by WriteTelemetryJsonl /
`jiscbench run --telemetry-jsonl`) or scenario run bundles (`run.json`
with a "telemetry" section) and renders the sampled series as Unicode
sparklines, one row per track per metric:

  progress/s   events processed per sample interval (rate, not total)
  queue        SPSC feed depth at each sample
  stalled      producer-side blocked-nanos accrued per interval
  state        approximate operator-state bytes
  ingress dup  IngressGuard duplicates suppressed per interval
  ingress ooo  arrivals the guard re-sequenced per interval
  late admit   late (post-gap-skip) arrivals admitted per interval
  late drop    late arrivals discarded per interval

The four ingress rows only appear when the run had the guard enabled
and the corresponding counter moved — a clean, guard-off run plots
exactly as before.

Track 0 is the coordinator (input side); shard s is track s+1 — the same
numbering the trace recorder uses. Tracks the stall watchdog flagged are
annotated with the sample index of each straggler verdict, so a CI job
summary shows at a glance *when* a shard went flat while its siblings
advanced.

Stdlib only; no third-party imports. Exit 0 on success, 2 on bad usage
or unreadable input. Typical use:

  ./build/tools/jiscbench run scenarios/fig09_normal.json \\
      --telemetry 10 --telemetry-jsonl /tmp/fig09.telemetry.jsonl
  python3 tools/telemetry_plot.py /tmp/fig09.telemetry.jsonl
"""

import json
import sys

# Eight-level block ramp; index 0 is also used for "no data yet".
SPARK = "▁▂▃▄▅▆▇█"

# Long runs sample thousands of snapshots; fold them into at most this
# many columns (bucket-max, so brief spikes stay visible) to keep rows
# terminal- and job-summary-sized.
MAX_WIDTH = 100


def format_count(n):
    """Humanize a count/bytes value for the row's max-label."""
    n = float(n)
    for unit, div in (("G", 1e9), ("M", 1e6), ("k", 1e3)):
        if n >= div:
            return f"{n / div:.1f}{unit}"
    return f"{int(n)}"


def resample(values, width=MAX_WIDTH):
    """Fold a series into at most `width` buckets, keeping each bucket's
    max so short spikes (a stall, a burst) survive the compression."""
    if len(values) <= width:
        return values
    out = []
    for b in range(width):
        lo = b * len(values) // width
        hi = max(lo + 1, (b + 1) * len(values) // width)
        out.append(max(values[lo:hi]))
    return out


def sparkline(values):
    """Render a list of non-negative numbers as a block-character strip."""
    values = resample(values)
    if not values:
        return ""
    hi = max(values)
    if hi <= 0:
        return SPARK[0] * len(values)
    out = []
    for v in values:
        idx = int(v * (len(SPARK) - 1) / hi + 0.5)
        out.append(SPARK[max(0, min(idx, len(SPARK) - 1))])
    return "".join(out)


def deltas(values):
    """Per-interval increments of a monotone counter series."""
    return [max(0, b - a) for a, b in zip(values, values[1:])]


def load_series(path):
    """Return (snapshots, dropped) from a JSONL export or a run bundle."""
    with open(path, encoding="utf-8") as f:
        text = f.read()
    stripped = text.lstrip()
    if stripped.startswith("{") and "\n{" not in stripped.rstrip():
        # Possibly a whole-file JSON document (run bundle).
        doc = json.loads(stripped)
        telemetry = doc.get("telemetry")
        if not isinstance(telemetry, dict):
            raise ValueError("no 'telemetry' section in bundle")
        return (telemetry.get("series", []),
                int(telemetry.get("dropped_snapshots", 0)))
    snapshots = []
    dropped = 0
    for line_no, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        doc = json.loads(line)
        if "dropped_snapshots" in doc and "tracks" not in doc:
            dropped = int(doc["dropped_snapshots"])
            continue
        if "tracks" not in doc:
            raise ValueError(f"line {line_no}: not a telemetry snapshot")
        snapshots.append(doc)
    return snapshots, dropped


def track_series(snapshots, track, key):
    """Extract one field of one track across every snapshot."""
    out = []
    for snap in snapshots:
        tracks = snap.get("tracks", [])
        out.append(int(tracks[track].get(key, 0)) if track < len(tracks)
                   else 0)
    return out


def straggler_verdicts(snapshots, track):
    """Sample indices where the watchdog's flag count rose for a track."""
    flags = track_series(snapshots, track, "straggler")
    return [i + 1 for i, d in enumerate(deltas(flags)) if d > 0]


def plot_file(path, snapshots, dropped):
    print(f"== {path} ==")
    if len(snapshots) < 2:
        print(f"  ({len(snapshots)} snapshot(s) — nothing to plot; "
              "lower the sampling period or run longer)")
        return
    span_ns = snapshots[-1].get("t_ns", 0) - snapshots[0].get("t_ns", 0)
    n_tracks = max(len(s.get("tracks", [])) for s in snapshots)
    print(f"  {len(snapshots)} snapshots over "
          f"{span_ns / 1e6:.1f}ms, {n_tracks} track(s)"
          + (f", {dropped} oldest snapshots dropped" if dropped else ""))

    input_rate = deltas([int(s.get("input_events", 0)) for s in snapshots])
    print(f"  input/s      {sparkline(input_rate)}  "
          f"max={format_count(max(input_rate, default=0))}/sample")

    metrics = [
        ("progress/s", lambda t: deltas(track_series(snapshots, t,
                                                     "progress"))),
        ("queue", lambda t: track_series(snapshots, t, "queue")[1:]),
        ("stalled", lambda t: deltas(track_series(snapshots, t,
                                                  "stalled_ns"))),
        ("state", lambda t: track_series(snapshots, t, "state_bytes")[1:]),
        # IngressGuard gauges export cumulative totals; plot the
        # per-interval increments so a fault burst shows as a spike.
        ("ingress dup", lambda t: deltas(track_series(snapshots, t,
                                                      "ingress_dup"))),
        ("ingress ooo", lambda t: deltas(track_series(
            snapshots, t, "ingress_reordered"))),
        ("late admit", lambda t: deltas(track_series(
            snapshots, t, "ingress_late_admitted"))),
        ("late drop", lambda t: deltas(track_series(
            snapshots, t, "ingress_late_dropped"))),
    ]
    for track in range(n_tracks):
        who = "coordinator" if track == 0 else f"shard {track - 1}"
        verdicts = straggler_verdicts(snapshots, track)
        note = ""
        if verdicts:
            at = ", ".join(str(i) for i in verdicts[:5])
            more = f" (+{len(verdicts) - 5} more)" if len(verdicts) > 5 \
                else ""
            note = f"  ⚠ STRAGGLER flagged at sample {at}{more}"
        print(f"  track {track} ({who}){note}")
        for name, extract in metrics:
            series = extract(track)
            if not any(series):
                continue  # all-zero rows are noise (e.g. shard state)
            unit = "/sample" if name.endswith("/s") or name == "stalled" \
                else ""
            print(f"    {name:<12}{sparkline(series)}  "
                  f"max={format_count(max(series))}{unit}")


def main(argv):
    if len(argv) < 2 or argv[1] in ("-h", "--help"):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    status = 0
    for path in argv[1:]:
        try:
            snapshots, dropped = load_series(path)
        except (OSError, ValueError) as err:
            print(f"error: {path}: {err}", file=sys.stderr)
            status = 2
            continue
        plot_file(path, snapshots, dropped)
        print()
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
