#!/usr/bin/env python3
"""Terminal summary for JISC observability exports.

Takes any mix of `<name>.trace.json` (Chrome trace_event arrays, as
written by WriteChromeTrace) and `<name>.metrics.json` (as written by
WriteMetricsJson) and renders them for a terminal or a CI job summary:

  trace files    per-phase span table — count, total/mean/max duration —
                 grouped by span name, plus the migration timeline
                 (transition-nested phases in start order) and a note
                 when the ring dropped spans.
  metrics files  histogram quantile table (count/p50/p90/p99/max/mean,
                 scaled to µs) and the non-zero work counters.

Stdlib only; no third-party imports. Exit 0 on success, 2 on bad usage
or unreadable input. Typical use:

  JISC_OBS_DIR=/tmp/obs ./build/bench/fig10_latency
  python3 tools/trace_summary.py /tmp/obs/*.json
"""

import json
import sys


def format_ns(ns):
    """Render a nanosecond duration with a readable unit."""
    if ns >= 1_000_000_000:
        return f"{ns / 1e9:.3f}s"
    if ns >= 1_000_000:
        return f"{ns / 1e6:.3f}ms"
    if ns >= 1_000:
        return f"{ns / 1e3:.1f}us"
    return f"{ns}ns"


def render_table(headers, rows):
    """Plain fixed-width table; right-align everything but the first col."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines = []
    for row in [headers] + rows:
        cells = []
        for i, cell in enumerate(row):
            text = str(cell)
            cells.append(text.ljust(widths[i]) if i == 0
                         else text.rjust(widths[i]))
        lines.append("  " + "  ".join(cells).rstrip())
    return "\n".join(lines)


def span_micros(event):
    """(start_us, dur_us) as floats; trace_event ts/dur are microseconds."""
    return float(event.get("ts", 0)), float(event.get("dur", 0))


def summarize_trace(path, events):
    complete = [e for e in events if e.get("ph") == "X"]
    meta = [e for e in events if e.get("ph") == "M"]
    print(f"== {path} ==")
    if not complete:
        print("  (no spans)")
        return
    for e in meta:
        if e.get("name") == "process_labels":
            labels = e.get("args", {}).get("labels", "")
            if "truncated" in labels:
                print(f"  NOTE: {labels}")

    by_name = {}
    for e in complete:
        _, dur = span_micros(e)
        entry = by_name.setdefault(e.get("name", "?"),
                                   {"count": 0, "total": 0.0, "max": 0.0})
        entry["count"] += 1
        entry["total"] += dur
        entry["max"] = max(entry["max"], dur)
    rows = []
    for name, s in sorted(by_name.items(),
                          key=lambda kv: -kv[1]["total"]):
        rows.append([name, s["count"],
                     format_ns(int(s["total"] * 1e3)),
                     format_ns(int(s["total"] / s["count"] * 1e3)),
                     format_ns(int(s["max"] * 1e3))])
    print(render_table(["span", "count", "total", "mean", "max"], rows))

    # Migration timeline: the phases the paper's figures are about. Show
    # each span nested under "transition" (or top-level migration-category
    # spans) in start order, with its argument when present.
    migration = sorted(
        (e for e in complete if e.get("cat") == "migration"),
        key=lambda e: span_micros(e)[0])
    if migration:
        print("  migration timeline:")
        for e in migration[:40]:
            start, dur = span_micros(e)
            depth = int(e.get("args", {}).get("depth", 0))
            args = {k: v for k, v in e.get("args", {}).items()
                    if k != "depth"}
            arg_text = (" " + " ".join(f"{k}={v}" for k, v in args.items())
                        if args else "")
            indent = "  " * (depth + 2)
            print(f"{indent}{e.get('name')} @{start:.1f}us "
                  f"dur={format_ns(int(dur * 1e3))} "
                  f"tid={e.get('tid', 0)}{arg_text}")
        if len(migration) > 40:
            print(f"    ... {len(migration) - 40} more migration spans")


def summarize_metrics(path, doc):
    print(f"== {path} ==")
    histograms = doc.get("histograms", {})
    if histograms:
        rows = []
        for name, h in histograms.items():
            rows.append([name, h.get("count", 0),
                         format_ns(h.get("p50", 0)),
                         format_ns(h.get("p90", 0)),
                         format_ns(h.get("p99", 0)),
                         format_ns(h.get("max", 0)),
                         format_ns(int(h.get("mean", 0))),
                         h.get("overflow", 0)])
        print(render_table(
            ["histogram", "count", "p50", "p90", "p99", "max", "mean",
             "overflow"], rows))
    counters = doc.get("counters", {})
    nonzero = [(k, v) for k, v in counters.items() if v]
    if nonzero:
        print(render_table(["counter", "value"],
                           [[k, v] for k, v in nonzero]))
    dropped = doc.get("trace", {}).get("dropped", 0)
    if dropped:
        print(f"  NOTE: trace ring dropped {dropped} oldest spans "
              "(raise trace_capacity to keep them)")


def main(argv):
    if len(argv) < 2 or argv[1] in ("-h", "--help"):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    status = 0
    for path in argv[1:]:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, ValueError) as err:
            print(f"error: {path}: {err}", file=sys.stderr)
            status = 2
            continue
        if isinstance(doc, list):
            summarize_trace(path, doc)
        elif isinstance(doc, dict):
            summarize_metrics(path, doc)
        else:
            print(f"error: {path}: unrecognized JSON shape", file=sys.stderr)
            status = 2
        print()
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
