#!/usr/bin/env python3
"""CI perf gate: run every gated scenario and diff it against its baseline.

For each scenarios/*.json with "gate" not set to false:
  1. jiscbench run <spec> --scale <scale> --out <out>/<name>.run.json
  2. jiscbench compare baselines/<name>.json <run> --out <out>/<name>.diff.json

Writes a markdown summary (to $GITHUB_STEP_SUMMARY when present, stdout
otherwise) and exits with the worst exit code seen: 0 pass, 3 regression,
4 spec/baseline error. Only the Python standard library is used.
"""

import argparse
import json
import os
import pathlib
import subprocess
import sys

EXIT_PASS = 0
EXIT_REGRESSION = 3
EXIT_SPEC_ERROR = 4


def gated_specs(scenario_dir):
    for path in sorted(pathlib.Path(scenario_dir).glob("*.json")):
        with open(path) as f:
            spec = json.load(f)
        if spec.get("gate", True):
            yield path, spec["name"]


def diff_rows(diff):
    """Markdown table rows for one diff.json, failures first."""
    rows = []
    for m in sorted(diff.get("metrics", []), key=lambda m: m["pass"]):
        status = "ok" if m["pass"] else "**FAIL**"
        kind = "exact" if m["exact"] else f"{m['threshold'] * 100:.0f}%"
        rows.append(
            f"| {m['name']} | {m['baseline']:g} | {m['current']:g} "
            f"| {m['rel_delta'] * 100:+.2f}% | {kind} | {status} |"
        )
    return rows


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--jiscbench", default="build/tools/jiscbench")
    ap.add_argument("--scenarios", default="scenarios")
    ap.add_argument("--baselines", default="baselines")
    ap.add_argument("--out-dir", default="perf-gate-out")
    ap.add_argument("--scale", default="0.02")
    args = ap.parse_args()

    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    summary = ["# Perf gate", "",
               f"Scale {args.scale}; counters exact-match, wall/latency "
               "thresholded (regressions only).", ""]
    worst = EXIT_PASS
    results = []

    for spec_path, name in gated_specs(args.scenarios):
        run_path = out_dir / f"{name}.run.json"
        diff_path = out_dir / f"{name}.diff.json"
        baseline = pathlib.Path(args.baselines) / f"{name}.json"

        run = subprocess.run(
            [args.jiscbench, "run", str(spec_path), "--scale", args.scale,
             "--out", str(run_path)],
            capture_output=True, text=True)
        if run.returncode != 0:
            worst = max(worst, EXIT_SPEC_ERROR)
            results.append((name, "run failed", run.stderr.strip()))
            continue
        if not baseline.exists():
            worst = max(worst, EXIT_SPEC_ERROR)
            results.append((name, "no baseline",
                            f"{baseline} missing — capture it with "
                            f"`jiscbench capture {spec_path} --scale "
                            f"{args.scale}`"))
            continue

        cmp_proc = subprocess.run(
            [args.jiscbench, "compare", str(baseline), str(run_path),
             "--out", str(diff_path)],
            capture_output=True, text=True)
        worst = max(worst, cmp_proc.returncode)
        try:
            with open(diff_path) as f:
                diff = json.load(f)
        except (OSError, json.JSONDecodeError):
            diff = {"status": "spec_error",
                    "error": cmp_proc.stderr.strip() or "no diff.json"}
        results.append((name, diff.get("status", "?"), diff))

    for name, status, detail in results:
        icon = {"pass": "✅", "regression": "❌"}.get(status, "⚠️")
        summary.append(f"## {icon} {name} — {status}")
        summary.append("")
        if not isinstance(detail, dict):
            summary.append(f"```\n{detail}\n```")
            summary.append("")
            continue
        if detail.get("error"):
            summary.append(f"`{detail['error']}`")
            summary.append("")
        failures = detail.get("failures", [])
        if failures:
            summary.append("Failing metrics: " +
                           ", ".join(f"`{f}`" for f in failures))
            summary.append("")
        rows = diff_rows(detail)
        if rows:
            # Full table only when something failed; otherwise keep the job
            # summary short.
            if failures:
                summary.append("| metric | baseline | current | delta "
                               "| allowed | status |")
                summary.append("|---|---|---|---|---|---|")
                summary.extend(rows)
            else:
                summary.append(f"{len(rows)} metrics compared, all ok.")
            summary.append("")

    verdict = {EXIT_PASS: "PASS", EXIT_REGRESSION: "REGRESSION"}.get(
        worst, "SPEC ERROR")
    summary.append(f"**Overall: {verdict}** (exit {worst})")
    text = "\n".join(summary) + "\n"

    step_summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if step_summary:
        with open(step_summary, "a") as f:
            f.write(text)
    print(text)
    return worst


if __name__ == "__main__":
    sys.exit(main())
