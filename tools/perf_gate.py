#!/usr/bin/env python3
"""CI perf gate: run every gated scenario and diff it against its baseline.

For each scenarios/*.json with "gate" not set to false:
  1. jiscbench run <spec> --scale <scale> --out <out>/<name>.run.json
  2. jiscbench compare baselines/<name>.json <run> --out <out>/<name>.diff.json

Then a telemetry-overhead probe: the fig09_normal scenario runs again with
the live telemetry plane off and forced on (--telemetry 10), best-of-3
each, and the gate fails if sampling costs more than --telemetry-budget
percent of wall time AND the absolute delta exceeds 0.05s (the AND keeps
sub-50ms jitter at tiny scales from flaking the gate). Skip the probe
with --no-telemetry-probe.

Writes a markdown summary (to $GITHUB_STEP_SUMMARY when present, stdout
otherwise) and exits with the worst exit code seen: 0 pass, 3 regression,
4 spec/baseline error. Only the Python standard library is used.
"""

import argparse
import json
import os
import pathlib
import subprocess
import sys

EXIT_PASS = 0
EXIT_REGRESSION = 3
EXIT_SPEC_ERROR = 4


def gated_specs(scenario_dir):
    for path in sorted(pathlib.Path(scenario_dir).glob("*.json")):
        with open(path) as f:
            spec = json.load(f)
        if spec.get("gate", True):
            yield path, spec["name"]


def diff_rows(diff):
    """Markdown table rows for one diff.json, failures first."""
    rows = []
    for m in sorted(diff.get("metrics", []), key=lambda m: m["pass"]):
        status = "ok" if m["pass"] else "**FAIL**"
        kind = "exact" if m["exact"] else f"{m['threshold'] * 100:.0f}%"
        rows.append(
            f"| {m['name']} | {m['baseline']:g} | {m['current']:g} "
            f"| {m['rel_delta'] * 100:+.2f}% | {kind} | {status} |"
        )
    return rows


def measured_seconds(run_path):
    with open(run_path) as f:
        return float(json.load(f)["wall"]["measured_seconds"])


def telemetry_overhead_probe(args, out_dir):
    """Best-of-3 fig09_normal wall time, telemetry off vs on at 10ms.

    Returns (summary_lines, exit_code). Best-of-N because the probe
    measures a fixed workload's wall time, where the minimum is the
    least-noisy estimator.
    """
    spec = pathlib.Path(args.scenarios) / "fig09_normal.json"
    best = {}
    for mode, extra in (("off", []), ("on", ["--telemetry", "10"])):
        times = []
        for i in range(3):
            run_path = out_dir / f"telemetry_probe_{mode}_{i}.run.json"
            run = subprocess.run(
                [args.jiscbench, "run", str(spec), "--scale", args.scale,
                 "--out", str(run_path)] + extra,
                capture_output=True, text=True)
            if run.returncode != 0:
                return ([f"## ⚠️ telemetry overhead — probe run failed",
                         "", f"```\n{run.stderr.strip()}\n```", ""],
                        EXIT_SPEC_ERROR)
            times.append(measured_seconds(run_path))
        best[mode] = min(times)

    delta = best["on"] - best["off"]
    pct = delta / best["off"] * 100.0 if best["off"] > 0 else 0.0
    # AND of relative and absolute bounds: at CI scale the whole run is a
    # few hundred ms, where scheduler jitter alone can exceed 2%.
    fail = pct > args.telemetry_budget and delta > 0.05
    icon, status = ("❌", "regression") if fail else ("✅", "pass")
    lines = [
        f"## {icon} telemetry overhead — {status}", "",
        "| metric | baseline | current | delta | allowed | status |",
        "|---|---|---|---|---|---|",
        f"| fig09_normal wall (telemetry 10ms, best of 3) "
        f"| {best['off']:.3f}s | {best['on']:.3f}s | {pct:+.2f}% "
        f"| {args.telemetry_budget:.0f}% and 0.05s "
        f"| {'**FAIL**' if fail else 'ok'} |", ""]
    return lines, (EXIT_REGRESSION if fail else EXIT_PASS)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--jiscbench", default="build/tools/jiscbench")
    ap.add_argument("--scenarios", default="scenarios")
    ap.add_argument("--baselines", default="baselines")
    ap.add_argument("--out-dir", default="perf-gate-out")
    ap.add_argument("--scale", default="0.02")
    ap.add_argument("--telemetry-budget", type=float, default=2.0,
                    help="max %% wall-time overhead with 10ms sampling")
    ap.add_argument("--no-telemetry-probe", action="store_true")
    args = ap.parse_args()

    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    summary = ["# Perf gate", "",
               f"Scale {args.scale}; counters exact-match, wall/latency "
               "thresholded (regressions only).", ""]
    worst = EXIT_PASS
    results = []

    for spec_path, name in gated_specs(args.scenarios):
        run_path = out_dir / f"{name}.run.json"
        diff_path = out_dir / f"{name}.diff.json"
        baseline = pathlib.Path(args.baselines) / f"{name}.json"

        run = subprocess.run(
            [args.jiscbench, "run", str(spec_path), "--scale", args.scale,
             "--out", str(run_path)],
            capture_output=True, text=True)
        if run.returncode != 0:
            worst = max(worst, EXIT_SPEC_ERROR)
            results.append((name, "run failed", run.stderr.strip()))
            continue
        if not baseline.exists():
            worst = max(worst, EXIT_SPEC_ERROR)
            results.append((name, "no baseline",
                            f"{baseline} missing — capture it with "
                            f"`jiscbench capture {spec_path} --scale "
                            f"{args.scale}`"))
            continue

        cmp_proc = subprocess.run(
            [args.jiscbench, "compare", str(baseline), str(run_path),
             "--out", str(diff_path)],
            capture_output=True, text=True)
        worst = max(worst, cmp_proc.returncode)
        try:
            with open(diff_path) as f:
                diff = json.load(f)
        except (OSError, json.JSONDecodeError):
            diff = {"status": "spec_error",
                    "error": cmp_proc.stderr.strip() or "no diff.json"}
        results.append((name, diff.get("status", "?"), diff))

    for name, status, detail in results:
        icon = {"pass": "✅", "regression": "❌"}.get(status, "⚠️")
        summary.append(f"## {icon} {name} — {status}")
        summary.append("")
        if not isinstance(detail, dict):
            summary.append(f"```\n{detail}\n```")
            summary.append("")
            continue
        if detail.get("error"):
            summary.append(f"`{detail['error']}`")
            summary.append("")
        failures = detail.get("failures", [])
        if failures:
            summary.append("Failing metrics: " +
                           ", ".join(f"`{f}`" for f in failures))
            summary.append("")
        rows = diff_rows(detail)
        if rows:
            # Full table only when something failed; otherwise keep the job
            # summary short.
            if failures:
                summary.append("| metric | baseline | current | delta "
                               "| allowed | status |")
                summary.append("|---|---|---|---|---|---|")
                summary.extend(rows)
            else:
                summary.append(f"{len(rows)} metrics compared, all ok.")
            summary.append("")

    if not args.no_telemetry_probe:
        probe_lines, probe_exit = telemetry_overhead_probe(args, out_dir)
        summary.extend(probe_lines)
        worst = max(worst, probe_exit)

    verdict = {EXIT_PASS: "PASS", EXIT_REGRESSION: "REGRESSION"}.get(
        worst, "SPEC ERROR")
    summary.append(f"**Overall: {verdict}** (exit {worst})")
    text = "\n".join(summary) + "\n"

    step_summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if step_summary:
        with open(step_summary, "a") as f:
            f.write(text)
    print(text)
    return worst


if __name__ == "__main__":
    sys.exit(main())
