// jiscbench: the scenario-harness CLI.
//
//   jiscbench run <spec.json> [--strategy S] [--parallelism N] [--seed N]
//                 [--scale F] [--out FILE] [--trace FILE] [--telemetry MS]
//                 [--telemetry-jsonl FILE] [--prom FILE]
//       Execute a scenario and write its evidence bundle (run.json; with
//       --trace also a Chrome trace). Default output: <name>.run.json.
//       --telemetry MS forces telemetry sampling on at that period even if
//       the spec leaves it off; --telemetry-jsonl dumps the sampled series
//       as JSONL (tools/telemetry_plot.py input) and --prom writes the
//       final counters/gauges in Prometheus text format (textfile
//       collector).
//
//   jiscbench capture <spec.json>... [--scale F] [--out-dir DIR]
//       Run each spec and write the bundle as DIR/<name>.json — the
//       baseline-capture flow (DIR defaults to baselines/).
//
//   jiscbench compare <baseline.json> <run.json> [--out diff.json]
//       Diff a run against a captured baseline. Prints the metric table,
//       writes diff.json when --out is given.
//
//   jiscbench validate <spec.json>...
//       Parse + validate specs (strict: unknown keys are errors).
//
//   jiscbench list [<dir-or-spec.json>...]
//       With no arguments, print the available strategy names. With
//       directories or spec files, print one row per spec:
//       <file> <name> <strategy> <gate> <faults>, where faults is a
//       comma-joined summary of the spec's active fault fields ("-" when
//       none). CI's fault-sweep job selects its workload from the faults
//       column.
//
// Exit codes (stable; CI depends on them): 0 success / comparison passed,
// 2 usage error, 3 comparison found a regression, 4 spec or bundle error.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace_export.h"
#include "scenario/baseline.h"
#include "scenario/bundle.h"
#include "scenario/runner.h"
#include "scenario/spec.h"

namespace jisc {
namespace scenario {
namespace {

constexpr int kExitUsage = 2;

int Usage() {
  std::cerr <<
      "usage:\n"
      "  jiscbench run <spec.json> [--strategy S] [--parallelism N]\n"
      "            [--seed N] [--scale F] [--out FILE] [--trace FILE]\n"
      "            [--telemetry MS] [--telemetry-jsonl FILE] [--prom FILE]\n"
      "  jiscbench capture <spec.json>... [--scale F] [--out-dir DIR]\n"
      "  jiscbench compare <baseline.json> <run.json> [--out diff.json]\n"
      "  jiscbench validate <spec.json>...\n"
      "  jiscbench list [<dir-or-spec.json>...]\n";
  return kExitUsage;
}

int SpecError(const Status& status) {
  std::cerr << "jiscbench: " << status.ToString() << "\n";
  return kExitSpecError;
}

struct ParsedArgs {
  std::vector<std::string> positional;
  std::string strategy;
  int parallelism = 0;
  std::optional<uint64_t> seed;
  double scale = 1.0;
  std::string out;
  std::string out_dir;
  std::string trace;
  uint64_t telemetry_ms = 0;
  std::string telemetry_jsonl;
  std::string prom;
  bool ok = true;
};

ParsedArgs ParseArgs(int argc, char** argv) {
  ParsedArgs args;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "jiscbench: " << arg << " needs a value\n";
        args.ok = false;
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--strategy") {
      if (const char* v = next()) args.strategy = v;
    } else if (arg == "--parallelism") {
      if (const char* v = next()) args.parallelism = std::atoi(v);
    } else if (arg == "--seed") {
      if (const char* v = next()) args.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--scale") {
      if (const char* v = next()) args.scale = std::atof(v);
    } else if (arg == "--out") {
      if (const char* v = next()) args.out = v;
    } else if (arg == "--out-dir") {
      if (const char* v = next()) args.out_dir = v;
    } else if (arg == "--trace") {
      if (const char* v = next()) args.trace = v;
    } else if (arg == "--telemetry") {
      if (const char* v = next()) {
        args.telemetry_ms = std::strtoull(v, nullptr, 10);
        if (args.telemetry_ms == 0) {
          std::cerr << "jiscbench: --telemetry needs a period > 0 ms\n";
          args.ok = false;
        }
      }
    } else if (arg == "--telemetry-jsonl") {
      if (const char* v = next()) args.telemetry_jsonl = v;
    } else if (arg == "--prom") {
      if (const char* v = next()) args.prom = v;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "jiscbench: unknown flag " << arg << "\n";
      args.ok = false;
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

RunOptions ToRunOptions(const ParsedArgs& args, bool capture_trace) {
  RunOptions opts;
  opts.strategy = args.strategy;
  opts.parallelism = args.parallelism;
  opts.seed = args.seed;
  opts.scale = args.scale;
  opts.capture_trace = capture_trace;
  opts.telemetry_period_ms = args.telemetry_ms;
  return opts;
}

// Post-run telemetry exports (--telemetry-jsonl / --prom). Both fail
// loudly on a short write — an artifact that silently truncates is worse
// than no artifact.
int ExportTelemetry(const ParsedArgs& args, const RunResult& r) {
  if (!args.telemetry_jsonl.empty()) {
    if (!r.telemetry.enabled) {
      std::cerr << "jiscbench: --telemetry-jsonl needs telemetry on "
                   "(spec telemetry.enabled or --telemetry MS)\n";
      return kExitUsage;
    }
    std::ofstream f(args.telemetry_jsonl);
    if (!f) {
      std::cerr << "jiscbench: cannot write " << args.telemetry_jsonl << "\n";
      return kExitSpecError;
    }
    WriteTelemetryJsonl(f, r.telemetry.series, r.telemetry.dropped_snapshots);
    if (!f.good()) {
      std::cerr << "jiscbench: short write to " << args.telemetry_jsonl
                << "\n";
      return kExitSpecError;
    }
    std::cout << "wrote " << args.telemetry_jsonl << " ("
              << r.telemetry.series.size() << " snapshots)\n";
  }
  if (!args.prom.empty()) {
    std::ofstream f(args.prom);
    if (!f) {
      std::cerr << "jiscbench: cannot write " << args.prom << "\n";
      return kExitSpecError;
    }
    const TelemetrySnapshot* latest =
        r.telemetry.series.empty() ? nullptr : &r.telemetry.series.back();
    WritePrometheusText(f, r.counters, r.histograms, latest);
    if (!f.good()) {
      std::cerr << "jiscbench: short write to " << args.prom << "\n";
      return kExitSpecError;
    }
    std::cout << "wrote " << args.prom << "\n";
  }
  return 0;
}

void PrintRunSummary(const RunResult& r) {
  std::cout << "scenario " << r.scenario << " strategy=" << r.strategy
            << " seed=" << r.seed << " scale=" << r.scale
            << " parallelism=" << r.parallelism << "\n"
            << "  warmup " << r.warmup_tuples << " tuples ("
            << r.warmup_seconds << "s), measured " << r.measured_tuples
            << " tuples (" << r.measured_seconds << "s, "
            << static_cast<uint64_t>(r.throughput_tps) << " tps)\n"
            << "  transitions=" << r.transitions
            << " checkpoint_restores=" << r.checkpoint_restores << "\n";
  for (const auto& [name, value] : r.counters) {
    if (name == "work_units" || name == "outputs" || name == "completions") {
      std::cout << "  " << name << "=" << value << "\n";
    }
  }
  for (const auto& [name, s] : r.histograms) {
    if (s.count == 0) continue;
    std::cout << "  " << name << ": count=" << s.count << " p50=" << s.p50
              << " p99=" << s.p99 << " max=" << s.max << "\n";
  }
  if (r.telemetry.enabled) {
    uint64_t stragglers = 0;
    for (uint64_t f : r.telemetry.straggler_flags) stragglers += f;
    std::cout << "  telemetry: " << r.telemetry.samples << " samples @ "
              << r.telemetry.period_ms << "ms";
    if (r.telemetry.dropped_snapshots != 0) {
      std::cout << " (" << r.telemetry.dropped_snapshots << " dropped)";
    }
    std::cout << ", straggler verdicts=" << stragglers << "\n";
  }
}

int CmdRun(const ParsedArgs& args) {
  if (args.positional.size() != 1) return Usage();
  StatusOr<Spec> spec = LoadSpecFile(args.positional[0]);
  if (!spec.ok()) return SpecError(spec.status());
  StatusOr<RunResult> result =
      RunScenario(spec.value(), ToRunOptions(args, !args.trace.empty()));
  if (!result.ok()) return SpecError(result.status());
  std::string out =
      args.out.empty() ? result.value().scenario + ".run.json" : args.out;
  Status s = WriteRunBundle(result.value(), out, args.trace);
  if (!s.ok()) return SpecError(s);
  PrintRunSummary(result.value());
  std::cout << "wrote " << out;
  if (!args.trace.empty()) std::cout << " and " << args.trace;
  std::cout << "\n";
  return ExportTelemetry(args, result.value());
}

int CmdCapture(const ParsedArgs& args) {
  if (args.positional.empty()) return Usage();
  std::string dir = args.out_dir.empty() ? "baselines" : args.out_dir;
  for (const std::string& path : args.positional) {
    StatusOr<Spec> spec = LoadSpecFile(path);
    if (!spec.ok()) return SpecError(spec.status());
    StatusOr<RunResult> result =
        RunScenario(spec.value(), ToRunOptions(args, false));
    if (!result.ok()) return SpecError(result.status());
    std::string out = dir + "/" + result.value().scenario + ".json";
    Status s = WriteRunBundle(result.value(), out);
    if (!s.ok()) return SpecError(s);
    std::cout << "captured " << out << " (work_units=";
    for (const auto& [name, value] : result.value().counters) {
      if (name == "work_units") std::cout << value;
    }
    std::cout << ")\n";
  }
  return 0;
}

int CmdCompare(const ParsedArgs& args) {
  if (args.positional.size() != 2) return Usage();
  StatusOr<RunResult> baseline = LoadRunFile(args.positional[0]);
  StatusOr<RunResult> current = LoadRunFile(args.positional[1]);
  DiffResult diff;
  if (!baseline.ok() || !current.ok()) {
    diff.spec_error = true;
    diff.error = (!baseline.ok() ? baseline.status() : current.status())
                     .ToString();
  } else {
    diff = CompareRuns(baseline.value(), current.value());
  }
  if (!args.out.empty()) {
    std::ofstream f(args.out);
    if (!f) {
      std::cerr << "jiscbench: cannot write " << args.out << "\n";
      return kExitSpecError;
    }
    f << DiffToJson(diff).Pretty();
  }
  std::cout << DiffToTable(diff);
  return diff.exit_code();
}

int CmdValidate(const ParsedArgs& args) {
  if (args.positional.empty()) return Usage();
  int rc = 0;
  for (const std::string& path : args.positional) {
    StatusOr<Spec> spec = LoadSpecFile(path);
    if (!spec.ok()) {
      std::cerr << path << ": " << spec.status().ToString() << "\n";
      rc = kExitSpecError;
    } else {
      std::cout << path << ": ok (" << spec.value().name << ", strategy "
                << spec.value().strategy << ", "
                << TotalMeasuredTuples(spec.value())
                << " paper-scale tuples)\n";
    }
  }
  return rc;
}

// Comma-joined summary of a spec's active fault fields, "-" when the spec
// injects nothing. The nightly fault-sweep selects scenarios by this
// column, so the format is load-bearing: `field=value` pairs, no spaces.
std::string FaultSummary(const Spec& spec) {
  std::ostringstream os;
  auto add = [&os](const std::string& entry) {
    if (os.tellp() > 0) os << ",";
    os << entry;
  };
  const FaultSpec& f = spec.fault;
  if (f.straggler_shard >= 0) {
    add("straggler_shard=" + std::to_string(f.straggler_shard));
  }
  if (f.drop_every != 0) add("drop_every=" + std::to_string(f.drop_every));
  if (f.duplicate_every != 0) {
    add("duplicate_every=" + std::to_string(f.duplicate_every));
  }
  if (f.reorder_window != 0) {
    add("reorder_window=" + std::to_string(f.reorder_window));
  }
  if (f.drop_burst != 0) {
    add("drop_burst=" + std::to_string(f.drop_burst) + "@" +
        std::to_string(f.drop_burst_at));
  }
  if (spec.ingress.enabled) add("ingress=" + spec.ingress.overflow);
  std::string summary = os.str();
  return summary.empty() ? "-" : summary;
}

int CmdList(const ParsedArgs& args) {
  if (args.positional.empty()) {
    for (ProcessorKind kind :
         {ProcessorKind::kJisc, ProcessorKind::kJiscFirstReceipt,
          ProcessorKind::kMovingState, ProcessorKind::kParallelTrack,
          ProcessorKind::kHybridTrack, ProcessorKind::kCacq,
          ProcessorKind::kMJoin, ProcessorKind::kStairsEager,
          ProcessorKind::kStairsJisc, ProcessorKind::kStaticPipeline}) {
      std::cout << ProcessorKindName(kind) << "\n";
    }
    return 0;
  }
  // Expand directories to their .json files, sorted for stable output.
  std::vector<std::string> files;
  for (const std::string& path : args.positional) {
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      std::vector<std::string> in_dir;
      for (const auto& entry : std::filesystem::directory_iterator(path)) {
        if (entry.path().extension() == ".json") {
          in_dir.push_back(entry.path().string());
        }
      }
      std::sort(in_dir.begin(), in_dir.end());
      files.insert(files.end(), in_dir.begin(), in_dir.end());
    } else {
      files.push_back(path);
    }
  }
  int rc = 0;
  for (const std::string& path : files) {
    StatusOr<Spec> spec = LoadSpecFile(path);
    if (!spec.ok()) {
      std::cerr << path << ": " << spec.status().ToString() << "\n";
      rc = kExitSpecError;
      continue;
    }
    const Spec& s = spec.value();
    std::cout << path << " " << s.name << " " << s.strategy << " "
              << (s.gate ? "gate" : "nogate") << " " << FaultSummary(s)
              << "\n";
  }
  return rc;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  ParsedArgs args = ParseArgs(argc - 2, argv + 2);
  if (!args.ok) return kExitUsage;
  if (cmd == "run") return CmdRun(args);
  if (cmd == "capture") return CmdCapture(args);
  if (cmd == "compare") return CmdCompare(args);
  if (cmd == "validate") return CmdValidate(args);
  if (cmd == "list") return CmdList(args);
  return Usage();
}

}  // namespace
}  // namespace scenario
}  // namespace jisc

int main(int argc, char** argv) { return jisc::scenario::Main(argc, argv); }
