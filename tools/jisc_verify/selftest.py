"""Self-test: run the checks over the seeded-violation fixture corpus and
compare against the golden findings file.

The corpus (tests/static_analysis/fixtures/) seeds violations of all four
checks plus clean near-miss fixtures that must stay silent.  The golden
file pins (check, file, line, symbol) exactly — any drift in either
direction (missed seeded violation, or a new false positive on a clean
fixture) fails.  `--update-golden` rewrites the file after intentional
check changes; review the diff.
"""

import json
import os

import checks as checks_mod
import srcmodel
import waivers as waivers_mod


def fixtures_dir(repo_root):
    return os.path.join(repo_root, "tests", "static_analysis", "fixtures")


def golden_path(repo_root):
    return os.path.join(repo_root, "tests", "static_analysis",
                        "golden_findings.json")


def run_self_test(repo_root, build_model, update_golden=False, out=print):
    fdir = fixtures_dir(repo_root)
    files = srcmodel.gather_cpp_files([fdir])
    if not files:
        out(f"self-test: no fixtures under {fdir}")
        return 2
    model = build_model(files)
    # Fixtures carry their own comment waivers; the repo's file-level
    # waivers must not leak in, so the corpus runs with an empty config
    # (deterministic roots stay at the default).
    waivers = waivers_mod.Waivers({}, fdir)
    findings, waived = checks_mod.run_checks(model, fdir, waivers)
    got = sorted(f.key() for f in findings)

    gpath = golden_path(repo_root)
    if update_golden:
        with open(gpath, "w", encoding="utf-8") as f:
            json.dump([{"check": c, "file": p, "line": l, "symbol": s}
                       for c, p, l, s in got], f, indent=2)
            f.write("\n")
        out(f"self-test: wrote {len(got)} golden findings to {gpath}")
        return 0

    try:
        with open(gpath, encoding="utf-8") as f:
            golden = sorted(
                (e["check"], e["file"], e["line"], e["symbol"])
                for e in json.load(f))
    except (OSError, ValueError, KeyError) as e:
        out(f"self-test: cannot read golden file {gpath}: {e}")
        return 2

    missing = [g for g in golden if g not in set(got)]
    extra = [g for g in got if g not in set(golden)]
    if not missing and not extra:
        out(f"self-test: OK — {len(got)} findings match golden "
            f"({len(waived)} waived sites exercised)")
        return 0
    for g in missing:
        out(f"self-test: MISSING expected finding: {g}")
    for g in extra:
        out(f"self-test: UNEXPECTED finding: {g}")
    out(f"self-test: FAIL — {len(missing)} missing, {len(extra)} "
        f"unexpected (golden: {gpath})")
    return 1
