"""libclang frontend for jisc-verify.

Consumes compile_commands.json via clang.cindex, using the real AST for the
parts the textual frontend has to approximate: function-definition
discovery (extents, enclosing class, template/operator edge cases), field
type resolution (canonical types for Observability*/TelemetryRegistry*
pointers and unordered containers), and JISC_COORDINATOR_ONLY attribute
collection (the macro expands to an annotate attribute under clang).

Per-body site extraction (calls, guard regions, lock extents) is delegated
to the same code paths as the textual frontend — srcmodel._extract_sites —
over the exact body extents the AST reports.  That keeps the two frontends
finding-for-finding identical on the fixture corpus while the AST removes
the textual frontend's discovery approximations.

Requires the `clang` python package and a matching libclang shared object;
`available()` reports whether both load.  CI pip-caches libclang; local
runs fall back to the textual frontend automatically under
`--frontend=auto`.
"""

import json
import os

import srcmodel

_cindex = None
_unavailable_reason = None


def _load_cindex():
    global _cindex, _unavailable_reason
    if _cindex is not None or _unavailable_reason is not None:
        return _cindex
    try:
        from clang import cindex
    except ImportError as e:
        _unavailable_reason = f"python clang bindings not importable: {e}"
        return None
    try:
        cindex.Index.create()
    except Exception as e:  # libclang .so missing or version-mismatched
        _unavailable_reason = f"libclang not loadable: {e}"
        return None
    _cindex = cindex
    return _cindex


def available():
    return _load_cindex() is not None


def unavailable_reason():
    _load_cindex()
    return _unavailable_reason or ""


def _compile_args(build_dir, path):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        return None
    with open(db_path, encoding="utf-8") as f:
        db = json.load(f)
    for entry in db:
        src = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"]))
        if os.path.normpath(path) == src:
            args = entry.get("arguments")
            if args is None:
                import shlex
                args = shlex.split(entry.get("command", ""))
            # Drop compiler, -c/-o pairs and the input file.
            out, skip = [], False
            for a in args[1:]:
                if skip:
                    skip = False
                    continue
                if a in ("-c",):
                    continue
                if a in ("-o",):
                    skip = True
                    continue
                if os.path.normpath(
                        os.path.join(entry.get("directory", ""), a)) == src:
                    continue
                out.append(a)
            return out, entry.get("directory", "")
    return None


def build_model_clang(paths, build_dir):
    """Builds a Model using libclang; raises RuntimeError if unavailable."""
    cindex = _load_cindex()
    if cindex is None:
        raise RuntimeError(unavailable_reason())
    CursorKind = cindex.CursorKind

    model = srcmodel.Model()
    files = {}
    for p in sorted(paths):
        try:
            with open(p, encoding="utf-8") as f:
                files[p] = f.read()
        except OSError:
            continue
    model.files = files
    stripped = {p: srcmodel.strip_comments(t) for p, t in files.items()}

    # Field tables, shared across TUs (keyed by class name, like the
    # textual frontend, so _extract_sites sees the same shape).
    cls_fields_obs = {}
    cls_fields_unordered = {}
    seen_defs = set()   # (path, offset) — headers parse in many TUs

    index = cindex.Index.create()
    tu_sources = [p for p in files if p.endswith(".cc")]
    header_only = [p for p in files if p.endswith(".h")]

    def visit_fields(cursor):
        cls = cursor.spelling
        obs = cls_fields_obs.setdefault(cls, {})
        unordered = cls_fields_unordered.setdefault(cls, set())
        for child in cursor.get_children():
            if child.kind != CursorKind.FIELD_DECL:
                continue
            t = child.type.get_canonical().spelling
            for ptr_t in srcmodel.OBS_TYPES:
                if ptr_t in t and "*" in t:
                    obs[child.spelling] = ptr_t
                elif f"unique_ptr<" in t and ptr_t in t:
                    obs[child.spelling] = ptr_t
            if "unordered_map<" in t or "unordered_set<" in t or \
                    "unordered_multimap<" in t or "unordered_multiset<" in t:
                unordered.add(child.spelling)

    def visit_function(cursor, path):
        extent = cursor.extent
        body = None
        for child in cursor.get_children():
            if child.kind == CursorKind.COMPOUND_STMT:
                body = child
        if body is None:
            return
        key = (path, extent.start.offset)
        if key in seen_defs:
            return
        seen_defs.add(key)
        sem = cursor.semantic_parent
        cls = sem.spelling if sem is not None and sem.kind in (
            CursorKind.CLASS_DECL, CursorKind.STRUCT_DECL) else ""
        fn = srcmodel.Function(
            name=cursor.spelling, cls=cls, file=path,
            line=extent.start.line)
        for child in cursor.get_children():
            if child.kind == CursorKind.ANNOTATE_ATTR and \
                    "coordinator" in child.spelling:
                fn.coordinator_only = True
                model.coordinator_marks.add((cls, cursor.spelling))
        raw = files[path]
        sig_line = extent.start.line
        above = "\n".join(raw.splitlines()[max(0, sig_line - 4):sig_line])
        if cursor.spelling == "WorkerLoop" or \
                srcmodel._WORKER_MARK_RE.search(above):
            fn.worker_entry = True
        code = stripped[path]
        open_pos = body.extent.start.offset
        body_text = code[open_pos:body.extent.end.offset]
        params = ", ".join(
            f"{a.type.spelling} {a.spelling}"
            for a in cursor.get_arguments())
        srcmodel._extract_sites(fn, body_text, open_pos, code,
                                cls_fields_obs, cls_fields_unordered,
                                params)
        model.functions.append(fn)

    def walk(cursor, path_filter):
        for child in cursor.get_children():
            loc_file = child.location.file
            if loc_file is None:
                continue
            path = os.path.normpath(loc_file.name)
            if path not in path_filter:
                continue
            if child.kind in (CursorKind.CLASS_DECL,
                              CursorKind.STRUCT_DECL) and \
                    child.is_definition():
                visit_fields(child)
            if child.kind in (CursorKind.FUNCTION_DECL,
                              CursorKind.CXX_METHOD,
                              CursorKind.CONSTRUCTOR,
                              CursorKind.DESTRUCTOR,
                              CursorKind.FUNCTION_TEMPLATE) and \
                    child.is_definition():
                visit_function(child, path)
            walk(child, path_filter)

    path_filter = {os.path.normpath(p) for p in files}
    parsed_headers = set()
    for src in tu_sources:
        args_dir = _compile_args(build_dir, src)
        args = args_dir[0] if args_dir else ["-std=c++20"]
        try:
            tu = index.parse(src, args=args)
        except cindex.TranslationUnitLoadError:
            continue
        walk(tu.cursor, path_filter)
        for inc in tu.get_includes():
            parsed_headers.add(os.path.normpath(str(inc.include)))

    # Headers never pulled into any TU (fixture corpus headers): parse
    # standalone.
    for h in header_only:
        if os.path.normpath(h) in parsed_headers:
            continue
        try:
            tu = index.parse(h, args=["-x", "c++", "-std=c++20"])
        except cindex.TranslationUnitLoadError:
            continue
        walk(tu.cursor, path_filter)

    # Thread lambdas via the textual scan (libclang models them as
    # unexposed lambda exprs; the textual pass is exact for this repo's
    # `std::thread([...]{...})` idiom).
    for path, code in stripped.items():
        regions = srcmodel._class_regions(code)
        for m in srcmodel._THREAD_LAMBDA_RE.finditer(code):
            brace = code.find("{", m.end())
            if brace == -1:
                continue
            end = srcmodel.match_brace(code, brace)
            cls = srcmodel._innermost_class(regions, m.start())
            fn = srcmodel.Function(
                name="<thread-lambda>", cls=cls, file=path,
                line=srcmodel.line_of(code, m.start()), worker_entry=True)
            srcmodel._extract_sites(fn, code[brace:end], brace, code,
                                    cls_fields_obs, cls_fields_unordered,
                                    "")
            model.functions.append(fn)

    # Textual coordinator-mark sweep as a safety net: macros may be
    # disabled (non-clang configs expand JISC_COORDINATOR_ONLY to
    # nothing), but the token is still in the source.
    for path, code in stripped.items():
        regions = srcmodel._class_regions(code)
        srcmodel._collect_coordinator_marks(code, regions,
                                            model.coordinator_marks)
    return model
