"""Waiver handling shared by all jisc-verify checks.

Two layers, both counted and reported so waived findings stay visible:

  * Per-site comment waivers, the analog of lint_contracts.py's idiom:

        // jisc-verify: allow(<check>) — <reason>

    A waiver covers its own line and the next code line, mirroring the
    lint tool.  The separator may be an em-dash, a hyphen, or a colon; a
    non-empty reason is required (a bare allow() is itself a finding).

  * File-level waivers from tools/analysis_waivers.json (shared with
    lint_contracts.py): entries of {"path", "checks", "reason"} suppress a
    whole file for the named checks — used where a class invariant makes
    per-site guards redundant (e.g. a constructor JISC_CHECK).
"""

import json
import os
import re

WAIVER_RE = re.compile(
    r"jisc-verify:\s*allow\(\s*(?P<check>[\w-]+)\s*\)\s*"
    r"(?:[—:-]\s*)?(?P<reason>.*)")

CONFIG_BASENAME = "analysis_waivers.json"


class Waivers:
    def __init__(self, config, repo_root):
        self.repo_root = repo_root
        self.file_waivers = []   # [(relpath, {checks}, reason)]
        self.bad_waivers = []    # findings-to-be: allow() with no reason
        self._site_cache = {}    # path -> {(check, line)}
        for entry in config.get("file_waivers", []):
            self.file_waivers.append((
                entry["path"], set(entry["checks"]), entry.get("reason", "")))
        self.deterministic_roots = config.get(
            "deterministic_roots", ["SerializeDeterministic"])
        self.naked_thread_allowlist = config.get("naked_thread_allowlist", [])

    def _rel(self, path):
        try:
            return os.path.relpath(path, self.repo_root)
        except ValueError:
            return path

    def _site_waivers(self, path, text):
        if path in self._site_cache:
            return self._site_cache[path]
        sites = set()
        for i, line in enumerate(text.splitlines(), start=1):
            m = WAIVER_RE.search(line)
            if not m:
                continue
            if not m.group("reason").strip():
                self.bad_waivers.append((self._rel(path), i))
                continue
            sites.add((m.group("check"), i))
            sites.add((m.group("check"), i + 1))
        self._site_cache[path] = sites
        return sites

    def is_waived(self, check, path, line, files):
        rel = self._rel(path)
        for wpath, checks, _ in self.file_waivers:
            if rel == wpath and check in checks:
                return True
        text = files.get(path)
        if text is None:
            return False
        return (check, line) in self._site_waivers(path, text)


def load_config(repo_root, explicit_path=None):
    path = explicit_path or os.path.join(repo_root, "tools", CONFIG_BASENAME)
    if not os.path.exists(path):
        return {}
    with open(path, encoding="utf-8") as f:
        return json.load(f)
