"""Source model for jisc-verify: the analysis IR plus the textual frontend.

The four contract checks (checks.py) run over a frontend-independent model:

  Model
    functions          every function/method/thread-lambda definition, with
                       its call sites, Observability*/TelemetryRegistry*
                       dereference sites (guardedness precomputed), lock
                       acquisitions (with hold extents), unordered-container
                       iterations, and wall-clock/random reads
    coordinator_marks  (class, method) pairs carrying JISC_COORDINATOR_ONLY
    files              raw text per file (waiver collection)

Two frontends produce it:

  * the textual frontend in this module — a dependency-free C++ lexer /
    region parser.  It blanks comments and strings, tracks namespace and
    class nesting, extracts brace-matched function bodies, and resolves
    member types from class field declarations.  It exists so the analysis
    runs (and the self-test corpus gates) on any machine with a bare
    python3, including containers without libclang.
  * frontend_clang.py — the libclang (clang.cindex) frontend used by CI,
    which takes declarations, extents and types from the real AST and
    consumes compile_commands.json.  Both frontends feed the same guard
    analysis so findings are identical over the fixture corpus.

Everything here is best-effort structural parsing, deliberately tuned to
this repository's idiom (Google style, no function-try-blocks, no
preprocessor token pasting in signatures).  Precision notes live in
DESIGN.md "Analysis contracts".
"""

import os
import re
from dataclasses import dataclass, field


# ---------------------------------------------------------------------------
# Lexical helpers
# ---------------------------------------------------------------------------

def strip_comments(text):
    """Blanks comments and string/char literals, preserving offsets/lines."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append(re.sub(r"[^\n]", " ", text[i:j]))
            i = j
        elif c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(c + " " * (j - i - 2) + (c if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def match_brace(code, open_pos):
    """Position just past the '}' matching code[open_pos] == '{'."""
    depth = 0
    for i in range(open_pos, len(code)):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(code)


def match_ternary_colon(code, q_pos):
    """Position of the ':' matching the '?' at q_pos (skips '::')."""
    depth = 0
    i = q_pos + 1
    n = len(code)
    while i < n:
        c = code[i]
        if c == ":" and i + 1 < n and code[i + 1] == ":":
            i += 2
            continue
        if c == "?":
            depth += 1
        elif c == ":":
            if depth == 0:
                return i
            depth -= 1
        elif c in ";{}":
            return -1
        i += 1
    return -1


_KEYWORDS = frozenset([
    "if", "for", "while", "switch", "return", "catch", "sizeof", "new",
    "delete", "throw", "do", "else", "case", "default", "alignof",
    "static_assert", "decltype", "static_cast", "dynamic_cast",
    "const_cast", "reinterpret_cast", "co_return", "co_await", "co_yield",
    "noexcept", "defined", "assert", "typeid", "alignas", "operator",
])


# ---------------------------------------------------------------------------
# IR dataclasses
# ---------------------------------------------------------------------------

@dataclass
class CallSite:
    name: str          # bare callee name
    line: int
    qualifier: str     # '' | 'this' | 'other' | 'scope'
    pos: int = 0       # char offset within the function body


@dataclass
class DerefSite:
    expr: str          # full pointer expression, e.g. 'obs', 'ctx->obs'
    ptr_type: str      # 'Observability' | 'TelemetryRegistry'
    member: str
    line: int
    guarded: bool


@dataclass
class LockAcq:
    lock: str          # normalized lock id, e.g. 'LockedSink::mu_'
    line: int
    start: int         # hold extent within the body (char offsets)
    end: int


@dataclass
class IterSite:
    expr: str          # iterated container expression
    line: int


@dataclass
class NonDetSite:
    what: str          # 'clock' | 'random'
    detail: str
    line: int


@dataclass
class Function:
    name: str          # bare name ('WorkerLoop', '<thread-lambda>')
    cls: str           # enclosing class (or '' for free functions)
    file: str
    line: int
    coordinator_only: bool = False
    worker_entry: bool = False
    calls: list = field(default_factory=list)
    derefs: list = field(default_factory=list)
    locks: list = field(default_factory=list)
    iters: list = field(default_factory=list)
    nondet: list = field(default_factory=list)

    @property
    def qual_name(self):
        return f"{self.cls}::{self.name}" if self.cls else self.name


@dataclass
class Model:
    functions: list = field(default_factory=list)
    coordinator_marks: set = field(default_factory=set)  # {(cls, name)}
    files: dict = field(default_factory=dict)            # path -> raw text

    def functions_named(self, name):
        return [f for f in self.functions if f.name == name]


# ---------------------------------------------------------------------------
# Type tables (fields / params / locals of interest)
# ---------------------------------------------------------------------------

# Pointer types whose dereferences the obs-null-discipline check audits.
OBS_TYPES = ("Observability", "TelemetryRegistry")

_FIELD_OBS_RE = re.compile(
    r"\b(?:const\s+)?(Observability|TelemetryRegistry)\s*\*\s*(?:const\s+)?"
    r"([A-Za-z_]\w*)\s*(?:=\s*[^;]+)?;")
_FIELD_OBS_UPTR_RE = re.compile(
    r"\bstd::unique_ptr<\s*(Observability|TelemetryRegistry)\s*>\s+"
    r"([A-Za-z_]\w*)\s*;")
_FIELD_UNORDERED_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<")
_PARAM_OBS_RE = re.compile(
    r"\b(?:const\s+)?(Observability|TelemetryRegistry)\s*\*\s*(?:const\s+)?"
    r"([A-Za-z_]\w*)")
_LOCAL_OBS_RE = re.compile(
    r"\b(?:const\s+)?(Observability|TelemetryRegistry)\s*\*\s*(?:const\s+)?"
    r"([A-Za-z_]\w*)\s*=")


def _unordered_field_names(class_body):
    """Field names of unordered containers declared in a class body."""
    names = set()
    for m in _FIELD_UNORDERED_RE.finditer(class_body):
        # Skip the template argument list, then take the declarator name.
        depth = 0
        i = m.end() - 1
        n = len(class_body)
        while i < n:
            if class_body[i] == "<":
                depth += 1
            elif class_body[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        decl = class_body[i + 1:i + 120]
        dm = re.match(r"\s*([A-Za-z_]\w*)\s*[;{=]", decl)
        if dm:
            names.add(dm.group(1))
    return names


# ---------------------------------------------------------------------------
# Class / namespace context scanning
# ---------------------------------------------------------------------------

_CLASS_RE = re.compile(
    r"\b(class|struct)\s+(?:JISC_\w+(?:\([^)]*\))?\s+)?([A-Za-z_]\w*)\s*"
    r"(?:final\s*)?(?::[^{;]*)?\{")


def _class_regions(code):
    """[(name, open_pos, end_pos, body)] for every class/struct definition."""
    regions = []
    for m in _CLASS_RE.finditer(code):
        open_pos = code.index("{", m.start())
        end = match_brace(code, open_pos)
        regions.append((m.group(2), open_pos, end, code[open_pos:end]))
    return regions


def _innermost_class(regions, pos):
    best = ""
    best_span = None
    for name, start, end, _ in regions:
        if start <= pos < end:
            span = end - start
            if best_span is None or span < best_span:
                best, best_span = name, span
    return best


# ---------------------------------------------------------------------------
# Function extraction
# ---------------------------------------------------------------------------

# A function definition: optional qualifiers, a (possibly Class::-qualified)
# name, a parameter list free of ';'/'{', optional const/noexcept/override/
# ctor-initializer, then the body '{'.
_FUNC_RE = re.compile(
    r"(~?[A-Za-z_]\w*(?:\s*::\s*~?[A-Za-z_]\w*)*)\s*"   # name / Class::name
    r"\(([^(){};]*)\)\s*"                                # params (no nesting)
    r"((?:const|noexcept|override|final|mutable|->\s*[\w:<>&*,\s]+?)\s*)*"
    r"(?::\s*[^{;]*?)?"                                  # ctor initializers
    r"\{")

_NESTED_PARAM_FUNC_RE = re.compile(
    r"(~?[A-Za-z_]\w*(?:\s*::\s*~?[A-Za-z_]\w*)*)\s*"
    r"\(((?:[^(){};]|\([^(){};]*\))*)\)\s*"              # one paren nesting
    r"((?:const|noexcept|override|final|mutable)\s*)*"
    r"(?::\s*[^{;]*?)?"
    r"\{")


def _find_function_defs(code):
    """Yields (name, cls_from_name, params, open_brace_pos, sig_start)."""
    seen = set()
    for rx in (_FUNC_RE, _NESTED_PARAM_FUNC_RE):
        for m in rx.finditer(code):
            raw_name = re.sub(r"\s+", "", m.group(1))
            open_pos = m.end() - 1
            if open_pos in seen:
                continue
            parts = raw_name.split("::")
            bare = parts[-1]
            cls = parts[-2] if len(parts) >= 2 else ""
            if bare in _KEYWORDS or (parts[0] in _KEYWORDS):
                continue
            # Reject obvious non-definitions: 'else {', 'do {', control flow
            # handled above; reject capture-less calls like 'foo(...) {' is
            # impossible in C++ statement position except initializer lists
            # of declarations, which this repo does not use for code.
            seen.add(open_pos)
            yield bare, cls, m.group(2), open_pos, m.start()


_WORKER_MARK_RE = re.compile(r"jisc-worker-entry")
_THREAD_LAMBDA_RE = re.compile(r"\bstd::thread\s*[({][^;{]*?\[")


# ---------------------------------------------------------------------------
# Guard-region analysis (shared by both frontends)
# ---------------------------------------------------------------------------

def _regex_escape_expr(expr):
    return re.escape(expr)


def _guard_regions_for(body, expr, aliases):
    """Character ranges of `body` where pointer `expr` is known non-null.

    Recognized idioms (the repo's complete set):
      if (E != nullptr) {...}        if (E) {...}        if (E && ...) {...}
      if (E == nullptr) return;      -> rest of body guarded
      E != nullptr ? T : F           E ? T : F      (T guarded)
      E == nullptr ? T : F           (F guarded)
      E != nullptr && <rest of expression>            (short-circuit)
      if (Type* v = Init()) {...}    (v guarded inside)
      JISC_CHECK(E ...) / JISC_DCHECK(E ...)          -> rest guarded
      bool g = E != nullptr && ...;  then if (g) / g ? T : F   (aliases)
    """
    e = _regex_escape_expr(expr)
    regions = []

    def block_after(pos):
        """Extent of the statement/block following a ')' at pos."""
        brace = body.find("{", pos)
        semi = body.find(";", pos)
        if brace != -1 and (semi == -1 or brace < semi):
            return (brace, match_brace(body, brace))
        if semi != -1:
            return (pos, semi + 1)
        return (pos, len(body))

    tests = ["(?<![\\w.>])" + t
             for t in [e] + [_regex_escape_expr(a) for a in aliases]]
    for t in tests:
        # if (E != nullptr ...) / if (E) / if (E && ...)
        for m in re.finditer(
                r"if\s*\(\s*%s\s*(?:!=\s*nullptr\s*)?(?:&&[^)]*)?\)" % t,
                body):
            close = m.end() - 1
            regions.append(block_after(close))
        # if (E == nullptr) return/continue/break;  -> tail guarded
        for m in re.finditer(
                r"if\s*\(\s*%s\s*==\s*nullptr\s*\)\s*"
                r"(?:\{[^{}]*\}|[^;{]*;)" % t, body):
            stmt = body[m.start():m.end()]
            if re.search(r"\b(return|continue|break)\b", stmt):
                regions.append((m.end(), len(body)))
        # Ternaries.
        for m in re.finditer(r"%s\s*(?:!=\s*nullptr\s*)?\?" % t, body):
            q = body.index("?", m.start())
            colon = match_ternary_colon(body, q)
            if colon != -1:
                regions.append((q, colon))
        for m in re.finditer(r"%s\s*==\s*nullptr\s*\?" % t, body):
            q = body.index("?", m.start())
            colon = match_ternary_colon(body, q)
            if colon != -1:
                stmt_end = body.find(";", colon)
                regions.append(
                    (colon, stmt_end + 1 if stmt_end != -1 else len(body)))
        # Short-circuit: E != nullptr && <rest of this expression>.
        for m in re.finditer(r"%s\s*!=\s*nullptr\s*&&" % t, body):
            stmt_end = body.find(";", m.end())
            regions.append(
                (m.end(), stmt_end + 1 if stmt_end != -1 else len(body)))
        # JISC_CHECK(E ...) asserts non-null for the rest of the function.
        for m in re.finditer(r"JISC_D?CHECK\s*\(\s*%s\b" % t, body):
            regions.append((m.start(), len(body)))

    # if (Type* v = ...) where v IS expr: declaration-in-condition.
    for m in re.finditer(
            r"if\s*\(\s*(?:[\w:]+\s*\*\s*)%s\s*=[^)]*\)" % e, body):
        close = body.find(")", m.start())
        if close != -1:
            regions.append(block_after(close))
    return regions


def _collect_guard_aliases(body, expr):
    """Bool locals derived from a null test of expr (`bool timed = E != ...`)."""
    e = _regex_escape_expr(expr)
    aliases = set()
    for m in re.finditer(
            r"\b(?:const\s+)?bool\s+([A-Za-z_]\w*)\s*=\s*[^;]*?"
            r"%s\s*!=\s*nullptr" % e, body):
        aliases.add(m.group(1))
    return aliases


def analyze_derefs(body, body_line0, pointer_exprs):
    """DerefSite list for a function body.

    pointer_exprs: {expr_string: ptr_type}. An expression's dereferences are
    `expr->member`; guardedness comes from _guard_regions_for.
    """
    out = []
    for expr, ptr_type in pointer_exprs.items():
        e = _regex_escape_expr(expr)
        deref_re = re.compile(r"(?<![\w.>])%s\s*->\s*([A-Za-z_]\w*)" % e)
        sites = list(deref_re.finditer(body))
        if not sites:
            continue
        aliases = _collect_guard_aliases(body, expr)
        regions = _guard_regions_for(body, expr, aliases)
        for m in sites:
            pos = m.start()
            guarded = any(start <= pos < end for start, end in regions)
            out.append(DerefSite(
                expr=expr, ptr_type=ptr_type, member=m.group(1),
                line=body_line0 + body.count("\n", 0, pos),
                guarded=guarded))
    return out


# ---------------------------------------------------------------------------
# Site extraction within a function body
# ---------------------------------------------------------------------------

_CALL_RE = re.compile(
    r"(?:([A-Za-z_]\w*(?:\[[^\]]*\])?)\s*(->|\.)\s*)?"   # receiver
    r"(?:\bthis\s*->\s*)?"
    r"([A-Za-z_]\w*)\s*\(")

_LOCK_RAII_RE = re.compile(
    r"\b(?:jisc::)?(?:Releasable)?MutexLock\s+[A-Za-z_]\w*\s*"
    r"[({]\s*&\s*((?:this\s*->\s*)?[\w.>\-]+?)\s*[)}]")
_LOCK_CALL_RE = re.compile(
    r"\b((?:this\s*->\s*)?[A-Za-z_][\w.>\-]*?)\s*(?:\.|->)\s*Lock\s*\(\s*\)")
_UNLOCK_CALL_RE = re.compile(
    r"\b((?:this\s*->\s*)?[A-Za-z_][\w.>\-]*?)\s*(?:\.|->)\s*Unlock\s*\(\s*\)")

_RANGE_FOR_RE = re.compile(
    r"\bfor\s*\(\s*[^;:()]*?:\s*([A-Za-z_][\w.>\-]*(?:\(\))?)\s*\)")

_CLOCK_RE = re.compile(
    r"\b(?:std::)?chrono::(?:system_clock|steady_clock|"
    r"high_resolution_clock)::now\s*\(|"
    r"\b(?:system_clock|steady_clock|high_resolution_clock)::now\s*\(|"
    r"\bNowNs\s*\(")
_RANDOM_RE = re.compile(
    r"\bstd::random_device\b|(?<![\w:])rand\s*\(\s*\)|\bsrand\s*\(")


def _normalize_lock(name, cls):
    name = re.sub(r"\s+", "", name).replace("this->", "")
    if cls and re.fullmatch(r"[A-Za-z_]\w*", name):
        return f"{cls}::{name}"
    return name


def _extract_sites(fn, body, body_pos0, code, cls_fields_obs,
                   cls_fields_unordered, param_text):
    """Populates calls / locks / iters / nondet / derefs for one function."""
    body_line0 = line_of(code, body_pos0)

    # --- calls ---
    for m in _CALL_RE.finditer(body):
        receiver, _, name = m.group(1), m.group(2), m.group(3)
        if name in _KEYWORDS:
            continue
        full = body[max(0, m.start() - 8):m.start()]
        qualifier = ""
        if receiver is not None:
            qualifier = "this" if receiver == "this" else "other"
        elif re.search(r"::\s*$", full):
            qualifier = "scope"
        if re.search(r"\bthis\s*->\s*$",
                     body[max(0, m.start() - 12):m.start(3)]):
            qualifier = "this"
        fn.calls.append(CallSite(
            name=name, qualifier=qualifier, pos=m.start(),
            line=body_line0 + body.count("\n", 0, m.start())))

    # --- lock acquisitions ---
    for m in _LOCK_RAII_RE.finditer(body):
        # RAII hold: to the end of the enclosing brace block.
        depth = 0
        end = len(body)
        for i in range(m.start(), len(body)):
            if body[i] == "{":
                depth += 1
            elif body[i] == "}":
                if depth == 0:
                    end = i
                    break
                depth -= 1
        fn.locks.append(LockAcq(
            lock=_normalize_lock(m.group(1), fn.cls),
            line=body_line0 + body.count("\n", 0, m.start()),
            start=m.start(), end=end))
    for m in _LOCK_CALL_RE.finditer(body):
        lock = _normalize_lock(m.group(1), fn.cls)
        end = len(body)
        for um in _UNLOCK_CALL_RE.finditer(body, m.end()):
            if _normalize_lock(um.group(1), fn.cls) == lock:
                end = um.start()
                break
        fn.locks.append(LockAcq(
            lock=lock, start=m.start(), end=end,
            line=body_line0 + body.count("\n", 0, m.start())))

    # --- unordered-container iteration ---
    local_unordered = set()
    for m in re.finditer(
            r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<", body):
        depth, i = 0, m.end() - 1
        while i < len(body):
            if body[i] == "<":
                depth += 1
            elif body[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        dm = re.match(r"\s*&?\s*([A-Za-z_]\w*)\s*[;{=(]", body[i + 1:i + 120])
        if dm:
            local_unordered.add(dm.group(1))
    known_unordered = local_unordered | cls_fields_unordered.get(fn.cls, set())
    for m in _RANGE_FOR_RE.finditer(body):
        expr = m.group(1)
        base = re.split(r"\.|->", expr)[-1].replace("()", "")
        if base in known_unordered:
            fn.iters.append(IterSite(
                expr=expr,
                line=body_line0 + body.count("\n", 0, m.start())))

    # --- non-determinism sources ---
    for m in _CLOCK_RE.finditer(body):
        fn.nondet.append(NonDetSite(
            what="clock", detail=m.group(0).strip().rstrip("("),
            line=body_line0 + body.count("\n", 0, m.start())))
    for m in _RANDOM_RE.finditer(body):
        fn.nondet.append(NonDetSite(
            what="random", detail=m.group(0).strip().rstrip("("),
            line=body_line0 + body.count("\n", 0, m.start())))

    # --- obs/telemetry pointer dereferences ---
    pointer_exprs = {}
    for rx in (_PARAM_OBS_RE,):
        for m in rx.finditer(param_text or ""):
            pointer_exprs[m.group(2)] = m.group(1)
    for m in _LOCAL_OBS_RE.finditer(body):
        pointer_exprs[m.group(2)] = m.group(1)
    for fname, ftype in cls_fields_obs.get(fn.cls, {}).items():
        pointer_exprs.setdefault(fname, ftype)
    # Member paths through any known class field: e.g. options_.obs,
    # ctx->obs — the field name resolves via the global field table.
    all_obs_fields = {}
    for fields in cls_fields_obs.values():
        all_obs_fields.update(fields)
    for m in re.finditer(r"([A-Za-z_]\w*(?:\.|->))([A-Za-z_]\w*)\s*->",
                         body):
        fname = m.group(2)
        if fname in all_obs_fields:
            pointer_exprs.setdefault(m.group(1) + fname,
                                     all_obs_fields[fname])
    fn.derefs.extend(analyze_derefs(body, body_line0, pointer_exprs))


# ---------------------------------------------------------------------------
# Textual frontend entry point
# ---------------------------------------------------------------------------

def _collect_coordinator_marks(code, regions, marks):
    for m in re.finditer(r"\bJISC_COORDINATOR_ONLY\b", code):
        # Skip the macro's own #define.
        line_start = code.rfind("\n", 0, m.start()) + 1
        if re.match(r"\s*#\s*define\b", code[line_start:m.start()]):
            continue
        window = code[m.end():m.end() + 300]
        call = re.search(r"([A-Za-z_]\w*)\s*\(", window)
        if call and not call.group(1).startswith("__"):
            cls = _innermost_class(regions, m.start())
            marks.add((cls, call.group(1)))


def build_model_textual(paths):
    """Builds a Model from .h/.cc files (textual frontend)."""
    model = Model()
    files = {}
    for p in sorted(paths):
        try:
            with open(p, encoding="utf-8") as f:
                files[p] = f.read()
        except OSError:
            continue
    model.files = files

    # Pass 1: class field tables + coordinator marks across the file set.
    cls_fields_obs = {}        # cls -> {field: ptr_type}
    cls_fields_unordered = {}  # cls -> {field, ...}
    per_file = {}
    for path, raw in files.items():
        code = strip_comments(raw)
        regions = _class_regions(code)
        per_file[path] = (code, regions)
        _collect_coordinator_marks(code, regions, model.coordinator_marks)
        for cname, _, _, body in regions:
            obs = cls_fields_obs.setdefault(cname, {})
            for m in _FIELD_OBS_RE.finditer(body):
                obs[m.group(2)] = m.group(1)
            for m in _FIELD_OBS_UPTR_RE.finditer(body):
                obs[m.group(2)] = m.group(1)
            cls_fields_unordered.setdefault(cname, set()).update(
                _unordered_field_names(body))

    # Pass 2: function extraction + per-body site analysis.
    for path, raw in files.items():
        code, regions = per_file[path]
        body_spans = []
        for bare, cls_in_name, params, open_pos, sig_start in \
                _find_function_defs(code):
            cls = cls_in_name or _innermost_class(regions, sig_start)
            end = match_brace(code, open_pos)
            fn = Function(name=bare, cls=cls, file=path,
                          line=line_of(code, sig_start))
            # Marker-comment worker entries: the raw text within 3 lines
            # above the signature.
            sig_line = line_of(code, sig_start)
            above = "\n".join(
                raw.splitlines()[max(0, sig_line - 4):sig_line])
            if bare == "WorkerLoop" or _WORKER_MARK_RE.search(above):
                fn.worker_entry = True
            if (cls, bare) in model.coordinator_marks:
                fn.coordinator_only = True
            body = code[open_pos:end]
            _extract_sites(fn, body, open_pos, code, cls_fields_obs,
                           cls_fields_unordered, params)
            model.functions.append(fn)
            body_spans.append((open_pos, end))

        # Thread lambdas: synthetic worker-entry functions.
        for m in _THREAD_LAMBDA_RE.finditer(code):
            brace = code.find("{", m.end())
            if brace == -1:
                continue
            end = match_brace(code, brace)
            cls = _innermost_class(regions, m.start())
            fn = Function(name="<thread-lambda>", cls=cls, file=path,
                          line=line_of(code, m.start()), worker_entry=True)
            body = code[brace:end]
            _extract_sites(fn, body, brace, code, cls_fields_obs,
                           cls_fields_unordered, "")
            model.functions.append(fn)

    return model


def gather_cpp_files(paths, exts=(".h", ".cc", ".cpp")):
    # Absolute paths throughout: the waiver layer reconstructs file keys
    # from repo-relative finding paths, so relative CLI arguments must not
    # leak into the model.
    out = []
    for p in paths:
        if os.path.isdir(p):
            for dirpath, _, names in os.walk(p):
                for name in sorted(names):
                    if name.endswith(exts):
                        out.append(
                            os.path.abspath(os.path.join(dirpath, name)))
        elif os.path.isfile(p):
            out.append(os.path.abspath(p))
        else:
            raise FileNotFoundError(p)
    return out
