"""jisc-verify: AST/call-graph contract analyzer for the JISC repo.

Checks (see DESIGN.md "Analysis contracts"):
  determinism           no wall-clock / PRNG / unordered-iteration on paths
                        reaching deterministic serialization roots
  coordinator-only      no worker-reachable path into JISC_COORDINATOR_ONLY
                        symbols (transitive; supersedes the regex lint)
  obs-null-discipline   every Observability*/TelemetryRegistry* deref is
                        dominated by a null check
  lock-order            the static jisc::MutexLock acquisition graph is
                        acyclic

Usage:
  python3 tools/jisc_verify [paths...]          # default: src/
  python3 tools/jisc_verify --self-test         # fixture corpus vs golden
  python3 tools/jisc_verify --format json --out findings.json
  python3 tools/jisc_verify --frontend clang --build-dir build

Frontends: `textual` (dependency-free, default fallback) and `clang`
(libclang over compile_commands.json).  `auto` prefers clang when the
bindings load.  Exit codes: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import checks as checks_mod          # noqa: E402
import frontend_clang                # noqa: E402
import selftest                      # noqa: E402
import srcmodel                      # noqa: E402
import waivers as waivers_mod        # noqa: E402

# tools/jisc_verify/__main__.py -> repo root is three dirnames up.
REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))


def _check_list(value):
    names = [v.strip() for v in value.split(",") if v.strip()]
    for n in names:
        if n not in checks_mod.CHECKS:
            raise argparse.ArgumentTypeError(
                f"unknown check {n!r}; known: {', '.join(checks_mod.CHECKS)}")
    return names


def make_builder(frontend, build_dir, note=print):
    """Returns (build_model(paths) -> Model, resolved_frontend_name)."""
    if frontend == "clang" or (frontend == "auto"
                               and frontend_clang.available()):
        if not frontend_clang.available():
            raise RuntimeError(
                f"clang frontend requested but unavailable: "
                f"{frontend_clang.unavailable_reason()}")
        return (lambda paths: frontend_clang.build_model_clang(
            paths, build_dir)), "clang"
    if frontend == "auto":
        note(f"note: libclang unavailable "
             f"({frontend_clang.unavailable_reason()}); "
             f"using textual frontend")
    return srcmodel.build_model_textual, "textual"


def _emit_human(findings, waived, out):
    for f in findings:
        out(f"{f.file}:{f.line}: [{f.check}] {f.message}")
    if waived:
        out(f"-- {len(waived)} finding(s) suppressed by waivers:")
        for f in waived:
            out(f"   {f.file}:{f.line}: [{f.check}] {f.symbol} (waived)")
    out(f"jisc-verify: {len(findings)} finding(s), {len(waived)} waived")


def _emit_markdown(findings, waived, out):
    out("| check | file:line | symbol | detail |")
    out("| --- | --- | --- | --- |")
    if not findings:
        out("| _none_ | | | all checks clean |")
    for f in findings:
        msg = f.message.replace("|", "\\|")
        out(f"| `{f.check}` | `{f.file}:{f.line}` | `{f.symbol}` | {msg} |")
    out("")
    out(f"**{len(findings)} finding(s), {len(waived)} waived.**")


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="jisc_verify",
        description="AST/call-graph contract analyzer (see DESIGN.md).")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to analyze "
                             "(default: src/)")
    parser.add_argument("--frontend", choices=("auto", "textual", "clang"),
                        default="auto")
    parser.add_argument("--build-dir", default=os.path.join(
        REPO_ROOT, "build"), help="directory holding compile_commands.json")
    parser.add_argument("--checks", type=_check_list, default=None,
                        metavar="C1,C2",
                        help="subset of checks to run")
    parser.add_argument("--config", default=None,
                        help="waiver config path (default: "
                             "tools/analysis_waivers.json)")
    parser.add_argument("--format", choices=("human", "json", "markdown"),
                        default="human")
    parser.add_argument("--out", default=None,
                        help="also write JSON findings to this file")
    parser.add_argument("--lock-follow-receivers", action="store_true",
                        help="lock-order: follow receiver-qualified calls "
                             "too (deeper, noisier; nightly mode)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture corpus against the golden "
                             "findings file")
    parser.add_argument("--update-golden", action="store_true",
                        help="with --self-test: rewrite the golden file")
    parser.add_argument("--list-checks", action="store_true")
    args = parser.parse_args(argv)

    if args.list_checks:
        for c in checks_mod.CHECKS:
            print(c)
        return 0

    note = (lambda *a: print(*a, file=sys.stderr))
    try:
        build_model, resolved = make_builder(args.frontend, args.build_dir,
                                             note=note)
    except RuntimeError as e:
        note(f"jisc-verify: {e}")
        return 2

    if args.self_test:
        return selftest.run_self_test(
            REPO_ROOT, build_model, update_golden=args.update_golden)

    paths = args.paths or [os.path.join(REPO_ROOT, "src")]
    try:
        files = srcmodel.gather_cpp_files(paths)
    except FileNotFoundError as e:
        note(f"jisc-verify: no such path: {e}")
        return 2
    if not files:
        note("jisc-verify: no .h/.cc files found")
        return 2

    config = waivers_mod.load_config(REPO_ROOT, args.config)
    waivers = waivers_mod.Waivers(config, REPO_ROOT)
    model = build_model(files)
    findings, waived = checks_mod.run_checks(
        model, REPO_ROOT, waivers, selected=args.checks,
        follow_receivers=args.lock_follow_receivers)

    if args.out:
        payload = {
            "frontend": resolved,
            "findings": [f.to_json() for f in findings],
            "waived": [f.to_json() for f in waived],
        }
        with open(args.out, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=2)
            f.write("\n")

    if args.format == "json":
        json.dump({"frontend": resolved,
                   "findings": [f.to_json() for f in findings],
                   "waived": [f.to_json() for f in waived]},
                  sys.stdout, indent=2)
        print()
    elif args.format == "markdown":
        _emit_markdown(findings, waived, print)
    else:
        _emit_human(findings, waived, print)

    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
