"""The four jisc-verify contract checks, run over a srcmodel.Model.

Each check returns a list of Finding.  Findings are normalized for golden
comparison as (check, relpath, line, symbol); the message carries the
human explanation (and call chains where relevant).
"""

import os
from dataclasses import dataclass, field

CHECKS = ("determinism", "coordinator-only", "obs-null-discipline",
          "lock-order")


@dataclass
class Finding:
    check: str
    file: str      # repo-relative path
    line: int
    symbol: str    # function / lock / callee the finding anchors to
    message: str
    chain: list = field(default_factory=list)

    def key(self):
        return (self.check, self.file, self.line, self.symbol)

    def to_json(self):
        out = {"check": self.check, "file": self.file, "line": self.line,
               "symbol": self.symbol, "message": self.message}
        if self.chain:
            out["chain"] = self.chain
        return out


def _rel(path, repo_root):
    try:
        return os.path.relpath(path, repo_root)
    except ValueError:
        return path


# ---------------------------------------------------------------------------
# Call-graph helpers
# ---------------------------------------------------------------------------

def _by_name(model):
    index = {}
    for fn in model.functions:
        index.setdefault(fn.name, []).append(fn)
    return index


def _resolve(call, caller, index):
    """Candidate Function definitions for a call site.

    Same-class definitions win for unqualified/this calls; otherwise any
    definition with the name matches (name-based linking — see DESIGN.md
    for the precision trade-off).
    """
    cands = index.get(call.name, [])
    if not cands:
        return []
    if call.qualifier in ("", "this") and caller.cls:
        same = [f for f in cands if f.cls == caller.cls]
        if same:
            return same
    return cands


def _closure(roots, index, follow):
    """Transitive callee closure. follow(call, caller) gates edges.

    Returns {id(fn): (fn, chain)} where chain is the qual_name path from
    a root to fn (inclusive).
    """
    reached = {}
    stack = []
    for fn in roots:
        reached[id(fn)] = (fn, [fn.qual_name])
        stack.append(fn)
    while stack:
        caller = stack.pop()
        chain = reached[id(caller)][1]
        if len(chain) > 32:
            continue
        for call in caller.calls:
            if not follow(call, caller):
                continue
            for fn in _resolve(call, caller, index):
                if id(fn) in reached:
                    continue
                reached[id(fn)] = (fn, chain + [fn.qual_name])
                stack.append(fn)
    return reached


# ---------------------------------------------------------------------------
# 1. determinism
# ---------------------------------------------------------------------------

def check_determinism(model, repo_root, roots):
    """Nondeterminism sources reachable from deterministic-serialization
    roots: wall-clock reads, PRNG draws, and iteration over unordered
    containers (hash order leaks into the serialized bytes)."""
    index = _by_name(model)
    root_fns = [fn for fn in model.functions if fn.name in set(roots)]
    # Data reachable through any receiver feeds the serialization, so the
    # closure follows every call qualifier.
    reached = _closure(root_fns, index, lambda call, caller: True)
    findings = []
    for fn, chain in reached.values():
        rel = _rel(fn.file, repo_root)
        for site in fn.nondet:
            kind = ("wall-clock read" if site.what == "clock"
                    else "PRNG draw")
            findings.append(Finding(
                check="determinism", file=rel, line=site.line,
                symbol=site.detail,
                message=(f"{kind} `{site.detail}` in {fn.qual_name}, "
                         f"reachable from deterministic root "
                         f"{chain[0]} — serialized bytes would depend "
                         f"on it"),
                chain=chain))
        for site in fn.iters:
            findings.append(Finding(
                check="determinism", file=rel, line=site.line,
                symbol=site.expr,
                message=(f"iteration over unordered container "
                         f"`{site.expr}` in {fn.qual_name}, reachable "
                         f"from deterministic root {chain[0]} — hash "
                         f"order leaks into serialized bytes; iterate a "
                         f"sorted copy or a canonical ordering"),
                chain=chain))
    return findings


# ---------------------------------------------------------------------------
# 2. coordinator-only
# ---------------------------------------------------------------------------

def check_coordinator_only(model, repo_root):
    """Any function transitively reachable from a worker-loop root that
    calls a JISC_COORDINATOR_ONLY symbol.  Only unqualified / this-> /
    scope-qualified calls are followed (a receiver-qualified call targets
    another object, which is the coordinator's business to mediate —
    matching the regex lint's contract, but now transitive)."""
    index = _by_name(model)
    roots = [fn for fn in model.functions if fn.worker_entry]

    def follow(call, caller):
        return call.qualifier in ("", "this", "scope")

    reached = _closure(roots, index, follow)
    findings = []
    seen = set()
    for fn, chain in reached.values():
        for call in fn.calls:
            if call.qualifier not in ("", "this", "scope"):
                continue
            mark_hit = ((fn.cls, call.name) in model.coordinator_marks or
                        ("", call.name) in model.coordinator_marks)
            if not mark_hit:
                targets = _resolve(call, fn, index)
                mark_hit = any(t.coordinator_only for t in targets)
            if not mark_hit:
                continue
            rel = _rel(fn.file, repo_root)
            k = (rel, call.line, call.name)
            if k in seen:
                continue
            seen.add(k)
            findings.append(Finding(
                check="coordinator-only", file=rel, line=call.line,
                symbol=call.name,
                message=(f"worker-reachable call to coordinator-only "
                         f"symbol {call.name} "
                         f"(path: {' -> '.join(chain)} -> {call.name})"),
                chain=chain + [call.name]))
    return findings


# ---------------------------------------------------------------------------
# 3. obs-null-discipline
# ---------------------------------------------------------------------------

def check_obs_null(model, repo_root):
    """Every Observability*/TelemetryRegistry* dereference must be
    dominated by a null check (the pointers are nullptr when the feature
    is off — see src/obs/observability.h)."""
    findings = []
    for fn in model.functions:
        for site in fn.derefs:
            if site.guarded:
                continue
            findings.append(Finding(
                check="obs-null-discipline",
                file=_rel(fn.file, repo_root), line=site.line,
                symbol=f"{site.expr}->{site.member}",
                message=(f"dereference of {site.ptr_type}* "
                         f"`{site.expr}->{site.member}` in {fn.qual_name} "
                         f"is not dominated by a null check — this "
                         f"pointer is nullptr when observability is "
                         f"off")))
    return findings


# ---------------------------------------------------------------------------
# 4. lock-order
# ---------------------------------------------------------------------------

def check_lock_order(model, repo_root, follow_receivers=False):
    """Builds the static lock-acquisition graph (edge A->B when B is
    acquired while A is held, including one level of interprocedural
    nesting) and fails on cycles.  Self-edges are skipped: re-acquiring
    the same named lock through a wrapper is the -Wthread-safety gate's
    job, and receiver-qualified calls target other objects whose
    same-named locks are distinct instances."""
    index = _by_name(model)
    edges = {}   # lock -> {other_lock: (file, line, via)}

    def add_edge(a, b, file, line, via):
        if a == b:
            return
        edges.setdefault(a, {}).setdefault(b, (file, line, via))

    for fn in model.functions:
        for held in fn.locks:
            # Intra-function nesting.
            for other in fn.locks:
                if other is held:
                    continue
                if held.start < other.start < held.end:
                    add_edge(held.lock, other.lock, fn.file, other.line,
                             fn.qual_name)
            # One-level interprocedural nesting through calls made while
            # the lock is held.
            for call in fn.calls:
                if not (held.start < call.pos < held.end):
                    continue
                if call.qualifier not in ("", "this", "scope") and \
                        not follow_receivers:
                    continue
                for callee in _resolve(call, fn, index):
                    for acq in callee.locks:
                        add_edge(held.lock, acq.lock, fn.file, call.line,
                                 f"{fn.qual_name} -> {callee.qual_name}")

    # Cycle detection (DFS with colors); each cycle reported once under a
    # canonical rotation.
    findings = []
    reported = set()
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {}
    stack = []

    def dfs(node):
        color[node] = GRAY
        stack.append(node)
        for nxt in edges.get(node, {}):
            c = color.get(nxt, WHITE)
            if c == GRAY:
                cyc = stack[stack.index(nxt):] + [nxt]
                rots = [tuple(cyc[i:-1] + cyc[:i])
                        for i in range(len(cyc) - 1)]
                canon = min(rots)
                if canon in reported:
                    continue
                reported.add(canon)
                file, line, via = edges[node][nxt]
                findings.append(Finding(
                    check="lock-order", file=_rel(file, repo_root),
                    line=line, symbol=" -> ".join(cyc),
                    message=(f"lock-order cycle: {' -> '.join(cyc)} "
                             f"(edge {node} -> {nxt} via {via}); a "
                             f"concurrent reverse acquisition can "
                             f"deadlock"),
                    chain=list(cyc)))
            elif c == WHITE:
                dfs(nxt)
        stack.pop()
        color[node] = BLACK

    for node in sorted(edges):
        if color.get(node, WHITE) == WHITE:
            dfs(node)
    return findings


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def run_checks(model, repo_root, waivers, selected=None,
               follow_receivers=False):
    """Runs the selected checks; returns (findings, waived)."""
    selected = set(selected or CHECKS)
    raw = []
    if "determinism" in selected:
        raw += check_determinism(model, repo_root,
                                 waivers.deterministic_roots)
    if "coordinator-only" in selected:
        raw += check_coordinator_only(model, repo_root)
    if "obs-null-discipline" in selected:
        raw += check_obs_null(model, repo_root)
    if "lock-order" in selected:
        raw += check_lock_order(model, repo_root,
                                follow_receivers=follow_receivers)

    findings, waived = [], []
    abs_files = {path: text for path, text in model.files.items()}
    # Surface malformed waivers even in files with no other findings.
    for path, text in abs_files.items():
        waivers._site_waivers(path, text)
    for f in sorted(raw, key=lambda f: f.key()):
        path = os.path.join(repo_root, f.file)
        if waivers.is_waived(f.check, path, f.line, abs_files):
            waived.append(f)
        else:
            findings.append(f)
    for rel, line in waivers.bad_waivers:
        findings.append(Finding(
            check="waiver-syntax", file=rel, line=line, symbol="allow",
            message="jisc-verify: allow() waiver without a reason — "
                    "every waiver must say why"))
    return findings, waived
