#include "stream/window.h"

namespace jisc {

WindowSpec WindowSpec::Uniform(int num_streams, uint64_t size) {
  JISC_CHECK(num_streams >= 1);
  JISC_CHECK(size >= 1);
  WindowSpec w;
  w.sizes_.assign(static_cast<size_t>(num_streams), size);
  return w;
}

WindowSpec WindowSpec::PerStream(std::vector<uint64_t> sizes) {
  JISC_CHECK(!sizes.empty());
  for (uint64_t s : sizes) JISC_CHECK(s >= 1);
  WindowSpec w;
  w.sizes_ = std::move(sizes);
  return w;
}

WindowSpec WindowSpec::UniformTime(int num_streams, uint64_t duration) {
  WindowSpec w = Uniform(num_streams, duration);
  w.mode_ = Mode::kTime;
  return w;
}

WindowSpec WindowSpec::PerStreamTime(std::vector<uint64_t> durations) {
  WindowSpec w = PerStream(std::move(durations));
  w.mode_ = Mode::kTime;
  return w;
}

}  // namespace jisc
