#include "stream/synthetic_source.h"

#include "common/logging.h"

namespace jisc {

SyntheticSource::SyntheticSource(const SourceConfig& config)
    : config_(config), rng_(config.seed) {
  JISC_CHECK(config_.num_streams >= 1);
  JISC_CHECK(config_.num_streams <= kMaxStreams);
  JISC_CHECK(config_.key_domain >= 1);
  for (uint64_t d : config_.per_stream_key_domain) JISC_CHECK(d >= 1);
  if (config_.zipf_s > 0) {
    zipf_ = std::make_unique<ZipfDistribution>(config_.key_domain,
                                               config_.zipf_s);
  }
}

BaseTuple SyntheticSource::Next() {
  BaseTuple t;
  if (forced_stream_.has_value()) {
    t.stream = *forced_stream_;
  } else if (config_.interleave == Interleave::kRoundRobin) {
    t.stream = static_cast<StreamId>(round_robin_pos_);
    round_robin_pos_ = (round_robin_pos_ + 1) % config_.num_streams;
  } else {
    t.stream = static_cast<StreamId>(
        rng_.UniformU64(static_cast<uint64_t>(config_.num_streams)));
  }
  if (config_.key_pattern == KeyPattern::kSequential ||
      config_.key_pattern == KeyPattern::kBottomFanout) {
    uint64_t round = next_seq_ / static_cast<uint64_t>(config_.num_streams);
    uint64_t key = round % config_.key_domain;
    if (config_.key_pattern == KeyPattern::kBottomFanout) {
      for (StreamId dense : config_.fanout_streams) {
        if (t.stream == dense) {
          key -= key % config_.fanout;
          break;
        }
      }
    }
    t.key = static_cast<JoinKey>(key);
  } else if (zipf_ != nullptr) {
    t.key = static_cast<JoinKey>(zipf_->Sample(&rng_));
  } else {
    uint64_t domain = config_.key_domain;
    if (t.stream < config_.per_stream_key_domain.size()) {
      domain = config_.per_stream_key_domain[t.stream];
    }
    t.key = static_cast<JoinKey>(rng_.UniformU64(domain));
  }
  t.payload = static_cast<int64_t>(rng_.Next() & 0xffffff);
  t.seq = next_seq_++;
  t.ts = t.seq * config_.ts_stride;
  return t;
}

std::vector<BaseTuple> SyntheticSource::NextBatch(size_t n) {
  std::vector<BaseTuple> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(Next());
  return out;
}

void SyntheticSource::SetKeyDomain(uint64_t domain) {
  JISC_CHECK(domain >= 1);
  config_.key_domain = domain;
  if (config_.zipf_s > 0) {
    zipf_ = std::make_unique<ZipfDistribution>(domain, config_.zipf_s);
  }
}

void SyntheticSource::SetPerStreamKeyDomains(std::vector<uint64_t> domains) {
  for (uint64_t d : domains) JISC_CHECK(d >= 1);
  config_.per_stream_key_domain = std::move(domains);
}

void SyntheticSource::ForceStream(std::optional<StreamId> stream) {
  if (stream.has_value()) {
    JISC_CHECK(*stream < config_.num_streams);
  }
  forced_stream_ = stream;
}

}  // namespace jisc
