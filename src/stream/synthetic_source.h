#ifndef JISC_STREAM_SYNTHETIC_SOURCE_H_
#define JISC_STREAM_SYNTHETIC_SOURCE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/random.h"
#include "types/tuple.h"

namespace jisc {

// How arrivals are interleaved across streams.
enum class Interleave {
  kRoundRobin,      // S0, S1, ..., Sn-1, S0, ... (paper: data "uniformly
                    // distributed across the different streams")
  kUniformRandom,   // each arrival picks a stream uniformly at random
};

// How join keys are assigned.
enum class KeyPattern {
  kRandom,      // uniform (or Zipf-skewed) draw from [0, key_domain)
  kSequential,  // key = (seq / num_streams) % key_domain: every key occurs
                // once per key_domain rounds on every stream, giving exactly
                // one match per window probe when key_domain == window --
                // a deterministic unit-selectivity regime (deep plans
                // neither die out nor explode)
  kBottomFanout,  // like kSequential, but the streams in `fanout_streams`
                  // repeat each key `fanout` times per window (their keys
                  // are rounded down to multiples of fanout). The dense
                  // pair fans out fanout^2 combinations per matching key
                  // while other levels stay at unit selectivity: the regime
                  // where materialized intermediate state pays off and
                  // CACQ's recomputation does not
};

// Configuration of the synthetic workload generator used throughout the
// experiments: uniform (or Zipf-skewed) join keys over a bounded domain,
// uniformly interleaved across streams.
struct SourceConfig {
  int num_streams = 4;
  // Join keys are drawn from [0, key_domain). With window w per stream, the
  // expected number of matches per probe of a single stream's window is
  // w / key_domain.
  uint64_t key_domain = 1000;
  // 0 => uniform keys; > 0 => Zipf(s) skew (kRandom only).
  double zipf_s = 0;
  KeyPattern key_pattern = KeyPattern::kRandom;
  // Event-time units advanced per arrival (ts = seq * ts_stride). Only
  // meaningful with time-based windows.
  uint64_t ts_stride = 1;
  // kBottomFanout: per-window key multiplicity of the dense streams.
  uint64_t fanout = 3;
  // kBottomFanout: which streams are dense. Figure benches place the pair
  // symmetrically (first and last stream) so that a join-order reversal
  // maps the plan onto an equal-cost plan.
  std::vector<StreamId> fanout_streams = {0, 1};
  // kRandom only: per-stream key domains (stream s draws from
  // [0, per_stream_key_domain[s])). Empty => every stream uses key_domain.
  // Smaller domains mean more duplicates per key: a high-fanout stream the
  // optimizer should keep near the top of a left-deep plan.
  std::vector<uint64_t> per_stream_key_domain;
  Interleave interleave = Interleave::kRoundRobin;
  uint64_t seed = 42;
};

// Deterministic generator of base tuples. Assigns globally increasing
// sequence numbers; supports mid-run reconfiguration of the key domain
// (used by the adaptive examples to shift selectivities).
class SyntheticSource {
 public:
  explicit SyntheticSource(const SourceConfig& config);

  BaseTuple Next();
  std::vector<BaseTuple> NextBatch(size_t n);

  // Changes the key domain from the next tuple on (selectivity shift).
  void SetKeyDomain(uint64_t domain);

  // Changes the per-stream key domains (kRandom pattern) from the next
  // tuple on; sequence numbers keep increasing (a mid-run distribution
  // shift, not a new source).
  void SetPerStreamKeyDomains(std::vector<uint64_t> domains);

  // Pins the next arrivals to a specific stream (for targeted tests);
  // std::nullopt restores the configured interleave.
  void ForceStream(std::optional<StreamId> stream);

  uint64_t tuples_emitted() const { return next_seq_; }
  const SourceConfig& config() const { return config_; }

 private:
  SourceConfig config_;
  Rng rng_;
  std::unique_ptr<ZipfDistribution> zipf_;
  Seq next_seq_ = 0;
  int round_robin_pos_ = 0;
  std::optional<StreamId> forced_stream_;
};

}  // namespace jisc

#endif  // JISC_STREAM_SYNTHETIC_SOURCE_H_
