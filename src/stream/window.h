#ifndef JISC_STREAM_WINDOW_H_
#define JISC_STREAM_WINDOW_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "types/tuple.h"

namespace jisc {

// Sliding windows, per stream. Two modes:
//  * count-based (the paper's experiments: 10,000-tuple windows): a window
//    of size W holds the stream's last W tuples; the (W+1)-th arrival
//    expires the oldest;
//  * time-based: a window of duration D holds the stream's tuples with
//    event time in (t - D, t], where t is the stream's latest arrival time
//    (windows advance on their own stream's arrivals; one arrival may
//    expire several tuples).
// Either way, an expiry propagates up the plan identically, so plan
// migration — JISC included — is window-mode agnostic.
class WindowSpec {
 public:
  enum class Mode { kCount, kTime };

  WindowSpec() = default;

  // Same count-based window size for all n streams.
  static WindowSpec Uniform(int num_streams, uint64_t size);

  // Per-stream count-based sizes.
  static WindowSpec PerStream(std::vector<uint64_t> sizes);

  // Same time-based window duration (event-time units) for all n streams.
  static WindowSpec UniformTime(int num_streams, uint64_t duration);

  // Per-stream time-based durations.
  static WindowSpec PerStreamTime(std::vector<uint64_t> durations);

  // Count size (kCount) or duration (kTime) of the stream's window.
  uint64_t SizeFor(StreamId stream) const {
    JISC_DCHECK(stream < sizes_.size());
    return sizes_[stream];
  }

  Mode mode() const { return mode_; }
  bool time_based() const { return mode_ == Mode::kTime; }

  int num_streams() const { return static_cast<int>(sizes_.size()); }

 private:
  Mode mode_ = Mode::kCount;
  std::vector<uint64_t> sizes_;
};

}  // namespace jisc

#endif  // JISC_STREAM_WINDOW_H_
