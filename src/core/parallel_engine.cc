#include "core/parallel_engine.h"

#include <utility>

#include "common/logging.h"
#include "exec/ingress_guard.h"

namespace jisc {

std::unique_ptr<StreamProcessor> MakeEngineProcessor(
    const LogicalPlan& plan, const WindowSpec& windows, Sink* sink,
    StrategyFactory strategy_factory, Engine::Options options,
    ParallelExecutor::Options parallel_options) {
  JISC_CHECK(strategy_factory != nullptr);
  if (options.parallelism <= 1) {
    auto engine = std::make_unique<Engine>(plan, windows, sink,
                                           strategy_factory(), options);
    return MaybeGuardProcessor(std::move(engine), options.ingress,
                               windows.num_streams(), options.obs);
  }
  parallel_options.num_shards = options.parallelism;
  parallel_options.obs = options.obs;
  Engine::Options shard_options = options;
  shard_options.parallelism = 1;
  shard_options.exec.external_expiry = true;
  // The guard runs once, on the coordinator side, in front of the whole
  // executor: shard engines see an already-cleaned feed.
  shard_options.ingress = IngressGuard::Options();
  ParallelExecutor::ShardFactory shard_factory =
      [plan, windows, shard_options,
       strategy_factory = std::move(strategy_factory)](Sink* shard_sink,
                                                       int shard) {
        // Shards share one Observability bundle (lock-free histograms,
        // mutex-guarded trace ring); each labels its spans with its own
        // track so the exported trace shows per-shard timelines. Track 0
        // stays the coordinator's.
        Engine::Options opts = shard_options;
        if (opts.obs != nullptr) opts.obs_track = shard + 1;
        return std::make_unique<Engine>(plan, windows, shard_sink,
                                        strategy_factory(), opts);
      };
  auto executor = std::make_unique<ParallelExecutor>(
      plan, windows, sink, shard_factory, parallel_options);
  return MaybeGuardProcessor(std::move(executor), options.ingress,
                             windows.num_streams(), options.obs);
}

}  // namespace jisc
