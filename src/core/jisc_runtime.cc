#include "core/jisc_runtime.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "exec/nested_loops_join.h"
#include "obs/trace.h"
#include "plan/plan_diff.h"

namespace jisc {

JiscRuntime::JiscRuntime(JiscOptions options) : options_(options) {}

JiscRuntime::~JiscRuntime() = default;

const CompletionTracker* JiscRuntime::tracker(int node_id) const {
  auto it = trackers_.find(node_id);
  return it == trackers_.end() ? nullptr : it->second.get();
}

Stamp JiscRuntime::SinceStampFor(const Operator* op) const {
  auto it = trackers_.find(op->node_id());
  JISC_CHECK(it != trackers_.end())
      << "incomplete state without a tracker: " << op->DebugString();
  return it->second->since_stamp();
}

Status JiscRuntime::Migrate(Engine* engine, const LogicalPlan& new_plan) {
  engine_ = engine;
  Observability* obs = engine->obs();
  TraceRecorder* rec = obs != nullptr ? &obs->trace : nullptr;
  int track = engine->obs_track();
  PipelineExecutor& old_exec = engine->executor();

  // Definition 1 refined by Section 4.5: completeness in the new plan
  // requires existence *and* completeness in the old plan.
  StateSnapshot snapshot;
  PlanDiff diff;
  {
    TraceScope span(rec, "plan-diff", "migration", track);
    snapshot = old_exec.SnapshotCompleteness();
    diff = DiffPlans(new_plan, snapshot);
    span.SetArg("incomplete", static_cast<uint64_t>(diff.NumIncomplete()));
  }

  // Provenance of still-incomplete carried states: keep the earliest
  // since-stamp / boundary so their old combinations stay covered.
  struct Provenance {
    Stamp since;
    Seq boundary;
  };
  std::unordered_map<uint64_t, Provenance, U64Hash> carried;
  for (const auto& [id, tr] : trackers_) {
    (void)id;
    carried[tr->op()->streams().bits()] = {tr->since_stamp(),
                                           tr->boundary_seq()};
  }
  trackers_.clear();

  TraceScope carryover(rec, "state-carryover", "migration", track);
  StatePool pool = old_exec.TakeAllStates();
  auto new_exec = std::make_unique<PipelineExecutor>(
      new_plan, engine->windows(), engine->exec_options(), &pool);
  // Remaining pool entries are the old plan's discarded states; they die
  // with `pool` here (Section 4.1).

  Stamp transition_stamp = engine->AllocateStamp();
  Seq boundary = engine->max_seq_seen() + 1;

  for (int id = 0; id < new_plan.num_nodes(); ++id) {
    Operator* op = new_exec->op(id);
    if (diff.node_complete[id] || op->kind() == OpKind::kScan) {
      op->state().MarkComplete();
    } else {
      op->state().MarkIncomplete();
    }
  }
  // Trackers are created children-first so each sees its children's final
  // completeness flags (Cases 1-3 of Section 4.3).
  for (int id = 0; id < new_plan.num_nodes(); ++id) {
    Operator* op = new_exec->op(id);
    if (op->state().complete()) continue;
    Stamp since = transition_stamp;
    Seq bound = boundary;
    auto it = carried.find(op->streams().bits());
    if (it != carried.end()) {
      since = std::min(since, it->second.since);
      bound = std::min(bound, it->second.boundary);
    }
    trackers_[id] = std::make_unique<CompletionTracker>(
        op, since, bound, options_.paper_case3);
  }
  current_plan_left_deep_ = new_plan.IsLeftDeep();
  frozen_keys_.clear();
  if (options_.eager_charging) FreezeEagerKeySets(new_exec.get(), new_plan);
  engine->ReplaceExecutor(std::move(new_exec));
  return Status::Ok();
}

void JiscRuntime::FreezeEagerKeySets(PipelineExecutor* exec,
                                     const LogicalPlan& plan) {
  // Predict, children before parents, the live-key set each state would
  // hold after Moving State's eager bottom-up materialization. A complete
  // (carried) state keeps its actual keys; an incomplete state's set is
  // derived from its children's predicted sets, because the eager pass
  // materializes it from the already-filled children. The reference-child
  // set the eager pass would iterate (and charge for) is frozen per node;
  // values outside it complete with no work.
  std::vector<std::unordered_set<JoinKey, I64Hash>> predicted(
      static_cast<size_t>(plan.num_nodes()));
  for (int id = 0; id < plan.num_nodes(); ++id) {
    Operator* op = exec->op(id);
    OperatorState& st = op->state();
    auto& mine = predicted[static_cast<size_t>(id)];
    if (op->kind() == OpKind::kScan || st.complete()) {
      for (JoinKey v : st.LiveKeys()) mine.insert(v);
      continue;
    }
    if (st.index() == StateIndex::kList) continue;  // CompleteFull covers these
    const auto& lk = predicted[static_cast<size_t>(op->left()->node_id())];
    const auto& rk = predicted[static_cast<size_t>(op->right()->node_id())];
    if (op->kind() == OpKind::kSetDifference ||
        op->kind() == OpKind::kSemiJoin) {
      frozen_keys_[id] = lk;  // eager iterates the left (outer) entries
      bool want_witness = op->kind() == OpKind::kSemiJoin;
      for (JoinKey v : lk) {
        if ((rk.count(v) != 0) == want_witness) mine.insert(v);
      }
    } else {
      // Equi join: eager iterates the smaller child's keys (ties -> left);
      // a combination needs the value live on both sides.
      const auto& ref = lk.size() <= rk.size() ? lk : rk;
      const auto& other = lk.size() <= rk.size() ? rk : lk;
      frozen_keys_[id] = ref;
      for (JoinKey v : ref) {
        if (other.count(v) != 0) mine.insert(v);
      }
    }
  }
}

void JiscRuntime::Maintain(Engine* engine) {
  if (trackers_.empty()) return;
  engine_ = engine;
  std::vector<int> ids;
  ids.reserve(trackers_.size());
  for (const auto& [id, tr] : trackers_) {
    (void)tr;
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());  // children before parents
  for (int id : ids) {
    auto it = trackers_.find(id);
    if (it == trackers_.end()) continue;
    CompletionTracker* tr = it->second.get();
    bool done = false;
    if (options_.detection == JiscOptions::DetectionMode::kCounter) {
      tr->SweepExpired();
      tr->ResolveDeferred();
      done = tr->Done();
    }
    if (!done) done = SubtreeTurnedOver(tr->op());
    if (done) MarkStateComplete(tr->op());
  }
}

bool JiscRuntime::SubtreeTurnedOver(const Operator* op) const {
  JISC_CHECK(engine_ != nullptr);
  auto it = trackers_.find(op->node_id());
  JISC_CHECK(it != trackers_.end());
  Seq boundary = it->second->boundary_seq();
  PipelineExecutor& exec = engine_->executor();
  for (StreamId s : op->streams().ToVector()) {
    StreamScan* scan = exec.scan(s);
    JISC_CHECK(scan != nullptr);
    if (scan->window_fill() == 0) continue;
    if (scan->OldestLiveSeq() < boundary) return false;
  }
  return true;
}

void JiscRuntime::MarkStateComplete(Operator* op) {
  op->state().MarkComplete();
  trackers_.erase(op->node_id());
}

void JiscRuntime::OnArrival(Engine* engine, const BaseTuple& base,
                            Stamp stamp) {
  if (options_.completion_mode != JiscOptions::CompletionMode::kOnFirstReceipt)
    return;
  if (trackers_.empty()) return;
  engine_ = engine;
  if (!engine->freshness().IsFresh(base.stream, base.key)) return;
  // Complete this value at every incomplete state, children first.
  std::vector<int> ids;
  for (const auto& [id, tr] : trackers_) {
    (void)tr;
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  Metrics* metrics = &engine->mutable_metrics();
  for (int id : ids) {
    auto it = trackers_.find(id);
    if (it == trackers_.end()) continue;
    Operator* op = it->second->op();
    if (op->state().index() == StateIndex::kList) {
      CompleteFull(op, stamp, metrics);
    } else {
      CompleteForKey(op, base.key, stamp, metrics);
    }
  }
}

void JiscRuntime::EnsureCompleted(const Tuple& probe, Operator* opposite,
                                  ExecContext* ctx) {
  if (opposite->state().complete()) return;
  // One clock-read pair feeds both the completion_ns histogram and the
  // per-value "jit-completion" trace span (recorded manually rather than
  // through TraceScope so the duration is not measured twice).
  Observability* obs = ctx->obs;
  uint64_t t0 = obs != nullptr ? obs->trace.NowNs() : 0;
  if (opposite->state().index() == StateIndex::kList) {
    CompleteFull(opposite, ctx->stamp, ctx->metrics);
  } else if (current_plan_left_deep_ && options_.use_left_deep_procedure) {
    CompleteForKeyLeftDeep(opposite, probe.key(), ctx->stamp, ctx->metrics);
  } else {
    CompleteForKey(opposite, probe.key(), ctx->stamp, ctx->metrics);
  }
  if (obs != nullptr) {
    uint64_t now = obs->trace.NowNs();
    obs->completion_ns.Record(now - t0);
    TraceSpan span;
    span.name = "jit-completion";
    span.category = "migration";
    span.start_ns = t0;
    span.dur_ns = now - t0;
    span.track = ctx->obs_track;
    span.depth = 0;
    span.arg_name = "key";
    span.arg = static_cast<uint64_t>(probe.key());
    obs->trace.Record(span);
  }
}

bool JiscRuntime::RemovalMayStopAtIncomplete(const BaseTuple& base,
                                             const Operator* at,
                                             ExecContext* ctx) {
  (void)ctx;
  if (at->state().IsKeyCompleted(base.key)) return true;
  if (options_.completion_mode ==
          JiscOptions::CompletionMode::kOnFirstReceipt &&
      engine_ != nullptr &&
      !engine_->freshness().IsFresh(base.stream, base.key)) {
    // Section 4.4: attempted values have complete entries at every state.
    return true;
  }
  return false;
}

void JiscRuntime::CollectThetaMatches(const Tuple& probe, Operator* opposite,
                                      ExecContext* ctx,
                                      std::vector<Tuple>* out) {
  OperatorState& st = opposite->state();
  if (opposite->kind() == OpKind::kScan || st.complete()) {
    // Materialized: scan it. The probe's theta is the parent's, but every
    // nested-loops operator in a plan shares the query's ThetaSpec.
    auto* parent = static_cast<NestedLoopsJoin*>(opposite->parent());
    const ThetaSpec& theta = parent->theta();
    uint64_t scanned = 0;
    st.ForEachVisible(ctx->stamp, [&](const Tuple& e) {
      ++scanned;
      if (theta.Matches(probe, e)) out->push_back(e);
    });
    if (ctx->metrics != nullptr) ctx->metrics->probe_entries += scanned;
    return;
  }
  if (st.index() != StateIndex::kList) {
    // Mixed plan: an incomplete equi/set state under a theta parent is
    // completed in full, then scanned.
    CompleteFull(opposite, ctx->stamp, ctx->metrics);
    CollectThetaMatches(probe, opposite, ctx, out);
    return;
  }
  // Incomplete theta state: recompute the probe's matches from the
  // children. All-pairs predicates decompose across parts, so
  //   matches(X, t) = { l (x) r : l in matches(left, t),
  //                     r in matches(right, t), theta_X(l, r) }.
  auto* nlj = static_cast<NestedLoopsJoin*>(opposite);
  std::vector<Tuple> ls;
  std::vector<Tuple> rs;
  CollectThetaMatches(probe, opposite->left(), ctx, &ls);
  CollectThetaMatches(probe, opposite->right(), ctx, &rs);
  for (const Tuple& l : ls) {
    for (const Tuple& r : rs) {
      if (ctx->metrics != nullptr) ++ctx->metrics->probe_entries;
      if (nlj->theta().Matches(l, r)) {
        out->push_back(Tuple::Concat(l, r, ctx->stamp, false));
      }
    }
  }
}

void JiscRuntime::CompleteForKey(Operator* op, JoinKey v, Stamp p,
                                 Metrics* metrics) {
  if (op->kind() == OpKind::kScan) return;  // leaf states are complete
  OperatorState& st = op->state();
  if (st.complete() || st.IsKeyCompleted(v)) return;
  if (st.index() == StateIndex::kList) {
    CompleteFull(op, p, metrics);
    return;
  }
  // Procedure 2: recursively complete the children for v first, then
  // materialize at this node.
  CompleteForKey(op->left(), v, p, metrics);
  CompleteForKey(op->right(), v, p, metrics);
  MaterializeKey(op, v, p, metrics);
}

void JiscRuntime::CompleteForKeyLeftDeep(Operator* op, JoinKey v, Stamp p,
                                         Metrics* metrics) {
  // Procedure 3: in a left-deep plan only left-spine states can be
  // incomplete, so walk down the spine to the highest node whose left child
  // is usable, then materialize upward without recursion.
  std::vector<Operator*> chain;
  Operator* cur = op;
  while (cur->kind() != OpKind::kScan && !cur->state().complete() &&
         !cur->state().IsKeyCompleted(v)) {
    if (cur->state().index() == StateIndex::kList) {
      // Mixed plan: a theta state on the spine is completed in full.
      CompleteFull(cur, p, metrics);
      break;
    }
    chain.push_back(cur);
    cur = cur->left();
  }
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    MaterializeKey(*it, v, p, metrics);
  }
}

void JiscRuntime::MaterializeKey(Operator* op, JoinKey v, Stamp p,
                                 Metrics* metrics) {
  OperatorState& st = op->state();
  JISC_DCHECK(!st.complete() && !st.IsKeyCompleted(v));
  if (options_.eager_charging) {
    MaterializeKeyEager(op, v, p, metrics);
    return;
  }
  Stamp since = SinceStampFor(op);
  if (op->kind() == OpKind::kSetDifference || op->kind() == OpKind::kSemiJoin) {
    // Set difference: entries for v are the outer tuples with v and no live
    // inner match. Semi join: the same outer tuples when a live inner match
    // DOES exist.
    bool witness = op->right()->state().ContainsKeyLive(v);
    bool keep = op->kind() == OpKind::kSemiJoin ? witness : !witness;
    if (keep) {
      std::vector<Tuple> outers;
      op->left()->state().CollectMatches(v, p, &outers);
      for (const Tuple& l : outers) {
        Tuple entry = l;
        entry.set_birth(since);
        if (st.Insert(entry, since, /*dedup=*/true)) {
          if (metrics != nullptr) ++metrics->completion_inserts;
        } else if (metrics != nullptr) {
          ++metrics->completion_dedup_hits;
        }
      }
    }
  } else {
    std::vector<Tuple> ls;
    std::vector<Tuple> rs;
    op->left()->state().CollectMatches(v, p, &ls);
    op->right()->state().CollectMatches(v, p, &rs);
    if (metrics != nullptr) metrics->probe_entries += ls.size() + rs.size();
    for (const Tuple& l : ls) {
      for (const Tuple& r : rs) {
        Tuple combo = Tuple::Concat(l, r, since, /*fresh=*/false);
        if (st.Insert(combo, since, /*dedup=*/true)) {
          if (metrics != nullptr) ++metrics->completion_inserts;
        } else if (metrics != nullptr) {
          ++metrics->completion_dedup_hits;
        }
      }
    }
  }
  st.MarkKeyCompleted(v);
  if (metrics != nullptr) ++metrics->completions;
  auto it = trackers_.find(op->node_id());
  if (it != trackers_.end()) it->second->OnKeyCompleted(v);
}

void JiscRuntime::MaterializeKeyEager(Operator* op, JoinKey v, Stamp p,
                                      Metrics* metrics) {
  // Moving State's counter profile (migration/state_materializer.cc):
  // successful inserts charge `inserts`, dedup suppressions are silent, the
  // `completions` counter is untouched, and set-difference / semi-join
  // probes charge one probe_entry per outer tuple examined.
  OperatorState& st = op->state();
  auto finish = [&] {
    st.MarkKeyCompleted(v);
    auto it = trackers_.find(op->node_id());
    if (it != trackers_.end()) it->second->OnKeyCompleted(v);
  };
  auto fit = frozen_keys_.find(op->node_id());
  if (fit == frozen_keys_.end() || fit->second.count(v) == 0) {
    // The eager pass never iterated this value here, so no pre-transition
    // combination exists for it: complete it with no work and no charges.
    finish();
    return;
  }
  Stamp since = SinceStampFor(op);
  if (op->kind() == OpKind::kSetDifference || op->kind() == OpKind::kSemiJoin) {
    std::vector<Tuple> outers;
    op->left()->state().CollectMatches(v, p, &outers);
    if (metrics != nullptr) metrics->probe_entries += outers.size();
    bool witness = op->right()->state().ContainsKeyLive(v);
    bool keep = op->kind() == OpKind::kSemiJoin ? witness : !witness;
    if (keep) {
      for (const Tuple& l : outers) {
        Tuple entry = l;
        entry.set_birth(since);
        if (st.Insert(entry, since, /*dedup=*/true) && metrics != nullptr) {
          ++metrics->inserts;
        }
      }
    }
  } else {
    std::vector<Tuple> ls;
    std::vector<Tuple> rs;
    op->left()->state().CollectMatches(v, p, &ls);
    op->right()->state().CollectMatches(v, p, &rs);
    if (metrics != nullptr) metrics->probe_entries += ls.size() + rs.size();
    for (const Tuple& l : ls) {
      for (const Tuple& r : rs) {
        Tuple combo = Tuple::Concat(l, r, since, /*fresh=*/false);
        if (st.Insert(combo, since, /*dedup=*/true) && metrics != nullptr) {
          ++metrics->inserts;
        }
      }
    }
  }
  finish();
}

void JiscRuntime::CompleteFull(Operator* op, Stamp p, Metrics* metrics) {
  if (op->kind() == OpKind::kScan) return;
  OperatorState& st = op->state();
  if (st.complete()) return;
  CompleteFull(op->left(), p, metrics);
  CompleteFull(op->right(), p, metrics);
  if (st.index() == StateIndex::kList) {
    // Theta join: all-pairs cross product of the children's visible entries.
    auto* nlj = static_cast<NestedLoopsJoin*>(op);
    Stamp since = SinceStampFor(op);
    std::vector<Tuple> ls;
    op->left()->state().ForEachVisible(p,
                                       [&](const Tuple& t) { ls.push_back(t); });
    op->right()->state().ForEachVisible(p, [&](const Tuple& r) {
      for (const Tuple& l : ls) {
        if (metrics != nullptr) ++metrics->probe_entries;
        if (!nlj->theta().Matches(l, r)) continue;
        Tuple combo = Tuple::Concat(l, r, since, /*fresh=*/false);
        if (st.Insert(combo, since, /*dedup=*/true)) {
          if (metrics != nullptr) {
            if (options_.eager_charging) {
              ++metrics->inserts;
            } else {
              ++metrics->completion_inserts;
            }
          }
        } else if (metrics != nullptr && !options_.eager_charging) {
          ++metrics->completion_dedup_hits;
        }
      }
    });
    if (metrics != nullptr && !options_.eager_charging) ++metrics->completions;
  } else {
    // Hash or set-difference state: complete every potentially-missing
    // value. (Missing combinations need the value live on both sides, so
    // the smaller child's key set suffices; set-difference entries come
    // from the left child.)
    const Operator* ref;
    if (op->kind() == OpKind::kSetDifference ||
        op->kind() == OpKind::kSemiJoin) {
      ref = op->left();
    } else {
      ref = op->left()->state().DistinctLiveKeys() <=
                    op->right()->state().DistinctLiveKeys()
                ? op->left()
                : op->right();
    }
    for (JoinKey v : ref->state().LiveKeys()) {
      if (!st.IsKeyCompleted(v)) MaterializeKey(op, v, p, metrics);
    }
  }
  MarkStateComplete(op);
}

std::vector<int> JiscRuntime::IncompleteOpIds() const {
  std::vector<int> ids;
  ids.reserve(trackers_.size());
  // jisc-verify: allow(determinism) — gathered ids are sorted below
  for (const auto& [id, tr] : trackers_) {
    (void)tr;
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());  // children before parents
  return ids;
}

void JiscRuntime::CompleteKeyAt(Engine* engine, int op_id, JoinKey v,
                                Stamp p) {
  engine_ = engine;
  Operator* op = engine->executor().op(op_id);
  OperatorState& st = op->state();
  if (st.complete() || st.IsKeyCompleted(v)) return;
  Metrics* metrics = &engine->mutable_metrics();
  if (st.index() == StateIndex::kList) {
    CompleteFull(op, p, metrics);
    return;
  }
  // Same dispatch as an on-probe completion so the charges are identical.
  if (current_plan_left_deep_ && options_.use_left_deep_procedure) {
    CompleteForKeyLeftDeep(op, v, p, metrics);
  } else {
    CompleteForKey(op, v, p, metrics);
  }
}

void JiscRuntime::CompleteListAt(Engine* engine, int op_id, Stamp p) {
  engine_ = engine;
  Operator* op = engine->executor().op(op_id);
  if (op->state().complete()) return;
  CompleteFull(op, p, &engine->mutable_metrics());
}

void JiscRuntime::SerializeCompletionState(ByteWriter* w) const {
  std::vector<int> ids = IncompleteOpIds();
  w->PutU64(ids.size());
  for (int id : ids) {
    const CompletionTracker& tr = *trackers_.at(id);
    w->PutU64(static_cast<uint64_t>(id));
    w->PutU64(tr.since_stamp());
    w->PutU64(tr.boundary_seq());
    w->PutU64(tr.initialized() ? 1 : 0);
    if (tr.initialized()) {
      std::vector<JoinKey> keys = tr.PendingKeysSorted();
      w->PutU64(keys.size());
      for (JoinKey k : keys) w->PutI64(k);
    }
  }
  std::vector<int> fids;
  fids.reserve(frozen_keys_.size());
  // jisc-verify: allow(determinism) — gathered ids are sorted below
  for (const auto& [id, keys] : frozen_keys_) {
    (void)keys;
    fids.push_back(id);
  }
  std::sort(fids.begin(), fids.end());
  w->PutU64(fids.size());
  for (int id : fids) {
    const auto& set = frozen_keys_.at(id);
    std::vector<JoinKey> keys(set.begin(), set.end());
    std::sort(keys.begin(), keys.end());
    w->PutU64(static_cast<uint64_t>(id));
    w->PutU64(keys.size());
    for (JoinKey k : keys) w->PutI64(k);
  }
}

Status JiscRuntime::RestoreCompletionState(Engine* engine, ByteReader* r) {
  engine_ = engine;
  PipelineExecutor& exec = engine->executor();
  current_plan_left_deep_ = engine->plan().IsLeftDeep();
  trackers_.clear();
  frozen_keys_.clear();
  int num_ops = exec.num_ops();
  uint64_t num_trackers = 0;
  Status s = r->GetU64(&num_trackers);
  if (!s.ok()) return s;
  for (uint64_t i = 0; i < num_trackers; ++i) {
    uint64_t id = 0;
    uint64_t since = 0;
    uint64_t boundary = 0;
    uint64_t initialized = 0;
    if (!(s = r->GetU64(&id)).ok()) return s;
    if (!(s = r->GetU64(&since)).ok()) return s;
    if (!(s = r->GetU64(&boundary)).ok()) return s;
    if (!(s = r->GetU64(&initialized)).ok()) return s;
    if (id >= static_cast<uint64_t>(num_ops)) {
      return Status::InvalidArgument(
          "completion state references a node outside the plan");
    }
    Operator* op = exec.op(static_cast<int>(id));
    if (op->kind() == OpKind::kScan || op->state().complete()) {
      return Status::InvalidArgument(
          "completion state does not match the checkpointed plan");
    }
    auto tr = std::make_unique<CompletionTracker>(
        op, static_cast<Stamp>(since), static_cast<Seq>(boundary),
        options_.paper_case3);
    if (initialized != 0) {
      uint64_t num_keys = 0;
      if (!(s = r->GetU64(&num_keys)).ok()) return s;
      std::vector<JoinKey> keys;
      keys.reserve(num_keys);
      for (uint64_t k = 0; k < num_keys; ++k) {
        int64_t key = 0;
        if (!(s = r->GetI64(&key)).ok()) return s;
        keys.push_back(static_cast<JoinKey>(key));
      }
      tr->RestorePending(keys);
    }
    trackers_[static_cast<int>(id)] = std::move(tr);
  }
  uint64_t num_frozen = 0;
  if (!(s = r->GetU64(&num_frozen)).ok()) return s;
  for (uint64_t i = 0; i < num_frozen; ++i) {
    uint64_t id = 0;
    uint64_t num_keys = 0;
    if (!(s = r->GetU64(&id)).ok()) return s;
    if (!(s = r->GetU64(&num_keys)).ok()) return s;
    if (id >= static_cast<uint64_t>(num_ops)) {
      return Status::InvalidArgument(
          "frozen key set references a node outside the plan");
    }
    auto& set = frozen_keys_[static_cast<int>(id)];
    for (uint64_t k = 0; k < num_keys; ++k) {
      int64_t key = 0;
      if (!(s = r->GetI64(&key)).ok()) return s;
      set.insert(static_cast<JoinKey>(key));
    }
  }
  return Status::Ok();
}

std::unique_ptr<MigrationStrategy> MakeJiscStrategy(JiscOptions options) {
  return std::make_unique<JiscRuntime>(options);
}

}  // namespace jisc
