#ifndef JISC_CORE_MIGRATION_STRATEGY_H_
#define JISC_CORE_MIGRATION_STRATEGY_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "exec/operator.h"
#include "plan/logical_plan.h"
#include "types/tuple.h"

namespace jisc {

class Engine;

// Fluid migration (latency-bounded state carryover): instead of finishing
// all completion/carryover work inside the transition (or leaving it to
// on-demand probes alone), the migration backlog is split into bounded
// per-key batches the engine schedules between tuple waves. Each batch is
// capped both by a key count and by an output-delay budget measured in
// deterministic work units (never wall clock, so fluid runs stay
// byte-reproducible); when the budget is spent the scheduler yields back
// to tuple processing.
struct FluidOptions {
  enum class Mode {
    kAllAtOnce,  // classic behaviour: no batching, no scheduler
    kFluid,      // batched carryover between tuple waves
  };
  Mode mode = Mode::kAllAtOnce;
  // Maximum backlog items (keys, or snapshot key-groups) completed per
  // batch. 0 means unbounded ("infinity"), which — combined with kFluid —
  // still degenerates to the all-at-once code path: IsFluid() is false, so
  // no scheduler is ever constructed and no engine hook fires.
  uint64_t batch_keys = 64;
  // Per-batch output-delay budget. Converted to deterministic work units
  // via kFluidWorkUnitsPerUs (migration/fluid_scheduler.h); a batch always
  // completes at least one item, then stops as soon as the budget is spent.
  uint64_t delay_budget_us = 50;
  // Events between batches (1 = a batch before every admitted event).
  uint64_t batch_period = 1;

  bool IsFluid() const { return mode == Mode::kFluid && batch_keys != 0; }
};

// Plan-migration policy plugged into the Engine. Invoked after the engine
// has drained all operator queues through the old plan (the buffer-clearing
// phase of Section 4.1, shared by JISC and Moving State).
class MigrationStrategy {
 public:
  virtual ~MigrationStrategy() = default;

  virtual std::string name() const = 0;

  // Rebuilds the engine's executor for `new_plan`, carrying over / computing
  // states per the strategy's policy. The engine rewires sink, metrics and
  // handlers on the executor the strategy installs.
  virtual Status Migrate(Engine* engine, const LogicalPlan& new_plan) = 0;

  // The completion handler operators consult when probing incomplete states
  // (JISC only; others never run with incomplete states).
  virtual CompletionHandler* handler() { return nullptr; }

  // Periodic housekeeping (completion detection sweeps). Called by the
  // engine every `maintain_period` events.
  virtual void Maintain(Engine* engine) { (void)engine; }

  // Pre-admission hook, called before each arrival is processed.
  virtual void OnArrival(Engine* engine, const BaseTuple& base, Stamp stamp) {
    (void)engine;
    (void)base;
    (void)stamp;
  }

  // --- fluid migration (see FluidOptions) ---

  // Remaining migration backlog items (keys / key groups still to be
  // carried over or completed proactively). 0 means no fluid work pending;
  // the engine only calls RunFluidBatch while this is positive.
  virtual uint64_t FluidBacklog() { return 0; }

  // Runs one bounded batch of backlog work at event stamp `stamp` (the
  // stamp of the arrival about to be admitted, so batched completion uses
  // exactly the visibility an on-probe completion at this event would).
  virtual void RunFluidBatch(Engine* engine, Stamp stamp) {
    (void)engine;
    (void)stamp;
  }

  // --- mid-migration checkpoint support (fluid checkpoints) ---

  // True when the strategy can serialize its in-flight migration
  // bookkeeping (trackers, backlog ledger, scheduler) so a checkpoint
  // taken mid-fluid-batch can be restored and completed.
  virtual bool HasMigrationState() const { return false; }

  // Canonical bytes of the in-flight migration bookkeeping. Only called
  // when HasMigrationState() is true.
  virtual std::string SerializeMigrationState() const { return std::string(); }

  // Restores the bookkeeping serialized by SerializeMigrationState on a
  // freshly restored engine (states, clocks and completeness flags already
  // in place). Corrupted bytes must be rejected with InvalidArgument.
  virtual Status RestoreMigrationState(Engine* engine,
                                       const std::string& bytes) {
    (void)engine;
    (void)bytes;
    return Status::Unimplemented("strategy has no migration state");
  }
};

}  // namespace jisc

#endif  // JISC_CORE_MIGRATION_STRATEGY_H_
