#ifndef JISC_CORE_MIGRATION_STRATEGY_H_
#define JISC_CORE_MIGRATION_STRATEGY_H_

#include <string>

#include "common/status.h"
#include "exec/operator.h"
#include "plan/logical_plan.h"
#include "types/tuple.h"

namespace jisc {

class Engine;

// Plan-migration policy plugged into the Engine. Invoked after the engine
// has drained all operator queues through the old plan (the buffer-clearing
// phase of Section 4.1, shared by JISC and Moving State).
class MigrationStrategy {
 public:
  virtual ~MigrationStrategy() = default;

  virtual std::string name() const = 0;

  // Rebuilds the engine's executor for `new_plan`, carrying over / computing
  // states per the strategy's policy. The engine rewires sink, metrics and
  // handlers on the executor the strategy installs.
  virtual Status Migrate(Engine* engine, const LogicalPlan& new_plan) = 0;

  // The completion handler operators consult when probing incomplete states
  // (JISC only; others never run with incomplete states).
  virtual CompletionHandler* handler() { return nullptr; }

  // Periodic housekeeping (completion detection sweeps). Called by the
  // engine every `maintain_period` events.
  virtual void Maintain(Engine* engine) { (void)engine; }

  // Pre-admission hook, called before each arrival is processed.
  virtual void OnArrival(Engine* engine, const BaseTuple& base, Stamp stamp) {
    (void)engine;
    (void)base;
    (void)stamp;
  }
};

}  // namespace jisc

#endif  // JISC_CORE_MIGRATION_STRATEGY_H_
