#ifndef JISC_CORE_CHECKPOINT_H_
#define JISC_CORE_CHECKPOINT_H_

#include <memory>
#include <string>

#include "core/engine.h"

namespace jisc {

// Engine state checkpointing. A checkpoint captures the plan, window
// specification, event clocks, and every operator state's live entries;
// restoring it yields an engine whose future behaviour is
// tuple-for-tuple identical to the original's (same outputs, same expiry
// schedule).
//
// Checkpoints require quiescence: the engine must have no buffered
// arrivals and no incomplete states (i.e., not be mid-migration) — the
// transient JISC bookkeeping (freshness, completion trackers) is then
// empty by construction and need not be captured.
StatusOr<std::string> CheckpointEngine(Engine& engine);

// Rebuilds an engine from a checkpoint. `sink`, `strategy` and `options`
// are supplied fresh (they are behaviour, not state); `options.exec` must
// match the checkpointed query's predicate configuration. Metrics restart
// from zero.
StatusOr<std::unique_ptr<Engine>> RestoreEngine(
    const std::string& bytes, Sink* sink,
    std::unique_ptr<MigrationStrategy> strategy,
    Engine::Options options = Engine::Options());

// Checkpoint of an ingress-guarded engine (exec/ingress_guard.h): the
// guard's canonical bytes (dedup windows, reorder buffer, clock, stats)
// followed by the inner engine's checkpoint. The engine-side quiescence
// rules apply unchanged; the guard's reorder buffer may be NON-empty —
// tuples held there have not been admitted yet, so they are guard state,
// not engine state (this is exactly the checkpoint-mid-reorder case).
// The wrapped processor must be a single-threaded Engine.
StatusOr<std::string> CheckpointGuardedEngine(GuardedProcessor& guarded);

// Rebuilds the guarded engine: the guard resumes with its buffered tuples
// and dedup history intact, the engine exactly as RestoreEngine would.
// The restored guard's telemetry hookup follows options.obs (nullptr or
// telemetry-off = no gauge writes), on the coordinator track.
StatusOr<std::unique_ptr<GuardedProcessor>> RestoreGuardedEngine(
    const std::string& bytes, Sink* sink,
    std::unique_ptr<MigrationStrategy> strategy,
    Engine::Options options = Engine::Options());

}  // namespace jisc

#endif  // JISC_CORE_CHECKPOINT_H_
