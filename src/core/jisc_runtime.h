#ifndef JISC_CORE_JISC_RUNTIME_H_
#define JISC_CORE_JISC_RUNTIME_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/completion_tracker.h"
#include "core/engine.h"
#include "core/migration_strategy.h"

namespace jisc {

// Configuration of the JISC strategy.
struct JiscOptions {
  // When are missing entries computed?
  enum class CompletionMode {
    // Exactly when an incomplete state is probed for a value that has not
    // been completed there (sound refinement of Procedure 1; default).
    kOnProbe,
    // On the first post-transition receipt of each value, every incomplete
    // state is completed for it (the reading of Section 4.4 under which
    // "attempted => complete at all operators" holds).
    kOnFirstReceipt,
  };
  CompletionMode completion_mode = CompletionMode::kOnProbe;

  // How is full state completion detected?
  enum class DetectionMode {
    kCounter,             // Section 4.3 counters (plus window-turnover fallback)
    kWindowTurnoverOnly,  // only the Parallel-Track-style fallback (ablation)
  };
  DetectionMode detection = DetectionMode::kCounter;

  // Use the paper's literal Case 3 rule (complete when both children get
  // completed) instead of the deferred pending-set initialization.
  bool paper_case3 = false;

  // Use the paper's Procedure 3 (iterative spine walk) for left-deep plans
  // instead of the general recursive Procedure 2. Identical semantics.
  bool use_left_deep_procedure = true;
};

// Just-In-Time State Completion (Section 4): the paper's contribution.
//
// As a MigrationStrategy it performs the lazy migration of Section 4.1:
// states of the new plan that exist (and are complete, Section 4.5) in the
// old plan are carried over; the rest start empty and are completed on
// demand. As a CompletionHandler it implements Procedures 1-3: a probe into
// an incomplete state first materializes the probe value's entries,
// recursively, starting from the highest complete states below.
class JiscRuntime : public MigrationStrategy, public CompletionHandler {
 public:
  explicit JiscRuntime(JiscOptions options = JiscOptions());
  ~JiscRuntime() override;

  // --- MigrationStrategy ---
  std::string name() const override { return "jisc"; }
  Status Migrate(Engine* engine, const LogicalPlan& new_plan) override;
  CompletionHandler* handler() override { return this; }
  void Maintain(Engine* engine) override;
  void OnArrival(Engine* engine, const BaseTuple& base, Stamp stamp) override;

  // --- CompletionHandler ---
  void EnsureCompleted(const Tuple& probe, Operator* opposite,
                       ExecContext* ctx) override;
  bool RemovalMayStopAtIncomplete(const BaseTuple& base, const Operator* at,
                                  ExecContext* ctx) override;
  void CollectThetaMatches(const Tuple& probe, Operator* opposite,
                           ExecContext* ctx,
                           std::vector<Tuple>* out) override;

  // --- introspection (tests, benches) ---
  int num_incomplete() const { return static_cast<int>(trackers_.size()); }
  const CompletionTracker* tracker(int node_id) const;
  const JiscOptions& options() const { return options_; }

 private:
  // Procedure 2: recursive completion of `op`'s state for value v. `p` is
  // the probing stamp (entries are materialized as of strictly-before-p).
  void CompleteForKey(Operator* op, JoinKey v, Stamp p, Metrics* metrics);
  // Procedure 3: the left-deep specialization (iterative walk up the spine
  // from the highest complete state).
  void CompleteForKeyLeftDeep(Operator* op, JoinKey v, Stamp p,
                              Metrics* metrics);
  // Materializes v's entries at `op` from its (already completed) children.
  void MaterializeKey(Operator* op, JoinKey v, Stamp p, Metrics* metrics);
  // Theta states have no per-value buckets: complete them in full.
  void CompleteFull(Operator* op, Stamp p, Metrics* metrics);
  void MarkStateComplete(Operator* op);
  Stamp SinceStampFor(const Operator* op) const;
  // Window-turnover fallback: true when every pre-transition tuple below
  // `op` has expired.
  bool SubtreeTurnedOver(const Operator* op) const;

  JiscOptions options_;
  Engine* engine_ = nullptr;
  bool current_plan_left_deep_ = false;
  std::unordered_map<int, std::unique_ptr<CompletionTracker>> trackers_;
};

// Convenience factory for Engine construction.
std::unique_ptr<MigrationStrategy> MakeJiscStrategy(
    JiscOptions options = JiscOptions());

}  // namespace jisc

#endif  // JISC_CORE_JISC_RUNTIME_H_
