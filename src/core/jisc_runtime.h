#ifndef JISC_CORE_JISC_RUNTIME_H_
#define JISC_CORE_JISC_RUNTIME_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bytes.h"
#include "core/completion_tracker.h"
#include "core/engine.h"
#include "core/migration_strategy.h"

namespace jisc {

// Configuration of the JISC strategy.
struct JiscOptions {
  // When are missing entries computed?
  enum class CompletionMode {
    // Exactly when an incomplete state is probed for a value that has not
    // been completed there (sound refinement of Procedure 1; default).
    kOnProbe,
    // On the first post-transition receipt of each value, every incomplete
    // state is completed for it (the reading of Section 4.4 under which
    // "attempted => complete at all operators" holds).
    kOnFirstReceipt,
  };
  CompletionMode completion_mode = CompletionMode::kOnProbe;

  // How is full state completion detected?
  enum class DetectionMode {
    kCounter,             // Section 4.3 counters (plus window-turnover fallback)
    kWindowTurnoverOnly,  // only the Parallel-Track-style fallback (ablation)
  };
  DetectionMode detection = DetectionMode::kCounter;

  // Use the paper's literal Case 3 rule (complete when both children get
  // completed) instead of the deferred pending-set initialization.
  bool paper_case3 = false;

  // Use the paper's Procedure 3 (iterative spine walk) for left-deep plans
  // instead of the general recursive Procedure 2. Identical semantics.
  bool use_left_deep_procedure = true;

  // Charge completion work the way Moving State's eager materialization
  // does: successful inserts count as plain `inserts`, dedup suppressions
  // are silent, and the `completions` counter is untouched. Migrate()
  // additionally freezes each incomplete state's reference-child key set;
  // values outside it are marked completed without materialization (the
  // eager pass never saw them, so no pre-transition combinations exist).
  // This is the profile the fluid moving-state mode runs under, so a fluid
  // run reproduces the all-at-once eager counters byte-for-byte.
  bool eager_charging = false;

  // Reported strategy name ("" = "jisc"); the fluid moving-state adapter
  // keeps presenting as "moving-state".
  std::string display_name;
};

// Just-In-Time State Completion (Section 4): the paper's contribution.
//
// As a MigrationStrategy it performs the lazy migration of Section 4.1:
// states of the new plan that exist (and are complete, Section 4.5) in the
// old plan are carried over; the rest start empty and are completed on
// demand. As a CompletionHandler it implements Procedures 1-3: a probe into
// an incomplete state first materializes the probe value's entries,
// recursively, starting from the highest complete states below.
class JiscRuntime : public MigrationStrategy, public CompletionHandler {
 public:
  explicit JiscRuntime(JiscOptions options = JiscOptions());
  ~JiscRuntime() override;

  // --- MigrationStrategy ---
  std::string name() const override {
    return options_.display_name.empty() ? "jisc" : options_.display_name;
  }
  Status Migrate(Engine* engine, const LogicalPlan& new_plan) override;
  CompletionHandler* handler() override { return this; }
  void Maintain(Engine* engine) override;
  void OnArrival(Engine* engine, const BaseTuple& base, Stamp stamp) override;

  // --- CompletionHandler ---
  void EnsureCompleted(const Tuple& probe, Operator* opposite,
                       ExecContext* ctx) override;
  bool RemovalMayStopAtIncomplete(const BaseTuple& base, const Operator* at,
                                  ExecContext* ctx) override;
  void CollectThetaMatches(const Tuple& probe, Operator* opposite,
                           ExecContext* ctx,
                           std::vector<Tuple>* out) override;

  // --- introspection (tests, benches) ---
  int num_incomplete() const { return static_cast<int>(trackers_.size()); }
  const CompletionTracker* tracker(int node_id) const;
  const JiscOptions& options() const { return options_; }

  // --- fluid migration support (migration/fluid_scheduler.h) ---

  // Node ids of currently tracked (incomplete) states, sorted — children
  // before parents, the order backlogs are drained in.
  std::vector<int> IncompleteOpIds() const;

  // Proactively completes value `v` at node `op_id` (and, recursively, at
  // its incomplete children) at event stamp `p` — exactly the work an
  // on-probe completion for `v` at this state would do, with the same
  // counter charges. No-op when the state is complete or `v` already is.
  void CompleteKeyAt(Engine* engine, int op_id, JoinKey v, Stamp p);

  // Theta (kList) states have no per-value buckets: completes the whole
  // state in one step.
  void CompleteListAt(Engine* engine, int op_id, Stamp p);

  // --- mid-migration checkpoint support ---

  // Canonical bytes of the live completion bookkeeping: per-tracker
  // provenance (since stamp, boundary), pending sets, and the eager
  // profile's frozen reference-key sets.
  void SerializeCompletionState(ByteWriter* w) const;

  // Rebuilds trackers (and frozen sets) on a freshly restored engine whose
  // states, clocks and completeness flags are already in place.
  Status RestoreCompletionState(Engine* engine, ByteReader* r);

 private:
  // Procedure 2: recursive completion of `op`'s state for value v. `p` is
  // the probing stamp (entries are materialized as of strictly-before-p).
  void CompleteForKey(Operator* op, JoinKey v, Stamp p, Metrics* metrics);
  // Procedure 3: the left-deep specialization (iterative walk up the spine
  // from the highest complete state).
  void CompleteForKeyLeftDeep(Operator* op, JoinKey v, Stamp p,
                              Metrics* metrics);
  // Materializes v's entries at `op` from its (already completed) children.
  void MaterializeKey(Operator* op, JoinKey v, Stamp p, Metrics* metrics);
  // eager_charging flavor: Moving State's counter profile, frozen-set skip.
  void MaterializeKeyEager(Operator* op, JoinKey v, Stamp p, Metrics* metrics);
  // eager_charging only: freezes, per incomplete state, the key set the
  // eager pass would have materialized (bottom-up prediction).
  void FreezeEagerKeySets(PipelineExecutor* exec, const LogicalPlan& plan);
  // Theta states have no per-value buckets: complete them in full.
  void CompleteFull(Operator* op, Stamp p, Metrics* metrics);
  void MarkStateComplete(Operator* op);
  Stamp SinceStampFor(const Operator* op) const;
  // Window-turnover fallback: true when every pre-transition tuple below
  // `op` has expired.
  bool SubtreeTurnedOver(const Operator* op) const;

  JiscOptions options_;
  Engine* engine_ = nullptr;
  bool current_plan_left_deep_ = false;
  std::unordered_map<int, std::unique_ptr<CompletionTracker>> trackers_;
  // eager_charging only: per tracked node, the reference-child key set
  // frozen at Migrate() (the values Moving State's eager pass would have
  // materialized). Values outside it complete without work or charges.
  std::unordered_map<int, std::unordered_set<JoinKey, I64Hash>> frozen_keys_;
};

// Convenience factory for Engine construction.
std::unique_ptr<MigrationStrategy> MakeJiscStrategy(
    JiscOptions options = JiscOptions());

}  // namespace jisc

#endif  // JISC_CORE_JISC_RUNTIME_H_
