#include "core/completion_tracker.h"

#include <algorithm>

#include "common/logging.h"

namespace jisc {

CompletionTracker::CompletionTracker(Operator* op, Stamp since_stamp,
                                     Seq boundary_seq, bool paper_case3)
    : op_(op),
      since_stamp_(since_stamp),
      boundary_seq_(boundary_seq),
      paper_case3_(paper_case3) {
  JISC_CHECK(op_->kind() != OpKind::kScan);
  const Operator* left = op_->left();
  const Operator* right = op_->right();
  bool lc = left->state().complete();
  bool rc = right->state().complete();
  if (lc && rc) {
    init_case_ = InitCase::kBothComplete;
    // Paper Case 1: the smaller of the two children's distinct value counts.
    // Only the choice of reference child is made here; the value set is
    // snapshotted lazily by the first SweepExpired (see header).
    reference_child_ = left->state().DistinctLiveKeys() <=
                               right->state().DistinctLiveKeys()
                           ? left
                           : right;
  } else if (lc || rc) {
    init_case_ = InitCase::kOneComplete;
    // Paper Case 2: the complete child's distinct values.
    reference_child_ = lc ? left : right;
  } else {
    init_case_ = InitCase::kNoneComplete;
    // Deferred until both children are complete (ResolveDeferred).
  }
}

void CompletionTracker::InitPendingFrom(const Operator* reference_child) {
  reference_child_ = reference_child;
  pending_.clear();
  for (JoinKey v : reference_child->state().LiveKeys()) {
    // Values already completed at this state (carried over from an earlier
    // overlapped transition) need no further work.
    if (!op_->state().IsKeyCompleted(v)) pending_.insert(v);
  }
  initialized_ = true;
}

void CompletionTracker::SweepExpired() {
  if (reference_child_ == nullptr) return;
  if (!initialized_) {
    InitPendingFrom(reference_child_);
    return;
  }
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (!reference_child_->state().ContainsKeyLive(*it)) {
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

void CompletionTracker::ResolveDeferred() {
  if (initialized_ || paper_case3_done_) return;
  const Operator* left = op_->left();
  const Operator* right = op_->right();
  if (!left->state().complete() || !right->state().complete()) return;
  if (paper_case3_) {
    // Paper Section 4.3, Case 3: "JISC detects that a state is complete
    // whenever the states of both its right and left operators get
    // completed."
    paper_case3_done_ = true;
    return;
  }
  InitPendingFrom(left->state().DistinctLiveKeys() <=
                          right->state().DistinctLiveKeys()
                      ? left
                      : right);
}

bool CompletionTracker::Done() const {
  if (paper_case3_done_) return true;
  return initialized_ && pending_.empty();
}

std::vector<JoinKey> CompletionTracker::PendingKeysSorted() const {
  std::vector<JoinKey> keys(pending_.begin(), pending_.end());
  std::sort(keys.begin(), keys.end());
  return keys;
}

void CompletionTracker::RestorePending(const std::vector<JoinKey>& keys) {
  pending_.clear();
  pending_.insert(keys.begin(), keys.end());
  initialized_ = true;
}

}  // namespace jisc
