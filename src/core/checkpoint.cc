#include "core/checkpoint.h"

#include <vector>

#include "common/bytes.h"
#include "plan/plan_text.h"

namespace jisc {

namespace {
constexpr uint64_t kMagic = 0x4a49534343505431ULL;    // "JISCCPT1"
// Mid-migration (fluid) checkpoint: adds per-state completeness flags,
// completed-value sets, and the strategy's migration-state blob. Emitted
// only when at least one state is incomplete, so quiesced checkpoints stay
// byte-identical to the v1 format.
constexpr uint64_t kMagicV2 = 0x4a49534343505432ULL;  // "JISCCPT2"
constexpr uint64_t kGuardMagic = 0x4a49534347524431ULL;  // "JISCGRD1"
}  // namespace

StatusOr<std::string> CheckpointEngine(Engine& engine) {
  if (engine.buffered() != 0) {
    return Status::FailedPrecondition(
        "checkpoint requires an empty arrival buffer (call Drain first)");
  }
  PipelineExecutor& exec = engine.executor();
  bool mid_migration = false;
  for (int id = 0; id < exec.num_ops(); ++id) {
    if (!exec.op(id)->state().complete()) {
      mid_migration = true;
      break;
    }
  }
  if (mid_migration && !engine.strategy().HasMigrationState()) {
    // The installed strategy cannot serialize its completion bookkeeping,
    // so a restore could never finish the migration.
    return Status::FailedPrecondition(
        "checkpoint requires all states complete (migration in flight)");
  }

  ByteWriter w;
  w.PutU64(mid_migration ? kMagicV2 : kMagic);
  w.PutString(engine.plan().ToString());
  const WindowSpec& windows = engine.windows();
  w.PutU64(windows.time_based() ? 1 : 0);
  w.PutU64(static_cast<uint64_t>(windows.num_streams()));
  for (int s = 0; s < windows.num_streams(); ++s) {
    w.PutU64(windows.SizeFor(static_cast<StreamId>(s)));
  }
  w.PutU64(engine.next_stamp());
  w.PutU64(engine.max_seq_seen());

  w.PutU64(static_cast<uint64_t>(exec.num_ops()));
  for (int id = 0; id < exec.num_ops(); ++id) {
    const OperatorState& st = exec.op(id)->state();
    w.PutU64(st.id().bits());
    if (mid_migration) {
      w.PutU64(st.complete() ? 0 : 1);
      if (!st.complete()) {
        std::vector<JoinKey> keys = st.CompletedKeysSorted();
        w.PutU64(keys.size());
        for (JoinKey k : keys) w.PutI64(k);
      }
    }
    w.PutU64(st.live_size());
    st.ForEachLiveEntryCanonical([&](const Tuple& t, Stamp insert_stamp) {
      w.PutU64(insert_stamp);
      w.PutU64(t.parts().size());
      for (const BaseTuple& p : t.parts()) {
        w.PutU64(p.stream);
        w.PutI64(p.key);
        w.PutI64(p.payload);
        w.PutU64(p.seq);
        w.PutU64(p.ts);
      }
    });
  }
  if (mid_migration) {
    w.PutString(engine.strategy().SerializeMigrationState());
  }
  return w.Take();
}

StatusOr<std::unique_ptr<Engine>> RestoreEngine(
    const std::string& bytes, Sink* sink,
    std::unique_ptr<MigrationStrategy> strategy, Engine::Options options) {
  ByteReader r(bytes);
  uint64_t magic = 0;
  Status s = r.GetU64(&magic);
  if (!s.ok()) return s;
  if (magic != kMagic && magic != kMagicV2) {
    return Status::InvalidArgument("not a JISC checkpoint");
  }
  const bool mid_migration = magic == kMagicV2;
  std::string plan_text;
  s = r.GetString(&plan_text);
  if (!s.ok()) return s;
  auto plan = ParsePlan(plan_text);
  if (!plan.ok()) return plan.status();

  uint64_t time_based = 0;
  s = r.GetU64(&time_based);
  if (!s.ok()) return s;
  uint64_t num_streams = 0;
  s = r.GetU64(&num_streams);
  if (!s.ok()) return s;
  if (num_streams == 0 || num_streams > kMaxStreams) {
    return Status::InvalidArgument("corrupt window section");
  }
  std::vector<uint64_t> sizes(num_streams);
  for (uint64_t i = 0; i < num_streams; ++i) {
    s = r.GetU64(&sizes[i]);
    if (!s.ok()) return s;
    if (sizes[i] == 0) return Status::InvalidArgument("zero window size");
  }
  WindowSpec windows = time_based != 0
                           ? WindowSpec::PerStreamTime(std::move(sizes))
                           : WindowSpec::PerStream(std::move(sizes));

  uint64_t next_stamp = 0;
  uint64_t max_seq = 0;
  s = r.GetU64(&next_stamp);
  if (!s.ok()) return s;
  s = r.GetU64(&max_seq);
  if (!s.ok()) return s;

  uint64_t num_ops = 0;
  s = r.GetU64(&num_ops);
  if (!s.ok()) return s;
  if (static_cast<int>(num_ops) != plan.value().num_nodes()) {
    return Status::InvalidArgument("state section does not match the plan");
  }

  StatePool pool;
  for (uint64_t i = 0; i < num_ops; ++i) {
    uint64_t bits = 0;
    s = r.GetU64(&bits);
    if (!s.ok()) return s;
    const PlanNode& node = plan.value().node(static_cast<int>(i));
    if (node.streams.bits() != bits) {
      return Status::InvalidArgument("state identity mismatch");
    }
    StateIndex index = node.kind == OpKind::kNljJoin ? StateIndex::kList
                                                     : StateIndex::kHash;
    auto st = std::make_unique<OperatorState>(node.streams, index);
    bool incomplete = false;
    std::vector<JoinKey> completed_keys;
    if (mid_migration) {
      uint64_t flag = 0;
      s = r.GetU64(&flag);
      if (!s.ok()) return s;
      if (flag > 1) {
        return Status::InvalidArgument("corrupt completeness flag");
      }
      incomplete = flag == 1;
      if (incomplete && node.kind == OpKind::kScan) {
        return Status::InvalidArgument("scan state marked incomplete");
      }
      if (incomplete) {
        uint64_t num_keys = 0;
        s = r.GetU64(&num_keys);
        if (!s.ok()) return s;
        completed_keys.reserve(num_keys);
        for (uint64_t k = 0; k < num_keys; ++k) {
          int64_t key = 0;
          s = r.GetI64(&key);
          if (!s.ok()) return s;
          completed_keys.push_back(static_cast<JoinKey>(key));
        }
      }
    }
    uint64_t entries = 0;
    s = r.GetU64(&entries);
    if (!s.ok()) return s;
    for (uint64_t e = 0; e < entries; ++e) {
      uint64_t insert_stamp = 0;
      s = r.GetU64(&insert_stamp);
      if (!s.ok()) return s;
      uint64_t parts = 0;
      s = r.GetU64(&parts);
      if (!s.ok()) return s;
      if (parts == 0 || parts > static_cast<uint64_t>(kMaxStreams)) {
        return Status::InvalidArgument("corrupt combination");
      }
      std::vector<BaseTuple> bases(parts);
      for (uint64_t pi = 0; pi < parts; ++pi) {
        uint64_t stream = 0;
        s = r.GetU64(&stream);
        if (!s.ok()) return s;
        if (stream >= static_cast<uint64_t>(kMaxStreams)) {
          return Status::InvalidArgument("corrupt stream id");
        }
        bases[pi].stream = static_cast<StreamId>(stream);
        s = r.GetI64(&bases[pi].key);
        if (!s.ok()) return s;
        s = r.GetI64(&bases[pi].payload);
        if (!s.ok()) return s;
        s = r.GetU64(&bases[pi].seq);
        if (!s.ok()) return s;
        s = r.GetU64(&bases[pi].ts);
        if (!s.ok()) return s;
      }
      st->Insert(Tuple::FromParts(std::move(bases), insert_stamp),
                 insert_stamp);
    }
    if (incomplete) {
      st->MarkIncomplete();
      for (JoinKey k : completed_keys) st->MarkKeyCompleted(k);
    }
    pool.Put(std::move(st));
  }
  std::string migration_blob;
  if (mid_migration) {
    s = r.GetString(&migration_blob);
    if (!s.ok()) return s;
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after checkpoint");
  }

  auto engine = std::make_unique<Engine>(plan.value(), windows, sink,
                                         std::move(strategy), options);
  auto exec = std::make_unique<PipelineExecutor>(plan.value(), windows,
                                                 options.exec, &pool);
  engine->ReplaceExecutor(std::move(exec));
  engine->RestoreClocks(next_stamp, max_seq);
  if (mid_migration) {
    s = engine->strategy().RestoreMigrationState(engine.get(),
                                                 migration_blob);
    if (!s.ok()) return s;
  }
  return engine;
}

StatusOr<std::string> CheckpointGuardedEngine(GuardedProcessor& guarded) {
  auto* engine = dynamic_cast<Engine*>(guarded.inner());
  if (engine == nullptr) {
    return Status::FailedPrecondition(
        "guarded checkpoint requires a single-threaded Engine inside the "
        "guard");
  }
  auto inner = CheckpointEngine(*engine);
  if (!inner.ok()) return inner.status();
  ByteWriter guard_bytes;
  guarded.guard().SerializeCanonical(&guard_bytes);
  ByteWriter w;
  w.PutU64(kGuardMagic);
  w.PutString(guard_bytes.Take());
  w.PutString(inner.value());
  return w.Take();
}

StatusOr<std::unique_ptr<GuardedProcessor>> RestoreGuardedEngine(
    const std::string& bytes, Sink* sink,
    std::unique_ptr<MigrationStrategy> strategy, Engine::Options options) {
  ByteReader r(bytes);
  uint64_t magic = 0;
  Status s = r.GetU64(&magic);
  if (!s.ok()) return s;
  if (magic != kGuardMagic) {
    return Status::InvalidArgument("not a guarded JISC checkpoint");
  }
  std::string guard_bytes;
  s = r.GetString(&guard_bytes);
  if (!s.ok()) return s;
  std::string engine_bytes;
  s = r.GetString(&engine_bytes);
  if (!s.ok()) return s;
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after guarded checkpoint");
  }

  TelemetryRegistry* telemetry =
      options.obs != nullptr ? options.obs->telemetry.get() : nullptr;
  ByteReader guard_reader(guard_bytes);
  auto guard = IngressGuard::DeserializeCanonical(&guard_reader, telemetry,
                                                  /*track=*/0);
  if (!guard.ok()) return guard.status();
  if (!guard_reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after guard state");
  }

  auto engine = RestoreEngine(engine_bytes, sink, std::move(strategy),
                              options);
  if (!engine.ok()) return engine.status();
  return std::make_unique<GuardedProcessor>(std::move(engine).value(),
                                            std::move(guard).value());
}

}  // namespace jisc
