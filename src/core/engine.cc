#include "core/engine.h"

#include <algorithm>

#include "common/logging.h"
#include "exec/validate.h"
#include "obs/observability.h"
#include "obs/trace.h"

namespace jisc {

namespace {

// The telemetry registry when both observability and its telemetry option
// are on; nullptr otherwise, so every gauge site below stays one pointer
// test on the disabled path.
inline TelemetryRegistry* TelemetryOf(const Engine::Options& options) {
  return options.obs != nullptr ? options.obs->telemetry.get() : nullptr;
}

}  // namespace

Engine::Engine(const LogicalPlan& plan, const WindowSpec& windows, Sink* sink,
               std::unique_ptr<MigrationStrategy> strategy)
    : Engine(plan, windows, sink, std::move(strategy), Options()) {}

Engine::Engine(const LogicalPlan& plan, const WindowSpec& windows, Sink* sink,
               std::unique_ptr<MigrationStrategy> strategy, Options options)
    : windows_(windows),
      options_(options),
      sink_(sink),
      strategy_(std::move(strategy)),
      freshness_(windows.num_streams()) {
  JISC_CHECK(strategy_ != nullptr);
  JISC_CHECK(plan.streams().size() <= windows_.num_streams());
  exec_ = std::make_unique<PipelineExecutor>(plan, windows_, options_.exec);
  WireExecutor();
}

uint64_t Engine::StateMemory() const { return StateMemoryBytes(*exec_); }

void Engine::WireExecutor() {
  if (options_.obs != nullptr) {
    obs_sink_.Wire(sink_, options_.obs);
    exec_->SetSink(&obs_sink_);
    exec_->SetObservability(options_.obs, options_.obs_track);
    if (TelemetryRegistry* telemetry = TelemetryOf(options_)) {
      telemetry->RegisterTracks(options_.obs_track + 1);
    }
  } else {
    exec_->SetSink(sink_);
  }
  exec_->SetMetrics(&metrics_);
  exec_->SetFreshness(options_.track_freshness ? &freshness_ : nullptr);
  exec_->SetCompletionHandler(strategy_->handler());
}

void Engine::Push(const BaseTuple& tuple) {
  if (!buffer_.empty()) Drain();
  if (TelemetryRegistry* telemetry = TelemetryOf(options_)) {
    // The coordinator owns the input gauges; a shard engine's arrivals were
    // already counted by the ParallelExecutor front-end that routed them.
    if (options_.obs_track == 0) telemetry->OnInput(tuple.seq);
  }
  Admit(tuple);
  if (++events_since_maintain_ >= options_.maintain_period) {
    events_since_maintain_ = 0;
    strategy_->Maintain(this);
    RefreshStateMemoryGauge();
  }
}

void Engine::BeginObsEvent() {
  if (options_.obs == nullptr) return;
  if (pending_transition_ns_ != 0) {
    obs_sink_.BeginEventAt(pending_transition_ns_);
    pending_transition_ns_ = 0;
  } else {
    obs_sink_.BeginEvent();
  }
}

void Engine::MaybeRunFluidBatch(Stamp stamp) {
  if (!options_.fluid.IsFluid()) return;
  if (++events_since_fluid_ < options_.fluid.batch_period) return;
  events_since_fluid_ = 0;
  if (strategy_->FluidBacklog() == 0) return;
  strategy_->RunFluidBatch(this, stamp);
  if (TelemetryRegistry* telemetry = TelemetryOf(options_)) {
    telemetry->SetMigrationBacklog(options_.obs_track,
                                   strategy_->FluidBacklog());
  }
}

void Engine::Admit(const BaseTuple& tuple) {
  BeginObsEvent();
  Stamp stamp = AllocateStamp();
  max_seq_seen_ = std::max(max_seq_seen_, tuple.seq);
  MaybeRunFluidBatch(stamp);
  strategy_->OnArrival(this, tuple, stamp);
  exec_->PushArrival(tuple, stamp);
  exec_->RunUntilIdle();
  if (TelemetryRegistry* telemetry = TelemetryOf(options_)) {
    telemetry->OnEventProcessed(options_.obs_track, tuple.seq);
  }
}

void Engine::PushExpiry(const BaseTuple& tuple) {
  if (!buffer_.empty()) Drain();
  // One external event, like an arrival: the removal cascade runs to
  // quiescence under its own stamp. Counted toward the maintain cadence so
  // sharded JISC engines still sweep completion detection under expiry-
  // heavy phases.
  BeginObsEvent();
  Stamp stamp = AllocateStamp();
  MaybeRunFluidBatch(stamp);
  exec_->PushExpiry(tuple, stamp);
  exec_->RunUntilIdle();
  if (TelemetryRegistry* telemetry = TelemetryOf(options_)) {
    // Expiries count as progress: an expiry-heavy shard is busy, not
    // stalled, and must not trip the stall watchdog.
    telemetry->OnEventProcessed(options_.obs_track, tuple.seq);
  }
  if (++events_since_maintain_ >= options_.maintain_period) {
    events_since_maintain_ = 0;
    strategy_->Maintain(this);
    RefreshStateMemoryGauge();
  }
}

void Engine::RefreshStateMemoryGauge() {
  if (TelemetryRegistry* telemetry = TelemetryOf(options_)) {
    telemetry->SetStateMemoryBytes(options_.obs_track,
                                   ApproxStateMemoryBytes(*exec_));
  }
}

void Engine::PushNoDrain(const BaseTuple& tuple) {
  if (options_.max_buffered_arrivals > 0 &&
      buffer_.size() >= options_.max_buffered_arrivals) {
    ++shed_tuples_;  // drop-newest load shedding
    return;
  }
  buffer_.push_back(tuple);
}

void Engine::Drain() {
  while (!buffer_.empty()) {
    BaseTuple t = buffer_.front();
    buffer_.pop_front();
    Admit(t);
  }
}

Status Engine::RequestTransition(const LogicalPlan& new_plan) {
  Status valid = new_plan.Validate();
  if (!valid.ok()) return valid;
  if (!(new_plan.streams() == plan().streams())) {
    return Status::InvalidArgument(
        "new plan must cover the same streams as the old plan");
  }
  // Section 4.1 (safe plan transition): all tuples received before the
  // transition are processed through the old plan first (buffer clearing).
  Observability* obs = options_.obs;
  TraceScope transition(obs ? &obs->trace : nullptr, "transition",
                        "migration", options_.obs_track);
  transition.SetArg("buffered", buffer_.size());
  {
    TraceScope drain(obs ? &obs->trace : nullptr, "drain", "migration",
                     options_.obs_track);
    Drain();
  }
  freshness_.BumpGeneration();
  ++transitions_;
  // Charge the transition's own duration to the first post-transition
  // event: its outputs are delayed by exactly this stall.
  uint64_t t_request = obs != nullptr ? obs->trace.NowNs() : 0;
  Status s = strategy_->Migrate(this, new_plan);
  if (!s.ok()) return s;
  if (obs != nullptr) pending_transition_ns_ = t_request;
  if (TelemetryRegistry* telemetry = TelemetryOf(options_)) {
    telemetry->SetMigrationBacklog(options_.obs_track,
                                   strategy_->FluidBacklog());
  }
  // The strategy installed the successor executor via ReplaceExecutor.
  return Status::Ok();
}

void Engine::ReplaceExecutor(std::unique_ptr<PipelineExecutor> exec) {
  JISC_CHECK(exec != nullptr);
  exec_ = std::move(exec);
  WireExecutor();
}

}  // namespace jisc
