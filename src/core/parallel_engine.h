#ifndef JISC_CORE_PARALLEL_ENGINE_H_
#define JISC_CORE_PARALLEL_ENGINE_H_

#include <functional>
#include <memory>

#include "core/engine.h"
#include "core/migration_strategy.h"
#include "exec/parallel_executor.h"

namespace jisc {

// Builds one migration strategy instance. The sharded path needs a fresh
// strategy per shard (a strategy holds per-engine state), hence a factory
// rather than a single instance.
using StrategyFactory = std::function<std::unique_ptr<MigrationStrategy>()>;

// The one entry point that routes between the two execution paths:
//
//  * options.parallelism <= 1: a plain single-threaded Engine — the default
//    and the equivalence oracle;
//  * options.parallelism  > 1: a ParallelExecutor over `parallelism`
//    hash-partitioned shards, each an Engine in external-expiry mode with
//    its own strategy instance, all delivering into `sink` through a
//    serializing adapter.
//
// The sharded path requires a shardable plan (every stateful operator
// matches on join-key equality; no theta/NLJ joins).
//
// Threading contract: the returned processor's public surface must be
// driven by one coordinator thread — the sharded path's entry points are
// marked JISC_COORDINATOR_ONLY on ParallelExecutor (see
// src/common/thread_annotations.h and DESIGN.md "Threading model &
// capability map"); only ParallelExecutor::MetricsApprox() may be called
// from other threads.
std::unique_ptr<StreamProcessor> MakeEngineProcessor(
    const LogicalPlan& plan, const WindowSpec& windows, Sink* sink,
    StrategyFactory strategy_factory, Engine::Options options,
    ParallelExecutor::Options parallel_options = ParallelExecutor::Options());

}  // namespace jisc

#endif  // JISC_CORE_PARALLEL_ENGINE_H_
