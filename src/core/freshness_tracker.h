#ifndef JISC_CORE_FRESHNESS_TRACKER_H_
#define JISC_CORE_FRESHNESS_TRACKER_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "types/tuple.h"

namespace jisc {

// Implements Definition 2 of the paper: after a plan transition, the first
// tuple of a stream carrying a given join-attribute value is *fresh*; later
// tuples with that (stream, value) are *attempted*. Fresh tuples trigger
// on-demand state completion; attempted tuples are guaranteed to find
// already-completed entries and skip it (Section 4.4).
//
// Backed by a per-stream map value -> generation of the last transition in
// which the value was attempted. The paper instead probes the stream's hash
// table with the last-transition timestamp; the explicit map is equivalent
// and remains correct when the earlier tuple has already expired from the
// window (see DESIGN.md, divergence 1).
class FreshnessTracker {
 public:
  explicit FreshnessTracker(int num_streams)
      : attempted_(static_cast<size_t>(num_streams)) {}

  // A new plan transition happened; every value becomes fresh again.
  void BumpGeneration() { ++generation_; }

  uint64_t generation() const { return generation_; }

  // Returns whether a tuple with `key` arriving on `stream` is fresh, and
  // marks the value attempted for the current generation.
  bool ClassifyAndMark(StreamId stream, JoinKey key) {
    auto& map = attempted_[stream];
    auto [it, inserted] = map.try_emplace(key, generation_);
    if (inserted) return true;
    bool fresh = it->second < generation_;
    it->second = generation_;
    return fresh;
  }

  // Non-mutating query: is the value still fresh on this stream? Used by
  // the sliding-window optimization of Section 4.4 (removals of attempted
  // values may stop at an incomplete state on no-match).
  bool IsFresh(StreamId stream, JoinKey key) const {
    const auto& map = attempted_[stream];
    auto it = map.find(key);
    return it == map.end() || it->second < generation_;
  }

 private:
  uint64_t generation_ = 0;
  std::vector<std::unordered_map<JoinKey, uint64_t, I64Hash>> attempted_;
};

}  // namespace jisc

#endif  // JISC_CORE_FRESHNESS_TRACKER_H_
