#ifndef JISC_CORE_ENGINE_H_
#define JISC_CORE_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "core/freshness_tracker.h"
#include "core/migration_strategy.h"
#include "exec/ingress_guard.h"
#include "exec/pipeline_executor.h"
#include "exec/stream_processor.h"

namespace jisc {

// The pipelined continuous-query engine: one live plan, event-driven
// execution, and pluggable plan migration (Moving State or JISC; the
// Parallel Track strategy runs several plans and has its own processor).
//
// Event model: every Push is one external event. The arrival is enqueued at
// its stream's scan and the cascade (including window expiry) is processed
// to quiescence before the call returns, so queues are empty between
// events. PushNoDrain/Drain expose the buffered mode used to exercise the
// Section 4.1 queue-clearing phase explicitly.
class Engine : public StreamProcessor {
 public:
  struct Options {
    PipelineExecutor::Options exec;
    // Events between strategy Maintain() sweeps (completion detection).
    uint64_t maintain_period = 256;
    // Track Definition-2 freshness per arrival. Disabling it yields the
    // plain symmetric-hash-join pipeline the paper compares against in
    // Fig. 9a (transitions then require a strategy that does not rely on
    // freshness, e.g. Moving State).
    bool track_freshness = true;
    // Load shedding (Section 2.1 treats it as orthogonal; this is the
    // standard drop-newest policy): when the buffered-arrival queue exceeds
    // this bound, PushNoDrain drops the arrival and counts it. 0 = never.
    size_t max_buffered_arrivals = 0;
    // Number of hash-partitioned worker shards. The Engine itself is always
    // single-threaded; MakeEngineProcessor (core/parallel_engine.h) reads
    // this knob and routes through the sharded ParallelExecutor when it is
    // greater than one, with single-shard engines as the building block and
    // the single-threaded path (parallelism <= 1) as the default and the
    // equivalence oracle.
    int parallelism = 1;
    // Observability bundle (latency histograms + migration trace). nullptr
    // (the default) keeps every clock read and histogram update out of the
    // hot path; see obs/observability.h. obs_track labels this engine's
    // trace spans (0 = single-threaded/coordinator, shard + 1 for shard
    // engines under the parallel executor).
    Observability* obs = nullptr;
    int obs_track = 0;
    // Opt-in ingress resilience stage (exec/ingress_guard.h): when enabled,
    // MakeEngineProcessor wraps the built processor in a GuardedProcessor
    // that dedups and re-orders the feed before admission. Disabled (the
    // default) adds no wrapper and no branch — the Engine itself never
    // reads this field.
    IngressGuard::Options ingress;
    // Fluid migration (core/migration_strategy.h): when IsFluid() and the
    // installed strategy reports a post-transition backlog, the engine runs
    // one bounded completion batch between events (inside Admit, before the
    // arrival is processed, so the batch cost lands in that event's output
    // delay). All-at-once (the default) never takes the branch.
    FluidOptions fluid;
  };

  Engine(const LogicalPlan& plan, const WindowSpec& windows, Sink* sink,
         std::unique_ptr<MigrationStrategy> strategy, Options options);
  Engine(const LogicalPlan& plan, const WindowSpec& windows, Sink* sink,
         std::unique_ptr<MigrationStrategy> strategy);

  // --- StreamProcessor ---
  std::string name() const override { return strategy_->name(); }
  void Push(const BaseTuple& tuple) override;
  // External-expiry mode only (exec.external_expiry): one expiry event,
  // processed to quiescence like an arrival.
  void PushExpiry(const BaseTuple& tuple) override;
  Status RequestTransition(const LogicalPlan& new_plan) override;
  const Metrics& metrics() const override { return metrics_; }
  uint64_t StateMemory() const override;

  // Buffered admission: appends to the engine's arrival queue without
  // processing; Drain() admits the buffered events one at a time (each
  // cascade runs to quiescence before the next event) through the current
  // plan -- the input-queue model of Section 2.1 / 4.1.
  void PushNoDrain(const BaseTuple& tuple);
  void Drain();
  size_t buffered() const { return buffer_.size(); }

  // --- accessors ---
  PipelineExecutor& executor() { return *exec_; }
  const LogicalPlan& plan() const { return exec_->plan(); }
  const WindowSpec& windows() const { return windows_; }
  const PipelineExecutor::Options& exec_options() const {
    return options_.exec;
  }
  Metrics& mutable_metrics() { return metrics_; }
  FreshnessTracker& freshness() { return freshness_; }
  MigrationStrategy& strategy() { return *strategy_; }
  Observability* obs() { return options_.obs; }
  int obs_track() const { return options_.obs_track; }
  // The user-facing sink (never the internal OutputDelaySink wrapper).
  Sink* sink() { return sink_; }
  Seq max_seq_seen() const { return max_seq_seen_; }
  uint64_t transitions() const { return transitions_; }
  uint64_t shed_tuples() const { return shed_tuples_; }

  // --- strategy support ---
  // Installs a successor executor (built by the strategy) and rewires the
  // sink/metrics/handler/freshness environment on it.
  void ReplaceExecutor(std::unique_ptr<PipelineExecutor> exec);
  // Allocates the next global event stamp (the transition itself consumes
  // one, so completion-materialized entries sort before later arrivals).
  Stamp AllocateStamp() { return next_stamp_++; }
  Stamp next_stamp() const { return next_stamp_; }
  // Checkpoint-restore support: resets the event clocks so a restored
  // engine continues exactly where the checkpointed one stopped.
  void RestoreClocks(Stamp next_stamp, Seq max_seq) {
    next_stamp_ = next_stamp;
    max_seq_seen_ = max_seq;
  }

 private:
  void WireExecutor();
  // Admits one event and processes its cascade to quiescence.
  void Admit(const BaseTuple& tuple);
  // Marks the event's admission on the output-delay sink; the first event
  // after a transition is backdated to the transition request, charging the
  // stall to its outputs.
  void BeginObsEvent();
  // Runs one fluid completion batch if due (options_.fluid cadence) and the
  // strategy has backlog; refreshes the migration-backlog gauge.
  void MaybeRunFluidBatch(Stamp stamp);
  // Updates this track's telemetry state-memory gauge (no-op when telemetry
  // is off). Called on the maintain cadence, not per event: the estimate is
  // O(num_ops) and a gauge only needs sampling-rate freshness.
  void RefreshStateMemoryGauge();

  WindowSpec windows_;
  Options options_;
  Sink* sink_;
  // Interposed between the executor and sink_ when options_.obs is set:
  // stamps each output with its delay since event admission.
  OutputDelaySink obs_sink_;
  std::unique_ptr<MigrationStrategy> strategy_;
  Metrics metrics_;
  FreshnessTracker freshness_;
  std::unique_ptr<PipelineExecutor> exec_;
  std::deque<BaseTuple> buffer_;
  Stamp next_stamp_ = 1;
  Seq max_seq_seen_ = 0;
  uint64_t transitions_ = 0;
  uint64_t shed_tuples_ = 0;
  uint64_t events_since_maintain_ = 0;
  uint64_t events_since_fluid_ = 0;
  // Trace-clock reading taken when a transition was requested; consumed by
  // the next BeginObsEvent. 0 = none pending.
  uint64_t pending_transition_ns_ = 0;
};

}  // namespace jisc

#endif  // JISC_CORE_ENGINE_H_
