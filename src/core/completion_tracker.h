#ifndef JISC_CORE_COMPLETION_TRACKER_H_
#define JISC_CORE_COMPLETION_TRACKER_H_

#include <cstddef>
#include <unordered_set>
#include <vector>

#include "common/hash.h"
#include "exec/operator.h"
#include "types/tuple.h"

namespace jisc {

// State-completion detection for one incomplete state (Section 4.3).
//
// The paper keeps an integer counter initialized from the number of distinct
// join-attribute values in a child state (Cases 1-3) and decrements it as
// values are completed. We track the actual pending-value set so the counter
// stays exact when values expire from the window before ever being attempted
// (DESIGN.md divergence 2); Done() corresponds to the paper's counter
// reaching zero.
//
// Case 3 (both children incomplete) is deferred: once both children have
// become complete, the pending set is initialized from the then-current
// child keys. (The paper instead declares the state complete as soon as
// both children are; see DESIGN.md divergence 5. That rule is available as
// `paper_case3`.)
class CompletionTracker {
 public:
  enum class InitCase { kBothComplete, kOneComplete, kNoneComplete };

  // `since_stamp`: stamp of the transition that made the state incomplete
  // (completion-materialized entries are inserted at this stamp).
  // `boundary_seq`: base tuples with seq < boundary_seq are "old"; when all
  // of them have expired from the windows below, the state is trivially
  // complete (the window-turnover fallback).
  CompletionTracker(Operator* op, Stamp since_stamp, Seq boundary_seq,
                    bool paper_case3 = false);

  Operator* op() const { return op_; }
  Stamp since_stamp() const { return since_stamp_; }
  Seq boundary_seq() const { return boundary_seq_; }
  InitCase init_case() const { return init_case_; }
  bool initialized() const { return initialized_; }
  size_t pending() const { return pending_.size(); }

  // A value's entries were materialized (or proven empty) at this state.
  void OnKeyCompleted(JoinKey key) { pending_.erase(key); }

  // Retires pending values with no live entry left in the reference child
  // (their missing combinations cannot exist anymore). Also performs the
  // deferred pending-set snapshot on its first call: the transition itself
  // only records which child seeds the counter (O(1), like the paper's
  // integer initialization); the set is built during the first periodic
  // sweep. Snapshotting later is sound -- the key set only gains
  // post-transition keys, which makes the counter conservative.
  void SweepExpired();

  // Called by the periodic sweep when both children are (now) complete;
  // resolves a deferred Case 3 initialization. Idempotent.
  void ResolveDeferred();

  // Declared complete? (Pending set initialized and empty.)
  bool Done() const;

  // --- mid-migration checkpoint support (core/checkpoint.h fluid format) ---

  // Pending values in sorted order (canonical serialization). Only
  // meaningful when initialized().
  std::vector<JoinKey> PendingKeysSorted() const;

  // Restores an initialized pending set exactly as serialized, bypassing
  // the deferred snapshot (the checkpointed run already took it).
  void RestorePending(const std::vector<JoinKey>& keys);

 private:
  void InitPendingFrom(const Operator* reference_child);

  Operator* op_;
  Stamp since_stamp_;
  Seq boundary_seq_;
  bool paper_case3_;
  InitCase init_case_;
  bool initialized_ = false;
  bool paper_case3_done_ = false;
  const Operator* reference_child_ = nullptr;
  std::unordered_set<JoinKey, I64Hash> pending_;
};

}  // namespace jisc

#endif  // JISC_CORE_COMPLETION_TRACKER_H_
