#ifndef JISC_STATE_OPERATOR_STATE_H_
#define JISC_STATE_OPERATOR_STATE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "types/tuple.h"

namespace jisc {

// How a state is organized.
enum class StateIndex {
  kHash,  // hash multimap on the equi-join attribute (symmetric hash join)
  kList,  // unindexed list, probed by linear scan (nested-loops theta join)
};

// The materialized output of one plan operator: every live join combination
// (or, for a scan, every live window tuple) of its subtree.
//
// Identity: the StreamSet of the subtree (the paper's "State RS" etc.).
//
// Visibility model: each entry carries the global event stamp at which it was
// inserted and (once removed) the stamp at which it was removed. A join probe
// issued by a tuple born at stamp p sees exactly the entries with
// insert < p < remove. This yields exactly-once pair generation in a
// symmetric pipeline (the later tuple of a pair produces it) and makes the
// output independent of intra-event scheduling. Removed entries are
// physically erased by Vacuum(), which the engine calls between events.
//
// Completeness (Definition 1) is a property of the state tracked here as a
// flag plus the set of join-attribute values whose entries have been
// completed on demand (Section 4); the decision logic lives in
// core/completion_tracker.h.
class OperatorState {
 public:
  OperatorState(StreamSet id, StateIndex index);

  OperatorState(const OperatorState&) = delete;
  OperatorState& operator=(const OperatorState&) = delete;

  // Deep copy of the live content (tombstones are not carried). Used by the
  // hybrid migration strategy, where old and new plan each need their own
  // copy of a shared state.
  std::unique_ptr<OperatorState> Clone() const;

  StreamSet id() const { return id_; }
  StateIndex index() const { return index_; }

  // --- mutation ---

  // Inserts a combination. When `dedup` is true the insert is skipped if an
  // identical live combination already exists (required during JISC state
  // completion, where the cross product may regenerate combinations that
  // already flowed in after the transition). Returns true if inserted.
  bool Insert(const Tuple& tuple, Stamp insert_stamp, bool dedup = false);

  // Tombstones every live combination containing base-tuple `seq` with key
  // `key` (expiry propagation). For hash states the search is confined to
  // the key's bucket; list states are scanned fully. Removed combinations
  // are appended to *removed (may be null). Returns the count.
  int RemoveContaining(Seq seq, JoinKey key, Stamp remove_stamp,
                       std::vector<Tuple>* removed);

  // Tombstones one specific live combination (set-difference suppression).
  // Returns true if found.
  bool RemoveExact(const Tuple& tuple, Stamp remove_stamp);

  // Physically erases tombstoned entries. Safe only between events (no
  // in-flight message may still probe at a stamp below a tombstone).
  void Vacuum();

  // Erases tombstones only from the buckets touched since the last vacuum;
  // O(size of touched buckets). The executor calls this after each drain.
  void VacuumDirty();

  bool HasTombstones() const { return !dirty_keys_.empty(); }

  // Drops everything (state discard at transition).
  void Clear();

  // --- probes ---

  // Appends the entries visible to a probe at stamp p with the given key.
  // Meaningful for kHash states.
  void CollectMatches(JoinKey key, Stamp p, std::vector<Tuple>* out) const;

  // Pointer flavor for the probe hot path (no combination copies). The
  // pointers are valid until the next mutation of this state; callers must
  // consume them before inserting into or removing from it.
  void CollectMatchPtrs(JoinKey key, Stamp p,
                        std::vector<const Tuple*>* out) const;

  // Visits every entry visible at stamp p (nested-loops probe, state
  // completion cross products).
  void ForEachVisible(Stamp p, const std::function<void(const Tuple&)>& fn) const;

  // Visits every live (not yet removed) entry regardless of stamp
  // (set-difference membership, Moving State eager computation, snapshots).
  void ForEachLive(const std::function<void(const Tuple&)>& fn) const;

  // Live entries with their insertion stamps, visited in a canonical
  // order — sorted by insertion stamp, ties broken by the part sequence —
  // so serializations built from this walk (checkpointing) are
  // byte-identical regardless of the hash table's iteration order.
  void ForEachLiveEntryCanonical(
      const std::function<void(const Tuple&, Stamp)>& fn) const;

  // Any live entry with this key? (set-difference membership test).
  bool ContainsKeyLive(JoinKey key) const;

  // Live entries with this key.
  void CollectLiveByKey(JoinKey key, std::vector<Tuple>* out) const;

  // Live entries with this key, with their insertion stamps, in insertion
  // order — the stamp-preserving flavor the fluid hybrid copy-in uses so
  // deferred copies replicate Clone()'s visibility exactly.
  void CollectLiveByKeyWithStamps(
      JoinKey key, std::vector<std::pair<Tuple, Stamp>>* out) const;

  // An identical live combination exists?
  bool ContainsExactLive(const Tuple& tuple) const;

  // --- statistics ---
  size_t live_size() const { return live_size_; }
  // O(1) resident-bytes estimate from the incrementally-tracked counters:
  // every live combination of this state is exactly id().size() parts wide,
  // so entry + parts storage follow from live_size() alone, plus the same
  // per-key bucket overhead exec/validate.cc's exact walk charges. Cheap
  // enough for the telemetry gauge refresh on the hot path's maintain
  // cadence, where the ForEachLive walk is not.
  uint64_t ApproxBytes() const;
  // Number of distinct keys with at least one live entry (the paper's
  // "number of distinct values of the join attribute inside the state",
  // used to initialize completion counters).
  size_t DistinctLiveKeys() const { return live_keys_; }
  std::vector<JoinKey> LiveKeys() const;

  // --- completeness bookkeeping (Definition 1 / Section 4.3) ---
  bool complete() const { return complete_; }
  void MarkComplete();
  void MarkIncomplete();
  bool IsKeyCompleted(JoinKey key) const;
  void MarkKeyCompleted(JoinKey key);
  size_t NumCompletedKeys() const { return completed_keys_.size(); }
  // Completed keys in sorted order — the canonical walk mid-migration
  // checkpoints serialize from, like ForEachLiveEntryCanonical for entries.
  std::vector<JoinKey> CompletedKeysSorted() const;

  std::string DebugString() const;

 private:
  struct Entry {
    Tuple tuple;
    Stamp insert_stamp;
    Stamp remove_stamp = kStampInfinity;

    bool live() const { return remove_stamp == kStampInfinity; }
    bool VisibleAt(Stamp p) const {
      return insert_stamp < p && p < remove_stamp;
    }
  };

  struct Bucket {
    std::vector<Entry> entries;
    size_t live = 0;
  };

  void NoteInsert(Bucket* b);
  void NoteRemove(Bucket* b);

  void VacuumBucket(Bucket* bucket);

  StreamSet id_;
  StateIndex index_;
  std::unordered_map<JoinKey, Bucket, I64Hash> buckets_;
  std::vector<JoinKey> dirty_keys_;
  size_t live_size_ = 0;
  size_t live_keys_ = 0;
  bool complete_ = true;
  std::unordered_set<JoinKey, I64Hash> completed_keys_;
};

}  // namespace jisc

#endif  // JISC_STATE_OPERATOR_STATE_H_
