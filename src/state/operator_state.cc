#include "state/operator_state.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace jisc {

OperatorState::OperatorState(StreamSet id, StateIndex index)
    : id_(id), index_(index) {}

std::unique_ptr<OperatorState> OperatorState::Clone() const {
  auto copy = std::make_unique<OperatorState>(id_, index_);
  for (const auto& [k, b] : buckets_) {
    (void)k;
    for (const Entry& e : b.entries) {
      if (e.live()) copy->Insert(e.tuple, e.insert_stamp);
    }
  }
  copy->complete_ = complete_;
  copy->completed_keys_ = completed_keys_;
  return copy;
}

void OperatorState::NoteInsert(Bucket* b) {
  if (b->live == 0) ++live_keys_;
  ++b->live;
  ++live_size_;
}

void OperatorState::NoteRemove(Bucket* b) {
  JISC_DCHECK(b->live > 0);
  --b->live;
  --live_size_;
  if (b->live == 0) --live_keys_;
}

bool OperatorState::Insert(const Tuple& tuple, Stamp insert_stamp,
                           bool dedup) {
  Bucket& b = buckets_[tuple.key()];
  if (dedup) {
    for (const Entry& e : b.entries) {
      if (e.live() && e.tuple == tuple) return false;
    }
  }
  Entry e;
  e.tuple = tuple;
  e.insert_stamp = insert_stamp;
  b.entries.push_back(std::move(e));
  NoteInsert(&b);
  return true;
}

int OperatorState::RemoveContaining(Seq seq, JoinKey key, Stamp remove_stamp,
                                    std::vector<Tuple>* removed) {
  int count = 0;
  auto scan_bucket = [&](Bucket& b) {
    for (Entry& e : b.entries) {
      if (e.live() && e.tuple.ContainsSeq(seq)) {
        e.remove_stamp = remove_stamp;
        NoteRemove(&b);
        if (removed != nullptr) removed->push_back(e.tuple);
        ++count;
        dirty_keys_.push_back(e.tuple.key());
      }
    }
  };
  if (index_ == StateIndex::kHash) {
    // Equi-join combinations share the key of every part, so combinations
    // containing `seq` can only live in this key's bucket.
    auto it = buckets_.find(key);
    if (it != buckets_.end()) scan_bucket(it->second);
  } else {
    for (auto& [k, b] : buckets_) {
      (void)k;
      scan_bucket(b);
    }
  }
  return count;
}

bool OperatorState::RemoveExact(const Tuple& tuple, Stamp remove_stamp) {
  auto it = buckets_.find(tuple.key());
  if (it == buckets_.end()) return false;
  for (Entry& e : it->second.entries) {
    if (e.live() && e.tuple == tuple) {
      e.remove_stamp = remove_stamp;
      NoteRemove(&it->second);
      dirty_keys_.push_back(tuple.key());
      return true;
    }
  }
  return false;
}

void OperatorState::VacuumBucket(Bucket* bucket) {
  auto& entries = bucket->entries;
  entries.erase(std::remove_if(entries.begin(), entries.end(),
                               [](const Entry& e) { return !e.live(); }),
                entries.end());
}

void OperatorState::Vacuum() {
  for (auto it = buckets_.begin(); it != buckets_.end();) {
    VacuumBucket(&it->second);
    if (it->second.entries.empty()) {
      it = buckets_.erase(it);
    } else {
      ++it;
    }
  }
  dirty_keys_.clear();
}

void OperatorState::VacuumDirty() {
  for (JoinKey key : dirty_keys_) {
    auto it = buckets_.find(key);
    if (it == buckets_.end()) continue;
    VacuumBucket(&it->second);
    if (it->second.entries.empty()) buckets_.erase(it);
  }
  dirty_keys_.clear();
}

void OperatorState::Clear() {
  buckets_.clear();
  dirty_keys_.clear();
  live_size_ = 0;
  live_keys_ = 0;
  completed_keys_.clear();
}

void OperatorState::CollectMatches(JoinKey key, Stamp p,
                                   std::vector<Tuple>* out) const {
  auto it = buckets_.find(key);
  if (it == buckets_.end()) return;
  for (const Entry& e : it->second.entries) {
    if (e.VisibleAt(p)) out->push_back(e.tuple);
  }
}

void OperatorState::CollectMatchPtrs(JoinKey key, Stamp p,
                                     std::vector<const Tuple*>* out) const {
  auto it = buckets_.find(key);
  if (it == buckets_.end()) return;
  for (const Entry& e : it->second.entries) {
    if (e.VisibleAt(p)) out->push_back(&e.tuple);
  }
}

void OperatorState::ForEachVisible(
    Stamp p, const std::function<void(const Tuple&)>& fn) const {
  for (const auto& [k, b] : buckets_) {
    (void)k;
    for (const Entry& e : b.entries) {
      if (e.VisibleAt(p)) fn(e.tuple);
    }
  }
}

void OperatorState::ForEachLive(
    const std::function<void(const Tuple&)>& fn) const {
  for (const auto& [k, b] : buckets_) {
    (void)k;
    for (const Entry& e : b.entries) {
      if (e.live()) fn(e.tuple);
    }
  }
}

void OperatorState::ForEachLiveEntryCanonical(
    const std::function<void(const Tuple&, Stamp)>& fn) const {
  std::vector<std::pair<const Entry*, Stamp>> live;
  live.reserve(live_size_);
  // jisc-verify: allow(determinism) — gathered entries are sorted below
  for (const auto& [k, b] : buckets_) {
    (void)k;
    for (const Entry& e : b.entries) {
      if (e.live()) live.emplace_back(&e, e.insert_stamp);
    }
  }
  std::sort(live.begin(), live.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second < b.second;
              const auto& ap = a.first->tuple.parts();
              const auto& bp = b.first->tuple.parts();
              if (ap.size() != bp.size()) return ap.size() < bp.size();
              for (size_t i = 0; i < ap.size(); ++i) {
                if (ap[i].seq != bp[i].seq) return ap[i].seq < bp[i].seq;
                if (ap[i].stream != bp[i].stream) {
                  return ap[i].stream < bp[i].stream;
                }
              }
              return false;
            });
  for (const auto& [e, stamp] : live) fn(e->tuple, stamp);
}

bool OperatorState::ContainsKeyLive(JoinKey key) const {
  auto it = buckets_.find(key);
  return it != buckets_.end() && it->second.live > 0;
}

void OperatorState::CollectLiveByKey(JoinKey key,
                                     std::vector<Tuple>* out) const {
  auto it = buckets_.find(key);
  if (it == buckets_.end()) return;
  for (const Entry& e : it->second.entries) {
    if (e.live()) out->push_back(e.tuple);
  }
}

void OperatorState::CollectLiveByKeyWithStamps(
    JoinKey key, std::vector<std::pair<Tuple, Stamp>>* out) const {
  auto it = buckets_.find(key);
  if (it == buckets_.end()) return;
  for (const Entry& e : it->second.entries) {
    if (e.live()) out->emplace_back(e.tuple, e.insert_stamp);
  }
}

bool OperatorState::ContainsExactLive(const Tuple& tuple) const {
  auto it = buckets_.find(tuple.key());
  if (it == buckets_.end()) return false;
  for (const Entry& e : it->second.entries) {
    if (e.live() && e.tuple == tuple) return true;
  }
  return false;
}

uint64_t OperatorState::ApproxBytes() const {
  // Mirrors exec/validate.cc StateBytes: per live entry the combination
  // record plus its insert/remove stamps plus `arity` base-tuple parts, and
  // per live key the estimated hash-bucket overhead. Exact for this state
  // layout because every combination of a subtree has the same width.
  const uint64_t arity = static_cast<uint64_t>(id_.size());
  const uint64_t per_entry =
      sizeof(Tuple) + 2 * sizeof(Stamp) + arity * sizeof(BaseTuple);
  return static_cast<uint64_t>(live_size_) * per_entry +
         static_cast<uint64_t>(live_keys_) * 48;
}

std::vector<JoinKey> OperatorState::LiveKeys() const {
  std::vector<JoinKey> keys;
  keys.reserve(live_keys_);
  for (const auto& [k, b] : buckets_) {
    if (b.live > 0) keys.push_back(k);
  }
  return keys;
}

void OperatorState::MarkComplete() {
  complete_ = true;
  completed_keys_.clear();
}

void OperatorState::MarkIncomplete() { complete_ = false; }

bool OperatorState::IsKeyCompleted(JoinKey key) const {
  return completed_keys_.find(key) != completed_keys_.end();
}

void OperatorState::MarkKeyCompleted(JoinKey key) {
  completed_keys_.insert(key);
}

std::vector<JoinKey> OperatorState::CompletedKeysSorted() const {
  std::vector<JoinKey> keys(completed_keys_.begin(), completed_keys_.end());
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::string OperatorState::DebugString() const {
  std::ostringstream os;
  os << "State " << id_.ToString() << (complete_ ? " [complete]" : " [INCOMPLETE]")
     << " live=" << live_size_ << " keys=" << live_keys_;
  return os.str();
}

}  // namespace jisc
