#ifndef JISC_WORKLOAD_ADAPTIVE_H_
#define JISC_WORKLOAD_ADAPTIVE_H_

#include <cstdint>
#include <vector>

#include "common/sketch.h"
#include "core/engine.h"

namespace jisc {

// Optimize-at-runtime controller. The paper treats the *trigger* of a plan
// transition as orthogonal (Section 2: "we do not address the actual
// conditions that trigger a plan transition"); this controller supplies a
// working one so the engine is usable end to end: it periodically observes
// per-stream fan-out from the live scan states, estimates left-deep plan
// cost with a simple prefix-product model, and requests a migration (via
// whatever MigrationStrategy the engine runs — JISC, Moving State, ...)
// when a sufficiently better join order emerges.
//
// Fan-out of stream s: live window tuples per distinct join value — the
// expected number of matches a probe into s's state finds, given the value
// is present. Cost of a left-deep order o:
//   cost(o) = sum_k prod_{i<=k} fanout(o[i]),
// the expected total intermediate-result volume per full probe chain.
// Ascending fan-out ("most selective joins at the bottom", Section 5.2) is
// optimal under this model; hysteresis avoids thrashing on noise.
class AdaptiveController {
 public:
  struct Options {
    // Pushes between evaluations.
    uint64_t evaluate_period = 2048;
    // Required relative cost improvement before a transition is requested.
    double min_improvement = 0.15;
    // Streams with fewer live tuples than this are not judged yet.
    uint64_t min_window_fill = 16;
    // Estimate fan-out from per-stream arrival sketches (HyperLogLog over
    // the keys seen since the last evaluation) instead of reading the scan
    // states exactly. At paper scale exact distinct counts are what the
    // sketches replace; accuracy is within HLL's ~2% standard error.
    bool use_sketches = false;
  };

  AdaptiveController(Engine* engine, Options options);
  explicit AdaptiveController(Engine* engine);  // default options

  // Forwards to Engine::Push, then (periodically) evaluates the plan.
  void Push(const BaseTuple& tuple);

  // Number of transitions this controller has requested.
  uint64_t transitions() const { return transitions_; }

  // The order the controller would pick right now (ascending fan-out).
  std::vector<StreamId> AdvisedOrder() const;

  // Estimated cost of running the streams in the given left-deep order.
  double EstimateCost(const std::vector<StreamId>& order) const;

  double fanout(StreamId s) const;

 private:
  void MaybeMigrate();

  Engine* engine_;
  Options options_;
  uint64_t since_evaluation_ = 0;
  uint64_t transitions_ = 0;
  // Sketch mode: per-stream arrival keys + counts for the current epoch.
  mutable std::vector<HyperLogLog> key_sketches_;
  std::vector<uint64_t> epoch_arrivals_;
  std::vector<double> sketched_fanout_;
};

}  // namespace jisc

#endif  // JISC_WORKLOAD_ADAPTIVE_H_
