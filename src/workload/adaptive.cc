#include "workload/adaptive.h"

#include <algorithm>

#include "common/logging.h"

namespace jisc {

AdaptiveController::AdaptiveController(Engine* engine, Options options)
    : engine_(engine), options_(options) {
  JISC_CHECK(engine_ != nullptr);
  JISC_CHECK(options_.evaluate_period >= 1);
  if (options_.use_sketches) {
    int n = engine_->windows().num_streams();
    for (int i = 0; i < n; ++i) key_sketches_.emplace_back(12);
    epoch_arrivals_.assign(static_cast<size_t>(n), 0);
    sketched_fanout_.assign(static_cast<size_t>(n), 1.0);
  }
}

AdaptiveController::AdaptiveController(Engine* engine)
    : AdaptiveController(engine, Options()) {}

double AdaptiveController::fanout(StreamId s) const {
  if (options_.use_sketches) return sketched_fanout_[s];
  StreamScan* scan = engine_->executor().scan(s);
  JISC_CHECK(scan != nullptr);
  const OperatorState& st = scan->state();
  if (st.DistinctLiveKeys() == 0) return 1.0;
  return static_cast<double>(st.live_size()) /
         static_cast<double>(st.DistinctLiveKeys());
}

std::vector<StreamId> AdaptiveController::AdvisedOrder() const {
  std::vector<StreamId> order = engine_->plan().streams().ToVector();
  // Ascending fan-out, ties broken by stream id for determinism.
  std::stable_sort(order.begin(), order.end(),
                   [this](StreamId a, StreamId b) {
                     double fa = fanout(a);
                     double fb = fanout(b);
                     if (fa != fb) return fa < fb;
                     return a < b;
                   });
  return order;
}

double AdaptiveController::EstimateCost(
    const std::vector<StreamId>& order) const {
  double cost = 0;
  double volume = 1;
  for (StreamId s : order) {
    volume *= fanout(s);
    cost += volume;
  }
  return cost;
}

void AdaptiveController::MaybeMigrate() {
  const LogicalPlan& plan = engine_->plan();
  if (!plan.IsLeftDeep()) return;  // the advisor reorders left-deep chains
  // Only judge once every stream has a representative sample.
  for (StreamId s : plan.streams().ToVector()) {
    StreamScan* scan = engine_->executor().scan(s);
    if (scan == nullptr ||
        scan->state().live_size() < options_.min_window_fill) {
      return;
    }
  }
  auto current = plan.LeftDeepOrder();
  if (!current.ok()) return;
  std::vector<StreamId> advised = AdvisedOrder();
  if (advised == current.value()) return;
  double cost_now = EstimateCost(current.value());
  double cost_advised = EstimateCost(advised);
  if (cost_advised >= cost_now * (1.0 - options_.min_improvement)) return;
  // Preserve the join kinds of the running plan's levels.
  std::vector<OpKind> kinds;
  {
    int cur = plan.root();
    while (!plan.IsLeaf(cur)) {
      kinds.push_back(plan.node(cur).kind);
      cur = plan.node(cur).left;
    }
    std::reverse(kinds.begin(), kinds.end());
  }
  LogicalPlan next = LogicalPlan::LeftDeepMixed(advised, kinds);
  Status s = engine_->RequestTransition(next);
  if (s.ok()) {
    ++transitions_;
  } else {
    JISC_LOG(Warning) << "adaptive transition rejected: " << s.ToString();
  }
}

void AdaptiveController::Push(const BaseTuple& tuple) {
  if (options_.use_sketches && tuple.stream < key_sketches_.size()) {
    key_sketches_[tuple.stream].Add(static_cast<uint64_t>(tuple.key));
    ++epoch_arrivals_[tuple.stream];
  }
  engine_->Push(tuple);
  if (++since_evaluation_ >= options_.evaluate_period) {
    since_evaluation_ = 0;
    if (options_.use_sketches) {
      // Close the epoch: fan-out ~ arrivals per distinct key observed.
      for (size_t s = 0; s < key_sketches_.size(); ++s) {
        double distinct = key_sketches_[s].Estimate();
        if (epoch_arrivals_[s] >= options_.min_window_fill && distinct >= 1) {
          sketched_fanout_[s] =
              static_cast<double>(epoch_arrivals_[s]) / distinct;
        }
        key_sketches_[s].Clear();
        epoch_arrivals_[s] = 0;
      }
    }
    MaybeMigrate();
  }
}

}  // namespace jisc
