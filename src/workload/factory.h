#ifndef JISC_WORKLOAD_FACTORY_H_
#define JISC_WORKLOAD_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/migration_strategy.h"
#include "core/parallel_engine.h"
#include "exec/ingress_guard.h"
#include "exec/sink.h"
#include "exec/stream_processor.h"
#include "exec/theta.h"
#include "plan/logical_plan.h"
#include "stream/window.h"

namespace jisc {

// The query processors compared in the paper's evaluation (Section 6).
enum class ProcessorKind {
  kJisc,            // the paper's contribution (on-probe completion)
  kJiscFirstReceipt,  // Section 4.4 reading: complete per value on receipt
  kMovingState,     // halt + eager state computation [4]
  kParallelTrack,   // old and new plans side by side [4]
  kHybridTrack,     // Parallel Track + Moving-State state matching [5, 6]
  kCacq,            // eddy + SteMs, no intermediate state [3]
  kMJoin,           // n-ary symmetric join, no intermediate state [11, 1]
  kStairsEager,     // STAIRs with eager Promote/Demote [19]
  kStairsJisc,      // JISC applied to STAIRs (Section 4.6)
  kStaticPipeline,  // plain symmetric-hash-join pipeline (Fig. 9a baseline);
                    // rejects no transitions but tracks no freshness
};

const char* ProcessorKindName(ProcessorKind kind);

// All pipelined-strategy kinds (for benches comparing the paper's main
// three: JISC / CACQ / Parallel Track, plus Moving State for latency).
std::vector<ProcessorKind> PipelineStrategyKinds();

// True for the kinds built on the single-plan Engine (kJisc,
// kJiscFirstReceipt, kMovingState, kStaticPipeline) — the ones that accept
// parallelism > 1 and support checkpoint/restore.
bool IsEngineKind(ProcessorKind kind);

// The migration-strategy factory MakeProcessor wires into an engine kind.
// Exposed so flows that rebuild an engine outside MakeProcessor — the
// scenario runner's checkpoint/restore action restoring via RestoreEngine
// — construct the identical strategy. CHECK-fails on non-engine kinds.
// A fluid `fluid` selects the fluid-draining strategy decorator for the
// migrating kinds (kJisc, kJiscFirstReceipt, kMovingState);
// kStaticPipeline never migrates and ignores it.
StrategyFactory EngineStrategyFactory(ProcessorKind kind,
                                      FluidOptions fluid = FluidOptions());

// A processor wired to a counting sink.
struct BuiltProcessor {
  std::unique_ptr<StreamProcessor> processor;
  std::unique_ptr<CountingSink> sink;
};

// `parallelism` > 1 routes the Engine-based kinds (kJisc,
// kJiscFirstReceipt, kMovingState, kStaticPipeline) through the
// hash-partitioned ParallelExecutor with that many shards; the eddy and
// multi-plan processors are inherently single-threaded and reject it.
// `obs` (nullptr = off) attaches an observability bundle to the kinds that
// support it — the Engine-based kinds plus Parallel/Hybrid Track; the eddy
// family ignores it (no migration phases to trace).
// `parallel_options` seeds the ParallelExecutor configuration when
// parallelism > 1 (queue capacity, batch size, straggler fault injection);
// num_shards and obs are overwritten from `parallelism` / `obs`. Ignored at
// parallelism <= 1.
// `ingress` (disabled by default) wraps the built processor — any kind, any
// parallelism — in a GuardedProcessor (exec/ingress_guard.h) that dedups
// and re-orders the feed before admission. Disabled adds no wrapper.
// `fluid` (all-at-once by default) selects fluid migration for the kinds
// that carry state across transitions: the engine kinds get the fluid
// strategy decorator plus the engine's between-event batch pump, Hybrid
// Track gets its deferred per-key copy-in, and Parallel Track accepts the
// options as a documented no-op (it has no carryover to batch). The eddy
// family has no migration stage and ignores it.
BuiltProcessor MakeProcessor(
    ProcessorKind kind, const LogicalPlan& plan, const WindowSpec& windows,
    ThetaSpec theta = ThetaSpec(), int parallelism = 1,
    Observability* obs = nullptr,
    ParallelExecutor::Options parallel_options = ParallelExecutor::Options(),
    IngressGuard::Options ingress = IngressGuard::Options(),
    FluidOptions fluid = FluidOptions());

}  // namespace jisc

#endif  // JISC_WORKLOAD_FACTORY_H_
