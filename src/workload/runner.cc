#include "workload/runner.h"

#include "common/logging.h"

namespace jisc {

ConsumeStats Consume(StreamProcessor* proc, SyntheticSource* src, size_t n) {
  ConsumeStats stats;
  uint64_t work_before = proc->metrics().WorkUnits();
  uint64_t outputs_before = proc->metrics().outputs;
  WallTimer timer;
  for (size_t i = 0; i < n; ++i) proc->Push(src->Next());
  stats.seconds = timer.ElapsedSeconds();
  stats.tuples = n;
  stats.work_units = proc->metrics().WorkUnits() - work_before;
  stats.outputs = proc->metrics().outputs - outputs_before;
  return stats;
}

ConsumeStats ConsumeRecorded(StreamProcessor* proc,
                             const std::vector<BaseTuple>& tuples,
                             size_t begin, size_t end) {
  JISC_CHECK(begin <= end && end <= tuples.size());
  ConsumeStats stats;
  uint64_t work_before = proc->metrics().WorkUnits();
  uint64_t outputs_before = proc->metrics().outputs;
  WallTimer timer;
  for (size_t i = begin; i < end; ++i) proc->Push(tuples[i]);
  stats.seconds = timer.ElapsedSeconds();
  stats.tuples = end - begin;
  stats.work_units = proc->metrics().WorkUnits() - work_before;
  stats.outputs = proc->metrics().outputs - outputs_before;
  return stats;
}

LatencyResult MeasureTransitionLatency(StreamProcessor* proc,
                                       CountingSink* sink,
                                       const LogicalPlan& new_plan,
                                       SyntheticSource* src,
                                       size_t max_tuples) {
  LatencyResult result;
  WallTimer total;
  {
    WallTimer migration;
    Status s = proc->RequestTransition(new_plan);
    JISC_CHECK(s.ok()) << s.ToString();
    result.migration_seconds = migration.ElapsedSeconds();
  }
  uint64_t outputs_before = sink->outputs();
  for (size_t i = 0; i < max_tuples; ++i) {
    proc->Push(src->Next());
    ++result.tuples_until_output;
    if (sink->outputs() > outputs_before) break;
  }
  result.first_output_seconds = total.ElapsedSeconds();
  return result;
}

void WarmUp(StreamProcessor* proc, SyntheticSource* src, int num_streams,
            uint64_t window) {
  size_t n = static_cast<size_t>(num_streams) * window;
  for (size_t i = 0; i < n; ++i) proc->Push(src->Next());
}

}  // namespace jisc
