#include "workload/factory.h"

#include "common/logging.h"
#include "core/engine.h"
#include "core/jisc_runtime.h"
#include "core/parallel_engine.h"
#include "eddy/cacq.h"
#include "eddy/mjoin.h"
#include "eddy/stairs.h"
#include "migration/hybrid_track.h"
#include "migration/moving_state.h"
#include "migration/parallel_track.h"

namespace jisc {

const char* ProcessorKindName(ProcessorKind kind) {
  switch (kind) {
    case ProcessorKind::kJisc:
      return "jisc";
    case ProcessorKind::kJiscFirstReceipt:
      return "jisc-first-receipt";
    case ProcessorKind::kMovingState:
      return "moving-state";
    case ProcessorKind::kParallelTrack:
      return "parallel-track";
    case ProcessorKind::kHybridTrack:
      return "hybrid-track";
    case ProcessorKind::kCacq:
      return "cacq";
    case ProcessorKind::kMJoin:
      return "mjoin";
    case ProcessorKind::kStairsEager:
      return "stairs-eager";
    case ProcessorKind::kStairsJisc:
      return "stairs-jisc";
    case ProcessorKind::kStaticPipeline:
      return "pipeline-shj";
  }
  return "?";
}

std::vector<ProcessorKind> PipelineStrategyKinds() {
  return {ProcessorKind::kJisc, ProcessorKind::kCacq,
          ProcessorKind::kParallelTrack, ProcessorKind::kMovingState};
}

bool IsEngineKind(ProcessorKind kind) {
  return kind == ProcessorKind::kJisc ||
         kind == ProcessorKind::kJiscFirstReceipt ||
         kind == ProcessorKind::kMovingState ||
         kind == ProcessorKind::kStaticPipeline;
}

StrategyFactory EngineStrategyFactory(ProcessorKind kind,
                                      FluidOptions fluid) {
  JISC_CHECK(IsEngineKind(kind))
      << ProcessorKindName(kind) << " is not an engine kind";
  const bool is_fluid = fluid.IsFluid();
  switch (kind) {
    case ProcessorKind::kJiscFirstReceipt: {
      JiscOptions j;
      j.completion_mode = JiscOptions::CompletionMode::kOnFirstReceipt;
      if (is_fluid) return [j, fluid] { return MakeFluidStrategy(j, fluid); };
      return [j] { return MakeJiscStrategy(j); };
    }
    case ProcessorKind::kMovingState:
      if (is_fluid) {
        // Fluid Moving State: the JISC machinery drains the carryover in
        // batches, but charges the eager counter profile and drains exactly
        // the key sets the halted eager pass would have materialized, so
        // deterministic counters match the all-at-once eager run.
        JiscOptions j;
        j.eager_charging = true;
        j.display_name = "moving-state";
        return [j, fluid] { return MakeFluidStrategy(j, fluid); };
      }
      return [] { return MakeMovingStateStrategy(); };
    case ProcessorKind::kStaticPipeline:
      // Never migrates; fluid has nothing to drain.
      return [] { return MakeMovingStateStrategy(); };
    case ProcessorKind::kJisc:
    default:
      if (is_fluid) {
        return [fluid] { return MakeFluidStrategy(JiscOptions(), fluid); };
      }
      return [] { return MakeJiscStrategy(); };
  }
}

BuiltProcessor MakeProcessor(ProcessorKind kind, const LogicalPlan& plan,
                             const WindowSpec& windows, ThetaSpec theta,
                             int parallelism, Observability* obs,
                             ParallelExecutor::Options parallel_options,
                             IngressGuard::Options ingress,
                             FluidOptions fluid) {
  BuiltProcessor built;
  built.sink = std::make_unique<CountingSink>();
  JISC_CHECK(parallelism <= 1 || IsEngineKind(kind))
      << ProcessorKindName(kind) << " does not support parallelism";
  Engine::Options eopts;
  eopts.exec.theta = theta;
  eopts.parallelism = parallelism;
  eopts.obs = obs;
  // Engine kinds are guarded inside MakeEngineProcessor (so the guard also
  // fronts the sharded executor); the other kinds are wrapped below.
  eopts.ingress = ingress;
  eopts.fluid = fluid;
  switch (kind) {
    case ProcessorKind::kJisc:
    case ProcessorKind::kJiscFirstReceipt:
    case ProcessorKind::kMovingState:
    case ProcessorKind::kStaticPipeline:
      eopts.track_freshness = kind != ProcessorKind::kStaticPipeline;
      built.processor =
          MakeEngineProcessor(plan, windows, built.sink.get(),
                              EngineStrategyFactory(kind, fluid), eopts,
                              parallel_options);
      break;
    case ProcessorKind::kParallelTrack: {
      ParallelTrackProcessor::Options popts;
      popts.exec.theta = theta;
      popts.obs = obs;
      popts.fluid = fluid;
      built.processor = std::make_unique<ParallelTrackProcessor>(
          plan, windows, built.sink.get(), popts);
      break;
    }
    case ProcessorKind::kHybridTrack: {
      HybridTrackProcessor::Options hopts;
      hopts.exec.theta = theta;
      hopts.obs = obs;
      hopts.fluid = fluid;
      built.processor = std::make_unique<HybridTrackProcessor>(
          plan, windows, built.sink.get(), hopts);
      break;
    }
    case ProcessorKind::kCacq:
      built.processor = std::make_unique<CacqExecutor>(plan, windows,
                                                       built.sink.get());
      break;
    case ProcessorKind::kMJoin:
      built.processor = std::make_unique<MJoinExecutor>(plan, windows,
                                                        built.sink.get());
      break;
    case ProcessorKind::kStairsEager:
      built.processor = std::make_unique<StairsExecutor>(
          plan, windows, built.sink.get(),
          StairsExecutor::MigrationPolicy::kEager);
      break;
    case ProcessorKind::kStairsJisc:
      built.processor = std::make_unique<StairsExecutor>(
          plan, windows, built.sink.get(),
          StairsExecutor::MigrationPolicy::kLazyJisc);
      break;
  }
  if (!IsEngineKind(kind)) {
    built.processor = MaybeGuardProcessor(std::move(built.processor), ingress,
                                          windows.num_streams(), obs);
  }
  return built;
}

}  // namespace jisc
