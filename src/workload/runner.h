#ifndef JISC_WORKLOAD_RUNNER_H_
#define JISC_WORKLOAD_RUNNER_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/timer.h"
#include "exec/stream_processor.h"
#include "stream/synthetic_source.h"
#include "workload/factory.h"

namespace jisc {

// Measurement helpers shared by the benchmark binaries. All figure benches
// follow the paper's methodology (Section 6): uniform data, round-robin
// streams, forced transitions, wall time plus deterministic work units.

struct ConsumeStats {
  double seconds = 0;
  uint64_t tuples = 0;
  uint64_t work_units = 0;  // Metrics::WorkUnits delta
  uint64_t outputs = 0;
};

// Pushes the next `n` tuples of `src` into `proc`, timed.
ConsumeStats Consume(StreamProcessor* proc, SyntheticSource* src, size_t n);

// Pushes a prerecorded tuple sequence, timed (used when several strategies
// must see the identical sequence).
ConsumeStats ConsumeRecorded(StreamProcessor* proc,
                             const std::vector<BaseTuple>& tuples,
                             size_t begin, size_t end);

// Output latency probe (Fig. 10): wall time from the moment a transition is
// requested until the first output tuple afterwards. The transition runs
// synchronously inside RequestTransition, so Moving State's eager state
// computation is included — exactly the latency the paper measures.
struct LatencyResult {
  double migration_seconds = 0;   // inside RequestTransition
  double first_output_seconds = 0;  // trigger -> first output (>= migration)
  uint64_t tuples_until_output = 0;
};
LatencyResult MeasureTransitionLatency(StreamProcessor* proc,
                                       CountingSink* sink,
                                       const LogicalPlan& new_plan,
                                       SyntheticSource* src,
                                       size_t max_tuples);

// Fills every stream's window: pushes window*streams tuples.
void WarmUp(StreamProcessor* proc, SyntheticSource* src, int num_streams,
            uint64_t window);

}  // namespace jisc

#endif  // JISC_WORKLOAD_RUNNER_H_
