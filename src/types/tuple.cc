#include "types/tuple.h"

#include <algorithm>
#include <sstream>

namespace jisc {

std::vector<StreamId> StreamSet::ToVector() const {
  std::vector<StreamId> out;
  uint64_t b = bits_;
  while (b != 0) {
    int s = __builtin_ctzll(b);
    out.push_back(static_cast<StreamId>(s));
    b &= b - 1;
  }
  return out;
}

std::string StreamSet::ToString() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (StreamId s : ToVector()) {
    if (!first) os << ",";
    os << "S" << s;
    first = false;
  }
  os << "}";
  return os.str();
}

Tuple Tuple::FromBase(const BaseTuple& base, Stamp birth, bool fresh) {
  Tuple t;
  t.parts_.push_back(base);
  t.streams_ = StreamSet::Single(base.stream);
  t.key_ = base.key;
  t.birth_ = birth;
  t.fresh_ = fresh;
  return t;
}

Tuple Tuple::Concat(const Tuple& a, const Tuple& b, Stamp birth, bool fresh) {
  JISC_DCHECK(!a.streams_.Intersects(b.streams_));
  Tuple t;
  t.parts_.reserve(a.parts_.size() + b.parts_.size());
  // Merge the two part lists, both already sorted by stream id.
  std::merge(a.parts_.begin(), a.parts_.end(), b.parts_.begin(),
             b.parts_.end(), std::back_inserter(t.parts_),
             [](const BaseTuple& x, const BaseTuple& y) {
               return x.stream < y.stream;
             });
  t.streams_ = StreamSet::Union(a.streams_, b.streams_);
  t.key_ = t.parts_.front().key;
  t.birth_ = birth;
  t.fresh_ = fresh;
  return t;
}

Tuple Tuple::FromParts(std::vector<BaseTuple> parts, Stamp birth) {
  JISC_CHECK(!parts.empty());
  Tuple t;
  t.parts_ = std::move(parts);
  std::sort(t.parts_.begin(), t.parts_.end(),
            [](const BaseTuple& a, const BaseTuple& b) {
              return a.stream < b.stream;
            });
  StreamSet streams;
  for (const BaseTuple& p : t.parts_) {
    JISC_CHECK(!streams.Contains(p.stream));
    streams = StreamSet::Union(streams, StreamSet::Single(p.stream));
  }
  t.streams_ = streams;
  t.key_ = t.parts_.front().key;
  t.birth_ = birth;
  t.fresh_ = false;
  return t;
}

bool Tuple::ContainsSeq(Seq seq) const {
  for (const auto& p : parts_) {
    if (p.seq == seq) return true;
  }
  return false;
}

uint64_t Tuple::IdentityHash() const {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& p : parts_) h = HashCombine(h, p.seq);
  return h;
}

bool operator==(const Tuple& a, const Tuple& b) {
  if (a.parts_.size() != b.parts_.size()) return false;
  for (size_t i = 0; i < a.parts_.size(); ++i) {
    if (a.parts_[i].seq != b.parts_[i].seq) return false;
  }
  return true;
}

std::string Tuple::ToString() const {
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const auto& p : parts_) {
    if (!first) os << " ";
    os << "S" << p.stream << "#" << p.seq << "(k=" << p.key << ")";
    first = false;
  }
  os << "]";
  return os.str();
}

}  // namespace jisc
