#include "types/schema.h"

#include <sstream>

namespace jisc {

Schema Schema::Synthetic(int num_streams) {
  Schema s;
  for (int i = 0; i < num_streams; ++i) {
    s.AddStream("S" + std::to_string(i));
  }
  return s;
}

Status Schema::AddStream(std::string name) {
  if (static_cast<int>(names_.size()) >= kMaxStreams) {
    return Status::OutOfRange("a query supports at most 64 streams");
  }
  names_.push_back(std::move(name));
  return Status::Ok();
}

std::string Schema::Render(StreamSet set) const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (StreamId s : set.ToVector()) {
    if (!first) os << ",";
    if (s < names_.size()) {
      os << names_[s];
    } else {
      os << "S" << s;
    }
    first = false;
  }
  os << "}";
  return os.str();
}

}  // namespace jisc
