#ifndef JISC_TYPES_TUPLE_H_
#define JISC_TYPES_TUPLE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"

namespace jisc {

// Identifies one input stream. The engine supports up to kMaxStreams streams
// per query (StreamSet is a 64-bit mask).
using StreamId = uint16_t;
inline constexpr int kMaxStreams = 64;

// The equi-join attribute value (the paper's "ID").
using JoinKey = int64_t;

// Globally unique arrival sequence number of a base tuple. Doubles as the
// tuple's identity for combination dedup and expiry.
using Seq = uint64_t;

// Global event stamp. Every external event (arrival, transition) gets one;
// all messages of that event's cascade carry it. State visibility is defined
// in terms of stamps, which makes the output independent of queue scheduling.
using Stamp = uint64_t;
inline constexpr Stamp kStampInfinity = ~0ULL;

// One tuple as produced by a source stream.
struct BaseTuple {
  StreamId stream = 0;
  JoinKey key = 0;
  int64_t payload = 0;
  Seq seq = 0;
  // Event time, used by time-based sliding windows (count-based windows
  // ignore it). Sources assign non-decreasing values.
  uint64_t ts = 0;

  friend bool operator==(const BaseTuple& a, const BaseTuple& b) {
    return a.seq == b.seq;
  }
};

// An immutable set of streams, the identity of an operator state ("RS",
// "RST", ...). Backed by a 64-bit mask.
class StreamSet {
 public:
  constexpr StreamSet() : bits_(0) {}
  constexpr explicit StreamSet(uint64_t bits) : bits_(bits) {}

  static StreamSet Single(StreamId s) {
    JISC_DCHECK(s < kMaxStreams);
    return StreamSet(1ULL << s);
  }

  static StreamSet Union(StreamSet a, StreamSet b) {
    return StreamSet(a.bits_ | b.bits_);
  }

  bool Contains(StreamId s) const { return (bits_ >> s) & 1ULL; }
  bool ContainsAll(StreamSet other) const {
    return (bits_ & other.bits_) == other.bits_;
  }
  bool Intersects(StreamSet other) const { return (bits_ & other.bits_) != 0; }
  bool empty() const { return bits_ == 0; }
  int size() const { return __builtin_popcountll(bits_); }
  uint64_t bits() const { return bits_; }

  // Streams in ascending id order.
  std::vector<StreamId> ToVector() const;

  // e.g. "{S0,S2,S5}".
  std::string ToString() const;

  friend bool operator==(StreamSet a, StreamSet b) {
    return a.bits_ == b.bits_;
  }
  friend bool operator<(StreamSet a, StreamSet b) { return a.bits_ < b.bits_; }

 private:
  uint64_t bits_;
};

struct StreamSetHash {
  size_t operator()(StreamSet s) const {
    return static_cast<size_t>(MixU64(s.bits()));
  }
};

// A tuple flowing through the pipeline: either a single base tuple or a join
// combination of several. Parts are kept sorted by stream id so that two
// combinations with the same base tuples compare equal regardless of the
// join order that produced them.
class Tuple {
 public:
  Tuple() = default;

  static Tuple FromBase(const BaseTuple& base, Stamp birth, bool fresh);

  // Joins two combinations over disjoint stream sets.
  // Freshness of the result: a combination is fresh iff the tuple that
  // drove its creation was fresh (callers pass it explicitly).
  static Tuple Concat(const Tuple& a, const Tuple& b, Stamp birth, bool fresh);

  // Rebuilds a combination from its base parts (checkpoint restore). Parts
  // must come from distinct streams; they are sorted internally.
  static Tuple FromParts(std::vector<BaseTuple> parts, Stamp birth);

  const std::vector<BaseTuple>& parts() const { return parts_; }
  StreamSet streams() const { return streams_; }
  // The shared equi-join attribute value. For equi-join plans every part
  // carries the same key; for theta plans this is the key of the first part
  // (unused by the nested-loops path).
  JoinKey key() const { return key_; }
  Stamp birth() const { return birth_; }
  bool fresh() const { return fresh_; }
  void set_fresh(bool fresh) { fresh_ = fresh; }
  void set_birth(Stamp birth) { birth_ = birth; }

  bool ContainsSeq(Seq seq) const;

  // Identity of the combination: hash over the ordered part sequence
  // numbers. Used for duplicate elimination (Parallel Track sink, JISC
  // completion dedup, reference comparison).
  uint64_t IdentityHash() const;

  // Total order / equality on identity (part seqs in stream order).
  friend bool operator==(const Tuple& a, const Tuple& b);

  std::string ToString() const;

 private:
  std::vector<BaseTuple> parts_;
  StreamSet streams_;
  JoinKey key_ = 0;
  Stamp birth_ = 0;
  bool fresh_ = true;
};

struct TupleIdentityHash {
  size_t operator()(const Tuple& t) const {
    return static_cast<size_t>(t.IdentityHash());
  }
};

}  // namespace jisc

#endif  // JISC_TYPES_TUPLE_H_
