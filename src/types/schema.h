#ifndef JISC_TYPES_SCHEMA_H_
#define JISC_TYPES_SCHEMA_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "types/tuple.h"

namespace jisc {

// Query-level description of the participating streams. Purely descriptive:
// stream names for diagnostics plus the name of the shared join attribute.
class Schema {
 public:
  Schema() = default;

  // Creates a schema with n streams named "S0".."S{n-1}".
  static Schema Synthetic(int num_streams);

  Status AddStream(std::string name);

  int num_streams() const { return static_cast<int>(names_.size()); }
  const std::string& stream_name(StreamId id) const { return names_[id]; }

  void set_join_attribute(std::string name) {
    join_attribute_ = std::move(name);
  }
  const std::string& join_attribute() const { return join_attribute_; }

  // "{S0,S2}" rendered with stream names, e.g. "{R,T}".
  std::string Render(StreamSet set) const;

 private:
  std::vector<std::string> names_;
  std::string join_attribute_ = "id";
};

}  // namespace jisc

#endif  // JISC_TYPES_SCHEMA_H_
