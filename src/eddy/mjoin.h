#ifndef JISC_EDDY_MJOIN_H_
#define JISC_EDDY_MJOIN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "eddy/stem.h"
#include "exec/sink.h"
#include "exec/stream_processor.h"
#include "stream/window.h"

namespace jisc {

// MJoin [Viglas et al.], the n-ary symmetric join the paper excludes from
// its binary-tree treatment (Section 2.1) but cites as the other
// state-avoidance design: ONE operator holds only the per-stream windows
// (SteMs); every arrival is joined across all other windows in the current
// probe order, with no intermediate state and no eddy round-tripping.
// Plan transitions just swap the probe order (free), at the price of
// recomputing all intermediate results for every tuple, forever — like
// CACQ but without the per-hop eddy overhead, which makes MJoin the
// strongest stateless baseline.
class MJoinExecutor : public StreamProcessor {
 public:
  MJoinExecutor(const LogicalPlan& plan, const WindowSpec& windows,
                Sink* sink);

  std::string name() const override { return "mjoin"; }
  void Push(const BaseTuple& tuple) override;
  Status RequestTransition(const LogicalPlan& new_plan) override;
  const Metrics& metrics() const override { return metrics_; }
  uint64_t StateMemory() const override;

  const std::vector<StreamId>& probe_order() const { return order_; }

 private:
  static StatusOr<std::vector<StreamId>> OrderOf(const LogicalPlan& plan);

  std::vector<std::unique_ptr<SteM>> stems_;  // by stream id
  std::vector<StreamId> order_;
  Sink* sink_;
  Metrics metrics_;
  Stamp next_stamp_ = 1;
};

}  // namespace jisc

#endif  // JISC_EDDY_MJOIN_H_
