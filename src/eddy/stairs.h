#ifndef JISC_EDDY_STAIRS_H_
#define JISC_EDDY_STAIRS_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "eddy/stem.h"
#include "exec/sink.h"
#include "exec/stream_processor.h"
#include "state/operator_state.h"
#include "stream/window.h"

namespace jisc {

// STAIRs [Deshpande, Hellerstein] (Sections 3.2 and 4.6): the eddy
// framework extended with intermediate state modules, so that — unlike
// CACQ — intermediate join results are materialized. Along the current
// routing order s1..sm the executor keeps one STAIR state per prefix
// {s1..sk}, k >= 2 (the full-prefix state doubles as the result state).
//
// Migration policy, per Section 4.6:
//  * kEager ("STAIRs = Moving State applied to eddies"): on a routing
//    change, every prefix state of the new order that does not exist yet is
//    recomputed at once via Promote/Demote of all its entries — execution
//    is blocked meanwhile.
//  * kLazyJisc: prefix states existing under the old order are kept
//    (Definition 1); missing ones start empty and are completed per value
//    on first probe, exactly like the pipelined JISC (a tuple probing an
//    incomplete STAIR is routed to the highest complete STAIR below it —
//    the on-demand Promote).
class StairsExecutor : public StreamProcessor {
 public:
  enum class MigrationPolicy { kEager, kLazyJisc };

  StairsExecutor(const LogicalPlan& plan, const WindowSpec& windows,
                 Sink* sink, MigrationPolicy policy);

  std::string name() const override {
    return policy_ == MigrationPolicy::kEager ? "stairs-eager" : "stairs-jisc";
  }
  void Push(const BaseTuple& tuple) override;
  Status RequestTransition(const LogicalPlan& new_plan) override;
  const Metrics& metrics() const override { return metrics_; }
  uint64_t StateMemory() const override;

  const std::vector<StreamId>& routing_order() const { return order_; }
  int num_incomplete() const;

 private:
  struct Stair {
    StreamSet streams;
    std::unique_ptr<OperatorState> state;
  };

  // Index of stream `s` in the current order.
  int PositionOf(StreamId s) const;
  // Ensures prefix state k (>= 2 streams) has entries for `v` (lazy
  // Promote); recursive down the prefix chain.
  void CompletePrefixForKey(size_t k, JoinKey v, Stamp p);
  // Eagerly recomputes prefix state k from prefix k-1 x SteM (Promote all).
  void MaterializePrefix(size_t k, Stamp stamp);
  void RemoveExpired(const BaseTuple& expired, Stamp stamp);

  MigrationPolicy policy_;
  std::vector<std::unique_ptr<SteM>> stems_;  // by stream id
  std::vector<StreamId> order_;
  // prefix_[k]: state over {order_[0..k]} for k >= 1 (index 0 unused).
  std::vector<Stair> prefix_;
  Stamp incomplete_since_ = 0;
  Seq boundary_seq_ = 0;       // lazy mode: pre-transition tuples predate it
  Seq max_seq_seen_ = 0;
  uint64_t pushes_since_check_ = 0;
  Sink* sink_;
  Metrics metrics_;
  Stamp next_stamp_ = 1;
};

}  // namespace jisc

#endif  // JISC_EDDY_STAIRS_H_
