#include "eddy/stem.h"

#include "common/logging.h"

namespace jisc {

SteM::SteM(StreamId stream, uint64_t window_size, WindowSpec::Mode mode)
    : stream_(stream),
      window_size_(window_size),
      mode_(mode),
      state_(StreamSet::Single(stream), StateIndex::kHash) {
  JISC_CHECK(window_size_ >= 1);
}

Seq SteM::OldestLiveSeq() const {
  if (window_.empty()) return kStampInfinity;
  return window_.front().seq;
}

std::vector<BaseTuple> SteM::Insert(const BaseTuple& base, Stamp stamp) {
  JISC_DCHECK(base.stream == stream_);
  std::vector<BaseTuple> expired;
  auto expire_front = [&]() {
    BaseTuple oldest = window_.front();
    window_.pop_front();
    state_.RemoveContaining(oldest.seq, oldest.key, stamp, nullptr);
    expired.push_back(oldest);
  };
  if (mode_ == WindowSpec::Mode::kCount) {
    if (window_.size() >= window_size_) expire_front();
  } else {
    while (!window_.empty() &&
           window_.front().ts + window_size_ <= base.ts) {
      expire_front();
    }
  }
  window_.push_back(base);
  state_.Insert(Tuple::FromBase(base, stamp, true), stamp);
  return expired;
}

void SteM::Probe(JoinKey key, Stamp p, std::vector<Tuple>* out) const {
  state_.CollectMatches(key, p, out);
}

void SteM::ProbePtrs(JoinKey key, Stamp p,
                     std::vector<const Tuple*>* out) const {
  state_.CollectMatchPtrs(key, p, out);
}

}  // namespace jisc
