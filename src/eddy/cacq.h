#ifndef JISC_EDDY_CACQ_H_
#define JISC_EDDY_CACQ_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "eddy/stem.h"
#include "exec/sink.h"
#include "exec/stream_processor.h"
#include "stream/window.h"

namespace jisc {

// CACQ [Madden et al.] as characterized in Section 3.1: an eddy routing
// tuples through per-stream SteMs with *no* intermediate state. Every
// arrival is joined across all other SteMs; each partial result returns to
// the eddy between probes (counted in metrics.eddy_visits — this round
// tripping is what halves CACQ's throughput versus a pipeline). A plan
// transition merely changes the routing order: zero migration cost, but
// intermediate results are recomputed for every tuple, forever.
class CacqExecutor : public StreamProcessor {
 public:
  // How the eddy picks the next SteM for a tuple.
  enum class RoutingPolicy {
    kFixedPriority,  // the current plan's join order (deterministic)
    kLottery,        // ticket-based lottery [Avnur & Hellerstein]: SteMs
                     // that disqualify tuples quickly (selective ones)
                     // accumulate tickets and get routed to earlier
  };

  CacqExecutor(const LogicalPlan& plan, const WindowSpec& windows,
               Sink* sink, RoutingPolicy policy);
  CacqExecutor(const LogicalPlan& plan, const WindowSpec& windows,
               Sink* sink);

  std::string name() const override { return "cacq"; }
  void Push(const BaseTuple& tuple) override;
  Status RequestTransition(const LogicalPlan& new_plan) override;
  const Metrics& metrics() const override { return metrics_; }
  uint64_t StateMemory() const override;

  const std::vector<StreamId>& routing_order() const { return order_; }
  uint64_t tickets(StreamId s) const { return tickets_[s]; }

 private:
  static StatusOr<std::vector<StreamId>> OrderOf(const LogicalPlan& plan);
  // Routing decision: the next SteM for an item that still owes `done`'s
  // complement.
  StreamId PickTarget(StreamSet done);

  RoutingPolicy policy_ = RoutingPolicy::kFixedPriority;
  std::vector<std::unique_ptr<SteM>> stems_;  // indexed by stream id
  std::vector<StreamId> order_;               // current routing priority
  std::vector<uint64_t> tickets_;             // lottery weights by stream
  Rng rng_{0xeddca11};
  Sink* sink_;
  Metrics metrics_;
  Stamp next_stamp_ = 1;
};

}  // namespace jisc

#endif  // JISC_EDDY_CACQ_H_
