#include "eddy/cacq.h"

#include "common/logging.h"
#include "exec/validate.h"

namespace jisc {

StatusOr<std::vector<StreamId>> CacqExecutor::OrderOf(
    const LogicalPlan& plan) {
  for (int id = 0; id < plan.num_nodes(); ++id) {
    OpKind k = plan.node(id).kind;
    if (k != OpKind::kScan && k != OpKind::kHashJoin &&
        k != OpKind::kNljJoin) {
      return Status::InvalidArgument(
          "eddy executors support join plans only");
    }
  }
  if (plan.IsLeftDeep()) return plan.LeftDeepOrder();
  // For a bushy plan the eddy uses any linearization; take streams in
  // ascending id order of the leaves.
  return plan.streams().ToVector();
}

CacqExecutor::CacqExecutor(const LogicalPlan& plan, const WindowSpec& windows,
                           Sink* sink, RoutingPolicy policy)
    : policy_(policy), sink_(sink) {
  auto order = OrderOf(plan);
  JISC_CHECK(order.ok());
  order_ = order.value();
  stems_.resize(static_cast<size_t>(windows.num_streams()));
  tickets_.assign(static_cast<size_t>(windows.num_streams()), 1);
  for (StreamId s : order_) {
    stems_[s] = std::make_unique<SteM>(s, windows.SizeFor(s),
                                       windows.mode());
  }
}

CacqExecutor::CacqExecutor(const LogicalPlan& plan, const WindowSpec& windows,
                           Sink* sink)
    : CacqExecutor(plan, windows, sink, RoutingPolicy::kFixedPriority) {}

StreamId CacqExecutor::PickTarget(StreamSet done) {
  if (policy_ == RoutingPolicy::kFixedPriority) {
    for (StreamId s : order_) {
      if (!done.Contains(s)) return s;
    }
    JISC_CHECK(false) << "no remaining stream to route to";
  }
  // Lottery: draw among the remaining SteMs proportionally to tickets.
  uint64_t total = 0;
  for (StreamId s : order_) {
    if (!done.Contains(s)) total += tickets_[s];
  }
  JISC_CHECK(total > 0);
  uint64_t draw = rng_.UniformU64(total);
  for (StreamId s : order_) {
    if (done.Contains(s)) continue;
    if (draw < tickets_[s]) return s;
    draw -= tickets_[s];
  }
  JISC_CHECK(false) << "lottery draw out of range";
  return order_.front();
}

void CacqExecutor::Push(const BaseTuple& tuple) {
  Stamp stamp = next_stamp_++;
  ++metrics_.arrivals;
  SteM* own = stems_[tuple.stream].get();
  JISC_CHECK(own != nullptr);
  own->Insert(tuple, stamp);
  ++metrics_.inserts;

  // The eddy proper: every (partial) tuple returns to the eddy between
  // probes, carrying a done-mask of the SteMs it has already joined across
  // (the CACQ per-tuple bit-vector). The eddy's routing decision picks the
  // first not-yet-done stream in the current priority order.
  struct EddyItem {
    Tuple tuple;
    StreamSet done;
  };
  std::deque<EddyItem> eddy;
  eddy.push_back(EddyItem{Tuple::FromBase(tuple, stamp, true),
                          StreamSet::Single(tuple.stream)});
  StreamSet all = StreamSet();
  for (StreamId s : order_) all = StreamSet::Union(all, StreamSet::Single(s));
  while (!eddy.empty()) {
    EddyItem item = std::move(eddy.front());
    eddy.pop_front();
    ++metrics_.eddy_visits;
    if (item.done == all) {
      // Emerges as output.
      ++metrics_.outputs;
      if (sink_ != nullptr) sink_->OnOutput(item.tuple, stamp);
      continue;
    }
    StreamId target = PickTarget(item.done);
    ++metrics_.probes;
    std::vector<const Tuple*> matches;
    stems_[target]->ProbePtrs(item.tuple.key(), stamp, &matches);
    metrics_.probe_entries += matches.size();
    metrics_.matches += matches.size();
    StreamSet done = StreamSet::Union(item.done, StreamSet::Single(target));
    for (const Tuple* m : matches) {
      eddy.push_back(
          EddyItem{Tuple::Concat(item.tuple, *m, stamp, true), done});
    }
    if (policy_ == RoutingPolicy::kLottery) {
      // Feedback: a SteM that disqualified the item is selective and earns
      // a ticket (route to it earlier next time); cap to avoid starvation.
      if (matches.empty() && tickets_[target] < 1024) ++tickets_[target];
    }
    // No matches: the tuple disqualifies and leaves the eddy.
  }
}

uint64_t CacqExecutor::StateMemory() const {
  uint64_t bytes = 0;
  for (const auto& stem : stems_) {
    if (stem != nullptr) bytes += StateBytes(stem->state());
  }
  return bytes;
}

Status CacqExecutor::RequestTransition(const LogicalPlan& new_plan) {
  Status valid = new_plan.Validate();
  if (!valid.ok()) return valid;
  auto order = OrderOf(new_plan);
  if (!order.ok()) return order.status();
  for (StreamId s : order.value()) {
    if (s >= stems_.size() || stems_[s] == nullptr) {
      return Status::InvalidArgument("plan references unknown stream");
    }
  }
  // No state to migrate: the eddy simply routes by the new order.
  order_ = std::move(order).value();
  return Status::Ok();
}

}  // namespace jisc
