#include "eddy/mjoin.h"

#include "common/logging.h"
#include "exec/validate.h"

namespace jisc {

StatusOr<std::vector<StreamId>> MJoinExecutor::OrderOf(
    const LogicalPlan& plan) {
  for (int id = 0; id < plan.num_nodes(); ++id) {
    OpKind k = plan.node(id).kind;
    if (k != OpKind::kScan && k != OpKind::kHashJoin) {
      return Status::InvalidArgument("MJoin supports equi-join plans only");
    }
  }
  if (plan.IsLeftDeep()) return plan.LeftDeepOrder();
  return plan.streams().ToVector();
}

MJoinExecutor::MJoinExecutor(const LogicalPlan& plan,
                             const WindowSpec& windows, Sink* sink)
    : sink_(sink) {
  auto order = OrderOf(plan);
  JISC_CHECK(order.ok());
  order_ = order.value();
  stems_.resize(static_cast<size_t>(windows.num_streams()));
  for (StreamId s : order_) {
    stems_[s] = std::make_unique<SteM>(s, windows.SizeFor(s),
                                       windows.mode());
  }
}

uint64_t MJoinExecutor::StateMemory() const {
  uint64_t bytes = 0;
  for (const auto& stem : stems_) {
    if (stem != nullptr) bytes += StateBytes(stem->state());
  }
  return bytes;
}

void MJoinExecutor::Push(const BaseTuple& tuple) {
  Stamp stamp = next_stamp_++;
  ++metrics_.arrivals;
  SteM* own = stems_[tuple.stream].get();
  JISC_CHECK(own != nullptr);
  own->Insert(tuple, stamp);
  ++metrics_.inserts;

  // Single n-ary probe chain: extend the arrival across every other window
  // in the current probe order. No intermediate state is kept and nothing
  // returns to a coordinator between probes.
  std::vector<Tuple> frontier{Tuple::FromBase(tuple, stamp, true)};
  std::vector<Tuple> next;
  for (StreamId s : order_) {
    if (s == tuple.stream) continue;
    if (frontier.empty()) break;
    next.clear();
    for (const Tuple& t : frontier) {
      ++metrics_.probes;
      std::vector<const Tuple*> matches;
      stems_[s]->ProbePtrs(t.key(), stamp, &matches);
      metrics_.probe_entries += matches.size();
      metrics_.matches += matches.size();
      for (const Tuple* m : matches) {
        next.push_back(Tuple::Concat(t, *m, stamp, true));
      }
    }
    frontier.swap(next);
  }
  for (const Tuple& out : frontier) {
    ++metrics_.outputs;
    if (sink_ != nullptr) sink_->OnOutput(out, stamp);
  }
}

Status MJoinExecutor::RequestTransition(const LogicalPlan& new_plan) {
  Status valid = new_plan.Validate();
  if (!valid.ok()) return valid;
  auto order = OrderOf(new_plan);
  if (!order.ok()) return order.status();
  for (StreamId s : order.value()) {
    if (s >= stems_.size() || stems_[s] == nullptr) {
      return Status::InvalidArgument("plan references unknown stream");
    }
  }
  order_ = std::move(order).value();
  return Status::Ok();
}

}  // namespace jisc
