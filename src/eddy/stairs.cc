#include "eddy/stairs.h"

#include <algorithm>

#include "common/logging.h"
#include "exec/validate.h"

namespace jisc {

StairsExecutor::StairsExecutor(const LogicalPlan& plan,
                               const WindowSpec& windows, Sink* sink,
                               MigrationPolicy policy)
    : policy_(policy), sink_(sink) {
  auto order = plan.LeftDeepOrder();
  JISC_CHECK(order.ok()) << "STAIRs executor expects a left-deep plan";
  order_ = order.value();
  stems_.resize(static_cast<size_t>(windows.num_streams()));
  for (StreamId s : order_) {
    stems_[s] = std::make_unique<SteM>(s, windows.SizeFor(s),
                                       windows.mode());
  }
  prefix_.resize(order_.size());
  StreamSet acc = StreamSet::Single(order_[0]);
  for (size_t k = 1; k < order_.size(); ++k) {
    acc = StreamSet::Union(acc, StreamSet::Single(order_[k]));
    prefix_[k].streams = acc;
    prefix_[k].state = std::make_unique<OperatorState>(acc, StateIndex::kHash);
  }
}

uint64_t StairsExecutor::StateMemory() const {
  uint64_t bytes = 0;
  for (const auto& stem : stems_) {
    if (stem != nullptr) bytes += StateBytes(stem->state());
  }
  for (size_t k = 1; k < prefix_.size(); ++k) {
    if (prefix_[k].state != nullptr) bytes += StateBytes(*prefix_[k].state);
  }
  return bytes;
}

int StairsExecutor::PositionOf(StreamId s) const {
  for (size_t i = 0; i < order_.size(); ++i) {
    if (order_[i] == s) return static_cast<int>(i);
  }
  return -1;
}

int StairsExecutor::num_incomplete() const {
  int n = 0;
  for (size_t k = 1; k < prefix_.size(); ++k) {
    if (!prefix_[k].state->complete()) ++n;
  }
  return n;
}

void StairsExecutor::RemoveExpired(const BaseTuple& expired, Stamp stamp) {
  int pos = PositionOf(expired.stream);
  JISC_CHECK(pos >= 0);
  // Every prefix state from the stream's position upward may hold
  // combinations with the expired tuple. Incomplete states are scrubbed
  // unconditionally (the Section 4.2 rule: no early stop below a
  // materialized ancestor).
  for (size_t k = std::max(pos, 1); k < prefix_.size(); ++k) {
    int n = prefix_[k].state->RemoveContaining(expired.seq, expired.key,
                                               stamp, nullptr);
    metrics_.removals += static_cast<uint64_t>(n);
  }
}

void StairsExecutor::CompletePrefixForKey(size_t k, JoinKey v, Stamp p) {
  OperatorState& st = *prefix_[k].state;
  if (st.complete() || st.IsKeyCompleted(v)) return;
  std::vector<Tuple> left;
  if (k == 1) {
    stems_[order_[0]]->Probe(v, p, &left);
  } else {
    CompletePrefixForKey(k - 1, v, p);
    prefix_[k - 1].state->CollectMatches(v, p, &left);
  }
  std::vector<Tuple> right;
  stems_[order_[k]]->Probe(v, p, &right);
  metrics_.probe_entries += left.size() + right.size();
  for (const Tuple& l : left) {
    for (const Tuple& r : right) {
      Tuple combo = Tuple::Concat(l, r, incomplete_since_, false);
      if (st.Insert(combo, incomplete_since_, /*dedup=*/true)) {
        ++metrics_.completion_inserts;
      } else {
        ++metrics_.completion_dedup_hits;
      }
    }
  }
  st.MarkKeyCompleted(v);
  ++metrics_.completions;
}

void StairsExecutor::MaterializePrefix(size_t k, Stamp stamp) {
  OperatorState& st = *prefix_[k].state;
  st.Clear();
  auto insert_cross = [&](const OperatorState& left, SteM* right) {
    left.ForEachLive([&](const Tuple& l) {
      std::vector<Tuple> rs;
      right->state().CollectLiveByKey(l.key(), &rs);
      metrics_.probe_entries += rs.size() + 1;
      for (const Tuple& r : rs) {
        st.Insert(Tuple::Concat(l, r, stamp, false), stamp);
        ++metrics_.inserts;
      }
    });
  };
  if (k == 1) {
    insert_cross(stems_[order_[0]]->state(), stems_[order_[1]].get());
  } else {
    insert_cross(*prefix_[k - 1].state, stems_[order_[k]].get());
  }
  st.MarkComplete();
}

void StairsExecutor::Push(const BaseTuple& tuple) {
  Stamp stamp = next_stamp_++;
  ++metrics_.arrivals;
  max_seq_seen_ = std::max(max_seq_seen_, tuple.seq);
  // Lazy completion detection: once every pre-transition tuple has expired
  // from every SteM, all still-incomplete prefix STAIRs are trivially
  // complete (window turnover).
  if (boundary_seq_ > 0 && ++pushes_since_check_ >= 256) {
    pushes_since_check_ = 0;
    bool turned_over = true;
    for (StreamId s : order_) {
      if (stems_[s]->fill() > 0 && stems_[s]->OldestLiveSeq() < boundary_seq_) {
        turned_over = false;
        break;
      }
    }
    if (turned_over) {
      for (size_t k = 1; k < prefix_.size(); ++k) {
        if (!prefix_[k].state->complete()) prefix_[k].state->MarkComplete();
      }
      boundary_seq_ = 0;
      incomplete_since_ = 0;
    }
  }
  SteM* own = stems_[tuple.stream].get();
  JISC_CHECK(own != nullptr);
  std::vector<BaseTuple> expired = own->Insert(tuple, stamp);
  ++metrics_.inserts;
  for (const BaseTuple& e : expired) RemoveExpired(e, stamp);

  int pos = PositionOf(tuple.stream);
  JISC_CHECK(pos >= 0);
  size_t m = order_.size();

  std::vector<Tuple> frontier;
  Tuple seed = Tuple::FromBase(tuple, stamp, true);
  size_t next_level;
  if (pos <= 1) {
    // Bottom pair: probe the sibling SteM directly.
    ++metrics_.eddy_visits;
    ++metrics_.probes;
    std::vector<Tuple> matches;
    stems_[order_[pos == 0 ? 1 : 0]]->Probe(seed.key(), stamp, &matches);
    metrics_.probe_entries += matches.size();
    metrics_.matches += matches.size();
    for (const Tuple& match : matches) {
      Tuple combo = Tuple::Concat(seed, match, stamp, true);
      prefix_[1].state->Insert(combo, stamp);
      ++metrics_.inserts;
      frontier.push_back(std::move(combo));
    }
    next_level = 2;
  } else {
    // Probe the prefix STAIR below this stream's position; complete it on
    // demand under the lazy policy (the on-demand Promote of Section 4.6).
    OperatorState& below = *prefix_[static_cast<size_t>(pos) - 1].state;
    if (!below.complete() && policy_ == MigrationPolicy::kLazyJisc) {
      CompletePrefixForKey(static_cast<size_t>(pos) - 1, seed.key(), stamp);
    }
    ++metrics_.eddy_visits;
    ++metrics_.probes;
    std::vector<Tuple> matches;
    below.CollectMatches(seed.key(), stamp, &matches);
    metrics_.probe_entries += matches.size();
    metrics_.matches += matches.size();
    for (const Tuple& match : matches) {
      Tuple combo = Tuple::Concat(seed, match, stamp, true);
      prefix_[static_cast<size_t>(pos)].state->Insert(combo, stamp);
      ++metrics_.inserts;
      frontier.push_back(std::move(combo));
    }
    next_level = static_cast<size_t>(pos) + 1;
  }
  for (size_t k = next_level; k < m && !frontier.empty(); ++k) {
    std::vector<Tuple> next;
    for (const Tuple& t : frontier) {
      ++metrics_.eddy_visits;
      ++metrics_.probes;
      std::vector<Tuple> matches;
      stems_[order_[k]]->Probe(t.key(), stamp, &matches);
      metrics_.probe_entries += matches.size();
      metrics_.matches += matches.size();
      for (const Tuple& match : matches) {
        Tuple combo = Tuple::Concat(t, match, stamp, true);
        prefix_[k].state->Insert(combo, stamp);
        ++metrics_.inserts;
        next.push_back(std::move(combo));
      }
    }
    frontier = std::move(next);
  }
  for (const Tuple& out : frontier) {
    ++metrics_.outputs;
    if (sink_ != nullptr) sink_->OnOutput(out, stamp);
  }
}

Status StairsExecutor::RequestTransition(const LogicalPlan& new_plan) {
  Status valid = new_plan.Validate();
  if (!valid.ok()) return valid;
  auto order = new_plan.LeftDeepOrder();
  if (!order.ok()) return order.status();
  for (StreamId s : order.value()) {
    if (s >= stems_.size() || stems_[s] == nullptr) {
      return Status::InvalidArgument("plan references unknown stream");
    }
  }
  Stamp stamp = next_stamp_++;

  // Definition 1 over the prefix states: reuse matching stream sets,
  // keeping their completeness (Section 4.5).
  std::vector<Stair> old = std::move(prefix_);
  order_ = std::move(order).value();
  prefix_.clear();
  prefix_.resize(order_.size());
  StreamSet acc = StreamSet::Single(order_[0]);
  for (size_t k = 1; k < order_.size(); ++k) {
    acc = StreamSet::Union(acc, StreamSet::Single(order_[k]));
    prefix_[k].streams = acc;
    for (auto& o : old) {
      if (o.state != nullptr && o.streams == acc) {
        prefix_[k].state = std::move(o.state);
        break;
      }
    }
    if (prefix_[k].state == nullptr) {
      prefix_[k].state =
          std::make_unique<OperatorState>(acc, StateIndex::kHash);
      prefix_[k].state->MarkIncomplete();
    } else {
      prefix_[k].state->VacuumDirty();
    }
  }
  if (policy_ == MigrationPolicy::kEager) {
    // Promote/Demote everything now (Moving State applied to eddies):
    // execution is halted until all prefix states are materialized.
    for (size_t k = 1; k < prefix_.size(); ++k) {
      if (!prefix_[k].state->complete()) MaterializePrefix(k, stamp);
    }
  } else {
    incomplete_since_ =
        incomplete_since_ == 0 ? stamp : std::min(incomplete_since_, stamp);
    boundary_seq_ = max_seq_seen_ + 1;
  }
  return Status::Ok();
}

}  // namespace jisc
