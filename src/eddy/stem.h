#ifndef JISC_EDDY_STEM_H_
#define JISC_EDDY_STEM_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "state/operator_state.h"
#include "stream/window.h"
#include "types/tuple.h"

namespace jisc {

// A State Module [Raman et al.]: the per-stream hash state used by the
// eddy-based executors (Section 3.1). Holds the stream's live window
// tuples; probes are by join-attribute value with the engine's stamp
// visibility rule.
class SteM {
 public:
  SteM(StreamId stream, uint64_t window_size,
       WindowSpec::Mode mode = WindowSpec::Mode::kCount);

  SteM(const SteM&) = delete;
  SteM& operator=(const SteM&) = delete;

  StreamId stream() const { return stream_; }
  uint64_t window_size() const { return window_size_; }
  size_t fill() const { return window_.size(); }
  Seq OldestLiveSeq() const;

  // Inserts an arrival; returns the displaced (expired) tuples when the
  // window slides (count mode: at most one; time mode: possibly several).
  std::vector<BaseTuple> Insert(const BaseTuple& base, Stamp stamp);

  // Entries with `key` visible to a probe at stamp p.
  void Probe(JoinKey key, Stamp p, std::vector<Tuple>* out) const;
  // Pointer flavor (no copies); valid until the next mutation.
  void ProbePtrs(JoinKey key, Stamp p, std::vector<const Tuple*>* out) const;

  const OperatorState& state() const { return state_; }
  OperatorState& state() { return state_; }

 private:
  StreamId stream_;
  uint64_t window_size_;
  WindowSpec::Mode mode_;
  OperatorState state_;
  std::deque<BaseTuple> window_;
};

}  // namespace jisc

#endif  // JISC_EDDY_STEM_H_
