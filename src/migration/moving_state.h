#ifndef JISC_MIGRATION_MOVING_STATE_H_
#define JISC_MIGRATION_MOVING_STATE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/engine.h"
#include "core/migration_strategy.h"

namespace jisc {

// The Moving State Strategy [Zhu, Rundensteiner, Heineman; SIGMOD'04]
// (Section 3.2): on transition the execution halts, states present in both
// plans are moved, and every missing state of the new plan is eagerly
// computed bottom-up before execution resumes. Correct and simple, but the
// eager computation happens entirely inside Migrate(), so the query
// produces no output for its duration — the latency the paper's Fig. 10
// measures.
class MovingStateStrategy : public MigrationStrategy {
 public:
  MovingStateStrategy() = default;

  std::string name() const override { return "moving-state"; }
  Status Migrate(Engine* engine, const LogicalPlan& new_plan) override;

  // Work metrics of the most recent migration (state matching + computing).
  uint64_t last_migration_inserts() const { return last_inserts_; }

 private:
  uint64_t last_inserts_ = 0;
};

std::unique_ptr<MigrationStrategy> MakeMovingStateStrategy();

}  // namespace jisc

#endif  // JISC_MIGRATION_MOVING_STATE_H_
