#ifndef JISC_MIGRATION_PARALLEL_TRACK_H_
#define JISC_MIGRATION_PARALLEL_TRACK_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/migration_strategy.h"
#include "exec/pipeline_executor.h"
#include "exec/sink.h"
#include "exec/stream_processor.h"

namespace jisc {

// The Parallel Track Strategy [Zhu, Rundensteiner, Heineman; SIGMOD'04]
// (Section 3.3): on transition the new plan starts with empty states and
// runs *alongside* the old plan; every new tuple is processed by both (the
// 50% throughput drop), a duplicate-eliminating sink merges the outputs,
// and the old plan is discarded once its states contain only
// post-transition tuples — detected by the periodic state scan the paper
// calls out as costly.
//
// Overlapped transitions (Section 3.3, last bullet): each further
// transition adds another live plan; all of them process every tuple until
// the older ones are purged.
class ParallelTrackProcessor : public StreamProcessor {
 public:
  struct Options {
    PipelineExecutor::Options exec;
    // Events between purge-detection scans of the oldest plan's states.
    // The paper describes frequent per-operator checks ("repeated until the
    // old plan is discarded") whose cost it calls significant; 32 events
    // between full-state scans reflects that aggressive regime.
    uint64_t purge_check_period = 32;
    // Observability bundle (nullptr = off); see obs/observability.h.
    Observability* obs = nullptr;
    int obs_track = 0;
    // Accepted for configuration uniformity but degenerate here: Parallel
    // Track carries no state across a transition (the new plan starts
    // empty and the old plans cover the gap until purged), so there is no
    // carryover backlog for a fluid drain to batch. A fluid-configured run
    // behaves exactly like an all-at-once one.
    FluidOptions fluid;
  };

  ParallelTrackProcessor(const LogicalPlan& plan, const WindowSpec& windows,
                         Sink* sink, Options options);
  ParallelTrackProcessor(const LogicalPlan& plan, const WindowSpec& windows,
                         Sink* sink);

  std::string name() const override { return "parallel-track"; }
  void Push(const BaseTuple& tuple) override;
  Status RequestTransition(const LogicalPlan& new_plan) override;
  const Metrics& metrics() const override { return metrics_; }
  uint64_t StateMemory() const override;

  // True while more than one plan is live (the migration stage).
  bool migrating() const { return plans_.size() > 1; }
  size_t num_live_plans() const { return plans_.size(); }

 private:
  void CheckDiscard();

  WindowSpec windows_;
  Options options_;
  Metrics metrics_;
  // Delay sink sits between dedup elimination and the user sink, so each
  // output's delay covers the full per-event work across all live plans.
  OutputDelaySink obs_sink_;
  DedupSink dedup_;
  std::vector<std::unique_ptr<PipelineExecutor>> plans_;
  // boundaries_[i]: first sequence number admitted after plans_[i] started.
  // plans_[0] is discardable when no live tuple predates boundaries_[1].
  std::vector<Seq> boundaries_;
  Stamp next_stamp_ = 1;
  Seq max_seq_seen_ = 0;
  uint64_t events_since_check_ = 0;
};

}  // namespace jisc

#endif  // JISC_MIGRATION_PARALLEL_TRACK_H_
