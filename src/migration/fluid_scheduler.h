#ifndef JISC_MIGRATION_FLUID_SCHEDULER_H_
#define JISC_MIGRATION_FLUID_SCHEDULER_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/jisc_runtime.h"
#include "core/migration_strategy.h"
#include "exec/metrics.h"
#include "obs/trace.h"

namespace jisc {

// Fluid migration: instead of completing all missing state inside the
// transition (all-at-once), the post-transition backlog is drained in
// bounded per-value batches scheduled between tuple waves. Each batch is
// budgeted in deterministic work units derived from the configured
// output-delay budget, so no single event is stalled behind more than one
// budget's worth of completion work; the scheduler yields (back to tuple
// processing) as soon as a batch's budget is spent.

// Deterministic work-unit budget per microsecond of configured delay
// budget. Work units (Metrics::WorkUnits) are the repo's machine-
// independent "running time" proxy; this constant is the single documented
// conversion point between the user-facing microsecond knob and the
// unit-denominated batch budget. Calibration is coarse by design — the
// budget exists to bound and equalize batch sizes deterministically, not to
// promise wall-clock accuracy.
inline constexpr uint64_t kFluidWorkUnitsPerUs = 25;

// Magic prefix of a serialized fluid migration blob ("JISCFDM1").
inline constexpr uint64_t kFluidBlobMagic = 0x4a49534346444d31ull;

// Budget accounting and batch-loop driver, shared by every fluid-capable
// strategy. Deliberately strategy-agnostic: the owner supplies a step
// callback that completes one backlog item (returning false when the
// backlog is empty) and a backlog probe for the yield telemetry.
class FluidScheduler {
 public:
  struct Stats {
    uint64_t batches = 0;       // RunBatch calls that ran at least one item
    uint64_t items = 0;         // backlog items completed
    uint64_t units = 0;         // work units spent across all batches
    uint64_t yields = 0;        // batches that ended with backlog remaining
    uint64_t max_batch_items = 0;
    uint64_t max_batch_units = 0;
    uint64_t max_item_units = 0;  // costliest single item
    // Batches whose spend had already reached the budget before their final
    // item started — impossible by construction (the loop stops after the
    // first item that crosses the budget), so tests assert this stays 0.
    uint64_t overruns = 0;
  };

  explicit FluidScheduler(FluidOptions options) : options_(options) {}

  const FluidOptions& options() const { return options_; }

  // The per-batch work-unit budget (>= 1 so a batch always makes progress).
  uint64_t BudgetUnits() const {
    uint64_t units = options_.delay_budget_us * kFluidWorkUnitsPerUs;
    return units == 0 ? 1 : units;
  }

  // Runs one batch: repeatedly invokes `step` until the backlog is empty,
  // `batch_keys` items were completed, or the work-unit spend (measured on
  // `metrics`) reaches BudgetUnits(). Records a "fluid-batch" trace span
  // and, when yielding with work left, a "fluid-yield" instant (both no-ops
  // when `rec` is null). Returns the number of items completed.
  uint64_t RunBatch(Metrics* metrics, TraceRecorder* rec, int track,
                    const std::function<bool()>& step,
                    const std::function<uint64_t()>& backlog);

  const Stats& stats() const { return stats_; }

 private:
  FluidOptions options_;
  Stats stats_;
};

// JISC with fluid draining: decorates a JiscRuntime so the lazy-migration
// backlog (every value the transition left incomplete) is ALSO completed
// proactively, in budgeted batches the engine schedules between events.
// On-probe completion stays active throughout, so correctness never depends
// on the drain; the drain only bounds how long incomplete state lingers.
//
// With JiscOptions::eager_charging this same class is the fluid Moving
// State mode: batches charge the eager counter profile and the drained key
// sets mirror what the eager pass would have materialized, so a fluid run's
// deterministic counters reproduce the all-at-once eager run's exactly.
//
// Backlog order is canonical (node ids children-first, values sorted), so
// two runs with the same feed drain identically.
class FluidJiscStrategy : public MigrationStrategy {
 public:
  FluidJiscStrategy(JiscOptions jisc, FluidOptions fluid)
      : inner_(jisc), scheduler_(fluid) {}

  // --- MigrationStrategy (forwarded to the inner runtime) ---
  std::string name() const override { return inner_.name(); }
  Status Migrate(Engine* engine, const LogicalPlan& new_plan) override;
  CompletionHandler* handler() override { return inner_.handler(); }
  void Maintain(Engine* engine) override { inner_.Maintain(engine); }
  void OnArrival(Engine* engine, const BaseTuple& base,
                 Stamp stamp) override {
    inner_.OnArrival(engine, base, stamp);
  }

  // --- fluid draining (called by the engine between events) ---
  uint64_t FluidBacklog() override;
  void RunFluidBatch(Engine* engine, Stamp stamp) override;

  // --- mid-migration checkpoints ---
  bool HasMigrationState() const override {
    return inner_.num_incomplete() > 0;
  }
  std::string SerializeMigrationState() const override;
  Status RestoreMigrationState(Engine* engine,
                               const std::string& bytes) override;

  // --- introspection (tests, benches) ---
  const FluidScheduler& scheduler() const { return scheduler_; }
  const JiscRuntime& runtime() const { return inner_; }

 private:
  // Resets the drain ledger from the inner runtime's incomplete states.
  void RebuildLedger();
  // Advances to the next op with remaining work; false when drained.
  bool EnsureCursor(Engine* engine);
  // Completes one backlog item; false when the backlog is empty.
  bool Step(Engine* engine, Stamp stamp);
  void PopOp();

  JiscRuntime inner_;
  FluidScheduler scheduler_;
  // Drain ledger: incomplete node ids (children first); the front op's
  // remaining values in cur_keys_[cur_index_..] once its cursor is built.
  std::deque<int> ops_;
  bool cursor_built_ = false;
  bool cursor_is_list_ = false;
  std::vector<JoinKey> cur_keys_;
  size_t cur_index_ = 0;
};

// Fluid-mode strategy factory. `jisc` selects the charging profile:
// default options give fluid JISC; eager_charging (+ display_name
// "moving-state") gives the fluid Moving State mode.
std::unique_ptr<MigrationStrategy> MakeFluidStrategy(JiscOptions jisc,
                                                     FluidOptions fluid);

}  // namespace jisc

#endif  // JISC_MIGRATION_FLUID_SCHEDULER_H_
