#ifndef JISC_MIGRATION_STATE_MATERIALIZER_H_
#define JISC_MIGRATION_STATE_MATERIALIZER_H_

#include "exec/metrics.h"
#include "exec/operator.h"
#include "types/tuple.h"

namespace jisc {

// Eagerly computes the state of `op` from its children's (complete, live)
// states — the "state computing" step of the Moving State Strategy [4].
// The children must already be materialized; callers process nodes
// bottom-up. Entries are inserted at `stamp` and the state is marked
// complete. The work performed is charged to `metrics` (this is the cost
// that produces the Moving State output latency of Fig. 10).
void MaterializeStateEagerly(Operator* op, Stamp stamp, Metrics* metrics);

}  // namespace jisc

#endif  // JISC_MIGRATION_STATE_MATERIALIZER_H_
