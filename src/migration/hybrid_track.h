#ifndef JISC_MIGRATION_HYBRID_TRACK_H_
#define JISC_MIGRATION_HYBRID_TRACK_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/hash.h"
#include "core/migration_strategy.h"
#include "exec/pipeline_executor.h"
#include "exec/sink.h"
#include "exec/stream_processor.h"
#include "migration/fluid_scheduler.h"

namespace jisc {

// The hybrid migration family the paper's Section 3.3 cites ([5, 6]):
// Parallel Track shortened by Moving-State-style state matching. On a
// transition the new plan does NOT start empty — every state it shares with
// the old plan is deep-copied into it — so the new plan produces a larger
// share of the results from the start and the migration stage is shorter
// than plain Parallel Track's. Everything else is inherited from Parallel
// Track, drawbacks included (the paper's point): every tuple is still
// processed by every live plan, the duplicate-eliminating sink still runs,
// and the periodic purge scans still decide when the old plan dies.
class HybridTrackProcessor : public StreamProcessor {
 public:
  struct Options {
    PipelineExecutor::Options exec;
    // Events between purge-detection scans of the oldest plan's states.
    uint64_t purge_check_period = 32;
    // Observability bundle (nullptr = off); see obs/observability.h.
    Observability* obs = nullptr;
    int obs_track = 0;
    // Fluid mode: the state-matching copy of shared hash-join states is
    // deferred and drained per key in budgeted batches between tuples
    // (migration/fluid_scheduler.h). Scans and list states are still copied
    // at the transition — count-window eviction bookkeeping and theta
    // probes are not key-local, so deferring them would change results.
    FluidOptions fluid;
  };

  HybridTrackProcessor(const LogicalPlan& plan, const WindowSpec& windows,
                       Sink* sink, Options options);
  HybridTrackProcessor(const LogicalPlan& plan, const WindowSpec& windows,
                       Sink* sink);

  std::string name() const override { return "hybrid-track"; }
  void Push(const BaseTuple& tuple) override;
  Status RequestTransition(const LogicalPlan& new_plan) override;
  const Metrics& metrics() const override { return metrics_; }
  uint64_t StateMemory() const override;

  bool migrating() const { return plans_.size() > 1; }
  size_t num_live_plans() const { return plans_.size(); }
  // States deep-copied into the newest plan at its transition.
  uint64_t last_states_copied() const { return last_states_copied_; }

  // --- fluid introspection (tests, benches) ---
  // Deferred copy-ins still pending (0 outside a fluid episode).
  uint64_t FluidCopyBacklog() const;
  const FluidScheduler& fluid_scheduler() const { return fluid_sched_; }

 private:
  // One deferred state-matching copy: a snapshot of the donor state taken
  // at the transition, moved into the adopting plan one key at a time.
  // Keys probed by an arrival are copied first (EnsureCopied), the rest
  // drain in budgeted scheduler batches; entries whose base tuples have
  // already expired from the new plan's (eagerly copied) scan windows are
  // dropped instead of inserted.
  struct PendingCopy {
    int node_id = 0;  // node in the NEWEST plan
    bool is_root = false;
    std::unique_ptr<OperatorState> snapshot;
    std::vector<JoinKey> keys;  // sorted; [next_key..) not yet drained
    size_t next_key = 0;
    std::unordered_set<JoinKey, I64Hash> copied;
  };

  void CheckDiscard();
  void EnsureCopied(JoinKey key);
  void CopyKey(PendingCopy& pc, JoinKey key);
  void PruneDrained();
  bool CopyStep();
  void RunFluidCopyBatch();
  void FinishFluidCopies();
  bool PartsLive(const Tuple& t);

  WindowSpec windows_;
  Options options_;
  Metrics metrics_;
  // Delay sink sits between dedup elimination and the user sink, so each
  // output's delay covers the full per-event work across all live plans.
  OutputDelaySink obs_sink_;
  DedupSink dedup_;
  std::vector<std::unique_ptr<PipelineExecutor>> plans_;
  std::vector<Seq> boundaries_;
  Stamp next_stamp_ = 1;
  Seq max_seq_seen_ = 0;
  uint64_t events_since_check_ = 0;
  uint64_t last_states_copied_ = 0;
  FluidScheduler fluid_sched_;
  std::vector<std::unique_ptr<PendingCopy>> pending_copies_;
  uint64_t events_since_fluid_ = 0;
};

}  // namespace jisc

#endif  // JISC_MIGRATION_HYBRID_TRACK_H_
