#include "migration/state_materializer.h"

#include <vector>

#include "common/logging.h"
#include "exec/nested_loops_join.h"

namespace jisc {

void MaterializeStateEagerly(Operator* op, Stamp stamp, Metrics* metrics) {
  JISC_CHECK(op->kind() != OpKind::kScan);
  OperatorState& st = op->state();
  const OperatorState& left = op->left()->state();
  const OperatorState& right = op->right()->state();
  JISC_CHECK(left.complete() && right.complete());
  st.Clear();

  auto insert = [&](Tuple combo) {
    combo.set_birth(stamp);
    st.Insert(combo, stamp);
    if (metrics != nullptr) ++metrics->inserts;
  };

  switch (op->kind()) {
    case OpKind::kHashJoin: {
      // Join bucket-by-bucket over the smaller child's distinct values.
      const OperatorState& ref =
          left.DistinctLiveKeys() <= right.DistinctLiveKeys() ? left : right;
      const OperatorState& other = (&ref == &left) ? right : left;
      for (JoinKey v : ref.LiveKeys()) {
        std::vector<Tuple> a;
        std::vector<Tuple> b;
        ref.CollectLiveByKey(v, &a);
        other.CollectLiveByKey(v, &b);
        if (metrics != nullptr) metrics->probe_entries += a.size() + b.size();
        for (const Tuple& x : a) {
          for (const Tuple& y : b) {
            insert(&ref == &left ? Tuple::Concat(x, y, stamp, false)
                                 : Tuple::Concat(y, x, stamp, false));
          }
        }
      }
      break;
    }
    case OpKind::kNljJoin: {
      // Full quadratic recomputation: this is what makes the Moving State
      // latency explode for theta joins (Fig. 10b).
      auto* nlj = static_cast<NestedLoopsJoin*>(op);
      std::vector<Tuple> ls;
      left.ForEachLive([&](const Tuple& t) { ls.push_back(t); });
      right.ForEachLive([&](const Tuple& r) {
        for (const Tuple& l : ls) {
          if (metrics != nullptr) ++metrics->probe_entries;
          if (nlj->theta().Matches(l, r)) {
            insert(Tuple::Concat(l, r, stamp, false));
          }
        }
      });
      break;
    }
    case OpKind::kSetDifference: {
      left.ForEachLive([&](const Tuple& l) {
        if (metrics != nullptr) ++metrics->probe_entries;
        if (!right.ContainsKeyLive(l.key())) insert(l);
      });
      break;
    }
    case OpKind::kSemiJoin: {
      left.ForEachLive([&](const Tuple& l) {
        if (metrics != nullptr) ++metrics->probe_entries;
        if (right.ContainsKeyLive(l.key())) insert(l);
      });
      break;
    }
    case OpKind::kScan:
      break;  // unreachable
  }
  st.MarkComplete();
}

}  // namespace jisc
