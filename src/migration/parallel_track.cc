#include "migration/parallel_track.h"

#include <algorithm>

#include "common/logging.h"
#include "exec/validate.h"
#include "obs/trace.h"

namespace jisc {

ParallelTrackProcessor::ParallelTrackProcessor(const LogicalPlan& plan,
                                               const WindowSpec& windows,
                                               Sink* sink)
    : ParallelTrackProcessor(plan, windows, sink, Options()) {}

ParallelTrackProcessor::ParallelTrackProcessor(const LogicalPlan& plan,
                                               const WindowSpec& windows,
                                               Sink* sink, Options options)
    : windows_(windows),
      options_(options),
      dedup_(options.obs != nullptr ? static_cast<Sink*>(&obs_sink_) : sink) {
  if (options_.obs != nullptr) obs_sink_.Wire(sink, options_.obs);
  dedup_.set_metrics(&metrics_);
  auto exec =
      std::make_unique<PipelineExecutor>(plan, windows_, options_.exec);
  exec->SetSink(&dedup_);
  exec->SetMetrics(&metrics_);
  exec->SetObservability(options_.obs, options_.obs_track);
  plans_.push_back(std::move(exec));
  boundaries_.push_back(0);
}

void ParallelTrackProcessor::Push(const BaseTuple& tuple) {
  if (options_.obs != nullptr) obs_sink_.BeginEvent();
  Stamp stamp = next_stamp_++;
  max_seq_seen_ = std::max(max_seq_seen_, tuple.seq);
  // Every live plan processes every tuple (the migration-stage throughput
  // drop comes from exactly this).
  for (auto& plan : plans_) {
    plan->PushArrival(tuple, stamp);
    plan->RunUntilIdle();
  }
  if (migrating() && ++events_since_check_ >= options_.purge_check_period) {
    events_since_check_ = 0;
    CheckDiscard();
  }
}

Status ParallelTrackProcessor::RequestTransition(const LogicalPlan& new_plan) {
  Status valid = new_plan.Validate();
  if (!valid.ok()) return valid;
  for (int id = 0; id < new_plan.num_nodes(); ++id) {
    OpKind k = new_plan.node(id).kind;
    if (k == OpKind::kSetDifference || k == OpKind::kSemiJoin) {
      // The Parallel Track duplicate elimination assumes monotone
      // (join-only) output; the paper presents it for join plans.
      return Status::Unimplemented(
          "Parallel Track supports join plans only");
    }
  }
  if (!(new_plan.streams() == plans_.front()->plan().streams())) {
    return Status::InvalidArgument(
        "new plan must cover the same streams as the old plan");
  }
  // The new plan starts from scratch: empty states, empty windows.
  Observability* obs = options_.obs;
  TraceScope span(obs != nullptr ? &obs->trace : nullptr, "transition",
                  "migration", options_.obs_track);
  auto exec =
      std::make_unique<PipelineExecutor>(new_plan, windows_, options_.exec);
  exec->SetSink(&dedup_);
  exec->SetMetrics(&metrics_);
  exec->SetObservability(options_.obs, options_.obs_track);
  plans_.push_back(std::move(exec));
  boundaries_.push_back(max_seq_seen_ + 1);
  span.SetArg("live_plans", plans_.size());
  return Status::Ok();
}

uint64_t ParallelTrackProcessor::StateMemory() const {
  uint64_t bytes = 0;
  for (const auto& plan : plans_) bytes += StateMemoryBytes(*plan);
  return bytes;
}

void ParallelTrackProcessor::CheckDiscard() {
  Observability* obs = options_.obs;
  TraceRecorder* rec = obs != nullptr ? &obs->trace : nullptr;
  while (plans_.size() > 1) {
    // plans_[0] is redundant once every tuple it still holds was admitted
    // after plans_[1] started (then plans_[1] has seen everything live).
    bool purgeable;
    {
      TraceScope span(rec, "purge-scan", "migration", options_.obs_track);
      purgeable = plans_.front()->AllStatesNewerThan(boundaries_[1]);
    }
    if (!purgeable) break;
    // Release the discarded plan's share of the dedup counts: its live
    // results remain covered by the surviving plans.
    TraceScope span(rec, "plan-discard", "migration", options_.obs_track);
    plans_.front()->root()->state().ForEachLive(
        [this](const Tuple& t) { dedup_.NoteDiscard(t); });
    plans_.erase(plans_.begin());
    boundaries_.erase(boundaries_.begin());
  }
}

}  // namespace jisc
