#include "migration/hybrid_track.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "exec/stream_scan.h"
#include "exec/validate.h"
#include "obs/observability.h"
#include "obs/trace.h"
#include "plan/plan_diff.h"

namespace jisc {

HybridTrackProcessor::HybridTrackProcessor(const LogicalPlan& plan,
                                           const WindowSpec& windows,
                                           Sink* sink)
    : HybridTrackProcessor(plan, windows, sink, Options()) {}

HybridTrackProcessor::HybridTrackProcessor(const LogicalPlan& plan,
                                           const WindowSpec& windows,
                                           Sink* sink, Options options)
    : windows_(windows),
      options_(options),
      dedup_(options.obs != nullptr ? static_cast<Sink*>(&obs_sink_) : sink),
      fluid_sched_(options.fluid) {
  if (options_.obs != nullptr) obs_sink_.Wire(sink, options_.obs);
  dedup_.set_metrics(&metrics_);
  auto exec =
      std::make_unique<PipelineExecutor>(plan, windows_, options_.exec);
  exec->SetSink(&dedup_);
  exec->SetMetrics(&metrics_);
  exec->SetObservability(options_.obs, options_.obs_track);
  plans_.push_back(std::move(exec));
  boundaries_.push_back(0);
}

void HybridTrackProcessor::Push(const BaseTuple& tuple) {
  if (options_.obs != nullptr) obs_sink_.BeginEvent();
  Stamp stamp = next_stamp_++;
  max_seq_seen_ = std::max(max_seq_seen_, tuple.seq);
  if (!pending_copies_.empty()) {
    // Just-in-time copy-in: whatever this tuple is about to probe must be
    // in place first, then one budgeted batch drains the rest of the
    // backlog. Both run under this event's delay measurement, so the batch
    // budget bounds the stall this event's outputs observe.
    EnsureCopied(tuple.key);
    if (++events_since_fluid_ >= options_.fluid.batch_period) {
      events_since_fluid_ = 0;
      RunFluidCopyBatch();
    }
  }
  for (auto& plan : plans_) {
    plan->PushArrival(tuple, stamp);
    plan->RunUntilIdle();
  }
  if (migrating() && ++events_since_check_ >= options_.purge_check_period) {
    events_since_check_ = 0;
    CheckDiscard();
  }
}

Status HybridTrackProcessor::RequestTransition(const LogicalPlan& new_plan) {
  Status valid = new_plan.Validate();
  if (!valid.ok()) return valid;
  for (int id = 0; id < new_plan.num_nodes(); ++id) {
    OpKind k = new_plan.node(id).kind;
    if (k == OpKind::kSetDifference || k == OpKind::kSemiJoin) {
      return Status::Unimplemented(
          "hybrid track supports join plans only");
    }
  }
  PipelineExecutor& donor = *plans_.back();
  if (!(new_plan.streams() == donor.plan().streams())) {
    return Status::InvalidArgument(
        "new plan must cover the same streams as the old plan");
  }
  Observability* obs = options_.obs;
  TraceRecorder* rec = obs != nullptr ? &obs->trace : nullptr;
  TraceScope transition(rec, "transition", "migration", options_.obs_track);
  // A second transition while a fluid copy-in is still draining lands the
  // remainder synchronously first: the newest plan is about to become the
  // donor, so its adopted states must hold their full content.
  FinishFluidCopies();
  // State matching (the Moving State ingredient): deep-copy every shared
  // *authoritative* state from the newest live plan into the new one. A
  // donor state is authoritative iff it is flagged complete — states the
  // donor itself started empty (and has only partially refilled) would
  // seed the new plan with gaps below fully-copied ancestors, the exact
  // Section 4.2 hazard. Scans are always complete, so the new plan's
  // windows start full either way.
  std::vector<Operator*> sources(new_plan.num_nodes(), nullptr);
  int num_matched = 0;
  for (int id = 0; id < new_plan.num_nodes(); ++id) {
    Operator* source = donor.OpForStreams(new_plan.node(id).streams);
    if (source != nullptr && source->state().complete()) {
      sources[id] = source;
      ++num_matched;
    }
  }
  // Fluid mode defers the copy of matched hash-join states: they are
  // snapshotted here (uncharged) and moved in per key between tuples.
  // Scans stay eager (window eviction bookkeeping must track arrivals
  // exactly), as do list states (theta probes are not key-local) and fully
  // matched transitions (the old plans are discarded immediately below, so
  // the new plan must be self-sufficient from the first tuple).
  const bool defer = options_.fluid.IsFluid() &&
                     num_matched < new_plan.num_nodes();
  std::vector<bool> deferred(new_plan.num_nodes(), false);
  StatePool pool;
  last_states_copied_ = 0;
  std::unique_ptr<PipelineExecutor> exec;
  {
    TraceScope span(rec, "state-copy", "migration", options_.obs_track);
    for (int id = 0; id < new_plan.num_nodes(); ++id) {
      Operator* source = sources[id];
      if (source == nullptr) continue;
      if (defer && new_plan.node(id).kind != OpKind::kScan &&
          source->state().index() == StateIndex::kHash) {
        deferred[id] = true;
        ++last_states_copied_;
        continue;
      }
      pool.Put(source->state().Clone());
      ++last_states_copied_;
      metrics_.inserts += source->state().live_size();  // the copy cost
    }
    span.SetArg("states_copied", last_states_copied_);
    exec = std::make_unique<PipelineExecutor>(new_plan, windows_,
                                              options_.exec, &pool);
  }
  exec->SetSink(&dedup_);
  exec->SetMetrics(&metrics_);
  exec->SetObservability(options_.obs, options_.obs_track);
  // States that start empty are marked incomplete so expiry propagation
  // never stops at them (their combinations exist, materialized, in the
  // complete ancestors we just copied). Unlike JISC there is no on-demand
  // completion: the older plans cover the gap until they are purged.
  // Deferred states stay flagged complete — they are authoritative, their
  // content just arrives fluidly.
  for (int id = 0; id < new_plan.num_nodes(); ++id) {
    Operator* op = exec->op(id);
    if (op->state().live_size() == 0 && op->kind() != OpKind::kScan &&
        !pool.Contains(op->streams()) && !deferred[id]) {
      // Not adopted from the pool (Take removed adopted ones): freshly
      // created, hence empty and unauthoritative.
      op->state().MarkIncomplete();
    }
  }
  // The copied root content means this plan now also covers every live
  // result; give it its share of the dedup counts so retractions stay
  // exactly-once.
  exec->root()->state().ForEachLive(
      [this](const Tuple& t) { dedup_.NoteAdoption(t); });
  bool fully_matched = true;
  for (int id = 0; id < new_plan.num_nodes(); ++id) {
    if (!exec->op(id)->state().complete()) fully_matched = false;
  }
  plans_.push_back(std::move(exec));
  boundaries_.push_back(max_seq_seen_ + 1);
  // Snapshot the deferred donor states now: the old plans keep running and
  // mutating their own copies, but the copy-in must reproduce the content
  // as of the transition, at its original insertion stamps.
  PipelineExecutor& adopted = *plans_.back();
  for (int id = 0; id < new_plan.num_nodes(); ++id) {
    if (!deferred[id]) continue;
    auto pc = std::make_unique<PendingCopy>();
    pc->node_id = id;
    pc->is_root = adopted.op(id) == adopted.root();
    pc->snapshot = sources[id]->state().Clone();
    pc->keys = pc->snapshot->LiveKeys();
    std::sort(pc->keys.begin(), pc->keys.end());
    pending_copies_.push_back(std::move(pc));
  }
  events_since_fluid_ = 0;
  if (obs != nullptr && obs->telemetry != nullptr) {
    // jisc-verify: allow(obs-null-discipline) — guarded just above
    obs->telemetry->SetMigrationBacklog(options_.obs_track,
                                        FluidCopyBacklog());
  }
  if (fully_matched) {
    // Every state of the new plan was matched: it is self-sufficient from
    // the first tuple and the older plans can be dropped without any
    // migration stage at all — the one transition shape where the hybrid
    // family clearly beats plain Parallel Track.
    while (plans_.size() > 1) {
      TraceScope span(rec, "plan-discard", "migration", options_.obs_track);
      plans_.front()->root()->state().ForEachLive(
          [this](const Tuple& t) { dedup_.NoteDiscard(t); });
      plans_.erase(plans_.begin());
      boundaries_.erase(boundaries_.begin());
    }
  }
  transition.SetArg("live_plans", plans_.size());
  return Status::Ok();
}

uint64_t HybridTrackProcessor::StateMemory() const {
  uint64_t bytes = 0;
  for (const auto& plan : plans_) bytes += StateMemoryBytes(*plan);
  return bytes;
}

void HybridTrackProcessor::CheckDiscard() {
  Observability* obs = options_.obs;
  TraceRecorder* rec = obs != nullptr ? &obs->trace : nullptr;
  while (plans_.size() > 1) {
    bool purgeable;
    {
      TraceScope span(rec, "purge-scan", "migration", options_.obs_track);
      purgeable = plans_.front()->AllStatesNewerThan(boundaries_[1]);
    }
    if (!purgeable) break;
    // While a fluid copy-in is still draining, the older plans cover the
    // combinations the new plan has not received yet; keep them alive (the
    // purge scan above still ran, so the scan cadence and its charges are
    // identical to an all-at-once run).
    if (!pending_copies_.empty()) break;
    TraceScope span(rec, "plan-discard", "migration", options_.obs_track);
    plans_.front()->root()->state().ForEachLive(
        [this](const Tuple& t) { dedup_.NoteDiscard(t); });
    plans_.erase(plans_.begin());
    boundaries_.erase(boundaries_.begin());
  }
}

uint64_t HybridTrackProcessor::FluidCopyBacklog() const {
  uint64_t n = 0;
  for (const auto& pc : pending_copies_) {
    n += static_cast<uint64_t>(pc->keys.size() - pc->next_key);
  }
  return n;
}

bool HybridTrackProcessor::PartsLive(const Tuple& t) {
  // The new plan's scans were copied eagerly and evolve exactly like an
  // all-at-once run's, so they are the authority on which base tuples are
  // still live. A snapshot entry whose parts have already expired would
  // never be probed again; inserting it would only leak it past expiry
  // propagation (the removal cascade for its seq has already run).
  PipelineExecutor& newest = *plans_.back();
  for (const BaseTuple& p : t.parts()) {
    StreamScan* scan = newest.scan(p.stream);
    if (scan == nullptr || scan->window_fill() == 0) return false;
    if (p.seq < scan->OldestLiveSeq()) return false;
  }
  return true;
}

void HybridTrackProcessor::CopyKey(PendingCopy& pc, JoinKey key) {
  pc.copied.insert(key);
  std::vector<std::pair<Tuple, Stamp>> entries;
  pc.snapshot->CollectLiveByKeyWithStamps(key, &entries);
  if (entries.empty()) return;
  OperatorState& st = plans_.back()->op(pc.node_id)->state();
  for (auto& [t, stamp] : entries) {
    if (!PartsLive(t)) continue;
    st.Insert(t, stamp);
    ++metrics_.inserts;  // same per-entry charge as the eager Clone copy
    if (pc.is_root) dedup_.NoteAdoption(t);
  }
}

void HybridTrackProcessor::EnsureCopied(JoinKey key) {
  for (auto& pc : pending_copies_) {
    if (pc->copied.count(key) != 0) continue;
    CopyKey(*pc, key);
  }
  PruneDrained();
}

void HybridTrackProcessor::PruneDrained() {
  auto it = pending_copies_.begin();
  while (it != pending_copies_.end()) {
    PendingCopy& pc = **it;
    while (pc.next_key < pc.keys.size() &&
           pc.copied.count(pc.keys[pc.next_key]) != 0) {
      ++pc.next_key;
    }
    it = pc.next_key >= pc.keys.size() ? pending_copies_.erase(it) : it + 1;
  }
}

bool HybridTrackProcessor::CopyStep() {
  while (!pending_copies_.empty()) {
    PendingCopy& pc = *pending_copies_.front();
    while (pc.next_key < pc.keys.size() &&
           pc.copied.count(pc.keys[pc.next_key]) != 0) {
      ++pc.next_key;
    }
    if (pc.next_key >= pc.keys.size()) {
      pending_copies_.erase(pending_copies_.begin());
      continue;
    }
    CopyKey(pc, pc.keys[pc.next_key++]);
    return true;
  }
  return false;
}

void HybridTrackProcessor::RunFluidCopyBatch() {
  TraceRecorder* rec =
      options_.obs != nullptr ? &options_.obs->trace : nullptr;
  fluid_sched_.RunBatch(&metrics_, rec, options_.obs_track,
                        [this] { return CopyStep(); },
                        [this] { return FluidCopyBacklog(); });
  if (options_.obs != nullptr && options_.obs->telemetry != nullptr) {
    options_.obs->telemetry->SetMigrationBacklog(options_.obs_track,
                                                 FluidCopyBacklog());
  }
}

void HybridTrackProcessor::FinishFluidCopies() {
  while (CopyStep()) {
  }
}

}  // namespace jisc
