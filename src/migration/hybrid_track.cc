#include "migration/hybrid_track.h"

#include <algorithm>

#include "common/logging.h"
#include "exec/validate.h"
#include "obs/trace.h"
#include "plan/plan_diff.h"

namespace jisc {

HybridTrackProcessor::HybridTrackProcessor(const LogicalPlan& plan,
                                           const WindowSpec& windows,
                                           Sink* sink)
    : HybridTrackProcessor(plan, windows, sink, Options()) {}

HybridTrackProcessor::HybridTrackProcessor(const LogicalPlan& plan,
                                           const WindowSpec& windows,
                                           Sink* sink, Options options)
    : windows_(windows),
      options_(options),
      dedup_(options.obs != nullptr ? static_cast<Sink*>(&obs_sink_) : sink) {
  if (options_.obs != nullptr) obs_sink_.Wire(sink, options_.obs);
  dedup_.set_metrics(&metrics_);
  auto exec =
      std::make_unique<PipelineExecutor>(plan, windows_, options_.exec);
  exec->SetSink(&dedup_);
  exec->SetMetrics(&metrics_);
  exec->SetObservability(options_.obs, options_.obs_track);
  plans_.push_back(std::move(exec));
  boundaries_.push_back(0);
}

void HybridTrackProcessor::Push(const BaseTuple& tuple) {
  if (options_.obs != nullptr) obs_sink_.BeginEvent();
  Stamp stamp = next_stamp_++;
  max_seq_seen_ = std::max(max_seq_seen_, tuple.seq);
  for (auto& plan : plans_) {
    plan->PushArrival(tuple, stamp);
    plan->RunUntilIdle();
  }
  if (migrating() && ++events_since_check_ >= options_.purge_check_period) {
    events_since_check_ = 0;
    CheckDiscard();
  }
}

Status HybridTrackProcessor::RequestTransition(const LogicalPlan& new_plan) {
  Status valid = new_plan.Validate();
  if (!valid.ok()) return valid;
  for (int id = 0; id < new_plan.num_nodes(); ++id) {
    OpKind k = new_plan.node(id).kind;
    if (k == OpKind::kSetDifference || k == OpKind::kSemiJoin) {
      return Status::Unimplemented(
          "hybrid track supports join plans only");
    }
  }
  PipelineExecutor& donor = *plans_.back();
  if (!(new_plan.streams() == donor.plan().streams())) {
    return Status::InvalidArgument(
        "new plan must cover the same streams as the old plan");
  }
  Observability* obs = options_.obs;
  TraceRecorder* rec = obs != nullptr ? &obs->trace : nullptr;
  TraceScope transition(rec, "transition", "migration", options_.obs_track);
  // State matching (the Moving State ingredient): deep-copy every shared
  // *authoritative* state from the newest live plan into the new one. A
  // donor state is authoritative iff it is flagged complete — states the
  // donor itself started empty (and has only partially refilled) would
  // seed the new plan with gaps below fully-copied ancestors, the exact
  // Section 4.2 hazard. Scans are always complete, so the new plan's
  // windows start full either way.
  StatePool pool;
  last_states_copied_ = 0;
  std::unique_ptr<PipelineExecutor> exec;
  {
    TraceScope span(rec, "state-copy", "migration", options_.obs_track);
    for (int id = 0; id < new_plan.num_nodes(); ++id) {
      const PlanNode& n = new_plan.node(id);
      Operator* source = donor.OpForStreams(n.streams);
      if (source == nullptr || !source->state().complete()) continue;
      pool.Put(source->state().Clone());
      ++last_states_copied_;
      metrics_.inserts += source->state().live_size();  // the copy cost
    }
    span.SetArg("states_copied", last_states_copied_);
    exec = std::make_unique<PipelineExecutor>(new_plan, windows_,
                                              options_.exec, &pool);
  }
  exec->SetSink(&dedup_);
  exec->SetMetrics(&metrics_);
  exec->SetObservability(options_.obs, options_.obs_track);
  // States that start empty are marked incomplete so expiry propagation
  // never stops at them (their combinations exist, materialized, in the
  // complete ancestors we just copied). Unlike JISC there is no on-demand
  // completion: the older plans cover the gap until they are purged.
  for (int id = 0; id < new_plan.num_nodes(); ++id) {
    Operator* op = exec->op(id);
    if (op->state().live_size() == 0 && op->kind() != OpKind::kScan &&
        !pool.Contains(op->streams())) {
      // Not adopted from the pool (Take removed adopted ones): freshly
      // created, hence empty and unauthoritative.
      op->state().MarkIncomplete();
    }
  }
  // The copied root content means this plan now also covers every live
  // result; give it its share of the dedup counts so retractions stay
  // exactly-once.
  exec->root()->state().ForEachLive(
      [this](const Tuple& t) { dedup_.NoteAdoption(t); });
  bool fully_matched = true;
  for (int id = 0; id < new_plan.num_nodes(); ++id) {
    if (!exec->op(id)->state().complete()) fully_matched = false;
  }
  plans_.push_back(std::move(exec));
  boundaries_.push_back(max_seq_seen_ + 1);
  if (fully_matched) {
    // Every state of the new plan was matched: it is self-sufficient from
    // the first tuple and the older plans can be dropped without any
    // migration stage at all — the one transition shape where the hybrid
    // family clearly beats plain Parallel Track.
    while (plans_.size() > 1) {
      TraceScope span(rec, "plan-discard", "migration", options_.obs_track);
      plans_.front()->root()->state().ForEachLive(
          [this](const Tuple& t) { dedup_.NoteDiscard(t); });
      plans_.erase(plans_.begin());
      boundaries_.erase(boundaries_.begin());
    }
  }
  transition.SetArg("live_plans", plans_.size());
  return Status::Ok();
}

uint64_t HybridTrackProcessor::StateMemory() const {
  uint64_t bytes = 0;
  for (const auto& plan : plans_) bytes += StateMemoryBytes(*plan);
  return bytes;
}

void HybridTrackProcessor::CheckDiscard() {
  Observability* obs = options_.obs;
  TraceRecorder* rec = obs != nullptr ? &obs->trace : nullptr;
  while (plans_.size() > 1) {
    bool purgeable;
    {
      TraceScope span(rec, "purge-scan", "migration", options_.obs_track);
      purgeable = plans_.front()->AllStatesNewerThan(boundaries_[1]);
    }
    if (!purgeable) break;
    TraceScope span(rec, "plan-discard", "migration", options_.obs_track);
    plans_.front()->root()->state().ForEachLive(
        [this](const Tuple& t) { dedup_.NoteDiscard(t); });
    plans_.erase(plans_.begin());
    boundaries_.erase(boundaries_.begin());
  }
}

}  // namespace jisc
