#include "migration/fluid_scheduler.h"

#include <algorithm>

#include "common/bytes.h"
#include "common/logging.h"
#include "obs/observability.h"

namespace jisc {

uint64_t FluidScheduler::RunBatch(Metrics* metrics, TraceRecorder* rec,
                                  int track,
                                  const std::function<bool()>& step,
                                  const std::function<uint64_t()>& backlog) {
  const uint64_t budget = BudgetUnits();
  const uint64_t start = metrics->WorkUnits();
  uint64_t items = 0;
  uint64_t last_item_units = 0;
  {
    TraceScope span(rec, "fluid-batch", "migration", track);
    while (items < options_.batch_keys) {
      uint64_t before = metrics->WorkUnits();
      if (!step()) break;
      ++items;
      last_item_units = metrics->WorkUnits() - before;
      stats_.max_item_units = std::max(stats_.max_item_units, last_item_units);
      if (metrics->WorkUnits() - start >= budget) break;
    }
    span.SetArg("items", items);
  }
  if (items == 0) return 0;
  uint64_t used = metrics->WorkUnits() - start;
  ++stats_.batches;
  stats_.items += items;
  stats_.units += used;
  stats_.max_batch_items = std::max(stats_.max_batch_items, items);
  stats_.max_batch_units = std::max(stats_.max_batch_units, used);
  if (items > 1 && used - last_item_units >= budget) ++stats_.overruns;
  if (backlog() > 0) {
    ++stats_.yields;
    TraceInstant(rec, "fluid-yield", "migration", track, "backlog",
                 backlog());
  }
  return items;
}

Status FluidJiscStrategy::Migrate(Engine* engine,
                                  const LogicalPlan& new_plan) {
  Status s = inner_.Migrate(engine, new_plan);
  if (!s.ok()) return s;
  RebuildLedger();
  return Status::Ok();
}

void FluidJiscStrategy::RebuildLedger() {
  ops_.clear();
  for (int id : inner_.IncompleteOpIds()) ops_.push_back(id);
  cursor_built_ = false;
  cursor_is_list_ = false;
  cur_keys_.clear();
  cur_index_ = 0;
}

void FluidJiscStrategy::PopOp() {
  ops_.pop_front();
  cursor_built_ = false;
  cursor_is_list_ = false;
  cur_keys_.clear();
  cur_index_ = 0;
}

bool FluidJiscStrategy::EnsureCursor(Engine* engine) {
  while (!ops_.empty()) {
    Operator* op = engine->executor().op(ops_.front());
    OperatorState& st = op->state();
    if (st.complete()) {
      // Completed behind our back (window turnover, on-probe CompleteFull).
      PopOp();
      continue;
    }
    if (!cursor_built_) {
      cursor_built_ = true;
      cur_index_ = 0;
      cur_keys_.clear();
      cursor_is_list_ = st.index() == StateIndex::kList;
      if (!cursor_is_list_) {
        // Same reference-child rule as an on-probe CompleteFull: missing
        // combinations need the value live on both sides, so the smaller
        // child's key set suffices; set-difference / semi-join entries come
        // from the left child. Values probed before their batch arrives are
        // completed on-probe and skipped here via IsKeyCompleted.
        const Operator* ref;
        if (op->kind() == OpKind::kSetDifference ||
            op->kind() == OpKind::kSemiJoin) {
          ref = op->left();
        } else {
          ref = op->left()->state().DistinctLiveKeys() <=
                        op->right()->state().DistinctLiveKeys()
                    ? op->left()
                    : op->right();
        }
        for (JoinKey v : ref->state().LiveKeys()) {
          if (!st.IsKeyCompleted(v)) cur_keys_.push_back(v);
        }
        std::sort(cur_keys_.begin(), cur_keys_.end());
      }
    }
    if (cursor_is_list_) return true;
    while (cur_index_ < cur_keys_.size() &&
           st.IsKeyCompleted(cur_keys_[cur_index_])) {
      ++cur_index_;
    }
    if (cur_index_ < cur_keys_.size()) return true;
    PopOp();
  }
  return false;
}

bool FluidJiscStrategy::Step(Engine* engine, Stamp stamp) {
  if (!EnsureCursor(engine)) return false;
  int id = ops_.front();
  if (cursor_is_list_) {
    inner_.CompleteListAt(engine, id, stamp);
    PopOp();
    return true;
  }
  JoinKey v = cur_keys_[cur_index_++];
  inner_.CompleteKeyAt(engine, id, v, stamp);
  return true;
}

uint64_t FluidJiscStrategy::FluidBacklog() {
  if (ops_.empty()) return 0;
  uint64_t rest = static_cast<uint64_t>(ops_.size()) - 1;
  if (!cursor_built_) return rest + 1;
  if (cursor_is_list_) return rest + 1;
  return rest + (cur_keys_.size() - cur_index_);
}

void FluidJiscStrategy::RunFluidBatch(Engine* engine, Stamp stamp) {
  Observability* obs = engine->obs();
  TraceRecorder* rec = obs != nullptr ? &obs->trace : nullptr;
  scheduler_.RunBatch(
      &engine->mutable_metrics(), rec, engine->obs_track(),
      [&] { return Step(engine, stamp); }, [&] { return FluidBacklog(); });
}

std::string FluidJiscStrategy::SerializeMigrationState() const {
  ByteWriter w;
  w.PutU64(kFluidBlobMagic);
  const FluidOptions& fo = scheduler_.options();
  w.PutU64(fo.batch_keys);
  w.PutU64(fo.delay_budget_us);
  w.PutU64(fo.batch_period);
  inner_.SerializeCompletionState(&w);
  return w.Take();
}

Status FluidJiscStrategy::RestoreMigrationState(Engine* engine,
                                                const std::string& bytes) {
  ByteReader r(bytes);
  uint64_t magic = 0;
  Status s = r.GetU64(&magic);
  if (!s.ok()) return s;
  if (magic != kFluidBlobMagic) {
    return Status::InvalidArgument("fluid migration state: bad magic");
  }
  uint64_t ignored = 0;
  for (int i = 0; i < 3; ++i) {  // options echo (informational)
    if (!(s = r.GetU64(&ignored)).ok()) return s;
  }
  s = inner_.RestoreCompletionState(engine, &r);
  if (!s.ok()) return s;
  if (!r.AtEnd()) {
    return Status::InvalidArgument("fluid migration state: trailing bytes");
  }
  // The drain resumes exactly where the checkpointed run stopped: the
  // ledger is re-derived from the restored trackers, and already-completed
  // values (restored with the states) are skipped by the cursor.
  RebuildLedger();
  return Status::Ok();
}

std::unique_ptr<MigrationStrategy> MakeFluidStrategy(JiscOptions jisc,
                                                     FluidOptions fluid) {
  return std::make_unique<FluidJiscStrategy>(jisc, fluid);
}

}  // namespace jisc
