#include "migration/moving_state.h"

#include "common/logging.h"
#include "migration/state_materializer.h"
#include "obs/trace.h"
#include "plan/plan_diff.h"

namespace jisc {

Status MovingStateStrategy::Migrate(Engine* engine,
                                    const LogicalPlan& new_plan) {
  Observability* obs = engine->obs();
  TraceRecorder* rec = obs != nullptr ? &obs->trace : nullptr;
  int track = engine->obs_track();
  PipelineExecutor& old_exec = engine->executor();
  StateSnapshot snapshot;
  PlanDiff diff;
  {
    TraceScope span(rec, "plan-diff", "migration", track);
    snapshot = old_exec.SnapshotCompleteness();
    diff = DiffPlans(new_plan, snapshot);
    span.SetArg("incomplete", static_cast<uint64_t>(diff.NumIncomplete()));
  }

  // State matching: move every state the two plans share.
  std::unique_ptr<PipelineExecutor> new_exec;
  {
    TraceScope span(rec, "state-copy", "migration", track);
    StatePool pool = old_exec.TakeAllStates();
    new_exec = std::make_unique<PipelineExecutor>(
        new_plan, engine->windows(), engine->exec_options(), &pool);
  }

  // State computing: eagerly materialize everything missing, bottom-up.
  // Execution is halted throughout (this all happens inside the transition).
  Stamp stamp = engine->AllocateStamp();
  Metrics& metrics = engine->mutable_metrics();
  uint64_t inserts_before = metrics.inserts;
  {
    TraceScope span(rec, "state-compute", "migration", track);
    for (int id = 0; id < new_plan.num_nodes(); ++id) {
      Operator* op = new_exec->op(id);
      if (op->kind() == OpKind::kScan) {
        op->state().MarkComplete();
        continue;
      }
      if (diff.node_complete[id]) {
        op->state().MarkComplete();
        continue;
      }
      MaterializeStateEagerly(op, stamp, &metrics);
    }
    last_inserts_ = metrics.inserts - inserts_before;
    span.SetArg("inserts", last_inserts_);
  }
  engine->ReplaceExecutor(std::move(new_exec));
  return Status::Ok();
}

std::unique_ptr<MigrationStrategy> MakeMovingStateStrategy() {
  return std::make_unique<MovingStateStrategy>();
}

}  // namespace jisc
