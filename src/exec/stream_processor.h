#ifndef JISC_EXEC_STREAM_PROCESSOR_H_
#define JISC_EXEC_STREAM_PROCESSOR_H_

#include <string>

#include "common/status.h"
#include "exec/metrics.h"
#include "plan/logical_plan.h"
#include "types/tuple.h"

namespace jisc {

// Uniform facade over the query processors compared in the paper: the
// pipelined engine under each migration strategy (Moving State, Parallel
// Track, JISC) and the eddy-based executors (CACQ, STAIRs). The benchmark
// harness drives all of them through this interface.
class StreamProcessor {
 public:
  virtual ~StreamProcessor() = default;

  virtual std::string name() const = 0;

  // Admits one base tuple and processes it to completion.
  virtual void Push(const BaseTuple& tuple) = 0;

  // Switches execution to an equivalent plan (its join order is what
  // matters). For eddy-based processors this re-routes; for pipelined ones
  // it migrates per the strategy.
  virtual Status RequestTransition(const LogicalPlan& new_plan) = 0;

  virtual const Metrics& metrics() const = 0;

  // Approximate bytes of materialized operator state currently held
  // (Section 5 compares strategies' memory footprints; Parallel Track's
  // doubles while plans overlap).
  virtual uint64_t StateMemory() const { return 0; }
};

}  // namespace jisc

#endif  // JISC_EXEC_STREAM_PROCESSOR_H_
