#ifndef JISC_EXEC_STREAM_PROCESSOR_H_
#define JISC_EXEC_STREAM_PROCESSOR_H_

#include <cstdint>
#include <string>

#include "common/logging.h"
#include "common/status.h"
#include "exec/metrics.h"
#include "plan/logical_plan.h"
#include "types/tuple.h"

namespace jisc {

// Uniform facade over the query processors compared in the paper: the
// pipelined engine under each migration strategy (Moving State, Parallel
// Track, JISC) and the eddy-based executors (CACQ, STAIRs). The benchmark
// harness drives all of them through this interface.
class StreamProcessor {
 public:
  virtual ~StreamProcessor() = default;

  virtual std::string name() const = 0;

  // Admits one base tuple and processes it to completion.
  virtual void Push(const BaseTuple& tuple) = 0;

  // Sharded execution only: expires `tuple` from its stream's window now.
  // The parallel executor's coordinator owns global window accounting and
  // drives each shard's expiries explicitly; only processors built in
  // external-expiry mode support this.
  virtual void PushExpiry(const BaseTuple& tuple) {
    (void)tuple;
    JISC_CHECK(false) << name() << " does not support external expiry";
  }

  // Switches execution to an equivalent plan (its join order is what
  // matters). For eddy-based processors this re-routes; for pipelined ones
  // it migrates per the strategy.
  virtual Status RequestTransition(const LogicalPlan& new_plan) = 0;

  virtual const Metrics& metrics() const = 0;

  // Approximate bytes of materialized operator state currently held
  // (Section 5 compares strategies' memory footprints; Parallel Track's
  // doubles while plans overlap).
  virtual uint64_t StateMemory() const { return 0; }
};

}  // namespace jisc

#endif  // JISC_EXEC_STREAM_PROCESSOR_H_
