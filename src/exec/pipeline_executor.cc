#include "exec/pipeline_executor.h"

#include "common/logging.h"
#include "exec/nested_loops_join.h"
#include "exec/semi_join.h"
#include "exec/set_difference.h"
#include "exec/symmetric_hash_join.h"

namespace jisc {

PipelineExecutor::PipelineExecutor(const LogicalPlan& plan,
                                   const WindowSpec& windows, Options options,
                                   StatePool* carry_over)
    : plan_(plan), windows_(windows), options_(options) {
  JISC_CHECK(plan_.Validate().ok());
  ops_.resize(static_cast<size_t>(plan_.num_nodes()));
  in_ready_.assign(static_cast<size_t>(plan_.num_nodes()), 0);
  // Builders assign children smaller ids than parents, so a single
  // ascending pass can wire children before parents.
  for (int id = 0; id < plan_.num_nodes(); ++id) {
    const PlanNode& n = plan_.node(id);
    std::unique_ptr<Operator> op;
    switch (n.kind) {
      case OpKind::kScan:
        op = std::make_unique<StreamScan>(id, n.stream,
                                          windows_.SizeFor(n.stream),
                                          windows_.mode(),
                                          options_.external_expiry);
        break;
      case OpKind::kHashJoin:
        op = std::make_unique<SymmetricHashJoin>(id, n.streams);
        break;
      case OpKind::kNljJoin:
        op = std::make_unique<NestedLoopsJoin>(id, n.streams, options_.theta);
        break;
      case OpKind::kSetDifference:
        op = std::make_unique<SetDifference>(id, n.streams);
        break;
      case OpKind::kSemiJoin:
        op = std::make_unique<SemiJoin>(id, n.streams);
        break;
    }
    op->SetExecutor(this);
    if (n.kind != OpKind::kScan) {
      JISC_CHECK(n.left < id && n.right < id);
      Operator* left = ops_[static_cast<size_t>(n.left)].get();
      Operator* right = ops_[static_cast<size_t>(n.right)].get();
      op->SetChildren(left, right);
      left->SetParent(op.get(), Side::kLeft);
      right->SetParent(op.get(), Side::kRight);
    }
    if (carry_over != nullptr) {
      if (std::unique_ptr<OperatorState> st = carry_over->Take(n.streams)) {
        op->AdoptState(std::move(st));
        if (n.kind == OpKind::kScan) {
          auto* scan = static_cast<StreamScan*>(op.get());
          if (auto window = carry_over->TakeWindow(n.stream)) {
            scan->AdoptWindow(std::move(*window));
          } else {
            scan->RebuildWindowFromState();
          }
        }
      }
    }
    ops_[static_cast<size_t>(id)] = std::move(op);
  }
}

StreamScan* PipelineExecutor::scan(StreamId stream) {
  int id = plan_.ScanFor(stream);
  if (id < 0) return nullptr;
  return static_cast<StreamScan*>(ops_[static_cast<size_t>(id)].get());
}

Operator* PipelineExecutor::OpForStreams(StreamSet id) {
  for (auto& op : ops_) {
    if (op->streams() == id) return op.get();
  }
  return nullptr;
}

void PipelineExecutor::NotifyReady(Operator* op, Stamp stamp) {
  (void)stamp;
  size_t id = static_cast<size_t>(op->node_id());
  if (in_ready_[id]) return;
  in_ready_[id] = 1;
  ready_.push_back(op);
}

void PipelineExecutor::PushArrival(const BaseTuple& base, Stamp stamp) {
  StreamScan* s = scan(base.stream);
  JISC_CHECK(s != nullptr) << "no scan for stream " << base.stream;
  Message m;
  m.kind = Message::Kind::kArrival;
  m.stamp = stamp;
  m.base = base;
  s->Enqueue(std::move(m));
  if (ctx_.metrics != nullptr) ++ctx_.metrics->arrivals;
}

void PipelineExecutor::PushExpiry(const BaseTuple& base, Stamp stamp) {
  JISC_CHECK(options_.external_expiry);
  StreamScan* s = scan(base.stream);
  JISC_CHECK(s != nullptr) << "no scan for stream " << base.stream;
  Message m;
  m.kind = Message::Kind::kRemoval;
  m.stamp = stamp;
  m.base = base;
  s->Enqueue(std::move(m));
}

void PipelineExecutor::RunUntilIdle() {
  while (!ready_.empty()) {
    Operator* op = ready_.front();
    ready_.pop_front();
    in_ready_[static_cast<size_t>(op->node_id())] = 0;
    while (op->HasWork()) op->ProcessOne(&ctx_);
  }
  // Quiescent: no in-flight message can probe below any tombstone.
  for (auto& op : ops_) {
    if (op->state().HasTombstones()) op->state().VacuumDirty();
  }
}

StatePool PipelineExecutor::TakeAllStates() {
  JISC_CHECK(Idle());
  StatePool pool;
  for (auto& op : ops_) {
    if (op->kind() == OpKind::kScan) {
      auto* scan = static_cast<StreamScan*>(op.get());
      pool.PutWindow(scan->stream(), scan->TakeWindow());
    }
    std::unique_ptr<OperatorState> st = op->ReleaseState();
    // Tombstones are tracked per touched bucket, so the targeted vacuum
    // fully purges them without rescanning the whole state.
    st->VacuumDirty();
    pool.Put(std::move(st));
  }
  return pool;
}

StateSnapshot PipelineExecutor::SnapshotCompleteness() const {
  StateSnapshot snap;
  for (const auto& op : ops_) {
    snap.Add(op->streams(), op->state().complete());
  }
  return snap;
}

bool PipelineExecutor::AllStatesNewerThan(Seq boundary) {
  // Deliberately a full scan of every state: this mirrors the Parallel
  // Track purge detection the paper calls out as costly ("each operator in
  // the old plan periodically checks if all the old tuples have been purged
  // from its state").
  bool all_newer = true;
  uint64_t scanned = 0;
  for (const auto& op : ops_) {
    op->state().ForEachLive([&](const Tuple& t) {
      ++scanned;
      for (const BaseTuple& p : t.parts()) {
        if (p.seq < boundary) all_newer = false;
      }
    });
  }
  if (ctx_.metrics != nullptr) ctx_.metrics->purge_scan_entries += scanned;
  return all_newer;
}

}  // namespace jisc
