#ifndef JISC_EXEC_SINK_H_
#define JISC_EXEC_SINK_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/hash.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "exec/metrics.h"
#include "obs/observability.h"
#include "types/tuple.h"

namespace jisc {

// Consumer of the query result stream. OnOutput delivers a new result
// combination; OnRetract withdraws a previously delivered one (its window
// slid away). Aggregating sinks (Section 4.7: unary operators on top of the
// QEP) use both.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void OnOutput(const Tuple& tuple, Stamp stamp) = 0;
  virtual void OnRetract(const Tuple& tuple, Stamp stamp) {
    (void)tuple;
    (void)stamp;
  }
};

// Counts outputs; optionally invokes a callback on each (latency probes).
class CountingSink : public Sink {
 public:
  CountingSink() = default;

  void OnOutput(const Tuple& tuple, Stamp stamp) override {
    (void)tuple;
    ++outputs_;
    if (on_output_) on_output_(tuple, stamp);
  }
  void OnRetract(const Tuple&, Stamp) override { ++retractions_; }

  void SetCallback(std::function<void(const Tuple&, Stamp)> cb) {
    on_output_ = std::move(cb);
  }

  uint64_t outputs() const { return outputs_; }
  uint64_t retractions() const { return retractions_; }

 private:
  uint64_t outputs_ = 0;
  uint64_t retractions_ = 0;
  std::function<void(const Tuple&, Stamp)> on_output_;
};

// Stores every output/retraction (tests and the reference comparison).
class CollectingSink : public Sink {
 public:
  void OnOutput(const Tuple& tuple, Stamp stamp) override {
    outputs_.push_back(tuple);
    output_stamps_.push_back(stamp);
  }
  void OnRetract(const Tuple& tuple, Stamp stamp) override {
    retractions_.push_back(tuple);
    (void)stamp;
  }

  const std::vector<Tuple>& outputs() const { return outputs_; }
  const std::vector<Stamp>& output_stamps() const { return output_stamps_; }
  const std::vector<Tuple>& retractions() const { return retractions_; }

  void Clear() {
    outputs_.clear();
    output_stamps_.clear();
    retractions_.clear();
  }

 private:
  std::vector<Tuple> outputs_;
  std::vector<Stamp> output_stamps_;
  std::vector<Tuple> retractions_;
};

// COUNT(*) over the result with retraction support: the paper's example of
// an aggregate on top of the QEP that is unaffected by plan transitions.
class CountAggregateSink : public Sink {
 public:
  void OnOutput(const Tuple&, Stamp) override { ++count_; }
  void OnRetract(const Tuple&, Stamp) override { --count_; }
  int64_t count() const { return count_; }

 private:
  int64_t count_ = 0;
};

// GROUP BY join-key COUNT(*) with retraction support.
class GroupCountSink : public Sink {
 public:
  void OnOutput(const Tuple& tuple, Stamp) override {
    counts_[tuple.key()] += 1;
  }
  void OnRetract(const Tuple& tuple, Stamp) override {
    auto it = counts_.find(tuple.key());
    if (it != counts_.end() && --it->second == 0) counts_.erase(it);
  }
  const std::map<JoinKey, int64_t>& counts() const { return counts_; }

 private:
  std::map<JoinKey, int64_t> counts_;
};

// SUM(payloads) over the live result with retraction support: every part's
// payload contributes once per live combination it appears in.
class SumAggregateSink : public Sink {
 public:
  void OnOutput(const Tuple& tuple, Stamp) override {
    for (const BaseTuple& p : tuple.parts()) sum_ += p.payload;
  }
  void OnRetract(const Tuple& tuple, Stamp) override {
    for (const BaseTuple& p : tuple.parts()) sum_ -= p.payload;
  }
  int64_t sum() const { return sum_; }

 private:
  int64_t sum_ = 0;
};

// Maintains per-key live-result counts and answers top-k queries -- a
// typical monitoring aggregate kept on top of the QEP (Section 4.7: unary
// operators are unaffected by plan transitions).
class TopKeysSink : public Sink {
 public:
  void OnOutput(const Tuple& tuple, Stamp) override {
    counts_[tuple.key()] += 1;
  }
  void OnRetract(const Tuple& tuple, Stamp) override {
    auto it = counts_.find(tuple.key());
    if (it != counts_.end() && --it->second == 0) counts_.erase(it);
  }

  // Keys with the k largest live counts, ties broken by smaller key.
  std::vector<std::pair<JoinKey, int64_t>> TopK(size_t k) const {
    std::vector<std::pair<JoinKey, int64_t>> all(counts_.begin(),
                                                 counts_.end());
    std::sort(all.begin(), all.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    if (all.size() > k) all.resize(k);
    return all;
  }

  size_t distinct_keys() const { return counts_.size(); }

 private:
  std::unordered_map<JoinKey, int64_t, I64Hash> counts_;
};

// Observability adapter: records each output's delay — the processor calls
// BeginEvent() when it admits an external event, and every output delivered
// before the next BeginEvent() is charged now - admission into
// obs->output_delay_ns. During a migration this captures exactly the
// paper's Fig. 10 output-delay quantity: an arrival whose probe triggers
// just-in-time completion (or that queued behind an eager state rebuild)
// delivers its outputs late, and the lateness lands in the histogram's
// tail. Single-threaded like the sinks it wraps; under the parallel
// executor each shard engine owns its own wrapper (its own admission
// clock) while the histogram they record into is shared and lock-free.
class OutputDelaySink : public Sink {
 public:
  // Both pointers must outlive the sink; wiring is deferred because the
  // owning processor constructs its sink chain before options are applied.
  void Wire(Sink* downstream, Observability* obs) {
    downstream_ = downstream;
    obs_ = obs;
  }

  // Marks the admission of the next external event.
  void BeginEvent() {
    if (obs_ != nullptr) admit_ns_ = obs_->trace.NowNs();
  }

  // Backdated admission mark: the event is charged from `ns` (an earlier
  // trace-clock reading) instead of now. The engine uses this to charge the
  // first post-transition event for the time the transition itself took —
  // its outputs were delayed by exactly that much wall time.
  void BeginEventAt(uint64_t ns) { admit_ns_ = ns; }

  void OnOutput(const Tuple& tuple, Stamp stamp) override {
    if (obs_ != nullptr) {
      obs_->output_delay_ns.Record(obs_->trace.NowNs() - admit_ns_);
    }
    downstream_->OnOutput(tuple, stamp);
  }
  void OnRetract(const Tuple& tuple, Stamp stamp) override {
    downstream_->OnRetract(tuple, stamp);
  }

 private:
  Sink* downstream_ = nullptr;
  Observability* obs_ = nullptr;
  uint64_t admit_ns_ = 0;
};

// Serializing adapter: makes any single-threaded sink safe to share across
// the shards of a parallel executor. Deliveries are mutually excluded, so
// the downstream sink observes a linearized output stream (ordering across
// shards is unspecified; within a shard it is preserved). The downstream
// sink is reached only through the pt-guarded pointer, so the compiler
// rejects any future delivery path that forgets the lock.
class LockedSink : public Sink {
 public:
  explicit LockedSink(Sink* downstream) : downstream_(downstream) {}

  void OnOutput(const Tuple& tuple, Stamp stamp) override {
    MutexLock lk(&mu_);
    downstream_->OnOutput(tuple, stamp);
  }
  void OnRetract(const Tuple& tuple, Stamp stamp) override {
    MutexLock lk(&mu_);
    downstream_->OnRetract(tuple, stamp);
  }

 private:
  Sink* const downstream_ JISC_PT_GUARDED_BY(mu_);
  Mutex mu_;
};

// Duplicate-eliminating sink used by the Parallel Track strategy: while
// several plans run side by side, each result is produced once per plan
// that covers it. The sink counts, per live result identity, how many plans
// currently hold it: the first production is forwarded, the last
// withdrawal is forwarded, everything in between is suppressed. When a
// plan is discarded, NoteDiscard() releases its share of the counts (no
// user-visible retraction -- a surviving plan still covers the result).
// Lookup costs are charged to `metrics->dedup_checks` (the paper counts
// duplicate elimination as migration overhead).
class DedupSink : public Sink {
 public:
  explicit DedupSink(Sink* downstream) : downstream_(downstream) {}

  void set_metrics(Metrics* metrics) { metrics_ = metrics; }

  void OnOutput(const Tuple& tuple, Stamp stamp) override;
  void OnRetract(const Tuple& tuple, Stamp stamp) override;

  // A plan holding this live result was discarded.
  void NoteDiscard(const Tuple& tuple);

  // A new plan adopted this live result (hybrid migration copies root
  // state content): it now also retracts it on expiry.
  void NoteAdoption(const Tuple& tuple);

  size_t live_size() const { return counts_.size(); }

 private:
  Sink* downstream_;
  Metrics* metrics_ = nullptr;
  std::unordered_map<uint64_t, int, U64Hash> counts_;
};

}  // namespace jisc

#endif  // JISC_EXEC_SINK_H_
