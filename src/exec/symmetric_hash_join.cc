#include "exec/symmetric_hash_join.h"

#include "common/logging.h"

namespace jisc {

SymmetricHashJoin::SymmetricHashJoin(int node_id, StreamSet streams)
    : Operator(node_id, OpKind::kHashJoin, streams, StateIndex::kHash) {}

void SymmetricHashJoin::OnData(const Tuple& tuple, Side from,
                               ExecContext* ctx) {
  Operator* opposite = child(Opposite(from));
  JISC_DCHECK(opposite != nullptr);
  // Under JISC a handler completes the probe's entries on demand. Without
  // a handler (the hybrid track strategy) an incomplete state is probed
  // as-is: its gaps are covered by the older plans still running.
  if (!opposite->state().complete() && ctx->completion != nullptr) {
    ctx->completion->EnsureCompleted(tuple, opposite, ctx);
  }
  // Service-time histograms are opt-in on top of observability itself:
  // two steady-clock reads per probe/insert is real hot-path cost.
  bool timed = ctx->obs != nullptr && ctx->obs->options.record_service_times;
  uint64_t t0 = timed ? ctx->obs->trace.NowNs() : 0;
  std::vector<const Tuple*> matches;
  opposite->state().CollectMatchPtrs(tuple.key(), ctx->stamp, &matches);
  if (timed) ctx->obs->probe_ns.Record(ctx->obs->trace.NowNs() - t0);
  if (ctx->metrics != nullptr) {
    ++ctx->metrics->probes;
    ctx->metrics->probe_entries += matches.size();
    ctx->metrics->matches += matches.size();
  }
  for (const Tuple* m : matches) {
    Tuple out = Tuple::Concat(tuple, *m, ctx->stamp, tuple.fresh());
    if (timed) t0 = ctx->obs->trace.NowNs();
    state_->Insert(out, ctx->stamp);
    if (timed) ctx->obs->insert_ns.Record(ctx->obs->trace.NowNs() - t0);
    if (ctx->metrics != nullptr) ++ctx->metrics->inserts;
    EmitData(std::move(out), ctx);
  }
}

void SymmetricHashJoin::OnRemoval(const BaseTuple& base, Side from,
                                  ExecContext* ctx) {
  (void)from;
  std::vector<Tuple> removed;
  bool is_root = (parent_ == nullptr);
  int n = state_->RemoveContaining(base.seq, base.key, ctx->stamp,
                                   is_root ? &removed : nullptr);
  if (ctx->metrics != nullptr) ctx->metrics->removals += n;
  if (is_root) {
    EmitRetractions(removed, ctx);
    return;
  }
  bool propagate = n > 0;
  if (!propagate && !state_->complete()) {
    // Section 4.2: a removal finding no match in an incomplete state must
    // keep propagating (the missing entries may exist, fully materialized,
    // in a complete ancestor state) -- unless the handler can prove the
    // entries here are complete for this value (Section 4.4 optimization).
    propagate = true;
    if (ctx->completion != nullptr &&
        ctx->completion->RemovalMayStopAtIncomplete(base, this, ctx)) {
      propagate = false;
    }
  }
  if (propagate) EmitRemoval(base, ctx);
}

}  // namespace jisc
