#ifndef JISC_EXEC_STREAM_SCAN_H_
#define JISC_EXEC_STREAM_SCAN_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>

#include "exec/operator.h"
#include "stream/window.h"

namespace jisc {

// Leaf operator: admits base tuples of one stream, maintains the stream's
// count-based sliding window, and emits arrivals/expirations upward. Its
// state (the live window) is by definition always complete.
//
// In external-expiry mode (sharded parallel execution) the scan never
// slides its window itself: the coordinator, which sees the stream's full
// arrival sequence, decides when each tuple leaves the window and delivers
// an explicit expiry message. The window deque then holds exactly this
// shard's live subset of the global window.
class StreamScan : public Operator {
 public:
  StreamScan(int node_id, StreamId stream, uint64_t window_size,
             WindowSpec::Mode mode = WindowSpec::Mode::kCount,
             bool external_expiry = false);

  StreamId stream() const { return stream_; }
  uint64_t window_size() const { return window_size_; }
  size_t window_fill() const { return window_.size(); }

  // Oldest live sequence number, or kStampInfinity when empty. Used by the
  // purge detection of Parallel Track and the JISC completion fallback.
  Seq OldestLiveSeq() const;

  // Rebuilds the window deque from an adopted state (fallback when the
  // deque itself was not handed over).
  void RebuildWindowFromState();

  // O(1) window hand-off across plan migrations.
  std::deque<BaseTuple> TakeWindow() { return std::move(window_); }
  void AdoptWindow(std::deque<BaseTuple> window) {
    window_ = std::move(window);
  }

 protected:
  void OnArrival(const BaseTuple& base, ExecContext* ctx) override;
  void OnData(const Tuple& tuple, Side from, ExecContext* ctx) override;
  void OnRemoval(const BaseTuple& base, Side from, ExecContext* ctx) override;

 private:
  void ExpireFront(ExecContext* ctx);

  StreamId stream_;
  uint64_t window_size_;  // count, or duration in time mode
  WindowSpec::Mode mode_;
  bool external_expiry_;
  std::deque<BaseTuple> window_;
};

}  // namespace jisc

#endif  // JISC_EXEC_STREAM_SCAN_H_
