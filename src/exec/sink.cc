#include "exec/sink.h"

#include "common/logging.h"

namespace jisc {

void DedupSink::OnOutput(const Tuple& tuple, Stamp stamp) {
  if (metrics_ != nullptr) ++metrics_->dedup_checks;
  int& count = counts_[tuple.IdentityHash()];
  if (++count == 1) downstream_->OnOutput(tuple, stamp);
}

void DedupSink::OnRetract(const Tuple& tuple, Stamp stamp) {
  if (metrics_ != nullptr) ++metrics_->dedup_checks;
  auto it = counts_.find(tuple.IdentityHash());
  JISC_DCHECK(it != counts_.end());
  if (it == counts_.end()) return;
  if (--it->second == 0) {
    counts_.erase(it);
    downstream_->OnRetract(tuple, stamp);
  }
}

void DedupSink::NoteAdoption(const Tuple& tuple) {
  ++counts_[tuple.IdentityHash()];
}

void DedupSink::NoteDiscard(const Tuple& tuple) {
  auto it = counts_.find(tuple.IdentityHash());
  JISC_DCHECK(it != counts_.end());
  if (it == counts_.end()) return;
  if (--it->second == 0) counts_.erase(it);
}

}  // namespace jisc
