#ifndef JISC_EXEC_METRICS_H_
#define JISC_EXEC_METRICS_H_

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace jisc {

// One deterministic work counter. Increments use relaxed atomics so the
// per-shard engines of the parallel executor can be aggregated without
// data races; on the single-threaded path an uncontended relaxed fetch_add
// costs the same as a plain increment on x86/aarch64. Note this makes the
// individual counter reads race-free, not every metrics entry point: which
// entry points belong to the coordinator thread is declared (and
// lint-enforced) by JISC_COORDINATOR_ONLY on the entry point itself — see
// ParallelExecutor, whose quiescing metrics() carries the marker while
// MetricsApprox() is the thread-safe alternative. Counters are value
// types: copying snapshots the current count, which keeps Metrics copyable
// for before/after deltas in benches and tests.
class Counter {
 public:
  constexpr Counter() = default;
  // Implicit by design: counters initialize/compare against integer
  // literals throughout benches and tests.
  // NOLINTNEXTLINE(google-explicit-constructor)
  constexpr Counter(uint64_t v) : v_(v) {}
  Counter(const Counter& o) : v_(o.value()) {}
  Counter& operator=(const Counter& o) {
    v_.store(o.value(), std::memory_order_relaxed);
    return *this;
  }
  Counter& operator=(uint64_t v) {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }

  Counter& operator++() {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  Counter& operator--() {
    v_.fetch_sub(1, std::memory_order_relaxed);
    return *this;
  }
  Counter& operator+=(uint64_t d) {
    v_.fetch_add(d, std::memory_order_relaxed);
    return *this;
  }

  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  // NOLINTNEXTLINE(google-explicit-constructor)
  operator uint64_t() const { return value(); }

  friend std::ostream& operator<<(std::ostream& os, const Counter& c) {
    return os << c.value();
  }

 private:
  std::atomic<uint64_t> v_{0};
};

// Deterministic work counters maintained by the executor. Benchmarks report
// both wall time and these counters; the counters make the figures'
// *shapes* reproducible independently of machine noise. Each engine (and
// each shard of a parallel executor) owns one Metrics; increments are
// thread-safe, so cross-shard aggregation never races with in-flight work.
//
// Snapshot-consistency contract (what copying a Metrics means while
// workers are incrementing, i.e. what ParallelExecutor::MetricsApprox()
// returns): the copy is member-wise, one atomic load per counter, so
//  (1) every individual counter value is an exact point-in-time read —
//      never torn, never partial;
//  (2) the counters are NOT mutually consistent — `matches` may already
//      reflect an event whose `probes` increment was read a moment
//      earlier; derived sums (WorkUnits) inherit this slack; and
//  (3) because execution only ever increments these counters, each
//      counter — and therefore WorkUnits() — is monotonically
//      non-decreasing across successive approx snapshots. Monitoring
//      loops may rely on (3); anything needing cross-counter exactness
//      must quiesce first (the JISC_COORDINATOR_ONLY metrics() path).
// Locked in by parallel_test.cc (MetricsApproxTotalsAreMonotone).
struct Metrics {
  Counter arrivals;          // base tuples admitted
  Counter messages;          // operator queue messages processed
  Counter probes;            // state probes issued by operators
  Counter probe_entries;     // entries examined during probes
  Counter matches;           // successful matches
  Counter inserts;           // state insertions
  Counter removals;          // state entry removals (expiry/suppression)
  Counter outputs;           // tuples delivered to the sink
  Counter retractions;       // retractions delivered to the sink
  Counter completions;       // JISC per-key state completions performed
  Counter completion_inserts;  // entries materialized by completion
  Counter completion_dedup_hits;
  Counter eddy_visits;       // eddy routing hops (CACQ/STAIRs)
  Counter dedup_checks;      // Parallel Track sink dedup lookups
  Counter purge_scan_entries;  // entries scanned by purge detection

  // Scalar proxy for total work, used as the "running time" shape metric.
  uint64_t WorkUnits() const {
    return messages + probes + probe_entries + inserts + removals +
           completion_inserts + eddy_visits + dedup_checks +
           purge_scan_entries;
  }

  void Reset() { *this = Metrics{}; }

  Metrics& operator+=(const Metrics& o);

  std::string ToString() const;

  // Name/value snapshot of every counter, declaration order. This is the
  // bridge to the metrics JSON exporter (obs/trace_export.h), which takes
  // plain pairs so the obs library never depends on exec. Reads follow the
  // per-counter contract above.
  std::vector<std::pair<std::string, uint64_t>> NamedCounters() const;
};

}  // namespace jisc

#endif  // JISC_EXEC_METRICS_H_
