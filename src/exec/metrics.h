#ifndef JISC_EXEC_METRICS_H_
#define JISC_EXEC_METRICS_H_

#include <cstdint>
#include <string>

namespace jisc {

// Deterministic work counters maintained by the executor. Benchmarks report
// both wall time and these counters; the counters make the figures'
// *shapes* reproducible independently of machine noise.
struct Metrics {
  uint64_t arrivals = 0;          // base tuples admitted
  uint64_t messages = 0;          // operator queue messages processed
  uint64_t probes = 0;            // state probes issued by operators
  uint64_t probe_entries = 0;     // entries examined during probes
  uint64_t matches = 0;           // successful matches
  uint64_t inserts = 0;           // state insertions
  uint64_t removals = 0;          // state entry removals (expiry/suppression)
  uint64_t outputs = 0;           // tuples delivered to the sink
  uint64_t retractions = 0;       // retractions delivered to the sink
  uint64_t completions = 0;       // JISC per-key state completions performed
  uint64_t completion_inserts = 0;  // entries materialized by completion
  uint64_t completion_dedup_hits = 0;
  uint64_t eddy_visits = 0;       // eddy routing hops (CACQ/STAIRs)
  uint64_t dedup_checks = 0;      // Parallel Track sink dedup lookups
  uint64_t purge_scan_entries = 0;  // entries scanned by purge detection

  // Scalar proxy for total work, used as the "running time" shape metric.
  uint64_t WorkUnits() const {
    return messages + probes + probe_entries + inserts + removals +
           completion_inserts + eddy_visits + dedup_checks +
           purge_scan_entries;
  }

  void Reset() { *this = Metrics{}; }

  Metrics& operator+=(const Metrics& o);

  std::string ToString() const;
};

}  // namespace jisc

#endif  // JISC_EXEC_METRICS_H_
