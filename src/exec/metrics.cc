#include "exec/metrics.h"

#include <sstream>

namespace jisc {

Metrics& Metrics::operator+=(const Metrics& o) {
  arrivals += o.arrivals;
  messages += o.messages;
  probes += o.probes;
  probe_entries += o.probe_entries;
  matches += o.matches;
  inserts += o.inserts;
  removals += o.removals;
  outputs += o.outputs;
  retractions += o.retractions;
  completions += o.completions;
  completion_inserts += o.completion_inserts;
  completion_dedup_hits += o.completion_dedup_hits;
  eddy_visits += o.eddy_visits;
  dedup_checks += o.dedup_checks;
  purge_scan_entries += o.purge_scan_entries;
  return *this;
}

std::vector<std::pair<std::string, uint64_t>> Metrics::NamedCounters() const {
  return {{"arrivals", arrivals},
          {"messages", messages},
          {"probes", probes},
          {"probe_entries", probe_entries},
          {"matches", matches},
          {"inserts", inserts},
          {"removals", removals},
          {"outputs", outputs},
          {"retractions", retractions},
          {"completions", completions},
          {"completion_inserts", completion_inserts},
          {"completion_dedup_hits", completion_dedup_hits},
          {"eddy_visits", eddy_visits},
          {"dedup_checks", dedup_checks},
          {"purge_scan_entries", purge_scan_entries},
          {"work_units", WorkUnits()}};
}

std::string Metrics::ToString() const {
  std::ostringstream os;
  os << "arrivals=" << arrivals << " messages=" << messages
     << " probes=" << probes << " probe_entries=" << probe_entries
     << " matches=" << matches << " inserts=" << inserts
     << " removals=" << removals << " outputs=" << outputs
     << " retractions=" << retractions << " completions=" << completions
     << " completion_inserts=" << completion_inserts
     << " eddy_visits=" << eddy_visits << " work=" << WorkUnits();
  return os.str();
}

}  // namespace jisc
