#include "exec/validate.h"

#include <map>
#include <set>
#include <sstream>

#include "exec/stream_scan.h"

namespace jisc {

namespace {

std::multiset<uint64_t> LiveIdentitySet(const OperatorState& st) {
  std::multiset<uint64_t> out;
  st.ForEachLive([&](const Tuple& t) { out.insert(t.IdentityHash()); });
  return out;
}

std::vector<Tuple> LiveTuples(const OperatorState& st) {
  std::vector<Tuple> out;
  st.ForEachLive([&](const Tuple& t) { out.push_back(t); });
  return out;
}

Status Fail(const Operator* op, const std::string& what) {
  std::ostringstream os;
  os << "invariant violation at " << op->DebugString() << ": " << what;
  return Status::Internal(os.str());
}

}  // namespace

Status ValidateExecutorInvariants(PipelineExecutor& exec,
                                  const ThetaSpec& theta) {
  if (!exec.Idle()) {
    return Status::FailedPrecondition("executor not quiescent");
  }
  for (int id = 0; id < exec.num_ops(); ++id) {
    Operator* op = exec.op(id);
    const OperatorState& st = op->state();

    // Counter consistency.
    size_t live = 0;
    std::set<JoinKey> keys;
    st.ForEachLive([&](const Tuple& t) {
      ++live;
      keys.insert(t.key());
    });
    if (live != st.live_size()) return Fail(op, "live counter mismatch");
    if (keys.size() != st.DistinctLiveKeys()) {
      return Fail(op, "distinct-key counter mismatch");
    }

    if (op->kind() == OpKind::kScan) {
      auto* scan = static_cast<StreamScan*>(op);
      if (scan->window_fill() != st.live_size()) {
        return Fail(op, "window deque out of sync with scan state");
      }
      continue;
    }
    if (!st.complete()) continue;  // content defined lazily

    // Recompute the expected content from the children's live sets.
    std::vector<Tuple> left = LiveTuples(op->left()->state());
    std::vector<Tuple> right = LiveTuples(op->right()->state());
    std::multiset<uint64_t> expect;
    switch (op->kind()) {
      case OpKind::kHashJoin:
        for (const Tuple& l : left) {
          for (const Tuple& r : right) {
            if (l.key() == r.key()) {
              expect.insert(Tuple::Concat(l, r, 0, false).IdentityHash());
            }
          }
        }
        break;
      case OpKind::kNljJoin:
        for (const Tuple& l : left) {
          for (const Tuple& r : right) {
            if (theta.Matches(l, r)) {
              expect.insert(Tuple::Concat(l, r, 0, false).IdentityHash());
            }
          }
        }
        break;
      case OpKind::kSetDifference:
        for (const Tuple& l : left) {
          if (!op->right()->state().ContainsKeyLive(l.key())) {
            expect.insert(l.IdentityHash());
          }
        }
        break;
      case OpKind::kSemiJoin:
        for (const Tuple& l : left) {
          if (op->right()->state().ContainsKeyLive(l.key())) {
            expect.insert(l.IdentityHash());
          }
        }
        break;
      case OpKind::kScan:
        break;  // handled above
    }
    // The children themselves may be incomplete (their live sets are then
    // subsets); a complete state's content must still be a SUPERSET of the
    // recompute and EQUAL when both children are complete.
    std::multiset<uint64_t> actual = LiveIdentitySet(st);
    bool children_complete = op->left()->state().complete() &&
                             op->right()->state().complete();
    if (children_complete) {
      if (actual != expect) {
        return Fail(op, "complete state differs from children recompute");
      }
    } else {
      for (uint64_t h : expect) {
        if (actual.find(h) == actual.end()) {
          return Fail(op, "complete state missing a derivable combination");
        }
      }
    }
  }
  return Status::Ok();
}

uint64_t StateBytes(const OperatorState& st) {
  uint64_t bytes = 0;
  st.ForEachLive([&](const Tuple& t) {
    bytes += sizeof(Tuple) + 2 * sizeof(Stamp);     // entry
    bytes += t.parts().size() * sizeof(BaseTuple);  // parts storage
  });
  bytes += st.DistinctLiveKeys() * 48;  // bucket bookkeeping estimate
  return bytes;
}

uint64_t StateMemoryBytes(const PipelineExecutor& exec) {
  uint64_t bytes = 0;
  for (int id = 0; id < exec.num_ops(); ++id) {
    bytes += StateBytes(exec.op(id)->state());
  }
  return bytes;
}

uint64_t ApproxStateMemoryBytes(const PipelineExecutor& exec) {
  uint64_t bytes = 0;
  for (int id = 0; id < exec.num_ops(); ++id) {
    bytes += exec.op(id)->state().ApproxBytes();
  }
  return bytes;
}

}  // namespace jisc
