#ifndef JISC_EXEC_NESTED_LOOPS_JOIN_H_
#define JISC_EXEC_NESTED_LOOPS_JOIN_H_

#include "exec/operator.h"
#include "exec/theta.h"

namespace jisc {

// Symmetric nested-loops join for general theta predicates (Section 2.1:
// "we use a nested-loops join for general theta joins"). Identical dataflow
// to SymmetricHashJoin, but probes scan the entire opposite state and
// evaluate the ThetaSpec predicate, and the operator's own state is
// unindexed (StateIndex::kList).
//
// Under JISC, an incomplete nested-loops state is completed in full on its
// first probe (per-value completion has no meaning for theta predicates);
// the Moving State baseline instead recomputes all such states eagerly at
// transition time, which is what produces the dramatic latency gap of
// Fig. 10b.
class NestedLoopsJoin : public Operator {
 public:
  NestedLoopsJoin(int node_id, StreamSet streams, ThetaSpec theta);

  const ThetaSpec& theta() const { return theta_; }

 protected:
  void OnData(const Tuple& tuple, Side from, ExecContext* ctx) override;
  void OnRemoval(const BaseTuple& base, Side from, ExecContext* ctx) override;

 private:
  ThetaSpec theta_;
};

}  // namespace jisc

#endif  // JISC_EXEC_NESTED_LOOPS_JOIN_H_
