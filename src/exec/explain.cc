#include "exec/explain.h"

#include <sstream>

namespace jisc {

namespace {

void ExplainNode(const PipelineExecutor& exec, int id, int depth,
                 std::ostringstream* os) {
  const Operator* op = exec.op(id);
  for (int i = 0; i < depth; ++i) *os << (i + 1 == depth ? "+- " : "|  ");
  const OperatorState& st = op->state();
  *os << OpKindName(op->kind()) << "#" << id << " "
      << op->streams().ToString();
  if (op->kind() == OpKind::kScan) {
    const auto* scan = static_cast<const StreamScan*>(op);
    *os << " window=" << scan->window_fill() << "/" << scan->window_size();
  }
  *os << " live=" << st.live_size() << " keys=" << st.DistinctLiveKeys();
  if (st.complete()) {
    *os << " [complete]";
  } else {
    *os << " [INCOMPLETE, " << st.NumCompletedKeys() << " values completed]";
  }
  *os << "\n";
  const PlanNode& n = exec.plan().node(id);
  if (n.kind != OpKind::kScan) {
    ExplainNode(exec, n.left, depth + 1, os);
    ExplainNode(exec, n.right, depth + 1, os);
  }
}

}  // namespace

std::string ExplainExecutor(const PipelineExecutor& exec) {
  std::ostringstream os;
  os << "plan: " << exec.plan().ToString() << "\n";
  ExplainNode(exec, exec.plan().root(), 0, &os);
  return os.str();
}

std::string ExecutorToDot(const PipelineExecutor& exec) {
  std::ostringstream os;
  os << "digraph plan {\n  rankdir=BT;\n  node [shape=box];\n";
  for (int id = 0; id < exec.num_ops(); ++id) {
    const Operator* op = exec.op(id);
    const OperatorState& st = op->state();
    os << "  n" << id << " [label=\"" << OpKindName(op->kind()) << " "
       << op->streams().ToString() << "\\nlive=" << st.live_size();
    if (!st.complete()) {
      os << "\\nINCOMPLETE\" style=filled fillcolor=lightsalmon];\n";
    } else {
      os << "\"];\n";
    }
  }
  for (int id = 0; id < exec.num_ops(); ++id) {
    const PlanNode& n = exec.plan().node(id);
    if (n.kind == OpKind::kScan) continue;
    os << "  n" << n.left << " -> n" << id << ";\n";
    os << "  n" << n.right << " -> n" << id << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace jisc
