#ifndef JISC_EXEC_THETA_H_
#define JISC_EXEC_THETA_H_

#include <cstdint>
#include <cstdlib>

#include "types/tuple.h"

namespace jisc {

// Predicate evaluated by nested-loops (general theta) joins. The predicate
// is defined pairwise on the join attribute and applied between every pair
// of base parts across the two sides, which makes the output of a subtree a
// function of its stream set alone — the property plan migration relies on
// (states are identified by stream sets).
//
// band == 0 is plain key equality (the hash-join predicate, evaluated the
// expensive way); band > 0 is a band join |k_a - k_b| <= band.
struct ThetaSpec {
  int64_t band = 0;

  bool PairMatches(JoinKey a, JoinKey b) const {
    return std::llabs(a - b) <= band;
  }

  // All-pairs test across the two combinations' parts.
  bool Matches(const Tuple& a, const Tuple& b) const {
    if (band == 0) {
      // Equi case: every part of a combination shares one key.
      return a.key() == b.key();
    }
    for (const BaseTuple& pa : a.parts()) {
      for (const BaseTuple& pb : b.parts()) {
        if (!PairMatches(pa.key, pb.key)) return false;
      }
    }
    return true;
  }
};

}  // namespace jisc

#endif  // JISC_EXEC_THETA_H_
