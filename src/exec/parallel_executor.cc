#include "exec/parallel_executor.h"

#include <chrono>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "obs/observability.h"
#include "obs/trace.h"

namespace jisc {

ParallelExecutor::ParallelExecutor(const LogicalPlan& plan,
                                   const WindowSpec& windows, Sink* sink,
                                   const ShardFactory& factory,
                                   Options options)
    : options_(options),
      windows_(windows),
      acks_(static_cast<size_t>(options.num_shards > 0 ? options.num_shards
                                                       : 1)),
      live_(static_cast<size_t>(windows.num_streams())) {
  JISC_CHECK(options_.num_shards >= 1);
  JISC_CHECK(options_.batch_size >= 1);
  Status shardable = ValidateShardable(plan);
  JISC_CHECK(shardable.ok()) << shardable.ToString();
  if (options_.obs != nullptr) telemetry_ = options_.obs->telemetry.get();
  if (telemetry_ != nullptr) {
    // Track 0 is the coordinator; shard i records on track i + 1 (same
    // numbering as the trace recorder).
    telemetry_->RegisterTracks(1 + options_.num_shards);
  }
  if (sink != nullptr) {
    locked_sink_ = std::make_unique<LockedSink>(sink);
  }
  for (int i = 0; i < options_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>(options_.queue_capacity);
    shard->processor = factory(locked_sink_.get(), i);
    JISC_CHECK(shard->processor != nullptr);
    shard->pending.reserve(options_.batch_size);
    shard->index = i;
    shards_.push_back(std::move(shard));
  }
  name_ = "parallel-" + std::to_string(options_.num_shards) + "x-" +
          shards_[0]->processor->name();
  // Workers start only after every shard is fully constructed: the shard
  // vector is immutable (and safely published) from here on.
  for (int i = 0; i < options_.num_shards; ++i) {
    shards_[static_cast<size_t>(i)]->thread =
        std::thread([this, i] { WorkerLoop(i); });
  }
}

ParallelExecutor::~ParallelExecutor() {
  FlushAll();
  for (auto& s : shards_) s->feed.Close();
  for (auto& s : shards_) {
    if (s->thread.joinable()) s->thread.join();
  }
  acks_.Close();
}

Status ParallelExecutor::ValidateShardable(const LogicalPlan& plan) {
  Status valid = plan.Validate();
  if (!valid.ok()) return valid;
  for (int id = 0; id < plan.num_nodes(); ++id) {
    if (plan.node(id).kind == OpKind::kNljJoin) {
      return Status::InvalidArgument(
          "theta (nested-loops) plans match across key boundaries and "
          "cannot be hash-partitioned");
    }
  }
  return Status::Ok();
}

int ParallelExecutor::OwnerShard(JoinKey key) const {
  return static_cast<int>(MixU64(static_cast<uint64_t>(key)) %
                          static_cast<uint64_t>(shards_.size()));
}

void ParallelExecutor::Enqueue(int shard, ShardEvent ev) {
  Shard& s = *shards_[static_cast<size_t>(shard)];
  s.pending.push_back(std::move(ev));
  if (s.pending.size() >= options_.batch_size) FlushShard(s);
}

void ParallelExecutor::FlushShard(Shard& s) {
  if (s.pending.empty()) return;
  EventBatch batch;
  batch.reserve(options_.batch_size);
  batch.swap(s.pending);
  if (telemetry_ == nullptr) {
    bool pushed = s.feed.Push(std::move(batch));
    JISC_CHECK(pushed) << "shard feed closed while pushing";
    return;
  }
  const int track = s.index + 1;
  // TryPush first so the common uncontended hand-off takes zero clock
  // reads; only a full feed (the coordinator about to block on
  // backpressure) pays for two timestamps to meter the stall.
  if (!s.feed.TryPush(batch)) {
    uint64_t t0 = telemetry_->NowNs();
    bool pushed = s.feed.Push(std::move(batch));
    JISC_CHECK(pushed) << "shard feed closed while pushing";
    telemetry_->OnStall(track, telemetry_->NowNs() - t0);
  }
  telemetry_->SetQueueDepth(track, s.feed.SizeApprox());
}

void ParallelExecutor::FlushAll() {
  for (auto& s : shards_) FlushShard(*s);
}

void ParallelExecutor::Push(const BaseTuple& tuple) {
  JISC_CHECK(tuple.stream < live_.size());
  if (telemetry_ != nullptr) telemetry_->OnInput(tuple.seq);
  std::deque<BaseTuple>& window = live_[tuple.stream];
  // Global window slide: same trigger as StreamScan::OnArrival, but the
  // displaced tuple's expiry is routed to the shard that owns it, ahead of
  // the arrival (same-key expiry and arrival share a shard, so the
  // "removal before displacing arrival" invariant survives sharding).
  uint64_t size = windows_.SizeFor(tuple.stream);
  if (windows_.time_based()) {
    while (!window.empty() && window.front().ts + size <= tuple.ts) {
      ShardEvent ev;
      ev.kind = ShardEvent::Kind::kExpire;
      ev.base = window.front();
      Enqueue(OwnerShard(ev.base.key), std::move(ev));
      window.pop_front();
    }
  } else if (window.size() >= size) {
    ShardEvent ev;
    ev.kind = ShardEvent::Kind::kExpire;
    ev.base = window.front();
    Enqueue(OwnerShard(ev.base.key), std::move(ev));
    window.pop_front();
  }
  window.push_back(tuple);
  ShardEvent ev;
  ev.kind = ShardEvent::Kind::kArrival;
  ev.base = tuple;
  Enqueue(OwnerShard(tuple.key), std::move(ev));
}

Status ParallelExecutor::BroadcastAndWait(const ShardEvent& ev) {
  FlushAll();
  for (size_t i = 0; i < shards_.size(); ++i) {
    EventBatch batch;
    batch.push_back(ev);
    bool pushed = shards_[i]->feed.Push(std::move(batch));
    JISC_CHECK(pushed) << "shard feed closed during broadcast";
  }
  Status first_error;
  for (size_t i = 0; i < shards_.size(); ++i) {
    Ack ack;
    bool ok = acks_.Pop(&ack);
    JISC_CHECK(ok) << "ack queue closed while waiting for shards";
    if (!ack.status.ok() && first_error.ok()) first_error = ack.status;
  }
  return first_error;
}

Status ParallelExecutor::RequestTransition(const LogicalPlan& new_plan) {
  Status shardable = ValidateShardable(new_plan);
  if (!shardable.ok()) return shardable;
  // Coordinator-side view of the whole broadcast (track 0); each shard
  // records its own migration-phase spans on track shard + 1.
  TraceScope span(options_.obs != nullptr ? &options_.obs->trace : nullptr,
                  "transition-broadcast", "migration", /*track=*/0);
  ShardEvent ev;
  ev.kind = ShardEvent::Kind::kTransition;
  ev.plan = std::make_shared<const LogicalPlan>(new_plan);
  // Broadcast at the same point of every shard's event sequence: each
  // shard's transition separates exactly the globally pre-transition
  // arrivals from post-transition ones, so per-shard freshness (Def. 2)
  // and completion (Section 4.3) see the same old/new split as the
  // single-threaded engine.
  return BroadcastAndWait(ev);
}

void ParallelExecutor::Barrier() {
  TraceScope span(options_.obs != nullptr ? &options_.obs->trace : nullptr,
                  "barrier", "migration", /*track=*/0);
  ShardEvent ev;
  ev.kind = ShardEvent::Kind::kBarrier;
  Status s = BroadcastAndWait(ev);
  JISC_CHECK(s.ok()) << s.ToString();
}

const Metrics& ParallelExecutor::metrics() const {
  const_cast<ParallelExecutor*>(this)->Barrier();
  agg_metrics_.Reset();
  for (const auto& s : shards_) agg_metrics_ += s->processor->metrics();
  return agg_metrics_;
}

uint64_t ParallelExecutor::StateMemory() const {
  const_cast<ParallelExecutor*>(this)->Barrier();
  uint64_t bytes = 0;
  for (const auto& s : shards_) bytes += s->processor->StateMemory();
  return bytes;
}

Metrics ParallelExecutor::MetricsApprox() const {
  // Shard Engine::metrics() returns a reference to counters that are only
  // ever incremented through relaxed atomics, so summing them while workers
  // run is race-free (though a batch may be caught mid-flight).
  Metrics m;
  for (const auto& s : shards_) m += s->processor->metrics();
  return m;
}

// jisc-worker-entry: runs on a shard thread; calling any
// JISC_COORDINATOR_ONLY method from here is a lint error.
void ParallelExecutor::WorkerLoop(int shard_index) {
  Shard& s = *shards_[static_cast<size_t>(shard_index)];
  StreamProcessor* proc = s.processor.get();
  const int track = shard_index + 1;
  // Injected straggler (tests/scenarios): periodic wall-clock sleeps on one
  // worker, no effect on outputs or deterministic counters.
  const bool inject = shard_index == options_.straggler_shard &&
                      options_.straggler_stall_ns > 0 &&
                      options_.straggler_stall_every > 0;
  uint64_t injected_events = 0;
  EventBatch batch;
  while (s.feed.Pop(&batch)) {
    for (ShardEvent& ev : batch) {
      if (inject && ++injected_events % options_.straggler_stall_every == 0) {
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(options_.straggler_stall_ns));
      }
      switch (ev.kind) {
        case ShardEvent::Kind::kArrival:
          proc->Push(ev.base);
          break;
        case ShardEvent::Kind::kExpire:
          proc->PushExpiry(ev.base);
          break;
        case ShardEvent::Kind::kTransition: {
          Ack ack;
          ack.shard = shard_index;
          ack.status = proc->RequestTransition(*ev.plan);
          bool pushed = acks_.Push(std::move(ack));
          JISC_CHECK(pushed);
          break;
        }
        case ShardEvent::Kind::kBarrier: {
          Ack ack;
          ack.shard = shard_index;
          bool pushed = acks_.Push(std::move(ack));
          JISC_CHECK(pushed);
          break;
        }
      }
    }
    batch.clear();
    // Consumer-side refresh: the depth gauge must fall back to zero when
    // the worker catches up even if the coordinator stopped flushing, or
    // the watchdog would see phantom backlog on an idle shard.
    if (telemetry_ != nullptr) {
      telemetry_->SetQueueDepth(track, s.feed.SizeApprox());
    }
  }
}

}  // namespace jisc
