#ifndef JISC_EXEC_PARALLEL_EXECUTOR_H_
#define JISC_EXEC_PARALLEL_EXECUTOR_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "common/spsc_queue.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "exec/sink.h"
#include "exec/stream_processor.h"
#include "stream/window.h"

namespace jisc {

class TelemetryRegistry;

// Hash-partitioned parallel execution engine.
//
// Tuples are sharded by join-attribute hash across N workers; each worker
// runs an independent single-threaded StreamProcessor (an Engine in
// external-expiry mode) over its partition of the operator states. Because
// every operator of a shardable plan matches on join-key equality, a result
// combination's parts all carry one key and live entirely inside one shard,
// so the union of the shards' outputs equals the single-threaded engine's
// output multiset — the single-threaded path remains the equivalence
// oracle.
//
// Windows are the one global construct: a count window of W holds the
// stream's last W tuples *across all shards*. The coordinator (the thread
// calling Push) therefore keeps its own per-stream window bookkeeping,
// decides which tuple every arrival displaces, and sends that tuple's owner
// shard an explicit expiry event ahead of the arrival — preserving the
// single-threaded engine's invariant that a displaced tuple's expiry is
// processed before the tuple that displaced it. Same-key tuples share a
// shard, so all orderings that can affect the output are preserved; events
// on different keys commute.
//
// JISC migration works unchanged per shard: RequestTransition is broadcast,
// each shard carries over its own complete states and lazily completes
// incomplete ones — the per-value completion protocol of Section 4 never
// crosses a key boundary, hence never crosses a shard boundary.
//
// Threading/queues: each shard is fed through a bounded single-producer
// queue with blocking backpressure (the coordinator is the only producer);
// workers acknowledge control events (transition/barrier) through a shared
// bounded MPSC queue. Shutdown closes every feed and joins the workers
// after they drain.
//
// The public StreamProcessor surface must be driven by ONE thread (the
// coordinator); every entry point with that contract carries the
// JISC_COORDINATOR_ONLY marker below — the single source of truth,
// enforced by tools/lint_contracts.py (worker-thread code may not call a
// marked method). Push is asynchronous (it returns once the event is
// enqueued); metrics()/StateMemory() quiesce all shards through the same
// feed queues and ack channel as Push/RequestTransition, which is exactly
// why they are marked too. Monitoring threads that want a live view must
// use MetricsApprox(), which only reads atomic counters.
class ParallelExecutor : public StreamProcessor {
 public:
  struct Options {
    int num_shards = 4;
    // Shard feed capacity in batches; the producer blocks when full.
    size_t queue_capacity = 256;
    // Events accumulated per shard before a queue hand-off.
    size_t batch_size = 64;
    // Observability bundle (nullptr = off). The coordinator records its
    // broadcast/barrier spans on track 0; shard processors (wired by the
    // factory) record on track shard + 1 into the same bundle.
    Observability* obs = nullptr;
    // Fault injection for the telemetry stall watchdog (tests/scenarios
    // only): the worker of shard `straggler_shard` sleeps for
    // `straggler_stall_ns` after every `straggler_stall_every` processed
    // events. Wall-clock only — outputs and deterministic counters are
    // untouched, so injected runs stay baseline-comparable. -1 = off.
    int straggler_shard = -1;
    uint64_t straggler_stall_ns = 0;
    uint64_t straggler_stall_every = 64;
  };

  // Builds the worker for one shard. `shard_sink` delivers the shard's
  // outputs (already safe for concurrent use); the returned processor must
  // support PushExpiry (external-expiry mode).
  using ShardFactory =
      std::function<std::unique_ptr<StreamProcessor>(Sink* shard_sink,
                                                     int shard)>;

  // `sink` is the downstream consumer of the merged output stream; it is
  // wrapped in an internal LockedSink shared by all shards. Pass nullptr
  // when the factory wires its own (per-shard) sinks.
  ParallelExecutor(const LogicalPlan& plan, const WindowSpec& windows,
                   Sink* sink, const ShardFactory& factory, Options options);
  ~ParallelExecutor() override;

  // True when every stateful operator matches on join-key equality, the
  // property key-partitioning relies on (theta/NLJ plans are not
  // shardable).
  static Status ValidateShardable(const LogicalPlan& plan);

  // --- StreamProcessor ---
  std::string name() const override { return name_; }
  JISC_COORDINATOR_ONLY void Push(const BaseTuple& tuple) override;
  JISC_COORDINATOR_ONLY Status RequestTransition(
      const LogicalPlan& new_plan) override;
  // Quiesces all shards, then returns the merged per-shard counters (the
  // barrier mutates coordinator-side batches and consumes acks, so a
  // concurrent Push/RequestTransition races — hence the marker).
  // Monitoring threads should call MetricsApprox() instead.
  JISC_COORDINATOR_ONLY const Metrics& metrics() const override;
  // Quiesces, then walks worker-owned state.
  JISC_COORDINATOR_ONLY uint64_t StateMemory() const override;

  // Flushes every pending batch and blocks until all shards have processed
  // everything enqueued so far. The output sink is fully caught up on
  // return.
  JISC_COORDINATOR_ONLY void Barrier();

  // Thread-safe, non-quiescing counter snapshot: sums the shards' atomic
  // counters without a barrier, so batches still in flight are partially
  // reflected. This is the only observation entry point that may be called
  // concurrently with the coordinator (e.g. from a monitoring thread).
  Metrics MetricsApprox() const;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  StreamProcessor* shard(int i) { return shards_[i]->processor.get(); }

 private:
  struct ShardEvent {
    enum class Kind : uint8_t { kArrival, kExpire, kTransition, kBarrier };
    Kind kind = Kind::kArrival;
    BaseTuple base;
    std::shared_ptr<const LogicalPlan> plan;  // kTransition only
  };
  using EventBatch = std::vector<ShardEvent>;

  struct Ack {
    int shard = -1;
    Status status;
  };

  struct Shard {
    explicit Shard(size_t queue_capacity) : feed(queue_capacity) {}
    SpscQueue<EventBatch> feed;  // coordinator -> worker (single producer)
    std::unique_ptr<StreamProcessor> processor;
    EventBatch pending;  // coordinator-side batch under construction
    int index = -1;      // telemetry track = index + 1
    std::thread thread;
  };

  int OwnerShard(JoinKey key) const;
  // Coordinator-side helpers: they mutate the per-shard pending batches.
  JISC_COORDINATOR_ONLY void Enqueue(int shard, ShardEvent ev);
  JISC_COORDINATOR_ONLY void FlushShard(Shard& s);
  JISC_COORDINATOR_ONLY void FlushAll();
  // Broadcasts a control event and waits for every shard's ack; returns the
  // first non-OK status.
  JISC_COORDINATOR_ONLY Status BroadcastAndWait(const ShardEvent& ev);
  // Worker-thread entry point (jisc-worker-entry): everything reachable
  // from here runs on a shard thread, so tools/lint_contracts.py forbids
  // calls to JISC_COORDINATOR_ONLY methods inside it.
  void WorkerLoop(int shard_index);

  Options options_;
  // Cached from options_.obs (nullptr = telemetry off): gauge sites in the
  // Push/flush hot path and the worker loops gate on this one pointer.
  TelemetryRegistry* telemetry_ = nullptr;
  WindowSpec windows_;
  std::string name_;
  std::unique_ptr<LockedSink> locked_sink_;
  std::vector<std::unique_ptr<Shard>> shards_;
  BoundedQueue<Ack> acks_;  // workers -> coordinator (multi-producer)

  // Coordinator-side global window bookkeeping, one deque per stream
  // (count mode holds the live tuples; time mode likewise, pruned by ts).
  std::vector<std::deque<BaseTuple>> live_;

  mutable Metrics agg_metrics_;
};

}  // namespace jisc

#endif  // JISC_EXEC_PARALLEL_EXECUTOR_H_
