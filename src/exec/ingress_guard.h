#ifndef JISC_EXEC_INGRESS_GUARD_H_
#define JISC_EXEC_INGRESS_GUARD_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/hash.h"
#include "common/status.h"
#include "exec/stream_processor.h"
#include "types/tuple.h"

namespace jisc {

class TelemetryRegistry;
struct Observability;

// Ingress resilience stage: sits in front of a StreamProcessor's admission
// path and turns a duplicated/reordered feed back into the exactly-once,
// in-order stream every processor downstream assumes. Three mechanisms:
//
//  * duplicate suppression — a bounded per-stream window of recently
//    admitted sequence numbers; a tuple whose seq was already admitted on
//    its stream (or is still waiting in the reorder buffer) is dropped;
//  * order restoration — a bounded reorder buffer keyed by seq. Tuples
//    ahead of the next expected seq are held and flushed in sequence order
//    as the gap fills. When the buffer exceeds its bound the guard
//    gap-skips: the next expected seq jumps to the smallest buffered seq
//    (the missing tuples are presumed lost) and the run of consecutive
//    buffered tuples is admitted;
//  * late-arrival policy — a tuple below the next expected seq that is NOT
//    a duplicate (it was gap-skipped past, e.g. dropped upstream and
//    re-sent very late) is handled per OverflowPolicy: admitted out of
//    order, counted and dropped, or a hard error.
//
// Both buffers are bounded (Options::dedup_window, Options::reorder_window)
// so the guard's state stays O(streams * dedup_window + reorder_window)
// regardless of window sizes downstream.
//
// Determinism contract (jisc-verify): classification depends only on the
// offered tuple sequence — no clocks, no PRNG — and SerializeCanonical
// iterates only ordered containers (the seq-keyed std::map and the
// insertion-ordered recent deques), so checkpointed guard bytes are
// byte-identical across runs. The unordered lookup index is rebuilt from
// the deques on restore and is never iterated.
//
// The guard is strictly opt-in: MaybeGuardProcessor returns the inner
// processor unchanged (no wrapper, no extra virtual hop, no branch) when
// Options::enabled is false.
class IngressGuard {
 public:
  // What to do with a non-duplicate tuple that arrives below the next
  // expected sequence number (it was gap-skipped past).
  enum class OverflowPolicy {
    kAdmitLate,  // admit it out of order (exactly-once beats ordering)
    kDropLate,   // drop it (ordering beats completeness)
    kFail,       // fail-stop: surface the anomaly instead of absorbing it
  };

  struct Options {
    bool enabled = false;
    // Per-stream recently-admitted-seq window for duplicate suppression.
    // Must cover the feed's maximum duplicate distance.
    size_t dedup_window = 1024;
    // Reorder buffer bound; exceeding it triggers a gap-skip.
    size_t reorder_window = 64;
    OverflowPolicy overflow = OverflowPolicy::kAdmitLate;
  };

  // Deterministic classification counters. Mirrored into the per-track
  // telemetry gauges when a registry is attached; these fields are the
  // exact-compared source of truth either way.
  struct Stats {
    uint64_t duplicates_suppressed = 0;
    uint64_t reorder_restored = 0;
    uint64_t late_admitted = 0;
    uint64_t late_dropped = 0;
  };

  // `telemetry` may be nullptr (the observability null-pointer discipline:
  // off means no gauge writes at all); `track` labels the gauge track (0 =
  // coordinator — the guard runs on the admission thread).
  IngressGuard(const Options& options, int num_streams,
               TelemetryRegistry* telemetry = nullptr, int track = 0);

  IngressGuard(const IngressGuard&) = delete;
  IngressGuard& operator=(const IngressGuard&) = delete;

  // Classifies one arrival. Every tuple the call admits (the offered tuple
  // and/or buffered successors it unblocked) is appended to *admit in the
  // order the downstream processor must see. Fails only under
  // OverflowPolicy::kFail on a late non-duplicate arrival.
  Status Offer(const BaseTuple& tuple, std::vector<BaseTuple>* admit);

  // Drains the reorder buffer into *admit via gap-skips (quiescence before
  // a transition, a checkpoint boundary, or end of input).
  void Flush(std::vector<BaseTuple>* admit);

  const Stats& stats() const { return stats_; }
  const Options& options() const { return options_; }
  int num_streams() const { return static_cast<int>(recent_.size()); }
  // Tuples currently held in the reorder buffer.
  size_t pending() const { return reorder_.size(); }
  Seq next_expected() const { return next_expected_; }

  // Canonical serialization: options, clock, stats, per-stream recent
  // windows in insertion order, reorder buffer in ascending-seq order.
  void SerializeCanonical(ByteWriter* writer) const;
  // Inverse; the lookup index is rebuilt from the serialized deques.
  static StatusOr<std::unique_ptr<IngressGuard>> DeserializeCanonical(
      ByteReader* reader, TelemetryRegistry* telemetry = nullptr,
      int track = 0);

 private:
  // Admits one tuple: appends to *admit and records its seq in the
  // stream's recent window.
  void AdmitTuple(const BaseTuple& tuple, std::vector<BaseTuple>* admit);
  // Admits the run of consecutive buffered seqs starting at next_expected_.
  void DrainReadyRun(std::vector<BaseTuple>* admit);

  Options options_;
  TelemetryRegistry* telemetry_;  // nullptr = telemetry off
  int track_;

  Seq next_expected_ = 0;
  // Held out-of-order arrivals, keyed (and therefore iterated) by seq.
  std::map<Seq, BaseTuple> reorder_;
  // Per-stream admitted-seq history: the deque is the bounded canonical
  // record (insertion order), the set is only a lookup index.
  std::vector<std::deque<Seq>> recent_;
  std::vector<std::unordered_set<Seq, U64Hash>> recent_index_;
  Stats stats_;
};

// StreamProcessor wrapper that routes every Push through an IngressGuard.
// RequestTransition flushes the guard first: tuples already offered belong
// before the plan change (Section 4.1's buffer-clearing contract extends
// to the guard's buffer). Metrics, state memory, and the name are the
// inner processor's.
class GuardedProcessor : public StreamProcessor {
 public:
  GuardedProcessor(std::unique_ptr<StreamProcessor> inner,
                   std::unique_ptr<IngressGuard> guard);

  std::string name() const override;
  void Push(const BaseTuple& tuple) override;
  void PushExpiry(const BaseTuple& tuple) override;
  Status RequestTransition(const LogicalPlan& new_plan) override;
  const Metrics& metrics() const override;
  uint64_t StateMemory() const override;

  // Drains the guard's reorder buffer into the inner processor.
  void FlushPending();

  StreamProcessor* inner() { return inner_.get(); }
  const IngressGuard& guard() const { return *guard_; }
  IngressGuard& mutable_guard() { return *guard_; }
  // Checkpoint support: swap the inner processor (e.g. for a restored
  // engine) without disturbing the guard.
  std::unique_ptr<StreamProcessor> ReplaceInner(
      std::unique_ptr<StreamProcessor> inner);

 private:
  std::unique_ptr<StreamProcessor> inner_;
  std::unique_ptr<IngressGuard> guard_;
  // Reused admission scratch (no per-Push allocation at steady state).
  std::vector<BaseTuple> admit_;
};

// The opt-in wiring point: wraps `inner` when options.enabled, otherwise
// returns it unchanged — the disabled path has no wrapper and no branch.
std::unique_ptr<StreamProcessor> MaybeGuardProcessor(
    std::unique_ptr<StreamProcessor> inner,
    const IngressGuard::Options& options, int num_streams,
    Observability* obs);

}  // namespace jisc

#endif  // JISC_EXEC_INGRESS_GUARD_H_
