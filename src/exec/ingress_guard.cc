#include "exec/ingress_guard.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/observability.h"
#include "obs/telemetry.h"

namespace jisc {

namespace {

// Serialization layout version (embedded in guarded checkpoints).
constexpr uint64_t kGuardFormatVersion = 1;

uint64_t PolicyCode(IngressGuard::OverflowPolicy policy) {
  switch (policy) {
    case IngressGuard::OverflowPolicy::kAdmitLate:
      return 0;
    case IngressGuard::OverflowPolicy::kDropLate:
      return 1;
    case IngressGuard::OverflowPolicy::kFail:
      return 2;
  }
  return 0;
}

Status PolicyFromCode(uint64_t code, IngressGuard::OverflowPolicy* out) {
  switch (code) {
    case 0:
      *out = IngressGuard::OverflowPolicy::kAdmitLate;
      return Status::Ok();
    case 1:
      *out = IngressGuard::OverflowPolicy::kDropLate;
      return Status::Ok();
    case 2:
      *out = IngressGuard::OverflowPolicy::kFail;
      return Status::Ok();
  }
  return Status::InvalidArgument("ingress guard: unknown overflow policy");
}

}  // namespace

IngressGuard::IngressGuard(const Options& options, int num_streams,
                           TelemetryRegistry* telemetry, int track)
    : options_(options),
      telemetry_(telemetry),
      track_(track),
      recent_(static_cast<size_t>(num_streams)),
      recent_index_(static_cast<size_t>(num_streams)) {
  JISC_CHECK(num_streams > 0);
  JISC_CHECK(options_.dedup_window > 0);
  JISC_CHECK(options_.reorder_window > 0);
}

void IngressGuard::AdmitTuple(const BaseTuple& tuple,
                              std::vector<BaseTuple>* admit) {
  admit->push_back(tuple);
  auto stream = static_cast<size_t>(tuple.stream);
  JISC_DCHECK(stream < recent_.size());
  std::deque<Seq>& window = recent_[stream];
  auto& index = recent_index_[stream];
  window.push_back(tuple.seq);
  index.insert(tuple.seq);
  if (window.size() > options_.dedup_window) {
    index.erase(window.front());
    window.pop_front();
  }
}

void IngressGuard::DrainReadyRun(std::vector<BaseTuple>* admit) {
  for (auto it = reorder_.begin();
       it != reorder_.end() && it->first == next_expected_;
       it = reorder_.erase(it)) {
    AdmitTuple(it->second, admit);
    ++next_expected_;
    ++stats_.reorder_restored;
    if (telemetry_ != nullptr) telemetry_->OnIngressReorderRestored(track_);
  }
}

Status IngressGuard::Offer(const BaseTuple& tuple,
                           std::vector<BaseTuple>* admit) {
  if (tuple.seq == next_expected_) {
    AdmitTuple(tuple, admit);
    ++next_expected_;
    DrainReadyRun(admit);
    return Status::Ok();
  }
  if (tuple.seq > next_expected_) {
    // Ahead of the expected seq: hold until the gap fills. A seq already
    // buffered is a duplicate of a tuple that has not even been admitted
    // yet.
    auto [it, inserted] = reorder_.try_emplace(tuple.seq, tuple);
    if (!inserted) {
      ++stats_.duplicates_suppressed;
      if (telemetry_ != nullptr) {
        telemetry_->OnIngressDuplicateSuppressed(track_);
      }
      return Status::Ok();
    }
    if (reorder_.size() > options_.reorder_window) {
      // Bound exceeded: the missing tuples are presumed lost. Gap-skip to
      // the smallest buffered seq and admit the consecutive run from
      // there. Seqs skipped here that do show up later are "late".
      next_expected_ = reorder_.begin()->first;
      DrainReadyRun(admit);
    }
    return Status::Ok();
  }
  // Below the expected seq: an exact duplicate of an admitted tuple, or a
  // late survivor of a gap-skip.
  auto stream = static_cast<size_t>(tuple.stream);
  JISC_DCHECK(stream < recent_index_.size());
  if (recent_index_[stream].count(tuple.seq) != 0) {
    ++stats_.duplicates_suppressed;
    if (telemetry_ != nullptr) {
      telemetry_->OnIngressDuplicateSuppressed(track_);
    }
    return Status::Ok();
  }
  switch (options_.overflow) {
    case OverflowPolicy::kAdmitLate:
      AdmitTuple(tuple, admit);
      ++stats_.late_admitted;
      if (telemetry_ != nullptr) telemetry_->OnIngressLateAdmitted(track_);
      return Status::Ok();
    case OverflowPolicy::kDropLate:
      ++stats_.late_dropped;
      if (telemetry_ != nullptr) telemetry_->OnIngressLateDropped(track_);
      return Status::Ok();
    case OverflowPolicy::kFail:
      return Status::FailedPrecondition(
          "ingress guard: late arrival seq=" + std::to_string(tuple.seq) +
          " below expected seq=" + std::to_string(next_expected_) +
          " under overflow policy 'fail'");
  }
  return Status::Ok();
}

void IngressGuard::Flush(std::vector<BaseTuple>* admit) {
  while (!reorder_.empty()) {
    next_expected_ = reorder_.begin()->first;
    DrainReadyRun(admit);
  }
}

void IngressGuard::SerializeCanonical(ByteWriter* writer) const {
  writer->PutU64(kGuardFormatVersion);
  writer->PutU64(options_.dedup_window);
  writer->PutU64(options_.reorder_window);
  writer->PutU64(PolicyCode(options_.overflow));
  writer->PutU64(next_expected_);
  writer->PutU64(stats_.duplicates_suppressed);
  writer->PutU64(stats_.reorder_restored);
  writer->PutU64(stats_.late_admitted);
  writer->PutU64(stats_.late_dropped);
  writer->PutU64(recent_.size());
  for (const std::deque<Seq>& window : recent_) {
    writer->PutU64(window.size());
    for (Seq seq : window) writer->PutU64(seq);
  }
  writer->PutU64(reorder_.size());
  // std::map iterates in ascending seq order: canonical by construction.
  for (const auto& [seq, tuple] : reorder_) {
    writer->PutU64(tuple.stream);
    writer->PutI64(tuple.key);
    writer->PutI64(tuple.payload);
    writer->PutU64(tuple.seq);
    writer->PutU64(tuple.ts);
  }
}

StatusOr<std::unique_ptr<IngressGuard>> IngressGuard::DeserializeCanonical(
    ByteReader* reader, TelemetryRegistry* telemetry, int track) {
  auto bad = [](const std::string& msg) {
    return Status::InvalidArgument("ingress guard checkpoint: " + msg);
  };
  uint64_t version = 0;
  Status s = reader->GetU64(&version);
  if (!s.ok()) return s;
  if (version != kGuardFormatVersion) return bad("unsupported version");
  Options options;
  options.enabled = true;
  uint64_t dedup = 0;
  uint64_t reorder_window = 0;
  uint64_t policy_code = 0;
  if (!(s = reader->GetU64(&dedup)).ok()) return s;
  if (!(s = reader->GetU64(&reorder_window)).ok()) return s;
  if (!(s = reader->GetU64(&policy_code)).ok()) return s;
  if (dedup == 0 || reorder_window == 0) return bad("zero buffer bound");
  options.dedup_window = dedup;
  options.reorder_window = reorder_window;
  if (!(s = PolicyFromCode(policy_code, &options.overflow)).ok()) return s;
  uint64_t next_expected = 0;
  Stats stats;
  if (!(s = reader->GetU64(&next_expected)).ok()) return s;
  if (!(s = reader->GetU64(&stats.duplicates_suppressed)).ok()) return s;
  if (!(s = reader->GetU64(&stats.reorder_restored)).ok()) return s;
  if (!(s = reader->GetU64(&stats.late_admitted)).ok()) return s;
  if (!(s = reader->GetU64(&stats.late_dropped)).ok()) return s;
  uint64_t num_streams = 0;
  if (!(s = reader->GetU64(&num_streams)).ok()) return s;
  if (num_streams == 0 || num_streams > kMaxStreams) {
    return bad("stream count out of range");
  }
  auto guard = std::make_unique<IngressGuard>(
      options, static_cast<int>(num_streams), telemetry, track);
  guard->next_expected_ = next_expected;
  guard->stats_ = stats;
  for (uint64_t i = 0; i < num_streams; ++i) {
    uint64_t count = 0;
    if (!(s = reader->GetU64(&count)).ok()) return s;
    if (count > options.dedup_window) return bad("recent window overflows");
    for (uint64_t j = 0; j < count; ++j) {
      uint64_t seq = 0;
      if (!(s = reader->GetU64(&seq)).ok()) return s;
      guard->recent_[i].push_back(seq);
      guard->recent_index_[i].insert(seq);
    }
  }
  uint64_t pending = 0;
  if (!(s = reader->GetU64(&pending)).ok()) return s;
  for (uint64_t i = 0; i < pending; ++i) {
    uint64_t stream = 0;
    BaseTuple t;
    if (!(s = reader->GetU64(&stream)).ok()) return s;
    if (stream >= num_streams) return bad("buffered tuple stream range");
    t.stream = static_cast<StreamId>(stream);
    if (!(s = reader->GetI64(&t.key)).ok()) return s;
    if (!(s = reader->GetI64(&t.payload)).ok()) return s;
    if (!(s = reader->GetU64(&t.seq)).ok()) return s;
    if (!(s = reader->GetU64(&t.ts)).ok()) return s;
    guard->reorder_.emplace(t.seq, t);
  }
  if (guard->reorder_.size() != pending) {
    return bad("duplicate seq in buffered tuples");
  }
  return guard;
}

GuardedProcessor::GuardedProcessor(std::unique_ptr<StreamProcessor> inner,
                                   std::unique_ptr<IngressGuard> guard)
    : inner_(std::move(inner)), guard_(std::move(guard)) {
  JISC_CHECK(inner_ != nullptr);
  JISC_CHECK(guard_ != nullptr);
}

std::string GuardedProcessor::name() const { return inner_->name(); }

void GuardedProcessor::Push(const BaseTuple& tuple) {
  admit_.clear();
  Status s = guard_->Offer(tuple, &admit_);
  // OverflowPolicy::kFail is fail-stop by definition: the caller asked for
  // an error over silent absorption, and Push has no error channel.
  JISC_CHECK(s.ok()) << s.ToString();
  for (const BaseTuple& t : admit_) inner_->Push(t);
}

void GuardedProcessor::PushExpiry(const BaseTuple& tuple) {
  // Expiries are engine-internal bookkeeping, not ingress: forward as-is.
  inner_->PushExpiry(tuple);
}

Status GuardedProcessor::RequestTransition(const LogicalPlan& new_plan) {
  // Tuples already offered were received before the transition; admit them
  // through the old plan first, exactly like the engine drains its own
  // buffer (Section 4.1).
  FlushPending();
  return inner_->RequestTransition(new_plan);
}

const Metrics& GuardedProcessor::metrics() const { return inner_->metrics(); }

uint64_t GuardedProcessor::StateMemory() const {
  return inner_->StateMemory();
}

void GuardedProcessor::FlushPending() {
  if (guard_->pending() == 0) return;
  admit_.clear();
  guard_->Flush(&admit_);
  for (const BaseTuple& t : admit_) inner_->Push(t);
}

std::unique_ptr<StreamProcessor> GuardedProcessor::ReplaceInner(
    std::unique_ptr<StreamProcessor> inner) {
  JISC_CHECK(inner != nullptr);
  std::swap(inner_, inner);
  return inner;
}

std::unique_ptr<StreamProcessor> MaybeGuardProcessor(
    std::unique_ptr<StreamProcessor> inner,
    const IngressGuard::Options& options, int num_streams,
    Observability* obs) {
  if (!options.enabled) return inner;
  TelemetryRegistry* telemetry =
      obs != nullptr ? obs->telemetry.get() : nullptr;
  auto guard = std::make_unique<IngressGuard>(options, num_streams,
                                              telemetry, /*track=*/0);
  return std::make_unique<GuardedProcessor>(std::move(inner),
                                            std::move(guard));
}

}  // namespace jisc
