#include "exec/semi_join.h"

#include "common/logging.h"

namespace jisc {

SemiJoin::SemiJoin(int node_id, StreamSet streams)
    : Operator(node_id, OpKind::kSemiJoin, streams, StateIndex::kHash) {}

void SemiJoin::SuppressKey(JoinKey key, ExecContext* ctx) {
  std::vector<Tuple> dropped;
  state_->CollectLiveByKey(key, &dropped);
  if (ctx->metrics != nullptr) {
    ++ctx->metrics->probes;
    ctx->metrics->probe_entries += dropped.size();
  }
  bool is_root = (parent_ == nullptr);
  for (const Tuple& l : dropped) {
    bool ok = state_->RemoveExact(l, ctx->stamp);
    JISC_DCHECK(ok);
    (void)ok;
    if (ctx->metrics != nullptr) ++ctx->metrics->removals;
    if (!is_root) EmitRemoval(l.parts().front(), ctx);
  }
  if (is_root) EmitRetractions(dropped, ctx);
}

void SemiJoin::QualifyKey(JoinKey key, ExecContext* ctx) {
  Operator* outer = left_;
  if (!outer->state().complete() && ctx->completion != nullptr) {
    BaseTuple probe_base;
    probe_base.key = key;
    Tuple probe = Tuple::FromBase(probe_base, ctx->stamp, true);
    ctx->completion->EnsureCompleted(probe, outer, ctx);
  }
  std::vector<Tuple> candidates;
  outer->state().CollectLiveByKey(key, &candidates);
  if (ctx->metrics != nullptr) {
    ++ctx->metrics->probes;
    ctx->metrics->probe_entries += candidates.size();
  }
  for (const Tuple& l : candidates) {
    if (state_->Insert(l, ctx->stamp, /*dedup=*/true)) {
      if (ctx->metrics != nullptr) ++ctx->metrics->inserts;
      EmitData(l, ctx);
    }
  }
}

void SemiJoin::OnData(const Tuple& tuple, Side from, ExecContext* ctx) {
  if (from == Side::kLeft) {
    // Outer tuple: admitted iff a live witness exists.
    if (ctx->metrics != nullptr) ++ctx->metrics->probes;
    if (right_->state().ContainsKeyLive(tuple.key())) {
      if (state_->Insert(tuple, ctx->stamp, /*dedup=*/true)) {
        if (ctx->metrics != nullptr) ++ctx->metrics->inserts;
        EmitData(tuple, ctx);
      }
    }
    return;
  }
  // Inner tuple: outer tuples waiting for a witness with this value now
  // qualify. (If the value already had a witness, the dedup insert stops
  // re-emission.)
  QualifyKey(tuple.key(), ctx);
}

void SemiJoin::OnInnerClear(const Tuple& tuple, ExecContext* ctx) {
  SuppressKey(tuple.key(), ctx);
  if (!state_->complete()) EmitInnerClear(tuple, ctx);
}

void SemiJoin::OnRemoval(const BaseTuple& base, Side from, ExecContext* ctx) {
  if (from == Side::kRight) {
    // Inner expiry: did the value lose its last live witness?
    if (right_->state().ContainsKeyLive(base.key)) return;
    SuppressKey(base.key, ctx);
    if (!state_->complete()) {
      // The dropped entries may only exist, materialized, above us.
      Tuple cleared = Tuple::FromBase(base, ctx->stamp, true);
      EmitInnerClear(cleared, ctx);
    }
    return;
  }
  // Outer-side removal: same rules as joins.
  std::vector<Tuple> removed;
  bool is_root = (parent_ == nullptr);
  int n = state_->RemoveContaining(base.seq, base.key, ctx->stamp,
                                   is_root ? &removed : nullptr);
  if (ctx->metrics != nullptr) ctx->metrics->removals += n;
  if (is_root) {
    EmitRetractions(removed, ctx);
    return;
  }
  bool propagate = n > 0;
  if (!propagate && !state_->complete()) {
    propagate = true;
    if (ctx->completion != nullptr &&
        ctx->completion->RemovalMayStopAtIncomplete(base, this, ctx)) {
      propagate = false;
    }
  }
  if (propagate) EmitRemoval(base, ctx);
}

}  // namespace jisc
