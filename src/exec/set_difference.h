#ifndef JISC_EXEC_SET_DIFFERENCE_H_
#define JISC_EXEC_SET_DIFFERENCE_H_

#include "exec/operator.h"

namespace jisc {

// Windowed set difference (Section 4.7): the left (outer) input flows
// through; the right (inner) input suppresses. The operator's state is the
// set of live outer tuples with no live key match in the inner stream's
// window.
//
// Behaviour:
//  * outer arrival: admitted (inserted + emitted) iff no live inner match;
//  * inner arrival: removes matching outer entries from the state (their
//    removal propagates up); if this state is incomplete, the inner tuple
//    is additionally forwarded up the pipeline until the first complete
//    state (the paper's Section 4.7 rule);
//  * inner expiry: outer tuples whose last suppressor expired re-qualify
//    and are (re-)emitted -- the "possibly adding" case of Section 2.1;
//  * outer-side expiry/suppression removals behave as in joins, including
//    the Section 4.2 incomplete-state propagation rule.
class SetDifference : public Operator {
 public:
  SetDifference(int node_id, StreamSet streams);

 protected:
  void OnData(const Tuple& tuple, Side from, ExecContext* ctx) override;
  void OnRemoval(const BaseTuple& base, Side from, ExecContext* ctx) override;
  void OnInnerClear(const Tuple& tuple, ExecContext* ctx) override;

 private:
  // Removes live entries matching `key` from this state; removals of the
  // suppressed outer tuples propagate upward (or retract at the root).
  void SuppressKey(JoinKey key, ExecContext* ctx);
};

}  // namespace jisc

#endif  // JISC_EXEC_SET_DIFFERENCE_H_
