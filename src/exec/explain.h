#ifndef JISC_EXEC_EXPLAIN_H_
#define JISC_EXEC_EXPLAIN_H_

#include <string>

#include "exec/pipeline_executor.h"

namespace jisc {

// Human-readable snapshot of a running plan: operator tree with per-state
// live sizes, distinct-value counts, completeness flags (incl. how many
// values have been completed on demand so far), and scan window fills.
//
//   HJ#6 {S0,S1,S2,S3} live=812 keys=200 [INCOMPLETE, 57 values completed]
//   +- HJ#4 {S0,S1,S2} live=600 keys=200 [complete]
//   ...
std::string ExplainExecutor(const PipelineExecutor& exec);

// Graphviz dot rendering of the same snapshot (one node per operator,
// incomplete states highlighted). Paste into `dot -Tsvg`.
std::string ExecutorToDot(const PipelineExecutor& exec);

}  // namespace jisc

#endif  // JISC_EXEC_EXPLAIN_H_
