#include "exec/operator.h"

#include <sstream>

#include "common/logging.h"
#include "exec/pipeline_executor.h"

namespace jisc {

Operator::Operator(int node_id, OpKind kind, StreamSet streams,
                   StateIndex index)
    : node_id_(node_id),
      kind_(kind),
      streams_(streams),
      state_(std::make_unique<OperatorState>(streams, index)) {}

void Operator::AdoptState(std::unique_ptr<OperatorState> state) {
  JISC_CHECK(state != nullptr);
  JISC_CHECK(state->id() == streams_);
  state_ = std::move(state);
}

std::unique_ptr<OperatorState> Operator::ReleaseState() {
  return std::move(state_);
}

void Operator::Enqueue(Message msg) {
  Stamp stamp = msg.stamp;
  queue_.push_back(std::move(msg));
  if (executor_ != nullptr) executor_->NotifyReady(this, stamp);
}

void Operator::ProcessOne(ExecContext* ctx) {
  JISC_DCHECK(HasWork());
  Message msg = std::move(queue_.front());
  queue_.pop_front();
  ctx->stamp = msg.stamp;
  if (ctx->metrics != nullptr) ++ctx->metrics->messages;
  switch (msg.kind) {
    case Message::Kind::kArrival:
      OnArrival(msg.base, ctx);
      break;
    case Message::Kind::kData:
      OnData(msg.tuple, msg.from, ctx);
      break;
    case Message::Kind::kRemoval:
      OnRemoval(msg.base, msg.from, ctx);
      break;
    case Message::Kind::kInnerClear:
      OnInnerClear(msg.tuple, ctx);
      break;
  }
}

void Operator::OnArrival(const BaseTuple& base, ExecContext* ctx) {
  (void)base;
  (void)ctx;
  JISC_CHECK(false) << "OnArrival reached a non-scan operator";
}

void Operator::OnInnerClear(const Tuple& tuple, ExecContext* ctx) {
  (void)tuple;
  (void)ctx;
  JISC_CHECK(false) << "OnInnerClear reached a non-set-difference operator";
}

void Operator::EmitData(Tuple tuple, ExecContext* ctx) {
  if (parent_ == nullptr) {
    if (ctx->metrics != nullptr) ++ctx->metrics->outputs;
    if (ctx->sink != nullptr) ctx->sink->OnOutput(tuple, ctx->stamp);
    return;
  }
  parent_->DeliverData(tuple, side_in_parent_, ctx);
}

void Operator::EmitRemoval(const BaseTuple& base, ExecContext* ctx) {
  if (parent_ == nullptr) return;
  parent_->DeliverRemoval(base, side_in_parent_, ctx);
}

void Operator::EmitRetractions(const std::vector<Tuple>& removed,
                               ExecContext* ctx) {
  if (parent_ != nullptr || ctx->sink == nullptr) return;
  for (const Tuple& t : removed) {
    if (ctx->metrics != nullptr) ++ctx->metrics->retractions;
    ctx->sink->OnRetract(t, ctx->stamp);
  }
}

void Operator::EmitInnerClear(const Tuple& tuple, ExecContext* ctx) {
  if (parent_ == nullptr) return;
  parent_->DeliverInnerClear(tuple, ctx);
}

std::string Operator::DebugString() const {
  std::ostringstream os;
  os << OpKindName(kind_) << "#" << node_id_ << " " << streams_.ToString()
     << " queue=" << queue_.size() << " " << state_->DebugString();
  return os.str();
}

}  // namespace jisc
