#ifndef JISC_EXEC_SEMI_JOIN_H_
#define JISC_EXEC_SEMI_JOIN_H_

#include "exec/operator.h"

namespace jisc {

// Windowed semi join (Section 4.7 carried one operator further): the
// mirror image of SetDifference. The operator's state is the set of live
// outer tuples that DO have a live key match in the inner stream's window.
//
// Behaviour:
//  * outer arrival: admitted (inserted + emitted) iff a live inner match
//    exists;
//  * inner arrival: outer tuples whose first live witness just appeared
//    qualify and are (re-)emitted;
//  * inner expiry: if it was the value's last live witness, matching
//    entries are removed from the state; with an incomplete state the
//    clearing is forwarded up the pipeline until the first complete state
//    (same rule as set difference -- the entries may only exist,
//    materialized, in a complete ancestor);
//  * outer-side removals behave as in joins (Section 4.2 incomplete-state
//    propagation included).
class SemiJoin : public Operator {
 public:
  SemiJoin(int node_id, StreamSet streams);

 protected:
  void OnData(const Tuple& tuple, Side from, ExecContext* ctx) override;
  void OnRemoval(const BaseTuple& base, Side from, ExecContext* ctx) override;
  void OnInnerClear(const Tuple& tuple, ExecContext* ctx) override;

 private:
  // Removes live entries matching `key` (their witness disappeared);
  // removals propagate upward / retract at the root.
  void SuppressKey(JoinKey key, ExecContext* ctx);
  // Qualifies left-child tuples with `key` into the state and emits them.
  void QualifyKey(JoinKey key, ExecContext* ctx);
};

}  // namespace jisc

#endif  // JISC_EXEC_SEMI_JOIN_H_
