#ifndef JISC_EXEC_STATE_POOL_H_
#define JISC_EXEC_STATE_POOL_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/hash.h"
#include "state/operator_state.h"
#include "types/tuple.h"

namespace jisc {

// States harvested from a dismantled executor, keyed by identity
// (StreamSet). The new executor adopts matching states ("a state in the old
// plan that also exists in the new plan is copied to the new plan",
// Section 4.1); leftovers are the discarded states.
class StatePool {
 public:
  StatePool() = default;
  StatePool(StatePool&&) = default;
  StatePool& operator=(StatePool&&) = default;

  void Put(std::unique_ptr<OperatorState> state) {
    uint64_t key = state->id().bits();
    states_[key] = std::move(state);
  }

  // Removes and returns the state with this identity, or nullptr.
  std::unique_ptr<OperatorState> Take(StreamSet id) {
    auto it = states_.find(id.bits());
    if (it == states_.end()) return nullptr;
    std::unique_ptr<OperatorState> s = std::move(it->second);
    states_.erase(it);
    return s;
  }

  bool Contains(StreamSet id) const {
    return states_.find(id.bits()) != states_.end();
  }

  size_t size() const { return states_.size(); }

  // Scan window deques travel with the states so the successor executor
  // adopts them in O(1) instead of rebuilding (and re-sorting) them from
  // the state contents.
  void PutWindow(StreamId stream, std::deque<BaseTuple> window) {
    windows_[stream] = std::move(window);
  }

  std::optional<std::deque<BaseTuple>> TakeWindow(StreamId stream) {
    auto it = windows_.find(stream);
    if (it == windows_.end()) return std::nullopt;
    std::deque<BaseTuple> w = std::move(it->second);
    windows_.erase(it);
    return w;
  }

 private:
  std::unordered_map<uint64_t, std::unique_ptr<OperatorState>, U64Hash>
      states_;
  std::unordered_map<StreamId, std::deque<BaseTuple>> windows_;
};

}  // namespace jisc

#endif  // JISC_EXEC_STATE_POOL_H_
