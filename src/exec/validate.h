#ifndef JISC_EXEC_VALIDATE_H_
#define JISC_EXEC_VALIDATE_H_

#include <cstdint>

#include "common/status.h"
#include "exec/pipeline_executor.h"
#include "exec/theta.h"

namespace jisc {

// Deep structural validation of a quiescent executor, intended for tests:
//  * per-state counters (live size, distinct keys) match a recount;
//  * every scan's window deque matches its state content;
//  * every COMPLETE state's live content equals the operator semantics
//    applied to its children's live content (join / theta join /
//    set-difference / semi-join recomputed by brute force).
// Incomplete states are exempt from the content check by definition — their
// content is a subset completed on demand.
Status ValidateExecutorInvariants(PipelineExecutor& exec,
                                  const ThetaSpec& theta = ThetaSpec());

// Approximate resident bytes of one state (entries, parts, bucket
// bookkeeping).
uint64_t StateBytes(const OperatorState& st);

// Approximate resident bytes of every operator state of an executor. Used
// by the Section 5 memory comparison.
uint64_t StateMemoryBytes(const PipelineExecutor& exec);

// O(num_ops) variant built on OperatorState::ApproxBytes() — same formula
// as StateBytes without walking the live entries. Cheap enough for the
// telemetry state-memory gauge refreshed on the engine's maintain cadence.
uint64_t ApproxStateMemoryBytes(const PipelineExecutor& exec);

}  // namespace jisc

#endif  // JISC_EXEC_VALIDATE_H_
