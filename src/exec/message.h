#ifndef JISC_EXEC_MESSAGE_H_
#define JISC_EXEC_MESSAGE_H_

#include "types/tuple.h"

namespace jisc {

// Which input of a binary operator a message came from.
enum class Side { kLeft, kRight };

inline Side Opposite(Side s) {
  return s == Side::kLeft ? Side::kRight : Side::kLeft;
}

// One item in an operator's input queue. All messages of one external
// event's cascade carry that event's stamp.
struct Message {
  enum class Kind {
    kArrival,     // base tuple entering a stream-scan
    kData,        // (composite) tuple flowing up the pipeline
    kRemoval,     // expiry of base tuple `base`, propagating up
    kInnerClear,  // set-difference: inner tuple forwarded up past an
                  // incomplete state (Section 4.7)
  };

  Kind kind = Kind::kData;
  Side from = Side::kLeft;
  Stamp stamp = 0;
  Tuple tuple;     // kData, kInnerClear
  BaseTuple base;  // kArrival, kRemoval
};

}  // namespace jisc

#endif  // JISC_EXEC_MESSAGE_H_
