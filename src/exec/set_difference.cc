#include "exec/set_difference.h"

#include "common/logging.h"

namespace jisc {

SetDifference::SetDifference(int node_id, StreamSet streams)
    : Operator(node_id, OpKind::kSetDifference, streams, StateIndex::kHash) {}

void SetDifference::SuppressKey(JoinKey key, ExecContext* ctx) {
  std::vector<Tuple> suppressed;
  state_->CollectLiveByKey(key, &suppressed);
  if (ctx->metrics != nullptr) {
    ++ctx->metrics->probes;
    ctx->metrics->probe_entries += suppressed.size();
  }
  bool is_root = (parent_ == nullptr);
  for (const Tuple& l : suppressed) {
    bool ok = state_->RemoveExact(l, ctx->stamp);
    JISC_DCHECK(ok);
    (void)ok;
    if (ctx->metrics != nullptr) ++ctx->metrics->removals;
    if (!is_root) {
      // The suppressed outer tuple may be present in ancestor states.
      JISC_DCHECK(!l.parts().empty());
      EmitRemoval(l.parts().front(), ctx);
    }
  }
  if (is_root) EmitRetractions(suppressed, ctx);
}

void SetDifference::OnData(const Tuple& tuple, Side from, ExecContext* ctx) {
  if (from == Side::kLeft) {
    // Outer tuple: admitted iff no live inner match.
    Operator* inner = right_;
    if (ctx->metrics != nullptr) ++ctx->metrics->probes;
    if (!inner->state().ContainsKeyLive(tuple.key())) {
      if (state_->Insert(tuple, ctx->stamp, /*dedup=*/true)) {
        if (ctx->metrics != nullptr) ++ctx->metrics->inserts;
        EmitData(tuple, ctx);
      }
    }
    return;
  }
  // Inner tuple: suppress matching outer entries.
  SuppressKey(tuple.key(), ctx);
  if (!state_->complete()) {
    // Section 4.7: with an incomplete state, matching outer entries may
    // only exist (materialized) further up; forward the inner tuple until
    // the first complete state.
    EmitInnerClear(tuple, ctx);
  }
}

void SetDifference::OnInnerClear(const Tuple& tuple, ExecContext* ctx) {
  SuppressKey(tuple.key(), ctx);
  if (!state_->complete()) EmitInnerClear(tuple, ctx);
}

void SetDifference::OnRemoval(const BaseTuple& base, Side from,
                              ExecContext* ctx) {
  if (from == Side::kRight) {
    // Inner expiry: if it was the last live suppressor of its value,
    // matching outer tuples re-qualify.
    if (right_->state().ContainsKeyLive(base.key)) return;
    Operator* outer = left_;
    if (!outer->state().complete() && ctx->completion != nullptr) {
      Tuple probe = Tuple::FromBase(base, ctx->stamp, true);
      ctx->completion->EnsureCompleted(probe, outer, ctx);
    }
    std::vector<Tuple> candidates;
    outer->state().CollectLiveByKey(base.key, &candidates);
    if (ctx->metrics != nullptr) {
      ++ctx->metrics->probes;
      ctx->metrics->probe_entries += candidates.size();
    }
    for (const Tuple& l : candidates) {
      if (state_->Insert(l, ctx->stamp, /*dedup=*/true)) {
        if (ctx->metrics != nullptr) ++ctx->metrics->inserts;
        EmitData(l, ctx);
      }
    }
    return;
  }
  // Outer-side removal (expiry or suppression below): same rules as joins.
  std::vector<Tuple> removed;
  bool is_root = (parent_ == nullptr);
  int n = state_->RemoveContaining(base.seq, base.key, ctx->stamp,
                                   is_root ? &removed : nullptr);
  if (ctx->metrics != nullptr) ctx->metrics->removals += n;
  if (is_root) {
    EmitRetractions(removed, ctx);
    return;
  }
  bool propagate = n > 0;
  if (!propagate && !state_->complete()) {
    propagate = true;
    if (ctx->completion != nullptr &&
        ctx->completion->RemovalMayStopAtIncomplete(base, this, ctx)) {
      propagate = false;
    }
  }
  if (propagate) EmitRemoval(base, ctx);
}

}  // namespace jisc
