#ifndef JISC_EXEC_SYMMETRIC_HASH_JOIN_H_
#define JISC_EXEC_SYMMETRIC_HASH_JOIN_H_

#include "exec/operator.h"

namespace jisc {

// Symmetric hash equi-join (Section 2.1). A tuple arriving from one child
// probes the *opposite child's* state (which materializes that subtree's
// output, as in the paper's Procedure 1); every match is concatenated,
// added to this operator's own state, and emitted to the parent.
//
// Exactly-once pairing: a probe at stamp p only sees entries inserted at
// stamps < p, so each pair is produced by its later-arriving side.
//
// JISC integration (Procedure 1): if the opposite state is incomplete, the
// installed CompletionHandler completes the probe value's entries on demand
// before the probe runs.
class SymmetricHashJoin : public Operator {
 public:
  SymmetricHashJoin(int node_id, StreamSet streams);

 protected:
  void OnData(const Tuple& tuple, Side from, ExecContext* ctx) override;
  void OnRemoval(const BaseTuple& base, Side from, ExecContext* ctx) override;
};

}  // namespace jisc

#endif  // JISC_EXEC_SYMMETRIC_HASH_JOIN_H_
