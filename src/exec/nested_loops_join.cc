#include "exec/nested_loops_join.h"

#include "common/logging.h"

namespace jisc {

NestedLoopsJoin::NestedLoopsJoin(int node_id, StreamSet streams,
                                 ThetaSpec theta)
    : Operator(node_id, OpKind::kNljJoin, streams, StateIndex::kList),
      theta_(theta) {}

void NestedLoopsJoin::OnData(const Tuple& tuple, Side from, ExecContext* ctx) {
  Operator* opposite = child(Opposite(from));
  JISC_DCHECK(opposite != nullptr);
  if (!opposite->state().complete() && ctx->completion != nullptr) {
    // Lazy theta probe: the handler recomputes the matches from the
    // subtree's complete descendants; nothing is eagerly materialized.
    std::vector<Tuple> matches;
    ctx->completion->CollectThetaMatches(tuple, opposite, ctx, &matches);
    if (ctx->metrics != nullptr) {
      ++ctx->metrics->probes;
      ctx->metrics->matches += matches.size();
    }
    for (const Tuple& m : matches) {
      Tuple out = Tuple::Concat(tuple, m, ctx->stamp, tuple.fresh());
      state_->Insert(out, ctx->stamp);
      if (ctx->metrics != nullptr) ++ctx->metrics->inserts;
      EmitData(std::move(out), ctx);
    }
    return;
  }
  JISC_DCHECK(opposite->state().complete());
  // Full scan of the opposite state: the cost profile of a theta join.
  std::vector<const Tuple*> matches;
  uint64_t scanned = 0;
  opposite->state().ForEachVisible(ctx->stamp, [&](const Tuple& e) {
    ++scanned;
    if (theta_.Matches(tuple, e)) matches.push_back(&e);
  });
  if (ctx->metrics != nullptr) {
    ++ctx->metrics->probes;
    ctx->metrics->probe_entries += scanned;
    ctx->metrics->matches += matches.size();
  }
  for (const Tuple* m : matches) {
    Tuple out = Tuple::Concat(tuple, *m, ctx->stamp, tuple.fresh());
    state_->Insert(out, ctx->stamp);
    if (ctx->metrics != nullptr) ++ctx->metrics->inserts;
    EmitData(std::move(out), ctx);
  }
}

void NestedLoopsJoin::OnRemoval(const BaseTuple& base, Side from,
                                ExecContext* ctx) {
  (void)from;
  std::vector<Tuple> removed;
  bool is_root = (parent_ == nullptr);
  int n = state_->RemoveContaining(base.seq, base.key, ctx->stamp,
                                   is_root ? &removed : nullptr);
  if (ctx->metrics != nullptr) ctx->metrics->removals += n;
  if (is_root) {
    EmitRetractions(removed, ctx);
    return;
  }
  bool propagate = n > 0;
  if (!propagate && !state_->complete()) {
    propagate = true;
    if (ctx->completion != nullptr &&
        ctx->completion->RemovalMayStopAtIncomplete(base, this, ctx)) {
      propagate = false;
    }
  }
  if (propagate) EmitRemoval(base, ctx);
}

}  // namespace jisc
