#ifndef JISC_EXEC_OPERATOR_H_
#define JISC_EXEC_OPERATOR_H_

#include <cstddef>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "exec/message.h"
#include "exec/metrics.h"
#include "exec/sink.h"
#include "obs/observability.h"
#include "plan/logical_plan.h"
#include "state/operator_state.h"
#include "types/tuple.h"

namespace jisc {

class Operator;
class FreshnessTracker;
class PipelineExecutor;

// Per-message processing context. The executor fills it in before
// dispatching a message to an operator.
struct ExecContext {
  Stamp stamp = 0;
  Sink* sink = nullptr;
  class CompletionHandler* completion = nullptr;  // installed by JISC
  FreshnessTracker* freshness = nullptr;          // installed by the engine
  Metrics* metrics = nullptr;
  // Observability bundle (nullptr = off, the default): service-time
  // histograms and the migration-phase trace recorder. obs_track is the
  // logical trace track of the engine driving this executor (0 for the
  // single-threaded engine, shard + 1 under the parallel executor).
  Observability* obs = nullptr;
  int obs_track = 0;
};

// Strategy hook consulted by binary operators when they are about to probe
// an INCOMPLETE opposite state. Installed by the JISC strategy; absent
// (nullptr) for strategies that never run with incomplete states.
class CompletionHandler {
 public:
  virtual ~CompletionHandler() = default;

  // Guarantees that `opposite`'s state holds every entry matching `probe`
  // that a never-migrated plan would hold (Procedures 2/3 of the paper).
  virtual void EnsureCompleted(const Tuple& probe, Operator* opposite,
                               ExecContext* ctx) = 0;

  // Section 4.2/4.4: may the expiry of `base` stop propagating at the
  // incomplete state of `at`, which yielded no match? (True when the
  // value's entries are provably complete there.)
  virtual bool RemovalMayStopAtIncomplete(const BaseTuple& base,
                                          const Operator* at,
                                          ExecContext* ctx) = 0;

  // Theta probes of an INCOMPLETE state: computes `probe`'s matches against
  // the subtree on the fly (all-pairs theta predicates decompose across
  // parts, so the recomputation is exact) without materializing the state.
  // This is what keeps JISC's output latency minimal for nested-loops plans
  // (Fig. 10b): nothing is eagerly rebuilt, and the state itself becomes
  // complete through window turnover.
  virtual void CollectThetaMatches(const Tuple& probe, Operator* opposite,
                                   ExecContext* ctx,
                                   std::vector<Tuple>* out) = 0;
};

// Base class of all physical operators. Push-based with an input queue
// (Section 2.1): children enqueue messages here; the executor's scheduler
// drains queues. Every operator materializes the state of its output
// (see state/operator_state.h).
class Operator {
 public:
  Operator(int node_id, OpKind kind, StreamSet streams, StateIndex index);
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  // --- wiring (set by PipelineExecutor during build) ---
  void SetParent(Operator* parent, Side side) {
    parent_ = parent;
    side_in_parent_ = side;
  }
  void SetChildren(Operator* left, Operator* right) {
    left_ = left;
    right_ = right;
  }
  void SetExecutor(PipelineExecutor* executor) { executor_ = executor; }

  int node_id() const { return node_id_; }
  OpKind kind() const { return kind_; }
  StreamSet streams() const { return streams_; }
  Operator* parent() const { return parent_; }
  Operator* left() const { return left_; }
  Operator* right() const { return right_; }
  Operator* child(Side s) const { return s == Side::kLeft ? left_ : right_; }

  // --- state ---
  OperatorState& state() { return *state_; }
  const OperatorState& state() const { return *state_; }
  // Swaps in a state carried over from the old plan (migration). The state's
  // identity must match this operator's stream set.
  void AdoptState(std::unique_ptr<OperatorState> state);
  std::unique_ptr<OperatorState> ReleaseState();

  // --- queue ---
  // Appends a message and flags this operator ready with the scheduler.
  // Used for event admission (arrivals); intra-event cascades propagate by
  // direct dispatch (Deliver*) below.
  void Enqueue(Message msg);
  bool HasWork() const { return !queue_.empty(); }
  size_t QueueDepth() const { return queue_.size(); }
  // Pops and dispatches one message. Precondition: HasWork().
  void ProcessOne(ExecContext* ctx);

  // Direct dispatch used by children during a cascade. Equivalent to
  // enqueue-then-process: within one event, emission order equals
  // processing order, so the queue round trip is skipped.
  void DeliverData(const Tuple& tuple, Side from, ExecContext* ctx) {
    if (ctx->metrics != nullptr) ++ctx->metrics->messages;
    OnData(tuple, from, ctx);
  }
  void DeliverRemoval(const BaseTuple& base, Side from, ExecContext* ctx) {
    if (ctx->metrics != nullptr) ++ctx->metrics->messages;
    OnRemoval(base, from, ctx);
  }
  void DeliverInnerClear(const Tuple& tuple, ExecContext* ctx) {
    if (ctx->metrics != nullptr) ++ctx->metrics->messages;
    OnInnerClear(tuple, ctx);
  }

  virtual std::string DebugString() const;

 protected:
  // Message handlers.
  virtual void OnArrival(const BaseTuple& base, ExecContext* ctx);
  virtual void OnData(const Tuple& tuple, Side from, ExecContext* ctx) = 0;
  virtual void OnRemoval(const BaseTuple& base, Side from,
                         ExecContext* ctx) = 0;
  virtual void OnInnerClear(const Tuple& tuple, ExecContext* ctx);

  // Sends a data tuple to the parent queue, or to the sink at the root.
  // Takes by value: callers hand over ownership (std::move) on the hot path.
  void EmitData(Tuple tuple, ExecContext* ctx);
  // Propagates an expiry upward.
  void EmitRemoval(const BaseTuple& base, ExecContext* ctx);
  // Root only: withdraws previously emitted results.
  void EmitRetractions(const std::vector<Tuple>& removed, ExecContext* ctx);
  // Set-difference: forwards an inner tuple up the pipeline (Section 4.7).
  void EmitInnerClear(const Tuple& tuple, ExecContext* ctx);

  int node_id_;
  OpKind kind_;
  StreamSet streams_;
  Operator* parent_ = nullptr;
  Side side_in_parent_ = Side::kLeft;
  Operator* left_ = nullptr;
  Operator* right_ = nullptr;
  std::unique_ptr<OperatorState> state_;
  std::deque<Message> queue_;
  PipelineExecutor* executor_ = nullptr;
};

}  // namespace jisc

#endif  // JISC_EXEC_OPERATOR_H_
