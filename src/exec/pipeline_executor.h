#ifndef JISC_EXEC_PIPELINE_EXECUTOR_H_
#define JISC_EXEC_PIPELINE_EXECUTOR_H_

#include <cstddef>
#include <deque>
#include <memory>
#include <vector>

#include "exec/operator.h"
#include "exec/state_pool.h"
#include "exec/stream_scan.h"
#include "exec/theta.h"
#include "plan/plan_diff.h"
#include "stream/window.h"

namespace jisc {

// One physical pipelined plan: the operator tree built from a LogicalPlan,
// plus the scheduler that drains operator input queues. Single-threaded and
// event-driven: the engine enqueues arrivals at scans and calls
// RunUntilIdle(), which processes the cascade to quiescence.
class PipelineExecutor {
 public:
  struct Options {
    // Constructor (not a default member initializer) so the enclosing
    // class can use `= Options()` as a default argument under GCC.
    Options() : external_expiry(false) {}

    ThetaSpec theta;  // predicate for kNljJoin operators
    // Sharded execution: scans never slide their windows on their own;
    // the shard coordinator delivers explicit expiry events (PushExpiry)
    // computed from the global arrival sequence.
    bool external_expiry;
  };

  // Builds the operator tree. States whose identity matches an entry in
  // `carry_over` are adopted (plan migration); the rest start empty.
  // Adopted states keep their completeness flags.
  PipelineExecutor(const LogicalPlan& plan, const WindowSpec& windows,
                   Options options = Options(),
                   StatePool* carry_over = nullptr);

  PipelineExecutor(const PipelineExecutor&) = delete;
  PipelineExecutor& operator=(const PipelineExecutor&) = delete;

  // --- environment (set once by the engine) ---
  void SetSink(Sink* sink) { ctx_.sink = sink; }
  void SetCompletionHandler(CompletionHandler* handler) {
    ctx_.completion = handler;
  }
  void SetFreshness(FreshnessTracker* freshness) {
    ctx_.freshness = freshness;
  }
  void SetMetrics(Metrics* metrics) { ctx_.metrics = metrics; }
  void SetObservability(Observability* obs, int track) {
    ctx_.obs = obs;
    ctx_.obs_track = track;
  }

  // --- driving ---

  // Enqueues a base tuple at its stream's scan (does not process).
  void PushArrival(const BaseTuple& base, Stamp stamp);

  // External-expiry mode only: enqueues an expiry of `base` at its stream's
  // scan (does not process). `base` must be the oldest live tuple of its
  // stream on this executor.
  void PushExpiry(const BaseTuple& base, Stamp stamp);

  // Drains every operator queue, then vacuums tombstoned state entries.
  void RunUntilIdle();

  // --- structure access ---
  const LogicalPlan& plan() const { return plan_; }
  const WindowSpec& windows() const { return windows_; }
  Operator* root() { return ops_[static_cast<size_t>(plan_.root())].get(); }
  Operator* op(int node_id) { return ops_[static_cast<size_t>(node_id)].get(); }
  const Operator* op(int node_id) const {
    return ops_[static_cast<size_t>(node_id)].get();
  }
  int num_ops() const { return static_cast<int>(ops_.size()); }
  StreamScan* scan(StreamId stream);
  // Operator materializing the state with this identity, or nullptr.
  Operator* OpForStreams(StreamSet id);

  // --- migration support ---

  // Extracts every state (the executor must be idle); used to build the
  // successor plan. Leftover (discarded) states die with the pool.
  StatePool TakeAllStates();

  // Current completeness of all states (input to Definition 1 across
  // overlapped transitions, Section 4.5).
  StateSnapshot SnapshotCompleteness() const;

  // True when no live state entry anywhere contains a base tuple with
  // seq < boundary. Scans every state entry (the Parallel Track purge
  // detection the paper calls out as costly); the scanned-entry count is
  // charged to metrics->purge_scan_entries.
  bool AllStatesNewerThan(Seq boundary);

  // Scheduler hook used by Operator::Enqueue. FIFO dispatch is sound
  // because the engine admits one external event at a time (buffered
  // arrivals live in the Engine's arrival queue, not here), so every
  // in-flight message shares the current event's stamp and removals always
  // precede the data they must order before.
  void NotifyReady(Operator* op, Stamp stamp);

  bool Idle() const { return ready_.empty(); }

 private:
  friend class Operator;

  LogicalPlan plan_;
  WindowSpec windows_;
  Options options_;
  std::vector<std::unique_ptr<Operator>> ops_;
  std::deque<Operator*> ready_;
  std::vector<char> in_ready_;
  ExecContext ctx_;
};

}  // namespace jisc

#endif  // JISC_EXEC_PIPELINE_EXECUTOR_H_
