#include "exec/stream_scan.h"

#include <algorithm>

#include "common/logging.h"
#include "core/freshness_tracker.h"

namespace jisc {

StreamScan::StreamScan(int node_id, StreamId stream, uint64_t window_size,
                       WindowSpec::Mode mode, bool external_expiry)
    : Operator(node_id, OpKind::kScan, StreamSet::Single(stream),
               StateIndex::kHash),
      stream_(stream),
      window_size_(window_size),
      mode_(mode),
      external_expiry_(external_expiry) {
  JISC_CHECK(window_size_ >= 1);
}

Seq StreamScan::OldestLiveSeq() const {
  if (window_.empty()) return kStampInfinity;
  return window_.front().seq;
}

void StreamScan::RebuildWindowFromState() {
  window_.clear();
  state_->ForEachLive([this](const Tuple& t) {
    JISC_DCHECK(t.parts().size() == 1);
    window_.push_back(t.parts().front());
  });
  std::sort(window_.begin(), window_.end(),
            [](const BaseTuple& a, const BaseTuple& b) {
              return a.seq < b.seq;
            });
}

void StreamScan::OnArrival(const BaseTuple& base, ExecContext* ctx) {
  JISC_DCHECK(base.stream == stream_);
  // Window bookkeeping (and the purge/turnover detectors) rely on per-
  // stream arrival order matching sequence order.
  JISC_CHECK(window_.empty() || window_.back().seq < base.seq)
      << "stream " << stream_ << " arrivals must have increasing seq";
  // Window slide: displaced tuples expire, and their expiry must be applied
  // (and propagated) before the new tuple is processed so that the new
  // tuple does not join with them. Count mode displaces at most one tuple;
  // time mode may expire several (everything with ts <= now - duration).
  // In external-expiry mode the coordinator delivers expiries as removal
  // messages ahead of the arrivals that displace them (see OnRemoval).
  if (external_expiry_) {
    // nothing: the window slides only on explicit expiry messages
  } else if (mode_ == WindowSpec::Mode::kCount) {
    if (window_.size() >= window_size_) ExpireFront(ctx);
  } else {
    while (!window_.empty() &&
           window_.front().ts + window_size_ <= base.ts) {
      ExpireFront(ctx);
    }
  }
  window_.push_back(base);
  bool fresh = true;
  if (ctx->freshness != nullptr) {
    fresh = ctx->freshness->ClassifyAndMark(stream_, base.key);
  }
  Tuple t = Tuple::FromBase(base, ctx->stamp, fresh);
  state_->Insert(t, ctx->stamp);
  if (ctx->metrics != nullptr) ++ctx->metrics->inserts;
  EmitData(std::move(t), ctx);
}

void StreamScan::ExpireFront(ExecContext* ctx) {
  BaseTuple oldest = window_.front();
  window_.pop_front();
  int n = state_->RemoveContaining(oldest.seq, oldest.key, ctx->stamp,
                                   nullptr);
  JISC_DCHECK(n == 1);
  (void)n;
  if (ctx->metrics != nullptr) ++ctx->metrics->removals;
  EmitRemoval(oldest, ctx);
}

void StreamScan::OnData(const Tuple&, Side, ExecContext*) {
  JISC_CHECK(false) << "scan received a data message";
}

void StreamScan::OnRemoval(const BaseTuple& base, Side, ExecContext* ctx) {
  // Only the sharded executor's coordinator sends removal messages to a
  // scan: an instruction to expire `base` from the window now. Per-stream
  // expiry follows seq order, so the target is always the window front.
  JISC_CHECK(external_expiry_) << "scan received a removal message";
  JISC_DCHECK(base.stream == stream_);
  JISC_CHECK(!window_.empty() && window_.front().seq == base.seq)
      << "external expiry out of order on stream " << stream_;
  ExpireFront(ctx);
}

}  // namespace jisc
