#include "obs/histogram.h"

#include <sstream>

namespace jisc {

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kBuckets; ++i) {
    uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
  uint64_t omax = other.max();
  uint64_t prev = max_.load(std::memory_order_relaxed);
  while (prev < omax && !max_.compare_exchange_weak(
                            prev, omax, std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

void Histogram::CopyFrom(const Histogram& o) {
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[i].store(o.buckets_[i].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  }
  count_.store(o.count(), std::memory_order_relaxed);
  sum_.store(o.sum(), std::memory_order_relaxed);
  max_.store(o.max(), std::memory_order_relaxed);
}

uint64_t Histogram::BucketUpperBound(int index) {
  if (index < kSubCount) return static_cast<uint64_t>(index);
  if (index >= kBuckets - 1) return kMaxTracked;
  int rel = index - kSubCount;
  int exp = kSubBits + rel / kSubCount;
  int sub = rel % kSubCount;
  uint64_t width = uint64_t{1} << (exp - kSubBits);
  uint64_t lower = (uint64_t{1} << exp) +
                   static_cast<uint64_t>(sub) * width;
  return lower + width - 1;
}

uint64_t Histogram::Quantile(double q) const {
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Walk a bucket snapshot: with concurrent writers the walked total can
  // differ from count(), so the rank target is computed from the walked
  // total itself for a self-consistent answer.
  uint64_t cells[kBuckets];
  uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cells[i] = buckets_[i].load(std::memory_order_relaxed);
    total += cells[i];
  }
  if (total == 0) return 0;
  // Rank of the q-quantile in a sorted sample of `total` values, 1-based:
  // ceil(q * total), clamped to [1, total] (q=0 -> the minimum).
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(total));
  if (static_cast<double>(target) < q * static_cast<double>(total)) ++target;
  if (target == 0) target = 1;
  if (target > total) target = total;
  uint64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cumulative += cells[i];
    if (cumulative >= target) return BucketUpperBound(i);
  }
  return kMaxTracked;  // unreachable: total > 0 covers the loop
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "count=" << count() << " p50=" << P50() << " p90=" << P90()
     << " p99=" << P99() << " max=" << max();
  if (overflow() != 0) os << " overflow=" << overflow();
  return os.str();
}

}  // namespace jisc
