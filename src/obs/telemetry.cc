#include "obs/telemetry.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/logging.h"
#include "obs/observability.h"
#include "obs/trace.h"

namespace jisc {

TelemetryRegistry::TelemetryRegistry()
    : epoch_(std::chrono::steady_clock::now()),
      tracks_(kTelemetryMaxTracks) {}

void TelemetryRegistry::RegisterTracks(int count) {
  if (count > kTelemetryMaxTracks) count = kTelemetryMaxTracks;
  int cur = registered_.load(std::memory_order_relaxed);
  while (cur < count && !registered_.compare_exchange_weak(
                            cur, count, std::memory_order_acq_rel)) {
  }
}

TelemetryTrackSample TelemetryRegistry::SampleTrack(int t) const {
  const TrackTelemetry& tt = track(t);
  TelemetryTrackSample s;
  s.progress_events = tt.progress_events.load(std::memory_order_relaxed);
  s.progress_seq = tt.progress_seq.load(std::memory_order_relaxed);
  s.queue_depth = tt.queue_depth.load(std::memory_order_relaxed);
  s.queue_high_watermark =
      tt.queue_high_watermark.load(std::memory_order_relaxed);
  s.stall_count = tt.stall_count.load(std::memory_order_relaxed);
  s.stalled_ns = tt.stalled_ns.load(std::memory_order_relaxed);
  s.state_memory_bytes =
      tt.state_memory_bytes.load(std::memory_order_relaxed);
  s.migration_backlog = tt.migration_backlog.load(std::memory_order_relaxed);
  s.straggler_flags = tt.straggler_flags.load(std::memory_order_relaxed);
  s.ingress_duplicates =
      tt.ingress_duplicates.load(std::memory_order_relaxed);
  s.ingress_reordered = tt.ingress_reordered.load(std::memory_order_relaxed);
  s.ingress_late_admitted =
      tt.ingress_late_admitted.load(std::memory_order_relaxed);
  s.ingress_late_dropped =
      tt.ingress_late_dropped.load(std::memory_order_relaxed);
  return s;
}

TelemetrySampler::TelemetrySampler(Observability* obs, Options options)
    : obs_(obs), options_(options) {
  JISC_CHECK(obs_ != nullptr);
  JISC_CHECK(obs_->telemetry != nullptr)
      << "TelemetrySampler requires Observability::Options::telemetry";
  JISC_CHECK(options_.period_ms > 0);
  JISC_CHECK(options_.ring_capacity > 0);
  JISC_CHECK(options_.watchdog_samples >= 2);
  if (options_.start_thread) {
    // lint: allow(naked-thread): sampler-owned monitoring thread
    thread_ = std::thread([this] { Loop(); });
  }
}

TelemetrySampler::~TelemetrySampler() { Stop(); }

void TelemetrySampler::Stop() {
  if (stopped_) return;
  stopped_ = true;
  {
    MutexLock lk(&mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
  // Final snapshot: even a run shorter than one period leaves a series, and
  // the last sample reflects the end state (final watermarks, high marks).
  SampleOnce();
}

void TelemetrySampler::Loop() {
  for (;;) {
    SampleOnce();
    MutexLock lk(&mu_);
    if (stop_) return;
    cv_.WaitFor(&mu_, std::chrono::milliseconds(options_.period_ms));
    if (stop_) return;
  }
}

void TelemetrySampler::SampleOnce() {
  const TelemetryRegistry& reg = *obs_->telemetry;
  TelemetrySnapshot snap;
  snap.t_ns = reg.NowNs();
  snap.input_events = reg.input_events();
  snap.input_seq = reg.input_seq();
  snap.output_count = obs_->output_delay_ns.count();
  snap.probe_count = obs_->probe_ns.count();
  snap.insert_count = obs_->insert_ns.count();
  snap.completion_count = obs_->completion_ns.count();
  int tracks = reg.num_tracks();
  snap.tracks.reserve(static_cast<size_t>(tracks));
  for (int t = 0; t < tracks; ++t) snap.tracks.push_back(reg.SampleTrack(t));

  RunWatchdog(snap);

  MutexLock lk(&mu_);
  ++samples_;
  if (ring_.size() < options_.ring_capacity) {
    ring_.push_back(std::move(snap));
    ring_size_ = ring_.size();
    ring_next_ = ring_.size() % options_.ring_capacity;
  } else {
    ring_[ring_next_] = std::move(snap);
    ring_next_ = (ring_next_ + 1) % options_.ring_capacity;
    ++dropped_;
  }
}

void TelemetrySampler::RunWatchdog(const TelemetrySnapshot& snapshot) {
  // Ingress anomaly watchdog: one `ingress_anomaly` instant per episode in
  // which the summed anomaly gauges grow faster than the threshold per
  // sample. Mirrors the straggler watchdog's once-per-episode discipline.
  if (options_.anomaly_threshold > 0) {
    uint64_t total = 0;
    for (const TelemetryTrackSample& t : snapshot.tracks) {
      total += t.ingress_duplicates + t.ingress_late_admitted +
               t.ingress_late_dropped;
    }
    uint64_t delta = total - last_anomaly_total_;
    if (anomaly_have_last_ && delta > options_.anomaly_threshold) {
      if (!anomaly_episode_open_) {
        anomaly_episode_open_ = true;
        anomaly_episodes_.fetch_add(1, std::memory_order_relaxed);
        if (obs_ != nullptr) {
          TraceInstant(&obs_->trace, "ingress_anomaly", "telemetry", 0,
                       "events", delta);
        }
      }
    } else {
      anomaly_episode_open_ = false;
    }
    last_anomaly_total_ = total;
    anomaly_have_last_ = true;
  }

  // Shard tracks only (track 0 is the coordinator), and only with siblings
  // to compare against.
  int tracks = static_cast<int>(snapshot.tracks.size());
  int num_shards = tracks - 1;
  if (num_shards < 2) return;
  if (last_progress_.size() < snapshot.tracks.size()) {
    last_progress_.resize(snapshot.tracks.size(), 0);
    flat_samples_.resize(snapshot.tracks.size(), 0);
    episode_sibling_max_.resize(snapshot.tracks.size(), 0);
  }
  if (!have_last_) {
    for (int t = 0; t < tracks; ++t) {
      last_progress_[static_cast<size_t>(t)] =
          snapshot.tracks[static_cast<size_t>(t)].progress_events;
    }
    have_last_ = true;
    return;
  }
  for (int t = 1; t < tracks; ++t) {
    auto ti = static_cast<size_t>(t);
    const TelemetryTrackSample& cur = snapshot.tracks[ti];
    bool flat = cur.progress_events == last_progress_[ti];
    bool backlog = cur.queue_depth > 0;
    if (flat && backlog) {
      if (flat_samples_[ti] == 0) {
        // Episode start: remember where the siblings stood, so the verdict
        // can require that at least one of them advanced meanwhile.
        uint64_t sibling_max = 0;
        for (int s = 1; s < tracks; ++s) {
          if (s == t) continue;
          sibling_max =
              std::max(sibling_max,
                       snapshot.tracks[static_cast<size_t>(s)].progress_events);
        }
        episode_sibling_max_[ti] = sibling_max;
      }
      ++flat_samples_[ti];
      if (flat_samples_[ti] == options_.watchdog_samples) {
        uint64_t sibling_now = 0;
        for (int s = 1; s < tracks; ++s) {
          if (s == t) continue;
          sibling_now =
              std::max(sibling_now,
                       snapshot.tracks[static_cast<size_t>(s)].progress_events);
        }
        if (sibling_now > episode_sibling_max_[ti]) {
          obs_->telemetry->NoteStraggler(t);
          TraceInstant(&obs_->trace, "straggler_suspect", "telemetry", t,
                       "flat_samples",
                       static_cast<uint64_t>(flat_samples_[ti]));
        }
        // Re-arm only after the track moves again; a shard stuck forever is
        // flagged once per episode, not once per sample.
      }
    } else {
      flat_samples_[ti] = 0;
    }
    last_progress_[ti] = cur.progress_events;
  }
}

std::vector<TelemetrySnapshot> TelemetrySampler::Snapshots() const {
  MutexLock lk(&mu_);
  std::vector<TelemetrySnapshot> out;
  out.reserve(ring_size_);
  if (ring_.size() < options_.ring_capacity) {
    out = ring_;
  } else {
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(ring_next_ + i) % ring_.size()]);
    }
  }
  return out;
}

uint64_t TelemetrySampler::dropped_snapshots() const {
  MutexLock lk(&mu_);
  return dropped_;
}

uint64_t TelemetrySampler::samples_taken() const {
  MutexLock lk(&mu_);
  return samples_;
}

std::vector<uint64_t> TelemetrySampler::StragglerFlags() const {
  const TelemetryRegistry& reg = *obs_->telemetry;
  std::vector<uint64_t> flags;
  int tracks = reg.num_tracks();
  flags.reserve(static_cast<size_t>(tracks));
  for (int t = 0; t < tracks; ++t) {
    flags.push_back(reg.track(t).straggler_flags.load(
        std::memory_order_relaxed));
  }
  return flags;
}

}  // namespace jisc
