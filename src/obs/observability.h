#ifndef JISC_OBS_OBSERVABILITY_H_
#define JISC_OBS_OBSERVABILITY_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "obs/histogram.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace jisc {

// The observability bundle threaded through the execution layer: latency /
// service-time histograms plus the migration-phase trace recorder. One
// instance is shared by every component of a processor — the engine, its
// migration strategy, and (under the parallel executor) every shard engine
// and worker thread records into the same bundle: histograms are lock-free
// (obs/histogram.h) and the trace ring is internally locked (obs/trace.h).
//
// Null-pointer discipline: the execution layer carries `Observability*`
// that is nullptr when observability is off (the default), and every
// recording site is gated on it — disabled runs take zero clock reads and
// zero atomic increments beyond the pointer test. This is what the
// determinism_test tracing-on/off battery locks in: enabling observability
// must not change a single output tuple or deterministic work counter.
struct Observability {
  struct Options {
    // Ring capacity of the span recorder.
    size_t trace_capacity = 1 << 16;
    // Record per-operator probe/insert service times. Two steady-clock
    // reads per state probe and per insert — measurable on the hot path,
    // so it is separable from span tracing and off by default even when
    // observability itself is on.
    bool record_service_times = false;
    // Allocate the live telemetry registry (obs/telemetry.h): per-track
    // gauges the hot paths update and a TelemetrySampler can snapshot.
    // Off by default — like `obs == nullptr`, a null `telemetry` member
    // keeps every gauge write out of the hot path behind one pointer test.
    bool telemetry = false;
  };

  Observability() : Observability(Options()) {}
  explicit Observability(Options opts)
      : options(opts), trace(opts.trace_capacity) {
    if (opts.telemetry) telemetry = std::make_unique<TelemetryRegistry>();
  }

  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  Options options;

  // Per-tuple output delay: admission of the triggering event into a shard
  // engine -> delivery of the output at the sink, in nanoseconds. During a
  // migration this is exactly the paper's Fig. 10 quantity: a probe that
  // triggers just-in-time completion (or a post-Moving-State push that paid
  // the eager rebuild inside the transition) surfaces here as tail latency.
  Histogram output_delay_ns;

  // Per-operator service times (only when options.record_service_times):
  // a state probe issued by a join, and a state insert, in nanoseconds.
  Histogram probe_ns;
  Histogram insert_ns;

  // Service time of one per-value just-in-time completion (the
  // EnsureCompleted call that found an incomplete state), in nanoseconds.
  Histogram completion_ns;

  // Migration-phase spans (plan-diff, state copy, per-value completion,
  // drain, purge scans, shard transitions...). See DESIGN.md
  // "Observability" for the span taxonomy.
  TraceRecorder trace;

  // Live telemetry gauges (only when options.telemetry; nullptr = off).
  // Recording sites gate on this pointer exactly like the execution layer
  // gates on `Observability*` itself.
  std::unique_ptr<TelemetryRegistry> telemetry;

  // Merges another bundle's histograms into this one (per-shard bundles
  // aggregated after a run; spans stay with their own recorder).
  void MergeHistograms(const Observability& other) {
    output_delay_ns.Merge(other.output_delay_ns);
    probe_ns.Merge(other.probe_ns);
    insert_ns.Merge(other.insert_ns);
    completion_ns.Merge(other.completion_ns);
  }
};

}  // namespace jisc

#endif  // JISC_OBS_OBSERVABILITY_H_
