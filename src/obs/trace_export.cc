#include "obs/trace_export.h"

#include <algorithm>

namespace jisc {

namespace {

// Span names and categories are string literals from our own code
// (identifiers, dashes), but escape defensively so the JSON stays loadable
// no matter what a future call site passes.
void WriteJsonString(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
         << "0123456789abcdef"[c & 0xf];
    } else {
      os << c;
    }
  }
  os << '"';
}

// Nanoseconds as a microsecond decimal ("1234.567"): Chrome expects
// microsecond floats; the zero-padded fraction keeps ns precision.
void WriteMicros(std::ostream& os, uint64_t ns) {
  uint64_t frac = ns % 1000;
  os << ns / 1000 << '.' << static_cast<char>('0' + frac / 100)
     << static_cast<char>('0' + (frac / 10) % 10)
     << static_cast<char>('0' + frac % 10);
}

void WriteSpanEvent(std::ostream& os, const TraceSpan& span) {
  os << "{\"name\":";
  WriteJsonString(os, span.name);
  os << ",\"cat\":";
  WriteJsonString(os, *span.category == '\0' ? "jisc" : span.category);
  os << ",\"ph\":\"X\",\"pid\":1,\"tid\":" << span.track << ",\"ts\":";
  WriteMicros(os, span.start_ns);
  os << ",\"dur\":";
  WriteMicros(os, span.dur_ns);
  os << ",\"args\":{\"depth\":" << span.depth;
  if (span.arg_name != nullptr) {
    os << ",";
    WriteJsonString(os, span.arg_name);
    os << ":" << span.arg;
  }
  os << "}}";
}

}  // namespace

void WriteChromeTrace(std::ostream& os, const std::vector<TraceSpan>& spans,
                      uint64_t dropped, const std::string& process_name) {
  std::vector<const TraceSpan*> ordered;
  ordered.reserve(spans.size());
  for (const TraceSpan& s : spans) ordered.push_back(&s);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const TraceSpan* a, const TraceSpan* b) {
                     return a->start_ns < b->start_ns;
                   });
  os << "[\n";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
     << "\"args\":{\"name\":";
  WriteJsonString(os, process_name.c_str());
  os << "}}";
  if (dropped != 0) {
    os << ",\n{\"name\":\"process_labels\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
       << "\"args\":{\"labels\":\"trace truncated: " << dropped
       << " oldest spans dropped\"}}";
  }
  for (const TraceSpan* s : ordered) {
    os << ",\n";
    WriteSpanEvent(os, *s);
  }
  os << "\n]\n";
}

HistogramSummary SummarizeHistogram(const Histogram& h) {
  HistogramSummary s;
  s.count = h.count();
  s.p50 = h.P50();
  s.p90 = h.P90();
  s.p99 = h.P99();
  s.max = h.max();
  s.overflow = h.overflow();
  s.mean = h.mean();
  return s;
}

void WriteMetricsJson(
    std::ostream& os,
    const std::vector<std::pair<std::string, uint64_t>>& counters,
    const std::vector<std::pair<std::string, const Histogram*>>& histograms) {
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    os << (first ? "\n" : ",\n") << "    ";
    WriteJsonString(os, name.c_str());
    os << ": " << value;
    first = false;
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    HistogramSummary s = SummarizeHistogram(*h);
    os << (first ? "\n" : ",\n") << "    ";
    WriteJsonString(os, name.c_str());
    os << ": {\"count\": " << s.count << ", \"p50\": " << s.p50
       << ", \"p90\": " << s.p90 << ", \"p99\": " << s.p99
       << ", \"max\": " << s.max << ", \"mean\": " << s.mean
       << ", \"overflow\": " << s.overflow << "}";
    first = false;
  }
  os << "\n  }\n}\n";
}

}  // namespace jisc
