#include "obs/trace_export.h"

#include <algorithm>

namespace jisc {

namespace {

// Span names and categories are string literals from our own code
// (identifiers, dashes), but escape defensively so the JSON stays loadable
// no matter what a future call site passes.
void WriteJsonString(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
         << "0123456789abcdef"[c & 0xf];
    } else {
      os << c;
    }
  }
  os << '"';
}

// Nanoseconds as a microsecond decimal ("1234.567"): Chrome expects
// microsecond floats; the zero-padded fraction keeps ns precision.
void WriteMicros(std::ostream& os, uint64_t ns) {
  uint64_t frac = ns % 1000;
  os << ns / 1000 << '.' << static_cast<char>('0' + frac / 100)
     << static_cast<char>('0' + (frac / 10) % 10)
     << static_cast<char>('0' + frac % 10);
}

void WriteSpanEvent(std::ostream& os, const TraceSpan& span) {
  os << "{\"name\":";
  WriteJsonString(os, span.name);
  os << ",\"cat\":";
  WriteJsonString(os, *span.category == '\0' ? "jisc" : span.category);
  os << ",\"ph\":\"X\",\"pid\":1,\"tid\":" << span.track << ",\"ts\":";
  WriteMicros(os, span.start_ns);
  os << ",\"dur\":";
  WriteMicros(os, span.dur_ns);
  os << ",\"args\":{\"depth\":" << span.depth;
  if (span.arg_name != nullptr) {
    os << ",";
    WriteJsonString(os, span.arg_name);
    os << ":" << span.arg;
  }
  os << "}}";
}

}  // namespace

void WriteChromeTrace(std::ostream& os, const std::vector<TraceSpan>& spans,
                      uint64_t dropped, const std::string& process_name) {
  std::vector<const TraceSpan*> ordered;
  ordered.reserve(spans.size());
  for (const TraceSpan& s : spans) ordered.push_back(&s);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const TraceSpan* a, const TraceSpan* b) {
                     return a->start_ns < b->start_ns;
                   });
  os << "[\n";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
     << "\"args\":{\"name\":";
  WriteJsonString(os, process_name.c_str());
  os << "}}";
  if (dropped != 0) {
    os << ",\n{\"name\":\"process_labels\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
       << "\"args\":{\"labels\":\"trace truncated: " << dropped
       << " oldest spans dropped\"}}";
  }
  for (const TraceSpan* s : ordered) {
    os << ",\n";
    WriteSpanEvent(os, *s);
  }
  os << "\n]\n";
}

HistogramSummary SummarizeHistogram(const Histogram& h) {
  HistogramSummary s;
  s.count = h.count();
  s.p50 = h.P50();
  s.p90 = h.P90();
  s.p99 = h.P99();
  s.max = h.max();
  s.overflow = h.overflow();
  s.mean = h.mean();
  return s;
}

void WriteMetricsJson(
    std::ostream& os,
    const std::vector<std::pair<std::string, uint64_t>>& counters,
    const std::vector<std::pair<std::string, const Histogram*>>& histograms,
    uint64_t trace_dropped) {
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    os << (first ? "\n" : ",\n") << "    ";
    WriteJsonString(os, name.c_str());
    os << ": " << value;
    first = false;
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    HistogramSummary s = SummarizeHistogram(*h);
    os << (first ? "\n" : ",\n") << "    ";
    WriteJsonString(os, name.c_str());
    os << ": {\"count\": " << s.count << ", \"p50\": " << s.p50
       << ", \"p90\": " << s.p90 << ", \"p99\": " << s.p99
       << ", \"max\": " << s.max << ", \"mean\": " << s.mean
       << ", \"overflow\": " << s.overflow << "}";
    first = false;
  }
  os << "\n  },\n  \"trace\": {\"dropped\": " << trace_dropped << "}\n}\n";
}

void WriteTelemetryJsonl(std::ostream& os,
                         const std::vector<TelemetrySnapshot>& series,
                         uint64_t dropped_snapshots) {
  for (const TelemetrySnapshot& s : series) {
    os << "{\"t_ns\":" << s.t_ns << ",\"input_events\":" << s.input_events
       << ",\"input_seq\":" << s.input_seq << ",\"outputs\":"
       << s.output_count << ",\"probes\":" << s.probe_count
       << ",\"inserts\":" << s.insert_count << ",\"completions\":"
       << s.completion_count << ",\"tracks\":[";
    bool first = true;
    for (size_t t = 0; t < s.tracks.size(); ++t) {
      const TelemetryTrackSample& ts = s.tracks[t];
      os << (first ? "" : ",") << "{\"track\":" << t << ",\"progress\":"
         << ts.progress_events << ",\"seq\":" << ts.progress_seq
         << ",\"queue\":" << ts.queue_depth << ",\"queue_hwm\":"
         << ts.queue_high_watermark << ",\"stalls\":" << ts.stall_count
         << ",\"stalled_ns\":" << ts.stalled_ns << ",\"state_bytes\":"
         << ts.state_memory_bytes << ",\"straggler\":"
         << ts.straggler_flags << ",\"ingress_dup\":"
         << ts.ingress_duplicates << ",\"ingress_reordered\":"
         << ts.ingress_reordered << ",\"ingress_late_admitted\":"
         << ts.ingress_late_admitted << ",\"ingress_late_dropped\":"
         << ts.ingress_late_dropped << "}";
      first = false;
    }
    os << "]}\n";
  }
  if (dropped_snapshots != 0) {
    os << "{\"dropped_snapshots\":" << dropped_snapshots << "}\n";
  }
}

namespace {

// Prometheus metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*; our counter
// and histogram names already do (identifiers with underscores), but
// sanitize defensively so a future dashed name cannot corrupt the scrape.
void WritePromName(std::ostream& os, const std::string& name) {
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    os << (ok ? c : '_');
  }
}

}  // namespace

void WritePrometheusText(
    std::ostream& os,
    const std::vector<std::pair<std::string, uint64_t>>& counters,
    const std::vector<std::pair<std::string, HistogramSummary>>& histograms,
    const TelemetrySnapshot* latest) {
  os << "# HELP jisc_counter Deterministic work counters "
        "(Metrics::NamedCounters).\n"
     << "# TYPE jisc_counter counter\n";
  for (const auto& [name, value] : counters) {
    os << "jisc_counter{name=\"";
    WritePromName(os, name);
    os << "\"} " << value << "\n";
  }
  os << "# HELP jisc_latency_ns Latency/service-time quantiles in "
        "nanoseconds.\n"
     << "# TYPE jisc_latency_ns summary\n";
  for (const auto& [name, s] : histograms) {
    const std::pair<const char*, uint64_t> quantiles[] = {
        {"0.5", s.p50}, {"0.9", s.p90}, {"0.99", s.p99}};
    for (const auto& [q, v] : quantiles) {
      os << "jisc_latency_ns{name=\"";
      WritePromName(os, name);
      os << "\",quantile=\"" << q << "\"} " << v << "\n";
    }
    os << "jisc_latency_ns_count{name=\"";
    WritePromName(os, name);
    os << "\"} " << s.count << "\n";
    os << "jisc_latency_ns_max{name=\"";
    WritePromName(os, name);
    os << "\"} " << s.max << "\n";
  }
  if (latest == nullptr) return;
  os << "# HELP jisc_input_events_total Arrivals admitted by the "
        "coordinator.\n"
     << "# TYPE jisc_input_events_total counter\n"
     << "jisc_input_events_total " << latest->input_events << "\n"
     << "# HELP jisc_input_seq Highest arrival sequence number admitted.\n"
     << "# TYPE jisc_input_seq gauge\n"
     << "jisc_input_seq " << latest->input_seq << "\n";
  struct Gauge {
    const char* name;
    const char* help;
    const char* type;
    uint64_t TelemetryTrackSample::*field;
  };
  const Gauge gauges[] = {
      {"jisc_track_progress_events_total", "Events processed by the track.",
       "counter", &TelemetryTrackSample::progress_events},
      {"jisc_track_progress_seq", "Highest sequence processed (watermark).",
       "gauge", &TelemetryTrackSample::progress_seq},
      {"jisc_track_queue_depth", "Shard feed occupancy in batches.", "gauge",
       &TelemetryTrackSample::queue_depth},
      {"jisc_track_queue_high_watermark", "Peak shard feed occupancy.",
       "gauge", &TelemetryTrackSample::queue_high_watermark},
      {"jisc_track_stalls_total", "Backpressure stalls feeding the shard.",
       "counter", &TelemetryTrackSample::stall_count},
      {"jisc_track_stalled_ns_total", "Nanoseconds spent stalled.",
       "counter", &TelemetryTrackSample::stalled_ns},
      {"jisc_track_state_memory_bytes", "Approximate state bytes.", "gauge",
       &TelemetryTrackSample::state_memory_bytes},
      {"jisc_track_straggler_flags_total", "Stall-watchdog verdicts.",
       "counter", &TelemetryTrackSample::straggler_flags},
      {"jisc_track_ingress_duplicates_total",
       "Duplicate arrivals the IngressGuard suppressed.", "counter",
       &TelemetryTrackSample::ingress_duplicates},
      {"jisc_track_ingress_reordered_total",
       "Out-of-order arrivals the IngressGuard restored.", "counter",
       &TelemetryTrackSample::ingress_reordered},
      {"jisc_track_ingress_late_admitted_total",
       "Late arrivals admitted past the dedup window.", "counter",
       &TelemetryTrackSample::ingress_late_admitted},
      {"jisc_track_ingress_late_dropped_total",
       "Late arrivals dropped by the drop_late overflow policy.", "counter",
       &TelemetryTrackSample::ingress_late_dropped},
  };
  for (const Gauge& g : gauges) {
    os << "# HELP " << g.name << " " << g.help << "\n"
       << "# TYPE " << g.name << " " << g.type << "\n";
    for (size_t t = 0; t < latest->tracks.size(); ++t) {
      os << g.name << "{track=\"" << t << "\"} " << latest->tracks[t].*g.field
         << "\n";
    }
  }
}

}  // namespace jisc
