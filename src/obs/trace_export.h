#ifndef JISC_OBS_TRACE_EXPORT_H_
#define JISC_OBS_TRACE_EXPORT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace jisc {

// Writes `spans` as Chrome trace_event JSON (the "JSON Array Format" that
// chrome://tracing and https://ui.perfetto.dev load directly): one complete
// ("ph":"X") event per span, timestamps in microseconds, span.track as the
// tid, plus one metadata event naming the process. Spans are sorted by
// start time; `dropped` (from TraceRecorder::dropped()) is recorded as a
// process label so a truncated trace says so.
void WriteChromeTrace(std::ostream& os, const std::vector<TraceSpan>& spans,
                      uint64_t dropped = 0,
                      const std::string& process_name = "jisc");

// Point-in-time quantile digest of a Histogram — the shape every exporter
// (metrics JSON, scenario evidence bundles) reports. Taking the digest once
// and passing it around avoids re-walking the buckets per field and keeps
// the exported numbers mutually consistent even if writers are still hot.
struct HistogramSummary {
  uint64_t count = 0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
  uint64_t max = 0;
  uint64_t overflow = 0;
  double mean = 0;
};

HistogramSummary SummarizeHistogram(const Histogram& h);

// Flat metrics JSON: {"counters": {name: value, ...},
// "histograms": {name: {count, p50, p90, p99, max, mean, overflow}, ...},
// "trace": {"dropped": N}}. Counter names come from the caller (e.g.
// Metrics::NamedCounters()), so this layer stays independent of the
// execution library. `trace_dropped` (TraceRecorder::dropped()) makes
// silent span loss visible in the flat export, not just the Chrome trace.
void WriteMetricsJson(
    std::ostream& os,
    const std::vector<std::pair<std::string, uint64_t>>& counters,
    const std::vector<std::pair<std::string, const Histogram*>>& histograms,
    uint64_t trace_dropped = 0);

// Telemetry time-series as JSONL: one JSON object per line per snapshot
// ({"t_ns":..., "input_events":..., ..., "tracks":[{...}, ...]}), the
// format tools/telemetry_plot.py renders. `dropped_snapshots`
// (TelemetrySampler::dropped_snapshots()) is emitted as a trailing
// {"dropped_snapshots": N} line when non-zero, so a truncated series says
// so.
void WriteTelemetryJsonl(std::ostream& os,
                         const std::vector<TelemetrySnapshot>& series,
                         uint64_t dropped_snapshots = 0);

// Prometheus text exposition format (version 0.0.4), the textfile-collector
// flavor: counters, histogram summary quantiles, and (when `latest` is
// non-null) the most recent telemetry snapshot's gauges labeled by track.
// No HTTP server is involved — write this to a file a node_exporter
// textfile collector scrapes, or serve it with anything that can cat a
// file.
void WritePrometheusText(
    std::ostream& os,
    const std::vector<std::pair<std::string, uint64_t>>& counters,
    const std::vector<std::pair<std::string, HistogramSummary>>& histograms,
    const TelemetrySnapshot* latest = nullptr);

}  // namespace jisc

#endif  // JISC_OBS_TRACE_EXPORT_H_
