#ifndef JISC_OBS_TRACE_EXPORT_H_
#define JISC_OBS_TRACE_EXPORT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.h"
#include "obs/trace.h"

namespace jisc {

// Writes `spans` as Chrome trace_event JSON (the "JSON Array Format" that
// chrome://tracing and https://ui.perfetto.dev load directly): one complete
// ("ph":"X") event per span, timestamps in microseconds, span.track as the
// tid, plus one metadata event naming the process. Spans are sorted by
// start time; `dropped` (from TraceRecorder::dropped()) is recorded as a
// process label so a truncated trace says so.
void WriteChromeTrace(std::ostream& os, const std::vector<TraceSpan>& spans,
                      uint64_t dropped = 0,
                      const std::string& process_name = "jisc");

// Point-in-time quantile digest of a Histogram — the shape every exporter
// (metrics JSON, scenario evidence bundles) reports. Taking the digest once
// and passing it around avoids re-walking the buckets per field and keeps
// the exported numbers mutually consistent even if writers are still hot.
struct HistogramSummary {
  uint64_t count = 0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
  uint64_t max = 0;
  uint64_t overflow = 0;
  double mean = 0;
};

HistogramSummary SummarizeHistogram(const Histogram& h);

// Flat metrics JSON: {"counters": {name: value, ...},
// "histograms": {name: {count, p50, p90, p99, max, mean, overflow}, ...}}.
// Counter names come from the caller (e.g. Metrics::NamedCounters()), so
// this layer stays independent of the execution library.
void WriteMetricsJson(
    std::ostream& os,
    const std::vector<std::pair<std::string, uint64_t>>& counters,
    const std::vector<std::pair<std::string, const Histogram*>>& histograms);

}  // namespace jisc

#endif  // JISC_OBS_TRACE_EXPORT_H_
