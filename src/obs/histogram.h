#ifndef JISC_OBS_HISTOGRAM_H_
#define JISC_OBS_HISTOGRAM_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace jisc {

// Lock-free fixed-bucket log-linear histogram for latency / service-time
// distributions (nanoseconds, entry counts, ...). The observability
// counterpart of Metrics::Counter: recording is a relaxed atomic increment,
// so the per-shard engines of the parallel executor can record into one
// shared instance (or into per-shard instances merged afterwards) without
// locks, and copying snapshots the current contents.
//
// Bucket scheme (HDR-style log-linear): each power-of-two range [2^e, 2^e+1)
// is split into 2^kSubBits = 16 linear sub-buckets, so every recorded value
// lands in a bucket whose width is at most value/16 — quantile queries are
// exact to within a 1/16 (6.25%) relative error, independent of magnitude.
// Values below 2^kSubBits have unit-width buckets (exact). Values at or
// above kMaxTracked (2^40: ~18 minutes in ns) land in a single overflow
// bucket; Quantile() reports kMaxTracked for quantiles that fall there, and
// overflow() exposes the count so callers can tell saturation from signal.
//
// Consistency contract (same as Metrics::Counter): individual cell reads
// are race-free, but a snapshot taken while writers are hot is not a
// cross-cell-consistent cut — count()/Quantile() may disagree transiently
// by in-flight records. Each cell is monotone, so quantiles from successive
// snapshots never move backwards due to the snapshot itself. Reset() is the
// one non-concurrent entry point: callers must quiesce writers first.
class Histogram {
 public:
  static constexpr int kSubBits = 4;                    // 16 sub-buckets
  static constexpr int kSubCount = 1 << kSubBits;
  static constexpr int kMaxExp = 40;                    // track < 2^40
  static constexpr uint64_t kMaxTracked = uint64_t{1} << kMaxExp;
  // Exponents kSubBits..kMaxExp-1 each contribute kSubCount buckets on top
  // of the kSubCount unit buckets, plus the overflow bucket.
  static constexpr int kBuckets =
      (kMaxExp - kSubBits) * kSubCount + kSubCount + 1;

  constexpr Histogram() = default;
  Histogram(const Histogram& o) { CopyFrom(o); }
  Histogram& operator=(const Histogram& o) {
    if (this != &o) CopyFrom(o);
    return *this;
  }

  // Thread-safe: relaxed atomic increments only.
  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t prev = max_.load(std::memory_order_relaxed);
    while (prev < value &&
           !max_.compare_exchange_weak(prev, value,
                                       std::memory_order_relaxed)) {
    }
  }

  // Thread-safe: adds `other`'s cells into this histogram cell by cell.
  // Associative and commutative over bucket contents, like Counter sums.
  void Merge(const Histogram& other);

  // Resets every cell to zero. NOT thread-safe: quiesce writers first.
  void Reset();

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t overflow() const {
    return buckets_[kBuckets - 1].load(std::memory_order_relaxed);
  }
  double mean() const {
    uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }

  // The smallest recorded-bucket upper bound covering quantile q (clamped
  // to [0, 1]): for a quantile landing on value v the result r satisfies
  // v <= r <= v + v/16 (r == kMaxTracked when it falls in the overflow
  // bucket; 0 when the histogram is empty).
  uint64_t Quantile(double q) const;

  uint64_t P50() const { return Quantile(0.50); }
  uint64_t P90() const { return Quantile(0.90); }
  uint64_t P99() const { return Quantile(0.99); }

  // "count=... p50=... p90=... p99=... max=..." one-liner for logs.
  std::string ToString() const;

  // Bucket geometry, exposed for tests and exporters.
  static int BucketIndex(uint64_t value) {
    if (value < kSubCount) return static_cast<int>(value);
    if (value >= kMaxTracked) return kBuckets - 1;
    int exp = 63 - CountLeadingZeros(value);
    int sub = static_cast<int>((value >> (exp - kSubBits)) & (kSubCount - 1));
    return (exp - kSubBits) * kSubCount + kSubCount + sub;
  }
  // Largest value mapping to bucket `index` (kMaxTracked for overflow).
  static uint64_t BucketUpperBound(int index);

  uint64_t bucket_count(int index) const {
    return buckets_[static_cast<size_t>(index)].load(
        std::memory_order_relaxed);
  }

 private:
  static int CountLeadingZeros(uint64_t v) { return __builtin_clzll(v); }
  void CopyFrom(const Histogram& o);

  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

}  // namespace jisc

#endif  // JISC_OBS_HISTOGRAM_H_
