#include "obs/trace.h"

namespace jisc {

TraceRecorder::TraceRecorder(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now()) {}

void TraceRecorder::Record(const TraceSpan& span) {
  MutexLock lk(&mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(span);
    ++size_;
    next_ = ring_.size() % capacity_;
    return;
  }
  // Full: the slot at next_ holds the oldest span; evict it.
  ring_[next_] = span;
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TraceSpan> TraceRecorder::Snapshot() const {
  MutexLock lk(&mu_);
  std::vector<TraceSpan> out;
  out.reserve(size_);
  if (size_ < capacity_) {
    out.assign(ring_.begin(), ring_.end());
  } else {
    // next_ is the oldest surviving span once the ring has wrapped.
    for (size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

uint64_t TraceRecorder::dropped() const {
  MutexLock lk(&mu_);
  return dropped_;
}

void TraceRecorder::Clear() {
  MutexLock lk(&mu_);
  ring_.clear();
  next_ = 0;
  size_ = 0;
  dropped_ = 0;
}

void TraceInstant(TraceRecorder* recorder, const char* name,
                  const char* category, int track, const char* arg_name,
                  uint64_t arg) {
  if (recorder == nullptr) return;
  TraceSpan span;
  span.name = name;
  span.category = category;
  span.track = track;
  span.start_ns = recorder->NowNs();
  span.dur_ns = 0;
  span.arg_name = arg_name;
  span.arg = arg;
  recorder->Record(span);
}

}  // namespace jisc
