#ifndef JISC_OBS_TRACE_H_
#define JISC_OBS_TRACE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace jisc {

// One timestamped migration-phase (or service) span. Timestamps are
// nanoseconds since the owning TraceRecorder's epoch (steady clock), so
// spans from every thread share one timeline. `name`/`arg_name` must be
// string literals (or otherwise outlive the recorder): spans are recorded
// on hot-ish paths and must not allocate.
struct TraceSpan {
  const char* name = "";       // e.g. "jit-completion"
  const char* category = "";   // e.g. "migration"
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  // Logical track: 0 = coordinator / single-threaded engine, shard i + 1
  // for the parallel executor's workers. Exported as the Chrome trace tid.
  int track = 0;
  // Nesting depth at record time (0 = outermost). Derived from the
  // per-thread TraceScope stack, so the trace_test nesting assertions do
  // not depend on timestamp resolution.
  int depth = 0;
  // Optional numeric argument (join key being completed, entries scanned,
  // plans live, ...). Exported as args[arg_name] when arg_name is set.
  const char* arg_name = nullptr;
  uint64_t arg = 0;
};

// Bounded ring buffer of TraceSpans, shared by every thread of a processor
// (the parallel executor's shard workers included). Recording takes a
// mutex: spans are emitted at migration-phase granularity (per transition,
// per completed value, per purge scan), orders of magnitude rarer than
// tuple processing, so contention is negligible next to the shard feed
// queues. When the buffer is full the OLDEST span is dropped (the tail of
// a long run matters more than its head); dropped() reports how many, so
// exporters can say the trace is truncated rather than silently lying.
class TraceRecorder {
 public:
  explicit TraceRecorder(size_t capacity = 1 << 16);

  // Nanoseconds since this recorder's construction (steady clock). Cheap
  // enough for span endpoints; callers avoid it entirely when tracing is
  // disabled.
  uint64_t NowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  // Thread-safe. Spans may arrive out of timestamp order (a parent scope
  // records after its children); exporters sort by start_ns.
  void Record(const TraceSpan& span);

  // Thread-safe snapshot in ring order (oldest surviving span first).
  std::vector<TraceSpan> Snapshot() const;

  // Spans evicted oldest-first because the ring was full.
  uint64_t dropped() const;
  size_t capacity() const { return capacity_; }

  // Drops every recorded span (not the epoch). Thread-safe.
  void Clear();

 private:
  const size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable Mutex mu_;
  // Fixed-capacity ring: next_ is the slot the next span lands in; once
  // size_ == capacity_ that slot holds the oldest span, which is evicted.
  std::vector<TraceSpan> ring_ JISC_GUARDED_BY(mu_);
  size_t next_ JISC_GUARDED_BY(mu_) = 0;
  size_t size_ JISC_GUARDED_BY(mu_) = 0;
  uint64_t dropped_ JISC_GUARDED_BY(mu_) = 0;
};

// RAII span: captures the start timestamp at construction and records the
// completed span at destruction. Maintains a thread-local depth counter so
// nested scopes carry their nesting level. A null recorder disables the
// scope entirely (no clock reads) — callers pass the recorder only when
// tracing is enabled.
class TraceScope {
 public:
  TraceScope(TraceRecorder* recorder, const char* name, const char* category,
             int track = 0)
      : recorder_(recorder) {
    if (recorder_ == nullptr) return;
    span_.name = name;
    span_.category = category;
    span_.track = track;
    span_.depth = Depth()++;
    span_.start_ns = recorder_->NowNs();
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  ~TraceScope() {
    if (recorder_ == nullptr) return;
    --Depth();
    span_.dur_ns = recorder_->NowNs() - span_.start_ns;
    recorder_->Record(span_);
  }

  // Attaches the optional numeric argument (no-op when disabled).
  void SetArg(const char* arg_name, uint64_t arg) {
    span_.arg_name = arg_name;
    span_.arg = arg;
  }

 private:
  // Per-thread nesting depth. Function-local so every TU reaches a concrete
  // definition: an extern thread_local data member goes through GCC's TLS
  // wrapper, which UBSan flags as a null load when the defining TU's
  // dynamic initializer is elided.
  static int& Depth() {
    static thread_local int depth = 0;
    return depth;
  }

  TraceRecorder* recorder_;
  TraceSpan span_;
};

// Records an instantaneous event (zero-duration span) such as
// "plan-discard". Null recorder is a no-op.
void TraceInstant(TraceRecorder* recorder, const char* name,
                  const char* category, int track = 0,
                  const char* arg_name = nullptr, uint64_t arg = 0);

}  // namespace jisc

#endif  // JISC_OBS_TRACE_H_
