#ifndef JISC_OBS_TELEMETRY_H_
#define JISC_OBS_TELEMETRY_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace jisc {

struct Observability;

// The live telemetry plane: a registry of cheap atomic gauges written from
// the hot paths, sampled periodically into timestamped snapshots by a
// background TelemetrySampler thread. Everything here follows the
// observability null-pointer discipline (obs/observability.h): the registry
// only exists when Observability::Options::telemetry is set, every
// recording site is gated on the pointer, and a disabled run takes zero
// clock reads and zero atomic writes beyond the pointer test.
//
// Track numbering matches the trace recorder's: track 0 is the coordinator
// (or the single-threaded engine), track s + 1 is shard s under the
// parallel executor. Gauges are written only by the thread that owns the
// track (plus the coordinator-side queue gauges, whose writer is the
// coordinator), so plain relaxed atomics suffice — the sampler reads a
// racy-but-coherent point-in-time view, which is all a monitoring plane
// needs.

// Upper bound on tracks (coordinator + 64 shards). Registering more clamps
// onto the last slot; the fixed array means the sampler never races a
// reallocation.
inline constexpr int kTelemetryMaxTracks = 65;

// Per-track gauge block, cache-line aligned so one shard's writes do not
// false-share with its siblings'.
struct alignas(64) TrackTelemetry {
  // Events (arrivals + expiries) fully processed by this track's engine.
  std::atomic<uint64_t> progress_events{0};
  // Highest arrival sequence number processed (watermark; the lag against
  // the registry-global input_seq is the shard's progress lag).
  std::atomic<uint64_t> progress_seq{0};
  // Input feed occupancy in batches (parallel executor shards only).
  std::atomic<uint64_t> queue_depth{0};
  std::atomic<uint64_t> queue_high_watermark{0};
  // Backpressure stalls: the coordinator found the shard feed full and had
  // to block, and for how long in total.
  std::atomic<uint64_t> stall_count{0};
  std::atomic<uint64_t> stalled_ns{0};
  // Approximate resident bytes of the track's operator states, refreshed at
  // the engine's maintain cadence.
  std::atomic<uint64_t> state_memory_bytes{0};
  // Remaining fluid-migration work items (incomplete states + pending
  // per-value completions) on this track's engine; 0 outside a migration
  // episode. Refreshed after every fluid batch and at each transition.
  std::atomic<uint64_t> migration_backlog{0};
  // Times the stall watchdog flagged this track as a straggler suspect
  // (written by the sampler, read by exporters/assertions).
  std::atomic<uint64_t> straggler_flags{0};
  // Ingress guard anomaly gauges (exec/ingress_guard.h): duplicates the
  // guard suppressed, out-of-order arrivals it restored into sequence, and
  // late (gap-skipped-past) arrivals admitted or dropped per policy.
  std::atomic<uint64_t> ingress_duplicates{0};
  std::atomic<uint64_t> ingress_reordered{0};
  std::atomic<uint64_t> ingress_late_admitted{0};
  std::atomic<uint64_t> ingress_late_dropped{0};
};

// One track's gauge values at sample time.
struct TelemetryTrackSample {
  uint64_t progress_events = 0;
  uint64_t progress_seq = 0;
  uint64_t queue_depth = 0;
  uint64_t queue_high_watermark = 0;
  uint64_t stall_count = 0;
  uint64_t stalled_ns = 0;
  uint64_t state_memory_bytes = 0;
  uint64_t migration_backlog = 0;
  uint64_t straggler_flags = 0;
  uint64_t ingress_duplicates = 0;
  uint64_t ingress_reordered = 0;
  uint64_t ingress_late_admitted = 0;
  uint64_t ingress_late_dropped = 0;
};

// One timestamped snapshot of the whole registry plus the cumulative
// histogram counts (from the PR-3 histograms) that consumers difference
// into probe/insert/output rates.
struct TelemetrySnapshot {
  uint64_t t_ns = 0;  // since the registry's epoch
  uint64_t input_events = 0;
  uint64_t input_seq = 0;
  uint64_t output_count = 0;      // output_delay_ns.count()
  uint64_t probe_count = 0;       // probe_ns.count() (service_times only)
  uint64_t insert_count = 0;      // insert_ns.count() (service_times only)
  uint64_t completion_count = 0;  // completion_ns.count()
  std::vector<TelemetryTrackSample> tracks;
};

class TelemetryRegistry {
 public:
  TelemetryRegistry();

  TelemetryRegistry(const TelemetryRegistry&) = delete;
  TelemetryRegistry& operator=(const TelemetryRegistry&) = delete;

  // Nanoseconds since construction (steady clock) — the snapshot timeline.
  uint64_t NowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  // Grows the registered track count to at least `count` (atomic max).
  // Components call this at construction, before any sampler starts.
  void RegisterTracks(int count);
  int num_tracks() const {
    return registered_.load(std::memory_order_acquire);
  }

  // --- hot-path writers (all relaxed; zero when telemetry is off because
  // the caller holds no registry at all) ---
  void OnInput(uint64_t seq) {
    input_events_.fetch_add(1, std::memory_order_relaxed);
    StoreMax(&input_seq_, seq);
  }
  void OnEventProcessed(int track, uint64_t seq) {
    TrackTelemetry& t = slot(track);
    t.progress_events.fetch_add(1, std::memory_order_relaxed);
    StoreMax(&t.progress_seq, seq);
  }
  void SetQueueDepth(int track, uint64_t depth) {
    TrackTelemetry& t = slot(track);
    t.queue_depth.store(depth, std::memory_order_relaxed);
    StoreMax(&t.queue_high_watermark, depth);
  }
  void OnStall(int track, uint64_t ns) {
    TrackTelemetry& t = slot(track);
    t.stall_count.fetch_add(1, std::memory_order_relaxed);
    t.stalled_ns.fetch_add(ns, std::memory_order_relaxed);
  }
  void SetStateMemoryBytes(int track, uint64_t bytes) {
    slot(track).state_memory_bytes.store(bytes, std::memory_order_relaxed);
  }
  void SetMigrationBacklog(int track, uint64_t items) {
    slot(track).migration_backlog.store(items, std::memory_order_relaxed);
  }
  // Sampler-side: count one watchdog verdict against the track.
  void NoteStraggler(int track) {
    slot(track).straggler_flags.fetch_add(1, std::memory_order_relaxed);
  }
  // Ingress guard anomaly writers (exec/ingress_guard.cc). Like every hot-
  // path writer: the guard holds no registry at all when telemetry is off.
  void OnIngressDuplicateSuppressed(int track) {
    slot(track).ingress_duplicates.fetch_add(1, std::memory_order_relaxed);
  }
  void OnIngressReorderRestored(int track) {
    slot(track).ingress_reordered.fetch_add(1, std::memory_order_relaxed);
  }
  void OnIngressLateAdmitted(int track) {
    slot(track).ingress_late_admitted.fetch_add(1, std::memory_order_relaxed);
  }
  void OnIngressLateDropped(int track) {
    slot(track).ingress_late_dropped.fetch_add(1, std::memory_order_relaxed);
  }

  // --- reader side ---
  uint64_t input_events() const {
    return input_events_.load(std::memory_order_relaxed);
  }
  uint64_t input_seq() const {
    return input_seq_.load(std::memory_order_relaxed);
  }
  TelemetryTrackSample SampleTrack(int track) const;
  const TrackTelemetry& track(int t) const {
    return const_cast<TelemetryRegistry*>(this)->slot(t);
  }

 private:
  static void StoreMax(std::atomic<uint64_t>* cell, uint64_t v) {
    uint64_t cur = cell->load(std::memory_order_relaxed);
    while (cur < v &&
           !cell->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  TrackTelemetry& slot(int track) {
    if (track < 0) track = 0;
    if (track >= kTelemetryMaxTracks) track = kTelemetryMaxTracks - 1;
    return tracks_[static_cast<size_t>(track)];
  }

  const std::chrono::steady_clock::time_point epoch_;
  // Fixed-size so readers never race a reallocation.
  std::vector<TrackTelemetry> tracks_;
  std::atomic<int> registered_{1};
  std::atomic<uint64_t> input_events_{0};
  std::atomic<uint64_t> input_seq_{0};
};

// Background sampler: every period it snapshots the registry (plus the
// bundle's histogram counts) into a bounded drop-oldest ring and runs the
// stall watchdog. Construction starts the thread (unless
// options.start_thread is false — tests drive SampleOnce() by hand);
// Stop()/destruction joins it and takes one final snapshot so even runs
// shorter than a period leave a series.
//
// Watchdog contract: a shard track is a straggler suspect when its
// progress gauge is flat for `watchdog_samples` consecutive samples WHILE
// its feed queue is non-empty (pending work distinguishes a stall from an
// idle shard) AND at least one sibling shard advanced over the same
// window. Each verdict increments the track's straggler_flags gauge and
// emits a `straggler_suspect` trace instant; the counter re-arms once the
// track makes progress again.
class TelemetrySampler {
 public:
  struct Options {
    uint64_t period_ms = 10;
    // Snapshot ring capacity; the oldest snapshot is dropped when full.
    size_t ring_capacity = 4096;
    // Consecutive flat samples before a straggler verdict.
    int watchdog_samples = 5;
    // Ingress anomaly watchdog: when the per-sample increase of the summed
    // ingress anomaly gauges (duplicates suppressed + late admitted + late
    // dropped, across all tracks) exceeds this, emit one `ingress_anomaly`
    // trace instant per episode. 0 disables the watchdog.
    uint64_t anomaly_threshold = 0;
    // Tests set this to false and call SampleOnce() manually.
    bool start_thread = true;
  };

  // `obs` must outlive the sampler and have telemetry enabled.
  explicit TelemetrySampler(Observability* obs)
      : TelemetrySampler(obs, Options()) {}
  TelemetrySampler(Observability* obs, Options options);
  ~TelemetrySampler();

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  // Idempotent: stops the thread, joins it, takes the final snapshot.
  void Stop();

  // Takes one snapshot and runs the watchdog. Called by the sampler thread;
  // safe to call from the owner when start_thread was false.
  void SampleOnce() JISC_EXCLUDES(mu_);

  // Snapshot series in ring order (oldest surviving first). Thread-safe.
  std::vector<TelemetrySnapshot> Snapshots() const JISC_EXCLUDES(mu_);
  uint64_t dropped_snapshots() const JISC_EXCLUDES(mu_);
  uint64_t samples_taken() const JISC_EXCLUDES(mu_);

  // Final per-track straggler verdict counts (index = track).
  std::vector<uint64_t> StragglerFlags() const;

  // Ingress anomaly episodes the watchdog flagged (sampler-local counter;
  // one per burst of anomalies above options.anomaly_threshold).
  uint64_t anomaly_episodes() const {
    return anomaly_episodes_.load(std::memory_order_relaxed);
  }

  const Options& options() const { return options_; }

 private:
  void Loop() JISC_EXCLUDES(mu_);
  void RunWatchdog(const TelemetrySnapshot& snapshot);

  Observability* const obs_;
  const Options options_;

  mutable Mutex mu_;
  CondVar cv_;
  bool stop_ JISC_GUARDED_BY(mu_) = false;
  bool stopped_ = false;  // owner thread only (Stop idempotence)
  std::vector<TelemetrySnapshot> ring_ JISC_GUARDED_BY(mu_);
  size_t ring_next_ JISC_GUARDED_BY(mu_) = 0;
  size_t ring_size_ JISC_GUARDED_BY(mu_) = 0;
  uint64_t dropped_ JISC_GUARDED_BY(mu_) = 0;
  uint64_t samples_ JISC_GUARDED_BY(mu_) = 0;

  // Watchdog state: touched only from SampleOnce (one caller at a time by
  // contract — the sampler thread, or the owner in manual mode).
  std::vector<uint64_t> last_progress_;
  std::vector<int> flat_samples_;
  std::vector<uint64_t> episode_sibling_max_;
  bool have_last_ = false;

  // Ingress anomaly watchdog state (same single-caller contract).
  uint64_t last_anomaly_total_ = 0;
  bool anomaly_have_last_ = false;
  bool anomaly_episode_open_ = false;
  std::atomic<uint64_t> anomaly_episodes_{0};

  // The sampler owns its background thread: it only reads registry atomics
  // and appends to the mutex-guarded ring, so it cannot deadlock with (or
  // observe partial state of) the executor it watches.
  // lint: allow(naked-thread): sampler-owned monitoring thread
  std::thread thread_;
};

}  // namespace jisc

#endif  // JISC_OBS_TELEMETRY_H_
