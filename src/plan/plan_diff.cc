#include "plan/plan_diff.h"

#include <unordered_set>

namespace jisc {

StateSnapshot StateSnapshot::AllComplete(const LogicalPlan& plan) {
  StateSnapshot s;
  for (StreamSet set : plan.StateSets()) s.Add(set, true);
  return s;
}

PlanDiff DiffPlans(const LogicalPlan& new_plan, const StateSnapshot& old) {
  PlanDiff diff;
  diff.node_complete.assign(static_cast<size_t>(new_plan.num_nodes()), false);

  std::unordered_set<uint64_t> new_sets;
  for (int id = 0; id < new_plan.num_nodes(); ++id) {
    const PlanNode& n = new_plan.node(id);
    new_sets.insert(n.streams.bits());
    auto it = old.completeness.find(n.streams);
    bool complete = (it != old.completeness.end()) && it->second;
    diff.node_complete[id] = complete;
    if (complete && n.kind != OpKind::kScan) {
      diff.copied.push_back(n.streams);
    }
    if (!complete) {
      diff.incomplete.push_back(n.streams);
    }
  }
  for (const auto& [set, was_complete] : old.completeness) {
    (void)was_complete;
    if (new_sets.find(set.bits()) == new_sets.end()) {
      diff.discarded.push_back(set);
    }
  }
  return diff;
}

PlanDiff DiffPlans(const LogicalPlan& new_plan, const LogicalPlan& old_plan) {
  return DiffPlans(new_plan, StateSnapshot::AllComplete(old_plan));
}

}  // namespace jisc
