#ifndef JISC_PLAN_PLAN_DIFF_H_
#define JISC_PLAN_PLAN_DIFF_H_

#include <unordered_map>
#include <vector>

#include "plan/logical_plan.h"
#include "types/tuple.h"

namespace jisc {

// What a running executor knows about its states at transition time:
// identity (StreamSet) -> is the state complete? During normal operation all
// states are complete; under JISC some may still be incomplete from an
// earlier, overlapping transition (Section 4.5).
struct StateSnapshot {
  std::unordered_map<StreamSet, bool, StreamSetHash> completeness;

  void Add(StreamSet id, bool complete) { completeness[id] = complete; }

  // All states complete (normal operation snapshot for `plan`).
  static StateSnapshot AllComplete(const LogicalPlan& plan);
};

// Classification of the new plan's states per Definition 1, refined by the
// overlapped-transition rule of Section 4.5: a new-plan state is complete
// iff it exists in the old plan *and* was complete there.
struct PlanDiff {
  // Indexed by new-plan node id.
  std::vector<bool> node_complete;
  // States of the old plan reused by the new plan (Definition 1 "copied").
  std::vector<StreamSet> copied;
  // States of the old plan absent from the new plan (discarded at
  // transition, Section 4.1).
  std::vector<StreamSet> discarded;
  // States of the new plan that start incomplete.
  std::vector<StreamSet> incomplete;

  int NumIncomplete() const { return static_cast<int>(incomplete.size()); }
};

PlanDiff DiffPlans(const LogicalPlan& new_plan, const StateSnapshot& old);

// Convenience: diff between two plans assuming the old one is fully
// complete (a first transition during normal operation).
PlanDiff DiffPlans(const LogicalPlan& new_plan, const LogicalPlan& old_plan);

}  // namespace jisc

#endif  // JISC_PLAN_PLAN_DIFF_H_
