#include "plan/transitions.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"

namespace jisc {

std::vector<StreamId> BestCaseOrder(std::vector<StreamId> order) {
  JISC_CHECK(order.size() >= 2);
  std::swap(order[order.size() - 1], order[order.size() - 2]);
  return order;
}

std::vector<StreamId> WorstCaseOrder(std::vector<StreamId> order) {
  std::reverse(order.begin(), order.end());
  return order;
}

std::vector<StreamId> AdjacentSwap(std::vector<StreamId> order, int pos) {
  JISC_CHECK(pos >= 0);
  JISC_CHECK(pos + 1 < static_cast<int>(order.size()));
  std::swap(order[pos], order[pos + 1]);
  return order;
}

std::vector<StreamId> RandomTriangularSwap(std::vector<StreamId> order,
                                           Rng* rng, int* i, int* j) {
  // The paper labels operator positions 1..n for n joins over n+1 streams,
  // with the two bottom streams sharing label 1. A swap of operator
  // positions (I, J) exchanges the streams at (0-based) stream positions
  // I and J when I > 1, and position 0 or 1 (choose 0) when I == 1.
  int n = static_cast<int>(order.size()) - 1;  // number of join operators
  JISC_CHECK(n >= 2);
  TriangularSwapDistribution dist(n);
  auto [pi, pj] = dist.Sample(rng);
  if (i != nullptr) *i = pi;
  if (j != nullptr) *j = pj;
  // Operator position p corresponds to stream position p (0-based index p)
  // for p >= 1; operator 1 owns stream positions 0 and 1 — exchanging the
  // upper of the two keeps the mapping one-to-one.
  std::swap(order[pi], order[pj]);
  return order;
}

int CountIncompleteStates(const std::vector<StreamId>& old_order,
                          const std::vector<StreamId>& new_order) {
  JISC_CHECK(old_order.size() == new_order.size());
  JISC_CHECK(old_order.size() >= 2);
  // Prefix stream-sets of the old plan; every state of a left-deep plan is
  // either a leaf (always complete) or a prefix set.
  std::unordered_set<uint64_t> old_sets;
  uint64_t mask = 0;
  for (StreamId s : old_order) {
    mask |= 1ULL << s;
    old_sets.insert(mask);
  }
  int incomplete = 0;
  mask = 1ULL << new_order[0];
  for (size_t k = 1; k < new_order.size(); ++k) {
    mask |= 1ULL << new_order[k];
    if (old_sets.find(mask) == old_sets.end()) ++incomplete;
  }
  return incomplete;
}

}  // namespace jisc
