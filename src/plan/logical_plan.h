#ifndef JISC_PLAN_LOGICAL_PLAN_H_
#define JISC_PLAN_LOGICAL_PLAN_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "types/tuple.h"

namespace jisc {

// Kind of each plan operator. Scans are leaves; the binary operators carry
// state and are the subject of plan migration.
enum class OpKind {
  kScan,
  kHashJoin,       // symmetric hash join (equi-join on the shared attribute)
  kNljJoin,        // symmetric nested-loops join (general theta join)
  kSetDifference,  // windowed set difference (Section 4.7)
  kSemiJoin,       // windowed semi join (Section 4.7 generalized further:
                   // outer tuples that DO have a live inner match)
};

const char* OpKindName(OpKind kind);

// One node of a binary plan tree. Plain data; LogicalPlan owns the vector
// and maintains the derived fields (streams, parent).
struct PlanNode {
  int id = -1;
  OpKind kind = OpKind::kScan;
  StreamId stream = 0;  // meaningful for scans only
  int left = -1;        // child node ids; -1 for scans
  int right = -1;
  int parent = -1;      // -1 for the root
  StreamSet streams;    // streams covered by this subtree
};

// An immutable binary tree-structured query plan over a set of streams.
// Node 0..n-1 are stored in a vector; structure is by id links. The identity
// of the *state* materialized at a node is its StreamSet (see
// state/state_id.h); two plans over the same query share state identities
// exactly when subtrees cover the same streams.
class LogicalPlan {
 public:
  LogicalPlan() = default;

  // ((...(order[0] J order[1]) J order[2]) ... J order[n-1]) with every join
  // of kind `join_kind`.
  static LogicalPlan LeftDeep(const std::vector<StreamId>& order,
                              OpKind join_kind);

  // Left-deep with per-level join kinds; join_kinds.size() must be
  // order.size() - 1; join_kinds[0] is the bottom join.
  static LogicalPlan LeftDeepMixed(const std::vector<StreamId>& order,
                                   const std::vector<OpKind>& join_kinds);

  // Balanced bushy tree over `order` (recursively split in half), all joins
  // of kind `join_kind`.
  static LogicalPlan BalancedBushy(const std::vector<StreamId>& order,
                                   OpKind join_kind);

  // Set-difference chain ((...(outer - inners[0]) - inners[1]) ... ).
  static LogicalPlan SetDifferenceChain(StreamId outer,
                                        const std::vector<StreamId>& inners);

  // Semi-join chain ((...(outer |X inners[0]) |X inners[1]) ... ): outer
  // tuples with a live match in every inner stream.
  static LogicalPlan SemiJoinChain(StreamId outer,
                                   const std::vector<StreamId>& inners);

  // Generic assembly from a postorder shape description (leaves carry the
  // stream, internal entries the operator kind). Enables arbitrary tree
  // shapes beyond the convenience builders; used by the plan parser and
  // the random-tree fuzzer.
  struct ShapeEntry {
    bool leaf = false;
    StreamId stream = 0;
    OpKind kind = OpKind::kScan;
  };
  static StatusOr<LogicalPlan> FromShape(
      const std::vector<ShapeEntry>& postorder);

  // --- structure access ---
  int root() const { return root_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const PlanNode& node(int id) const { return nodes_[id]; }
  bool IsLeaf(int id) const { return nodes_[id].kind == OpKind::kScan; }

  // Scan node id for a stream, or -1.
  int ScanFor(StreamId stream) const;

  // All streams referenced by the plan.
  StreamSet streams() const { return nodes_.empty() ? StreamSet()
                                                    : nodes_[root_].streams; }

  // StreamSets of every node (leaf and internal, including the root): the
  // identities of all states the plan materializes.
  std::vector<StreamSet> StateSets() const;

  // True if every internal node's right child is a leaf (left-deep chain).
  bool IsLeftDeep() const;

  // For a left-deep plan: the bottom-up stream order
  // (order[0], order[1] are the leaf join's children). Status error if the
  // plan is not left-deep.
  StatusOr<std::vector<StreamId>> LeftDeepOrder() const;

  // Structural sanity: single root, every stream scanned once, children
  // linked consistently, stream sets disjoint at binary nodes.
  Status Validate() const;

  // e.g. "((S0 HJ S1) HJ S2)".
  std::string ToString() const;

  friend bool operator==(const LogicalPlan& a, const LogicalPlan& b);

 private:
  int AddScan(StreamId stream);
  int AddBinary(OpKind kind, int left, int right);
  int BuildBushy(const std::vector<StreamId>& order, size_t lo, size_t hi,
                 OpKind join_kind);
  std::string NodeToString(int id) const;

  std::vector<PlanNode> nodes_;
  int root_ = -1;
};

// Returns `order` with the elements at positions i and j exchanged
// (0-based). Used to generate the paper's pairwise join exchanges.
std::vector<StreamId> SwapPositions(std::vector<StreamId> order, int i, int j);

}  // namespace jisc

#endif  // JISC_PLAN_LOGICAL_PLAN_H_
