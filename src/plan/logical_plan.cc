#include "plan/logical_plan.h"

#include <sstream>

#include "common/logging.h"

namespace jisc {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kScan:
      return "Scan";
    case OpKind::kHashJoin:
      return "HJ";
    case OpKind::kNljJoin:
      return "NLJ";
    case OpKind::kSetDifference:
      return "DIFF";
    case OpKind::kSemiJoin:
      return "SEMI";
  }
  return "?";
}

int LogicalPlan::AddScan(StreamId stream) {
  PlanNode n;
  n.id = static_cast<int>(nodes_.size());
  n.kind = OpKind::kScan;
  n.stream = stream;
  n.streams = StreamSet::Single(stream);
  nodes_.push_back(n);
  return n.id;
}

int LogicalPlan::AddBinary(OpKind kind, int left, int right) {
  JISC_CHECK(kind != OpKind::kScan);
  PlanNode n;
  n.id = static_cast<int>(nodes_.size());
  n.kind = kind;
  n.left = left;
  n.right = right;
  n.streams = StreamSet::Union(nodes_[left].streams, nodes_[right].streams);
  nodes_.push_back(n);
  nodes_[left].parent = n.id;
  nodes_[right].parent = n.id;
  return n.id;
}

LogicalPlan LogicalPlan::LeftDeep(const std::vector<StreamId>& order,
                                  OpKind join_kind) {
  JISC_CHECK(order.size() >= 2);
  std::vector<OpKind> kinds(order.size() - 1, join_kind);
  return LeftDeepMixed(order, kinds);
}

LogicalPlan LogicalPlan::LeftDeepMixed(const std::vector<StreamId>& order,
                                       const std::vector<OpKind>& join_kinds) {
  JISC_CHECK(order.size() >= 2);
  JISC_CHECK(join_kinds.size() == order.size() - 1);
  LogicalPlan p;
  int acc = p.AddScan(order[0]);
  for (size_t i = 1; i < order.size(); ++i) {
    int scan = p.AddScan(order[i]);
    acc = p.AddBinary(join_kinds[i - 1], acc, scan);
  }
  p.root_ = acc;
  JISC_CHECK(p.Validate().ok());
  return p;
}

int LogicalPlan::BuildBushy(const std::vector<StreamId>& order, size_t lo,
                            size_t hi, OpKind join_kind) {
  if (hi - lo == 1) return AddScan(order[lo]);
  size_t mid = lo + (hi - lo + 1) / 2;  // left half gets the extra element
  int left = BuildBushy(order, lo, mid, join_kind);
  int right = BuildBushy(order, mid, hi, join_kind);
  return AddBinary(join_kind, left, right);
}

LogicalPlan LogicalPlan::BalancedBushy(const std::vector<StreamId>& order,
                                       OpKind join_kind) {
  JISC_CHECK(order.size() >= 2);
  LogicalPlan p;
  p.root_ = p.BuildBushy(order, 0, order.size(), join_kind);
  JISC_CHECK(p.Validate().ok());
  return p;
}

LogicalPlan LogicalPlan::SetDifferenceChain(
    StreamId outer, const std::vector<StreamId>& inners) {
  JISC_CHECK(!inners.empty());
  LogicalPlan p;
  int acc = p.AddScan(outer);
  for (StreamId inner : inners) {
    int scan = p.AddScan(inner);
    acc = p.AddBinary(OpKind::kSetDifference, acc, scan);
  }
  p.root_ = acc;
  JISC_CHECK(p.Validate().ok());
  return p;
}

LogicalPlan LogicalPlan::SemiJoinChain(StreamId outer,
                                       const std::vector<StreamId>& inners) {
  JISC_CHECK(!inners.empty());
  LogicalPlan p;
  int acc = p.AddScan(outer);
  for (StreamId inner : inners) {
    int scan = p.AddScan(inner);
    acc = p.AddBinary(OpKind::kSemiJoin, acc, scan);
  }
  p.root_ = acc;
  JISC_CHECK(p.Validate().ok());
  return p;
}

StatusOr<LogicalPlan> LogicalPlan::FromShape(
    const std::vector<ShapeEntry>& postorder) {
  if (postorder.empty()) {
    return Status::InvalidArgument("empty plan shape");
  }
  LogicalPlan p;
  std::vector<int> stack;
  StreamSet seen;
  for (const ShapeEntry& e : postorder) {
    if (e.leaf) {
      if (seen.Contains(e.stream)) {
        return Status::InvalidArgument("stream scanned twice");
      }
      seen = StreamSet::Union(seen, StreamSet::Single(e.stream));
      stack.push_back(p.AddScan(e.stream));
    } else {
      if (e.kind == OpKind::kScan) {
        return Status::InvalidArgument("internal shape entry must be binary");
      }
      if (stack.size() < 2) {
        return Status::InvalidArgument("malformed plan shape");
      }
      int right = stack.back();
      stack.pop_back();
      int left = stack.back();
      stack.pop_back();
      stack.push_back(p.AddBinary(e.kind, left, right));
    }
  }
  if (stack.size() != 1) {
    return Status::InvalidArgument("plan shape does not form a single tree");
  }
  p.root_ = stack.back();
  Status valid = p.Validate();
  if (!valid.ok()) return valid;
  return p;
}

int LogicalPlan::ScanFor(StreamId stream) const {
  for (const auto& n : nodes_) {
    if (n.kind == OpKind::kScan && n.stream == stream) return n.id;
  }
  return -1;
}

std::vector<StreamSet> LogicalPlan::StateSets() const {
  std::vector<StreamSet> out;
  out.reserve(nodes_.size());
  for (const auto& n : nodes_) out.push_back(n.streams);
  return out;
}

bool LogicalPlan::IsLeftDeep() const {
  for (const auto& n : nodes_) {
    if (n.kind == OpKind::kScan) continue;
    if (!IsLeaf(n.right)) return false;
  }
  return true;
}

StatusOr<std::vector<StreamId>> LogicalPlan::LeftDeepOrder() const {
  if (!IsLeftDeep()) {
    return Status::FailedPrecondition("plan is not left-deep");
  }
  // Walk down the left spine collecting right leaves, then reverse.
  std::vector<StreamId> rev;
  int cur = root_;
  while (!IsLeaf(cur)) {
    rev.push_back(nodes_[nodes_[cur].right].stream);
    cur = nodes_[cur].left;
  }
  rev.push_back(nodes_[cur].stream);
  return std::vector<StreamId>(rev.rbegin(), rev.rend());
}

Status LogicalPlan::Validate() const {
  if (nodes_.empty() || root_ < 0 || root_ >= num_nodes()) {
    return Status::InvalidArgument("plan has no root");
  }
  if (nodes_[root_].parent != -1) {
    return Status::InvalidArgument("root has a parent");
  }
  StreamSet seen;
  for (const auto& n : nodes_) {
    if (n.kind == OpKind::kScan) {
      if (n.left != -1 || n.right != -1) {
        return Status::InvalidArgument("scan with children");
      }
      if (seen.Contains(n.stream)) {
        return Status::InvalidArgument("stream scanned twice");
      }
      seen = StreamSet::Union(seen, StreamSet::Single(n.stream));
    } else {
      if (n.left < 0 || n.left >= num_nodes() || n.right < 0 ||
          n.right >= num_nodes()) {
        return Status::InvalidArgument("binary node with bad child links");
      }
      if (nodes_[n.left].parent != n.id || nodes_[n.right].parent != n.id) {
        return Status::InvalidArgument("child parent link mismatch");
      }
      if (nodes_[n.left].streams.Intersects(nodes_[n.right].streams)) {
        return Status::InvalidArgument("join children share streams");
      }
      StreamSet expect =
          StreamSet::Union(nodes_[n.left].streams, nodes_[n.right].streams);
      if (!(expect == n.streams)) {
        return Status::InvalidArgument("stale stream set");
      }
    }
  }
  if (!(seen == nodes_[root_].streams)) {
    return Status::InvalidArgument("root stream set mismatch");
  }
  return Status::Ok();
}

std::string LogicalPlan::NodeToString(int id) const {
  const PlanNode& n = nodes_[id];
  if (n.kind == OpKind::kScan) {
    return "S" + std::to_string(n.stream);
  }
  return "(" + NodeToString(n.left) + " " + OpKindName(n.kind) + " " +
         NodeToString(n.right) + ")";
}

std::string LogicalPlan::ToString() const {
  if (root_ < 0) return "<empty>";
  return NodeToString(root_);
}

bool operator==(const LogicalPlan& a, const LogicalPlan& b) {
  if (a.root_ != b.root_ || a.nodes_.size() != b.nodes_.size()) return false;
  for (size_t i = 0; i < a.nodes_.size(); ++i) {
    const PlanNode& x = a.nodes_[i];
    const PlanNode& y = b.nodes_[i];
    if (x.kind != y.kind || x.stream != y.stream || x.left != y.left ||
        x.right != y.right || x.parent != y.parent) {
      return false;
    }
  }
  return true;
}

std::vector<StreamId> SwapPositions(std::vector<StreamId> order, int i,
                                    int j) {
  JISC_CHECK(i >= 0 && j >= 0);
  JISC_CHECK(i < static_cast<int>(order.size()));
  JISC_CHECK(j < static_cast<int>(order.size()));
  std::swap(order[i], order[j]);
  return order;
}

}  // namespace jisc
