#ifndef JISC_PLAN_TRANSITIONS_H_
#define JISC_PLAN_TRANSITIONS_H_

#include <vector>

#include "common/random.h"
#include "plan/logical_plan.h"

namespace jisc {

// Generators for the join-order changes used in the paper's experiments.
// All operate on the bottom-up stream order of a left-deep plan.

// Paper best case (Fig. 5, Figs. 7/12): exchange the two topmost streams.
// Exactly one state of the new plan (the one just below the root) is
// incomplete; every unchanged subtree keeps complete states.
std::vector<StreamId> BestCaseOrder(std::vector<StreamId> order);

// Paper worst case (Figs. 3b, 8/11): reverse the join order. Every
// intermediate (non-root, non-leaf) state of the new plan is incomplete.
std::vector<StreamId> WorstCaseOrder(std::vector<StreamId> order);

// Exchange the streams at (0-based) positions pos and pos+1. The number of
// incomplete states after the transition is 1.
std::vector<StreamId> AdjacentSwap(std::vector<StreamId> order, int pos);

// Samples a pairwise exchange from the triangular distribution of
// Section 5.2 (positions close together are likelier) and applies it.
// The sampled 1-based positions are returned through *i and *j when non-null.
std::vector<StreamId> RandomTriangularSwap(std::vector<StreamId> order,
                                           Rng* rng, int* i = nullptr,
                                           int* j = nullptr);

// Number of incomplete states a left-deep -> left-deep transition produces,
// computed structurally (prefix-set comparison). Used to cross-check the
// Section 5 model (incomplete = J - I for a pairwise exchange).
int CountIncompleteStates(const std::vector<StreamId>& old_order,
                          const std::vector<StreamId>& new_order);

}  // namespace jisc

#endif  // JISC_PLAN_TRANSITIONS_H_
