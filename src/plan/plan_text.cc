#include "plan/plan_text.h"

#include <cctype>
#include <functional>
#include <memory>

#include "common/logging.h"

namespace jisc {

namespace {

// Recursive-descent parser building directly into a node-list; converted to
// a LogicalPlan via the builders by reconstructing structure bottom-up.
struct Parser {
  const std::string& text;
  size_t pos = 0;

  explicit Parser(const std::string& t) : text(t) {}

  void SkipSpace() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(
                                    text[pos]))) {
      ++pos;
    }
  }

  bool Eat(char c) {
    SkipSpace();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  // A parsed subtree: either a leaf stream or an operator over two subtrees.
  struct Node {
    bool leaf = false;
    StreamId stream = 0;
    OpKind kind = OpKind::kHashJoin;
    std::unique_ptr<Node> left;
    std::unique_ptr<Node> right;
  };

  StatusOr<std::unique_ptr<Node>> ParseNode() {
    SkipSpace();
    if (pos >= text.size()) {
      return Status::InvalidArgument("unexpected end of plan text");
    }
    if (text[pos] == 'S') {
      ++pos;
      size_t start = pos;
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
      if (pos == start) {
        return Status::InvalidArgument("expected stream number after 'S'");
      }
      long v = std::stol(text.substr(start, pos - start));
      if (v < 0 || v >= kMaxStreams) {
        return Status::InvalidArgument("stream id out of range");
      }
      auto n = std::make_unique<Node>();
      n->leaf = true;
      n->stream = static_cast<StreamId>(v);
      return n;
    }
    if (!Eat('(')) {
      return Status::InvalidArgument("expected '(' or scan");
    }
    auto left = ParseNode();
    if (!left.ok()) return left.status();
    SkipSpace();
    // Operator token.
    size_t start = pos;
    while (pos < text.size() &&
           std::isupper(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
    std::string op = text.substr(start, pos - start);
    OpKind kind;
    if (op == "HJ") {
      kind = OpKind::kHashJoin;
    } else if (op == "NLJ") {
      kind = OpKind::kNljJoin;
    } else if (op == "DIFF") {
      kind = OpKind::kSetDifference;
    } else if (op == "SEMI") {
      kind = OpKind::kSemiJoin;
    } else {
      return Status::InvalidArgument("unknown operator '" + op + "'");
    }
    auto right = ParseNode();
    if (!right.ok()) return right.status();
    if (!Eat(')')) {
      return Status::InvalidArgument("expected ')'");
    }
    auto n = std::make_unique<Node>();
    n->kind = kind;
    n->left = std::move(left).value();
    n->right = std::move(right).value();
    return n;
  }
};

// Flattens the parse tree into the postorder shape LogicalPlan::FromShape
// assembles from.
class PlanAssembler {
 public:
  StatusOr<LogicalPlan> Assemble(const Parser::Node& root) {
    Status s = Collect(root);
    if (!s.ok()) return s;
    return LogicalPlan::FromShape(shape_);
  }

 private:
  Status Collect(const Parser::Node& n) {
    if (n.leaf) {
      shape_.push_back({true, n.stream, OpKind::kScan});
      return Status::Ok();
    }
    Status l = Collect(*n.left);
    if (!l.ok()) return l;
    Status r = Collect(*n.right);
    if (!r.ok()) return r;
    shape_.push_back({false, 0, n.kind});
    return Status::Ok();
  }

  std::vector<LogicalPlan::ShapeEntry> shape_;
};

}  // namespace

StatusOr<LogicalPlan> ParsePlan(const std::string& text) {
  Parser p(text);
  auto node = p.ParseNode();
  if (!node.ok()) return node.status();
  p.SkipSpace();
  if (p.pos != text.size()) {
    return Status::InvalidArgument("trailing characters after plan");
  }
  PlanAssembler assembler;
  return assembler.Assemble(*node.value());
}

LogicalPlan RandomPlanTree(const std::vector<StreamId>& streams,
                           OpKind join_kind, Rng* rng) {
  JISC_CHECK(streams.size() >= 2);
  std::vector<StreamId> order = streams;
  rng->Shuffle(&order);
  // Postorder shape over a uniformly random split structure.
  std::vector<LogicalPlan::ShapeEntry> shape;
  std::function<void(size_t, size_t)> build = [&](size_t lo, size_t hi) {
    if (hi - lo == 1) {
      shape.push_back({true, order[lo], OpKind::kScan});
      return;
    }
    size_t split = lo + 1 + rng->UniformU64(hi - lo - 1);
    build(lo, split);
    build(split, hi);
    shape.push_back({false, 0, join_kind});
  };
  build(0, order.size());
  auto plan = LogicalPlan::FromShape(shape);
  JISC_CHECK(plan.ok());
  return std::move(plan).value();
}

}  // namespace jisc
