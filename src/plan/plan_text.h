#ifndef JISC_PLAN_PLAN_TEXT_H_
#define JISC_PLAN_PLAN_TEXT_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "plan/logical_plan.h"

namespace jisc {

// Parses the textual plan syntax produced by LogicalPlan::ToString():
//   plan  := scan | "(" plan OP plan ")"
//   scan  := "S" digits
//   OP    := "HJ" | "NLJ" | "DIFF" | "SEMI"
// e.g. "((S0 HJ S1) HJ S2)". Round-trips with ToString(); rejects malformed
// input and structurally invalid plans (duplicate streams, ...).
StatusOr<LogicalPlan> ParsePlan(const std::string& text);

// Uniformly random binary tree shape over the given streams (shuffled),
// every internal node of `join_kind`. Used by the fuzz suites to cover
// arbitrary bushy shapes, not just left-deep chains and balanced trees.
LogicalPlan RandomPlanTree(const std::vector<StreamId>& streams,
                           OpKind join_kind, Rng* rng);

}  // namespace jisc

#endif  // JISC_PLAN_PLAN_TEXT_H_
