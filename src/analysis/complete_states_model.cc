#include "analysis/complete_states_model.h"

#include <cmath>

#include "common/logging.h"

namespace jisc {

double HarmonicNumber(int n) {
  JISC_CHECK(n >= 1);
  double h = 0;
  for (int r = 1; r <= n; ++r) h += 1.0 / r;
  return h;
}

double AlphaN(int n) {
  JISC_CHECK(n >= 2);
  double hn = HarmonicNumber(n);
  return 1.0 / (n * hn - n);
}

double ExpectedCompleteStates(int n) {
  // E[C_n] = (2 n H_n - 3 n + 1) / (2 H_n - 2)  (Proposition 1),
  // equivalently n - (n - 1) / (2 (H_n - 1)).
  JISC_CHECK(n >= 2);
  double hn = HarmonicNumber(n);
  return (2.0 * n * hn - 3.0 * n + 1.0) / (2.0 * hn - 2.0);
}

double VarianceCompleteStates(int n) {
  // Var[C_n] = (2 n^2 H_n - 5 n^2 + 6 n - 2 H_n - 1) / (12 (H_n - 1)^2)
  // (Proposition 1). Derivation: E[(J-I)^2] = (n^2 - 1) / (6 (H_n - 1)),
  // E[J-I] = (n - 1) / (2 (H_n - 1)).
  JISC_CHECK(n >= 2);
  double hn = HarmonicNumber(n);
  double num = 2.0 * n * n * hn - 5.0 * n * n + 6.0 * n - 2.0 * hn - 1.0;
  double den = 12.0 * (hn - 1.0) * (hn - 1.0);
  return num / den;
}

double ExpectedCompleteStatesAsymptotic(int n) {
  JISC_CHECK(n >= 2);
  return n - n / (2.0 * std::log(n));
}

double VarianceCompleteStatesAsymptotic(int n) {
  JISC_CHECK(n >= 2);
  return static_cast<double>(n) * n / (6.0 * std::log(n));
}

MonteCarloResult SimulateCompleteStates(int n, int samples, double epsilon,
                                        Rng* rng) {
  JISC_CHECK(n >= 2);
  JISC_CHECK(samples >= 1);
  TriangularSwapDistribution dist(n);
  double sum = 0;
  double sum_sq = 0;
  int64_t tail = 0;
  for (int s = 0; s < samples; ++s) {
    auto [i, j] = dist.Sample(rng);
    double c = n - (j - i);  // Eq. (3)
    sum += c;
    sum_sq += c * c;
    if (c / n < 1.0 - epsilon) ++tail;
  }
  MonteCarloResult r;
  r.mean = sum / samples;
  r.variance = sum_sq / samples - r.mean * r.mean;
  r.tail_fraction = static_cast<double>(tail) / samples;
  return r;
}

}  // namespace jisc
