#ifndef JISC_ANALYSIS_COMPLETE_STATES_MODEL_H_
#define JISC_ANALYSIS_COMPLETE_STATES_MODEL_H_

#include <cstdint>

#include "common/random.h"

namespace jisc {

// The probabilistic model of Section 5.2: a left-deep plan with n join
// operators; a plan transition exchanges the streams at operator positions
// (I, J), I < J, drawn from the triangular distribution
// Prob(I=i, J=j) = alpha_n / (j - i). The number of complete states after
// the transition is C_n = n - (J - I).

// H_n, the n-th harmonic number.
double HarmonicNumber(int n);

// alpha_n = 1 / (n H_n - n), Eq. (2).
double AlphaN(int n);

// E[C_n] = (2 n H_n - 3 n + 1) / (2 H_n - 2), Proposition 1.
double ExpectedCompleteStates(int n);

// Var[C_n] = (2 n^2 H_n - 5 n^2 + 6 n - 2 H_n - 1) / (12 (H_n - 1)^2)
// ... wait: the paper's printed closed form. We evaluate the variance
// directly from the distribution (exactly) rather than trusting the
// typeset formula; see complete_states_model.cc.
double VarianceCompleteStates(int n);

// Asymptotic approximations of Proposition 2:
//   E[C_n] ~ n - n / (2 ln n),  Var[C_n] ~ n^2 / (6 ln n).
double ExpectedCompleteStatesAsymptotic(int n);
double VarianceCompleteStatesAsymptotic(int n);

// Monte-Carlo estimate of E and Var of C_n (and of Prob(C_n/n < 1 - eps),
// the concentration of Proposition 3).
struct MonteCarloResult {
  double mean = 0;
  double variance = 0;
  // Fraction of samples with C_n / n below 1 - epsilon.
  double tail_fraction = 0;
};
MonteCarloResult SimulateCompleteStates(int n, int samples, double epsilon,
                                        Rng* rng);

}  // namespace jisc

#endif  // JISC_ANALYSIS_COMPLETE_STATES_MODEL_H_
