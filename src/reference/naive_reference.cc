#include "reference/naive_reference.h"

#include <algorithm>

#include "common/logging.h"

namespace jisc {

NaiveJoinReference::NaiveJoinReference(int num_streams,
                                       const WindowSpec& windows,
                                       ThetaSpec theta)
    : num_streams_(num_streams),
      windows_(windows),
      theta_(theta),
      windows_data_(static_cast<size_t>(num_streams)) {
  JISC_CHECK(num_streams >= 1);
  JISC_CHECK(windows.num_streams() >= num_streams);
}

void NaiveJoinReference::CombosWith(const BaseTuple& pivot,
                                    std::vector<Tuple>* out) const {
  // Depth-first product over the other streams, pruning with theta.
  Tuple seed = Tuple::FromBase(pivot, /*birth=*/0, /*fresh=*/true);
  std::vector<Tuple> partial{seed};
  for (StreamId s = 0; s < num_streams_; ++s) {
    if (s == pivot.stream) continue;
    std::vector<Tuple> next;
    for (const Tuple& t : partial) {
      for (const BaseTuple& cand : windows_data_[s]) {
        Tuple c = Tuple::FromBase(cand, 0, true);
        if (theta_.Matches(t, c)) {
          next.push_back(Tuple::Concat(t, c, 0, true));
        }
      }
    }
    partial = std::move(next);
    if (partial.empty()) return;
  }
  for (Tuple& t : partial) out->push_back(std::move(t));
}

void NaiveJoinReference::Push(const BaseTuple& tuple,
                              std::vector<Tuple>* new_outputs,
                              std::vector<Tuple>* retractions) {
  auto& win = windows_data_[tuple.stream];
  // Expire first (the arriving tuple must not join displaced ones).
  auto expire_front = [&]() {
    BaseTuple oldest = win.front();
    win.pop_front();
    if (retractions != nullptr) CombosWith(oldest, retractions);
  };
  if (windows_.time_based()) {
    while (!win.empty() &&
           win.front().ts + windows_.SizeFor(tuple.stream) <= tuple.ts) {
      expire_front();
    }
  } else if (win.size() >= windows_.SizeFor(tuple.stream)) {
    expire_front();
  }
  win.push_back(tuple);
  if (new_outputs != nullptr) CombosWith(tuple, new_outputs);
}

std::vector<Tuple> NaiveJoinReference::CurrentResult() const {
  std::vector<Tuple> out;
  // Pivot on stream 0's tuples: every combination contains exactly one.
  if (num_streams_ == 1) {
    for (const BaseTuple& b : windows_data_[0]) {
      out.push_back(Tuple::FromBase(b, 0, true));
    }
    return out;
  }
  for (const BaseTuple& b : windows_data_[0]) CombosWith(b, &out);
  return out;
}

NaiveDifferenceReference::NaiveDifferenceReference(StreamId outer,
                                                   std::vector<StreamId> inners,
                                                   const WindowSpec& windows)
    : outer_(outer), inners_(std::move(inners)), windows_(windows) {
  int max_stream = outer_;
  for (StreamId s : inners_) max_stream = std::max<int>(max_stream, s);
  windows_data_.resize(static_cast<size_t>(max_stream) + 1);
}

void NaiveDifferenceReference::Push(const BaseTuple& tuple) {
  auto& win = windows_data_[tuple.stream];
  if (windows_.time_based()) {
    while (!win.empty() &&
           win.front().ts + windows_.SizeFor(tuple.stream) <= tuple.ts) {
      win.pop_front();
    }
  } else if (win.size() >= windows_.SizeFor(tuple.stream)) {
    win.pop_front();
  }
  win.push_back(tuple);
}

std::vector<BaseTuple> NaiveDifferenceReference::CurrentResult() const {
  std::vector<BaseTuple> out;
  for (const BaseTuple& a : windows_data_[outer_]) {
    bool suppressed = false;
    for (StreamId s : inners_) {
      for (const BaseTuple& b : windows_data_[s]) {
        if (b.key == a.key) {
          suppressed = true;
          break;
        }
      }
      if (suppressed) break;
    }
    if (!suppressed) out.push_back(a);
  }
  return out;
}

NaiveSemiJoinReference::NaiveSemiJoinReference(StreamId outer,
                                               std::vector<StreamId> inners,
                                               const WindowSpec& windows)
    : outer_(outer), inners_(std::move(inners)), windows_(windows) {
  int max_stream = outer_;
  for (StreamId s : inners_) max_stream = std::max<int>(max_stream, s);
  windows_data_.resize(static_cast<size_t>(max_stream) + 1);
}

void NaiveSemiJoinReference::Push(const BaseTuple& tuple) {
  auto& win = windows_data_[tuple.stream];
  if (windows_.time_based()) {
    while (!win.empty() &&
           win.front().ts + windows_.SizeFor(tuple.stream) <= tuple.ts) {
      win.pop_front();
    }
  } else if (win.size() >= windows_.SizeFor(tuple.stream)) {
    win.pop_front();
  }
  win.push_back(tuple);
}

std::vector<BaseTuple> NaiveSemiJoinReference::CurrentResult() const {
  std::vector<BaseTuple> out;
  for (const BaseTuple& a : windows_data_[outer_]) {
    bool witnessed_everywhere = true;
    for (StreamId s : inners_) {
      bool found = false;
      for (const BaseTuple& b : windows_data_[s]) {
        if (b.key == a.key) {
          found = true;
          break;
        }
      }
      if (!found) {
        witnessed_everywhere = false;
        break;
      }
    }
    if (witnessed_everywhere) out.push_back(a);
  }
  return out;
}

}  // namespace jisc
