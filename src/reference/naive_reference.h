#ifndef JISC_REFERENCE_NAIVE_REFERENCE_H_
#define JISC_REFERENCE_NAIVE_REFERENCE_H_

#include <deque>
#include <vector>

#include "exec/theta.h"
#include "stream/window.h"
#include "types/tuple.h"

namespace jisc {

// Ground-truth executor for windowed multiway joins: maintains the raw
// per-stream windows and recomputes result deltas by brute force. Used by
// the test suite to check the Completeness / Closedness / Duplicate-freedom
// theorems (paper appendix) for every strategy under arbitrary transition
// schedules: an engine's cumulative output and retraction multisets must
// match the reference exactly, transitions or not.
class NaiveJoinReference {
 public:
  NaiveJoinReference(int num_streams, const WindowSpec& windows,
                     ThetaSpec theta = ThetaSpec());

  // Admits one tuple; appends the result combinations this arrival creates
  // to `new_outputs` and the combinations its window slide destroys to
  // `retractions` (either may be null).
  void Push(const BaseTuple& tuple, std::vector<Tuple>* new_outputs,
            std::vector<Tuple>* retractions);

  // All currently-live result combinations.
  std::vector<Tuple> CurrentResult() const;

  const std::deque<BaseTuple>& window(StreamId stream) const {
    return windows_data_[stream];
  }

 private:
  // All combinations over every stream that include `pivot` (from stream
  // pivot.stream) and satisfy theta all-pairs.
  void CombosWith(const BaseTuple& pivot, std::vector<Tuple>* out) const;

  int num_streams_;
  WindowSpec windows_;
  ThetaSpec theta_;
  std::vector<std::deque<BaseTuple>> windows_data_;
};

// Ground truth for a set-difference chain outer - (i1 u i2 u ...): the live
// outer tuples with no live key match in any inner window.
class NaiveDifferenceReference {
 public:
  NaiveDifferenceReference(StreamId outer, std::vector<StreamId> inners,
                           const WindowSpec& windows);

  void Push(const BaseTuple& tuple);

  // Current survivors, ordered by sequence number.
  std::vector<BaseTuple> CurrentResult() const;

 private:
  StreamId outer_;
  std::vector<StreamId> inners_;
  WindowSpec windows_;
  std::vector<std::deque<BaseTuple>> windows_data_;
};

// Ground truth for a semi-join chain: live outer tuples with a live key
// match in EVERY inner window.
class NaiveSemiJoinReference {
 public:
  NaiveSemiJoinReference(StreamId outer, std::vector<StreamId> inners,
                         const WindowSpec& windows);

  void Push(const BaseTuple& tuple);

  std::vector<BaseTuple> CurrentResult() const;

 private:
  StreamId outer_;
  std::vector<StreamId> inners_;
  WindowSpec windows_;
  std::vector<std::deque<BaseTuple>> windows_data_;
};

}  // namespace jisc

#endif  // JISC_REFERENCE_NAIVE_REFERENCE_H_
