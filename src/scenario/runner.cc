#include "scenario/runner.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>

#include "common/hash.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/checkpoint.h"
#include "core/engine.h"
#include "exec/ingress_guard.h"
#include "exec/parallel_executor.h"
#include "obs/observability.h"
#include "obs/telemetry.h"
#include "plan/transitions.h"

namespace jisc {
namespace scenario {
namespace {

// Scaled schedule offset: 0 stays 0 (an event before the first measured
// tuple), anything else is clamped into the measured range.
uint64_t ScaleOffset(uint64_t at, double scale, uint64_t total) {
  if (at == 0) return 0;
  return std::min(ScaleCount(at, scale), total);
}

std::vector<StreamId> InitialOrder(int streams) {
  std::vector<StreamId> order;
  order.reserve(static_cast<size_t>(streams));
  for (int i = 0; i < streams; ++i) {
    order.push_back(static_cast<StreamId>(i));
  }
  return order;
}

// The per-event target join order. random_swap draws from an Rng seeded by
// (run seed, event offset): the swap is deterministic for a given spec yet
// differs across events.
std::vector<StreamId> TargetOrder(const EventSpec& event,
                                  const std::vector<StreamId>& initial,
                                  const std::vector<StreamId>& current,
                                  uint64_t seed) {
  switch (event.transition) {
    case TransitionKind::kInitial:
      return initial;
    case TransitionKind::kBestCase:
      return BestCaseOrder(initial);
    case TransitionKind::kWorstCase:
      return WorstCaseOrder(initial);
    case TransitionKind::kRandomSwap: {
      Rng rng(HashCombine(seed, event.at));
      return RandomTriangularSwap(current, &rng);
    }
  }
  return current;
}

// Per-name (accumulated + final - warmup): every name appears in all three
// snapshots in the same declaration order, and counters only grow, so the
// subtraction never wraps.
std::vector<std::pair<std::string, uint64_t>> CounterDelta(
    const Metrics& accumulated, const Metrics& final_metrics,
    const Metrics& warmup) {
  auto acc = accumulated.NamedCounters();
  auto fin = final_metrics.NamedCounters();
  auto warm = warmup.NamedCounters();
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(fin.size());
  for (size_t i = 0; i < fin.size(); ++i) {
    out.emplace_back(fin[i].first,
                     acc[i].second + fin[i].second - warm[i].second);
  }
  return out;
}

// Seeded bounded-shuffle delivery buffer (fault.reorder_window): arrivals
// collect into tumbling batches of `window` tuples; each full batch is
// Fisher-Yates-shuffled and delivered whole. Displacement is therefore
// strictly bounded — a tuple never moves more than window-1 positions, and
// batches do not interleave — which is what lets an IngressGuard with
// reorder_window >= the fault window restore order without ever
// gap-skipping. The Rng is derived from the run seed, so the same spec at
// the same seed always produces the same reordering.
class ReorderInjector {
 public:
  ReorderInjector(size_t window, uint64_t seed) : window_(window), rng_(seed) {}

  // True when the injector is a pass-through (fault off).
  bool disabled() const { return window_ == 0; }

  template <typename Deliver>
  void Feed(const BaseTuple& tuple, Deliver&& deliver) {
    if (window_ == 0) {
      deliver(tuple);
      return;
    }
    buf_.push_back(tuple);
    if (buf_.size() >= window_) ShuffleAndDeliver(deliver);
  }

  template <typename Deliver>
  void Flush(Deliver&& deliver) {
    if (!buf_.empty()) ShuffleAndDeliver(deliver);
  }

 private:
  template <typename Deliver>
  void ShuffleAndDeliver(Deliver&& deliver) {
    for (size_t i = buf_.size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(rng_.UniformU64(i + 1));
      std::swap(buf_[i], buf_[j]);
    }
    for (const BaseTuple& t : buf_) deliver(t);
    buf_.clear();
  }

  size_t window_;
  Rng rng_;
  std::vector<BaseTuple> buf_;
};

}  // namespace

uint64_t ScaleCount(uint64_t paper_scale_count, double scale) {
  auto scaled = static_cast<uint64_t>(
      std::llround(static_cast<double>(paper_scale_count) * scale));
  return scaled == 0 ? 1 : scaled;
}

uint64_t ScaleWindow(uint64_t paper_scale_window, double scale) {
  // Same floor as bench_common's ScaledWindow: tiny windows distort the
  // selectivity regime every scenario is designed around.
  uint64_t scaled = ScaleCount(paper_scale_window, scale);
  return scaled < 50 ? 50 : scaled;
}

StatusOr<RunResult> RunScenario(const Spec& spec, const RunOptions& options) {
  // Merge CLI overrides into an effective spec and re-validate: an
  // override can invalidate a valid spec (e.g. --strategy cacq on a spec
  // that schedules a checkpoint).
  Spec eff = spec;
  if (!options.strategy.empty()) eff.strategy = options.strategy;
  if (options.parallelism > 0) eff.parallelism = options.parallelism;
  if (options.seed.has_value()) eff.seed = *options.seed;
  Status valid = ValidateSpec(eff);
  if (!valid.ok()) return valid;
  if (options.scale <= 0) {
    return Status::InvalidArgument("scale must be > 0");
  }
  StatusOr<ProcessorKind> kind_or = StrategyFromName(eff.strategy);
  if (!kind_or.ok()) return kind_or.status();
  ProcessorKind kind = kind_or.value();
  double scale = options.scale;

  // Scaled windows. Time mode scales the durations exactly like counts —
  // at ts_stride 1 a duration IS an arrival count, so the scaled regimes
  // match the count-window scenarios'.
  int streams = eff.streams;
  bool time_windows = eff.window_mode == "time";
  WindowSpec windows;
  uint64_t window0 = 0;
  if (eff.windows.empty()) {
    window0 = ScaleWindow(eff.window, scale);
    windows = time_windows ? WindowSpec::UniformTime(streams, window0)
                           : WindowSpec::Uniform(streams, window0);
  } else {
    std::vector<uint64_t> sizes;
    sizes.reserve(eff.windows.size());
    for (uint64_t w : eff.windows) sizes.push_back(ScaleWindow(w, scale));
    window0 = sizes[0];
    windows = time_windows ? WindowSpec::PerStreamTime(std::move(sizes))
                           : WindowSpec::PerStream(std::move(sizes));
  }

  // Arrival source. key_domain "auto" (0) tracks the scaled first-stream
  // window — unit selectivity per probe, the figure benches' regime.
  SourceConfig cfg;
  cfg.num_streams = streams;
  cfg.key_domain = eff.arrival.key_domain == 0
                       ? window0
                       : ScaleCount(eff.arrival.key_domain, scale);
  cfg.zipf_s = eff.arrival.zipf_s;
  cfg.key_pattern = eff.arrival.key_pattern;
  cfg.fanout = eff.arrival.fanout;
  if (eff.arrival.key_pattern == KeyPattern::kBottomFanout) {
    cfg.fanout_streams =
        eff.arrival.fanout_streams.empty()
            ? std::vector<StreamId>{0, static_cast<StreamId>(streams - 1)}
            : eff.arrival.fanout_streams;
  }
  cfg.interleave = eff.arrival.interleave;
  // The stride is an event-time resolution, not a workload magnitude: it
  // stays unscaled (window durations scale instead).
  cfg.ts_stride = eff.arrival.ts_stride;
  cfg.seed = eff.seed;
  SyntheticSource src(cfg);
  uint64_t base_domain = cfg.key_domain;

  Observability::Options obs_opts;
  obs_opts.record_service_times = eff.service_times;
  bool telemetry_on =
      eff.telemetry.enabled || options.telemetry_period_ms > 0;
  obs_opts.telemetry = telemetry_on;
  Observability obs(obs_opts);

  // Straggler fault injection rides the ParallelExecutor options; only the
  // engine kinds at parallelism > 1 reach it (ValidateSpec enforces that).
  ParallelExecutor::Options parallel_options;
  if (eff.fault.straggler_shard >= 0) {
    parallel_options.straggler_shard = eff.fault.straggler_shard;
    parallel_options.straggler_stall_ns = eff.fault.stall_ms * 1000000ull;
    parallel_options.straggler_stall_every = eff.fault.stall_every;
  }

  // Engine-side ingress resilience ("ingress" key). The guard's buffer
  // bounds are real bounds, not workload magnitudes: they stay unscaled.
  IngressGuard::Options ingress;
  if (eff.ingress.enabled) {
    ingress.enabled = true;
    ingress.dedup_window = eff.ingress.dedup_window;
    ingress.reorder_window = eff.ingress.reorder_window;
    ingress.overflow =
        eff.ingress.overflow == "drop_late"
            ? IngressGuard::OverflowPolicy::kDropLate
            : (eff.ingress.overflow == "fail"
                   ? IngressGuard::OverflowPolicy::kFail
                   : IngressGuard::OverflowPolicy::kAdmitLate);
  }

  // Migration pacing ("migration" key); all_at_once is the zero value.
  FluidOptions fluid = ToFluidOptions(eff.migration);

  LogicalPlan initial_plan =
      LogicalPlan::LeftDeep(InitialOrder(streams), OpKind::kHashJoin);
  BuiltProcessor built =
      MakeProcessor(kind, initial_plan, windows, ThetaSpec(),
                    eff.parallelism, &obs, parallel_options, ingress, fluid);

  // The sampler starts after the processor is built (tracks registered) and
  // covers warmup + measured stage; Stop() below takes the final snapshot.
  TelemetrySampler::Options sampler_opts;
  sampler_opts.period_ms = options.telemetry_period_ms > 0
                               ? options.telemetry_period_ms
                               : eff.telemetry.period_ms;
  sampler_opts.watchdog_samples = eff.telemetry.watchdog_samples;
  sampler_opts.anomaly_threshold = eff.ingress.anomaly_threshold;
  std::unique_ptr<TelemetrySampler> sampler;
  if (telemetry_on) {
    sampler = std::make_unique<TelemetrySampler>(&obs, sampler_opts);
  }

  RunResult result;
  result.scenario = eff.name;
  result.strategy = eff.strategy;
  result.seed = eff.seed;
  result.scale = scale;
  result.parallelism = eff.parallelism;
  result.window = window0;
  result.thresholds = eff.thresholds;

  // Warmup: fill the windows outside the measured stage.
  uint64_t warmup =
      eff.warmup_tuples.has_value()
          ? ScaleCount(*eff.warmup_tuples, scale)
          : static_cast<uint64_t>(std::llround(
                eff.warmup_windows * static_cast<double>(streams) *
                static_cast<double>(window0)));
  if (eff.warmup_tuples.has_value() && *eff.warmup_tuples == 0) warmup = 0;
  result.warmup_tuples = warmup;
  {
    WallTimer timer;
    for (uint64_t i = 0; i < warmup; ++i) built.processor->Push(src.Next());
    // metrics() quiesces the sharded path, so the warmup snapshot (and the
    // timer) cover completed work, not queued work.
    result.warmup_seconds = timer.ElapsedSeconds();
  }
  Metrics warmup_snapshot = built.processor->metrics();

  // Measured stage.
  uint64_t total = 0;
  for (const PhaseSpec& p : eff.phases) total += ScaleCount(p.tuples, scale);
  result.measured_tuples = total;

  // Schedule, scaled and stably ordered by offset.
  struct ScaledEvent {
    uint64_t at;
    const EventSpec* event;
  };
  std::vector<ScaledEvent> schedule;
  schedule.reserve(eff.schedule.size());
  for (const EventSpec& e : eff.schedule) {
    schedule.push_back({ScaleOffset(e.at, scale, total), &e});
  }
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const ScaledEvent& a, const ScaledEvent& b) {
                     return a.at < b.at;
                   });

  std::vector<StreamId> initial_order = InitialOrder(streams);
  std::vector<StreamId> current_order = initial_order;
  // Replaced engines' counters (checkpoint/restore zeroes Metrics).
  Metrics accumulated;

  auto fire_event = [&](const EventSpec& event) -> Status {
    if (event.action == EventSpec::Action::kTransition) {
      std::vector<StreamId> target =
          TargetOrder(event, initial_order, current_order, eff.seed);
      if (target == current_order) return Status::Ok();
      Status s = built.processor->RequestTransition(
          LogicalPlan::LeftDeep(target, OpKind::kHashJoin));
      if (!s.ok()) return s;
      current_order = std::move(target);
      ++result.transitions;
      return Status::Ok();
    }
    // Checkpoint/restore (S16): serialize the engine, rebuild it from the
    // bytes, and continue the run on the restored engine. The restored
    // engine's Metrics restart from zero, so bank the old engine's
    // counters first. An ingress-guarded engine checkpoints through the
    // guarded wrapper (guard state rides along in the same bytes).
    Engine::Options eopts;
    eopts.obs = &obs;
    eopts.track_freshness = kind != ProcessorKind::kStaticPipeline;
    // A mid-fluid checkpoint restores into the same fluid configuration,
    // so the restored engine resumes the drain where the bytes left it.
    eopts.fluid = fluid;
    if (auto* guarded =
            dynamic_cast<GuardedProcessor*>(built.processor.get())) {
      StatusOr<std::string> bytes = CheckpointGuardedEngine(*guarded);
      if (!bytes.ok()) return bytes.status();
      accumulated += guarded->metrics();
      StatusOr<std::unique_ptr<GuardedProcessor>> restored =
          RestoreGuardedEngine(bytes.value(), built.sink.get(),
                               EngineStrategyFactory(kind, fluid)(), eopts);
      if (!restored.ok()) return restored.status();
      built.processor = std::move(restored).value();
      ++result.checkpoint_restores;
      return Status::Ok();
    }
    auto* engine = dynamic_cast<Engine*>(built.processor.get());
    if (engine == nullptr) {
      return Status::FailedPrecondition(
          "checkpoint_restore: processor is not a single-threaded engine");
    }
    StatusOr<std::string> bytes = CheckpointEngine(*engine);
    if (!bytes.ok()) return bytes.status();
    accumulated += engine->metrics();
    StatusOr<std::unique_ptr<Engine>> restored =
        RestoreEngine(bytes.value(), built.sink.get(),
                      EngineStrategyFactory(kind, fluid)(), eopts);
    if (!restored.ok()) return restored.status();
    built.processor = std::move(restored).value();
    ++result.checkpoint_restores;
    return Status::Ok();
  };

  // Ingress fault pipeline: drop decisions happen first (a dropped arrival
  // is consumed and never seen again), surviving tuples pass through the
  // seeded reorder buffer, and duplication re-feeds the original tuple so
  // the duplicate is reordered independently of its twin. `deliver` counts
  // an arrival as reordered when it lands below the highest seq already
  // delivered — a deterministic function of the seed.
  ReorderInjector reorder(eff.fault.reorder_window,
                          HashCombine(eff.seed, 0x7265726f72646572ULL));
  Seq max_delivered = 0;
  bool any_delivered = false;
  auto deliver = [&](const BaseTuple& t) {
    if (any_delivered && t.seq < max_delivered) ++result.reordered_arrivals;
    max_delivered = std::max(max_delivered, t.seq);
    any_delivered = true;
    built.processor->Push(t);
  };
  auto emit = [&](const BaseTuple& t) { reorder.Feed(t, deliver); };
  // Drains the harness-side fault buffers so schedule events (and the end
  // of the run) observe every arrival issued before them — the attempted-
  // arrival semantics of event offsets extend to faulted runs.
  auto flush_faults = [&] {
    reorder.Flush(deliver);
    if (auto* guarded =
            dynamic_cast<GuardedProcessor*>(built.processor.get())) {
      guarded->FlushPending();
    }
  };
  uint64_t burst_at = eff.fault.drop_burst > 0
                          ? ScaleOffset(eff.fault.drop_burst_at, scale, total)
                          : 0;
  uint64_t burst_len =
      eff.fault.drop_burst > 0 ? ScaleCount(eff.fault.drop_burst, scale) : 0;

  size_t next_event = 0;
  uint64_t pushed = 0;
  WallTimer timer;
  for (const PhaseSpec& phase : eff.phases) {
    // Phases are self-contained: entering one sets the forced stream and
    // the key domain it declares (or restores the configured defaults).
    src.ForceStream(phase.force_stream);
    src.SetKeyDomain(phase.key_domain.has_value()
                         ? ScaleCount(*phase.key_domain, scale)
                         : base_domain);
    uint64_t phase_tuples = ScaleCount(phase.tuples, scale);
    for (uint64_t i = 0; i < phase_tuples; ++i, ++pushed) {
      if (next_event < schedule.size() && schedule[next_event].at == pushed) {
        flush_faults();
        do {
          Status s = fire_event(*schedule[next_event].event);
          if (!s.ok()) return s;
          ++next_event;
        } while (next_event < schedule.size() &&
                 schedule[next_event].at == pushed);
      }
      // Deterministic dropped-arrival faults: every drop_every-th measured
      // arrival, and the drop_burst consecutive arrivals starting at
      // drop_burst_at, are consumed from the source but never pushed.
      // Schedule offsets keep counting attempted arrivals (`pushed`
      // advances), so a faulted run fires its events at the same offsets
      // as a clean one.
      bool drop_periodic = eff.fault.drop_every != 0 &&
                           (pushed + 1) % eff.fault.drop_every == 0;
      bool drop_burst = burst_len > 0 && pushed >= burst_at &&
                        pushed < burst_at + burst_len;
      if (drop_periodic || drop_burst) {
        (void)src.Next();
        ++result.dropped_arrivals;
        continue;
      }
      BaseTuple t = src.Next();
      emit(t);
      if (eff.fault.duplicate_every != 0 &&
          (pushed + 1) % eff.fault.duplicate_every == 0) {
        ++result.duplicated_arrivals;
        emit(t);
      }
    }
  }
  flush_faults();
  // Events scheduled at (or clamped to) the end of the run.
  while (next_event < schedule.size()) {
    Status s = fire_event(*schedule[next_event].event);
    if (!s.ok()) return s;
    ++next_event;
  }
  // Quiescing metrics read doubles as the sharded path's barrier; take it
  // inside the timed region so measured_seconds covers completed work.
  Metrics final_metrics = built.processor->metrics();
  result.measured_seconds = timer.ElapsedSeconds();
  result.throughput_tps =
      result.measured_seconds > 0
          ? static_cast<double>(total) / result.measured_seconds
          : 0;

  result.counters = CounterDelta(accumulated, final_metrics, warmup_snapshot);

  if (auto* guarded =
          dynamic_cast<GuardedProcessor*>(built.processor.get())) {
    const IngressGuard::Stats& stats = guarded->guard().stats();
    result.duplicates_suppressed = stats.duplicates_suppressed;
    result.reorder_restored = stats.reorder_restored;
    result.late_admitted = stats.late_admitted;
    result.late_dropped = stats.late_dropped;
  }

  result.histograms.emplace_back("output_delay_ns",
                                 SummarizeHistogram(obs.output_delay_ns));
  result.histograms.emplace_back("completion_ns",
                                 SummarizeHistogram(obs.completion_ns));

  // Post-run latency assertion ("expect" key). Wall-clock latency is noisy
  // across machines, so the spec's ceiling is floored at 1000us: the
  // assertion catches order-of-magnitude regressions (an all-at-once stall
  // where the spec demands fluid pacing), not scheduler jitter.
  if (eff.expect.output_delay_p99_us.has_value()) {
    constexpr uint64_t kExpectFloorUs = 1000;
    uint64_t ceiling_us =
        std::max(*eff.expect.output_delay_p99_us, kExpectFloorUs);
    uint64_t p99_us = result.histograms.front().second.p99 / 1000;
    if (p99_us > ceiling_us) {
      return Status::FailedPrecondition(
          "expect: output delay p99 " + std::to_string(p99_us) +
          "us exceeds the asserted ceiling " + std::to_string(ceiling_us) +
          "us (spec expect.output_delay_p99_us=" +
          std::to_string(*eff.expect.output_delay_p99_us) + ")");
    }
  }
  if (eff.service_times) {
    result.histograms.emplace_back("probe_ns",
                                   SummarizeHistogram(obs.probe_ns));
    result.histograms.emplace_back("insert_ns",
                                   SummarizeHistogram(obs.insert_ns));
  }

  if (options.capture_trace) {
    result.trace = obs.trace.Snapshot();
    result.trace_dropped = obs.trace.dropped();
  }

  if (sampler != nullptr) {
    sampler->Stop();
    result.telemetry.enabled = true;
    result.telemetry.period_ms = sampler_opts.period_ms;
    result.telemetry.watchdog_samples = sampler_opts.watchdog_samples;
    result.telemetry.samples = sampler->samples_taken();
    result.telemetry.dropped_snapshots = sampler->dropped_snapshots();
    result.telemetry.series = sampler->Snapshots();
    result.telemetry.straggler_flags = sampler->StragglerFlags();
    result.telemetry.anomaly_episodes = sampler->anomaly_episodes();
    // Watchdog expectations: lock in the verdict from the spec itself —
    // symmetric specs must stay flag-free, fault-injection specs must flag
    // exactly the injected shard.
    const std::vector<uint64_t>& flags = result.telemetry.straggler_flags;
    if (eff.telemetry.expect_no_stragglers) {
      for (size_t t = 0; t < flags.size(); ++t) {
        if (flags[t] != 0) {
          return Status::FailedPrecondition(
              "telemetry: watchdog flagged track " + std::to_string(t) +
              " as a straggler, but the spec expects none");
        }
      }
    }
    if (eff.telemetry.expect_straggler_shard.has_value()) {
      size_t want =
          static_cast<size_t>(*eff.telemetry.expect_straggler_shard) + 1;
      if (want >= flags.size() || flags[want] == 0) {
        return Status::FailedPrecondition(
            "telemetry: watchdog did not flag shard " +
            std::to_string(*eff.telemetry.expect_straggler_shard) +
            " despite the injected stall");
      }
      for (size_t t = 0; t < flags.size(); ++t) {
        if (t != want && flags[t] != 0) {
          return Status::FailedPrecondition(
              "telemetry: watchdog flagged track " + std::to_string(t) +
              " in addition to the injected shard");
        }
      }
    }
  }
  return result;
}

}  // namespace scenario
}  // namespace jisc
