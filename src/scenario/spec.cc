#include "scenario/spec.h"

#include <fstream>
#include <set>
#include <sstream>

namespace jisc {
namespace scenario {
namespace {

// Strict object reader: every Get* marks the key as consumed, and
// CheckNoUnknownKeys reports anything left over. Each helper validates the
// JSON type and accumulates the first error (parsing continues so the
// reader stays linear, but the spec is rejected).
class ObjectReader {
 public:
  ObjectReader(const Json& json, std::string context)
      : json_(json), context_(std::move(context)) {
    if (!json.is_object()) {
      Fail("expected an object");
    }
  }

  bool GetString(const char* key, std::string* out) {
    const Json* v = Take(key);
    if (v == nullptr) return false;
    if (!v->is_string()) return Fail(std::string(key) + " must be a string");
    *out = v->AsString();
    return true;
  }

  bool GetBool(const char* key, bool* out) {
    const Json* v = Take(key);
    if (v == nullptr) return false;
    if (!v->is_bool()) return Fail(std::string(key) + " must be a bool");
    *out = v->AsBool();
    return true;
  }

  bool GetU64(const char* key, uint64_t* out) {
    const Json* v = Take(key);
    if (v == nullptr) return false;
    if (!v->is_int() || v->AsInt() < 0) {
      return Fail(std::string(key) + " must be a non-negative integer");
    }
    *out = static_cast<uint64_t>(v->AsInt());
    return true;
  }

  bool GetInt(const char* key, int* out) {
    const Json* v = Take(key);
    if (v == nullptr) return false;
    if (!v->is_int()) return Fail(std::string(key) + " must be an integer");
    *out = static_cast<int>(v->AsInt());
    return true;
  }

  bool GetDouble(const char* key, double* out) {
    const Json* v = Take(key);
    if (v == nullptr) return false;
    if (!v->is_number()) return Fail(std::string(key) + " must be a number");
    *out = v->AsDouble();
    return true;
  }

  bool GetU64List(const char* key, std::vector<uint64_t>* out) {
    const Json* v = Take(key);
    if (v == nullptr) return false;
    if (!v->is_array()) return Fail(std::string(key) + " must be an array");
    out->clear();
    for (const Json& item : v->items()) {
      if (!item.is_int() || item.AsInt() < 0) {
        return Fail(std::string(key) +
                    " must contain non-negative integers");
      }
      out->push_back(static_cast<uint64_t>(item.AsInt()));
    }
    return true;
  }

  // Raw access for nested objects/arrays.
  const Json* Take(const char* key) {
    consumed_.insert(key);
    return json_.Find(key);
  }

  bool Fail(const std::string& msg) {
    if (error_.ok()) {
      error_ = Status::InvalidArgument(context_ + ": " + msg);
    }
    return false;
  }

  Status Finish() {
    if (!error_.ok()) return error_;
    if (!json_.is_object()) return error_;
    for (const auto& [key, value] : json_.members()) {
      if (consumed_.count(key) == 0) {
        return Status::InvalidArgument(context_ + ": unknown key '" + key +
                                       "'");
      }
    }
    return Status::Ok();
  }

 private:
  const Json& json_;
  std::string context_;
  std::set<std::string> consumed_;
  Status error_;
};

const char* InterleaveName(Interleave i) {
  return i == Interleave::kRoundRobin ? "round_robin" : "uniform_random";
}

bool InterleaveFromName(const std::string& name, Interleave* out) {
  if (name == "round_robin") {
    *out = Interleave::kRoundRobin;
    return true;
  }
  if (name == "uniform_random") {
    *out = Interleave::kUniformRandom;
    return true;
  }
  return false;
}

const char* KeyPatternName(KeyPattern p) {
  switch (p) {
    case KeyPattern::kRandom:
      return "random";
    case KeyPattern::kSequential:
      return "sequential";
    case KeyPattern::kBottomFanout:
      return "bottom_fanout";
  }
  return "?";
}

bool KeyPatternFromName(const std::string& name, KeyPattern* out) {
  if (name == "random") {
    *out = KeyPattern::kRandom;
    return true;
  }
  if (name == "sequential") {
    *out = KeyPattern::kSequential;
    return true;
  }
  if (name == "bottom_fanout") {
    *out = KeyPattern::kBottomFanout;
    return true;
  }
  return false;
}

const char* TransitionKindName(TransitionKind k) {
  switch (k) {
    case TransitionKind::kInitial:
      return "initial";
    case TransitionKind::kBestCase:
      return "best_case";
    case TransitionKind::kWorstCase:
      return "worst_case";
    case TransitionKind::kRandomSwap:
      return "random_swap";
  }
  return "?";
}

bool TransitionKindFromName(const std::string& name, TransitionKind* out) {
  if (name == "initial") {
    *out = TransitionKind::kInitial;
    return true;
  }
  if (name == "best_case") {
    *out = TransitionKind::kBestCase;
    return true;
  }
  if (name == "worst_case") {
    *out = TransitionKind::kWorstCase;
    return true;
  }
  if (name == "random_swap") {
    *out = TransitionKind::kRandomSwap;
    return true;
  }
  return false;
}

Status ParseArrival(const Json& json, ArrivalSpec* out) {
  ObjectReader r(json, "arrival");
  std::string s;
  if (r.GetString("interleave", &s) && !InterleaveFromName(s, &out->interleave)) {
    r.Fail("interleave must be round_robin or uniform_random");
  }
  if (r.GetString("key_pattern", &s) &&
      !KeyPatternFromName(s, &out->key_pattern)) {
    r.Fail("key_pattern must be random, sequential, or bottom_fanout");
  }
  r.GetU64("key_domain", &out->key_domain);
  r.GetDouble("zipf_s", &out->zipf_s);
  r.GetU64("fanout", &out->fanout);
  std::vector<uint64_t> streams;
  if (r.GetU64List("fanout_streams", &streams)) {
    out->fanout_streams.clear();
    for (uint64_t v : streams) {
      out->fanout_streams.push_back(static_cast<StreamId>(v));
    }
  }
  r.GetU64("ts_stride", &out->ts_stride);
  return r.Finish();
}

Status ParsePhase(const Json& json, int index, PhaseSpec* out) {
  std::ostringstream ctx;
  ctx << "phases[" << index << "]";
  ObjectReader r(json, ctx.str());
  r.GetString("label", &out->label);
  r.GetU64("tuples", &out->tuples);
  uint64_t v = 0;
  if (r.GetU64("force_stream", &v)) out->force_stream = static_cast<StreamId>(v);
  if (r.GetU64("key_domain", &v)) out->key_domain = v;
  return r.Finish();
}

Status ParseEvent(const Json& json, int index, EventSpec* out) {
  std::ostringstream ctx;
  ctx << "schedule[" << index << "]";
  ObjectReader r(json, ctx.str());
  r.GetU64("at", &out->at);
  std::string t;
  bool has_transition = r.GetString("transition", &t);
  bool checkpoint = false;
  bool has_checkpoint = r.GetBool("checkpoint_restore", &checkpoint);
  if (has_transition == (has_checkpoint && checkpoint)) {
    r.Fail("exactly one of 'transition' or 'checkpoint_restore': true "
           "is required");
  } else if (has_transition) {
    out->action = EventSpec::Action::kTransition;
    if (!TransitionKindFromName(t, &out->transition)) {
      r.Fail("transition must be initial, best_case, worst_case, or "
             "random_swap");
    }
  } else {
    out->action = EventSpec::Action::kCheckpointRestore;
  }
  return r.Finish();
}

Status ParseTelemetry(const Json& json, TelemetrySpec* out) {
  ObjectReader r(json, "telemetry");
  r.GetBool("enabled", &out->enabled);
  r.GetU64("period_ms", &out->period_ms);
  r.GetInt("watchdog_samples", &out->watchdog_samples);
  r.GetBool("expect_no_stragglers", &out->expect_no_stragglers);
  int shard = 0;
  if (r.GetInt("expect_straggler_shard", &shard)) {
    out->expect_straggler_shard = shard;
  }
  return r.Finish();
}

Status ParseFault(const Json& json, FaultSpec* out) {
  ObjectReader r(json, "fault");
  r.GetInt("straggler_shard", &out->straggler_shard);
  r.GetU64("stall_ms", &out->stall_ms);
  r.GetU64("stall_every", &out->stall_every);
  r.GetU64("drop_every", &out->drop_every);
  r.GetU64("duplicate_every", &out->duplicate_every);
  r.GetU64("reorder_window", &out->reorder_window);
  r.GetU64("drop_burst", &out->drop_burst);
  r.GetU64("drop_burst_at", &out->drop_burst_at);
  return r.Finish();
}

Status ParseIngress(const Json& json, IngressSpec* out) {
  ObjectReader r(json, "ingress");
  r.GetBool("enabled", &out->enabled);
  r.GetU64("dedup_window", &out->dedup_window);
  r.GetU64("reorder_window", &out->reorder_window);
  r.GetString("overflow", &out->overflow);
  r.GetU64("anomaly_threshold", &out->anomaly_threshold);
  return r.Finish();
}

Status ParseMigration(const Json& json, MigrationSpec* out) {
  ObjectReader r(json, "migration");
  r.GetString("mode", &out->mode);
  r.GetU64("batch_keys", &out->batch_keys);
  r.GetU64("delay_budget_us", &out->delay_budget_us);
  return r.Finish();
}

Status ParseExpect(const Json& json, ExpectSpec* out) {
  ObjectReader r(json, "expect");
  uint64_t v = 0;
  if (r.GetU64("output_delay_p99_us", &v)) out->output_delay_p99_us = v;
  return r.Finish();
}

Status ParseThresholds(const Json& json, std::map<std::string, double>* out) {
  if (!json.is_object()) {
    return Status::InvalidArgument("thresholds: expected an object");
  }
  for (const auto& [key, value] : json.members()) {
    if (!value.is_number() || value.AsDouble() < 0) {
      return Status::InvalidArgument("thresholds." + key +
                                     " must be a non-negative number");
    }
    (*out)[key] = value.AsDouble();
  }
  return Status::Ok();
}

}  // namespace

StatusOr<ProcessorKind> StrategyFromName(const std::string& name) {
  static constexpr ProcessorKind kAll[] = {
      ProcessorKind::kJisc,          ProcessorKind::kJiscFirstReceipt,
      ProcessorKind::kMovingState,   ProcessorKind::kParallelTrack,
      ProcessorKind::kHybridTrack,   ProcessorKind::kCacq,
      ProcessorKind::kMJoin,         ProcessorKind::kStairsEager,
      ProcessorKind::kStairsJisc,    ProcessorKind::kStaticPipeline,
  };
  for (ProcessorKind kind : kAll) {
    if (name == ProcessorKindName(kind)) return kind;
  }
  std::ostringstream os;
  os << "unknown strategy '" << name << "' (expected one of:";
  for (ProcessorKind kind : kAll) os << ' ' << ProcessorKindName(kind);
  os << ')';
  return Status::InvalidArgument(os.str());
}

StatusOr<Spec> ParseSpec(const Json& json) {
  Spec spec;
  ObjectReader r(json, "spec");
  r.GetString("name", &spec.name);
  r.GetString("description", &spec.description);
  r.GetU64("seed", &spec.seed);
  r.GetInt("streams", &spec.streams);
  r.GetU64("window", &spec.window);
  r.GetU64List("windows", &spec.windows);
  r.GetString("window_mode", &spec.window_mode);
  if (const Json* arrival = r.Take("arrival")) {
    Status s = ParseArrival(*arrival, &spec.arrival);
    if (!s.ok()) return s;
  }
  r.GetDouble("warmup_windows", &spec.warmup_windows);
  uint64_t wt = 0;
  if (r.GetU64("warmup_tuples", &wt)) spec.warmup_tuples = wt;
  if (const Json* phases = r.Take("phases")) {
    if (!phases->is_array()) {
      return Status::InvalidArgument("phases must be an array");
    }
    for (size_t i = 0; i < phases->items().size(); ++i) {
      PhaseSpec phase;
      Status s = ParsePhase(phases->items()[i], static_cast<int>(i), &phase);
      if (!s.ok()) return s;
      spec.phases.push_back(std::move(phase));
    }
  }
  if (const Json* schedule = r.Take("schedule")) {
    if (!schedule->is_array()) {
      return Status::InvalidArgument("schedule must be an array");
    }
    for (size_t i = 0; i < schedule->items().size(); ++i) {
      EventSpec event;
      Status s = ParseEvent(schedule->items()[i], static_cast<int>(i), &event);
      if (!s.ok()) return s;
      spec.schedule.push_back(event);
    }
  }
  r.GetString("strategy", &spec.strategy);
  r.GetInt("parallelism", &spec.parallelism);
  r.GetBool("service_times", &spec.service_times);
  if (const Json* telemetry = r.Take("telemetry")) {
    Status ts = ParseTelemetry(*telemetry, &spec.telemetry);
    if (!ts.ok()) return ts;
  }
  if (const Json* fault = r.Take("fault")) {
    Status fs = ParseFault(*fault, &spec.fault);
    if (!fs.ok()) return fs;
  }
  if (const Json* ingress = r.Take("ingress")) {
    Status is = ParseIngress(*ingress, &spec.ingress);
    if (!is.ok()) return is;
  }
  if (const Json* migration = r.Take("migration")) {
    Status ms = ParseMigration(*migration, &spec.migration);
    if (!ms.ok()) return ms;
  }
  if (const Json* expect = r.Take("expect")) {
    Status es = ParseExpect(*expect, &spec.expect);
    if (!es.ok()) return es;
  }
  r.GetBool("gate", &spec.gate);
  if (const Json* thresholds = r.Take("thresholds")) {
    Status s = ParseThresholds(*thresholds, &spec.thresholds);
    if (!s.ok()) return s;
  }
  Status s = r.Finish();
  if (!s.ok()) return s;
  s = ValidateSpec(spec);
  if (!s.ok()) return s;
  return spec;
}

StatusOr<Spec> ParseSpecText(const std::string& text) {
  StatusOr<Json> json = Json::Parse(text);
  if (!json.ok()) return json.status();
  return ParseSpec(json.value());
}

StatusOr<Spec> LoadSpecFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::NotFound("cannot open spec file: " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  StatusOr<Spec> spec = ParseSpecText(buf.str());
  if (!spec.ok()) {
    return Status(spec.status().code(),
                  path + ": " + spec.status().message());
  }
  return spec;
}

Json SpecToJson(const Spec& spec) {
  Json j = Json::Object();
  j.Set("name", spec.name);
  if (!spec.description.empty()) j.Set("description", spec.description);
  j.Set("seed", spec.seed);
  j.Set("streams", spec.streams);
  if (spec.windows.empty()) {
    j.Set("window", spec.window);
  } else {
    Json windows = Json::Array();
    for (uint64_t w : spec.windows) windows.Append(w);
    j.Set("windows", std::move(windows));
  }
  if (spec.window_mode != "count") j.Set("window_mode", spec.window_mode);
  Json arrival = Json::Object();
  arrival.Set("interleave", InterleaveName(spec.arrival.interleave));
  arrival.Set("key_pattern", KeyPatternName(spec.arrival.key_pattern));
  if (spec.arrival.key_domain != 0) {
    arrival.Set("key_domain", spec.arrival.key_domain);
  }
  if (spec.arrival.zipf_s != 0) arrival.Set("zipf_s", spec.arrival.zipf_s);
  if (spec.arrival.key_pattern == KeyPattern::kBottomFanout) {
    arrival.Set("fanout", spec.arrival.fanout);
    if (!spec.arrival.fanout_streams.empty()) {
      Json streams = Json::Array();
      for (StreamId s : spec.arrival.fanout_streams) {
        streams.Append(static_cast<uint64_t>(s));
      }
      arrival.Set("fanout_streams", std::move(streams));
    }
  }
  if (spec.arrival.ts_stride != 1) {
    arrival.Set("ts_stride", spec.arrival.ts_stride);
  }
  j.Set("arrival", std::move(arrival));
  if (spec.warmup_tuples.has_value()) {
    j.Set("warmup_tuples", *spec.warmup_tuples);
  } else {
    j.Set("warmup_windows", spec.warmup_windows);
  }
  Json phases = Json::Array();
  for (const PhaseSpec& p : spec.phases) {
    Json phase = Json::Object();
    if (!p.label.empty()) phase.Set("label", p.label);
    phase.Set("tuples", p.tuples);
    if (p.force_stream.has_value()) {
      phase.Set("force_stream", static_cast<uint64_t>(*p.force_stream));
    }
    if (p.key_domain.has_value()) phase.Set("key_domain", *p.key_domain);
    phases.Append(std::move(phase));
  }
  j.Set("phases", std::move(phases));
  if (!spec.schedule.empty()) {
    Json schedule = Json::Array();
    for (const EventSpec& e : spec.schedule) {
      Json event = Json::Object();
      event.Set("at", e.at);
      if (e.action == EventSpec::Action::kTransition) {
        event.Set("transition", TransitionKindName(e.transition));
      } else {
        event.Set("checkpoint_restore", true);
      }
      schedule.Append(std::move(event));
    }
    j.Set("schedule", std::move(schedule));
  }
  j.Set("strategy", spec.strategy);
  if (spec.parallelism != 1) j.Set("parallelism", spec.parallelism);
  if (spec.service_times) j.Set("service_times", true);
  {
    const TelemetrySpec def;
    const TelemetrySpec& t = spec.telemetry;
    if (t.enabled || t.period_ms != def.period_ms ||
        t.watchdog_samples != def.watchdog_samples ||
        t.expect_no_stragglers || t.expect_straggler_shard.has_value()) {
      Json telemetry = Json::Object();
      if (t.enabled) telemetry.Set("enabled", true);
      if (t.period_ms != def.period_ms) telemetry.Set("period_ms", t.period_ms);
      if (t.watchdog_samples != def.watchdog_samples) {
        telemetry.Set("watchdog_samples", t.watchdog_samples);
      }
      if (t.expect_no_stragglers) telemetry.Set("expect_no_stragglers", true);
      if (t.expect_straggler_shard.has_value()) {
        telemetry.Set("expect_straggler_shard", *t.expect_straggler_shard);
      }
      j.Set("telemetry", std::move(telemetry));
    }
  }
  {
    const FaultSpec def;
    const FaultSpec& f = spec.fault;
    if (f.straggler_shard != def.straggler_shard || f.stall_ms != def.stall_ms ||
        f.stall_every != def.stall_every || f.drop_every != def.drop_every ||
        f.duplicate_every != def.duplicate_every ||
        f.reorder_window != def.reorder_window ||
        f.drop_burst != def.drop_burst ||
        f.drop_burst_at != def.drop_burst_at) {
      Json fault = Json::Object();
      if (f.straggler_shard != def.straggler_shard) {
        fault.Set("straggler_shard", f.straggler_shard);
      }
      if (f.stall_ms != def.stall_ms) fault.Set("stall_ms", f.stall_ms);
      if (f.stall_every != def.stall_every) {
        fault.Set("stall_every", f.stall_every);
      }
      if (f.drop_every != def.drop_every) {
        fault.Set("drop_every", f.drop_every);
      }
      if (f.duplicate_every != def.duplicate_every) {
        fault.Set("duplicate_every", f.duplicate_every);
      }
      if (f.reorder_window != def.reorder_window) {
        fault.Set("reorder_window", f.reorder_window);
      }
      if (f.drop_burst != def.drop_burst) {
        fault.Set("drop_burst", f.drop_burst);
      }
      if (f.drop_burst_at != def.drop_burst_at) {
        fault.Set("drop_burst_at", f.drop_burst_at);
      }
      j.Set("fault", std::move(fault));
    }
  }
  {
    const IngressSpec def;
    const IngressSpec& in = spec.ingress;
    if (in.enabled || in.dedup_window != def.dedup_window ||
        in.reorder_window != def.reorder_window ||
        in.overflow != def.overflow ||
        in.anomaly_threshold != def.anomaly_threshold) {
      Json ingress = Json::Object();
      if (in.enabled) ingress.Set("enabled", true);
      if (in.dedup_window != def.dedup_window) {
        ingress.Set("dedup_window", in.dedup_window);
      }
      if (in.reorder_window != def.reorder_window) {
        ingress.Set("reorder_window", in.reorder_window);
      }
      if (in.overflow != def.overflow) ingress.Set("overflow", in.overflow);
      if (in.anomaly_threshold != def.anomaly_threshold) {
        ingress.Set("anomaly_threshold", in.anomaly_threshold);
      }
      j.Set("ingress", std::move(ingress));
    }
  }
  {
    const MigrationSpec def;
    const MigrationSpec& m = spec.migration;
    if (m.mode != def.mode || m.batch_keys != def.batch_keys ||
        m.delay_budget_us != def.delay_budget_us) {
      Json migration = Json::Object();
      if (m.mode != def.mode) migration.Set("mode", m.mode);
      if (m.batch_keys != def.batch_keys) {
        migration.Set("batch_keys", m.batch_keys);
      }
      if (m.delay_budget_us != def.delay_budget_us) {
        migration.Set("delay_budget_us", m.delay_budget_us);
      }
      j.Set("migration", std::move(migration));
    }
  }
  if (spec.expect.output_delay_p99_us.has_value()) {
    Json expect = Json::Object();
    expect.Set("output_delay_p99_us", *spec.expect.output_delay_p99_us);
    j.Set("expect", std::move(expect));
  }
  if (!spec.gate) j.Set("gate", false);
  if (!spec.thresholds.empty()) {
    Json thresholds = Json::Object();
    for (const auto& [key, value] : spec.thresholds) {
      thresholds.Set(key, value);
    }
    j.Set("thresholds", std::move(thresholds));
  }
  return j;
}

uint64_t TotalMeasuredTuples(const Spec& spec) {
  uint64_t total = 0;
  for (const PhaseSpec& p : spec.phases) total += p.tuples;
  return total;
}

Status ValidateSpec(const Spec& spec) {
  auto invalid = [](const std::string& msg) {
    return Status::InvalidArgument("spec: " + msg);
  };
  if (spec.name.empty()) return invalid("name is required");
  if (spec.streams < 2) return invalid("streams must be >= 2");
  if (spec.windows.empty()) {
    if (spec.window == 0) return invalid("window must be > 0");
  } else {
    if (spec.windows.size() != static_cast<size_t>(spec.streams)) {
      return invalid("windows must list one size per stream");
    }
    for (uint64_t w : spec.windows) {
      if (w == 0) return invalid("windows entries must be > 0");
    }
  }
  if (spec.window_mode != "count" && spec.window_mode != "time") {
    return invalid("window_mode must be count or time");
  }
  if (spec.arrival.ts_stride == 0) {
    return invalid("arrival.ts_stride must be > 0");
  }
  if (spec.arrival.ts_stride != 1 && spec.window_mode != "time") {
    return invalid("arrival.ts_stride requires window_mode time "
                   "(count windows ignore event time)");
  }
  if (spec.arrival.zipf_s != 0 &&
      spec.arrival.key_pattern != KeyPattern::kRandom) {
    return invalid("zipf_s requires key_pattern random");
  }
  for (StreamId s : spec.arrival.fanout_streams) {
    if (s >= spec.streams) return invalid("fanout_streams entry out of range");
  }
  if (spec.warmup_windows < 0) return invalid("warmup_windows must be >= 0");
  if (spec.phases.empty()) return invalid("at least one phase is required");
  for (const PhaseSpec& p : spec.phases) {
    if (p.tuples == 0) return invalid("phase tuples must be > 0");
    if (p.force_stream.has_value() && *p.force_stream >= spec.streams) {
      return invalid("phase force_stream out of range");
    }
    if (p.key_domain.has_value() && *p.key_domain == 0) {
      return invalid("phase key_domain must be > 0");
    }
  }
  uint64_t total = TotalMeasuredTuples(spec);
  for (const EventSpec& e : spec.schedule) {
    if (e.at > total) return invalid("schedule event offset past end of run");
  }
  StatusOr<ProcessorKind> kind = StrategyFromName(spec.strategy);
  if (!kind.ok()) return kind.status();
  if (spec.parallelism < 1) return invalid("parallelism must be >= 1");
  bool engine_kind = IsEngineKind(kind.value());
  if (spec.parallelism > 1 && !engine_kind) {
    return invalid("strategy '" + spec.strategy +
                   "' does not support parallelism > 1");
  }
  for (const EventSpec& e : spec.schedule) {
    if (e.action == EventSpec::Action::kCheckpointRestore) {
      if (!engine_kind) {
        return invalid("checkpoint_restore requires an engine strategy "
                       "(jisc, jisc-first-receipt, moving-state, "
                       "pipeline-shj)");
      }
      if (spec.parallelism > 1) {
        return invalid("checkpoint_restore requires parallelism 1");
      }
    }
  }
  const TelemetrySpec& tel = spec.telemetry;
  if (tel.period_ms == 0) return invalid("telemetry.period_ms must be > 0");
  if (tel.watchdog_samples < 2) {
    return invalid("telemetry.watchdog_samples must be >= 2");
  }
  if ((tel.expect_no_stragglers || tel.expect_straggler_shard.has_value()) &&
      !tel.enabled) {
    return invalid("telemetry expectations require telemetry.enabled");
  }
  if (tel.expect_no_stragglers && tel.expect_straggler_shard.has_value()) {
    return invalid("telemetry: expect_no_stragglers and "
                   "expect_straggler_shard are mutually exclusive");
  }
  if (tel.expect_straggler_shard.has_value() &&
      (*tel.expect_straggler_shard < 0 ||
       *tel.expect_straggler_shard >= spec.parallelism)) {
    return invalid("telemetry.expect_straggler_shard out of range");
  }
  const FaultSpec& fault = spec.fault;
  if (fault.straggler_shard >= 0) {
    if (spec.parallelism <= 1) {
      return invalid("fault.straggler_shard requires parallelism > 1");
    }
    if (fault.straggler_shard >= spec.parallelism) {
      return invalid("fault.straggler_shard out of range");
    }
    if (fault.stall_ms == 0) return invalid("fault.stall_ms must be > 0");
    if (fault.stall_every == 0) return invalid("fault.stall_every must be > 0");
  } else if (fault.stall_ms != 0) {
    return invalid("fault.stall_ms requires fault.straggler_shard");
  }
  // Dropping every arrival (drop_every == 1) would leave the measured stage
  // empty; 0 disables the fault, anything >= 2 thins the stream.
  if (fault.drop_every == 1) {
    return invalid("fault.drop_every must be 0 (off) or >= 2");
  }
  // Same shape for duplication: 1 would double the whole stream — a
  // different workload, not a fault.
  if (fault.duplicate_every == 1) {
    return invalid("fault.duplicate_every must be 0 (off) or >= 2");
  }
  if (fault.drop_burst == 0 && fault.drop_burst_at != 0) {
    return invalid("fault.drop_burst_at requires fault.drop_burst > 0");
  }
  if (fault.drop_burst > 0 && fault.drop_burst_at >= total) {
    return invalid("fault.drop_burst_at past end of run");
  }
  const IngressSpec& ingress = spec.ingress;
  if (ingress.overflow != "admit_late" && ingress.overflow != "drop_late" &&
      ingress.overflow != "fail") {
    return invalid("ingress.overflow must be admit_late, drop_late, or fail");
  }
  if (ingress.enabled) {
    if (ingress.dedup_window == 0) {
      return invalid("ingress.dedup_window must be > 0");
    }
    if (ingress.reorder_window == 0) {
      return invalid("ingress.reorder_window must be > 0");
    }
  }
  if (ingress.anomaly_threshold > 0) {
    if (!ingress.enabled) {
      return invalid("ingress.anomaly_threshold requires ingress.enabled");
    }
    if (!tel.enabled) {
      return invalid("ingress.anomaly_threshold requires telemetry.enabled");
    }
  }
  const MigrationSpec& mig = spec.migration;
  if (mig.mode != "all_at_once" && mig.mode != "fluid") {
    return invalid("migration.mode must be all_at_once or fluid");
  }
  if (mig.mode == "fluid") {
    // Fluid pacing exists where a transition carries state: the engine
    // strategies and the multi-plan trackers. The eddy family and the
    // static pipeline have no migration stage to pace.
    switch (kind.value()) {
      case ProcessorKind::kJisc:
      case ProcessorKind::kJiscFirstReceipt:
      case ProcessorKind::kMovingState:
      case ProcessorKind::kParallelTrack:
      case ProcessorKind::kHybridTrack:
        break;
      default:
        return invalid("migration.mode fluid is not supported by strategy '" +
                       spec.strategy + "'");
    }
  }
  if (spec.expect.output_delay_p99_us.has_value() &&
      *spec.expect.output_delay_p99_us == 0) {
    return invalid("expect.output_delay_p99_us must be > 0");
  }
  return Status::Ok();
}

FluidOptions ToFluidOptions(const MigrationSpec& migration) {
  FluidOptions fluid;
  if (migration.mode == "fluid") fluid.mode = FluidOptions::Mode::kFluid;
  fluid.batch_keys = migration.batch_keys;
  fluid.delay_budget_us = migration.delay_budget_us;
  return fluid;
}

}  // namespace scenario
}  // namespace jisc
