#ifndef JISC_SCENARIO_JSON_H_
#define JISC_SCENARIO_JSON_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace jisc {

// A small JSON document model for the scenario harness: scenario specs are
// parsed from it, evidence bundles (run.json / diff.json) are written
// through it. Design points that matter here:
//
//  * Objects preserve insertion order, so serialization is canonical —
//    writing the same value twice yields byte-identical text. The
//    determinism gate (scenario_test) and `jiscbench compare` both rely on
//    this.
//  * Numbers keep their integer-ness: anything parsed without '.', 'e' or
//    an overflow stays an int64 and is re-emitted exactly. Work-unit
//    counters must round-trip without drifting through a double.
//  * Parsing returns Status (with line/column) instead of throwing,
//    matching the repo-wide no-exceptions error discipline.
class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Json(int64_t v) : kind_(Kind::kInt), int_(v) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Json(uint64_t v) : kind_(Kind::kInt), int_(static_cast<int64_t>(v)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Json(int v) : kind_(Kind::kInt), int_(v) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Json(double v) : kind_(Kind::kDouble), double_(v) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Json(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Json(const char* s) : kind_(Kind::kString), string_(s) {}

  static Json Array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  int64_t AsInt() const {
    return kind_ == Kind::kDouble ? static_cast<int64_t>(double_) : int_;
  }
  double AsDouble() const {
    return kind_ == Kind::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& AsString() const { return string_; }

  // Array access.
  const std::vector<Json>& items() const { return items_; }
  void Append(Json v) { items_.push_back(std::move(v)); }
  size_t size() const {
    return kind_ == Kind::kObject ? members_.size() : items_.size();
  }

  // Object access. Members keep insertion order; Set overwrites in place so
  // re-setting a key does not reorder the document.
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }
  void Set(const std::string& key, Json v);
  // nullptr when absent.
  const Json* Find(const std::string& key) const;

  // Compact one-line serialization (no whitespace).
  std::string Dump() const;
  // Two-space-indented serialization; what run.json / diff.json use.
  std::string Pretty() const;

  void Write(std::ostream& os, int indent = -1, int depth = 0) const;

  // Parses exactly one JSON document (trailing garbage is an error).
  // Errors carry "line L column C" context.
  static StatusOr<Json> Parse(const std::string& text);

 private:
  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace jisc

#endif  // JISC_SCENARIO_JSON_H_
