#include "scenario/bundle.h"

#include <fstream>
#include <sstream>

#include "obs/trace_export.h"

namespace jisc {
namespace scenario {
namespace {

Json IdentityJson(const RunResult& r) {
  Json id = Json::Object();
  id.Set("scenario", r.scenario);
  id.Set("strategy", r.strategy);
  id.Set("seed", r.seed);
  id.Set("scale", r.scale);
  id.Set("parallelism", r.parallelism);
  return id;
}

Json CountersJson(const RunResult& r) {
  Json counters = Json::Object();
  for (const auto& [name, value] : r.counters) counters.Set(name, value);
  return counters;
}

Json ShapeJson(const RunResult& r) {
  Json shape = Json::Object();
  shape.Set("window", r.window);
  shape.Set("warmup_tuples", r.warmup_tuples);
  shape.Set("measured_tuples", r.measured_tuples);
  shape.Set("transitions", r.transitions);
  shape.Set("checkpoint_restores", r.checkpoint_restores);
  shape.Set("dropped_arrivals", r.dropped_arrivals);
  shape.Set("duplicated_arrivals", r.duplicated_arrivals);
  shape.Set("reordered_arrivals", r.reordered_arrivals);
  shape.Set("duplicates_suppressed", r.duplicates_suppressed);
  shape.Set("reorder_restored", r.reorder_restored);
  shape.Set("late_admitted", r.late_admitted);
  shape.Set("late_dropped", r.late_dropped);
  return shape;
}

// The sampled telemetry series — a noisy section like "wall": it never
// enters SerializeDeterministic, so telemetry on/off cannot perturb the
// deterministic byte-identity the determinism test locks in.
Json TelemetryJson(const TelemetryResult& t) {
  Json j = Json::Object();
  j.Set("period_ms", t.period_ms);
  j.Set("watchdog_samples", t.watchdog_samples);
  j.Set("samples", t.samples);
  j.Set("dropped_snapshots", t.dropped_snapshots);
  Json flags = Json::Array();
  for (uint64_t f : t.straggler_flags) flags.Append(f);
  j.Set("straggler_flags", std::move(flags));
  j.Set("anomaly_episodes", t.anomaly_episodes);
  Json series = Json::Array();
  for (const TelemetrySnapshot& s : t.series) {
    Json snap = Json::Object();
    snap.Set("t_ns", s.t_ns);
    snap.Set("input_events", s.input_events);
    snap.Set("input_seq", s.input_seq);
    snap.Set("outputs", s.output_count);
    snap.Set("probes", s.probe_count);
    snap.Set("inserts", s.insert_count);
    snap.Set("completions", s.completion_count);
    Json tracks = Json::Array();
    for (size_t i = 0; i < s.tracks.size(); ++i) {
      const TelemetryTrackSample& ts = s.tracks[i];
      Json track = Json::Object();
      track.Set("track", static_cast<uint64_t>(i));
      track.Set("progress", ts.progress_events);
      track.Set("seq", ts.progress_seq);
      track.Set("queue", ts.queue_depth);
      track.Set("queue_hwm", ts.queue_high_watermark);
      track.Set("stalls", ts.stall_count);
      track.Set("stalled_ns", ts.stalled_ns);
      track.Set("state_bytes", ts.state_memory_bytes);
      track.Set("migration_backlog", ts.migration_backlog);
      track.Set("straggler", ts.straggler_flags);
      track.Set("ingress_dup", ts.ingress_duplicates);
      track.Set("ingress_reordered", ts.ingress_reordered);
      track.Set("ingress_late_admitted", ts.ingress_late_admitted);
      track.Set("ingress_late_dropped", ts.ingress_late_dropped);
      tracks.Append(std::move(track));
    }
    snap.Set("tracks", std::move(tracks));
    series.Append(std::move(snap));
  }
  j.Set("series", std::move(series));
  return j;
}

Status ReadU64(const Json& obj, const char* key, uint64_t* out) {
  const Json* v = obj.Find(key);
  if (v == nullptr || !v->is_int() || v->AsInt() < 0) {
    return Status::InvalidArgument(std::string("run bundle: missing or "
                                               "invalid '") +
                                   key + "'");
  }
  *out = static_cast<uint64_t>(v->AsInt());
  return Status::Ok();
}

}  // namespace

Json RunResultToJson(const RunResult& r) {
  Json j = Json::Object();
  j.Set("bundle_version", kBundleVersion);
  j.Set("identity", IdentityJson(r));
  j.Set("shape", ShapeJson(r));
  j.Set("counters", CountersJson(r));
  Json wall = Json::Object();
  wall.Set("warmup_seconds", r.warmup_seconds);
  wall.Set("measured_seconds", r.measured_seconds);
  wall.Set("throughput_tps", r.throughput_tps);
  j.Set("wall", std::move(wall));
  Json hists = Json::Object();
  for (const auto& [name, s] : r.histograms) {
    Json h = Json::Object();
    h.Set("count", s.count);
    h.Set("p50", s.p50);
    h.Set("p90", s.p90);
    h.Set("p99", s.p99);
    h.Set("max", s.max);
    h.Set("mean", s.mean);
    h.Set("overflow", s.overflow);
    hists.Set(name, std::move(h));
  }
  j.Set("histograms", std::move(hists));
  if (!r.thresholds.empty()) {
    Json thresholds = Json::Object();
    for (const auto& [name, value] : r.thresholds) {
      thresholds.Set(name, value);
    }
    j.Set("thresholds", std::move(thresholds));
  }
  if (r.telemetry.enabled) j.Set("telemetry", TelemetryJson(r.telemetry));
  return j;
}

std::string SerializeDeterministic(const RunResult& r) {
  Json j = Json::Object();
  j.Set("identity", IdentityJson(r));
  j.Set("shape", ShapeJson(r));
  j.Set("counters", CountersJson(r));
  return j.Pretty();
}

StatusOr<RunResult> RunResultFromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("run bundle: expected an object");
  }
  const Json* version = json.Find("bundle_version");
  if (version == nullptr || !version->is_int()) {
    return Status::InvalidArgument("run bundle: missing bundle_version");
  }
  if (version->AsInt() != kBundleVersion) {
    std::ostringstream os;
    os << "run bundle: version " << version->AsInt() << " unsupported "
       << "(expected " << kBundleVersion << "; re-capture the baseline)";
    return Status::InvalidArgument(os.str());
  }
  RunResult r;
  const Json* id = json.Find("identity");
  if (id == nullptr || !id->is_object()) {
    return Status::InvalidArgument("run bundle: missing identity");
  }
  if (const Json* v = id->Find("scenario"); v != nullptr && v->is_string()) {
    r.scenario = v->AsString();
  }
  if (const Json* v = id->Find("strategy"); v != nullptr && v->is_string()) {
    r.strategy = v->AsString();
  }
  Status s = ReadU64(*id, "seed", &r.seed);
  if (!s.ok()) return s;
  if (const Json* v = id->Find("scale"); v != nullptr && v->is_number()) {
    r.scale = v->AsDouble();
  }
  if (const Json* v = id->Find("parallelism"); v != nullptr && v->is_int()) {
    r.parallelism = static_cast<int>(v->AsInt());
  }
  if (const Json* shape = json.Find("shape");
      shape != nullptr && shape->is_object()) {
    ReadU64(*shape, "window", &r.window);
    ReadU64(*shape, "warmup_tuples", &r.warmup_tuples);
    ReadU64(*shape, "measured_tuples", &r.measured_tuples);
    ReadU64(*shape, "transitions", &r.transitions);
    ReadU64(*shape, "checkpoint_restores", &r.checkpoint_restores);
    // Absent in bundles captured before the drop fault existed: stays 0.
    ReadU64(*shape, "dropped_arrivals", &r.dropped_arrivals);
    // Likewise for the ingress fault/guard counters (pre-guard bundles).
    ReadU64(*shape, "duplicated_arrivals", &r.duplicated_arrivals);
    ReadU64(*shape, "reordered_arrivals", &r.reordered_arrivals);
    ReadU64(*shape, "duplicates_suppressed", &r.duplicates_suppressed);
    ReadU64(*shape, "reorder_restored", &r.reorder_restored);
    ReadU64(*shape, "late_admitted", &r.late_admitted);
    ReadU64(*shape, "late_dropped", &r.late_dropped);
  }
  const Json* counters = json.Find("counters");
  if (counters == nullptr || !counters->is_object()) {
    return Status::InvalidArgument("run bundle: missing counters");
  }
  for (const auto& [name, value] : counters->members()) {
    if (!value.is_int() || value.AsInt() < 0) {
      return Status::InvalidArgument("run bundle: counter '" + name +
                                     "' must be a non-negative integer");
    }
    r.counters.emplace_back(name, static_cast<uint64_t>(value.AsInt()));
  }
  if (const Json* wall = json.Find("wall");
      wall != nullptr && wall->is_object()) {
    if (const Json* v = wall->Find("warmup_seconds");
        v != nullptr && v->is_number()) {
      r.warmup_seconds = v->AsDouble();
    }
    if (const Json* v = wall->Find("measured_seconds");
        v != nullptr && v->is_number()) {
      r.measured_seconds = v->AsDouble();
    }
    if (const Json* v = wall->Find("throughput_tps");
        v != nullptr && v->is_number()) {
      r.throughput_tps = v->AsDouble();
    }
  }
  if (const Json* hists = json.Find("histograms");
      hists != nullptr && hists->is_object()) {
    for (const auto& [name, h] : hists->members()) {
      if (!h.is_object()) continue;
      HistogramSummary summary;
      ReadU64(h, "count", &summary.count);
      ReadU64(h, "p50", &summary.p50);
      ReadU64(h, "p90", &summary.p90);
      ReadU64(h, "p99", &summary.p99);
      ReadU64(h, "max", &summary.max);
      ReadU64(h, "overflow", &summary.overflow);
      if (const Json* v = h.Find("mean"); v != nullptr && v->is_number()) {
        summary.mean = v->AsDouble();
      }
      r.histograms.emplace_back(name, summary);
    }
  }
  if (const Json* thresholds = json.Find("thresholds");
      thresholds != nullptr && thresholds->is_object()) {
    for (const auto& [name, value] : thresholds->members()) {
      if (value.is_number()) r.thresholds[name] = value.AsDouble();
    }
  }
  // Telemetry summary only; the series (like trace spans) is write-only —
  // compare never needs per-snapshot data.
  if (const Json* telemetry = json.Find("telemetry");
      telemetry != nullptr && telemetry->is_object()) {
    r.telemetry.enabled = true;
    ReadU64(*telemetry, "period_ms", &r.telemetry.period_ms);
    if (const Json* v = telemetry->Find("watchdog_samples");
        v != nullptr && v->is_int()) {
      r.telemetry.watchdog_samples = static_cast<int>(v->AsInt());
    }
    ReadU64(*telemetry, "samples", &r.telemetry.samples);
    ReadU64(*telemetry, "dropped_snapshots", &r.telemetry.dropped_snapshots);
    // Absent in bundles captured before the ingress watchdog: stays 0.
    ReadU64(*telemetry, "anomaly_episodes", &r.telemetry.anomaly_episodes);
    if (const Json* flags = telemetry->Find("straggler_flags");
        flags != nullptr && flags->is_array()) {
      for (const Json& f : flags->items()) {
        if (f.is_int() && f.AsInt() >= 0) {
          r.telemetry.straggler_flags.push_back(
              static_cast<uint64_t>(f.AsInt()));
        }
      }
    }
  }
  return r;
}

StatusOr<RunResult> LoadRunFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::NotFound("cannot open run bundle: " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  StatusOr<Json> json = Json::Parse(buf.str());
  if (!json.ok()) {
    return Status(json.status().code(),
                  path + ": " + json.status().message());
  }
  StatusOr<RunResult> result = RunResultFromJson(json.value());
  if (!result.ok()) {
    return Status(result.status().code(),
                  path + ": " + result.status().message());
  }
  return result;
}

Status WriteRunBundle(const RunResult& result, const std::string& run_path,
                      const std::string& trace_path) {
  {
    std::ofstream f(run_path);
    if (!f) return Status::Internal("cannot write " + run_path);
    f << RunResultToJson(result).Pretty();
    if (!f.good()) return Status::Internal("short write to " + run_path);
  }
  if (!trace_path.empty()) {
    std::ofstream f(trace_path);
    if (!f) return Status::Internal("cannot write " + trace_path);
    WriteChromeTrace(f, result.trace, result.trace_dropped, result.scenario);
    if (!f.good()) return Status::Internal("short write to " + trace_path);
  }
  return Status::Ok();
}

}  // namespace scenario
}  // namespace jisc
