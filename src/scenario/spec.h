#ifndef JISC_SCENARIO_SPEC_H_
#define JISC_SCENARIO_SPEC_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "scenario/json.h"
#include "stream/synthetic_source.h"
#include "types/tuple.h"
#include "workload/factory.h"

namespace jisc {
namespace scenario {

// A scenario spec is the JSON description of one controlled experiment:
// the streams and their windows, how arrivals are shaped (skew, bursts,
// lulls, straggler-inducing hot keys), what happens when (transitions,
// checkpoint/restore), and which strategy is under test. Counts are
// authored at paper scale (10,000-tuple windows); the runner multiplies
// them by a scale factor (CI uses 0.02, like JISC_BENCH_SCALE) so one spec
// serves both the PR gate and the nightly soak.
//
// Parsing is strict: an unknown key anywhere in the document is an error,
// so a typo ("windwo": 100) fails the spec instead of silently running the
// default. `jiscbench validate` exposes this check standalone.

// Arrival shaping (maps onto stream/synthetic_source.h).
struct ArrivalSpec {
  Interleave interleave = Interleave::kRoundRobin;
  KeyPattern key_pattern = KeyPattern::kSequential;
  // 0 = "auto": the scaled window size, i.e. unit selectivity per probe —
  // the regime every figure bench runs in.
  uint64_t key_domain = 0;
  // kRandom only: Zipf skew (0 = uniform). Skewed keys concentrate on few
  // values, which under a sharded run also concentrates load on one shard
  // (the straggler-shard scenarios are built from this).
  double zipf_s = 0;
  // kBottomFanout knobs; fanout_streams empty = first and last stream.
  uint64_t fanout = 3;
  std::vector<StreamId> fanout_streams;
  // Event-time stride per arrival (SourceConfig::ts_stride): tuple ts =
  // seq * ts_stride. Only meaningful with window_mode "time"; count-based
  // windows ignore ts, so any value other than 1 is rejected there.
  uint64_t ts_stride = 1;
};

// One contiguous slice of the measured run. Bursts pin arrivals to a
// single stream; lulls are phases whose key domain is widened so probes
// rarely match (output pressure drops); a plain phase restores the
// configured arrival mix.
struct PhaseSpec {
  std::string label;
  uint64_t tuples = 0;                     // paper-scale; scaled by runner
  std::optional<StreamId> force_stream;    // burst: all arrivals one stream
  std::optional<uint64_t> key_domain;      // selectivity shift (scaled)
};

// Join-order targets, all relative to the initial left-deep order.
enum class TransitionKind {
  kInitial,    // back to the starting order
  kBestCase,   // paper Fig. 5: swap the two topmost streams
  kWorstCase,  // paper Fig. 3b: reverse the order
  kRandomSwap, // Section 5.2 triangular pairwise exchange (seeded by `at`)
};

struct EventSpec {
  enum class Action { kTransition, kCheckpointRestore };
  // Measured-tuple offset (paper-scale; scaled by the runner). Events at
  // the same offset fire in spec order, before that tuple is pushed;
  // at == total fires after the last tuple.
  uint64_t at = 0;
  Action action = Action::kTransition;
  TransitionKind transition = TransitionKind::kBestCase;
};

// Live telemetry sampling for the measured stage (obs/telemetry.h). Off by
// default; when enabled the runner allocates the telemetry registry, runs a
// TelemetrySampler alongside the run, and attaches the sampled series to
// the bundle's noisy "telemetry" section (never to the deterministic
// sections — baselines are unaffected).
struct TelemetrySpec {
  bool enabled = false;
  uint64_t period_ms = 10;      // sampling period
  int watchdog_samples = 5;     // flat samples before a straggler verdict
  // Post-run assertions on the stall watchdog, for locking in watchdog
  // behavior from a scenario: symmetric specs assert no shard was flagged;
  // fault-injection specs assert exactly the injected shard was.
  bool expect_no_stragglers = false;
  std::optional<int> expect_straggler_shard;
};

// Fault injection. The straggler fields are wall-clock faults
// (ParallelExecutor::Options straggler fields): the chosen shard's worker
// sleeps `stall_ms` after every `stall_every` processed events. Outputs and
// deterministic counters are untouched, so injected runs remain
// baseline-comparable. `drop_every` is a deterministic fault, orthogonal to
// the straggler fields and valid at any parallelism: the runner consumes
// every drop_every-th measured arrival without pushing it, so dropped runs
// produce different (but still byte-identical across repeats) counters and
// carry the drop count in the bundle's deterministic section.
// The deterministic ingress faults (duplicate_every, reorder_window,
// drop_burst) corrupt the measured feed in seed-stable ways: the same spec
// at the same seed always duplicates, shuffles, and drops the same
// arrivals, so faulted runs still compare exact against their own
// baselines. Their per-fault counts land in the bundle's deterministic
// shape section next to dropped_arrivals.
struct FaultSpec {
  int straggler_shard = -1;  // -1 = off
  uint64_t stall_ms = 0;
  uint64_t stall_every = 64;
  uint64_t drop_every = 0;  // 0 = off; N >= 2 drops every Nth arrival
  // Re-deliver every Nth measured arrival immediately after itself, with
  // its original payload and sequence number. 0 = off; N >= 2.
  uint64_t duplicate_every = 0;
  // Shuffle measured arrivals in seeded tumbling batches of this size
  // (bounded reordering: a tuple is never displaced by more than
  // reorder_window - 1 positions, and batches do not interleave). 0 = off.
  uint64_t reorder_window = 0;
  // Drop `drop_burst` consecutive measured arrivals starting at offset
  // `drop_burst_at` (paper-scale; scaled by the runner). Composes with
  // drop_every. 0 = off.
  uint64_t drop_burst = 0;
  uint64_t drop_burst_at = 0;
};

// Opt-in engine-side ingress resilience ("ingress" key): wraps the
// processor in an IngressGuard (exec/ingress_guard.h) that suppresses
// duplicates and restores order before admission. With the guard on, a
// run under duplicate/reorder faults reproduces the clean run's
// deterministic counters exactly.
struct IngressSpec {
  bool enabled = false;
  uint64_t dedup_window = 1024;   // per-stream recent-seq window (unscaled)
  uint64_t reorder_window = 64;   // guard buffer bound (unscaled)
  std::string overflow = "admit_late";  // admit_late | drop_late | fail
  // Ingress anomaly watchdog threshold (TelemetrySampler::Options
  // anomaly_threshold); requires telemetry.enabled. 0 = off.
  uint64_t anomaly_threshold = 0;
};

// Migration pacing ("migration" key). all_at_once (the default) performs
// the whole state carryover/completion inside the transition; fluid drains
// it in bounded per-key batches between tuples, each batch capped by
// batch_keys items and by delay_budget_us of deterministic work-unit
// budget (core/migration_strategy.h FluidOptions). batch_keys 0 means
// unbounded and degenerates to the literal all-at-once code path.
struct MigrationSpec {
  std::string mode = "all_at_once";  // all_at_once | fluid
  uint64_t batch_keys = 64;
  uint64_t delay_budget_us = 50;
};

// Post-run latency assertions ("expect" key), checked by the runner after
// the measured stage. Latency is machine-dependent noise, so these gate
// loudly (the run fails) against generous absolute ceilings instead of
// riding in the baseline-compared sections; the runner additionally floors
// the threshold (runner.cc) so debug or loaded machines do not flake.
struct ExpectSpec {
  std::optional<uint64_t> output_delay_p99_us;
};

struct Spec {
  std::string name;
  std::string description;
  uint64_t seed = 42;

  int streams = 4;
  uint64_t window = 10000;          // uniform count window (paper scale)
  std::vector<uint64_t> windows;    // per-stream override (paper scale)
  // "count" (default) or "time": time-based sliding windows, where
  // `window`/`windows` are event-time durations (scaled like counts) and
  // expiry follows tuple.ts = seq * arrival.ts_stride.
  std::string window_mode = "count";

  ArrivalSpec arrival;

  // Warmup fills the windows before measurement starts; counters and wall
  // time of the measured stage exclude it. Expressed in full window
  // turnovers (tuples = warmup_windows * streams * window) or directly.
  double warmup_windows = 2;
  std::optional<uint64_t> warmup_tuples;  // paper-scale override

  std::vector<PhaseSpec> phases;    // at least one
  std::vector<EventSpec> schedule;

  // Strategy under test (a ProcessorKindName; `jiscbench run --strategy`
  // overrides) and shard count for the engine kinds.
  std::string strategy = "jisc";
  int parallelism = 1;

  // Record per-operator probe/insert service-time histograms (extra clock
  // reads on the hot path; off by default).
  bool service_times = false;

  // Live telemetry sampling and watchdog expectations ("telemetry" key).
  TelemetrySpec telemetry;

  // Straggler fault injection ("fault" key); requires parallelism > 1.
  FaultSpec fault;

  // Engine-side ingress resilience ("ingress" key).
  IngressSpec ingress;

  // Migration pacing ("migration" key).
  MigrationSpec migration;

  // Post-run latency assertions ("expect" key).
  ExpectSpec expect;

  // Include in the CI perf-gate pack (the soak spec opts out).
  bool gate = true;

  // Per-metric relative thresholds for `jiscbench compare`, e.g.
  // {"wall.measured_seconds": 0.5}. Counters are always exact-match and
  // cannot be loosened here.
  std::map<std::string, double> thresholds;
};

// Strategy-name lookup over workload/factory.h's ProcessorKindName table.
StatusOr<ProcessorKind> StrategyFromName(const std::string& name);

// Parse + validate. Unknown keys, wrong types, and semantically invalid
// values (phase of zero tuples, event offset past the run, fanout stream
// out of range, ...) are all InvalidArgument.
StatusOr<Spec> ParseSpec(const Json& json);
StatusOr<Spec> ParseSpecText(const std::string& text);
StatusOr<Spec> LoadSpecFile(const std::string& path);

// Inverse of ParseSpec; ParseSpec(SpecToJson(s)) reproduces s (the
// round-trip test in scenario_test locks this in).
Json SpecToJson(const Spec& spec);

// Semantic validation (also run by ParseSpec).
Status ValidateSpec(const Spec& spec);

// Sum of phase tuple counts at paper scale.
uint64_t TotalMeasuredTuples(const Spec& spec);

// The engine-level fluid configuration a spec's migration block selects.
FluidOptions ToFluidOptions(const MigrationSpec& migration);

}  // namespace scenario
}  // namespace jisc

#endif  // JISC_SCENARIO_SPEC_H_
