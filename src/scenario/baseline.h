#ifndef JISC_SCENARIO_BASELINE_H_
#define JISC_SCENARIO_BASELINE_H_

#include <string>
#include <vector>

#include "scenario/bundle.h"

namespace jisc {
namespace scenario {

// Baseline-diff logic behind `jiscbench compare`: a captured baseline
// bundle against a fresh run of the same scenario.
//
// Two metric classes, matching the bundle's determinism split:
//  * counters — deterministic work units; compared EXACTLY. Any drift, up
//    or down, is a finding: an improvement is still a behavior change that
//    must be acknowledged by re-capturing the baseline.
//  * wall / histogram metrics — machine-dependent; a relative threshold
//    applies, and only regressions (current above baseline) fail. Defaults
//    are deliberately loose (CI machines are noisy); a spec tightens them
//    per-metric via its `thresholds` map, carried inside the bundle.
//
// Stable exit codes (the CI contract): 0 pass, 3 regression, 4 spec error
// (mismatched identities, unreadable bundle, wrong version).
inline constexpr int kExitPass = 0;
inline constexpr int kExitRegression = 3;
inline constexpr int kExitSpecError = 4;

struct MetricDiff {
  std::string name;       // e.g. "counters.work_units"
  double baseline = 0;
  double current = 0;
  double rel_delta = 0;   // (current - baseline) / baseline; 0 if both 0
  double threshold = 0;   // allowed relative increase; 0 = exact
  bool exact = false;     // counter-class metric (exact match required)
  bool pass = true;
};

struct DiffResult {
  std::string scenario;
  std::string strategy;
  bool spec_error = false;
  std::string error;               // set when spec_error
  std::vector<MetricDiff> metrics;
  std::vector<std::string> failures;  // names of failing metrics

  bool pass() const { return !spec_error && failures.empty(); }
  int exit_code() const {
    if (spec_error) return kExitSpecError;
    return failures.empty() ? kExitPass : kExitRegression;
  }
};

// Default relative thresholds for the non-deterministic metrics, keyed the
// way diff.json names them. Spec thresholds override per key.
double DefaultThreshold(const std::string& metric_name);

DiffResult CompareRuns(const RunResult& baseline, const RunResult& current);

Json DiffToJson(const DiffResult& diff);

// Render as an aligned text table (what `jiscbench compare` prints, and
// what the CI job summary embeds).
std::string DiffToTable(const DiffResult& diff);

}  // namespace scenario
}  // namespace jisc

#endif  // JISC_SCENARIO_BASELINE_H_
