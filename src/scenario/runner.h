#ifndef JISC_SCENARIO_RUNNER_H_
#define JISC_SCENARIO_RUNNER_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "scenario/spec.h"

namespace jisc {
namespace scenario {

// Knobs the CLI layers on top of a spec. Anything overridden here is
// recorded in the evidence bundle, so a baseline captured with an override
// can never be silently compared against a run without it.
struct RunOptions {
  // Strategy override (a ProcessorKindName); empty = spec.strategy.
  std::string strategy;
  // Shard-count override; 0 = spec.parallelism.
  int parallelism = 0;
  // Seed override; spec.seed when nullopt.
  std::optional<uint64_t> seed;
  // Multiplies every paper-scale count in the spec (windows, phase tuple
  // counts, warmup, schedule offsets). CI's perf gate runs at 0.02.
  double scale = 1.0;
  // Keep the migration-phase spans for a Chrome trace export.
  bool capture_trace = false;
  // Telemetry sampling-period override in milliseconds. 0 = follow the
  // spec's telemetry section; non-zero forces telemetry on at this period
  // even when the spec leaves it off (`jiscbench run --telemetry`, the
  // perf-gate overhead probe).
  uint64_t telemetry_period_ms = 0;
};

// The sampled telemetry series of one run (empty/disabled unless the spec
// or RunOptions turned telemetry on). Machine- and timing-dependent: it is
// carried in the bundle's noisy "telemetry" section and never compared by
// `jiscbench compare`.
struct TelemetryResult {
  bool enabled = false;
  uint64_t period_ms = 0;
  int watchdog_samples = 0;
  uint64_t samples = 0;
  uint64_t dropped_snapshots = 0;
  std::vector<TelemetrySnapshot> series;
  // Final straggler-verdict count per track (0 = coordinator).
  std::vector<uint64_t> straggler_flags;
  // Ingress anomaly episodes the sampler's watchdog flagged (only when the
  // spec sets ingress.anomaly_threshold).
  uint64_t anomaly_episodes = 0;
};

// The outcome of one scenario run, split along the determinism boundary:
// `counters` is a pure function of (spec, strategy, seed, scale,
// parallelism) — byte-identical across runs — while the wall-clock section
// and the latency histograms vary with machine and load. `jiscbench
// compare` holds the first section to exact equality and thresholds the
// second.
struct RunResult {
  // Identity (compare refuses to diff across differing identities).
  std::string scenario;
  std::string strategy;
  uint64_t seed = 0;
  double scale = 1.0;
  int parallelism = 1;

  // Effective (scaled) magnitudes.
  uint64_t window = 0;
  uint64_t warmup_tuples = 0;
  uint64_t measured_tuples = 0;
  uint64_t transitions = 0;
  uint64_t checkpoint_restores = 0;
  // Measured arrivals consumed but never pushed (fault.drop_every and
  // fault.drop_burst). Deterministic, so `jiscbench compare` holds it to
  // exact equality.
  uint64_t dropped_arrivals = 0;
  // Measured arrivals re-delivered by fault.duplicate_every.
  uint64_t duplicated_arrivals = 0;
  // Measured arrivals delivered below the highest seq already delivered
  // (fault.reorder_window shuffling). Seed-stable, hence exact-compared.
  uint64_t reordered_arrivals = 0;
  // IngressGuard classification totals (zero when the guard is off). As
  // deterministic as the fault counts they answer.
  uint64_t duplicates_suppressed = 0;
  uint64_t reorder_restored = 0;
  uint64_t late_admitted = 0;
  uint64_t late_dropped = 0;

  // Deterministic work counters over the measured stage (warmup excluded):
  // Metrics::NamedCounters() deltas, in declaration order.
  std::vector<std::pair<std::string, uint64_t>> counters;

  // Wall-clock section (machine-dependent).
  double warmup_seconds = 0;
  double measured_seconds = 0;
  double throughput_tps = 0;

  // Latency quantiles from the observability bundle (output delay always;
  // probe/insert only when the spec enables service_times).
  std::vector<std::pair<std::string, HistogramSummary>> histograms;

  // Thresholds carried over from the spec for the compare step.
  std::map<std::string, double> thresholds;

  // Migration-phase spans (only when RunOptions::capture_trace).
  std::vector<TraceSpan> trace;
  uint64_t trace_dropped = 0;

  // Sampled telemetry time-series (only when telemetry was on).
  TelemetryResult telemetry;
};

// Executes the scenario to completion. Deterministic given identical
// (spec, options): the tuple sequence comes from the seeded synthetic
// source, schedule events fire at exact tuple offsets, and random_swap
// transitions derive their randomness from (seed, offset).
StatusOr<RunResult> RunScenario(const Spec& spec,
                                const RunOptions& options = RunOptions());

// Scaled-count helpers (shared with the CLI for progress reporting).
uint64_t ScaleCount(uint64_t paper_scale_count, double scale);
uint64_t ScaleWindow(uint64_t paper_scale_window, double scale);

}  // namespace scenario
}  // namespace jisc

#endif  // JISC_SCENARIO_RUNNER_H_
