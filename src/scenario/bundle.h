#ifndef JISC_SCENARIO_BUNDLE_H_
#define JISC_SCENARIO_BUNDLE_H_

#include <string>

#include "common/status.h"
#include "scenario/json.h"
#include "scenario/runner.h"

namespace jisc {
namespace scenario {

// The evidence bundle: run.json (and optionally a Chrome trace) written
// after a scenario run, re-read by `jiscbench compare`. The JSON layout
// mirrors RunResult's determinism split — everything under "counters" is
// exact-match reproducible, everything under "wall" / "histograms" is
// machine-dependent.

// Current bundle format version; bumped on incompatible layout changes so
// compare can reject a stale baseline with a clear message.
inline constexpr int kBundleVersion = 1;

// Full run.json document.
Json RunResultToJson(const RunResult& result);

// Canonical serialization of the deterministic section alone ("counters"
// plus the identity header). Two runs of the same (spec, strategy, seed,
// scale) must produce byte-identical output here — the determinism test
// and the docs both point at this function.
std::string SerializeDeterministic(const RunResult& result);

// Inverse of RunResultToJson (trace spans are not round-tripped; compare
// never needs them). Rejects unknown versions.
StatusOr<RunResult> RunResultFromJson(const Json& json);
StatusOr<RunResult> LoadRunFile(const std::string& path);

// Writes run.json to `run_path`. When `trace_path` is non-empty and the
// result captured spans, also writes a Chrome trace_event file loadable in
// chrome://tracing / ui.perfetto.dev.
Status WriteRunBundle(const RunResult& result, const std::string& run_path,
                      const std::string& trace_path = "");

}  // namespace scenario
}  // namespace jisc

#endif  // JISC_SCENARIO_BUNDLE_H_
