#include "scenario/baseline.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace jisc {
namespace scenario {
namespace {

// Absolute slack under which a thresholded (wall-clock) metric can never
// fail: relative comparison on near-zero latencies is pure noise. 50us for
// nanosecond histogram quantiles, 50ms for wall seconds.
constexpr double kMinLatencyDeltaNs = 50'000;
constexpr double kMinWallDeltaSeconds = 0.05;

double RelDelta(double baseline, double current) {
  if (baseline == 0) return current == 0 ? 0 : 1;
  return (current - baseline) / baseline;
}

void AddExact(DiffResult* diff, const std::string& name, double baseline,
              double current) {
  MetricDiff md;
  md.name = name;
  md.baseline = baseline;
  md.current = current;
  md.rel_delta = RelDelta(baseline, current);
  md.threshold = 0;
  md.exact = true;
  md.pass = baseline == current;
  if (!md.pass) diff->failures.push_back(name);
  diff->metrics.push_back(std::move(md));
}

void AddThresholded(DiffResult* diff, const std::string& name,
                    double baseline, double current, double threshold,
                    double min_abs_delta) {
  MetricDiff md;
  md.name = name;
  md.baseline = baseline;
  md.current = current;
  md.rel_delta = RelDelta(baseline, current);
  md.threshold = threshold;
  md.exact = false;
  // Only a regression (current above baseline) can fail, and only when it
  // clears both the relative threshold and the absolute noise floor.
  md.pass = current <= baseline * (1 + threshold) ||
            current - baseline <= min_abs_delta;
  if (!md.pass) diff->failures.push_back(name);
  diff->metrics.push_back(std::move(md));
}

const HistogramSummary* FindHistogram(const RunResult& r,
                                      const std::string& name) {
  for (const auto& [n, s] : r.histograms) {
    if (n == name) return &s;
  }
  return nullptr;
}

double ThresholdFor(const RunResult& current, const std::string& name) {
  auto it = current.thresholds.find(name);
  if (it != current.thresholds.end()) return it->second;
  return DefaultThreshold(name);
}

Json MetricJson(const MetricDiff& md) {
  Json m = Json::Object();
  m.Set("name", md.name);
  if (md.exact) {
    m.Set("baseline", static_cast<int64_t>(md.baseline));
    m.Set("current", static_cast<int64_t>(md.current));
  } else {
    m.Set("baseline", md.baseline);
    m.Set("current", md.current);
  }
  m.Set("rel_delta", md.rel_delta);
  m.Set("threshold", md.threshold);
  m.Set("exact", md.exact);
  m.Set("pass", md.pass);
  return m;
}

}  // namespace

double DefaultThreshold(const std::string& metric_name) {
  if (metric_name == "wall.measured_seconds") return 0.5;
  // Histogram latency quantiles: CI runners are shared and noisy; default
  // to allowing a 2x excursion before failing. Specs tighten per metric.
  if (metric_name.rfind("hist.", 0) == 0) return 1.0;
  return 0.5;
}

DiffResult CompareRuns(const RunResult& baseline, const RunResult& current) {
  DiffResult diff;
  diff.scenario = current.scenario;
  diff.strategy = current.strategy;

  auto spec_error = [&diff](const std::string& msg) {
    diff.spec_error = true;
    diff.error = msg;
    return diff;
  };

  // Identity: a diff across different experiments is meaningless.
  if (baseline.scenario != current.scenario) {
    return spec_error("scenario mismatch: baseline '" + baseline.scenario +
                      "' vs current '" + current.scenario + "'");
  }
  if (baseline.strategy != current.strategy) {
    return spec_error("strategy mismatch: baseline '" + baseline.strategy +
                      "' vs current '" + current.strategy + "'");
  }
  if (baseline.seed != current.seed) {
    return spec_error("seed mismatch (baseline and run must use the same "
                      "seed)");
  }
  if (baseline.scale != current.scale) {
    std::ostringstream os;
    os << "scale mismatch: baseline " << baseline.scale << " vs current "
       << current.scale << " (re-capture or re-run at the same scale)";
    return spec_error(os.str());
  }
  if (baseline.parallelism != current.parallelism) {
    return spec_error("parallelism mismatch");
  }
  // Shape: same identity must yield the same workload dimensions; a
  // mismatch means the spec itself changed under the baseline.
  if (baseline.window != current.window ||
      baseline.warmup_tuples != current.warmup_tuples ||
      baseline.measured_tuples != current.measured_tuples) {
    return spec_error("workload shape mismatch (window/warmup/measured "
                      "tuples changed; re-capture the baseline)");
  }

  // Deterministic section: exact.
  AddExact(&diff, "shape.transitions",
           static_cast<double>(baseline.transitions),
           static_cast<double>(current.transitions));
  AddExact(&diff, "shape.checkpoint_restores",
           static_cast<double>(baseline.checkpoint_restores),
           static_cast<double>(current.checkpoint_restores));
  AddExact(&diff, "shape.dropped_arrivals",
           static_cast<double>(baseline.dropped_arrivals),
           static_cast<double>(current.dropped_arrivals));
  AddExact(&diff, "shape.duplicated_arrivals",
           static_cast<double>(baseline.duplicated_arrivals),
           static_cast<double>(current.duplicated_arrivals));
  AddExact(&diff, "shape.reordered_arrivals",
           static_cast<double>(baseline.reordered_arrivals),
           static_cast<double>(current.reordered_arrivals));
  AddExact(&diff, "shape.duplicates_suppressed",
           static_cast<double>(baseline.duplicates_suppressed),
           static_cast<double>(current.duplicates_suppressed));
  AddExact(&diff, "shape.reorder_restored",
           static_cast<double>(baseline.reorder_restored),
           static_cast<double>(current.reorder_restored));
  AddExact(&diff, "shape.late_admitted",
           static_cast<double>(baseline.late_admitted),
           static_cast<double>(current.late_admitted));
  AddExact(&diff, "shape.late_dropped",
           static_cast<double>(baseline.late_dropped),
           static_cast<double>(current.late_dropped));
  for (const auto& [name, value] : current.counters) {
    const auto it = std::find_if(
        baseline.counters.begin(), baseline.counters.end(),
        [&name = name](const auto& kv) { return kv.first == name; });
    if (it == baseline.counters.end()) {
      return spec_error("counter '" + name +
                        "' absent from baseline (re-capture)");
    }
    AddExact(&diff, "counters." + name, static_cast<double>(it->second),
             static_cast<double>(value));
  }
  for (const auto& [name, value] : baseline.counters) {
    bool in_current = std::any_of(
        current.counters.begin(), current.counters.end(),
        [&name = name](const auto& kv) { return kv.first == name; });
    if (!in_current) {
      return spec_error("counter '" + name +
                        "' absent from current run (re-capture)");
    }
  }

  // Wall-clock section: thresholded, regressions only.
  AddThresholded(&diff, "wall.measured_seconds", baseline.measured_seconds,
                 current.measured_seconds,
                 ThresholdFor(current, "wall.measured_seconds"),
                 kMinWallDeltaSeconds);

  // Histogram quantiles present on both sides.
  for (const auto& [name, summary] : current.histograms) {
    const HistogramSummary* base = FindHistogram(baseline, name);
    if (base == nullptr || base->count == 0 || summary.count == 0) continue;
    struct Quantile {
      const char* qname;
      uint64_t baseline_value;
      uint64_t current_value;
    };
    const Quantile quantiles[] = {{"p50", base->p50, summary.p50},
                                  {"p99", base->p99, summary.p99}};
    for (const Quantile& q : quantiles) {
      std::string metric = "hist." + name + "." + q.qname;
      AddThresholded(&diff, metric, static_cast<double>(q.baseline_value),
                     static_cast<double>(q.current_value),
                     ThresholdFor(current, metric), kMinLatencyDeltaNs);
    }
  }
  return diff;
}

Json DiffToJson(const DiffResult& diff) {
  Json j = Json::Object();
  j.Set("scenario", diff.scenario);
  j.Set("strategy", diff.strategy);
  j.Set("status", diff.spec_error
                      ? "spec_error"
                      : (diff.failures.empty() ? "pass" : "regression"));
  j.Set("exit_code", diff.exit_code());
  if (diff.spec_error) j.Set("error", diff.error);
  Json failures = Json::Array();
  for (const std::string& name : diff.failures) failures.Append(name);
  j.Set("failures", std::move(failures));
  Json metrics = Json::Array();
  for (const MetricDiff& md : diff.metrics) metrics.Append(MetricJson(md));
  j.Set("metrics", std::move(metrics));
  return j;
}

std::string DiffToTable(const DiffResult& diff) {
  std::ostringstream os;
  os << "scenario " << diff.scenario << " / " << diff.strategy << "\n";
  if (diff.spec_error) {
    os << "SPEC ERROR: " << diff.error << "\n";
    return os.str();
  }
  size_t width = 4;
  for (const MetricDiff& md : diff.metrics) {
    width = std::max(width, md.name.size());
  }
  os << std::left << std::setw(static_cast<int>(width)) << "name"
     << std::right << std::setw(16) << "baseline" << std::setw(16)
     << "current" << std::setw(10) << "delta" << std::setw(10) << "thresh"
     << "  status\n";
  for (const MetricDiff& md : diff.metrics) {
    os << std::left << std::setw(static_cast<int>(width)) << md.name
       << std::right;
    auto put_value = [&os](double v, bool exact) {
      if (exact) {
        os << std::setw(16) << static_cast<int64_t>(v);
      } else {
        os << std::setw(16) << std::fixed << std::setprecision(4) << v
           << std::defaultfloat;
      }
    };
    put_value(md.baseline, md.exact);
    put_value(md.current, md.exact);
    os << std::setw(9) << std::fixed << std::setprecision(2)
       << md.rel_delta * 100 << "%" << std::defaultfloat;
    if (md.exact) {
      os << std::setw(10) << "exact";
    } else {
      os << std::setw(9) << std::fixed << std::setprecision(0)
         << md.threshold * 100 << "%" << std::defaultfloat;
    }
    os << "  " << (md.pass ? "ok" : "FAIL") << "\n";
  }
  os << (diff.failures.empty()
             ? "PASS"
             : "REGRESSION in " + std::to_string(diff.failures.size()) +
                   " metric(s)")
     << "\n";
  return os.str();
}

}  // namespace scenario
}  // namespace jisc
