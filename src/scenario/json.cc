#include "scenario/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace jisc {
namespace {

// Serialization depth guard; specs and bundles are a handful of levels
// deep, anything past this is a cycle or a hostile input.
constexpr int kMaxDepth = 100;

void WriteEscaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (char raw : s) {
    auto c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\b':
        os << "\\b";
        break;
      case '\f':
        os << "\\f";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << raw;
        }
    }
  }
  os << '"';
}

// Shortest round-trip double formatting (printf %.17g trimmed would be
// noisy; %.*g probing keeps wall-clock numbers readable and exact).
void WriteDouble(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    // JSON has no Inf/NaN; null is the conventional stand-in.
    os << "null";
    return;
  }
  char buf[40];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  os << buf;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  StatusOr<Json> ParseDocument() {
    SkipWs();
    Json value;
    Status s = ParseValue(&value, 0);
    if (!s.ok()) return s;
    SkipWs();
    if (pos_ != text_.size()) return Error("trailing content after document");
    return value;
  }

 private:
  Status Error(const std::string& msg) const {
    size_t line = 1;
    size_t col = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    std::ostringstream os;
    os << "json: " << msg << " at line " << line << " column " << col;
    return Status::InvalidArgument(os.str());
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* w) {
    size_t n = std::char_traits<char>::length(w);
    if (text_.compare(pos_, n, w) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Status ParseValue(Json* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        Status st = ParseString(&s);
        if (!st.ok()) return st;
        *out = Json(std::move(s));
        return Status::Ok();
      }
      case 't':
        if (ConsumeWord("true")) {
          *out = Json(true);
          return Status::Ok();
        }
        return Error("invalid literal");
      case 'f':
        if (ConsumeWord("false")) {
          *out = Json(false);
          return Status::Ok();
        }
        return Error("invalid literal");
      case 'n':
        if (ConsumeWord("null")) {
          *out = Json();
          return Status::Ok();
        }
        return Error("invalid literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(Json* out, int depth) {
    ++pos_;  // '{'
    *out = Json::Object();
    SkipWs();
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      Status s = ParseString(&key);
      if (!s.ok()) return s;
      if (out->Find(key) != nullptr) return Error("duplicate key '" + key + "'");
      SkipWs();
      if (!Consume(':')) return Error("expected ':'");
      SkipWs();
      Json value;
      s = ParseValue(&value, depth + 1);
      if (!s.ok()) return s;
      out->Set(key, std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::Ok();
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(Json* out, int depth) {
    ++pos_;  // '['
    *out = Json::Array();
    SkipWs();
    if (Consume(']')) return Status::Ok();
    while (true) {
      SkipWs();
      Json value;
      Status s = ParseValue(&value, depth + 1);
      if (!s.ok()) return s;
      out->Append(std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::Ok();
      return Error("expected ',' or ']'");
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + static_cast<size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid \\u escape");
      }
    }
    pos_ += 4;
    *out = v;
    return Status::Ok();
  }

  static void AppendUtf8(std::string* s, uint32_t cp) {
    if (cp < 0x80) {
      s->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      s->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      s->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      s->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          uint32_t cp = 0;
          Status s = ParseHex4(&cp);
          if (!s.ok()) return s;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (!ConsumeWord("\\u")) return Error("unpaired surrogate");
            uint32_t lo = 0;
            s = ParseHex4(&lo);
            if (!s.ok()) return s;
            if (lo < 0xDC00 || lo > 0xDFFF) return Error("unpaired surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired surrogate");
          }
          AppendUtf8(out, cp);
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
  }

  Status ParseNumber(Json* out) {
    size_t start = pos_;
    if (Consume('-')) {
    }
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(
                                    text_[pos_]))) {
      return Error("invalid number");
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool is_double = false;
    if (Consume('.')) {
      is_double = true;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(
                                      text_[pos_]))) {
        return Error("invalid number");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(
                                      text_[pos_]))) {
        return Error("invalid number");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    std::string token = text_.substr(start, pos_ - start);
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        *out = Json(static_cast<int64_t>(v));
        return Status::Ok();
      }
      // Fall through to double on int64 overflow.
    }
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("invalid number");
    *out = Json(d);
    return Status::Ok();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

void Json::Set(const std::string& key, Json v) {
  for (auto& member : members_) {
    if (member.first == key) {
      member.second = std::move(v);
      return;
    }
  }
  members_.emplace_back(key, std::move(v));
}

const Json* Json::Find(const std::string& key) const {
  for (const auto& member : members_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

void Json::Write(std::ostream& os, int indent, int depth) const {
  auto newline_pad = [&os, indent](int d) {
    if (indent < 0) return;
    os << '\n';
    for (int i = 0; i < d * indent; ++i) os << ' ';
  };
  switch (kind_) {
    case Kind::kNull:
      os << "null";
      break;
    case Kind::kBool:
      os << (bool_ ? "true" : "false");
      break;
    case Kind::kInt:
      os << int_;
      break;
    case Kind::kDouble:
      WriteDouble(os, double_);
      break;
    case Kind::kString:
      WriteEscaped(os, string_);
      break;
    case Kind::kArray: {
      if (items_.empty()) {
        os << "[]";
        break;
      }
      os << '[';
      bool first = true;
      for (const Json& item : items_) {
        if (!first) os << ',';
        first = false;
        newline_pad(depth + 1);
        item.Write(os, indent, depth + 1);
      }
      newline_pad(depth);
      os << ']';
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        os << "{}";
        break;
      }
      os << '{';
      bool first = true;
      for (const auto& [key, value] : members_) {
        if (!first) os << ',';
        first = false;
        newline_pad(depth + 1);
        WriteEscaped(os, key);
        os << (indent < 0 ? ":" : ": ");
        value.Write(os, indent, depth + 1);
      }
      newline_pad(depth);
      os << '}';
      break;
    }
  }
}

std::string Json::Dump() const {
  std::ostringstream os;
  Write(os, -1);
  return os.str();
}

std::string Json::Pretty() const {
  std::ostringstream os;
  Write(os, 2);
  os << '\n';
  return os.str();
}

StatusOr<Json> Json::Parse(const std::string& text) {
  Parser parser(text);
  return parser.ParseDocument();
}

}  // namespace jisc
