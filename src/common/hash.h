#ifndef JISC_COMMON_HASH_H_
#define JISC_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

namespace jisc {

// 64-bit FNV-1a over raw bytes.
inline uint64_t Fnv1a(const void* data, size_t len,
                      uint64_t seed = 0xcbf29ce484222325ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Mixes one 64-bit word into a running hash (boost::hash_combine-style but
// with a 64-bit golden-ratio constant).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

// Finalizer for integer keys (splitmix64 mix); used as the hash function of
// state hash tables so sequential keys spread well.
inline uint64_t MixU64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

struct I64Hash {
  size_t operator()(int64_t v) const {
    return static_cast<size_t>(MixU64(static_cast<uint64_t>(v)));
  }
};

struct U64Hash {
  size_t operator()(uint64_t v) const { return static_cast<size_t>(MixU64(v)); }
};

}  // namespace jisc

#endif  // JISC_COMMON_HASH_H_
