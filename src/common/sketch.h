#ifndef JISC_COMMON_SKETCH_H_
#define JISC_COMMON_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/hash.h"

namespace jisc {

// Count-Min sketch over 64-bit keys: frequency estimation with one-sided
// (over-)estimation error. At paper scale the optimize-at-runtime trigger
// cannot afford exact per-value statistics; sketches are the standard
// substitute (width w, depth d give error <= e*N/w with prob 1-2^-d-ish).
class CountMinSketch {
 public:
  CountMinSketch(size_t width, size_t depth);

  void Add(uint64_t key, uint64_t count = 1);
  // Point estimate; never underestimates the true count.
  uint64_t Estimate(uint64_t key) const;

  uint64_t total() const { return total_; }
  size_t width() const { return width_; }
  size_t depth() const { return depth_; }

  void Merge(const CountMinSketch& other);
  void Clear();

 private:
  size_t Cell(size_t row, uint64_t key) const;

  size_t width_;
  size_t depth_;
  uint64_t total_ = 0;
  std::vector<uint64_t> cells_;  // depth x width
};

// HyperLogLog distinct-count estimator over 64-bit keys (2^precision
// registers; standard error ~ 1.04 / sqrt(m)). Used to estimate a stream's
// distinct join values -- the quantity the Section 4.3 counters and the
// adaptive trigger's fan-out scores are built from -- without storing the
// values.
class HyperLogLog {
 public:
  explicit HyperLogLog(int precision = 12);  // 4096 registers

  void Add(uint64_t key);
  double Estimate() const;

  void Merge(const HyperLogLog& other);
  void Clear();

  int precision() const { return precision_; }

 private:
  int precision_;
  size_t m_;  // number of registers
  double alpha_;
  std::vector<uint8_t> registers_;
};

}  // namespace jisc

#endif  // JISC_COMMON_SKETCH_H_
