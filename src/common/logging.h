#ifndef JISC_COMMON_LOGGING_H_
#define JISC_COMMON_LOGGING_H_

#include <cstdlib>
#include <ostream>
#include <sstream>
#include <string>

namespace jisc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

// Accumulates one log line and emits it (to stderr) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Like LogMessage but aborts the process after emitting.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace jisc

#define JISC_LOG(level)                                                \
  ::jisc::internal_logging::LogMessage(::jisc::LogLevel::k##level,     \
                                       __FILE__, __LINE__)             \
      .stream()

// Always-on invariant check. The engine uses it for internal invariants
// whose violation means a bug, not a recoverable user error.
#define JISC_CHECK(cond)                                                 \
  if (cond) {                                                            \
  } else /* NOLINT */                                                    \
    ::jisc::internal_logging::FatalLogMessage(__FILE__, __LINE__, #cond) \
        .stream()

#ifdef NDEBUG
#define JISC_DCHECK(cond) JISC_CHECK(true || (cond))
#else
#define JISC_DCHECK(cond) JISC_CHECK(cond)
#endif

#endif  // JISC_COMMON_LOGGING_H_
