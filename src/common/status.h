#ifndef JISC_COMMON_STATUS_H_
#define JISC_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace jisc {

// Error codes used across the library. The engine never throws on expected
// failure paths; fallible operations return a Status (or StatusOr<T>).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kUnimplemented,
};

// Returns a stable human-readable name ("Ok", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

// A cheap value type describing the outcome of an operation.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "Ok" or "InvalidArgument: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Minimal StatusOr: either an OK status plus a value, or a non-OK status.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  // NOLINTNEXTLINE(google-explicit-constructor)
  StatusOr(T value) : status_(), value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  StatusOr(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  // Precondition: ok(). Checked builds abort otherwise via the caller's
  // JISC_CHECK; release callers must test ok() first.
  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

 private:
  Status status_;
  T value_{};
};

}  // namespace jisc

#endif  // JISC_COMMON_STATUS_H_
