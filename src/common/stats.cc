#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace jisc {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0;
  return m2_ / static_cast<double>(count_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

ThroughputSeries::ThroughputSeries(uint64_t bucket_width)
    : bucket_width_(bucket_width) {
  JISC_CHECK(bucket_width > 0);
}

void ThroughputSeries::Record(uint64_t t, uint64_t n) {
  size_t idx = static_cast<size_t>(t / bucket_width_);
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
  buckets_[idx] += n;
}

}  // namespace jisc
