#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace jisc {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0;
  return m2_ / static_cast<double>(count_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

namespace {
// Index of the exponential bucket holding `value`: bucket b holds
// [2^(b-1), 2^b) for b >= 1, bucket 0 holds {0}.
int BucketIndex(uint64_t value) {
  if (value == 0) return 0;
  return 64 - __builtin_clzll(value);
}
}  // namespace

Histogram::Histogram() : buckets_(kBuckets, 0) {}

void Histogram::Add(uint64_t value) {
  int idx = BucketIndex(value);
  JISC_DCHECK(idx < kBuckets);
  buckets_[idx] += 1;
  ++count_;
  sum_ += value;
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

double Histogram::mean() const {
  if (count_ == 0) return 0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

uint64_t Histogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  int64_t target = static_cast<int64_t>(std::ceil(q * count_));
  target = std::max<int64_t>(target, 1);
  int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      // Upper bound of bucket i.
      return i == 0 ? 0 : (1ULL << i) - 1;
    }
  }
  return max_;
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "count=" << count_ << " mean=" << mean() << " p50=" << Percentile(0.5)
     << " p99=" << Percentile(0.99) << " max=" << max_;
  return os.str();
}

ThroughputSeries::ThroughputSeries(uint64_t bucket_width)
    : bucket_width_(bucket_width) {
  JISC_CHECK(bucket_width > 0);
}

void ThroughputSeries::Record(uint64_t t, uint64_t n) {
  size_t idx = static_cast<size_t>(t / bucket_width_);
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
  buckets_[idx] += n;
}

}  // namespace jisc
