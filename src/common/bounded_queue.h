#ifndef JISC_COMMON_BOUNDED_QUEUE_H_
#define JISC_COMMON_BOUNDED_QUEUE_H_

#include <cstddef>
#include <deque>
#include <utility>

#include "common/logging.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace jisc {

// Bounded blocking multi-producer / multi-consumer queue. The parallel
// execution engine uses it wherever more than one thread may produce into
// the same channel (worker -> coordinator acknowledgements); the
// single-producer shard feeds use SpscQueue instead.
//
// Backpressure: Push blocks while the queue is full. Shutdown/drain
// protocol: Close() wakes every waiter; subsequent Push calls are rejected,
// while Pop keeps returning buffered items until the queue is empty and
// only then reports exhaustion. This makes "close, then join the consumer"
// a loss-free drain.
//
// Concurrency contract (compiler-checked): items_ and closed_ are only
// touched under mu_; notifies are issued after the lock is dropped, so a
// woken peer never immediately blocks on the still-held mutex (and the
// notify path can never re-enter mu_ — the self-deadlock shape fixed in
// SpscQueue in PR 1 is structurally impossible here; see
// tests/parallel_test.cc BoundedQueueTest.*Parked* for the regression
// guards).
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    JISC_CHECK(capacity_ >= 1);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks while full. Returns false (and drops `v`) if the queue was
  // closed before space became available.
  bool Push(T v) JISC_EXCLUDES(mu_) {
    {
      ReleasableMutexLock lk(&mu_);
      while (!closed_ && items_.size() >= capacity_) not_full_.Wait(&mu_);
      if (closed_) return false;
      items_.push_back(std::move(v));
      lk.Release();
    }
    not_empty_.NotifyOne();
    return true;
  }

  // Non-blocking push; false when full or closed.
  bool TryPush(T& v) JISC_EXCLUDES(mu_) {
    {
      MutexLock lk(&mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(v));
    }
    not_empty_.NotifyOne();
    return true;
  }

  // Blocks while empty and open. Returns false only when the queue is
  // closed AND fully drained.
  bool Pop(T* out) JISC_EXCLUDES(mu_) {
    {
      ReleasableMutexLock lk(&mu_);
      while (!closed_ && items_.empty()) not_empty_.Wait(&mu_);
      if (items_.empty()) return false;  // closed and drained
      *out = std::move(items_.front());
      items_.pop_front();
      lk.Release();
    }
    not_full_.NotifyOne();
    return true;
  }

  // Non-blocking pop; false when nothing is buffered.
  bool TryPop(T* out) JISC_EXCLUDES(mu_) {
    {
      MutexLock lk(&mu_);
      if (items_.empty()) return false;
      *out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.NotifyOne();
    return true;
  }

  void Close() JISC_EXCLUDES(mu_) {
    {
      MutexLock lk(&mu_);
      closed_ = true;
    }
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  bool closed() const JISC_EXCLUDES(mu_) {
    MutexLock lk(&mu_);
    return closed_;
  }

  size_t size() const JISC_EXCLUDES(mu_) {
    MutexLock lk(&mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  CondVar not_full_;
  CondVar not_empty_;
  std::deque<T> items_ JISC_GUARDED_BY(mu_);
  bool closed_ JISC_GUARDED_BY(mu_) = false;
};

}  // namespace jisc

#endif  // JISC_COMMON_BOUNDED_QUEUE_H_
