#ifndef JISC_COMMON_BOUNDED_QUEUE_H_
#define JISC_COMMON_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "common/logging.h"

namespace jisc {

// Bounded blocking multi-producer / multi-consumer queue. The parallel
// execution engine uses it wherever more than one thread may produce into
// the same channel (worker -> coordinator acknowledgements); the
// single-producer shard feeds use SpscQueue instead.
//
// Backpressure: Push blocks while the queue is full. Shutdown/drain
// protocol: Close() wakes every waiter; subsequent Push calls are rejected,
// while Pop keeps returning buffered items until the queue is empty and
// only then reports exhaustion. This makes "close, then join the consumer"
// a loss-free drain.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    JISC_CHECK(capacity_ >= 1);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks while full. Returns false (and drops `v`) if the queue was
  // closed before space became available.
  bool Push(T v) {
    std::unique_lock<std::mutex> lk(mu_);
    not_full_.wait(lk, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(v));
    lk.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking push; false when full or closed.
  bool TryPush(T& v) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(v));
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocks while empty and open. Returns false only when the queue is
  // closed AND fully drained.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lk(mu_);
    not_empty_.wait(lk, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed and drained
    *out = std::move(items_.front());
    items_.pop_front();
    lk.unlock();
    not_full_.notify_one();
    return true;
  }

  // Non-blocking pop; false when nothing is buffered.
  bool TryPop(T* out) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (items_.empty()) return false;
      *out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return true;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lk(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace jisc

#endif  // JISC_COMMON_BOUNDED_QUEUE_H_
