#include "common/env.h"

#include <cstdlib>

namespace jisc {

double GetEnvDouble(const std::string& name, double default_value) {
  // Nothing in the process calls setenv/putenv, so the getenv data race
  // concurrency-mt-unsafe warns about cannot occur.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return default_value;
  char* end = nullptr;
  double v = std::strtod(raw, &end);
  if (end == raw) return default_value;
  return v;
}

int64_t GetEnvInt(const std::string& name, int64_t default_value) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): see GetEnvDouble above.
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return default_value;
  char* end = nullptr;
  int64_t v = std::strtoll(raw, &end, 10);
  if (end == raw) return default_value;
  return v;
}

double BenchScale() {
  static const double scale = GetEnvDouble("JISC_BENCH_SCALE", 0.02);
  return scale;
}

}  // namespace jisc
