#ifndef JISC_COMMON_THREAD_ANNOTATIONS_H_
#define JISC_COMMON_THREAD_ANNOTATIONS_H_

// Capability annotations for Clang's -Wthread-safety analysis, plus the
// project's own JISC_COORDINATOR_ONLY marker. These macros turn the repo's
// threading contracts ("this field is protected by that mutex", "this method
// must hold the lock", "this API may only be driven by the coordinator
// thread") into machine-checked declarations instead of prose: the CI
// static-analysis job compiles with -Werror=thread-safety and runs
// tools/lint_contracts.py, so a violated contract fails the build rather
// than surfacing later under TSan.
//
// The std::mutex shipped with libstdc++ carries none of these attributes,
// so the analysis cannot see std::lock_guard acquisitions. Guarded state
// must use the annotated wrappers in common/mutex.h (jisc::Mutex,
// jisc::MutexLock, jisc::CondVar); naked std::mutex members are rejected
// by tools/lint_contracts.py.
//
// Under GCC (which has no thread-safety analysis) every macro expands to
// nothing; the contracts are enforced by the clang CI job.

#if defined(__clang__) && defined(__has_attribute)
#define JISC_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define JISC_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

// Declares a type to be a capability ("mutex" in diagnostics). Example:
//   class JISC_CAPABILITY("mutex") Mutex { ... };
#define JISC_CAPABILITY(x) JISC_THREAD_ANNOTATION_(capability(x))

// Declares an RAII type that acquires a capability in its constructor and
// releases it in its destructor (MutexLock).
#define JISC_SCOPED_CAPABILITY JISC_THREAD_ANNOTATION_(scoped_lockable)

// Field annotation: reads/writes require the given capability to be held.
//   std::deque<T> items_ JISC_GUARDED_BY(mu_);
#define JISC_GUARDED_BY(x) JISC_THREAD_ANNOTATION_(guarded_by(x))

// Pointer-field annotation: dereferencing requires the capability (the
// pointer itself may be read freely).
#define JISC_PT_GUARDED_BY(x) JISC_THREAD_ANNOTATION_(pt_guarded_by(x))

// Function annotation: the caller must hold the listed capabilities.
#define JISC_REQUIRES(...) \
  JISC_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

// Function annotation: the caller must NOT hold the listed capabilities
// (the function acquires them itself, or acquiring would self-deadlock).
#define JISC_EXCLUDES(...) JISC_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// Function annotations: the function acquires / releases the capabilities.
#define JISC_ACQUIRE(...) \
  JISC_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define JISC_RELEASE(...) \
  JISC_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

// Function annotation: acquires the capability iff the returned value
// matches the first argument.
#define JISC_TRY_ACQUIRE(...) \
  JISC_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

// Function annotation: asserts (at runtime, from the analysis' point of
// view) that the capability is already held.
#define JISC_ASSERT_CAPABILITY(x) \
  JISC_THREAD_ANNOTATION_(assert_capability(x))

// Function returning a reference to the capability guarding its result.
#define JISC_RETURN_CAPABILITY(x) JISC_THREAD_ANNOTATION_(lock_returned(x))

// Escape hatch; every use must carry a comment saying why the analysis is
// wrong for this function.
#define JISC_NO_THREAD_SAFETY_ANALYSIS \
  JISC_THREAD_ANNOTATION_(no_thread_safety_analysis)

// Project marker (not part of clang's analysis): the annotated function may
// only be called from the coordinator thread — the one thread driving a
// StreamProcessor's public surface. Worker-thread entry points (see
// tools/lint_contracts.py --list-checks, check `coordinator-only`) are
// forbidden from calling it; the lint enforces this, since clang's
// per-function analysis cannot express thread identity. Under clang the
// marker is also recorded in the AST as an `annotate` attribute so future
// clang-query tooling can match on it.
#if defined(__clang__)
#define JISC_COORDINATOR_ONLY \
  __attribute__((annotate("jisc::coordinator_only")))
#else
#define JISC_COORDINATOR_ONLY
#endif

#endif  // JISC_COMMON_THREAD_ANNOTATIONS_H_
