#ifndef JISC_COMMON_STATS_H_
#define JISC_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace jisc {

// Welford running mean/variance accumulator.
class RunningStat {
 public:
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return mean_; }
  // Population variance; 0 when fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// Fixed-bucket latency/size histogram with percentile queries. Buckets are
// exponential (powers of 2) over [0, 2^62).
class Histogram {
 public:
  Histogram();

  void Add(uint64_t value);
  void Merge(const Histogram& other);

  int64_t count() const { return count_; }
  uint64_t max() const { return max_; }
  double mean() const;
  // Approximate percentile (bucket upper bound); q in [0, 1].
  uint64_t Percentile(double q) const;

  std::string ToString() const;

 private:
  static constexpr int kBuckets = 64;
  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
};

// Throughput series: records per-bucket event counts against a logical clock
// (e.g. tuples processed per 10k-tuple interval) so migration-stage drops are
// visible in benchmarks.
class ThroughputSeries {
 public:
  explicit ThroughputSeries(uint64_t bucket_width);

  // Records `n` events at logical time `t`.
  void Record(uint64_t t, uint64_t n = 1);

  const std::vector<uint64_t>& buckets() const { return buckets_; }
  uint64_t bucket_width() const { return bucket_width_; }

 private:
  uint64_t bucket_width_;
  std::vector<uint64_t> buckets_;
};

}  // namespace jisc

#endif  // JISC_COMMON_STATS_H_
