#ifndef JISC_COMMON_STATS_H_
#define JISC_COMMON_STATS_H_

#include <cstdint>
#include <vector>

namespace jisc {

// Welford running mean/variance accumulator.
class RunningStat {
 public:
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return mean_; }
  // Population variance; 0 when fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// The latency/size histogram that used to live here moved to
// obs/histogram.h: the observability layer's log-linear jisc::Histogram is
// lock-free, mergeable across shards, and bounds the relative bucket error,
// all of which the old power-of-2 sketch lacked.

// Throughput series: records per-bucket event counts against a logical clock
// (e.g. tuples processed per 10k-tuple interval) so migration-stage drops are
// visible in benchmarks.
class ThroughputSeries {
 public:
  explicit ThroughputSeries(uint64_t bucket_width);

  // Records `n` events at logical time `t`.
  void Record(uint64_t t, uint64_t n = 1);

  const std::vector<uint64_t>& buckets() const { return buckets_; }
  uint64_t bucket_width() const { return bucket_width_; }

 private:
  uint64_t bucket_width_;
  std::vector<uint64_t> buckets_;
};

}  // namespace jisc

#endif  // JISC_COMMON_STATS_H_
