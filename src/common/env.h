#ifndef JISC_COMMON_ENV_H_
#define JISC_COMMON_ENV_H_

#include <cstdint>
#include <string>

namespace jisc {

// Returns the value of environment variable `name` parsed as double, or
// `default_value` when unset/unparsable. Used by the benchmark harness for
// JISC_BENCH_SCALE.
double GetEnvDouble(const std::string& name, double default_value);

int64_t GetEnvInt(const std::string& name, int64_t default_value);

// The global benchmark scale factor (JISC_BENCH_SCALE, default 0.02).
// 1.0 approximates paper scale (10M tuples, 10k windows); the default keeps
// every bench under a couple of minutes on a single core.
double BenchScale();

}  // namespace jisc

#endif  // JISC_COMMON_ENV_H_
