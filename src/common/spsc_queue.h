#ifndef JISC_COMMON_SPSC_QUEUE_H_
#define JISC_COMMON_SPSC_QUEUE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace jisc {

// Bounded single-producer / single-consumer ring buffer. The hot path
// (TryPush/TryPop) is lock-free: head and tail are published with
// release/acquire pairs, so exactly one producer thread and one consumer
// thread may use the queue concurrently. The parallel execution engine uses
// one per shard as the coordinator -> worker feed.
//
// The blocking wrappers (Push/Pop) implement backpressure: they spin
// briefly, then park on a condition variable with a short timeout. Timed
// waits make the sleep path immune to missed-wakeup races without an
// elaborate eventcount protocol; the unconditional notify on the opposite
// transition keeps the common case prompt.
//
// Shutdown/drain: Close() rejects further pushes and wakes waiters; Pop
// keeps draining buffered items and reports exhaustion only once the ring
// is empty.
//
// Concurrency contract (compiler-checked): the ring itself (buf_, head_,
// tail_, closed_, waiters_) is synchronized by the SPSC discipline plus
// atomics — no field is guarded by mu_. The mutex exists purely so parked
// Push/Pop loops have something to wait on; MaybeNotify must therefore
// never acquire it (see below), which the JISC_EXCLUDES annotations now
// state to the compiler instead of only to the reader.
template <typename T>
class SpscQueue {
 public:
  // Capacity is rounded up to a power of two (minimum 2).
  explicit SpscQueue(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    buf_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  // Producer side. False when full or closed (v is left intact when full).
  // Called both bare (fast path) and with mu_ held (the parked Push loop),
  // so it must not itself touch mu_.
  bool TryPush(T& v) {
    if (closed_.load(std::memory_order_relaxed)) return false;
    uint64_t tail = tail_.load(std::memory_order_relaxed);
    uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head > mask_) return false;  // full
    buf_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    MaybeNotify();
    return true;
  }

  // Consumer side. False when nothing is buffered. Same locking caveat as
  // TryPush.
  bool TryPop(T* out) {
    uint64_t head = head_.load(std::memory_order_relaxed);
    uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;  // empty
    *out = std::move(buf_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    MaybeNotify();
    return true;
  }

  // Blocks while full (backpressure). False if the queue is closed.
  bool Push(T v) JISC_EXCLUDES(mu_) {
    for (int spin = 0; spin < kSpins; ++spin) {
      if (TryPush(v)) return true;
      if (closed_.load(std::memory_order_relaxed)) return false;
      std::this_thread::yield();
    }
    MutexLock lk(&mu_);
    ++waiters_;
    for (;;) {
      if (TryPush(v)) break;
      if (closed_.load(std::memory_order_relaxed)) {
        --waiters_;
        return false;
      }
      cv_.WaitFor(&mu_, std::chrono::milliseconds(1));
    }
    --waiters_;
    return true;
  }

  // Blocks while empty and open. False when closed and fully drained.
  bool Pop(T* out) JISC_EXCLUDES(mu_) {
    for (int spin = 0; spin < kSpins; ++spin) {
      if (TryPop(out)) return true;
      if (closed_.load(std::memory_order_acquire)) {
        // Re-check: items pushed before Close() must still drain.
        return TryPop(out);
      }
      std::this_thread::yield();
    }
    MutexLock lk(&mu_);
    ++waiters_;
    for (;;) {
      if (TryPop(out)) break;
      if (closed_.load(std::memory_order_acquire)) {
        --waiters_;
        return TryPop(out);
      }
      cv_.WaitFor(&mu_, std::chrono::milliseconds(1));
    }
    --waiters_;
    return true;
  }

  void Close() JISC_EXCLUDES(mu_) {
    closed_.store(true, std::memory_order_release);
    MutexLock lk(&mu_);
    cv_.NotifyAll();
  }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  // Approximate (racy) fill level; exact when both sides are quiescent.
  size_t SizeApprox() const {
    uint64_t head = head_.load(std::memory_order_acquire);
    uint64_t tail = tail_.load(std::memory_order_acquire);
    return static_cast<size_t>(tail - head);
  }

  size_t capacity() const { return mask_ + 1; }

 private:
  static constexpr int kSpins = 128;

  // Deliberately does NOT take mu_: the parked loops in Push/Pop call
  // TryPush/TryPop with mu_ already held, and mu_ is non-recursive — this
  // is the PR 1 self-deadlock fix, now stated as a checked contract
  // (TryPush/TryPop carry no JISC_EXCLUDES precisely because they run
  // under the caller's lock). Notifying without the mutex can lose the
  // race against a waiter that has checked the condition but not yet
  // parked; the waiter's 1ms wait timeout heals any such missed wakeup.
  // waiters_ is a racy hint only.
  void MaybeNotify() {
    if (waiters_.load(std::memory_order_relaxed) > 0) {
      cv_.NotifyAll();
    }
  }

  std::vector<T> buf_;
  size_t mask_ = 1;
  alignas(64) std::atomic<uint64_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<uint64_t> tail_{0};  // producer cursor
  std::atomic<bool> closed_{false};
  // Parking-only mutex: every shared field above is an atomic synchronized
  // by the SPSC protocol; mu_/cv_ exist only so the blocking wrappers can
  // sleep, hence no field is guarded by it.
  // lint: allow(unguarded-mutex): parking-only, all shared state is atomic
  Mutex mu_;
  CondVar cv_;
  std::atomic<int> waiters_{0};
};

}  // namespace jisc

#endif  // JISC_COMMON_SPSC_QUEUE_H_
