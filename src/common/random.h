#ifndef JISC_COMMON_RANDOM_H_
#define JISC_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace jisc {

// Deterministic pseudo-random generator (xoshiro256**). Workloads seed it
// explicitly so every experiment is reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  uint64_t Next();

  // Uniform integer in [0, bound). Precondition: bound > 0.
  uint64_t UniformU64(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformU64(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

// Zipf(s) sampler over {0, ..., n-1} with precomputed CDF; used for skewed
// key workloads (the fresh/attempted ablation).
class ZipfDistribution {
 public:
  // Precondition: n >= 1, s >= 0. s == 0 degenerates to uniform.
  ZipfDistribution(uint64_t n, double s);

  uint64_t Sample(Rng* rng) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  uint64_t n_;
  double s_;
  std::vector<double> cdf_;
};

// Samples a pair (i, j), 1 <= i < j <= n, from the paper's triangular swap
// distribution: Prob(I=i, J=j) proportional to 1/(j-i) (Eq. 1 of Section 5.2).
// Used by the Section 5 analysis and by the workload generator to pick which
// two streams exchange positions at a plan transition.
class TriangularSwapDistribution {
 public:
  // Precondition: n >= 2 (there must be at least one swappable pair).
  explicit TriangularSwapDistribution(int n);

  // Returns {i, j} with 1 <= i < j <= n.
  std::pair<int, int> Sample(Rng* rng) const;

  // Prob(J - I = d), for d in [1, n-1]; 0 otherwise.
  double GapProbability(int d) const;

  int n() const { return n_; }

 private:
  int n_;
  // cdf over the gap d = j - i, d in [1, n-1]; weight of d is (n-d)/d.
  std::vector<double> gap_cdf_;
};

}  // namespace jisc

#endif  // JISC_COMMON_RANDOM_H_
