#ifndef JISC_COMMON_TIMER_H_
#define JISC_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace jisc {

// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  uint64_t ElapsedMicros() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              start_)
            .count());
  }

  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace jisc

#endif  // JISC_COMMON_TIMER_H_
