#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace jisc {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used to seed the xoshiro state.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t bound) {
  JISC_DCHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  JISC_DCHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(UniformU64(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return UniformDouble() < p;
}

ZipfDistribution::ZipfDistribution(uint64_t n, double s) : n_(n), s_(s) {
  JISC_CHECK(n >= 1);
  JISC_CHECK(s >= 0);
  cdf_.resize(n);
  double total = 0;
  for (uint64_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) c /= total;
}

uint64_t ZipfDistribution::Sample(Rng* rng) const {
  double u = rng->UniformDouble();
  // Binary search for the first cdf entry >= u.
  uint64_t lo = 0, hi = n_ - 1;
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

TriangularSwapDistribution::TriangularSwapDistribution(int n) : n_(n) {
  JISC_CHECK(n >= 2);
  gap_cdf_.resize(n - 1);
  double total = 0;
  for (int d = 1; d <= n - 1; ++d) {
    // Number of (i, j) pairs with j - i == d is (n - d); each has
    // probability proportional to 1/d, so the gap weight is (n - d) / d.
    total += static_cast<double>(n - d) / d;
    gap_cdf_[d - 1] = total;
  }
  for (auto& c : gap_cdf_) c /= total;
}

std::pair<int, int> TriangularSwapDistribution::Sample(Rng* rng) const {
  double u = rng->UniformDouble();
  int d = 1;
  {
    int lo = 0, hi = n_ - 2;
    while (lo < hi) {
      int mid = lo + (hi - lo) / 2;
      if (gap_cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    d = lo + 1;
  }
  // Given the gap d, the lower position i is uniform over [1, n - d].
  int i = 1 + static_cast<int>(rng->UniformU64(static_cast<uint64_t>(n_ - d)));
  return {i, i + d};
}

double TriangularSwapDistribution::GapProbability(int d) const {
  if (d < 1 || d > n_ - 1) return 0;
  double prev = (d == 1) ? 0.0 : gap_cdf_[d - 2];
  return gap_cdf_[d - 1] - prev;
}

}  // namespace jisc
