#ifndef JISC_COMMON_MUTEX_H_
#define JISC_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace jisc {

class CondVar;

// std::mutex wrapped in clang capability attributes so -Wthread-safety can
// track acquisitions. libstdc++'s std::mutex carries no attributes, which
// makes JISC_GUARDED_BY useless with raw std::lock_guard — hence this
// wrapper. Zero overhead: every method is a single inlined forward.
//
// Use MutexLock for scoped holds; ReleasableMutexLock when the hot path
// wants to drop the lock before a condition-variable notify.
class JISC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() JISC_ACQUIRE() { mu_.lock(); }
  void Unlock() JISC_RELEASE() { mu_.unlock(); }
  bool TryLock() JISC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  // lint: allow(unguarded-mutex): this IS the annotated wrapper
  std::mutex mu_;
};

// RAII scoped hold of a Mutex.
class JISC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) JISC_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() JISC_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

// Like MutexLock, but the lock may be dropped early with Release() — the
// queue implementations use this to notify condition variables after the
// critical section, so a woken thread never immediately blocks on the
// still-held mutex.
class JISC_SCOPED_CAPABILITY ReleasableMutexLock {
 public:
  explicit ReleasableMutexLock(Mutex* mu) JISC_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~ReleasableMutexLock() JISC_RELEASE() {
    if (!released_) mu_->Unlock();
  }

  void Release() JISC_RELEASE() {
    released_ = true;
    mu_->Unlock();
  }

  ReleasableMutexLock(const ReleasableMutexLock&) = delete;
  ReleasableMutexLock& operator=(const ReleasableMutexLock&) = delete;

 private:
  Mutex* const mu_;
  bool released_ = false;
};

// Condition variable paired with jisc::Mutex. Wait/WaitFor require the
// mutex held (and the analysis checks it); the notify side deliberately has
// no lock requirement — notifying without the mutex is the documented cure
// for the SpscQueue self-deadlock fixed in PR 1 (MaybeNotify must not
// re-enter a non-recursive mutex its caller already holds).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) JISC_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu->mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // the caller still owns the mutex
  }

  // Returns false on timeout (spurious wakeups return true; callers loop on
  // their predicate regardless).
  template <typename Rep, typename Period>
  bool WaitFor(Mutex* mu, std::chrono::duration<Rep, Period> timeout)
      JISC_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu->mu_, std::adopt_lock);
    std::cv_status status = cv_.wait_for(lk, timeout);
    lk.release();  // the caller still owns the mutex
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace jisc

#endif  // JISC_COMMON_MUTEX_H_
