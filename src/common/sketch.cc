#include "common/sketch.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace jisc {

CountMinSketch::CountMinSketch(size_t width, size_t depth)
    : width_(width), depth_(depth), cells_(width * depth, 0) {
  JISC_CHECK(width_ >= 1);
  JISC_CHECK(depth_ >= 1);
}

size_t CountMinSketch::Cell(size_t row, uint64_t key) const {
  // Row-salted mixing; each row is an independent-enough hash.
  uint64_t h = MixU64(key ^ (0x9e3779b97f4a7c15ULL * (row + 1)));
  return row * width_ + static_cast<size_t>(h % width_);
}

void CountMinSketch::Add(uint64_t key, uint64_t count) {
  for (size_t row = 0; row < depth_; ++row) {
    cells_[Cell(row, key)] += count;
  }
  total_ += count;
}

uint64_t CountMinSketch::Estimate(uint64_t key) const {
  uint64_t best = ~0ULL;
  for (size_t row = 0; row < depth_; ++row) {
    best = std::min(best, cells_[Cell(row, key)]);
  }
  return best;
}

void CountMinSketch::Merge(const CountMinSketch& other) {
  JISC_CHECK(width_ == other.width_ && depth_ == other.depth_);
  for (size_t i = 0; i < cells_.size(); ++i) cells_[i] += other.cells_[i];
  total_ += other.total_;
}

void CountMinSketch::Clear() {
  std::fill(cells_.begin(), cells_.end(), 0);
  total_ = 0;
}

HyperLogLog::HyperLogLog(int precision)
    : precision_(precision),
      m_(size_t{1} << precision),
      registers_(m_, 0) {
  JISC_CHECK(precision_ >= 4);
  JISC_CHECK(precision_ <= 18);
  // Standard bias constants.
  if (m_ == 16) {
    alpha_ = 0.673;
  } else if (m_ == 32) {
    alpha_ = 0.697;
  } else if (m_ == 64) {
    alpha_ = 0.709;
  } else {
    alpha_ = 0.7213 / (1.0 + 1.079 / static_cast<double>(m_));
  }
}

void HyperLogLog::Add(uint64_t key) {
  uint64_t h = MixU64(key);
  size_t idx = static_cast<size_t>(h >> (64 - precision_));
  uint64_t rest = h << precision_;
  int rank = rest == 0 ? (64 - precision_ + 1)
                       : (__builtin_clzll(rest) + 1);
  registers_[idx] = std::max<uint8_t>(registers_[idx],
                                      static_cast<uint8_t>(rank));
}

double HyperLogLog::Estimate() const {
  double sum = 0;
  int zeros = 0;
  for (uint8_t r : registers_) {
    sum += std::ldexp(1.0, -r);
    if (r == 0) ++zeros;
  }
  double m = static_cast<double>(m_);
  double raw = alpha_ * m * m / sum;
  // Small-range correction (linear counting).
  if (raw <= 2.5 * m && zeros > 0) {
    return m * std::log(m / zeros);
  }
  return raw;
}

void HyperLogLog::Merge(const HyperLogLog& other) {
  JISC_CHECK(precision_ == other.precision_);
  for (size_t i = 0; i < m_; ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
}

void HyperLogLog::Clear() {
  std::fill(registers_.begin(), registers_.end(), 0);
}

}  // namespace jisc
