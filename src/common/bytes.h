#ifndef JISC_COMMON_BYTES_H_
#define JISC_COMMON_BYTES_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>

#include "common/status.h"

namespace jisc {

// Minimal little-endian binary writer for checkpoints.
class ByteWriter {
 public:
  void PutU64(uint64_t v) {
    char buf[8];
    for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)));
    out_.append(buf, 8);
  }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutString(const std::string& s) {
    PutU64(s.size());
    out_.append(s);
  }

  std::string Take() { return std::move(out_); }
  size_t size() const { return out_.size(); }

 private:
  std::string out_;
};

// Bounds-checked reader over a checkpoint buffer.
class ByteReader {
 public:
  explicit ByteReader(const std::string& data) : data_(data) {}

  Status GetU64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) {
      return Status::OutOfRange("checkpoint truncated");
    }
    uint64_t r = 0;
    for (int i = 0; i < 8; ++i) {
      r |= static_cast<uint64_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    *v = r;
    return Status::Ok();
  }

  Status GetI64(int64_t* v) {
    uint64_t u = 0;
    Status s = GetU64(&u);
    if (!s.ok()) return s;
    *v = static_cast<int64_t>(u);
    return Status::Ok();
  }

  Status GetString(std::string* out) {
    uint64_t len = 0;
    Status s = GetU64(&len);
    if (!s.ok()) return s;
    if (pos_ + len > data_.size()) {
      return Status::OutOfRange("checkpoint truncated");
    }
    out->assign(data_, pos_, len);
    pos_ += len;
    return Status::Ok();
  }

  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

}  // namespace jisc

#endif  // JISC_COMMON_BYTES_H_
