#include <gtest/gtest.h>

#include "eddy/cacq.h"
#include "eddy/mjoin.h"
#include "eddy/stairs.h"
#include "eddy/stem.h"
#include "plan/transitions.h"
#include "tests/test_util.h"

namespace jisc {
namespace {

using testutil::IdentityMultiset;
using testutil::IdentityOrder;
using testutil::UniformWorkload;

BaseTuple Mk(StreamId stream, JoinKey key, Seq seq) {
  BaseTuple b;
  b.stream = stream;
  b.key = key;
  b.seq = seq;
  return b;
}

// Drives an eddy-based processor and the naive reference over the same
// tuples, with transitions at the scheduled indices; compares cumulative
// output multisets (eddy executors do not emit retractions).
bool OutputsMatchReference(StreamProcessor* proc, CollectingSink* sink,
                           int n, const WindowSpec& windows,
                           const std::vector<BaseTuple>& tuples,
                           const std::map<size_t, LogicalPlan>& schedule) {
  NaiveJoinReference ref(n, windows);
  std::vector<Tuple> ref_out;
  for (size_t i = 0; i < tuples.size(); ++i) {
    auto it = schedule.find(i);
    if (it != schedule.end()) {
      if (!proc->RequestTransition(it->second).ok()) return false;
    }
    proc->Push(tuples[i]);
    ref.Push(tuples[i], &ref_out, nullptr);
  }
  return IdentityMultiset(sink->outputs()) == IdentityMultiset(ref_out);
}

TEST(SteMTest, InsertProbeAndWindow) {
  SteM stem(0, 2);
  EXPECT_TRUE(stem.Insert(Mk(0, 5, 0), 1).empty());
  EXPECT_TRUE(stem.Insert(Mk(0, 5, 1), 2).empty());
  auto expired = stem.Insert(Mk(0, 6, 2), 3);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].seq, 0u);
  std::vector<Tuple> out;
  stem.Probe(5, 10, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].parts()[0].seq, 1u);
  EXPECT_EQ(stem.fill(), 2u);
  EXPECT_EQ(stem.OldestLiveSeq(), 1u);
}

TEST(SteMTest, TimeModeExpiresSeveralAtOnce) {
  SteM stem(0, 10, WindowSpec::Mode::kTime);
  BaseTuple a = Mk(0, 1, 0);
  a.ts = 100;
  BaseTuple b = Mk(0, 2, 1);
  b.ts = 101;
  BaseTuple c = Mk(0, 3, 2);
  c.ts = 200;
  EXPECT_TRUE(stem.Insert(a, 1).empty());
  EXPECT_TRUE(stem.Insert(b, 2).empty());
  auto expired = stem.Insert(c, 3);
  EXPECT_EQ(expired.size(), 2u);
  EXPECT_EQ(stem.fill(), 1u);
}

TEST(SteMTest, ProbeStampVisibility) {
  SteM stem(0, 4);
  stem.Insert(Mk(0, 5, 0), 7);
  std::vector<Tuple> out;
  stem.Probe(5, 7, &out);
  EXPECT_TRUE(out.empty());  // same-stamp entries invisible
  stem.Probe(5, 8, &out);
  EXPECT_EQ(out.size(), 1u);
}

TEST(CacqTest, MatchesReferenceWithoutTransitions) {
  LogicalPlan plan = LogicalPlan::LeftDeep(IdentityOrder(3),
                                           OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(3, 8);
  CollectingSink sink;
  CacqExecutor cacq(plan, windows, &sink);
  auto tuples = UniformWorkload(3, 4, 400);
  EXPECT_TRUE(OutputsMatchReference(&cacq, &sink, 3, windows, tuples, {}));
  EXPECT_GT(sink.outputs().size(), 0u);
}

TEST(CacqTest, TransitionIsFreeAndCorrect) {
  LogicalPlan plan = LogicalPlan::LeftDeep(IdentityOrder(4),
                                           OpKind::kHashJoin);
  LogicalPlan next = LogicalPlan::LeftDeep({3, 2, 1, 0}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 6);
  CollectingSink sink;
  CacqExecutor cacq(plan, windows, &sink);
  auto tuples = UniformWorkload(4, 4, 400);
  std::map<size_t, LogicalPlan> schedule{{200, next}};
  EXPECT_TRUE(OutputsMatchReference(&cacq, &sink, 4, windows, tuples,
                                    schedule));
  EXPECT_EQ(cacq.routing_order(), (std::vector<StreamId>{3, 2, 1, 0}));
}

TEST(CacqTest, EddyVisitsExceedPipelineHops) {
  // Every partial result passes through the eddy: visits grow with the
  // number of joins even when nothing matches downstream.
  LogicalPlan plan = LogicalPlan::LeftDeep(IdentityOrder(5),
                                           OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(5, 8);
  CollectingSink sink;
  CacqExecutor cacq(plan, windows, &sink);
  auto tuples = UniformWorkload(5, 2, 300);
  for (const auto& t : tuples) cacq.Push(t);
  EXPECT_GT(cacq.metrics().eddy_visits, cacq.metrics().arrivals);
}

TEST(CacqTest, RejectsSetDifferencePlans) {
  WindowSpec windows = WindowSpec::Uniform(3, 8);
  LogicalPlan joins = LogicalPlan::LeftDeep(IdentityOrder(3),
                                            OpKind::kHashJoin);
  CollectingSink sink;
  CacqExecutor cacq(joins, windows, &sink);
  LogicalPlan diff = LogicalPlan::SetDifferenceChain(0, {1, 2});
  EXPECT_FALSE(cacq.RequestTransition(diff).ok());
}

TEST(MJoinTest, MatchesReferenceWithFreeTransitions) {
  LogicalPlan plan = LogicalPlan::LeftDeep(IdentityOrder(4),
                                           OpKind::kHashJoin);
  LogicalPlan next = LogicalPlan::LeftDeep({3, 2, 1, 0}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 6);
  CollectingSink sink;
  MJoinExecutor mjoin(plan, windows, &sink);
  auto tuples = UniformWorkload(4, 4, 500);
  std::map<size_t, LogicalPlan> schedule{{150, next}, {300, plan}};
  EXPECT_TRUE(OutputsMatchReference(&mjoin, &sink, 4, windows, tuples,
                                    schedule));
  EXPECT_EQ(mjoin.probe_order(), (std::vector<StreamId>{0, 1, 2, 3}));
  EXPECT_GT(mjoin.StateMemory(), 0u);
}

TEST(MJoinTest, NoEddyVisitsAndFewerProbesThanCacq) {
  LogicalPlan plan = LogicalPlan::LeftDeep(IdentityOrder(4),
                                           OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 8);
  CollectingSink s1, s2;
  MJoinExecutor mjoin(plan, windows, &s1);
  CacqExecutor cacq(plan, windows, &s2);
  auto tuples = UniformWorkload(4, 4, 400);
  for (const auto& t : tuples) {
    mjoin.Push(t);
    cacq.Push(t);
  }
  EXPECT_EQ(IdentityMultiset(s1.outputs()), IdentityMultiset(s2.outputs()));
  EXPECT_EQ(mjoin.metrics().eddy_visits, 0u);
  EXPECT_GT(cacq.metrics().eddy_visits, 0u);
}

TEST(MJoinTest, RejectsNonEquiPlans) {
  WindowSpec windows = WindowSpec::Uniform(3, 8);
  LogicalPlan joins = LogicalPlan::LeftDeep(IdentityOrder(3),
                                            OpKind::kHashJoin);
  CollectingSink sink;
  MJoinExecutor mjoin(joins, windows, &sink);
  EXPECT_FALSE(
      mjoin.RequestTransition(LogicalPlan::SetDifferenceChain(0, {1, 2}))
          .ok());
  EXPECT_FALSE(
      mjoin
          .RequestTransition(
              LogicalPlan::LeftDeep(IdentityOrder(3), OpKind::kNljJoin))
          .ok());
}

class StairsPolicyTest
    : public ::testing::TestWithParam<StairsExecutor::MigrationPolicy> {};

TEST_P(StairsPolicyTest, MatchesReferenceWithoutTransitions) {
  LogicalPlan plan = LogicalPlan::LeftDeep(IdentityOrder(3),
                                           OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(3, 8);
  CollectingSink sink;
  StairsExecutor stairs(plan, windows, &sink, GetParam());
  auto tuples = UniformWorkload(3, 4, 400);
  EXPECT_TRUE(OutputsMatchReference(&stairs, &sink, 3, windows, tuples, {}));
}

TEST_P(StairsPolicyTest, BestCaseTransitionCorrect) {
  auto order = IdentityOrder(4);
  LogicalPlan plan = LogicalPlan::LeftDeep(order, OpKind::kHashJoin);
  LogicalPlan next = LogicalPlan::LeftDeep(BestCaseOrder(order),
                                           OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 6);
  CollectingSink sink;
  StairsExecutor stairs(plan, windows, &sink, GetParam());
  auto tuples = UniformWorkload(4, 4, 500);
  std::map<size_t, LogicalPlan> schedule{{250, next}};
  EXPECT_TRUE(OutputsMatchReference(&stairs, &sink, 4, windows, tuples,
                                    schedule));
}

TEST_P(StairsPolicyTest, WorstCaseTransitionCorrect) {
  auto order = IdentityOrder(4);
  LogicalPlan plan = LogicalPlan::LeftDeep(order, OpKind::kHashJoin);
  LogicalPlan next = LogicalPlan::LeftDeep(WorstCaseOrder(order),
                                           OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 6);
  CollectingSink sink;
  StairsExecutor stairs(plan, windows, &sink, GetParam());
  auto tuples = UniformWorkload(4, 4, 500);
  std::map<size_t, LogicalPlan> schedule{{250, next}};
  EXPECT_TRUE(OutputsMatchReference(&stairs, &sink, 4, windows, tuples,
                                    schedule));
}

TEST_P(StairsPolicyTest, OverlappedTransitionsCorrect) {
  auto order = IdentityOrder(5);
  LogicalPlan plan = LogicalPlan::LeftDeep(order, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(5, 6);
  CollectingSink sink;
  StairsExecutor stairs(plan, windows, &sink, GetParam());
  auto tuples = UniformWorkload(5, 3, 600);
  Rng rng(99);
  std::map<size_t, LogicalPlan> schedule;
  auto cur = order;
  for (size_t at = 100; at < 600; at += 100) {
    cur = RandomTriangularSwap(cur, &rng);
    schedule.emplace(at, LogicalPlan::LeftDeep(cur, OpKind::kHashJoin));
  }
  EXPECT_TRUE(OutputsMatchReference(&stairs, &sink, 5, windows, tuples,
                                    schedule));
}

INSTANTIATE_TEST_SUITE_P(
    Policies, StairsPolicyTest,
    ::testing::Values(StairsExecutor::MigrationPolicy::kEager,
                      StairsExecutor::MigrationPolicy::kLazyJisc),
    [](const ::testing::TestParamInfo<StairsExecutor::MigrationPolicy>& i) {
      return i.param == StairsExecutor::MigrationPolicy::kEager
                 ? std::string("Eager")
                 : std::string("LazyJisc");
    });

// Section 4.6: eager STAIRs migrate everything at transition time (no
// incomplete states remain); lazy JISC-on-STAIRs defers the work.
TEST(StairsMigrationTest, EagerCompletesLazyDefers) {
  auto order = IdentityOrder(5);
  LogicalPlan plan = LogicalPlan::LeftDeep(order, OpKind::kHashJoin);
  LogicalPlan next = LogicalPlan::LeftDeep(WorstCaseOrder(order),
                                           OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(5, 16);
  auto tuples = UniformWorkload(5, 8, 300);

  CollectingSink sink_eager;
  StairsExecutor eager(plan, windows, &sink_eager,
                       StairsExecutor::MigrationPolicy::kEager);
  CollectingSink sink_lazy;
  StairsExecutor lazy(plan, windows, &sink_lazy,
                      StairsExecutor::MigrationPolicy::kLazyJisc);
  for (const auto& t : tuples) {
    eager.Push(t);
    lazy.Push(t);
  }
  ASSERT_TRUE(eager.RequestTransition(next).ok());
  ASSERT_TRUE(lazy.RequestTransition(next).ok());
  EXPECT_EQ(eager.num_incomplete(), 0);
  EXPECT_GT(lazy.num_incomplete(), 0);
  // The eager migration paid materialization work up front.
  EXPECT_GT(eager.metrics().inserts, lazy.metrics().inserts);
}

// Lazy STAIRs eventually declare their states complete through window
// turnover.
TEST(StairsMigrationTest, LazyTurnoverCompletes) {
  auto order = IdentityOrder(4);
  LogicalPlan plan = LogicalPlan::LeftDeep(order, OpKind::kHashJoin);
  LogicalPlan next = LogicalPlan::LeftDeep(WorstCaseOrder(order),
                                           OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 8);
  CollectingSink sink;
  StairsExecutor lazy(plan, windows, &sink,
                      StairsExecutor::MigrationPolicy::kLazyJisc);
  SourceConfig cfg;
  cfg.num_streams = 4;
  cfg.key_domain = 16;
  SyntheticSource src(cfg);
  for (int i = 0; i < 64; ++i) lazy.Push(src.Next());
  ASSERT_TRUE(lazy.RequestTransition(next).ok());
  EXPECT_GT(lazy.num_incomplete(), 0);
  // Turn the windows over (4 * 8 = 32) plus the 256-push check period.
  for (int i = 0; i < 600; ++i) lazy.Push(src.Next());
  EXPECT_EQ(lazy.num_incomplete(), 0);
}

}  // namespace
}  // namespace jisc
