#ifndef JISC_TESTS_TEST_UTIL_H_
#define JISC_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "exec/sink.h"
#include "exec/stream_processor.h"
#include "plan/logical_plan.h"
#include "reference/naive_reference.h"
#include "stream/synthetic_source.h"
#include "types/tuple.h"

namespace jisc {
namespace testutil {

// Multiset of combination identities, for order-insensitive comparison of
// output streams.
inline std::multiset<uint64_t> IdentityMultiset(const std::vector<Tuple>& v) {
  std::multiset<uint64_t> out;
  for (const Tuple& t : v) out.insert(t.IdentityHash());
  return out;
}

// Drives `processor` over `tuples`, requesting the transition scheduled at
// index i (plan applied *before* tuple i is pushed). Simultaneously drives
// the naive reference and returns whether cumulative outputs and
// retractions match it exactly.
struct DriveResult {
  bool outputs_match = false;
  bool retractions_match = false;
  uint64_t outputs = 0;
  uint64_t reference_outputs = 0;

  bool ok() const { return outputs_match && retractions_match; }
};

inline DriveResult DriveAndCompare(
    StreamProcessor* processor, CollectingSink* sink, int num_streams,
    const WindowSpec& windows, const std::vector<BaseTuple>& tuples,
    const std::map<size_t, LogicalPlan>& transitions,
    ThetaSpec theta = ThetaSpec()) {
  NaiveJoinReference ref(num_streams, windows, theta);
  std::vector<Tuple> ref_outputs;
  std::vector<Tuple> ref_retractions;
  for (size_t i = 0; i < tuples.size(); ++i) {
    auto it = transitions.find(i);
    if (it != transitions.end()) {
      Status s = processor->RequestTransition(it->second);
      if (!s.ok()) return DriveResult{};
    }
    processor->Push(tuples[i]);
    ref.Push(tuples[i], &ref_outputs, &ref_retractions);
  }
  DriveResult r;
  r.outputs = sink->outputs().size();
  r.reference_outputs = ref_outputs.size();
  r.outputs_match =
      IdentityMultiset(sink->outputs()) == IdentityMultiset(ref_outputs);
  r.retractions_match = IdentityMultiset(sink->retractions()) ==
                        IdentityMultiset(ref_retractions);
  return r;
}

// Round-robin workload over `n` streams with keys uniform in [0, domain).
inline std::vector<BaseTuple> UniformWorkload(int n, uint64_t domain,
                                              size_t count,
                                              uint64_t seed = 7) {
  SourceConfig cfg;
  cfg.num_streams = n;
  cfg.key_domain = domain;
  cfg.seed = seed;
  SyntheticSource src(cfg);
  return src.NextBatch(count);
}

// The identity left-deep order 0,1,...,n-1.
inline std::vector<StreamId> IdentityOrder(int n) {
  std::vector<StreamId> order;
  for (int i = 0; i < n; ++i) order.push_back(static_cast<StreamId>(i));
  return order;
}

}  // namespace testutil
}  // namespace jisc

#endif  // JISC_TESTS_TEST_UTIL_H_
