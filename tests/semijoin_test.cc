// Windowed semi join — the Section 4.7 treatment applied to one more
// stateful binary operator — and its JISC migration.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/jisc_runtime.h"
#include "migration/moving_state.h"
#include "migration/parallel_track.h"
#include "reference/naive_reference.h"
#include "tests/test_util.h"

namespace jisc {
namespace {

using testutil::IdentityMultiset;

BaseTuple Mk(StreamId stream, JoinKey key, Seq seq) {
  BaseTuple b;
  b.stream = stream;
  b.key = key;
  b.seq = seq;
  return b;
}

std::multiset<uint64_t> RootLiveSet(Engine* engine) {
  std::multiset<uint64_t> out;
  engine->executor().root()->state().ForEachLive(
      [&](const Tuple& t) { out.insert(t.IdentityHash()); });
  return out;
}

std::multiset<uint64_t> ReferenceSet(const NaiveSemiJoinReference& ref) {
  std::multiset<uint64_t> out;
  for (const BaseTuple& b : ref.CurrentResult()) {
    out.insert(Tuple::FromBase(b, 0, true).IdentityHash());
  }
  return out;
}

TEST(SemiJoinTest, WitnessArrivalQualifies) {
  LogicalPlan plan = LogicalPlan::SemiJoinChain(0, {1});
  WindowSpec windows = WindowSpec::Uniform(2, 4);
  CollectingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  engine.Push(Mk(0, 5, 0));  // no witness yet -> not emitted
  EXPECT_TRUE(sink.outputs().empty());
  engine.Push(Mk(1, 5, 1));  // witness arrives -> qualifies
  ASSERT_EQ(sink.outputs().size(), 1u);
  EXPECT_EQ(sink.outputs()[0].key(), 5);
}

TEST(SemiJoinTest, SecondWitnessDoesNotReEmit) {
  LogicalPlan plan = LogicalPlan::SemiJoinChain(0, {1});
  WindowSpec windows = WindowSpec::Uniform(2, 4);
  CollectingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  engine.Push(Mk(0, 5, 0));
  engine.Push(Mk(1, 5, 1));
  engine.Push(Mk(1, 5, 2));  // duplicate witness
  EXPECT_EQ(sink.outputs().size(), 1u);
}

TEST(SemiJoinTest, LastWitnessExpiryRetracts) {
  LogicalPlan plan = LogicalPlan::SemiJoinChain(0, {1});
  WindowSpec windows = WindowSpec::Uniform(2, 2);
  CollectingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  engine.Push(Mk(0, 5, 0));
  engine.Push(Mk(1, 5, 1));  // qualifies
  ASSERT_EQ(sink.outputs().size(), 1u);
  // Push two unrelated inner tuples: the witness expires.
  engine.Push(Mk(1, 9, 2));
  engine.Push(Mk(1, 9, 3));
  EXPECT_EQ(sink.retractions().size(), 1u);
  EXPECT_EQ(engine.executor().root()->state().live_size(), 0u);
}

TEST(SemiJoinTest, OuterArrivalWithLiveWitness) {
  LogicalPlan plan = LogicalPlan::SemiJoinChain(0, {1});
  WindowSpec windows = WindowSpec::Uniform(2, 4);
  CollectingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  engine.Push(Mk(1, 5, 0));  // witness first
  engine.Push(Mk(0, 5, 1));  // outer joins immediately
  EXPECT_EQ(sink.outputs().size(), 1u);
}

TEST(SemiJoinTest, ChainMatchesNaiveReference) {
  LogicalPlan plan = LogicalPlan::SemiJoinChain(0, {1, 2, 3});
  WindowSpec windows = WindowSpec::Uniform(4, 6);
  CollectingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  NaiveSemiJoinReference ref(0, {1, 2, 3}, windows);
  auto tuples = testutil::UniformWorkload(4, 5, 500);
  for (const auto& t : tuples) {
    engine.Push(t);
    ref.Push(t);
  }
  EXPECT_EQ(RootLiveSet(&engine), ReferenceSet(ref));
}

// The inner-clear rule applied to semi joins: after a migration, losing the
// last witness at an incomplete state must clear the (materialized) entry
// in the complete ancestor.
TEST(SemiJoinTest, WitnessLossClearsThroughIncompleteStates) {
  constexpr StreamId A = 0, B = 1, C = 2, D = 3;
  LogicalPlan old_plan = LogicalPlan::SemiJoinChain(A, {B, C, D});
  LogicalPlan new_plan = LogicalPlan::SemiJoinChain(A, {D, B, C});
  WindowSpec windows = WindowSpec::Uniform(4, 2);
  CollectingSink sink;
  Engine engine(old_plan, windows, &sink, MakeJiscStrategy());
  // a witnessed everywhere -> in every chain state, emitted once.
  engine.Push(Mk(A, 7, 0));
  engine.Push(Mk(B, 7, 1));
  engine.Push(Mk(C, 7, 2));
  engine.Push(Mk(D, 7, 3));
  ASSERT_EQ(sink.outputs().size(), 1u);
  ASSERT_TRUE(engine.RequestTransition(new_plan).ok());
  // D's witness expires (window 2): the incomplete AD state has nothing
  // materialized, but the complete ADBC root does -- the clear must reach
  // it.
  engine.Push(Mk(D, 100, 4));
  engine.Push(Mk(D, 101, 5));
  EXPECT_EQ(sink.retractions().size(), 1u);
  EXPECT_EQ(engine.executor().root()->state().live_size(), 0u);
}

TEST(SemiJoinTest, ParallelTrackRejectsSemiJoin) {
  LogicalPlan joins = LogicalPlan::LeftDeep({0, 1}, OpKind::kHashJoin);
  LogicalPlan semi = LogicalPlan::SemiJoinChain(0, {1});
  WindowSpec windows = WindowSpec::Uniform(2, 4);
  CountingSink sink;
  ParallelTrackProcessor pt(joins, windows, &sink);
  EXPECT_EQ(pt.RequestTransition(semi).code(), StatusCode::kUnimplemented);
}

struct SemiScenario {
  bool moving_state;
  JiscOptions::CompletionMode mode;
};

class SemiJoinMigrationTest
    : public ::testing::TestWithParam<SemiScenario> {};

TEST_P(SemiJoinMigrationTest, TransitionsMatchReference) {
  LogicalPlan plan_a = LogicalPlan::SemiJoinChain(0, {1, 2, 3});
  LogicalPlan plan_b = LogicalPlan::SemiJoinChain(0, {3, 1, 2});
  LogicalPlan plan_c = LogicalPlan::SemiJoinChain(0, {2, 3, 1});
  WindowSpec windows = WindowSpec::Uniform(4, 5);
  CollectingSink sink;
  std::unique_ptr<MigrationStrategy> strategy;
  if (GetParam().moving_state) {
    strategy = MakeMovingStateStrategy();
  } else {
    JiscOptions j;
    j.completion_mode = GetParam().mode;
    strategy = MakeJiscStrategy(j);
  }
  Engine::Options eopts;
  eopts.maintain_period = 16;
  Engine engine(plan_a, windows, &sink, std::move(strategy), eopts);
  NaiveSemiJoinReference ref(0, {1, 2, 3}, windows);
  auto tuples = testutil::UniformWorkload(4, 4, 600);
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (i == 150) ASSERT_TRUE(engine.RequestTransition(plan_b).ok());
    if (i == 300) ASSERT_TRUE(engine.RequestTransition(plan_c).ok());
    engine.Push(tuples[i]);
    ref.Push(tuples[i]);
    if (i % 89 == 0 || i + 1 == tuples.size()) {
      ASSERT_EQ(RootLiveSet(&engine), ReferenceSet(ref)) << "at tuple " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, SemiJoinMigrationTest,
    ::testing::Values(
        SemiScenario{false, JiscOptions::CompletionMode::kOnProbe},
        SemiScenario{false, JiscOptions::CompletionMode::kOnFirstReceipt},
        SemiScenario{true, JiscOptions::CompletionMode::kOnProbe}),
    [](const ::testing::TestParamInfo<SemiScenario>& i) {
      if (i.param.moving_state) return std::string("MovingState");
      return i.param.mode == JiscOptions::CompletionMode::kOnProbe
                 ? std::string("JiscOnProbe")
                 : std::string("JiscOnFirstReceipt");
    });

}  // namespace
}  // namespace jisc
