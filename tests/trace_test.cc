// Test battery for migration-phase tracing (obs/trace.h + the spans the
// engine and the migration strategies emit): each strategy's transition
// must record its documented phase-span sequence with correct nesting, the
// ring buffer must drop oldest-first without corrupting surviving spans,
// and the exporters must produce loadable JSON.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/jisc_runtime.h"
#include "migration/hybrid_track.h"
#include "migration/moving_state.h"
#include "migration/parallel_track.h"
#include "obs/observability.h"
#include "obs/trace_export.h"
#include "plan/transitions.h"
#include "tests/test_util.h"
#include "workload/factory.h"

namespace jisc {
namespace {

using testutil::IdentityOrder;
using testutil::UniformWorkload;

// Spans named `name`, in recorded (ring) order.
std::vector<TraceSpan> SpansNamed(const std::vector<TraceSpan>& spans,
                                  const std::string& name) {
  std::vector<TraceSpan> out;
  for (const TraceSpan& s : spans) {
    if (name == s.name) out.push_back(s);
  }
  return out;
}

bool HasSpan(const std::vector<TraceSpan>& spans, const std::string& name) {
  return !SpansNamed(spans, name).empty();
}

// True when `inner` nests inside `outer` both structurally (depth) and
// temporally (time interval containment).
bool NestsWithin(const TraceSpan& inner, const TraceSpan& outer) {
  return inner.depth > outer.depth && inner.start_ns >= outer.start_ns &&
         inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns;
}

// --- ring buffer -----------------------------------------------------------

TraceSpan MakeSpan(const char* name, uint64_t start, uint64_t arg) {
  TraceSpan s;
  s.name = name;
  s.category = "test";
  s.start_ns = start;
  s.dur_ns = 1;
  s.arg_name = "i";
  s.arg = arg;
  return s;
}

TEST(TraceRecorderTest, RecordsInOrderBelowCapacity) {
  TraceRecorder rec(8);
  for (uint64_t i = 0; i < 5; ++i) rec.Record(MakeSpan("s", i, i));
  auto spans = rec.Snapshot();
  ASSERT_EQ(spans.size(), 5u);
  EXPECT_EQ(rec.dropped(), 0u);
  for (uint64_t i = 0; i < 5; ++i) EXPECT_EQ(spans[i].arg, i);
}

TEST(TraceRecorderTest, RingDropsOldestFirst) {
  TraceRecorder rec(4);
  for (uint64_t i = 0; i < 10; ++i) rec.Record(MakeSpan("s", i, i));
  auto spans = rec.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(rec.dropped(), 6u);
  // The oldest six were evicted; the survivors are intact, oldest first.
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(spans[i].arg, 6 + i);
    EXPECT_EQ(std::string(spans[i].name), "s");
    EXPECT_EQ(spans[i].start_ns, 6 + i);
  }
}

TEST(TraceRecorderTest, WrapManyTimesStaysConsistent) {
  TraceRecorder rec(8);
  for (uint64_t i = 0; i < 1000; ++i) rec.Record(MakeSpan("s", i, i));
  auto spans = rec.Snapshot();
  ASSERT_EQ(spans.size(), 8u);
  EXPECT_EQ(rec.dropped(), 992u);
  for (uint64_t i = 0; i < 8; ++i) EXPECT_EQ(spans[i].arg, 992 + i);
}

TEST(TraceRecorderTest, ClearKeepsEpoch) {
  TraceRecorder rec(8);
  rec.Record(MakeSpan("s", 1, 1));
  uint64_t before = rec.NowNs();
  rec.Clear();
  EXPECT_TRUE(rec.Snapshot().empty());
  EXPECT_EQ(rec.dropped(), 0u);
  // Clear must not reset the epoch: timestamps keep advancing.
  EXPECT_GE(rec.NowNs(), before);
}

TEST(TraceRecorderTest, ConcurrentRecordDoesNotCorrupt) {
  // Writers from several threads hammer a small ring (forcing constant
  // eviction) while a reader snapshots; every surviving span must be one
  // that some writer actually recorded. TSan gates this.
  TraceRecorder rec(16);
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 5000;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&rec, w] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        rec.Record(MakeSpan("w", static_cast<uint64_t>(w), i));
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    for (const TraceSpan& s : rec.Snapshot()) {
      EXPECT_EQ(std::string(s.name), "w");
      EXPECT_LT(s.start_ns, static_cast<uint64_t>(kWriters));
      EXPECT_LT(s.arg, kPerWriter);
    }
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(rec.Snapshot().size(), 16u);
  EXPECT_EQ(rec.dropped(), kWriters * kPerWriter - 16);
}

// --- TraceScope nesting ----------------------------------------------------

TEST(TraceScopeTest, NullRecorderIsNoOp) {
  TraceScope outer(nullptr, "a", "test");
  outer.SetArg("x", 1);  // must not crash
}

TEST(TraceScopeTest, NestedScopesCarryDepth) {
  TraceRecorder rec(16);
  {
    TraceScope outer(&rec, "outer", "test");
    {
      TraceScope inner(&rec, "inner", "test");
      TraceScope innermost(&rec, "innermost", "test");
    }
  }
  auto spans = rec.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // Children record before parents (RAII), depths reflect nesting.
  auto outer = SpansNamed(spans, "outer");
  auto inner = SpansNamed(spans, "inner");
  auto innermost = SpansNamed(spans, "innermost");
  ASSERT_EQ(outer.size(), 1u);
  ASSERT_EQ(inner.size(), 1u);
  ASSERT_EQ(innermost.size(), 1u);
  EXPECT_EQ(outer[0].depth, 0);
  EXPECT_EQ(inner[0].depth, 1);
  EXPECT_EQ(innermost[0].depth, 2);
  EXPECT_TRUE(NestsWithin(inner[0], outer[0]));
  EXPECT_TRUE(NestsWithin(innermost[0], inner[0]));
}

// --- migration-phase spans per strategy ------------------------------------

// One warmed engine-strategy run with a forced transition; returns the
// recorded spans.
std::vector<TraceSpan> RunEngineTransition(
    std::unique_ptr<MigrationStrategy> strategy, Observability* obs) {
  int streams = 3;
  uint64_t window = 40;
  LogicalPlan plan =
      LogicalPlan::LeftDeep(IdentityOrder(streams), OpKind::kHashJoin);
  LogicalPlan next = LogicalPlan::LeftDeep(
      WorstCaseOrder(IdentityOrder(streams)), OpKind::kHashJoin);
  CountingSink sink;
  Engine::Options opts;
  opts.obs = obs;
  Engine engine(plan, WindowSpec::Uniform(streams, window), &sink,
                std::move(strategy), opts);
  auto tuples = UniformWorkload(streams, window, 600, /*seed=*/5);
  size_t half = tuples.size() / 2;
  for (size_t i = 0; i < half; ++i) engine.Push(tuples[i]);
  EXPECT_TRUE(engine.RequestTransition(next).ok());
  for (size_t i = half; i < tuples.size(); ++i) engine.Push(tuples[i]);
  EXPECT_GT(sink.outputs(), 0u);
  return obs->trace.Snapshot();
}

TEST(MigrationTraceTest, JiscPhaseSequence) {
  Observability obs;
  auto spans = RunEngineTransition(MakeJiscStrategy(), &obs);
  // The engine wraps the whole migration in "transition" with a nested
  // "drain"; the JISC runtime records "plan-diff" then "state-carryover"
  // inside it; post-transition probes of incomplete states record
  // per-value "jit-completion" spans.
  auto transition = SpansNamed(spans, "transition");
  ASSERT_EQ(transition.size(), 1u);
  auto drain = SpansNamed(spans, "drain");
  ASSERT_EQ(drain.size(), 1u);
  auto diff = SpansNamed(spans, "plan-diff");
  ASSERT_EQ(diff.size(), 1u);
  auto carry = SpansNamed(spans, "state-carryover");
  ASSERT_EQ(carry.size(), 1u);
  EXPECT_TRUE(NestsWithin(drain[0], transition[0]));
  EXPECT_TRUE(NestsWithin(diff[0], transition[0]));
  EXPECT_TRUE(NestsWithin(carry[0], transition[0]));
  // Phase order: drain, then diff, then carryover.
  EXPECT_LE(drain[0].start_ns + drain[0].dur_ns, diff[0].start_ns);
  EXPECT_LE(diff[0].start_ns + diff[0].dur_ns, carry[0].start_ns);
  // The worst-case reorder leaves states incomplete: JISC must complete
  // values just in time, after the transition closed.
  auto jit = SpansNamed(spans, "jit-completion");
  ASSERT_FALSE(jit.empty());
  for (const TraceSpan& s : jit) {
    EXPECT_GE(s.start_ns, transition[0].start_ns + transition[0].dur_ns);
    EXPECT_EQ(std::string(s.arg_name), "key");
  }
  // Everything JISC traced is migration-phase work.
  for (const TraceSpan& s : spans) {
    EXPECT_EQ(std::string(s.category), "migration") << s.name;
  }
  // And the completion histogram saw the same completions.
  EXPECT_EQ(obs.completion_ns.count(), jit.size());
}

TEST(MigrationTraceTest, MovingStatePhaseSequence) {
  Observability obs;
  auto spans = RunEngineTransition(MakeMovingStateStrategy(), &obs);
  auto transition = SpansNamed(spans, "transition");
  ASSERT_EQ(transition.size(), 1u);
  auto copy = SpansNamed(spans, "state-copy");
  ASSERT_EQ(copy.size(), 1u);
  auto compute = SpansNamed(spans, "state-compute");
  ASSERT_EQ(compute.size(), 1u);
  EXPECT_TRUE(NestsWithin(copy[0], transition[0]));
  EXPECT_TRUE(NestsWithin(compute[0], transition[0]));
  EXPECT_LE(copy[0].start_ns + copy[0].dur_ns, compute[0].start_ns);
  // Moving State is eager: it never completes anything just in time.
  EXPECT_FALSE(HasSpan(spans, "jit-completion"));
  EXPECT_EQ(obs.completion_ns.count(), 0u);
  // The eager rebuild materialized entries inside the transition.
  ASSERT_EQ(std::string(compute[0].arg_name), "inserts");
  EXPECT_GT(compute[0].arg, 0u);
}

// Drives a multi-plan (track) processor through a transition and past the
// purge point.
std::vector<TraceSpan> RunTrackTransition(ProcessorKind kind,
                                          Observability* obs) {
  int streams = 3;
  uint64_t window = 40;
  LogicalPlan plan =
      LogicalPlan::LeftDeep(IdentityOrder(streams), OpKind::kHashJoin);
  LogicalPlan next = LogicalPlan::LeftDeep(
      WorstCaseOrder(IdentityOrder(streams)), OpKind::kHashJoin);
  BuiltProcessor built =
      MakeProcessor(kind, plan, WindowSpec::Uniform(streams, window),
                    ThetaSpec(), /*parallelism=*/1, obs);
  auto tuples = UniformWorkload(streams, window, 1200, /*seed=*/5);
  size_t half = tuples.size() / 4;
  for (size_t i = 0; i < half; ++i) built.processor->Push(tuples[i]);
  EXPECT_TRUE(built.processor->RequestTransition(next).ok());
  // Enough post-transition traffic for every window to turn over, so the
  // old plan is purged.
  for (size_t i = half; i < tuples.size(); ++i) built.processor->Push(tuples[i]);
  return obs->trace.Snapshot();
}

TEST(MigrationTraceTest, ParallelTrackPhaseSequence) {
  Observability obs;
  auto spans = RunTrackTransition(ProcessorKind::kParallelTrack, &obs);
  auto transition = SpansNamed(spans, "transition");
  ASSERT_EQ(transition.size(), 1u);
  ASSERT_EQ(std::string(transition[0].arg_name), "live_plans");
  EXPECT_EQ(transition[0].arg, 2u);  // old + new side by side
  // The migration stage runs periodic purge scans until the old plan can
  // be discarded; the discard must come after the last scan started.
  auto scans = SpansNamed(spans, "purge-scan");
  ASSERT_FALSE(scans.empty());
  auto discard = SpansNamed(spans, "plan-discard");
  ASSERT_EQ(discard.size(), 1u);
  for (const TraceSpan& s : scans) {
    EXPECT_GE(s.start_ns, transition[0].start_ns);
    EXPECT_LE(s.start_ns, discard[0].start_ns);
  }
  // No eager rebuild, no JIT completion: Parallel Track's whole cost is
  // duplicated processing plus these scans.
  EXPECT_FALSE(HasSpan(spans, "state-compute"));
  EXPECT_FALSE(HasSpan(spans, "jit-completion"));
}

TEST(MigrationTraceTest, HybridTrackPhaseSequence) {
  Observability obs;
  auto spans = RunTrackTransition(ProcessorKind::kHybridTrack, &obs);
  auto transition = SpansNamed(spans, "transition");
  ASSERT_EQ(transition.size(), 1u);
  // The hybrid ingredient: state matching inside the transition.
  auto copy = SpansNamed(spans, "state-copy");
  ASSERT_EQ(copy.size(), 1u);
  EXPECT_TRUE(NestsWithin(copy[0], transition[0]));
  ASSERT_EQ(std::string(copy[0].arg_name), "states_copied");
  EXPECT_GT(copy[0].arg, 0u);  // scans at least match across any reorder
  // The worst-case reorder shares no join state: the old plan stays live
  // until purge detection retires it, as in plain Parallel Track.
  EXPECT_TRUE(HasSpan(spans, "purge-scan"));
  EXPECT_TRUE(HasSpan(spans, "plan-discard"));
}

// --- exporters -------------------------------------------------------------

TEST(TraceExportTest, ChromeTraceIsWellFormedAndSorted) {
  TraceRecorder rec(8);
  {
    TraceScope outer(&rec, "transition", "migration", /*track=*/0);
    TraceScope inner(&rec, "plan-diff", "migration", /*track=*/0);
    inner.SetArg("incomplete", 3);
  }
  std::ostringstream os;
  WriteChromeTrace(os, rec.Snapshot(), rec.dropped(), "trace_test");
  std::string json = os.str();
  // Structural spot checks (no JSON library in-repo): array form, complete
  // events, microsecond timestamps, our names and args present.
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"transition\""), std::string::npos);
  EXPECT_NE(json.find("\"plan-diff\""), std::string::npos);
  EXPECT_NE(json.find("\"incomplete\":3"), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  // The child recorded first but must be emitted after its parent (sorted
  // by start time).
  EXPECT_LT(json.find("\"transition\""), json.find("\"plan-diff\""));
}

TEST(TraceExportTest, ChromeTraceReportsTruncation) {
  TraceRecorder rec(2);
  for (uint64_t i = 0; i < 5; ++i) rec.Record(MakeSpan("s", i, i));
  std::ostringstream os;
  WriteChromeTrace(os, rec.Snapshot(), rec.dropped());
  EXPECT_NE(os.str().find("dropped"), std::string::npos);
  EXPECT_NE(os.str().find("3"), std::string::npos);
}

TEST(TraceExportTest, MetricsJsonCarriesCountersAndQuantiles) {
  Histogram h;
  for (uint64_t i = 1; i <= 1000; ++i) h.Record(i);
  std::ostringstream os;
  WriteMetricsJson(os, {{"arrivals", 42}}, {{"delay_ns", &h}});
  std::string json = os.str();
  EXPECT_NE(json.find("\"arrivals\": 42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"delay_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1000"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  // The trace section is always present so dashboards can alert on span
  // loss without probing for the key.
  EXPECT_NE(json.find("\"trace\": {\"dropped\": 0}"), std::string::npos);
}

TEST(TraceExportTest, MetricsJsonReportsRingDrops) {
  TraceRecorder rec(2);
  for (uint64_t i = 0; i < 7; ++i) rec.Record(MakeSpan("s", i, i));
  std::ostringstream os;
  WriteMetricsJson(os, {{"arrivals", 1}}, {}, rec.dropped());
  EXPECT_NE(os.str().find("\"trace\": {\"dropped\": 5}"), std::string::npos)
      << os.str();
}

}  // namespace
}  // namespace jisc
