#include <gtest/gtest.h>

#include "state/operator_state.h"

namespace jisc {
namespace {

BaseTuple MakeBase(StreamId s, JoinKey k, Seq seq) {
  BaseTuple b;
  b.stream = s;
  b.key = k;
  b.seq = seq;
  return b;
}

Tuple T(StreamId s, JoinKey k, Seq seq, Stamp birth = 0) {
  return Tuple::FromBase(MakeBase(s, k, seq), birth, true);
}

class OperatorStateTest : public ::testing::Test {
 protected:
  OperatorStateTest()
      : state_(StreamSet::Single(0), StateIndex::kHash) {}
  OperatorState state_;
};

TEST_F(OperatorStateTest, InsertAndProbeVisibility) {
  state_.Insert(T(0, 5, 1), /*insert_stamp=*/10);
  std::vector<Tuple> out;
  state_.CollectMatches(5, /*p=*/10, &out);
  EXPECT_TRUE(out.empty()) << "same-stamp entries are invisible";
  state_.CollectMatches(5, 11, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].parts()[0].seq, 1u);
}

TEST_F(OperatorStateTest, RemovalMakesInvisibleAtRemoveStamp) {
  state_.Insert(T(0, 5, 1), 10);
  std::vector<Tuple> removed;
  int n = state_.RemoveContaining(1, 5, /*remove_stamp=*/20, &removed);
  EXPECT_EQ(n, 1);
  ASSERT_EQ(removed.size(), 1u);
  std::vector<Tuple> out;
  state_.CollectMatches(5, 15, &out);  // probe between insert and remove
  EXPECT_EQ(out.size(), 1u);
  out.clear();
  state_.CollectMatches(5, 20, &out);  // probe at the removal stamp
  EXPECT_TRUE(out.empty());
  out.clear();
  state_.CollectMatches(5, 25, &out);
  EXPECT_TRUE(out.empty());
}

TEST_F(OperatorStateTest, DedupInsertSkipsLiveDuplicates) {
  EXPECT_TRUE(state_.Insert(T(0, 5, 1), 10, /*dedup=*/true));
  EXPECT_FALSE(state_.Insert(T(0, 5, 1), 12, /*dedup=*/true));
  EXPECT_EQ(state_.live_size(), 1u);
  // After removal, the same identity may be inserted again.
  state_.RemoveContaining(1, 5, 15, nullptr);
  EXPECT_TRUE(state_.Insert(T(0, 5, 1), 20, /*dedup=*/true));
}

TEST_F(OperatorStateTest, LiveCountsAndDistinctKeys) {
  state_.Insert(T(0, 5, 1), 1);
  state_.Insert(T(0, 5, 2), 2);
  state_.Insert(T(0, 7, 3), 3);
  EXPECT_EQ(state_.live_size(), 3u);
  EXPECT_EQ(state_.DistinctLiveKeys(), 2u);
  state_.RemoveContaining(1, 5, 4, nullptr);
  EXPECT_EQ(state_.live_size(), 2u);
  EXPECT_EQ(state_.DistinctLiveKeys(), 2u);
  state_.RemoveContaining(2, 5, 5, nullptr);
  EXPECT_EQ(state_.DistinctLiveKeys(), 1u);
  auto keys = state_.LiveKeys();
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], 7);
}

TEST_F(OperatorStateTest, VacuumDirtyErasesTombstones) {
  state_.Insert(T(0, 5, 1), 1);
  state_.Insert(T(0, 5, 2), 1);
  state_.RemoveContaining(1, 5, 3, nullptr);
  EXPECT_TRUE(state_.HasTombstones());
  state_.VacuumDirty();
  EXPECT_FALSE(state_.HasTombstones());
  // The survivor remains probe-able.
  std::vector<Tuple> out;
  state_.CollectMatches(5, 10, &out);
  EXPECT_EQ(out.size(), 1u);
}

TEST_F(OperatorStateTest, ContainsKeyLiveAndExact) {
  state_.Insert(T(0, 5, 1), 1);
  EXPECT_TRUE(state_.ContainsKeyLive(5));
  EXPECT_FALSE(state_.ContainsKeyLive(6));
  EXPECT_TRUE(state_.ContainsExactLive(T(0, 5, 1)));
  EXPECT_FALSE(state_.ContainsExactLive(T(0, 5, 2)));
  state_.RemoveExact(T(0, 5, 1), 2);
  EXPECT_FALSE(state_.ContainsKeyLive(5));
}

TEST_F(OperatorStateTest, RemoveExactOnMissingReturnsFalse) {
  EXPECT_FALSE(state_.RemoveExact(T(0, 5, 1), 2));
}

TEST_F(OperatorStateTest, ForEachVisibleAndLive) {
  state_.Insert(T(0, 5, 1), 1);
  state_.Insert(T(0, 6, 2), 5);
  state_.RemoveContaining(2, 6, 7, nullptr);
  int visible_at_6 = 0;
  state_.ForEachVisible(6, [&](const Tuple&) { ++visible_at_6; });
  EXPECT_EQ(visible_at_6, 2);  // the removed entry still visible before 7
  int live = 0;
  state_.ForEachLive([&](const Tuple&) { ++live; });
  EXPECT_EQ(live, 1);
}

TEST_F(OperatorStateTest, CompletenessBookkeeping) {
  EXPECT_TRUE(state_.complete());
  state_.MarkIncomplete();
  EXPECT_FALSE(state_.complete());
  EXPECT_FALSE(state_.IsKeyCompleted(5));
  state_.MarkKeyCompleted(5);
  EXPECT_TRUE(state_.IsKeyCompleted(5));
  EXPECT_EQ(state_.NumCompletedKeys(), 1u);
  state_.MarkComplete();
  EXPECT_TRUE(state_.complete());
  EXPECT_EQ(state_.NumCompletedKeys(), 0u);
}

TEST_F(OperatorStateTest, ClearResetsEverything) {
  state_.Insert(T(0, 5, 1), 1);
  state_.MarkIncomplete();
  state_.MarkKeyCompleted(5);
  state_.Clear();
  EXPECT_EQ(state_.live_size(), 0u);
  EXPECT_EQ(state_.DistinctLiveKeys(), 0u);
  EXPECT_EQ(state_.NumCompletedKeys(), 0u);
  EXPECT_FALSE(state_.ContainsKeyLive(5));
}

// Composite combinations: removal by any contained part's seq.
TEST(OperatorStateComboTest, RemoveContainingFindsCombos) {
  OperatorState st(StreamSet::Union(StreamSet::Single(0),
                                    StreamSet::Single(1)),
                   StateIndex::kHash);
  Tuple combo = Tuple::Concat(T(0, 5, 1), T(1, 5, 2), 3, true);
  st.Insert(combo, 3);
  EXPECT_EQ(st.RemoveContaining(2, 5, 9, nullptr), 1);
  EXPECT_EQ(st.live_size(), 0u);
}

// List-indexed states: removal must scan all buckets (combos may live under
// a different bucket key than the expired part's key).
TEST(OperatorStateComboTest, ListIndexRemovalScansAllBuckets) {
  OperatorState st(StreamSet::Union(StreamSet::Single(0),
                                    StreamSet::Single(1)),
                   StateIndex::kList);
  // Band-join combo: parts with different keys; bucket key = first part's.
  Tuple combo = Tuple::Concat(T(0, 5, 1), T(1, 7, 2), 3, true);
  st.Insert(combo, 3);
  // Remove by the *second* part's seq and key (different bucket).
  EXPECT_EQ(st.RemoveContaining(2, 7, 9, nullptr), 1);
  EXPECT_EQ(st.live_size(), 0u);
}

TEST(OperatorStateComboTest, HashIndexRemovalConfinedToKeyBucket) {
  OperatorState st(StreamSet::Single(0), StateIndex::kHash);
  st.Insert(T(0, 5, 1), 1);
  st.Insert(T(0, 6, 2), 1);
  // Wrong key: not found even though seq exists under key 5.
  EXPECT_EQ(st.RemoveContaining(1, 6, 9, nullptr), 0);
  EXPECT_EQ(st.RemoveContaining(1, 5, 9, nullptr), 1);
}

TEST(OperatorStateComboTest, DebugStringMentionsCompleteness) {
  OperatorState st(StreamSet::Single(3), StateIndex::kHash);
  EXPECT_NE(st.DebugString().find("complete"), std::string::npos);
  st.MarkIncomplete();
  EXPECT_NE(st.DebugString().find("INCOMPLETE"), std::string::npos);
}

}  // namespace
}  // namespace jisc
