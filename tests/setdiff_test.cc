// Windowed set-difference operator and its JISC migration (Section 4.7).

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/jisc_runtime.h"
#include "migration/moving_state.h"
#include "reference/naive_reference.h"
#include "tests/test_util.h"

namespace jisc {
namespace {

using testutil::IdentityMultiset;

BaseTuple Mk(StreamId stream, JoinKey key, Seq seq) {
  BaseTuple b;
  b.stream = stream;
  b.key = key;
  b.seq = seq;
  return b;
}

// Live result of a difference engine = live entries of the root state.
std::multiset<uint64_t> RootLiveSet(Engine* engine) {
  std::multiset<uint64_t> out;
  engine->executor().root()->state().ForEachLive(
      [&](const Tuple& t) { out.insert(t.IdentityHash()); });
  return out;
}

std::multiset<uint64_t> ReferenceSet(const NaiveDifferenceReference& ref) {
  std::multiset<uint64_t> out;
  for (const BaseTuple& b : ref.CurrentResult()) {
    out.insert(Tuple::FromBase(b, 0, true).IdentityHash());
  }
  return out;
}

TEST(SetDifferenceTest, BasicSuppressionAndRequalification) {
  LogicalPlan plan = LogicalPlan::SetDifferenceChain(0, {1});
  WindowSpec windows = WindowSpec::Uniform(2, 2);
  CollectingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  engine.Push(Mk(0, 5, 0));  // a admitted (no inner match)
  EXPECT_EQ(sink.outputs().size(), 1u);
  engine.Push(Mk(1, 5, 1));  // b suppresses a -> retraction
  EXPECT_EQ(sink.retractions().size(), 1u);
  EXPECT_EQ(engine.executor().root()->state().live_size(), 0u);
  // Slide b out of the inner window: a re-qualifies and is re-emitted.
  engine.Push(Mk(1, 9, 2));
  engine.Push(Mk(1, 9, 3));
  EXPECT_EQ(sink.outputs().size(), 2u);
  EXPECT_EQ(engine.executor().root()->state().live_size(), 1u);
}

TEST(SetDifferenceTest, OuterExpiryRemoves) {
  LogicalPlan plan = LogicalPlan::SetDifferenceChain(0, {1});
  WindowSpec windows = WindowSpec::Uniform(2, 1);
  CollectingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  engine.Push(Mk(0, 5, 0));
  engine.Push(Mk(0, 6, 1));  // displaces a
  EXPECT_EQ(sink.outputs().size(), 2u);
  EXPECT_EQ(sink.retractions().size(), 1u);
  EXPECT_EQ(engine.executor().root()->state().live_size(), 1u);
}

TEST(SetDifferenceTest, ChainMatchesNaiveReference) {
  LogicalPlan plan = LogicalPlan::SetDifferenceChain(0, {1, 2, 3});
  WindowSpec windows = WindowSpec::Uniform(4, 6);
  CollectingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  NaiveDifferenceReference ref(0, {1, 2, 3}, windows);
  auto tuples = testutil::UniformWorkload(4, 5, 400);
  for (const auto& t : tuples) {
    engine.Push(t);
    ref.Push(t);
  }
  EXPECT_EQ(RootLiveSet(&engine), ReferenceSet(ref));
}

// Section 4.7's example: ((A-B)-C)-D migrates to ((A-D)-B)-C. States AD and
// ADB are incomplete; ADBC is complete.
TEST(SetDifferenceTest, Section47Classification) {
  constexpr StreamId A = 0, B = 1, C = 2, D = 3;
  LogicalPlan old_plan = LogicalPlan::SetDifferenceChain(A, {B, C, D});
  LogicalPlan new_plan = LogicalPlan::SetDifferenceChain(A, {D, B, C});
  WindowSpec windows = WindowSpec::Uniform(4, 8);
  CollectingSink sink;
  Engine engine(old_plan, windows, &sink, MakeJiscStrategy());
  auto tuples = testutil::UniformWorkload(4, 4, 64);
  for (const auto& t : tuples) engine.Push(t);
  ASSERT_TRUE(engine.RequestTransition(new_plan).ok());
  auto set = [](std::initializer_list<StreamId> ss) {
    StreamSet acc;
    for (StreamId s : ss) acc = StreamSet::Union(acc, StreamSet::Single(s));
    return acc;
  };
  PipelineExecutor& exec = engine.executor();
  EXPECT_FALSE(exec.OpForStreams(set({A, D}))->state().complete());
  EXPECT_FALSE(exec.OpForStreams(set({A, D, B}))->state().complete());
  EXPECT_TRUE(exec.OpForStreams(set({A, D, B, C}))->state().complete());
}

// The Section 4.7 inner-clear rule: a fresh inner tuple probing an
// incomplete state is forwarded up to the first complete state, where the
// matching outer entry is cleared.
TEST(SetDifferenceTest, InnerClearPropagatesPastIncompleteStates) {
  constexpr StreamId A = 0, B = 1, C = 2, D = 3;
  LogicalPlan old_plan = LogicalPlan::SetDifferenceChain(A, {B, C, D});
  LogicalPlan new_plan = LogicalPlan::SetDifferenceChain(A, {D, B, C});
  WindowSpec windows = WindowSpec::Uniform(4, 8);
  CollectingSink sink;
  Engine engine(old_plan, windows, &sink, MakeJiscStrategy());
  // a survives (no inner matches anywhere) -> lives in every chain state.
  engine.Push(Mk(A, 7, 0));
  EXPECT_EQ(sink.outputs().size(), 1u);
  ASSERT_TRUE(engine.RequestTransition(new_plan).ok());
  // d arrives with a's key: it probes the incomplete AD state (empty), and
  // must be forwarded up until the complete ADBC state, clearing a there.
  engine.Push(Mk(D, 7, 1));
  ASSERT_EQ(sink.retractions().size(), 1u);
  EXPECT_EQ(engine.executor().root()->state().live_size(), 0u);
}

// Migration equivalence sweep: JISC (both procedures) and Moving State on a
// difference chain with transitions must match the naive reference at every
// checkpoint.
struct DiffScenario {
  bool moving_state;
  bool left_deep_procedure;
};

class SetDiffMigrationTest : public ::testing::TestWithParam<DiffScenario> {};

TEST_P(SetDiffMigrationTest, TransitionsMatchReference) {
  constexpr StreamId A = 0;
  LogicalPlan plan_a = LogicalPlan::SetDifferenceChain(A, {1, 2, 3});
  LogicalPlan plan_b = LogicalPlan::SetDifferenceChain(A, {3, 1, 2});
  LogicalPlan plan_c = LogicalPlan::SetDifferenceChain(A, {2, 3, 1});
  WindowSpec windows = WindowSpec::Uniform(4, 5);
  CollectingSink sink;
  std::unique_ptr<MigrationStrategy> strategy;
  if (GetParam().moving_state) {
    strategy = MakeMovingStateStrategy();
  } else {
    JiscOptions j;
    j.use_left_deep_procedure = GetParam().left_deep_procedure;
    strategy = MakeJiscStrategy(j);
  }
  Engine::Options eopts;
  eopts.maintain_period = 16;
  Engine engine(plan_a, windows, &sink, std::move(strategy), eopts);
  NaiveDifferenceReference ref(A, {1, 2, 3}, windows);
  auto tuples = testutil::UniformWorkload(4, 4, 600);
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (i == 150) ASSERT_TRUE(engine.RequestTransition(plan_b).ok());
    if (i == 300) ASSERT_TRUE(engine.RequestTransition(plan_c).ok());
    engine.Push(tuples[i]);
    ref.Push(tuples[i]);
    if (i % 97 == 0 || i + 1 == tuples.size()) {
      ASSERT_EQ(RootLiveSet(&engine), ReferenceSet(ref)) << "at tuple " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, SetDiffMigrationTest,
    ::testing::Values(DiffScenario{false, true}, DiffScenario{false, false},
                      DiffScenario{true, false}),
    [](const ::testing::TestParamInfo<DiffScenario>& i) {
      if (i.param.moving_state) return std::string("MovingState");
      return i.param.left_deep_procedure ? std::string("JiscLeftDeep")
                                         : std::string("JiscRecursive");
    });

}  // namespace
}  // namespace jisc
