// Engine checkpoint/restore: a restored engine must behave
// tuple-for-tuple like the uninterrupted one.

#include <map>
#include <string>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/checkpoint.h"
#include "core/jisc_runtime.h"
#include "exec/ingress_guard.h"
#include "migration/moving_state.h"
#include "plan/transitions.h"
#include "tests/test_util.h"
#include "workload/factory.h"

namespace jisc {
namespace {

using testutil::IdentityMultiset;
using testutil::IdentityOrder;
using testutil::UniformWorkload;

TEST(CheckpointTest, ResumeIsTupleForTupleEquivalent) {
  LogicalPlan plan = LogicalPlan::LeftDeep(IdentityOrder(4),
                                           OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 8);
  auto tuples = UniformWorkload(4, 4, 600);

  // Uninterrupted run.
  CollectingSink full_sink;
  Engine full(plan, windows, &full_sink, MakeJiscStrategy());
  for (const auto& t : tuples) full.Push(t);

  // Run half, checkpoint, restore, run the rest.
  CollectingSink first_sink;
  Engine first(plan, windows, &first_sink, MakeJiscStrategy());
  for (size_t i = 0; i < 300; ++i) first.Push(tuples[i]);
  auto bytes = CheckpointEngine(first);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();

  CollectingSink second_sink;
  auto restored = RestoreEngine(bytes.value(), &second_sink,
                                MakeJiscStrategy());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  for (size_t i = 300; i < tuples.size(); ++i) {
    restored.value()->Push(tuples[i]);
  }

  // First half + second half == uninterrupted run, exactly.
  auto combined_outputs = IdentityMultiset(first_sink.outputs());
  for (const Tuple& t : second_sink.outputs()) {
    combined_outputs.insert(t.IdentityHash());
  }
  EXPECT_EQ(combined_outputs, IdentityMultiset(full_sink.outputs()));
  auto combined_retractions = IdentityMultiset(first_sink.retractions());
  for (const Tuple& t : second_sink.retractions()) {
    combined_retractions.insert(t.IdentityHash());
  }
  EXPECT_EQ(combined_retractions, IdentityMultiset(full_sink.retractions()));
}

TEST(CheckpointTest, RestoredEngineCanMigrate) {
  LogicalPlan plan = LogicalPlan::LeftDeep(IdentityOrder(4),
                                           OpKind::kHashJoin);
  LogicalPlan next = LogicalPlan::LeftDeep(WorstCaseOrder(IdentityOrder(4)),
                                           OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 8);
  auto tuples = UniformWorkload(4, 4, 600);

  CollectingSink full_sink;
  Engine full(plan, windows, &full_sink, MakeJiscStrategy());
  for (size_t i = 0; i < 300; ++i) full.Push(tuples[i]);
  ASSERT_TRUE(full.RequestTransition(next).ok());
  for (size_t i = 300; i < tuples.size(); ++i) full.Push(tuples[i]);

  CollectingSink a_sink;
  Engine a(plan, windows, &a_sink, MakeJiscStrategy());
  for (size_t i = 0; i < 300; ++i) a.Push(tuples[i]);
  auto bytes = CheckpointEngine(a);
  ASSERT_TRUE(bytes.ok());
  CollectingSink b_sink;
  auto b = RestoreEngine(bytes.value(), &b_sink, MakeJiscStrategy());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(b.value()->RequestTransition(next).ok());
  for (size_t i = 300; i < tuples.size(); ++i) b.value()->Push(tuples[i]);

  auto combined = IdentityMultiset(a_sink.outputs());
  for (const Tuple& t : b_sink.outputs()) combined.insert(t.IdentityHash());
  EXPECT_EQ(combined, IdentityMultiset(full_sink.outputs()));
}

TEST(CheckpointTest, RejectsMidMigrationCheckpoints) {
  LogicalPlan plan = LogicalPlan::LeftDeep(IdentityOrder(4),
                                           OpKind::kHashJoin);
  LogicalPlan next = LogicalPlan::LeftDeep({3, 2, 1, 0}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 8);
  CollectingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  auto tuples = UniformWorkload(4, 4, 100);
  for (const auto& t : tuples) engine.Push(t);
  ASSERT_TRUE(engine.RequestTransition(next).ok());
  // Incomplete states exist right after the lazy transition.
  EXPECT_EQ(CheckpointEngine(engine).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(CheckpointTest, RejectsBufferedArrivals) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(2, 4);
  CollectingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  engine.PushNoDrain(UniformWorkload(2, 2, 1)[0]);
  EXPECT_EQ(CheckpointEngine(engine).status().code(),
            StatusCode::kFailedPrecondition);
  engine.Drain();
  EXPECT_TRUE(CheckpointEngine(engine).ok());
}

TEST(CheckpointTest, RejectsCorruptBytes) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(2, 4);
  CollectingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  for (const auto& t : UniformWorkload(2, 2, 50)) engine.Push(t);
  auto bytes = CheckpointEngine(engine);
  ASSERT_TRUE(bytes.ok());

  CollectingSink s2;
  EXPECT_FALSE(RestoreEngine("garbage", &s2, MakeJiscStrategy()).ok());
  std::string truncated = bytes.value().substr(0, bytes.value().size() / 2);
  EXPECT_FALSE(RestoreEngine(truncated, &s2, MakeJiscStrategy()).ok());
  std::string trailing = bytes.value() + "xx";
  EXPECT_FALSE(RestoreEngine(trailing, &s2, MakeJiscStrategy()).ok());
  std::string flipped = bytes.value();
  flipped[0] ^= 0x5a;  // magic
  EXPECT_FALSE(RestoreEngine(flipped, &s2, MakeJiscStrategy()).ok());
}

TEST(CheckpointTest, TimeWindowsRoundTrip) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1, 2}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::UniformTime(3, 20);
  auto tuples = UniformWorkload(3, 4, 400);

  CollectingSink full_sink;
  Engine full(plan, windows, &full_sink, MakeJiscStrategy());
  for (const auto& t : tuples) full.Push(t);

  CollectingSink a_sink;
  Engine a(plan, windows, &a_sink, MakeJiscStrategy());
  for (size_t i = 0; i < 200; ++i) a.Push(tuples[i]);
  auto bytes = CheckpointEngine(a);
  ASSERT_TRUE(bytes.ok());
  CollectingSink b_sink;
  auto b = RestoreEngine(bytes.value(), &b_sink, MakeJiscStrategy());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b.value()->windows().time_based());
  for (size_t i = 200; i < tuples.size(); ++i) b.value()->Push(tuples[i]);

  auto combined = IdentityMultiset(a_sink.outputs());
  for (const Tuple& t : b_sink.outputs()) combined.insert(t.IdentityHash());
  EXPECT_EQ(combined, IdentityMultiset(full_sink.outputs()));
}

TEST(CheckpointTest, GuardedEngineCheckpointsMidReorder) {
  // The checkpoint boundary may land while the IngressGuard's reorder
  // buffer is non-empty: the guard bytes must carry the buffered tuples so
  // the restored pipeline continues exactly where the original left off.
  LogicalPlan plan = LogicalPlan::LeftDeep(IdentityOrder(3),
                                           OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(3, 8);
  auto clean = UniformWorkload(3, 4, 400);
  // Shuffle in tumbling 16-tuple batches (the harness fault shape).
  std::vector<BaseTuple> corrupted;
  {
    Rng rng(7);
    std::vector<BaseTuple> batch;
    for (const BaseTuple& t : clean) {
      batch.push_back(t);
      if (batch.size() == 16) {
        for (size_t i = batch.size() - 1; i > 0; --i) {
          std::swap(batch[i], batch[rng.UniformU64(i + 1)]);
        }
        corrupted.insert(corrupted.end(), batch.begin(), batch.end());
        batch.clear();
      }
    }
  }
  IngressGuard::Options gopts;
  gopts.enabled = true;
  gopts.dedup_window = 64;
  gopts.reorder_window = 32;

  auto make_guarded = [&](CollectingSink* sink) {
    auto engine =
        std::make_unique<Engine>(plan, windows, sink, MakeJiscStrategy());
    auto guard = std::make_unique<IngressGuard>(gopts, 3);
    return std::make_unique<GuardedProcessor>(std::move(engine),
                                              std::move(guard));
  };

  // Uninterrupted guarded run over the corrupted feed.
  CollectingSink full_sink;
  auto full = make_guarded(&full_sink);
  for (const BaseTuple& t : corrupted) full->Push(t);
  full->FlushPending();

  // Run part of the feed, stopping mid-batch so tuples are pending.
  size_t split = 0;
  CollectingSink a_sink;
  auto a = make_guarded(&a_sink);
  for (size_t i = 0; i < corrupted.size(); ++i) {
    a->Push(corrupted[i]);
    if (i >= 200 && a->guard().pending() > 0) {
      split = i + 1;
      break;
    }
  }
  ASSERT_GT(split, 0u) << "feed never left the guard mid-reorder";
  ASSERT_GT(a->guard().pending(), 0u);

  auto bytes = CheckpointGuardedEngine(*a);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();

  CollectingSink b_sink;
  auto b = RestoreGuardedEngine(bytes.value(), &b_sink, MakeJiscStrategy());
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(b.value()->guard().pending(), a->guard().pending());
  EXPECT_EQ(b.value()->guard().next_expected(), a->guard().next_expected());

  for (size_t i = split; i < corrupted.size(); ++i) {
    b.value()->Push(corrupted[i]);
  }
  b.value()->FlushPending();

  auto combined = IdentityMultiset(a_sink.outputs());
  for (const Tuple& t : b_sink.outputs()) combined.insert(t.IdentityHash());
  EXPECT_EQ(combined, IdentityMultiset(full_sink.outputs()));
  // The guard admitted everything in order on both paths: the combined
  // stats match the uninterrupted run's.
  uint64_t restored_total = b.value()->guard().stats().reorder_restored;
  EXPECT_EQ(restored_total, full->guard().stats().reorder_restored);
  EXPECT_EQ(b.value()->guard().stats().late_admitted, 0u);
}

TEST(CheckpointTest, GuardedCheckpointRejectsCorruptBytes) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(2, 4);
  CollectingSink sink;
  IngressGuard::Options gopts;
  gopts.enabled = true;
  auto guarded = std::make_unique<GuardedProcessor>(
      std::make_unique<Engine>(plan, windows, &sink, MakeJiscStrategy()),
      std::make_unique<IngressGuard>(gopts, 2));
  for (const auto& t : UniformWorkload(2, 2, 50)) guarded->Push(t);
  auto bytes = CheckpointGuardedEngine(*guarded);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();

  CollectingSink s2;
  EXPECT_TRUE(
      RestoreGuardedEngine(bytes.value(), &s2, MakeJiscStrategy()).ok());
  EXPECT_FALSE(RestoreGuardedEngine("garbage", &s2, MakeJiscStrategy()).ok());
  std::string truncated = bytes.value().substr(0, bytes.value().size() / 2);
  EXPECT_FALSE(
      RestoreGuardedEngine(truncated, &s2, MakeJiscStrategy()).ok());
  std::string trailing = bytes.value() + "xx";
  EXPECT_FALSE(RestoreGuardedEngine(trailing, &s2, MakeJiscStrategy()).ok());
  std::string flipped = bytes.value();
  flipped[0] ^= 0x5a;  // guard magic
  EXPECT_FALSE(RestoreGuardedEngine(flipped, &s2, MakeJiscStrategy()).ok());
  // A plain engine checkpoint is not a guarded checkpoint.
  auto plain = CheckpointEngine(
      *static_cast<Engine*>(guarded->inner()));
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(
      RestoreGuardedEngine(plain.value(), &s2, MakeJiscStrategy()).ok());
}

TEST(CheckpointTest, MovingStateEngineRestoresUnderJisc) {
  // Strategy is behaviour, not state: a checkpoint taken under Moving State
  // restores under JISC (and vice versa).
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1, 2}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(3, 6);
  auto tuples = UniformWorkload(3, 3, 300);
  CollectingSink a_sink;
  Engine a(plan, windows, &a_sink, MakeMovingStateStrategy());
  for (size_t i = 0; i < 150; ++i) a.Push(tuples[i]);
  auto bytes = CheckpointEngine(a);
  ASSERT_TRUE(bytes.ok());
  CollectingSink b_sink;
  auto b = RestoreEngine(bytes.value(), &b_sink, MakeJiscStrategy());
  ASSERT_TRUE(b.ok());
  LogicalPlan next = LogicalPlan::LeftDeep({2, 0, 1}, OpKind::kHashJoin);
  ASSERT_TRUE(b.value()->RequestTransition(next).ok());
  for (size_t i = 150; i < tuples.size(); ++i) b.value()->Push(tuples[i]);
  // Sanity: output matches the reference over the whole run.
  NaiveJoinReference ref(3, windows);
  std::vector<Tuple> ref_out;
  for (const auto& t : tuples) ref.Push(t, &ref_out, nullptr);
  auto combined = IdentityMultiset(a_sink.outputs());
  for (const Tuple& t : b_sink.outputs()) combined.insert(t.IdentityHash());
  EXPECT_EQ(combined, IdentityMultiset(ref_out));
}

// --- fluid migration checkpoints (migration/fluid_scheduler.h) ---
//
// A checkpoint taken while a fluid drain is mid-flight serializes the
// in-flight migration bookkeeping (v2 format); the restored engine resumes
// the drain and must be indistinguishable from an uninterrupted twin.

FluidOptions SlowFluid() {
  FluidOptions fluid;
  fluid.mode = FluidOptions::Mode::kFluid;
  fluid.batch_keys = 1;  // one key per event: the drain spans many events
  return fluid;
}

std::map<std::string, uint64_t> CounterMap(const Metrics& m) {
  std::map<std::string, uint64_t> out;
  for (const auto& [name, value] : m.NamedCounters()) out[name] = value;
  return out;
}

// No-churn fluid workload (windows outlast the run, so nothing completes
// behind the drain's back and the maintain cadence — which restarts on
// restore — has no counters to move).
struct FluidFixture {
  LogicalPlan plan = LogicalPlan::LeftDeep(IdentityOrder(4),
                                           OpKind::kHashJoin);
  LogicalPlan next = LogicalPlan::LeftDeep(WorstCaseOrder(IdentityOrder(4)),
                                           OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 50000);
  std::vector<BaseTuple> tuples = UniformWorkload(4, 64, 1300, 13);
  FluidOptions fluid = SlowFluid();

  Engine::Options opts() const {
    Engine::Options o;
    o.fluid = fluid;
    return o;
  }
  std::unique_ptr<MigrationStrategy> strategy() const {
    return EngineStrategyFactory(ProcessorKind::kJisc, fluid)();
  }
};

TEST(FluidCheckpointTest, MidDrainRestoreReproducesUninterruptedCounters) {
  FluidFixture f;
  const size_t kSplit = 517;  // 512 warmup + 5 events into the drain

  // Uninterrupted twin.
  CollectingSink full_sink;
  Engine full(f.plan, f.windows, &full_sink, f.strategy(), f.opts());
  for (size_t i = 0; i < 512; ++i) full.Push(f.tuples[i]);
  ASSERT_TRUE(full.RequestTransition(f.next).ok());
  for (size_t i = 512; i < f.tuples.size(); ++i) full.Push(f.tuples[i]);
  auto full_counters = CounterMap(full.metrics());

  // Interrupted: checkpoint 5 events after the transition, mid-drain.
  CollectingSink a_sink;
  Engine a(f.plan, f.windows, &a_sink, f.strategy(), f.opts());
  for (size_t i = 0; i < 512; ++i) a.Push(f.tuples[i]);
  ASSERT_TRUE(a.RequestTransition(f.next).ok());
  for (size_t i = 512; i < kSplit; ++i) a.Push(f.tuples[i]);
  ASSERT_GT(a.strategy().FluidBacklog(), 0u) << "drain already finished";
  auto bytes = CheckpointEngine(a);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  auto a_counters = CounterMap(a.metrics());

  CollectingSink b_sink;
  auto b = RestoreEngine(bytes.value(), &b_sink, f.strategy(), f.opts());
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_GT(b.value()->strategy().FluidBacklog(), 0u);
  for (size_t i = kSplit; i < f.tuples.size(); ++i) {
    b.value()->Push(f.tuples[i]);
  }

  // Metrics restart from zero on restore, so the ledger claim is additive:
  // pre-checkpoint + post-restore == uninterrupted, counter for counter.
  auto b_counters = CounterMap(b.value()->metrics());
  ASSERT_EQ(full_counters.size(), a_counters.size());
  for (const auto& [name, value] : full_counters) {
    EXPECT_EQ(value, a_counters[name] + b_counters[name])
        << "counter '" << name << "' diverged across the restore";
  }
  auto combined = IdentityMultiset(a_sink.outputs());
  for (const Tuple& t : b_sink.outputs()) combined.insert(t.IdentityHash());
  EXPECT_EQ(combined, IdentityMultiset(full_sink.outputs()));

  // Both drains finished and the final states agree byte for byte.
  EXPECT_EQ(b.value()->strategy().FluidBacklog(), 0u);
  auto full_final = CheckpointEngine(full);
  auto b_final = CheckpointEngine(*b.value());
  ASSERT_TRUE(full_final.ok());
  ASSERT_TRUE(b_final.ok());
  EXPECT_EQ(full_final.value(), b_final.value());
}

TEST(FluidCheckpointTest, CorruptFluidBlobIsRejectedLoudly) {
  FluidFixture f;
  CollectingSink sink;
  Engine engine(f.plan, f.windows, &sink, f.strategy(), f.opts());
  for (size_t i = 0; i < 512; ++i) engine.Push(f.tuples[i]);
  ASSERT_TRUE(engine.RequestTransition(f.next).ok());
  for (size_t i = 512; i < 517; ++i) engine.Push(f.tuples[i]);
  ASSERT_GT(engine.strategy().FluidBacklog(), 0u);
  auto bytes = CheckpointEngine(engine);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();

  CollectingSink s2;
  // Sanity: the pristine blob restores.
  ASSERT_TRUE(
      RestoreEngine(bytes.value(), &s2, f.strategy(), f.opts()).ok());

  // Truncating or extending the strategy blob fails.
  std::string truncated = bytes.value().substr(0, bytes.value().size() - 3);
  EXPECT_FALSE(RestoreEngine(truncated, &s2, f.strategy(), f.opts()).ok());
  std::string trailing = bytes.value() + "xx";
  EXPECT_FALSE(RestoreEngine(trailing, &s2, f.strategy(), f.opts()).ok());

  // Flipping the fluid blob's magic fails with InvalidArgument. The blob is
  // embedded verbatim in the checkpoint; locate it by its leading bytes.
  std::string blob = engine.strategy().SerializeMigrationState();
  ASSERT_GE(blob.size(), 8u);
  size_t pos = bytes.value().find(blob.substr(0, 8));
  ASSERT_NE(pos, std::string::npos);
  std::string flipped = bytes.value();
  flipped[pos] ^= 0x5a;
  auto r = RestoreEngine(flipped, &s2, f.strategy(), f.opts());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  // A mid-migration checkpoint restored under a strategy that cannot carry
  // migration state (plain all-at-once JISC) is refused, not half-restored.
  EXPECT_FALSE(RestoreEngine(bytes.value(), &s2, MakeJiscStrategy()).ok());
}

TEST(FluidCheckpointTest, QuiescedFluidEngineStillWritesV1Bytes) {
  // Once the drain has finished, a fluid engine's checkpoint is the plain
  // v1 format: byte-identical to an all-at-once engine's at the same state,
  // and restorable under any strategy.
  FluidFixture f;
  CollectingSink fluid_sink;
  Engine fluid_engine(f.plan, f.windows, &fluid_sink, f.strategy(),
                      f.opts());
  CollectingSink plain_sink;
  Engine plain_engine(f.plan, f.windows, &plain_sink, MakeJiscStrategy());
  for (size_t i = 0; i < f.tuples.size(); ++i) {
    fluid_engine.Push(f.tuples[i]);
    plain_engine.Push(f.tuples[i]);
  }
  auto fluid_bytes = CheckpointEngine(fluid_engine);
  auto plain_bytes = CheckpointEngine(plain_engine);
  ASSERT_TRUE(fluid_bytes.ok());
  ASSERT_TRUE(plain_bytes.ok());
  EXPECT_EQ(fluid_bytes.value(), plain_bytes.value());
  CollectingSink s2;
  EXPECT_TRUE(
      RestoreEngine(fluid_bytes.value(), &s2, MakeJiscStrategy()).ok());
}

}  // namespace
}  // namespace jisc
