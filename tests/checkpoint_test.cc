// Engine checkpoint/restore: a restored engine must behave
// tuple-for-tuple like the uninterrupted one.

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/checkpoint.h"
#include "core/jisc_runtime.h"
#include "exec/ingress_guard.h"
#include "migration/moving_state.h"
#include "plan/transitions.h"
#include "tests/test_util.h"

namespace jisc {
namespace {

using testutil::IdentityMultiset;
using testutil::IdentityOrder;
using testutil::UniformWorkload;

TEST(CheckpointTest, ResumeIsTupleForTupleEquivalent) {
  LogicalPlan plan = LogicalPlan::LeftDeep(IdentityOrder(4),
                                           OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 8);
  auto tuples = UniformWorkload(4, 4, 600);

  // Uninterrupted run.
  CollectingSink full_sink;
  Engine full(plan, windows, &full_sink, MakeJiscStrategy());
  for (const auto& t : tuples) full.Push(t);

  // Run half, checkpoint, restore, run the rest.
  CollectingSink first_sink;
  Engine first(plan, windows, &first_sink, MakeJiscStrategy());
  for (size_t i = 0; i < 300; ++i) first.Push(tuples[i]);
  auto bytes = CheckpointEngine(first);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();

  CollectingSink second_sink;
  auto restored = RestoreEngine(bytes.value(), &second_sink,
                                MakeJiscStrategy());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  for (size_t i = 300; i < tuples.size(); ++i) {
    restored.value()->Push(tuples[i]);
  }

  // First half + second half == uninterrupted run, exactly.
  auto combined_outputs = IdentityMultiset(first_sink.outputs());
  for (const Tuple& t : second_sink.outputs()) {
    combined_outputs.insert(t.IdentityHash());
  }
  EXPECT_EQ(combined_outputs, IdentityMultiset(full_sink.outputs()));
  auto combined_retractions = IdentityMultiset(first_sink.retractions());
  for (const Tuple& t : second_sink.retractions()) {
    combined_retractions.insert(t.IdentityHash());
  }
  EXPECT_EQ(combined_retractions, IdentityMultiset(full_sink.retractions()));
}

TEST(CheckpointTest, RestoredEngineCanMigrate) {
  LogicalPlan plan = LogicalPlan::LeftDeep(IdentityOrder(4),
                                           OpKind::kHashJoin);
  LogicalPlan next = LogicalPlan::LeftDeep(WorstCaseOrder(IdentityOrder(4)),
                                           OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 8);
  auto tuples = UniformWorkload(4, 4, 600);

  CollectingSink full_sink;
  Engine full(plan, windows, &full_sink, MakeJiscStrategy());
  for (size_t i = 0; i < 300; ++i) full.Push(tuples[i]);
  ASSERT_TRUE(full.RequestTransition(next).ok());
  for (size_t i = 300; i < tuples.size(); ++i) full.Push(tuples[i]);

  CollectingSink a_sink;
  Engine a(plan, windows, &a_sink, MakeJiscStrategy());
  for (size_t i = 0; i < 300; ++i) a.Push(tuples[i]);
  auto bytes = CheckpointEngine(a);
  ASSERT_TRUE(bytes.ok());
  CollectingSink b_sink;
  auto b = RestoreEngine(bytes.value(), &b_sink, MakeJiscStrategy());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(b.value()->RequestTransition(next).ok());
  for (size_t i = 300; i < tuples.size(); ++i) b.value()->Push(tuples[i]);

  auto combined = IdentityMultiset(a_sink.outputs());
  for (const Tuple& t : b_sink.outputs()) combined.insert(t.IdentityHash());
  EXPECT_EQ(combined, IdentityMultiset(full_sink.outputs()));
}

TEST(CheckpointTest, RejectsMidMigrationCheckpoints) {
  LogicalPlan plan = LogicalPlan::LeftDeep(IdentityOrder(4),
                                           OpKind::kHashJoin);
  LogicalPlan next = LogicalPlan::LeftDeep({3, 2, 1, 0}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 8);
  CollectingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  auto tuples = UniformWorkload(4, 4, 100);
  for (const auto& t : tuples) engine.Push(t);
  ASSERT_TRUE(engine.RequestTransition(next).ok());
  // Incomplete states exist right after the lazy transition.
  EXPECT_EQ(CheckpointEngine(engine).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(CheckpointTest, RejectsBufferedArrivals) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(2, 4);
  CollectingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  engine.PushNoDrain(UniformWorkload(2, 2, 1)[0]);
  EXPECT_EQ(CheckpointEngine(engine).status().code(),
            StatusCode::kFailedPrecondition);
  engine.Drain();
  EXPECT_TRUE(CheckpointEngine(engine).ok());
}

TEST(CheckpointTest, RejectsCorruptBytes) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(2, 4);
  CollectingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  for (const auto& t : UniformWorkload(2, 2, 50)) engine.Push(t);
  auto bytes = CheckpointEngine(engine);
  ASSERT_TRUE(bytes.ok());

  CollectingSink s2;
  EXPECT_FALSE(RestoreEngine("garbage", &s2, MakeJiscStrategy()).ok());
  std::string truncated = bytes.value().substr(0, bytes.value().size() / 2);
  EXPECT_FALSE(RestoreEngine(truncated, &s2, MakeJiscStrategy()).ok());
  std::string trailing = bytes.value() + "xx";
  EXPECT_FALSE(RestoreEngine(trailing, &s2, MakeJiscStrategy()).ok());
  std::string flipped = bytes.value();
  flipped[0] ^= 0x5a;  // magic
  EXPECT_FALSE(RestoreEngine(flipped, &s2, MakeJiscStrategy()).ok());
}

TEST(CheckpointTest, TimeWindowsRoundTrip) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1, 2}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::UniformTime(3, 20);
  auto tuples = UniformWorkload(3, 4, 400);

  CollectingSink full_sink;
  Engine full(plan, windows, &full_sink, MakeJiscStrategy());
  for (const auto& t : tuples) full.Push(t);

  CollectingSink a_sink;
  Engine a(plan, windows, &a_sink, MakeJiscStrategy());
  for (size_t i = 0; i < 200; ++i) a.Push(tuples[i]);
  auto bytes = CheckpointEngine(a);
  ASSERT_TRUE(bytes.ok());
  CollectingSink b_sink;
  auto b = RestoreEngine(bytes.value(), &b_sink, MakeJiscStrategy());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b.value()->windows().time_based());
  for (size_t i = 200; i < tuples.size(); ++i) b.value()->Push(tuples[i]);

  auto combined = IdentityMultiset(a_sink.outputs());
  for (const Tuple& t : b_sink.outputs()) combined.insert(t.IdentityHash());
  EXPECT_EQ(combined, IdentityMultiset(full_sink.outputs()));
}

TEST(CheckpointTest, GuardedEngineCheckpointsMidReorder) {
  // The checkpoint boundary may land while the IngressGuard's reorder
  // buffer is non-empty: the guard bytes must carry the buffered tuples so
  // the restored pipeline continues exactly where the original left off.
  LogicalPlan plan = LogicalPlan::LeftDeep(IdentityOrder(3),
                                           OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(3, 8);
  auto clean = UniformWorkload(3, 4, 400);
  // Shuffle in tumbling 16-tuple batches (the harness fault shape).
  std::vector<BaseTuple> corrupted;
  {
    Rng rng(7);
    std::vector<BaseTuple> batch;
    for (const BaseTuple& t : clean) {
      batch.push_back(t);
      if (batch.size() == 16) {
        for (size_t i = batch.size() - 1; i > 0; --i) {
          std::swap(batch[i], batch[rng.UniformU64(i + 1)]);
        }
        corrupted.insert(corrupted.end(), batch.begin(), batch.end());
        batch.clear();
      }
    }
  }
  IngressGuard::Options gopts;
  gopts.enabled = true;
  gopts.dedup_window = 64;
  gopts.reorder_window = 32;

  auto make_guarded = [&](CollectingSink* sink) {
    auto engine =
        std::make_unique<Engine>(plan, windows, sink, MakeJiscStrategy());
    auto guard = std::make_unique<IngressGuard>(gopts, 3);
    return std::make_unique<GuardedProcessor>(std::move(engine),
                                              std::move(guard));
  };

  // Uninterrupted guarded run over the corrupted feed.
  CollectingSink full_sink;
  auto full = make_guarded(&full_sink);
  for (const BaseTuple& t : corrupted) full->Push(t);
  full->FlushPending();

  // Run part of the feed, stopping mid-batch so tuples are pending.
  size_t split = 0;
  CollectingSink a_sink;
  auto a = make_guarded(&a_sink);
  for (size_t i = 0; i < corrupted.size(); ++i) {
    a->Push(corrupted[i]);
    if (i >= 200 && a->guard().pending() > 0) {
      split = i + 1;
      break;
    }
  }
  ASSERT_GT(split, 0u) << "feed never left the guard mid-reorder";
  ASSERT_GT(a->guard().pending(), 0u);

  auto bytes = CheckpointGuardedEngine(*a);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();

  CollectingSink b_sink;
  auto b = RestoreGuardedEngine(bytes.value(), &b_sink, MakeJiscStrategy());
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(b.value()->guard().pending(), a->guard().pending());
  EXPECT_EQ(b.value()->guard().next_expected(), a->guard().next_expected());

  for (size_t i = split; i < corrupted.size(); ++i) {
    b.value()->Push(corrupted[i]);
  }
  b.value()->FlushPending();

  auto combined = IdentityMultiset(a_sink.outputs());
  for (const Tuple& t : b_sink.outputs()) combined.insert(t.IdentityHash());
  EXPECT_EQ(combined, IdentityMultiset(full_sink.outputs()));
  // The guard admitted everything in order on both paths: the combined
  // stats match the uninterrupted run's.
  uint64_t restored_total = b.value()->guard().stats().reorder_restored;
  EXPECT_EQ(restored_total, full->guard().stats().reorder_restored);
  EXPECT_EQ(b.value()->guard().stats().late_admitted, 0u);
}

TEST(CheckpointTest, GuardedCheckpointRejectsCorruptBytes) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(2, 4);
  CollectingSink sink;
  IngressGuard::Options gopts;
  gopts.enabled = true;
  auto guarded = std::make_unique<GuardedProcessor>(
      std::make_unique<Engine>(plan, windows, &sink, MakeJiscStrategy()),
      std::make_unique<IngressGuard>(gopts, 2));
  for (const auto& t : UniformWorkload(2, 2, 50)) guarded->Push(t);
  auto bytes = CheckpointGuardedEngine(*guarded);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();

  CollectingSink s2;
  EXPECT_TRUE(
      RestoreGuardedEngine(bytes.value(), &s2, MakeJiscStrategy()).ok());
  EXPECT_FALSE(RestoreGuardedEngine("garbage", &s2, MakeJiscStrategy()).ok());
  std::string truncated = bytes.value().substr(0, bytes.value().size() / 2);
  EXPECT_FALSE(
      RestoreGuardedEngine(truncated, &s2, MakeJiscStrategy()).ok());
  std::string trailing = bytes.value() + "xx";
  EXPECT_FALSE(RestoreGuardedEngine(trailing, &s2, MakeJiscStrategy()).ok());
  std::string flipped = bytes.value();
  flipped[0] ^= 0x5a;  // guard magic
  EXPECT_FALSE(RestoreGuardedEngine(flipped, &s2, MakeJiscStrategy()).ok());
  // A plain engine checkpoint is not a guarded checkpoint.
  auto plain = CheckpointEngine(
      *static_cast<Engine*>(guarded->inner()));
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(
      RestoreGuardedEngine(plain.value(), &s2, MakeJiscStrategy()).ok());
}

TEST(CheckpointTest, MovingStateEngineRestoresUnderJisc) {
  // Strategy is behaviour, not state: a checkpoint taken under Moving State
  // restores under JISC (and vice versa).
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1, 2}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(3, 6);
  auto tuples = UniformWorkload(3, 3, 300);
  CollectingSink a_sink;
  Engine a(plan, windows, &a_sink, MakeMovingStateStrategy());
  for (size_t i = 0; i < 150; ++i) a.Push(tuples[i]);
  auto bytes = CheckpointEngine(a);
  ASSERT_TRUE(bytes.ok());
  CollectingSink b_sink;
  auto b = RestoreEngine(bytes.value(), &b_sink, MakeJiscStrategy());
  ASSERT_TRUE(b.ok());
  LogicalPlan next = LogicalPlan::LeftDeep({2, 0, 1}, OpKind::kHashJoin);
  ASSERT_TRUE(b.value()->RequestTransition(next).ok());
  for (size_t i = 150; i < tuples.size(); ++i) b.value()->Push(tuples[i]);
  // Sanity: output matches the reference over the whole run.
  NaiveJoinReference ref(3, windows);
  std::vector<Tuple> ref_out;
  for (const auto& t : tuples) ref.Push(t, &ref_out, nullptr);
  auto combined = IdentityMultiset(a_sink.outputs());
  for (const Tuple& t : b_sink.outputs()) combined.insert(t.IdentityHash());
  EXPECT_EQ(combined, IdentityMultiset(ref_out));
}

}  // namespace
}  // namespace jisc
