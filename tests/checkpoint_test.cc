// Engine checkpoint/restore: a restored engine must behave
// tuple-for-tuple like the uninterrupted one.

#include <gtest/gtest.h>

#include "core/checkpoint.h"
#include "core/jisc_runtime.h"
#include "migration/moving_state.h"
#include "plan/transitions.h"
#include "tests/test_util.h"

namespace jisc {
namespace {

using testutil::IdentityMultiset;
using testutil::IdentityOrder;
using testutil::UniformWorkload;

TEST(CheckpointTest, ResumeIsTupleForTupleEquivalent) {
  LogicalPlan plan = LogicalPlan::LeftDeep(IdentityOrder(4),
                                           OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 8);
  auto tuples = UniformWorkload(4, 4, 600);

  // Uninterrupted run.
  CollectingSink full_sink;
  Engine full(plan, windows, &full_sink, MakeJiscStrategy());
  for (const auto& t : tuples) full.Push(t);

  // Run half, checkpoint, restore, run the rest.
  CollectingSink first_sink;
  Engine first(plan, windows, &first_sink, MakeJiscStrategy());
  for (size_t i = 0; i < 300; ++i) first.Push(tuples[i]);
  auto bytes = CheckpointEngine(first);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();

  CollectingSink second_sink;
  auto restored = RestoreEngine(bytes.value(), &second_sink,
                                MakeJiscStrategy());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  for (size_t i = 300; i < tuples.size(); ++i) {
    restored.value()->Push(tuples[i]);
  }

  // First half + second half == uninterrupted run, exactly.
  auto combined_outputs = IdentityMultiset(first_sink.outputs());
  for (const Tuple& t : second_sink.outputs()) {
    combined_outputs.insert(t.IdentityHash());
  }
  EXPECT_EQ(combined_outputs, IdentityMultiset(full_sink.outputs()));
  auto combined_retractions = IdentityMultiset(first_sink.retractions());
  for (const Tuple& t : second_sink.retractions()) {
    combined_retractions.insert(t.IdentityHash());
  }
  EXPECT_EQ(combined_retractions, IdentityMultiset(full_sink.retractions()));
}

TEST(CheckpointTest, RestoredEngineCanMigrate) {
  LogicalPlan plan = LogicalPlan::LeftDeep(IdentityOrder(4),
                                           OpKind::kHashJoin);
  LogicalPlan next = LogicalPlan::LeftDeep(WorstCaseOrder(IdentityOrder(4)),
                                           OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 8);
  auto tuples = UniformWorkload(4, 4, 600);

  CollectingSink full_sink;
  Engine full(plan, windows, &full_sink, MakeJiscStrategy());
  for (size_t i = 0; i < 300; ++i) full.Push(tuples[i]);
  ASSERT_TRUE(full.RequestTransition(next).ok());
  for (size_t i = 300; i < tuples.size(); ++i) full.Push(tuples[i]);

  CollectingSink a_sink;
  Engine a(plan, windows, &a_sink, MakeJiscStrategy());
  for (size_t i = 0; i < 300; ++i) a.Push(tuples[i]);
  auto bytes = CheckpointEngine(a);
  ASSERT_TRUE(bytes.ok());
  CollectingSink b_sink;
  auto b = RestoreEngine(bytes.value(), &b_sink, MakeJiscStrategy());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(b.value()->RequestTransition(next).ok());
  for (size_t i = 300; i < tuples.size(); ++i) b.value()->Push(tuples[i]);

  auto combined = IdentityMultiset(a_sink.outputs());
  for (const Tuple& t : b_sink.outputs()) combined.insert(t.IdentityHash());
  EXPECT_EQ(combined, IdentityMultiset(full_sink.outputs()));
}

TEST(CheckpointTest, RejectsMidMigrationCheckpoints) {
  LogicalPlan plan = LogicalPlan::LeftDeep(IdentityOrder(4),
                                           OpKind::kHashJoin);
  LogicalPlan next = LogicalPlan::LeftDeep({3, 2, 1, 0}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 8);
  CollectingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  auto tuples = UniformWorkload(4, 4, 100);
  for (const auto& t : tuples) engine.Push(t);
  ASSERT_TRUE(engine.RequestTransition(next).ok());
  // Incomplete states exist right after the lazy transition.
  EXPECT_EQ(CheckpointEngine(engine).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(CheckpointTest, RejectsBufferedArrivals) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(2, 4);
  CollectingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  engine.PushNoDrain(UniformWorkload(2, 2, 1)[0]);
  EXPECT_EQ(CheckpointEngine(engine).status().code(),
            StatusCode::kFailedPrecondition);
  engine.Drain();
  EXPECT_TRUE(CheckpointEngine(engine).ok());
}

TEST(CheckpointTest, RejectsCorruptBytes) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(2, 4);
  CollectingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  for (const auto& t : UniformWorkload(2, 2, 50)) engine.Push(t);
  auto bytes = CheckpointEngine(engine);
  ASSERT_TRUE(bytes.ok());

  CollectingSink s2;
  EXPECT_FALSE(RestoreEngine("garbage", &s2, MakeJiscStrategy()).ok());
  std::string truncated = bytes.value().substr(0, bytes.value().size() / 2);
  EXPECT_FALSE(RestoreEngine(truncated, &s2, MakeJiscStrategy()).ok());
  std::string trailing = bytes.value() + "xx";
  EXPECT_FALSE(RestoreEngine(trailing, &s2, MakeJiscStrategy()).ok());
  std::string flipped = bytes.value();
  flipped[0] ^= 0x5a;  // magic
  EXPECT_FALSE(RestoreEngine(flipped, &s2, MakeJiscStrategy()).ok());
}

TEST(CheckpointTest, TimeWindowsRoundTrip) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1, 2}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::UniformTime(3, 20);
  auto tuples = UniformWorkload(3, 4, 400);

  CollectingSink full_sink;
  Engine full(plan, windows, &full_sink, MakeJiscStrategy());
  for (const auto& t : tuples) full.Push(t);

  CollectingSink a_sink;
  Engine a(plan, windows, &a_sink, MakeJiscStrategy());
  for (size_t i = 0; i < 200; ++i) a.Push(tuples[i]);
  auto bytes = CheckpointEngine(a);
  ASSERT_TRUE(bytes.ok());
  CollectingSink b_sink;
  auto b = RestoreEngine(bytes.value(), &b_sink, MakeJiscStrategy());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b.value()->windows().time_based());
  for (size_t i = 200; i < tuples.size(); ++i) b.value()->Push(tuples[i]);

  auto combined = IdentityMultiset(a_sink.outputs());
  for (const Tuple& t : b_sink.outputs()) combined.insert(t.IdentityHash());
  EXPECT_EQ(combined, IdentityMultiset(full_sink.outputs()));
}

TEST(CheckpointTest, MovingStateEngineRestoresUnderJisc) {
  // Strategy is behaviour, not state: a checkpoint taken under Moving State
  // restores under JISC (and vice versa).
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1, 2}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(3, 6);
  auto tuples = UniformWorkload(3, 3, 300);
  CollectingSink a_sink;
  Engine a(plan, windows, &a_sink, MakeMovingStateStrategy());
  for (size_t i = 0; i < 150; ++i) a.Push(tuples[i]);
  auto bytes = CheckpointEngine(a);
  ASSERT_TRUE(bytes.ok());
  CollectingSink b_sink;
  auto b = RestoreEngine(bytes.value(), &b_sink, MakeJiscStrategy());
  ASSERT_TRUE(b.ok());
  LogicalPlan next = LogicalPlan::LeftDeep({2, 0, 1}, OpKind::kHashJoin);
  ASSERT_TRUE(b.value()->RequestTransition(next).ok());
  for (size_t i = 150; i < tuples.size(); ++i) b.value()->Push(tuples[i]);
  // Sanity: output matches the reference over the whole run.
  NaiveJoinReference ref(3, windows);
  std::vector<Tuple> ref_out;
  for (const auto& t : tuples) ref.Push(t, &ref_out, nullptr);
  auto combined = IdentityMultiset(a_sink.outputs());
  for (const Tuple& t : b_sink.outputs()) combined.insert(t.IdentityHash());
  EXPECT_EQ(combined, IdentityMultiset(ref_out));
}

}  // namespace
}  // namespace jisc
