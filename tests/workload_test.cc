#include <gtest/gtest.h>

#include "common/env.h"
#include "plan/transitions.h"
#include "stream/synthetic_source.h"
#include "tests/test_util.h"
#include "workload/factory.h"
#include "workload/runner.h"

namespace jisc {
namespace {

using testutil::IdentityOrder;

TEST(SyntheticSourceTest, RoundRobinInterleaveAndSeq) {
  SourceConfig cfg;
  cfg.num_streams = 3;
  cfg.key_domain = 10;
  SyntheticSource src(cfg);
  for (Seq i = 0; i < 30; ++i) {
    BaseTuple t = src.Next();
    EXPECT_EQ(t.stream, i % 3);
    EXPECT_EQ(t.seq, i);
    EXPECT_GE(t.key, 0);
    EXPECT_LT(t.key, 10);
  }
  EXPECT_EQ(src.tuples_emitted(), 30u);
}

TEST(SyntheticSourceTest, DeterministicPerSeed) {
  SourceConfig cfg;
  cfg.num_streams = 2;
  cfg.key_domain = 100;
  cfg.seed = 5;
  SyntheticSource a(cfg);
  SyntheticSource b(cfg);
  for (int i = 0; i < 100; ++i) {
    BaseTuple x = a.Next();
    BaseTuple y = b.Next();
    EXPECT_EQ(x.key, y.key);
    EXPECT_EQ(x.stream, y.stream);
  }
}

TEST(SyntheticSourceTest, DomainShiftTakesEffect) {
  SourceConfig cfg;
  cfg.num_streams = 1;
  cfg.key_domain = 1;  // all keys 0
  SyntheticSource src(cfg);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(src.Next().key, 0);
  src.SetKeyDomain(1000);
  bool saw_nonzero = false;
  for (int i = 0; i < 50; ++i) saw_nonzero |= (src.Next().key != 0);
  EXPECT_TRUE(saw_nonzero);
}

TEST(SyntheticSourceTest, ForcedStream) {
  SourceConfig cfg;
  cfg.num_streams = 4;
  SyntheticSource src(cfg);
  src.ForceStream(StreamId{2});
  for (int i = 0; i < 10; ++i) EXPECT_EQ(src.Next().stream, 2);
  src.ForceStream(std::nullopt);
  EXPECT_NE(src.Next().stream, src.Next().stream);
}

TEST(FactoryTest, AllKindsConstructAndRun) {
  LogicalPlan plan = LogicalPlan::LeftDeep(IdentityOrder(3),
                                           OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(3, 8);
  for (ProcessorKind kind :
       {ProcessorKind::kJisc, ProcessorKind::kJiscFirstReceipt,
        ProcessorKind::kMovingState, ProcessorKind::kParallelTrack,
        ProcessorKind::kHybridTrack, ProcessorKind::kCacq,
        ProcessorKind::kMJoin, ProcessorKind::kStairsEager,
        ProcessorKind::kStairsJisc, ProcessorKind::kStaticPipeline}) {
    BuiltProcessor built = MakeProcessor(kind, plan, windows);
    ASSERT_NE(built.processor, nullptr) << ProcessorKindName(kind);
    SourceConfig cfg;
    cfg.num_streams = 3;
    cfg.key_domain = 8;
    SyntheticSource src(cfg);
    ConsumeStats stats = Consume(built.processor.get(), &src, 100);
    EXPECT_EQ(stats.tuples, 100u);
    EXPECT_GT(stats.work_units, 0u) << ProcessorKindName(kind);
    EXPECT_EQ(built.processor->metrics().arrivals, 100u)
        << ProcessorKindName(kind);
  }
}

TEST(FactoryTest, NamesAreStable) {
  EXPECT_STREQ(ProcessorKindName(ProcessorKind::kJisc), "jisc");
  EXPECT_STREQ(ProcessorKindName(ProcessorKind::kCacq), "cacq");
  EXPECT_STREQ(ProcessorKindName(ProcessorKind::kParallelTrack),
               "parallel-track");
  EXPECT_EQ(PipelineStrategyKinds().size(), 4u);
}

TEST(RunnerTest, LatencyProbeJiscVsMovingState) {
  auto order = IdentityOrder(4);
  LogicalPlan plan = LogicalPlan::LeftDeep(order, OpKind::kHashJoin);
  LogicalPlan next = LogicalPlan::LeftDeep(WorstCaseOrder(order),
                                           OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 64);
  SourceConfig cfg;
  cfg.num_streams = 4;
  cfg.key_domain = 32;

  auto measure = [&](ProcessorKind kind) {
    BuiltProcessor built = MakeProcessor(kind, plan, windows);
    SyntheticSource src(cfg);
    WarmUp(built.processor.get(), &src, 4, 64);
    return MeasureTransitionLatency(built.processor.get(), built.sink.get(),
                                    next, &src, 4000);
  };
  LatencyResult jisc = measure(ProcessorKind::kJisc);
  LatencyResult ms = measure(ProcessorKind::kMovingState);
  // Both produce output soon after the transition; Moving State pays the
  // eager recomputation inside the migration phase.
  EXPECT_GT(jisc.tuples_until_output, 0u);
  EXPECT_GT(ms.migration_seconds, 0.0);
  EXPECT_LE(jisc.migration_seconds, ms.migration_seconds);
}

TEST(RunnerTest, ConsumeRecordedRanges) {
  LogicalPlan plan = LogicalPlan::LeftDeep(IdentityOrder(2),
                                           OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(2, 4);
  BuiltProcessor built = MakeProcessor(ProcessorKind::kJisc, plan, windows);
  auto tuples = testutil::UniformWorkload(2, 4, 50);
  ConsumeStats s1 = ConsumeRecorded(built.processor.get(), tuples, 0, 25);
  ConsumeStats s2 = ConsumeRecorded(built.processor.get(), tuples, 25, 50);
  EXPECT_EQ(s1.tuples + s2.tuples, 50u);
  EXPECT_EQ(built.processor->metrics().arrivals, 50u);
}

TEST(BenchScaleTest, DefaultsBelowPaperScale) {
  EXPECT_GT(BenchScale(), 0.0);
  EXPECT_LE(BenchScale(), 10.0);
}

}  // namespace
}  // namespace jisc
