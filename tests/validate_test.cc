// The executor invariant validator, applied after real runs of every
// strategy and operator kind — a deep self-check of the state machinery.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/jisc_runtime.h"
#include "exec/validate.h"
#include "migration/moving_state.h"
#include "plan/plan_text.h"
#include "plan/transitions.h"
#include "tests/test_util.h"

namespace jisc {
namespace {

using testutil::IdentityOrder;
using testutil::UniformWorkload;

TEST(ValidateTest, SteadyStateHashJoins) {
  LogicalPlan plan = LogicalPlan::LeftDeep(IdentityOrder(4),
                                           OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 8);
  CountingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  for (const auto& t : UniformWorkload(4, 4, 300)) engine.Push(t);
  EXPECT_TRUE(ValidateExecutorInvariants(engine.executor()).ok());
}

TEST(ValidateTest, MidMigrationJisc) {
  LogicalPlan plan = LogicalPlan::LeftDeep(IdentityOrder(4),
                                           OpKind::kHashJoin);
  LogicalPlan next = LogicalPlan::LeftDeep({3, 2, 1, 0}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 8);
  CountingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  auto tuples = UniformWorkload(4, 4, 400);
  size_t i = 0;
  for (; i < 100; ++i) engine.Push(tuples[i]);
  ASSERT_TRUE(engine.RequestTransition(next).ok());
  // Right after the transition (incomplete states are exempt from content
  // equality but complete ones must already hold).
  EXPECT_TRUE(ValidateExecutorInvariants(engine.executor()).ok());
  for (; i < 150; ++i) engine.Push(tuples[i]);
  EXPECT_TRUE(ValidateExecutorInvariants(engine.executor()).ok());
  // After turnover everything is complete again.
  for (; i < 400; ++i) engine.Push(tuples[i]);
  EXPECT_TRUE(ValidateExecutorInvariants(engine.executor()).ok());
}

TEST(ValidateTest, MovingStateAfterMigration) {
  LogicalPlan plan = LogicalPlan::LeftDeep(IdentityOrder(4),
                                           OpKind::kHashJoin);
  LogicalPlan next = LogicalPlan::BalancedBushy({2, 0, 3, 1},
                                                OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(4, 8);
  CountingSink sink;
  Engine engine(plan, windows, &sink, MakeMovingStateStrategy());
  for (const auto& t : UniformWorkload(4, 3, 200)) engine.Push(t);
  ASSERT_TRUE(engine.RequestTransition(next).ok());
  EXPECT_TRUE(ValidateExecutorInvariants(engine.executor()).ok());
}

TEST(ValidateTest, ThetaAndChains) {
  ThetaSpec theta{1};
  Engine::Options opts;
  opts.exec.theta = theta;
  {
    LogicalPlan plan = LogicalPlan::LeftDeep({0, 1, 2}, OpKind::kNljJoin);
    CountingSink sink;
    Engine engine(plan, WindowSpec::Uniform(3, 6), &sink, MakeJiscStrategy(),
                  opts);
    for (const auto& t : UniformWorkload(3, 5, 200)) engine.Push(t);
    EXPECT_TRUE(ValidateExecutorInvariants(engine.executor(), theta).ok());
  }
  {
    LogicalPlan plan = LogicalPlan::SetDifferenceChain(0, {1, 2});
    CountingSink sink;
    Engine engine(plan, WindowSpec::Uniform(3, 6), &sink, MakeJiscStrategy());
    for (const auto& t : UniformWorkload(3, 4, 200)) engine.Push(t);
    EXPECT_TRUE(ValidateExecutorInvariants(engine.executor()).ok());
  }
  {
    LogicalPlan plan = LogicalPlan::SemiJoinChain(0, {1, 2});
    CountingSink sink;
    Engine engine(plan, WindowSpec::Uniform(3, 6), &sink, MakeJiscStrategy());
    for (const auto& t : UniformWorkload(3, 4, 200)) engine.Push(t);
    EXPECT_TRUE(ValidateExecutorInvariants(engine.executor()).ok());
  }
}

TEST(ValidateTest, RandomTreesUnderRandomMigrations) {
  Rng rng(99);
  auto streams = IdentityOrder(5);
  LogicalPlan plan = RandomPlanTree(streams, OpKind::kHashJoin, &rng);
  WindowSpec windows = WindowSpec::Uniform(5, 6);
  CountingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  auto tuples = UniformWorkload(5, 3, 600);
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (i > 0 && i % 80 == 0) {
      ASSERT_TRUE(engine
                      .RequestTransition(
                          RandomPlanTree(streams, OpKind::kHashJoin, &rng))
                      .ok());
    }
    engine.Push(tuples[i]);
    if (i % 50 == 49) {
      ASSERT_TRUE(ValidateExecutorInvariants(engine.executor()).ok())
          << "at tuple " << i;
    }
  }
}

TEST(ValidateTest, StateMemoryTracksContent) {
  LogicalPlan plan = LogicalPlan::LeftDeep({0, 1}, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(2, 16);
  CountingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  uint64_t empty = engine.StateMemory();
  for (const auto& t : UniformWorkload(2, 4, 100)) engine.Push(t);
  uint64_t filled = engine.StateMemory();
  EXPECT_GT(filled, empty);
  EXPECT_GT(filled, 32u * (sizeof(Tuple)));  // windows alone hold 32 tuples
}

}  // namespace
}  // namespace jisc
