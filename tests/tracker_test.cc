// Unit tests for the Section 4.3 completion-detection machinery
// (CompletionTracker) against hand-built operator trees.

#include <gtest/gtest.h>

#include "core/completion_tracker.h"
#include "exec/stream_scan.h"
#include "exec/symmetric_hash_join.h"

namespace jisc {
namespace {

BaseTuple Mk(StreamId s, JoinKey k, Seq seq) {
  BaseTuple b;
  b.stream = s;
  b.key = k;
  b.seq = seq;
  return b;
}

Tuple T(StreamId s, JoinKey k, Seq seq) {
  return Tuple::FromBase(Mk(s, k, seq), /*birth=*/1, true);
}

// A minimal two-leaf join fixture with directly controllable states.
class TrackerFixture : public ::testing::Test {
 protected:
  TrackerFixture()
      : left_(0, /*stream=*/0, /*window=*/64),
        right_(1, /*stream=*/1, /*window=*/64),
        join_(2, StreamSet::Union(StreamSet::Single(0),
                                  StreamSet::Single(1))) {
    join_.SetChildren(&left_, &right_);
    left_.SetParent(&join_, Side::kLeft);
    right_.SetParent(&join_, Side::kRight);
  }

  void FillLeft(std::initializer_list<JoinKey> keys) {
    Seq seq = 100;
    for (JoinKey k : keys) left_.state().Insert(T(0, k, seq++), 1);
  }
  void FillRight(std::initializer_list<JoinKey> keys) {
    Seq seq = 200;
    for (JoinKey k : keys) right_.state().Insert(T(1, k, seq++), 1);
  }

  StreamScan left_;
  StreamScan right_;
  SymmetricHashJoin join_;
};

TEST_F(TrackerFixture, Case1PicksSmallerChild) {
  FillLeft({1, 2, 3});
  FillRight({1, 2});
  join_.state().MarkIncomplete();
  CompletionTracker tr(&join_, /*since=*/5, /*boundary=*/50);
  EXPECT_EQ(tr.init_case(), CompletionTracker::InitCase::kBothComplete);
  EXPECT_FALSE(tr.initialized());  // snapshot deferred to the first sweep
  tr.SweepExpired();
  EXPECT_TRUE(tr.initialized());
  EXPECT_EQ(tr.pending(), 2u);  // right child's {1, 2}
  EXPECT_FALSE(tr.Done());
}

TEST_F(TrackerFixture, Case2PicksCompleteChild) {
  FillLeft({1, 2, 3});
  FillRight({1});
  left_.state().MarkIncomplete();  // simulate an incomplete subtree
  join_.state().MarkIncomplete();
  CompletionTracker tr(&join_, 5, 50);
  EXPECT_EQ(tr.init_case(), CompletionTracker::InitCase::kOneComplete);
  tr.SweepExpired();
  EXPECT_EQ(tr.pending(), 1u);  // right (complete) child's {1}
}

TEST_F(TrackerFixture, CountdownToDone) {
  FillLeft({1, 2});
  FillRight({1, 2});
  join_.state().MarkIncomplete();
  CompletionTracker tr(&join_, 5, 50);
  tr.SweepExpired();
  ASSERT_EQ(tr.pending(), 2u);
  tr.OnKeyCompleted(1);
  EXPECT_EQ(tr.pending(), 1u);
  EXPECT_FALSE(tr.Done());
  tr.OnKeyCompleted(2);
  EXPECT_TRUE(tr.Done());
  // Completing an unknown value is a no-op.
  tr.OnKeyCompleted(99);
  EXPECT_TRUE(tr.Done());
}

TEST_F(TrackerFixture, SweepRetiresExpiredValues) {
  FillLeft({1, 2});
  FillRight({1, 2});
  join_.state().MarkIncomplete();
  CompletionTracker tr(&join_, 5, 50);
  tr.SweepExpired();  // snapshot {1,2} from the smaller side (tie -> left)
  ASSERT_EQ(tr.pending(), 2u);
  // Value 1 expires entirely from the reference child.
  int n = left_.state().RemoveContaining(100, 1, /*stamp=*/9, nullptr);
  ASSERT_EQ(n, 1);
  tr.SweepExpired();
  EXPECT_EQ(tr.pending(), 1u);
  tr.OnKeyCompleted(2);
  EXPECT_TRUE(tr.Done());
}

TEST_F(TrackerFixture, AlreadyCompletedValuesExcludedFromSnapshot) {
  FillLeft({1, 2, 3});
  FillRight({1, 2, 3});
  join_.state().MarkIncomplete();
  join_.state().MarkKeyCompleted(2);  // carried from an earlier transition
  CompletionTracker tr(&join_, 5, 50);
  tr.SweepExpired();
  EXPECT_EQ(tr.pending(), 2u);  // {1, 3}
}

TEST_F(TrackerFixture, EmptyReferenceChildIsImmediatelyDone) {
  FillLeft({1, 2});
  // Right child empty: no old combinations can be missing.
  join_.state().MarkIncomplete();
  CompletionTracker tr(&join_, 5, 50);
  tr.SweepExpired();
  EXPECT_TRUE(tr.Done());
}

TEST_F(TrackerFixture, Case3DeferredUntilChildrenComplete) {
  FillLeft({1});
  FillRight({1});
  left_.state().MarkIncomplete();
  right_.state().MarkIncomplete();
  join_.state().MarkIncomplete();
  CompletionTracker tr(&join_, 5, 50);
  EXPECT_EQ(tr.init_case(), CompletionTracker::InitCase::kNoneComplete);
  tr.SweepExpired();  // no reference child yet
  tr.ResolveDeferred();
  EXPECT_FALSE(tr.initialized());
  EXPECT_FALSE(tr.Done());
  left_.state().MarkComplete();
  tr.ResolveDeferred();
  EXPECT_FALSE(tr.initialized());  // still waiting on the right child
  right_.state().MarkComplete();
  tr.ResolveDeferred();
  EXPECT_TRUE(tr.initialized());
  EXPECT_EQ(tr.pending(), 1u);
}

TEST_F(TrackerFixture, PaperCase3RuleCompletesOnChildren) {
  left_.state().MarkIncomplete();
  right_.state().MarkIncomplete();
  join_.state().MarkIncomplete();
  CompletionTracker tr(&join_, 5, 50, /*paper_case3=*/true);
  tr.ResolveDeferred();
  EXPECT_FALSE(tr.Done());
  left_.state().MarkComplete();
  right_.state().MarkComplete();
  tr.ResolveDeferred();
  // The paper's literal rule: complete as soon as both children are.
  EXPECT_TRUE(tr.Done());
}

TEST_F(TrackerFixture, MetadataAccessors) {
  join_.state().MarkIncomplete();
  CompletionTracker tr(&join_, 5, 50);
  EXPECT_EQ(tr.since_stamp(), 5u);
  EXPECT_EQ(tr.boundary_seq(), 50u);
  EXPECT_EQ(tr.op(), &join_);
}

}  // namespace
}  // namespace jisc
