// Larger-scale smoke/stress runs (still seconds): a 16-join JISC engine
// under periodic transitions with invariant validation, and a deep bushy
// checkpoint round trip.

#include <gtest/gtest.h>

#include "core/checkpoint.h"
#include "core/jisc_runtime.h"
#include "exec/validate.h"
#include "plan/plan_text.h"
#include "plan/transitions.h"
#include "tests/test_util.h"

namespace jisc {
namespace {

using testutil::IdentityOrder;

TEST(StressTest, SixteenJoinsWithPeriodicTransitions) {
  const int kStreams = 17;
  const uint64_t kWindow = 64;
  auto order = IdentityOrder(kStreams);
  LogicalPlan plan = LogicalPlan::LeftDeep(order, OpKind::kHashJoin);
  WindowSpec windows = WindowSpec::Uniform(kStreams, kWindow);
  CountingSink sink;
  Engine engine(plan, windows, &sink, MakeJiscStrategy());
  SourceConfig cfg;
  cfg.num_streams = kStreams;
  cfg.key_domain = kWindow;
  cfg.key_pattern = KeyPattern::kSequential;
  SyntheticSource src(cfg);
  Rng rng(5);
  auto cur = order;
  const int kTotal = 40000;
  for (int i = 0; i < kTotal; ++i) {
    if (i > 0 && i % 5000 == 0) {
      cur = RandomTriangularSwap(cur, &rng);
      ASSERT_TRUE(engine
                      .RequestTransition(
                          LogicalPlan::LeftDeep(cur, OpKind::kHashJoin))
                      .ok());
    }
    engine.Push(src.Next());
  }
  EXPECT_GT(sink.outputs(), 10000u);
  EXPECT_GT(engine.metrics().completions, 0u);
  // Counter/turnover sanity only (the content validator recompute is
  // quadratic in the 16-deep states; counters and scans suffice here).
  for (int id = 0; id < engine.executor().num_ops(); ++id) {
    const OperatorState& st = engine.executor().op(id)->state();
    size_t live = 0;
    st.ForEachLive([&](const Tuple&) { ++live; });
    ASSERT_EQ(live, st.live_size()) << "node " << id;
  }
}

TEST(StressTest, DeepBushyCheckpointRoundTrip) {
  Rng rng(13);
  auto streams = IdentityOrder(8);
  LogicalPlan plan = RandomPlanTree(streams, OpKind::kHashJoin, &rng);
  WindowSpec windows = WindowSpec::Uniform(8, 24);
  auto tuples = testutil::UniformWorkload(8, 12, 6000, 2);

  CollectingSink full_sink;
  Engine full(plan, windows, &full_sink, MakeJiscStrategy());
  for (const auto& t : tuples) full.Push(t);

  CollectingSink a_sink;
  Engine a(plan, windows, &a_sink, MakeJiscStrategy());
  for (size_t i = 0; i < 3000; ++i) a.Push(tuples[i]);
  auto bytes = CheckpointEngine(a);
  ASSERT_TRUE(bytes.ok());
  CollectingSink b_sink;
  auto b = RestoreEngine(bytes.value(), &b_sink, MakeJiscStrategy());
  ASSERT_TRUE(b.ok());
  for (size_t i = 3000; i < tuples.size(); ++i) b.value()->Push(tuples[i]);

  auto combined = testutil::IdentityMultiset(a_sink.outputs());
  for (const Tuple& t : b_sink.outputs()) combined.insert(t.IdentityHash());
  EXPECT_EQ(combined, testutil::IdentityMultiset(full_sink.outputs()));
  EXPECT_TRUE(ValidateExecutorInvariants(b.value()->executor()).ok());
}

}  // namespace
}  // namespace jisc
