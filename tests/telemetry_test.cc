// Test battery for the live telemetry plane (obs/telemetry.h): registry
// gauge semantics (counts, watermarks, clamping), the sampler's bounded
// drop-oldest snapshot ring, the stall watchdog's verdict contract
// (flat + backlog + sibling advance, once per episode), and a live
// sampling run against a real ParallelExecutor. The live test doubles as
// a race check: CI's ThreadSanitizer job matches this binary by name.

#include "obs/telemetry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/jisc_runtime.h"
#include "core/parallel_engine.h"
#include "exec/parallel_executor.h"
#include "migration/moving_state.h"
#include "obs/observability.h"
#include "obs/trace.h"
#include "plan/transitions.h"
#include "tests/test_util.h"

namespace jisc {
namespace {

using testutil::IdentityOrder;
using testutil::UniformWorkload;

std::unique_ptr<Observability> MakeObs() {
  Observability::Options opts;
  opts.telemetry = true;
  return std::make_unique<Observability>(opts);
}

// --- registry gauges -------------------------------------------------------

TEST(TelemetryRegistryTest, GaugesCountAndKeepWatermarks) {
  TelemetryRegistry reg;
  reg.RegisterTracks(3);
  EXPECT_EQ(reg.num_tracks(), 3);

  reg.OnInput(5);
  reg.OnInput(3);  // lower seq must not regress the watermark
  EXPECT_EQ(reg.input_events(), 2u);
  EXPECT_EQ(reg.input_seq(), 5u);

  reg.OnEventProcessed(1, 9);
  reg.OnEventProcessed(1, 4);
  reg.SetQueueDepth(1, 7);
  reg.SetQueueDepth(1, 2);  // depth falls, high watermark sticks
  reg.OnStall(1, 100);
  reg.OnStall(1, 250);
  reg.SetStateMemoryBytes(1, 4096);
  reg.NoteStraggler(1);

  TelemetryTrackSample s = reg.SampleTrack(1);
  EXPECT_EQ(s.progress_events, 2u);
  EXPECT_EQ(s.progress_seq, 9u);
  EXPECT_EQ(s.queue_depth, 2u);
  EXPECT_EQ(s.queue_high_watermark, 7u);
  EXPECT_EQ(s.stall_count, 2u);
  EXPECT_EQ(s.stalled_ns, 350u);
  EXPECT_EQ(s.state_memory_bytes, 4096u);
  EXPECT_EQ(s.straggler_flags, 1u);
  // A sibling track stays untouched.
  EXPECT_EQ(reg.SampleTrack(2).progress_events, 0u);
}

TEST(TelemetryRegistryTest, TrackCountGrowsMonotonicallyAndClamps) {
  TelemetryRegistry reg;
  reg.RegisterTracks(4);
  reg.RegisterTracks(2);  // never shrinks
  EXPECT_EQ(reg.num_tracks(), 4);
  reg.RegisterTracks(kTelemetryMaxTracks + 50);
  EXPECT_EQ(reg.num_tracks(), kTelemetryMaxTracks);
  // Out-of-range tracks clamp onto the edge slots instead of corrupting
  // memory: the hot path never bounds-checks, the clamp is the bound.
  reg.OnEventProcessed(kTelemetryMaxTracks + 7, 1);
  EXPECT_EQ(reg.SampleTrack(kTelemetryMaxTracks - 1).progress_events, 1u);
  reg.OnEventProcessed(-3, 2);
  EXPECT_EQ(reg.SampleTrack(0).progress_events, 1u);
}

// --- sampler ring ----------------------------------------------------------

TelemetrySampler::Options ManualOptions(size_t ring, int watchdog = 5) {
  TelemetrySampler::Options o;
  o.ring_capacity = ring;
  o.watchdog_samples = watchdog;
  o.start_thread = false;
  return o;
}

TEST(TelemetrySamplerTest, RingDropsOldestKeepsOrder) {
  auto obs = MakeObs();
  TelemetrySampler sampler(obs.get(), ManualOptions(/*ring=*/4));
  for (int i = 0; i < 6; ++i) {
    obs->telemetry->OnInput(static_cast<uint64_t>(i));
    sampler.SampleOnce();
  }
  EXPECT_EQ(sampler.samples_taken(), 6u);
  EXPECT_EQ(sampler.dropped_snapshots(), 2u);
  std::vector<TelemetrySnapshot> snaps = sampler.Snapshots();
  ASSERT_EQ(snaps.size(), 4u);
  // Snapshot i saw i+1 inputs; the oldest two (1, 2) were dropped.
  for (size_t i = 0; i < snaps.size(); ++i) {
    EXPECT_EQ(snaps[i].input_events, i + 3) << "ring order broken at " << i;
    if (i > 0) {
      EXPECT_GE(snaps[i].t_ns, snaps[i - 1].t_ns);
    }
  }
}

TEST(TelemetrySamplerTest, StopTakesFinalSnapshotAndIsIdempotent) {
  auto obs = MakeObs();
  TelemetrySampler sampler(obs.get(), ManualOptions(/*ring=*/8));
  obs->telemetry->OnInput(1);
  sampler.Stop();
  EXPECT_EQ(sampler.Snapshots().size(), 1u);
  sampler.Stop();  // second stop must not add another snapshot
  EXPECT_EQ(sampler.Snapshots().size(), 1u);
  EXPECT_EQ(sampler.Snapshots().back().input_events, 1u);
}

// --- stall watchdog --------------------------------------------------------

// Watchdog fixtures drive SampleOnce() by hand: track 1 is the advancing
// sibling, track 2 the suspect. Each Tick optionally advances the sibling
// and sets the suspect's backlog, mirroring what the sampler would read
// off a live executor.
class WatchdogTest : public ::testing::Test {
 protected:
  WatchdogTest() : obs_(MakeObs()) {
    obs_->telemetry->RegisterTracks(3);  // coordinator + 2 shards
    sampler_ = std::make_unique<TelemetrySampler>(
        obs_.get(), ManualOptions(/*ring=*/64, /*watchdog=*/3));
  }

  void Tick(bool sibling_advances, uint64_t suspect_backlog) {
    if (sibling_advances) {
      obs_->telemetry->OnEventProcessed(1, ++seq_);
    }
    obs_->telemetry->SetQueueDepth(2, suspect_backlog);
    sampler_->SampleOnce();
  }

  uint64_t SuspectFlags() { return sampler_->StragglerFlags()[2]; }

  std::unique_ptr<Observability> obs_;
  std::unique_ptr<TelemetrySampler> sampler_;
  uint64_t seq_ = 0;
};

TEST_F(WatchdogTest, FlagsFlatShardWithBacklogOncePerEpisode) {
  Tick(true, 1);  // baseline sample seeds last-progress
  Tick(true, 1);  // flat 1 (episode starts; sibling position remembered)
  Tick(true, 1);  // flat 2
  EXPECT_EQ(SuspectFlags(), 0u);
  Tick(true, 1);  // flat 3 == watchdog_samples -> verdict
  EXPECT_EQ(SuspectFlags(), 1u);
  Tick(true, 1);  // still flat: same episode, no second verdict
  Tick(true, 1);
  EXPECT_EQ(SuspectFlags(), 1u);

  // Progress re-arms the watchdog; a second stall is a second episode.
  obs_->telemetry->OnEventProcessed(2, 999);
  Tick(true, 1);
  Tick(true, 1);
  Tick(true, 1);
  EXPECT_EQ(SuspectFlags(), 1u);
  Tick(true, 1);
  EXPECT_EQ(SuspectFlags(), 2u);
}

TEST_F(WatchdogTest, IgnoresIdleShardWithEmptyQueue) {
  // Flat without backlog is an idle shard (hash skew sends it nothing),
  // not a straggler.
  for (int i = 0; i < 8; ++i) Tick(/*sibling_advances=*/true, 0);
  EXPECT_EQ(SuspectFlags(), 0u);
}

TEST_F(WatchdogTest, NoVerdictWhenSiblingsAreFlatToo) {
  // Everyone flat (e.g. the coordinator paused the whole executor for a
  // migration): no relative judgment is possible, so no verdict.
  for (int i = 0; i < 8; ++i) Tick(/*sibling_advances=*/false, 5);
  EXPECT_EQ(SuspectFlags(), 0u);
  EXPECT_EQ(sampler_->StragglerFlags()[1], 0u);
}

TEST(TelemetryWatchdogTest, NeedsSiblingsToJudge) {
  // One shard has no siblings to fall behind; the watchdog stays silent.
  auto obs = MakeObs();
  obs->telemetry->RegisterTracks(2);  // coordinator + 1 shard
  TelemetrySampler sampler(obs.get(),
                           ManualOptions(/*ring=*/16, /*watchdog=*/2));
  obs->telemetry->SetQueueDepth(1, 9);
  for (int i = 0; i < 6; ++i) sampler.SampleOnce();
  EXPECT_EQ(sampler.StragglerFlags()[1], 0u);
}

TEST(TelemetryWatchdogTest, VerdictEmitsTraceInstant) {
  auto obs = MakeObs();
  obs->telemetry->RegisterTracks(3);
  TelemetrySampler sampler(obs.get(),
                           ManualOptions(/*ring=*/16, /*watchdog=*/2));
  obs->telemetry->SetQueueDepth(2, 4);
  sampler.SampleOnce();  // baseline
  obs->telemetry->OnEventProcessed(1, 1);
  sampler.SampleOnce();  // flat 1
  obs->telemetry->OnEventProcessed(1, 2);
  sampler.SampleOnce();  // flat 2 -> verdict
  ASSERT_EQ(sampler.StragglerFlags()[2], 1u);
  bool found = false;
  for (const TraceSpan& s : obs->trace.Snapshot()) {
    if (std::string("straggler_suspect") == s.name) found = true;
  }
  EXPECT_TRUE(found) << "verdict should leave a straggler_suspect span";
}

// --- live executor ---------------------------------------------------------

// End-to-end: a real sharded engine with the gauges hot and a background
// sampler racing it at 1ms. Correctness of the sampled numbers is loose
// (monotone counters, plausible totals); the test's sharper role is under
// ThreadSanitizer, where any gauge/sampler race would surface.
TEST(TelemetryLiveTest, SamplesLiveParallelExecutor) {
  auto obs = MakeObs();
  constexpr int kStreams = 4;
  constexpr int kParallelism = 4;
  LogicalPlan plan =
      LogicalPlan::LeftDeep(IdentityOrder(kStreams), OpKind::kHashJoin);
  Engine::Options eopts;
  eopts.parallelism = kParallelism;
  eopts.obs = obs.get();
  ParallelExecutor::Options popts;
  popts.queue_capacity = 8;  // small queues: exercise the stall gauges
  popts.batch_size = 4;
  CollectingSink sink;
  auto proc = MakeEngineProcessor(
      plan, WindowSpec::Uniform(kStreams, 64), &sink,
      [] { return MakeMovingStateStrategy(); }, eopts, popts);

  TelemetrySampler::Options sopts;
  sopts.period_ms = 1;
  TelemetrySampler sampler(obs.get(), sopts);

  constexpr size_t kTuples = 20000;
  for (const BaseTuple& t : UniformWorkload(kStreams, 64, kTuples)) {
    proc->Push(t);
  }
  auto* parallel = dynamic_cast<ParallelExecutor*>(proc.get());
  ASSERT_NE(parallel, nullptr);
  parallel->Barrier();
  sampler.Stop();

  std::vector<TelemetrySnapshot> snaps = sampler.Snapshots();
  ASSERT_GE(snaps.size(), 1u);
  const TelemetrySnapshot& last = snaps.back();
  EXPECT_EQ(last.input_events, kTuples);
  ASSERT_EQ(last.tracks.size(), static_cast<size_t>(1 + kParallelism));
  uint64_t shard_progress = 0;
  uint64_t max_hwm = 0;
  for (int s = 1; s <= kParallelism; ++s) {
    shard_progress += last.tracks[static_cast<size_t>(s)].progress_events;
    // After the barrier every feed is drained. The worker's gauge refresh
    // runs just after it acks the barrier batch, so allow that one batch.
    EXPECT_LE(last.tracks[static_cast<size_t>(s)].queue_depth, 1u);
    max_hwm = std::max(
        max_hwm, last.tracks[static_cast<size_t>(s)].queue_high_watermark);
  }
  // Tiny feeds against a 20k-tuple burst must have shown real occupancy.
  EXPECT_GE(max_hwm, 1u);
  // Every arrival lands on exactly one shard; expiries only add on top.
  EXPECT_GE(shard_progress, kTuples);
  for (size_t i = 1; i < snaps.size(); ++i) {
    EXPECT_GE(snaps[i].t_ns, snaps[i - 1].t_ns);
    EXPECT_GE(snaps[i].input_events, snaps[i - 1].input_events);
  }
}

}  // namespace
}  // namespace jisc
