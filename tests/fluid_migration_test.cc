// Fluid migration: latency-bounded state carryover drained in budgeted
// per-key batches between tuples (migration/fluid_scheduler.h).
//
// The heart of this suite is the equivalence oracle: on a no-churn
// workload whose post-transition probes cover the whole key domain, a
// fluid run must reproduce its all-at-once twin EXACTLY — every
// deterministic counter, every output, and (for the engine strategies)
// the final checkpoint byte-for-byte. The oracle holds for every strategy
// with a migration stage; batch sizing only reorders when carryover work
// happens, never what it does.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.h"
#include "core/engine.h"
#include "migration/fluid_scheduler.h"
#include "migration/hybrid_track.h"
#include "plan/transitions.h"
#include "stream/synthetic_source.h"
#include "tests/test_util.h"
#include "workload/factory.h"

namespace jisc {
namespace {

using testutil::IdentityOrder;

FluidOptions Fluid(uint64_t batch_keys, uint64_t delay_budget_us = 50) {
  FluidOptions f;
  f.mode = FluidOptions::Mode::kFluid;
  f.batch_keys = batch_keys;
  f.delay_budget_us = delay_budget_us;
  return f;
}

// The oracle workload: 4 streams, windows far larger than the run (no
// churn), sequential keys over a 64-value domain. After warmup the join
// order is reversed (the paper's worst case — every non-scan state of the
// new plan starts incomplete), then a single-stream burst probes every
// value in the domain, so the on-probe completions of an all-at-once lazy
// run cover exactly the key sets a fluid drain completes proactively. The
// tail runs past the maintain cadence so completion detection settles
// before the final snapshot.
struct OracleRun {
  std::vector<std::pair<std::string, uint64_t>> counters;
  uint64_t outputs = 0;
  uint64_t retractions = 0;
  std::string checkpoint;  // engine kinds only
  BuiltProcessor built;    // kept alive for introspection
};

constexpr int kStreams = 4;
constexpr uint64_t kDomain = 64;
constexpr int kWarmup = 512;
constexpr int kBurst = 256;  // kStreams * kDomain: covers the domain
constexpr int kTail = 600;   // > default maintain_period (256)

OracleRun RunOracle(ProcessorKind kind, FluidOptions fluid) {
  WindowSpec windows = WindowSpec::Uniform(kStreams, 50000);
  LogicalPlan initial =
      LogicalPlan::LeftDeep(IdentityOrder(kStreams), OpKind::kHashJoin);
  OracleRun run;
  run.built = MakeProcessor(kind, initial, windows, ThetaSpec(),
                            /*parallelism=*/1, /*obs=*/nullptr,
                            ParallelExecutor::Options(),
                            IngressGuard::Options(), fluid);

  SourceConfig cfg;
  cfg.num_streams = kStreams;
  cfg.key_domain = kDomain;
  cfg.key_pattern = KeyPattern::kSequential;
  cfg.seed = 11;
  SyntheticSource src(cfg);

  for (int i = 0; i < kWarmup; ++i) run.built.processor->Push(src.Next());
  Status s = run.built.processor->RequestTransition(LogicalPlan::LeftDeep(
      WorstCaseOrder(IdentityOrder(kStreams)), OpKind::kHashJoin));
  EXPECT_TRUE(s.ok()) << s.message();
  src.ForceStream(0);
  for (int i = 0; i < kBurst; ++i) run.built.processor->Push(src.Next());
  src.ForceStream(std::nullopt);
  for (int i = 0; i < kTail; ++i) run.built.processor->Push(src.Next());

  run.counters = run.built.processor->metrics().NamedCounters();
  run.outputs = run.built.sink->outputs();
  run.retractions = run.built.sink->retractions();
  if (auto* engine = dynamic_cast<Engine*>(run.built.processor.get())) {
    StatusOr<std::string> bytes = CheckpointEngine(*engine);
    EXPECT_TRUE(bytes.ok()) << bytes.status().message();
    if (bytes.ok()) run.checkpoint = bytes.value();
  }
  return run;
}

void ExpectSameCounters(
    const std::vector<std::pair<std::string, uint64_t>>& all_at_once,
    const std::vector<std::pair<std::string, uint64_t>>& fluid) {
  ASSERT_EQ(all_at_once.size(), fluid.size());
  for (size_t i = 0; i < all_at_once.size(); ++i) {
    EXPECT_EQ(all_at_once[i].first, fluid[i].first);
    EXPECT_EQ(all_at_once[i].second, fluid[i].second)
        << "counter '" << all_at_once[i].first << "' diverged";
  }
}

void ExpectOracleEquivalence(ProcessorKind kind, FluidOptions fluid) {
  OracleRun all_at_once = RunOracle(kind, FluidOptions());
  OracleRun fluid_run = RunOracle(kind, fluid);
  ExpectSameCounters(all_at_once.counters, fluid_run.counters);
  EXPECT_EQ(all_at_once.outputs, fluid_run.outputs);
  EXPECT_EQ(all_at_once.retractions, fluid_run.retractions);
  // Final state byte-for-byte: the canonical checkpoint serialization of
  // the drained fluid run is indistinguishable from all-at-once's.
  EXPECT_EQ(all_at_once.checkpoint, fluid_run.checkpoint)
      << "final checkpoint bytes diverged for "
      << ProcessorKindName(kind);
}

// --- the oracle, per strategy ---

TEST(FluidOracle, JiscFluidMatchesAllAtOnce) {
  ExpectOracleEquivalence(ProcessorKind::kJisc, Fluid(7));
}

TEST(FluidOracle, JiscFirstReceiptFluidMatchesAllAtOnce) {
  ExpectOracleEquivalence(ProcessorKind::kJiscFirstReceipt, Fluid(7));
}

TEST(FluidOracle, MovingStateFluidMatchesAllAtOnce) {
  ExpectOracleEquivalence(ProcessorKind::kMovingState, Fluid(7));
}

TEST(FluidOracle, HybridTrackFluidMatchesAllAtOnce) {
  // Hybrid Track is not checkpointable (multi-plan); the oracle covers
  // counters and outputs, and the drained-backlog check below covers the
  // state itself.
  OracleRun all_at_once = RunOracle(ProcessorKind::kHybridTrack,
                                    FluidOptions());
  OracleRun fluid_run = RunOracle(ProcessorKind::kHybridTrack, Fluid(7));
  ExpectSameCounters(all_at_once.counters, fluid_run.counters);
  EXPECT_EQ(all_at_once.outputs, fluid_run.outputs);
  EXPECT_EQ(all_at_once.retractions, fluid_run.retractions);
  auto* hybrid =
      dynamic_cast<HybridTrackProcessor*>(fluid_run.built.processor.get());
  ASSERT_NE(hybrid, nullptr);
  EXPECT_EQ(hybrid->FluidCopyBacklog(), 0u) << "copy-in never drained";
  EXPECT_GT(hybrid->fluid_scheduler().stats().batches, 0u);
}

TEST(FluidOracle, ParallelTrackAcceptsFluidAsDegenerate) {
  // Parallel Track has no carryover; fluid configuration is documented as
  // a no-op, so the runs are trivially identical.
  OracleRun all_at_once = RunOracle(ProcessorKind::kParallelTrack,
                                    FluidOptions());
  OracleRun fluid_run = RunOracle(ProcessorKind::kParallelTrack, Fluid(7));
  ExpectSameCounters(all_at_once.counters, fluid_run.counters);
  EXPECT_EQ(all_at_once.outputs, fluid_run.outputs);
}

// --- batch_keys sweep, including the degenerate unbounded setting ---

TEST(FluidOracle, BatchKeysSweepAllEquivalent) {
  OracleRun all_at_once = RunOracle(ProcessorKind::kJisc, FluidOptions());
  for (uint64_t batch_keys : {uint64_t{1}, uint64_t{7}, uint64_t{64}}) {
    OracleRun fluid_run = RunOracle(ProcessorKind::kJisc, Fluid(batch_keys));
    ExpectSameCounters(all_at_once.counters, fluid_run.counters);
    EXPECT_EQ(all_at_once.checkpoint, fluid_run.checkpoint)
        << "batch_keys=" << batch_keys;
  }
}

TEST(FluidOracle, UnboundedBatchKeysDegeneratesToAllAtOnce) {
  // batch_keys 0 ("infinity") is IsFluid() == false: no scheduler, no
  // engine hook — the literal all-at-once code path, not a large batch.
  FluidOptions unbounded = Fluid(0);
  EXPECT_FALSE(unbounded.IsFluid());
  OracleRun all_at_once = RunOracle(ProcessorKind::kJisc, FluidOptions());
  OracleRun degenerate = RunOracle(ProcessorKind::kJisc, unbounded);
  ExpectSameCounters(all_at_once.counters, degenerate.counters);
  EXPECT_EQ(all_at_once.checkpoint, degenerate.checkpoint);
  auto* engine = dynamic_cast<Engine*>(degenerate.built.processor.get());
  ASSERT_NE(engine, nullptr);
  // The factory installed the plain strategy, not the fluid decorator.
  EXPECT_EQ(dynamic_cast<FluidJiscStrategy*>(&engine->strategy()), nullptr);
}

// --- budget enforcement ---

const FluidScheduler* SchedulerOf(StreamProcessor* p) {
  auto* engine = dynamic_cast<Engine*>(p);
  if (engine == nullptr) return nullptr;
  auto* fluid = dynamic_cast<FluidJiscStrategy*>(&engine->strategy());
  return fluid == nullptr ? nullptr : &fluid->scheduler();
}

TEST(FluidBudget, BatchKeysCapIsEnforced) {
  for (uint64_t batch_keys : {uint64_t{1}, uint64_t{7}}) {
    OracleRun run = RunOracle(ProcessorKind::kJisc,
                              Fluid(batch_keys, /*delay_budget_us=*/1000));
    const FluidScheduler* sched = SchedulerOf(run.built.processor.get());
    ASSERT_NE(sched, nullptr);
    const FluidScheduler::Stats& stats = sched->stats();
    EXPECT_GT(stats.batches, 0u);
    EXPECT_GT(stats.items, 0u);
    EXPECT_LE(stats.max_batch_items, batch_keys);
    EXPECT_EQ(stats.overruns, 0u);
  }
}

TEST(FluidBudget, SmallBudgetYieldsBetweenBatches) {
  // One item per batch (budget spent immediately) with a deep backlog:
  // the scheduler must yield with work remaining, not run to exhaustion.
  OracleRun run = RunOracle(ProcessorKind::kJisc,
                            Fluid(/*batch_keys=*/64, /*delay_budget_us=*/0));
  const FluidScheduler* sched = SchedulerOf(run.built.processor.get());
  ASSERT_NE(sched, nullptr);
  const FluidScheduler::Stats& stats = sched->stats();
  EXPECT_GT(stats.yields, 0u);
  EXPECT_EQ(stats.overruns, 0u);
  // Budget floor: even a zero-microsecond budget completes one item.
  EXPECT_GE(stats.items, stats.batches);
}

TEST(FluidBudget, BacklogFullyDrainsByEndOfRun) {
  OracleRun run = RunOracle(ProcessorKind::kJisc, Fluid(1));
  auto* engine = dynamic_cast<Engine*>(run.built.processor.get());
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->strategy().FluidBacklog(), 0u);
}

// --- soundness under churn (windows turn over mid-drain) ---

TEST(FluidChurn, JiscFluidMatchesReferenceUnderChurn) {
  const int n = 3;
  WindowSpec windows = WindowSpec::Uniform(n, 60);
  LogicalPlan initial =
      LogicalPlan::LeftDeep(IdentityOrder(n), OpKind::kHashJoin);
  CollectingSink sink;
  Engine::Options opts;
  opts.fluid = Fluid(3, 0);  // one key per batch: drain spans many events
  Engine engine(initial, windows, &sink,
                EngineStrategyFactory(ProcessorKind::kJisc, opts.fluid)(),
                opts);
  std::vector<BaseTuple> tuples = testutil::UniformWorkload(n, 8, 600);
  std::map<size_t, LogicalPlan> transitions;
  transitions.emplace(200, LogicalPlan::LeftDeep(
                               WorstCaseOrder(IdentityOrder(n)),
                               OpKind::kHashJoin));
  testutil::DriveResult r = testutil::DriveAndCompare(
      &engine, &sink, n, windows, tuples, transitions);
  EXPECT_TRUE(r.outputs_match) << r.outputs << " vs " << r.reference_outputs;
  EXPECT_TRUE(r.retractions_match);
}

TEST(FluidChurn, HybridFluidMatchesReferenceUnderChurn) {
  const int n = 3;
  WindowSpec windows = WindowSpec::Uniform(n, 60);
  LogicalPlan initial =
      LogicalPlan::LeftDeep(IdentityOrder(n), OpKind::kHashJoin);
  auto sink = std::make_unique<CollectingSink>();
  HybridTrackProcessor::Options hopts;
  hopts.fluid = Fluid(2, 0);
  HybridTrackProcessor hybrid(initial, windows, sink.get(), hopts);
  std::vector<BaseTuple> tuples = testutil::UniformWorkload(n, 8, 600);
  std::map<size_t, LogicalPlan> transitions;
  transitions.emplace(200, LogicalPlan::LeftDeep(
                               WorstCaseOrder(IdentityOrder(n)),
                               OpKind::kHashJoin));
  transitions.emplace(420, LogicalPlan::LeftDeep(IdentityOrder(n),
                                                 OpKind::kHashJoin));
  testutil::DriveResult r = testutil::DriveAndCompare(
      &hybrid, sink.get(), n, windows, tuples, transitions);
  EXPECT_TRUE(r.outputs_match) << r.outputs << " vs " << r.reference_outputs;
  EXPECT_TRUE(r.retractions_match);
}

// --- mid-drain checkpointability (details in checkpoint_test.cc) ---

TEST(FluidCheckpoint, MidDrainCheckpointResumesAndConverges) {
  // Checkpoint while the drain is mid-flight (batch_keys = 1 keeps the
  // backlog alive for ~60 events), restore, finish the identical feed, and
  // compare the final checkpoint bytes against an uninterrupted twin. The
  // counter-level ledger is covered in checkpoint_test.cc; here the claim
  // is the state one: the resumed drain converges to the same bytes.
  WindowSpec windows = WindowSpec::Uniform(kStreams, 50000);
  LogicalPlan initial =
      LogicalPlan::LeftDeep(IdentityOrder(kStreams), OpKind::kHashJoin);
  LogicalPlan target = LogicalPlan::LeftDeep(
      WorstCaseOrder(IdentityOrder(kStreams)), OpKind::kHashJoin);
  FluidOptions fluid = Fluid(1);
  SourceConfig cfg;
  cfg.num_streams = kStreams;
  cfg.key_domain = kDomain;
  cfg.key_pattern = KeyPattern::kSequential;
  cfg.seed = 11;
  Engine::Options opts;
  opts.fluid = fluid;

  // Uninterrupted twin.
  CountingSink sink_a;
  Engine uninterrupted(initial, windows, &sink_a,
                       EngineStrategyFactory(ProcessorKind::kJisc, fluid)(),
                       opts);
  SyntheticSource src_a(cfg);
  for (int i = 0; i < kWarmup; ++i) uninterrupted.Push(src_a.Next());
  ASSERT_TRUE(uninterrupted.RequestTransition(target).ok());
  for (int i = 0; i < 5 + kTail; ++i) uninterrupted.Push(src_a.Next());
  StatusOr<std::string> final_a = CheckpointEngine(uninterrupted);
  ASSERT_TRUE(final_a.ok()) << final_a.status().message();

  // Interrupted run: checkpoint 5 events after the transition.
  CountingSink sink_b;
  Engine interrupted(initial, windows, &sink_b,
                     EngineStrategyFactory(ProcessorKind::kJisc, fluid)(),
                     opts);
  SyntheticSource src_b(cfg);
  for (int i = 0; i < kWarmup; ++i) interrupted.Push(src_b.Next());
  ASSERT_TRUE(interrupted.RequestTransition(target).ok());
  for (int i = 0; i < 5; ++i) interrupted.Push(src_b.Next());
  ASSERT_GT(interrupted.strategy().FluidBacklog(), 0u)
      << "drain finished too fast to checkpoint mid-flight";
  StatusOr<std::string> mid = CheckpointEngine(interrupted);
  ASSERT_TRUE(mid.ok()) << mid.status().message();

  CountingSink sink_c;
  StatusOr<std::unique_ptr<Engine>> restored = RestoreEngine(
      mid.value(), &sink_c,
      EngineStrategyFactory(ProcessorKind::kJisc, fluid)(), opts);
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  EXPECT_GT(restored.value()->strategy().FluidBacklog(), 0u)
      << "restored engine lost the in-flight drain ledger";
  for (int i = 0; i < kTail; ++i) restored.value()->Push(src_b.Next());
  StatusOr<std::string> final_c = CheckpointEngine(*restored.value());
  ASSERT_TRUE(final_c.ok()) << final_c.status().message();
  EXPECT_EQ(final_a.value(), final_c.value())
      << "resumed drain did not converge to the uninterrupted run's state";
  EXPECT_EQ(sink_a.outputs(), sink_b.outputs() + sink_c.outputs());
}

}  // namespace
}  // namespace jisc
