// Synthetic source patterns, window specs, and the workload regimes the
// benches rely on.

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "stream/synthetic_source.h"
#include "stream/window.h"

namespace jisc {
namespace {

TEST(WindowSpecTest, UniformAndPerStream) {
  WindowSpec u = WindowSpec::Uniform(3, 100);
  EXPECT_EQ(u.num_streams(), 3);
  for (StreamId s = 0; s < 3; ++s) EXPECT_EQ(u.SizeFor(s), 100u);
  WindowSpec p = WindowSpec::PerStream({5, 10});
  EXPECT_EQ(p.num_streams(), 2);
  EXPECT_EQ(p.SizeFor(0), 5u);
  EXPECT_EQ(p.SizeFor(1), 10u);
}

TEST(SyntheticSourceTest, UniformRandomInterleaveCoversStreams) {
  SourceConfig cfg;
  cfg.num_streams = 4;
  cfg.interleave = Interleave::kUniformRandom;
  cfg.seed = 9;
  SyntheticSource src(cfg);
  std::map<StreamId, int> counts;
  for (int i = 0; i < 4000; ++i) ++counts[src.Next().stream];
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [s, c] : counts) {
    (void)s;
    EXPECT_NEAR(c, 1000, 200);
  }
}

TEST(SyntheticSourceTest, SequentialPatternUnitSelectivity) {
  // With key_domain == window, each stream's window holds every key exactly
  // once at any time.
  SourceConfig cfg;
  cfg.num_streams = 3;
  cfg.key_domain = 8;
  cfg.key_pattern = KeyPattern::kSequential;
  SyntheticSource src(cfg);
  // Simulate per-stream windows of size 8.
  std::map<StreamId, std::vector<JoinKey>> windows;
  for (int i = 0; i < 3 * 64; ++i) {
    BaseTuple t = src.Next();
    auto& w = windows[t.stream];
    w.push_back(t.key);
    if (w.size() > 8) w.erase(w.begin());
  }
  for (auto& [s, w] : windows) {
    (void)s;
    std::set<JoinKey> distinct(w.begin(), w.end());
    EXPECT_EQ(distinct.size(), w.size()) << "each key once per window";
    EXPECT_EQ(distinct.size(), 8u);
  }
}

TEST(SyntheticSourceTest, BottomFanoutPattern) {
  SourceConfig cfg;
  cfg.num_streams = 4;
  cfg.key_domain = 12;
  cfg.key_pattern = KeyPattern::kBottomFanout;
  cfg.fanout = 3;
  SyntheticSource src(cfg);
  for (int i = 0; i < 4 * 36; ++i) {
    BaseTuple t = src.Next();
    if (t.stream <= 1) {
      EXPECT_EQ(t.key % 3, 0) << "bottom keys rounded to fanout multiples";
    }
    EXPECT_LT(t.key, 12);
  }
}

TEST(SyntheticSourceTest, PerStreamDomains) {
  SourceConfig cfg;
  cfg.num_streams = 3;
  cfg.key_domain = 1000;
  cfg.per_stream_key_domain = {2, 10, 1000};
  cfg.seed = 4;
  SyntheticSource src(cfg);
  std::map<StreamId, std::set<JoinKey>> seen;
  for (int i = 0; i < 3000; ++i) {
    BaseTuple t = src.Next();
    seen[t.stream].insert(t.key);
    if (t.stream == 0) EXPECT_LT(t.key, 2);
    if (t.stream == 1) EXPECT_LT(t.key, 10);
  }
  EXPECT_EQ(seen[0].size(), 2u);
  EXPECT_EQ(seen[1].size(), 10u);
  EXPECT_GT(seen[2].size(), 100u);
}

TEST(SyntheticSourceTest, PerStreamDomainShiftKeepsSeqMonotonic) {
  SourceConfig cfg;
  cfg.num_streams = 2;
  cfg.key_domain = 100;
  cfg.per_stream_key_domain = {2, 100};
  SyntheticSource src(cfg);
  Seq last = 0;
  for (int i = 0; i < 20; ++i) last = src.Next().seq;
  src.SetPerStreamKeyDomains({100, 2});
  bool saw_big_s0 = false;
  for (int i = 0; i < 100; ++i) {
    BaseTuple t = src.Next();
    EXPECT_GT(t.seq, last);
    last = t.seq;
    if (t.stream == 0 && t.key >= 2) saw_big_s0 = true;
  }
  EXPECT_TRUE(saw_big_s0);
}

TEST(SyntheticSourceTest, ZipfSkewAppliesPerStream) {
  SourceConfig cfg;
  cfg.num_streams = 1;
  cfg.key_domain = 100;
  cfg.zipf_s = 1.5;
  cfg.seed = 8;
  SyntheticSource src(cfg);
  std::map<JoinKey, int> counts;
  for (int i = 0; i < 10000; ++i) ++counts[src.Next().key];
  // Rank-0 key dominates under heavy skew.
  EXPECT_GT(counts[0], 3000);
}

TEST(SyntheticSourceTest, BatchIsEquivalentToLoop) {
  SourceConfig cfg;
  cfg.num_streams = 2;
  cfg.key_domain = 50;
  cfg.seed = 77;
  SyntheticSource a(cfg);
  SyntheticSource b(cfg);
  auto batch = a.NextBatch(100);
  for (const BaseTuple& t : batch) {
    BaseTuple u = b.Next();
    EXPECT_EQ(t.seq, u.seq);
    EXPECT_EQ(t.key, u.key);
    EXPECT_EQ(t.stream, u.stream);
  }
}

}  // namespace
}  // namespace jisc
